package repro

// The golden sweep test pins the exact bits of the Figures 4–7 series. The
// columnar data plane, the sweep context and the fuzzy fast paths are all
// required to be observationally invisible: any change to these numbers is a
// behavior change, not a refactor, and must be made deliberately by
// regenerating the golden file with -update-golden.

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_sweep.json from the current implementation")

// goldenLevel records one LevelResult with float fields as IEEE-754 bit
// patterns, so the comparison is bitwise, not tolerance-based.
type goldenLevel struct {
	K       int    `json:"k"`
	Before  uint64 `json:"before_bits"`
	After   uint64 `json:"after_bits"`
	Gain    uint64 `json:"gain_bits"`
	Utility uint64 `json:"utility_bits"`
}

func goldenPath() string { return filepath.Join("testdata", "golden_sweep.json") }

func computeGoldenLevels(t *testing.T) []goldenLevel {
	t.Helper()
	sc, err := UniversityScenario(ScenarioOptions{Seed: 42, N: 40})
	if err != nil {
		t.Fatal(err)
	}
	levels, err := sc.Sweep(2, 16, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]goldenLevel, len(levels))
	for i, lr := range levels {
		out[i] = goldenLevel{
			K:       lr.K,
			Before:  math.Float64bits(lr.Before),
			After:   math.Float64bits(lr.After),
			Gain:    math.Float64bits(lr.Gain),
			Utility: math.Float64bits(lr.Utility),
		}
	}
	return out
}

// TestGoldenSweepSeries verifies that core.Sweep over the seed generator
// produces a bitwise-identical LevelResult series to the recorded golden run.
func TestGoldenSweepSeries(t *testing.T) {
	got := computeGoldenLevels(t)
	if *updateGolden {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath()), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d levels)", goldenPath(), len(got))
		return
	}
	raw, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update-golden): %v", err)
	}
	var want []goldenLevel
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("sweep produced %d levels, golden has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("level %d mismatch:\n got k=%d before=%016x after=%016x gain=%016x utility=%016x\nwant k=%d before=%016x after=%016x gain=%016x utility=%016x",
				i, got[i].K, got[i].Before, got[i].After, got[i].Gain, got[i].Utility,
				want[i].K, want[i].Before, want[i].After, want[i].Gain, want[i].Utility)
		}
	}
}

// TestGoldenSweepParallelMatches pins SweepParallel to the same series —
// the concurrency must not change a single bit either.
func TestGoldenSweepParallelMatches(t *testing.T) {
	sc, err := UniversityScenario(ScenarioOptions{Seed: 42, N: 40})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := sc.Sweep(2, 16, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := sc.SweepParallel(2, 16, nil, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("sequential %d levels, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if math.Float64bits(seq[i].After) != math.Float64bits(par[i].After) ||
			math.Float64bits(seq[i].Utility) != math.Float64bits(par[i].Utility) {
			t.Errorf("level %d: parallel sweep diverged from sequential", i)
		}
	}
}
