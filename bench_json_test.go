package repro

// TestEmitBenchJSON pins the performance trajectory: it runs the service
// fred-sweep benchmark over a grid of cohort sizes and sweep worker counts
// and writes the measurements to BENCH_sweep.json, which is committed so
// each PR's numbers are diffable against the last. Gated behind EMIT_BENCH=1
// — it is a measurement job, not a correctness test, and has no place in the
// ordinary `go test` wall time.
//
// Methodology:
//
//   - Every iteration is a full sweep. The engine's result cache is disabled
//     (CacheSize: -1) and each Wait additionally asserts Status.Cached ==
//     false, so a future change that re-enables caching under the bench
//     fails loudly instead of silently flattening the trajectory into cache
//     lookups.
//   - Entries record the workers actually in effect, not just the requested
//     count: effective_workers = min(workers, sweep levels) is the level
//     pool SweepStream builds, and gomaxprocs bounds how many of those can
//     make simultaneous progress on the host. On a single-CPU runner the
//     workers axis therefore measures overhead neutrality (the parallel
//     path must not be slower), not speedup.
//   - MDAV's assignment kernel is O(n²), so the 10⁵/10⁶-row cells run
//     mondrian (O(n log n) per split level); the 10⁶ cell narrows the sweep
//     to k=2..4 to keep emission under a few minutes per cell.
//   - Scenarios use DirectAux: the adversary's table Q is derived straight
//     from the ground-truth profiles instead of the O(roster·pages) corpus
//     scrape, which would dominate setup at 10⁶ rows. Q's schema and the
//     attack path are identical either way.
//   - The planner-vs-exhaustive pair at mondrian/10⁵/k=2..64 pins the
//     adaptive planner's speedup: both cells carry the same explicit Tu
//     (the k=6 utility, computed outside the timer), the exhaustive cell
//     walks all 63 levels, the planner cell bisects the Tu crossing. The
//     engine's level index is disabled alongside the result cache, so every
//     planner iteration bisects from scratch instead of warm-starting off
//     the previous one. checkBenchJSON enforces the contract on the
//     committed numbers: planner evaluations ≤ 12 levels and ≥ 3× wall-time
//     reduction, so a planner regression fails TestBenchJSONFresh.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/fusion"
	"repro/internal/microagg"
	"repro/internal/mondrian"
	"repro/internal/service"
)

// benchEntry is one BENCH_sweep.json measurement.
type benchEntry struct {
	Op               string `json:"op"`
	Scheme           string `json:"scheme"`
	Rows             int    `json:"rows"`
	MinK             int    `json:"min_k"`
	MaxK             int    `json:"max_k"`
	Workers          int    `json:"workers"`
	EffectiveWorkers int    `json:"effective_workers"`
	GoMaxProcs       int    `json:"gomaxprocs"`
	// Mode is "exhaustive" (the classic range walk) or "planner" (the
	// adaptive bisection planner); LevelsEvaluated is how many levels one
	// sweep actually computed — the planner's whole point is this being
	// far below the requested range.
	Mode            string `json:"mode"`
	LevelsEvaluated int    `json:"levels_evaluated"`
	NsPerOp         int64  `json:"ns_per_op"`
	AllocsPerOp     int64  `json:"allocs_per_op"`
	BytesPerOp      int64  `json:"bytes_per_op"`
	// Per-phase compute time of the final iteration, summed across its
	// levels: where one sweep's time goes (anonymize vs fuse vs metrics).
	// With workers > 1 the levels overlap, so the sums may exceed ns_per_op —
	// they are a work breakdown, not a wall-clock partition.
	AnonymizeNS int64 `json:"anonymize_ns"`
	FuseNS      int64 `json:"fuse_ns"`
	MetricsNS   int64 `json:"metrics_ns"`
}

// benchCell is one (scheme, cohort size, sweep range, mode) point; the grid
// is the cross product with its workers axis (benchWorkers unless the cell
// narrows it). TestBenchJSONFresh checks the committed BENCH_sweep.json
// against exactly this grid, so widening it here makes CI fail until the
// file is regenerated.
type benchCell struct {
	scheme     string
	rows       int
	minK, maxK int
	// planner switches the cell to the adaptive planner (Spec.Adaptive).
	planner bool
	// tuFromK, when non-zero, gives the sweep an explicit Tu threshold: the
	// utility at this k, computed outside the timer. Bisection needs an
	// explicit threshold to have a crossing to find.
	tuFromK int
	// workers narrows the cell's workers axis (nil = benchWorkers).
	workers []int
}

var benchGrid = []benchCell{
	{scheme: "mdav", rows: 1000, minK: 2, maxK: 16},
	{scheme: "mdav", rows: 10000, minK: 2, maxK: 16},
	{scheme: "mondrian", rows: 100000, minK: 2, maxK: 16},
	{scheme: "mondrian", rows: 100000, minK: 2, maxK: 64, tuFromK: 6, workers: []int{1}},
	{scheme: "mondrian", rows: 100000, minK: 2, maxK: 64, planner: true, tuFromK: 6, workers: []int{1}},
	{scheme: "mondrian", rows: 1000000, minK: 2, maxK: 4},
}

var benchWorkers = []int{1, 4, 8}

// plannerMaxEvaluated is the evaluation ceiling checkBenchJSON enforces on
// planner cells: ⌈log₂ 63⌉ probes + the k=2..6 candidate band + slack.
const plannerMaxEvaluated = 12

// plannerMinSpeedup is the pinned wall-time reduction of the planner cell
// against its exhaustive twin.
const plannerMinSpeedup = 3

func (c benchCell) op(workers int) string {
	return fmt.Sprintf("service-fred-sweep/scheme=%s/rows=%d/k=%d-%d/workers=%d/mode=%s",
		c.scheme, c.rows, c.minK, c.maxK, workers, c.mode())
}

func (c benchCell) mode() string {
	if c.planner {
		return "planner"
	}
	return "exhaustive"
}

func (c benchCell) workersAxis() []int {
	if len(c.workers) > 0 {
		return c.workers
	}
	return benchWorkers
}

func (c benchCell) levels() int { return c.maxK - c.minK + 1 }

const benchJSONPath = "BENCH_sweep.json"

func TestEmitBenchJSON(t *testing.T) {
	mode := os.Getenv("EMIT_BENCH")
	if mode == "" {
		t.Skip("set EMIT_BENCH=1 to run the benchmark grid and write " + benchJSONPath +
			", or EMIT_BENCH=smoke to exercise one mid-size cell without writing")
	}
	grid := benchGrid
	if mode == "smoke" {
		// CI's perf gate: one mid-size cell proves the bench path end to end
		// (scenario build, engine, cache-miss assertion) in well under a
		// minute. Nothing is written — the committed file stays the full
		// grid's.
		grid = []benchCell{{scheme: "mdav", rows: 10000, minK: 2, maxK: 16, workers: []int{1}}}
	}

	var entries []benchEntry
	scenarios := map[int]*Scenario{}
	for ci, cell := range grid {
		sc, ok := scenarios[cell.rows]
		if !ok {
			var err error
			sc, err = UniversityScenario(ScenarioOptions{Seed: 42, N: cell.rows, DirectAux: true})
			if err != nil {
				t.Fatal(err)
			}
			scenarios[cell.rows] = sc
		}
		tu := benchTu(t, sc, cell)
		for _, workers := range cell.workersAxis() {
			entries = append(entries, benchOne(t, sc, cell, workers, tu))
			e := entries[len(entries)-1]
			t.Logf("%s: %d ns/op, %d allocs/op, %d B/op (evaluated %d levels, effective workers %d, GOMAXPROCS %d)",
				e.Op, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp, e.LevelsEvaluated, e.EffectiveWorkers, e.GoMaxProcs)
		}
		// The 10⁶-row table is ~a hundred MB across P, Q and per-level
		// releases; drop it before the next cell builds its own — unless the
		// next cell shares it (the planner/exhaustive pair).
		if ci+1 >= len(grid) || grid[ci+1].rows != cell.rows {
			delete(scenarios, cell.rows)
		}
	}
	if mode == "smoke" {
		return
	}

	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(benchJSONPath, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	// Round-trip what landed on disk: the file is an interface other tooling
	// parses, so an unreadable emission must fail here, not downstream.
	if err := checkBenchJSON(); err != nil {
		t.Fatalf("emitted %s is invalid: %v", benchJSONPath, err)
	}
}

// benchTu computes a cell's explicit Tu threshold — the utility at
// k=tuFromK — outside any benchmark timer. Zero (auto-calibration) when the
// cell does not pin one.
func benchTu(t *testing.T, sc *Scenario, cell benchCell) float64 {
	t.Helper()
	if cell.tuFromK == 0 {
		return 0
	}
	var anon core.Anonymizer
	switch cell.scheme {
	case "mdav":
		anon = microagg.New()
	case "mondrian":
		anon = mondrian.New()
	default:
		t.Fatalf("unknown bench scheme %q", cell.scheme)
	}
	sctx := core.NewSweepContextParallel(sc.P, core.AttackConfig{
		Aux: sc.Q, SensitiveRange: fusion.Range{Lo: 40000, Hi: 160000},
	}, 1)
	lr, err := sctx.RunLevel(anon, cell.tuFromK, 0)
	if err != nil {
		t.Fatalf("computing Tu at k=%d: %v", cell.tuFromK, err)
	}
	return lr.Utility
}

func benchOne(t *testing.T, sc *Scenario, cell benchCell, workers int, tu float64) benchEntry {
	t.Helper()
	var evaluated int
	var anonNS, fuseNS, metricsNS int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		store := service.NewStore()
		pInfo, err := store.Put(service.DefaultTenant, "P", sc.P)
		if err != nil {
			b.Fatal(err)
		}
		qInfo, err := store.Put(service.DefaultTenant, "Q", sc.Q)
		if err != nil {
			b.Fatal(err)
		}
		spec := service.Spec{
			Type: service.JobFREDSweep, Table: pInfo.ID, Aux: qInfo.ID,
			Scheme: cell.scheme,
			MinK:   cell.minK, MaxK: cell.maxK,
			Tu:          tu,
			Adaptive:    cell.planner,
			SensitiveLo: 40000, SensitiveHi: 160000,
		}
		// Both caching planes are disabled: the result cache would collapse
		// iterations 2..N into lookups, and the level index would warm-start
		// them — either way the bench would stop measuring sweeps.
		e := service.NewEngine(store, service.Options{
			Workers: 1, SweepWorkers: workers, CacheSize: -1, LevelIndexSize: -1,
		})
		e.Start()
		defer e.Shutdown(context.Background())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := e.Submit(service.DefaultTenant, spec)
			if err != nil {
				b.Fatal(err)
			}
			if st, err = e.Wait(context.Background(), service.DefaultTenant, st.ID); err != nil {
				b.Fatal(err)
			}
			if st.State != service.StateDone {
				b.Fatalf("sweep ended %s: %s", st.State, st.Error)
			}
			if st.Cached {
				b.Fatalf("iteration %d served from the result cache; the bench must measure full sweeps", i)
			}
			evaluated = int(st.Summary["levels_evaluated"])
			if warm := len(st.Levels) - evaluated; warm > 0 {
				b.Fatalf("iteration %d warm-started %d levels; the bench must measure full sweeps", i, warm)
			}
			anonNS, fuseNS, metricsNS = 0, 0, 0
			for _, ls := range st.Levels {
				anonNS += ls.AnonymizeNS
				fuseNS += ls.FuseNS
				metricsNS += ls.MetricsNS
			}
		}
	})
	effective := workers
	if levels := cell.levels(); effective > levels {
		effective = levels
	}
	return benchEntry{
		Op:               cell.op(workers),
		Scheme:           cell.scheme,
		Rows:             cell.rows,
		MinK:             cell.minK,
		MaxK:             cell.maxK,
		Workers:          workers,
		EffectiveWorkers: effective,
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		Mode:             cell.mode(),
		LevelsEvaluated:  evaluated,
		NsPerOp:          r.NsPerOp(),
		AllocsPerOp:      r.AllocsPerOp(),
		BytesPerOp:       r.AllocedBytesPerOp(),
		AnonymizeNS:      anonNS,
		FuseNS:           fuseNS,
		MetricsNS:        metricsNS,
	}
}

// TestBenchJSONFresh runs in every ordinary `go test` pass (no gate): it
// fails when the committed BENCH_sweep.json no longer matches the emitting
// test's schema or grid — a stale file after the grid or entry format
// changed. Regenerate with EMIT_BENCH=1 go test -run TestEmitBenchJSON.
func TestBenchJSONFresh(t *testing.T) {
	if err := checkBenchJSON(); err != nil {
		t.Fatalf("%s is stale: %v\nregenerate with: EMIT_BENCH=1 go test -run TestEmitBenchJSON", benchJSONPath, err)
	}
}

// checkBenchJSON validates the on-disk BENCH_sweep.json against the current
// grid and entry schema.
func checkBenchJSON() error {
	raw, err := os.ReadFile(benchJSONPath)
	if err != nil {
		return err
	}

	// Key-set check: the committed entries must carry exactly the fields
	// benchEntry serializes today — nothing missing, nothing left over from
	// an older schema.
	var want map[string]json.RawMessage
	canon, _ := json.Marshal(benchEntry{})
	if err := json.Unmarshal(canon, &want); err != nil {
		return err
	}
	var loose []map[string]json.RawMessage
	if err := json.Unmarshal(raw, &loose); err != nil {
		return err
	}
	for i, m := range loose {
		if len(m) != len(want) {
			return fmt.Errorf("entry %d has %d fields, schema has %d", i, len(m), len(want))
		}
		for k := range want {
			if _, ok := m[k]; !ok {
				return fmt.Errorf("entry %d is missing field %q", i, k)
			}
		}
	}

	var entries []benchEntry
	if err := json.Unmarshal(raw, &entries); err != nil {
		return err
	}
	wantN := 0
	for _, cell := range benchGrid {
		wantN += len(cell.workersAxis())
	}
	if got := len(entries); got != wantN {
		return fmt.Errorf("%d entries, grid defines %d", got, wantN)
	}
	i := 0
	for _, cell := range benchGrid {
		for _, workers := range cell.workersAxis() {
			e := entries[i]
			i++
			if e.Op != cell.op(workers) {
				return fmt.Errorf("entry %d op %q, grid expects %q", i-1, e.Op, cell.op(workers))
			}
			if e.Scheme != cell.scheme || e.Rows != cell.rows || e.MinK != cell.minK || e.MaxK != cell.maxK || e.Workers != workers || e.Mode != cell.mode() {
				return fmt.Errorf("entry %d %+v does not match grid cell %+v workers=%d", i-1, e, cell, workers)
			}
			if e.NsPerOp <= 0 || e.GoMaxProcs <= 0 || e.EffectiveWorkers <= 0 || e.LevelsEvaluated <= 0 {
				return fmt.Errorf("entry %d is degenerate: %+v", i-1, e)
			}
			if e.AnonymizeNS <= 0 || e.FuseNS <= 0 || e.MetricsNS <= 0 {
				return fmt.Errorf("entry %d has an empty phase breakdown: %+v", i-1, e)
			}
			if cell.planner {
				if e.LevelsEvaluated > plannerMaxEvaluated {
					return fmt.Errorf("planner entry %q evaluated %d levels, contract allows ≤ %d",
						e.Op, e.LevelsEvaluated, plannerMaxEvaluated)
				}
			} else if e.LevelsEvaluated != cell.levels() {
				return fmt.Errorf("exhaustive entry %q evaluated %d levels, want the full %d",
					e.Op, e.LevelsEvaluated, cell.levels())
			}
		}
	}

	// The pinned speedup: every planner entry must beat its exhaustive twin
	// (same scheme/rows/range/workers) by the contracted factor.
	byOp := map[string]benchEntry{}
	for _, e := range entries {
		byOp[e.Op] = e
	}
	for _, cell := range benchGrid {
		if !cell.planner {
			continue
		}
		twin := cell
		twin.planner = false
		for _, workers := range cell.workersAxis() {
			p, ok := byOp[cell.op(workers)]
			ex, ok2 := byOp[twin.op(workers)]
			if !ok || !ok2 {
				return fmt.Errorf("planner cell %q has no exhaustive twin %q", cell.op(workers), twin.op(workers))
			}
			if p.NsPerOp*plannerMinSpeedup > ex.NsPerOp {
				return fmt.Errorf("planner %q is only %.2fx faster than exhaustive %q, contract pins ≥ %dx",
					p.Op, float64(ex.NsPerOp)/float64(p.NsPerOp), ex.Op, plannerMinSpeedup)
			}
		}
	}
	return nil
}
