package repro

// TestEmitBenchJSON pins the performance trajectory: it runs the service
// fred-sweep benchmark over a small grid of cohort sizes and sweep worker
// counts and writes the measurements to BENCH_sweep.json, which is committed
// so each PR's numbers are diffable against the last. Gated behind
// EMIT_BENCH=1 — it is a measurement job, not a correctness test, and has no
// place in the ordinary `go test` wall time.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/service"
)

// benchEntry is one BENCH_sweep.json measurement.
type benchEntry struct {
	Op          string `json:"op"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	Rows        int    `json:"rows"`
	Workers     int    `json:"workers"`
}

const benchJSONPath = "BENCH_sweep.json"

func TestEmitBenchJSON(t *testing.T) {
	if os.Getenv("EMIT_BENCH") == "" {
		t.Skip("set EMIT_BENCH=1 to run the benchmark grid and write " + benchJSONPath)
	}

	var entries []benchEntry
	for _, rows := range []int{40, 250} {
		sc, err := UniversityScenario(ScenarioOptions{Seed: 42, N: rows})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				store := service.NewStore()
				pInfo, err := store.Put(service.DefaultTenant, "P", sc.P)
				if err != nil {
					b.Fatal(err)
				}
				qInfo, err := store.Put(service.DefaultTenant, "Q", sc.Q)
				if err != nil {
					b.Fatal(err)
				}
				spec := service.Spec{
					Type: service.JobFREDSweep, Table: pInfo.ID, Aux: qInfo.ID,
					MinK: 2, MaxK: 16,
					SensitiveLo: 40000, SensitiveHi: 160000,
				}
				// Caching disabled: every iteration is a full sweep, so the
				// grid measures compute scaling, not cache lookups.
				e := service.NewEngine(store, service.Options{
					Workers: 1, SweepWorkers: workers, CacheSize: -1,
				})
				e.Start()
				defer e.Shutdown(context.Background())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					st, err := e.Submit(service.DefaultTenant, spec)
					if err != nil {
						b.Fatal(err)
					}
					if st, err = e.Wait(context.Background(), service.DefaultTenant, st.ID); err != nil {
						b.Fatal(err)
					}
					if st.State != service.StateDone {
						b.Fatalf("sweep ended %s: %s", st.State, st.Error)
					}
				}
			})
			entries = append(entries, benchEntry{
				Op:          fmt.Sprintf("service-fred-sweep/rows=%d/workers=%d", rows, workers),
				NsPerOp:     r.NsPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Rows:        rows,
				Workers:     workers,
			})
			t.Logf("%s: %d ns/op, %d allocs/op, %d B/op",
				entries[len(entries)-1].Op, r.NsPerOp(), r.AllocsPerOp(), r.AllocedBytesPerOp())
		}
	}

	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(benchJSONPath, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	// Round-trip what landed on disk: the file is an interface other tooling
	// parses, so an unreadable emission must fail here, not downstream.
	reread, err := os.ReadFile(benchJSONPath)
	if err != nil {
		t.Fatal(err)
	}
	var parsed []benchEntry
	if err := json.Unmarshal(reread, &parsed); err != nil {
		t.Fatalf("emitted %s does not parse: %v", benchJSONPath, err)
	}
	if len(parsed) != len(entries) {
		t.Fatalf("emitted %d entries, re-read %d", len(entries), len(parsed))
	}
	for i, e := range parsed {
		if e.Op == "" || e.NsPerOp <= 0 {
			t.Fatalf("entry %d is degenerate: %+v", i, e)
		}
	}
}
