package repro

// Cross-module integration tests: CSV round-trips through the attack
// pipeline, sequential-release composition on real anonymizers, the
// perturbation family inside the FRED sweep, and parser robustness.

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/composition"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fuzzy"
	"repro/internal/kanon"
	"repro/internal/metrics"
	"repro/internal/microagg"
	"repro/internal/perturb"
	"repro/internal/risk"
)

// TestPipelineSurvivesCSVRoundTrip runs the attack on tables that have been
// serialized and re-read — the CLI path — and checks the numbers match the
// in-memory path exactly.
func TestPipelineSurvivesCSVRoundTrip(t *testing.T) {
	sc, err := UniversityScenario(ScenarioOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	release, err := sc.Release(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip := func(tb *dataset.Table) *dataset.Table {
		var buf bytes.Buffer
		if err := dataset.WriteCSV(&buf, tb); err != nil {
			t.Fatal(err)
		}
		out, err := dataset.ReadCSV(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	p2, q2, rel2 := roundTrip(sc.P), roundTrip(sc.Q), roundTrip(release)

	_, before1, after1, err := sc.Attack(release, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, before2, after2, err := core.Attack(p2, rel2, core.AttackConfig{
		Aux: q2, Estimator: sc.Estimator(), SensitiveRange: sc.SensitiveRange,
	})
	if err != nil {
		t.Fatal(err)
	}
	if before1 != before2 || after1 != after2 {
		t.Errorf("CSV path diverged: (%g, %g) vs (%g, %g)", before1, after1, before2, after2)
	}
}

// TestCompositionSharpensUniversityReleases mounts the sequential-release
// attack on two real releases of the same cohort and confirms the
// intersection never widens and the fused estimate never worsens.
func TestCompositionSharpensUniversityReleases(t *testing.T) {
	sc, err := UniversityScenario(ScenarioOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := intervalRelease(t, sc.P, 4), intervalRelease(t, sc.P, 6)
	merged, err := composition.Intersect(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := composition.Narrowing(merged, r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if ratio > 1+1e-12 {
		t.Errorf("composition widened cells: %g", ratio)
	}
	// Attack the merged release: at least as close as the wider of the two.
	_, _, afterMerged, err := sc.Attack(merged, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, after2, err := sc.Attack(r2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Allow a small slack: the fuzzy system is not perfectly monotone in
	// input tightness, but the merged release must not be substantially
	// worse for the adversary than the coarser single release.
	if afterMerged > after2*1.05 {
		t.Errorf("merged release attack (%g) much worse than single release (%g)", afterMerged, after2)
	}
}

// intervalRelease produces an interval-cell microaggregated release with the
// sensitive column suppressed (composition and NCP need bounded cells).
func intervalRelease(t *testing.T, p *dataset.Table, k int) *dataset.Table {
	t.Helper()
	a := &microagg.Anonymizer{Opts: microagg.Options{Standardize: true, CentroidAsInterval: true}}
	rel, err := a.Anonymize(p, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rel.Schema().IndicesOf(dataset.Sensitive) {
		rel.SuppressColumn(c)
	}
	return rel
}

// TestPerturbationInsideSweep runs the Laplace anonymizer through the FRED
// sweep machinery: the taxonomy's other family slots into the same
// Basic_Anonymization seat.
func TestPerturbationInsideSweep(t *testing.T) {
	sc, err := UniversityScenario(ScenarioOptions{Seed: 42, N: 30})
	if err != nil {
		t.Fatal(err)
	}
	atk := core.AttackConfig{Aux: sc.Q, Estimator: sc.Estimator(), SensitiveRange: sc.SensitiveRange}
	lap := perturb.New(42)
	// Moderate budget: ε(k) = 10/k keeps the low levels informative. With
	// the default ε = 1/k the perturbed reviews are pure noise and the
	// naive fuzzy fusion does WORSE than the midpoint — the garbage release
	// features poison the estimator (recorded in EXPERIMENTS.md).
	lap.Epsilon = func(k int) float64 { return 10 / float64(k) }
	levels, err := core.Sweep(sc.P, lap, atk, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 7 {
		t.Fatalf("levels = %d", len(levels))
	}
	// At the informative low levels fusion must still breach.
	for _, lr := range levels[:2] {
		if lr.After >= lr.Before {
			t.Errorf("k=%d: fusion gained nothing on mildly perturbed release", lr.K)
		}
	}
}

// TestKanonReleasesAlwaysKAnonymousProperty: whatever the cohort seed and k,
// the generalization anonymizer's output passes the k-anonymity check.
func TestKanonReleasesAlwaysKAnonymousProperty(t *testing.T) {
	gens, err := reviewLadders()
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw)%4 + 2 // 2..5
		sc, err := UniversityScenario(ScenarioOptions{Seed: seed, N: 20})
		if err != nil {
			return false
		}
		a := kanon.New(gens)
		a.MaxSuppressFraction = 0.25
		rel, err := a.Anonymize(sc.P, k)
		if err != nil {
			return false
		}
		return kanon.IsKAnonymous(rel, k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestRuleParserNeverPanics feeds the rule parser adversarial strings; it
// must return errors, never panic.
func TestRuleParserNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = fuzzy.ParseRule(s)
		_, _ = fuzzy.ParseRules(s + "\n" + s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestUtilityMetricsAgreeOnOrdering: discernibility utility and NCP-based
// loss must order two releases consistently (more generalization → lower
// utility and higher loss).
func TestUtilityMetricsAgreeOnOrdering(t *testing.T) {
	sc, err := UniversityScenario(ScenarioOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rel3, err := sc.Release(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	rel10, err := sc.Release(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	u3, err := metrics.Utility(rel3, 3)
	if err != nil {
		t.Fatal(err)
	}
	u10, err := metrics.Utility(rel10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if u10 >= u3 {
		t.Errorf("utility ordering broken: U(10)=%g ≥ U(3)=%g", u10, u3)
	}
	// NCP needs bounded cells: rebuild with interval mode.
	n3, err := metrics.NCP(sc.P, intervalRelease(t, sc.P, 3))
	if err != nil {
		t.Fatal(err)
	}
	n10, err := metrics.NCP(sc.P, intervalRelease(t, sc.P, 10))
	if err != nil {
		t.Fatal(err)
	}
	if n10 <= n3 {
		t.Errorf("NCP ordering broken: NCP(10)=%g ≤ NCP(3)=%g", n10, n3)
	}
}

// TestRiskDropsWithK: the ±10% breach rate must not rise substantially as k
// grows (the defense is doing something).
func TestRiskTrendsWithK(t *testing.T) {
	sc, err := UniversityScenario(ScenarioOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	breach := func(k int) float64 {
		rel, err := sc.Release(k, nil)
		if err != nil {
			t.Fatal(err)
		}
		a, err := sc.Assess(rel, nil)
		if err != nil {
			t.Fatal(err)
		}
		return a.Breach10
	}
	b2, b14 := breach(2), breach(14)
	if b14 > b2+0.10 {
		t.Errorf("±10%% breach rose with k: %.2f at k=2 vs %.2f at k=14", b2, b14)
	}
	// Sanity: assessments are well-formed.
	var _ *risk.Assessment
}
