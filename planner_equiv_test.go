package repro

// TestPlannerEquivalenceProperty is the adaptive planner's correctness
// property, randomized: over random cohorts, schemes, worker counts,
// thresholds and warm-start subsets, the planner's decision — optimal k,
// Hmax, the H series and the released table — must be IEEE-754-bit-identical
// to the exhaustive sweep's, and on monotone-utility series it must evaluate
// at most ⌈log₂(K+1)⌉ probes plus the candidate band. The trials are seeded,
// so a failure reproduces deterministically; runs in CI's planner job.

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/core/planner"
	"repro/internal/fusion"
	"repro/internal/metrics"
	"repro/internal/microagg"
	"repro/internal/mondrian"
)

func TestPlannerEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	schemes := []struct {
		name string
		anon func() core.Anonymizer
	}{
		{"mdav", func() core.Anonymizer { return microagg.New() }},
		{"mondrian", func() core.Anonymizer { return mondrian.New() }},
	}
	for trial := 0; trial < 6; trial++ {
		n := 60 + rng.Intn(340)
		maxK := 10 + rng.Intn(10)
		scheme := schemes[rng.Intn(len(schemes))]
		workers := []int{1, 4}[rng.Intn(2)]
		sc, err := UniversityScenario(ScenarioOptions{Seed: int64(100 + trial), N: n, DirectAux: true})
		if err != nil {
			t.Fatal(err)
		}
		atk := core.AttackConfig{Aux: sc.Q, SensitiveRange: fusion.Range{Lo: 40000, Hi: 160000}}

		// Exhaustive ground truth: every level of the range, streamed.
		var series []core.LevelResult
		err = core.SweepStream(context.Background(), sc.P, core.StreamConfig{
			Anonymizer: scheme.anon(), Attack: atk,
			MinK: 2, MaxK: maxK, Workers: workers,
		}, func(lr core.LevelResult) error {
			series = append(series, lr)
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d (%s n=%d): exhaustive sweep: %v", trial, scheme.name, n, err)
		}
		if len(series) < 3 {
			t.Fatalf("trial %d: exhaustive sweep produced only %d levels", trial, len(series))
		}
		monotone := true
		for i := 1; i < len(series); i++ {
			if series[i].Utility > series[i-1].Utility {
				monotone = false
			}
		}

		// Random explicit thresholds drawn from the series itself, and a
		// random warm-start subset adopted verbatim from it.
		tu := series[rng.Intn(len(series))].Utility
		var tp float64
		if rng.Intn(2) == 0 {
			tp = series[rng.Intn(len(series))].After
		}
		held := map[int]core.LevelResult{}
		for _, lr := range series {
			if rng.Intn(3) == 0 {
				held[lr.K] = lr
			}
		}

		ks, err := planner.Expand(2, series[len(series)-1].K, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		out, err := planner.Run(context.Background(), sc.P, planner.Config{
			Anonymizer: scheme.anon(), Attack: atk,
			Levels: ks, Tp: tp, Tu: tu,
			Workers: workers, Held: held,
		})
		if err != nil {
			t.Fatalf("trial %d (%s n=%d tp=%g tu=%g warm=%d): planner: %v",
				trial, scheme.name, n, tp, tu, len(held), err)
		}

		wantSeries := append([]core.LevelResult(nil), series...)
		want, wantErr := core.DecideWithin(wantSeries, tp, tu, metrics.DefaultHOptions())
		got, gotErr := core.DecideWithin(out.Levels, tp, tu, metrics.DefaultHOptions())
		if errors.Is(wantErr, core.ErrNoCandidate) || errors.Is(gotErr, core.ErrNoCandidate) {
			if !errors.Is(wantErr, core.ErrNoCandidate) || !errors.Is(gotErr, core.ErrNoCandidate) {
				t.Fatalf("trial %d: candidate disagreement: exhaustive err %v, planner err %v",
					trial, wantErr, gotErr)
			}
			continue
		}
		if wantErr != nil || gotErr != nil {
			t.Fatalf("trial %d: decide: exhaustive %v, planner %v", trial, wantErr, gotErr)
		}
		if got.OptimalK != want.OptimalK {
			t.Fatalf("trial %d (%s n=%d tp=%g tu=%g): planner chose k=%d, exhaustive k=%d",
				trial, scheme.name, n, tp, tu, got.OptimalK, want.OptimalK)
		}
		if math.Float64bits(got.Hmax) != math.Float64bits(want.Hmax) {
			t.Fatalf("trial %d: Hmax %x, exhaustive %x",
				trial, math.Float64bits(got.Hmax), math.Float64bits(want.Hmax))
		}
		if len(got.H) != len(want.H) {
			t.Fatalf("trial %d: %d candidates, exhaustive %d", trial, len(got.H), len(want.H))
		}
		for i := range got.H {
			if math.Float64bits(got.H[i]) != math.Float64bits(want.H[i]) {
				t.Fatalf("trial %d: H[%d] differs: %x vs %x",
					trial, i, math.Float64bits(got.H[i]), math.Float64bits(want.H[i]))
			}
		}
		if !got.Optimal.Equal(want.Optimal) {
			t.Fatalf("trial %d: released tables differ at k=%d", trial, got.OptimalK)
		}

		// The speedup contract on monotone series: probes plus the candidate
		// band (+1 for the crossing probe), warm seeds only ever helping.
		if monotone && !out.Fallback {
			band := 0
			for _, lr := range series {
				if lr.Utility >= tu {
					band++
				}
			}
			bound := ceilLog2(len(series)+1) + band + 1
			if out.Evaluated > bound {
				t.Fatalf("trial %d (%s n=%d, band %d of %d): planner evaluated %d levels, bound %d",
					trial, scheme.name, n, band, len(series), out.Evaluated, bound)
			}
		}
	}
}

func ceilLog2(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}
