package repro

// One benchmark per table and figure of the paper, plus the ablations called
// out in DESIGN.md §6 and micro-benchmarks of the substrates. The benches
// also publish the headline series values through b.ReportMetric so
// `go test -bench` output doubles as a numeric record (EXPERIMENTS.md).

import (
	"bytes"
	"context"
	"os"

	"fmt"

	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/fusion"
	"repro/internal/fuzzy"
	"repro/internal/hierarchy"
	"repro/internal/kanon"
	"repro/internal/linkage"
	"repro/internal/metrics"
	"repro/internal/microagg"
	"repro/internal/mondrian"
	"repro/internal/perturb"
	"repro/internal/service"
	"repro/internal/web"
)

// benchScenario builds the standard 40-faculty scenario once per benchmark.
func benchScenario(b *testing.B) *Scenario {
	b.Helper()
	sc, err := UniversityScenario(ScenarioOptions{Seed: 42, N: 40})
	if err != nil {
		b.Fatal(err)
	}
	return sc
}

// --- Tables I-IV -----------------------------------------------------------

// BenchmarkTableI builds the Table I sensitive database.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if datagen.TableI().NumRows() != 4 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTableII builds the Table II enterprise data.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if datagen.TableII().NumRows() != 4 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTableIII produces the anonymized enterprise release via
// full-domain generalization, the paper's Table III step.
func BenchmarkTableIII(b *testing.B) {
	p := datagen.TableII()
	gens := make(map[string]hierarchy.Generalizer)
	for _, name := range []string{"InvstVol", "InvstAmt", "Valuation"} {
		l, err := hierarchy.NewLadder(0, 10, 5)
		if err != nil {
			b.Fatal(err)
		}
		gens[name] = l
	}
	a := kanon.New(gens)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Anonymize(p, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIV runs the adversary's collection step: search the web
// corpus by identifier, extract, link — producing Table IV.
func BenchmarkTableIV(b *testing.B) {
	corpus, err := web.BuildCorpus(datagen.TableIIProfiles(), web.GenOptions{Seed: 2008, Distractors: 25})
	if err != nil {
		b.Fatal(err)
	}
	names := []string{"Alice", "Bob", "Christine", "Robert"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := web.Gather(corpus, names, web.CorporateLadder, linkage.DefaultMatcher())
		if err != nil {
			b.Fatal(err)
		}
		if q.NumRows() != 4 {
			b.Fatal("bad gather")
		}
	}
}

// --- Figures 4-8 -----------------------------------------------------------

// sweepOnce runs the Figures 4-7 level sweep and reports headline values.
func sweepOnce(b *testing.B, sc *Scenario) []core.LevelResult {
	b.Helper()
	levels, err := sc.Sweep(2, 16, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	return levels
}

// BenchmarkFig4BeforeFusion regenerates the (P∘P') series.
func BenchmarkFig4BeforeFusion(b *testing.B) {
	sc := benchScenario(b)
	var levels []core.LevelResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		levels = sweepOnce(b, sc)
	}
	b.ReportMetric(levels[0].Before, "before@k=2")
	b.ReportMetric(levels[len(levels)-1].Before, "before@k=16")
}

// BenchmarkFig5AfterFusion regenerates the (P∘P̂) series.
func BenchmarkFig5AfterFusion(b *testing.B) {
	sc := benchScenario(b)
	var levels []core.LevelResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		levels = sweepOnce(b, sc)
	}
	b.ReportMetric(levels[0].After, "after@k=2")
	b.ReportMetric(levels[len(levels)-1].After, "after@k=16")
}

// BenchmarkFig6InformationGain regenerates the G series.
func BenchmarkFig6InformationGain(b *testing.B) {
	sc := benchScenario(b)
	var levels []core.LevelResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		levels = sweepOnce(b, sc)
	}
	b.ReportMetric(levels[0].Gain, "gain@k=2")
	b.ReportMetric(levels[len(levels)-1].Gain, "gain@k=16")
}

// BenchmarkFig7Utility regenerates the U_k series.
func BenchmarkFig7Utility(b *testing.B) {
	sc := benchScenario(b)
	var levels []core.LevelResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		levels = sweepOnce(b, sc)
	}
	b.ReportMetric(levels[0].Utility*1e3, "mU@k=2")
	b.ReportMetric(levels[len(levels)-1].Utility*1e3, "mU@k=16")
}

// BenchmarkFig8WeightedSum runs full FRED with auto-calibrated thresholds
// and reports the optimum of Figure 8.
func BenchmarkFig8WeightedSum(b *testing.B) {
	sc := benchScenario(b)
	var res *core.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sc.RunFRED(FREDOptions{MaxK: 16})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.OptimalK), "optimal-k")
	b.ReportMetric(res.Hmax, "Hmax")
}

// --- Ablations (DESIGN.md §6) ----------------------------------------------

// BenchmarkAblationSchemes re-runs the sweep under each partitioning scheme,
// checking the paper's "other solutions produce similar results" claim.
func BenchmarkAblationSchemes(b *testing.B) {
	sc := benchScenario(b)
	for _, anon := range []core.Anonymizer{microagg.New(), mondrian.New()} {
		b.Run(anon.Name(), func(b *testing.B) {
			var levels []core.LevelResult
			for i := 0; i < b.N; i++ {
				var err error
				levels, err = sc.Sweep(2, 16, anon, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(levels[0].After, "after@k=2")
			b.ReportMetric(levels[len(levels)-1].After, "after@kmax")
		})
	}
}

// BenchmarkAblationFusion compares fusion engines: how much of the breach is
// the fuzzy machinery versus any fusion at all.
func BenchmarkAblationFusion(b *testing.B) {
	sc := benchScenario(b)
	release, err := sc.Release(6, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, est := range []fusion.Estimator{
		fusion.Midpoint{}, fusion.Rank{}, sc.Estimator(),
	} {
		b.Run(est.Name(), func(b *testing.B) {
			var after float64
			for i := 0; i < b.N; i++ {
				_, _, a, err := sc.Attack(release, est)
				if err != nil {
					b.Fatal(err)
				}
				after = a
			}
			b.ReportMetric(after, "after@k=6")
		})
	}
}

// BenchmarkAblationHNormalization compares the H scalings of DESIGN.md §6.
func BenchmarkAblationHNormalization(b *testing.B) {
	sc := benchScenario(b)
	levels := sweepOnce(b, sc)
	dis := make([]float64, len(levels))
	utl := make([]float64, len(levels))
	for i, lr := range levels {
		dis[i], utl[i] = lr.After, lr.Utility
	}
	for _, norm := range []metrics.HNormalization{
		metrics.NormalizeByMax, metrics.NormalizeNone, metrics.NormalizeMinMax,
	} {
		b.Run(norm.String(), func(b *testing.B) {
			var best int
			for i := 0; i < b.N; i++ {
				h, err := metrics.HSeries(dis, utl, metrics.HOptions{W1: 0.5, W2: 0.5, Normalize: norm})
				if err != nil {
					b.Fatal(err)
				}
				best, _, err = metrics.ArgMax(h)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(levels[best].K), "argmax-k")
		})
	}
}

// BenchmarkAblationLiteralLoop measures the pseudocode's literal stopping
// rule against the prose rule.
func BenchmarkAblationLiteralLoop(b *testing.B) {
	sc := benchScenario(b)
	for _, literal := range []bool{false, true} {
		name := "prose-loop"
		if literal {
			name = "literal-loop"
		}
		b.Run(name, func(b *testing.B) {
			var levels int
			for i := 0; i < b.N; i++ {
				res, err := sc.RunFRED(FREDOptions{MaxK: 16, LiteralPaperLoop: literal, Tp: 1, Tu: 1e-9})
				if err != nil {
					b.Fatal(err)
				}
				levels = len(res.Levels)
			}
			b.ReportMetric(float64(levels), "levels-swept")
		})
	}
}

// BenchmarkAblationWebNoise sweeps the attack under increasing web noise.
func BenchmarkAblationWebNoise(b *testing.B) {
	for _, tc := range []struct {
		name string
		opts web.GenOptions
	}{
		{"clean", web.GenOptions{}},
		{"missing30", web.GenOptions{MissingProperty: 0.3, MissingEmployment: 0.3}},
		{"typos50", web.GenOptions{NameTypoProb: 0.5}},
		{"noisy", web.GenOptions{MissingProperty: 0.3, NameTypoProb: 0.3, PropertyNoise: 0.3}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			sc, err := UniversityScenario(ScenarioOptions{Seed: 42, N: 40, Web: tc.opts})
			if err != nil {
				b.Fatal(err)
			}
			release, err := sc.Release(6, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var after float64
			for i := 0; i < b.N; i++ {
				_, _, a, err := sc.Attack(release, nil)
				if err != nil {
					b.Fatal(err)
				}
				after = a
			}
			b.ReportMetric(after, "after@k=6")
		})
	}
}

// BenchmarkAblationPerturbation attacks a Laplace-perturbed release — the
// paper's other anonymization family (Section 1's taxonomy). The breach
// persists: release-side noise does not touch the auxiliary channel.
func BenchmarkAblationPerturbation(b *testing.B) {
	sc := benchScenario(b)
	for _, k := range []int{2, 8} {
		b.Run(fmt.Sprintf("laplace-k%d", k), func(b *testing.B) {
			lap := perturb.New(42)
			var after float64
			for i := 0; i < b.N; i++ {
				anon, err := lap.Anonymize(sc.P, k)
				if err != nil {
					b.Fatal(err)
				}
				release := anon.Clone()
				release.SuppressColumn(release.Schema().MustLookup("Salary"))
				_, _, a, err := sc.Attack(release, nil)
				if err != nil {
					b.Fatal(err)
				}
				after = a
			}
			b.ReportMetric(after, "after")
		})
	}
}

// BenchmarkAblationMicroaggVariants compares MDAV against V-MDAV and the
// optimal univariate DP on within-group SSE (information loss).
func BenchmarkAblationMicroaggVariants(b *testing.B) {
	sc := benchScenario(b)
	variants := []struct {
		name   string
		assign func(k int) ([][]int, error)
	}{
		{"mdav", func(k int) ([][]int, error) { return microagg.New().Assign(sc.P, k) }},
		{"v-mdav", func(k int) ([][]int, error) { return microagg.NewVMDAV().Assign(sc.P, k) }},
		{"optimal-1d", func(k int) ([][]int, error) {
			return (&microagg.OptimalUnivariate{Column: "Research"}).Assign(sc.P, k)
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var sse float64
			for i := 0; i < b.N; i++ {
				groups, err := v.assign(5)
				if err != nil {
					b.Fatal(err)
				}
				sse = microagg.SSE(sc.P, groups)
			}
			b.ReportMetric(sse, "sse@k=5")
		})
	}
}

// BenchmarkAdaptiveDefense measures the adaptive per-record defense and its
// residual exposure — the follow-up paper's [11] prototype.
func BenchmarkAdaptiveDefense(b *testing.B) {
	sc := benchScenario(b)
	var res *core.AdaptiveResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sc.RunAdaptive(4, 0.10, 0.10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ExposedBefore, "exposed-before")
	b.ReportMetric(res.ExposedAfter, "exposed-after")
	b.ReportMetric(float64(len(res.Suppressed)), "suppressed")
}

// BenchmarkRiskAssessment measures the record-level disclosure report.
func BenchmarkRiskAssessment(b *testing.B) {
	sc := benchScenario(b)
	release, err := sc.Release(6, nil)
	if err != nil {
		b.Fatal(err)
	}
	var breach float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := sc.Assess(release, nil)
		if err != nil {
			b.Fatal(err)
		}
		breach = a.Breach10
	}
	b.ReportMetric(breach, "breach10@k=6")
}

// BenchmarkAblationHandAuthoredFIS attacks with the hand-written compound
// rule base of testdata/university.fis — the "adversary with domain
// knowledge" of Section 3.B. It breaches far harder than the auto-generated
// single-antecedent rules (see EXPERIMENTS.md).
func BenchmarkAblationHandAuthoredFIS(b *testing.B) {
	sc := benchScenario(b)
	release, err := sc.Release(6, nil)
	if err != nil {
		b.Fatal(err)
	}
	raw, err := os.ReadFile("testdata/university.fis")
	if err != nil {
		b.Fatal(err)
	}
	sys, err := fuzzy.ParseFIS(bytes.NewReader(raw), fuzzy.Options{})
	if err != nil {
		b.Fatal(err)
	}
	_, names, err := fusion.Features(release, sc.Q)
	if err != nil {
		b.Fatal(err)
	}
	est := &fusion.FIS{System: sys, FeatureNames: names}
	b.ResetTimer()
	var after float64
	for i := 0; i < b.N; i++ {
		_, _, a, err := sc.Attack(release, est)
		if err != nil {
			b.Fatal(err)
		}
		after = a
	}
	b.ReportMetric(after, "after@k=6")
}

// BenchmarkScalingCohort measures the full attack at growing cohort sizes —
// the scaling picture the paper leaves out.
func BenchmarkScalingCohort(b *testing.B) {
	for _, n := range []int{40, 100, 250} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			sc, err := UniversityScenario(ScenarioOptions{Seed: 42, N: n})
			if err != nil {
				b.Fatal(err)
			}
			release, err := sc.Release(6, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var after float64
			for i := 0; i < b.N; i++ {
				_, _, a, err := sc.Attack(release, nil)
				if err != nil {
					b.Fatal(err)
				}
				after = a
			}
			b.ReportMetric(after, "after@k=6")
		})
	}
}

// BenchmarkSweepParallel compares the sequential and concurrent sweeps.
func BenchmarkSweepParallel(b *testing.B) {
	sc := benchScenario(b)
	atk := core.AttackConfig{Aux: sc.Q, Estimator: sc.Estimator(), SensitiveRange: sc.SensitiveRange}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Sweep(sc.P, microagg.New(), atk, 2, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SweepParallel(sc.P, microagg.New(), atk, 2, 16, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Service path ------------------------------------------------------------

// benchServiceSpec is the standard fred-sweep job over the benchmark
// scenario's P and Q, as submitted through the service layer.
func benchServiceSpec(b *testing.B, store *service.Store, sc *Scenario) service.Spec {
	b.Helper()
	pInfo, err := store.Put(service.DefaultTenant, "P", sc.P)
	if err != nil {
		b.Fatal(err)
	}
	qInfo, err := store.Put(service.DefaultTenant, "Q", sc.Q)
	if err != nil {
		b.Fatal(err)
	}
	return service.Spec{
		Type: service.JobFREDSweep, Table: pInfo.ID, Aux: qInfo.ID,
		MinK: 2, MaxK: 16,
		SensitiveLo: 40000, SensitiveHi: 160000,
	}
}

// runServiceJob submits one job and blocks until it completes.
func runServiceJob(b *testing.B, e *service.Engine, spec service.Spec) service.Status {
	b.Helper()
	st, err := e.Submit(service.DefaultTenant, spec)
	if err != nil {
		b.Fatal(err)
	}
	st, err = e.Wait(context.Background(), service.DefaultTenant, st.ID)
	if err != nil {
		b.Fatal(err)
	}
	if st.State != service.StateDone {
		b.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	return st
}

// BenchmarkServiceFREDSweep measures the full service path — job submit
// through worker pool to completion — for a fred-sweep, uncached versus
// served from the LRU result cache. This is the baseline every serving-layer
// perf PR moves against.
func BenchmarkServiceFREDSweep(b *testing.B) {
	sc := benchScenario(b)
	b.Run("uncached", func(b *testing.B) {
		store := service.NewStore()
		spec := benchServiceSpec(b, store, sc)
		e := service.NewEngine(store, service.Options{Workers: 2, CacheSize: -1})
		e.Start()
		defer e.Shutdown(context.Background())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runServiceJob(b, e, spec)
		}
	})
	b.Run("cached", func(b *testing.B) {
		store := service.NewStore()
		spec := benchServiceSpec(b, store, sc)
		e := service.NewEngine(store, service.Options{Workers: 2})
		e.Start()
		defer e.Shutdown(context.Background())
		warm := runServiceJob(b, e, spec)
		if warm.Cached {
			b.Fatal("warmup must compute")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if st := runServiceJob(b, e, spec); !st.Cached {
				b.Fatal("expected a cache hit")
			}
		}
	})
}

// BenchmarkServiceAnonymize measures the cheapest job type end to end — the
// engine's fixed overhead (queue, snapshotting, hashing is at submit).
func BenchmarkServiceAnonymize(b *testing.B) {
	sc := benchScenario(b)
	store := service.NewStore()
	pInfo, err := store.Put(service.DefaultTenant, "P", sc.P)
	if err != nil {
		b.Fatal(err)
	}
	e := service.NewEngine(store, service.Options{Workers: 2, CacheSize: -1})
	e.Start()
	defer e.Shutdown(context.Background())
	spec := service.Spec{Type: service.JobAnonymize, Table: pInfo.ID, K: 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runServiceJob(b, e, spec)
	}
}

// --- Substrate micro-benchmarks ---------------------------------------------

// BenchmarkMDAV measures microaggregation on the standard cohort.
func BenchmarkMDAV(b *testing.B) {
	sc := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := microagg.New().Anonymize(sc.P, 6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMondrian measures Mondrian partitioning on the standard cohort.
func BenchmarkMondrian(b *testing.B) {
	sc := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mondrian.New().Anonymize(sc.P, 6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFuzzyFuse measures one full F(P', Q) evaluation.
func BenchmarkFuzzyFuse(b *testing.B) {
	sc := benchScenario(b)
	release, err := sc.Release(6, nil)
	if err != nil {
		b.Fatal(err)
	}
	est := sc.Estimator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fusion.Fuse(release, sc.Q, est, sc.SensitiveRange); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWebSearch measures corpus search by identifier.
func BenchmarkWebSearch(b *testing.B) {
	sc := benchScenario(b)
	names := sc.P.ColumnStrings(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sc.Corpus.Search(names[i%len(names)], 3) == nil {
			b.Fatal("no hits")
		}
	}
}

// BenchmarkDissimilarity measures Definition 1 on the cohort matrices.
func BenchmarkDissimilarity(b *testing.B) {
	sc := benchScenario(b)
	cols := []string{"Teaching", "Research", "Service", "Salary"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.TableDissimilarity(sc.P, sc.P, cols, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableClone measures the copy-on-write clone plus the zero-copy
// release projection — the per-level table plumbing of a sweep.
func BenchmarkTableClone(b *testing.B) {
	sc := benchScenario(b)
	sens := sc.P.Schema().IndicesOf(dataset.Sensitive)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel := sc.P.WithSuppressed(sens...)
		if rel.NumRows() != sc.P.NumRows() {
			b.Fatal("bad view")
		}
	}
}

// BenchmarkHashTable measures the content hash that keys the service result
// cache (columnar fingerprint under SHA-256).
func BenchmarkHashTable(b *testing.B) {
	sc := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := service.HashTable(sc.P); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeatures measures the adversary's feature assembly, uncached
// versus with the aux-side columns prepared once (the SweepContext path).
func BenchmarkFeatures(b *testing.B) {
	sc := benchScenario(b)
	release, err := sc.Release(6, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := fusion.Features(release, sc.Q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared-aux", func(b *testing.B) {
		aux := fusion.PrepareAux(sc.Q)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := fusion.FeaturesWith(release, aux); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCSVRoundTrip measures table serialization.
func BenchmarkCSVRoundTrip(b *testing.B) {
	sc := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writeCounter
		if err := dataset.WriteCSV(&buf, sc.P); err != nil {
			b.Fatal(err)
		}
	}
}

type writeCounter struct{ n int }

func (w *writeCounter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
