package diversity

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

// build constructs a table with one generalized QI ("Group") and one
// sensitive column, from parallel slices of group labels and sensitive
// values.
func build(t *testing.T, groups []string, sensitive []dataset.Value, sensKind dataset.ValueKind) *dataset.Table {
	t.Helper()
	tb := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "Group", Class: dataset.QuasiIdentifier, Kind: dataset.Text},
		dataset.Column{Name: "S", Class: dataset.Sensitive, Kind: sensKind},
	))
	for i := range groups {
		tb.MustAppendRow(dataset.Str(groups[i]), sensitive[i])
	}
	return tb
}

func TestDistinct(t *testing.T) {
	tb := build(t,
		[]string{"a", "a", "a", "b", "b", "b"},
		[]dataset.Value{
			dataset.Str("flu"), dataset.Str("cancer"), dataset.Str("aids"),
			dataset.Str("flu"), dataset.Str("flu"), dataset.Str("cancer"),
		}, dataset.Text)
	rep, err := Distinct(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfied || rep.Classes != 2 || rep.WorstValue != 2 {
		t.Errorf("rep = %+v", rep)
	}
	rep, err = Distinct(tb, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfied {
		t.Error("3-diversity should fail: class b has 2 distinct values")
	}
	if _, err := Distinct(tb, 0); err == nil {
		t.Error("l=0 accepted")
	}
}

func TestDistinctHomogeneousClassFails(t *testing.T) {
	// The classic homogeneity attack setup from [4]: one class all "cancer".
	tb := build(t,
		[]string{"a", "a", "b", "b"},
		[]dataset.Value{
			dataset.Str("cancer"), dataset.Str("cancer"),
			dataset.Str("flu"), dataset.Str("aids"),
		}, dataset.Text)
	rep, err := Distinct(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfied {
		t.Error("homogeneous class passed 2-diversity")
	}
	if rep.WorstValue != 1 || rep.WorstClass != 0 {
		t.Errorf("worst = %+v", rep)
	}
}

func TestEntropy(t *testing.T) {
	// Uniform over two values: entropy = ln 2 → satisfies l=2 exactly.
	tb := build(t,
		[]string{"a", "a", "a", "a"},
		[]dataset.Value{dataset.Str("x"), dataset.Str("x"), dataset.Str("y"), dataset.Str("y")},
		dataset.Text)
	rep, err := Entropy(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfied || math.Abs(rep.WorstValue-math.Log(2)) > 1e-12 {
		t.Errorf("rep = %+v", rep)
	}
	// Skewed 3-1 over two values: entropy < ln 2 → fails l=2.
	tb = build(t,
		[]string{"a", "a", "a", "a"},
		[]dataset.Value{dataset.Str("x"), dataset.Str("x"), dataset.Str("x"), dataset.Str("y")},
		dataset.Text)
	rep, err = Entropy(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfied {
		t.Error("skewed class passed entropy 2-diversity")
	}
	if _, err := Entropy(tb, 0); err == nil {
		t.Error("l=0 accepted")
	}
}

func TestRecursive(t *testing.T) {
	// Counts 3,2,1 with l=2: r1=3, tail=r2+r3=3, ratio 1. Satisfied iff c>1.
	tb := build(t,
		[]string{"a", "a", "a", "a", "a", "a"},
		[]dataset.Value{
			dataset.Str("x"), dataset.Str("x"), dataset.Str("x"),
			dataset.Str("y"), dataset.Str("y"), dataset.Str("z"),
		}, dataset.Text)
	rep, err := Recursive(tb, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfied || rep.WorstValue != 1 {
		t.Errorf("rep = %+v", rep)
	}
	rep, err = Recursive(tb, 0.9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfied {
		t.Error("c=0.9 should fail with ratio 1")
	}
	// Fewer than l distinct values: infinite ratio, always fails.
	tb = build(t, []string{"a", "a"}, []dataset.Value{dataset.Str("x"), dataset.Str("x")}, dataset.Text)
	rep, err = Recursive(tb, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfied {
		t.Error("single-valued class passed recursive (c,2)-diversity")
	}
	if _, err := Recursive(tb, 1, 1); err == nil {
		t.Error("l=1 accepted")
	}
	if _, err := Recursive(tb, 0, 2); err == nil {
		t.Error("c=0 accepted")
	}
}

func TestTClosenessNumeric(t *testing.T) {
	// Class "a" holds the low half of salaries, class "b" the high half —
	// far from the global distribution.
	tb := build(t,
		[]string{"a", "a", "b", "b"},
		[]dataset.Value{dataset.Num(10), dataset.Num(20), dataset.Num(1000), dataset.Num(2000)},
		dataset.Number)
	rep, err := TCloseness(tb, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfied {
		t.Errorf("skewed classes passed t=0.1 (worst %g)", rep.WorstValue)
	}
	// Perfectly mixed classes are close to the global distribution.
	tb = build(t,
		[]string{"a", "b", "a", "b"},
		[]dataset.Value{dataset.Num(10), dataset.Num(10), dataset.Num(2000), dataset.Num(2000)},
		dataset.Number)
	rep, err = TCloseness(tb, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfied {
		t.Errorf("mixed classes failed t=0.1 (worst %g)", rep.WorstValue)
	}
}

func TestTClosenessCategorical(t *testing.T) {
	tb := build(t,
		[]string{"a", "a", "b", "b"},
		[]dataset.Value{dataset.Str("x"), dataset.Str("x"), dataset.Str("y"), dataset.Str("y")},
		dataset.Text)
	rep, err := TCloseness(tb, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// Each class is a point mass vs global 50/50 → TV = 0.5 > 0.4.
	if rep.Satisfied || math.Abs(rep.WorstValue-0.5) > 1e-12 {
		t.Errorf("rep = %+v", rep)
	}
	rep, err = TCloseness(tb, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfied {
		t.Error("t=0.5 should pass with worst distance exactly 0.5")
	}
	if _, err := TCloseness(tb, -0.1); err == nil {
		t.Error("negative t accepted")
	}
	if _, err := TCloseness(tb, 1.1); err == nil {
		t.Error("t > 1 accepted")
	}
}

func TestInputValidation(t *testing.T) {
	// No sensitive column.
	noS := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "Q", Class: dataset.QuasiIdentifier, Kind: dataset.Text}))
	noS.MustAppendRow(dataset.Str("a"))
	if _, err := Distinct(noS, 2); err == nil {
		t.Error("no sensitive column accepted")
	}
	// Two sensitive columns.
	twoS := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "Q", Class: dataset.QuasiIdentifier, Kind: dataset.Text},
		dataset.Column{Name: "S1", Class: dataset.Sensitive, Kind: dataset.Text},
		dataset.Column{Name: "S2", Class: dataset.Sensitive, Kind: dataset.Text}))
	twoS.MustAppendRow(dataset.Str("a"), dataset.Str("x"), dataset.Str("y"))
	if _, err := Entropy(twoS, 2); err == nil {
		t.Error("two sensitive columns accepted")
	}
	// No QI columns.
	noQ := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "S", Class: dataset.Sensitive, Kind: dataset.Text}))
	noQ.MustAppendRow(dataset.Str("x"))
	if _, err := TCloseness(noQ, 0.5); err == nil {
		t.Error("no QI accepted")
	}
	// Empty table.
	empty := build(t, nil, nil, dataset.Text)
	if _, err := Distinct(empty, 2); err == nil {
		t.Error("empty table accepted")
	}
}
