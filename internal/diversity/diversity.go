// Package diversity implements the partition-quality guards from the
// paper's related work: l-diversity (Machanavajjhala et al. [4] — distinct,
// entropy and recursive (c,l) variants) and t-closeness (Li et al. [7]).
//
// These criteria evaluate the distribution of the sensitive attribute within
// each quasi-identifier equivalence class of an anonymized release. The
// reproduction uses them in ablation benches: the paper argues such guards
// still do not stop fusion attacks, because the breach flows through
// identifier-keyed auxiliary data rather than through the released classes.
package diversity

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Report describes the worst equivalence class under a criterion.
type Report struct {
	// Satisfied is the overall verdict.
	Satisfied bool
	// Classes is the number of equivalence classes examined.
	Classes int
	// WorstClass is a row-index sample (first row) of the weakest class.
	WorstClass int
	// WorstValue is the weakest class's score: distinct count, entropy
	// (in nats), recursive ratio, or distance, per criterion.
	WorstValue float64
}

var errNoSensitive = errors.New("diversity: table needs exactly one sensitive column for these criteria")

// sensitiveIndex returns the single sensitive column, erroring otherwise.
func sensitiveIndex(t *dataset.Table) (int, error) {
	s := t.Schema().IndicesOf(dataset.Sensitive)
	if len(s) != 1 {
		return 0, fmt.Errorf("%w: found %d", errNoSensitive, len(s))
	}
	return s[0], nil
}

func classes(t *dataset.Table) ([][]int, error) {
	qis := t.Schema().IndicesOf(dataset.QuasiIdentifier)
	if len(qis) == 0 {
		return nil, errors.New("diversity: table has no quasi-identifier columns")
	}
	g := t.GroupBy(qis)
	if len(g) == 0 {
		return nil, errors.New("diversity: table has no rows")
	}
	return g, nil
}

// classCounts tallies the sensitive values (rendered) within a class.
func classCounts(t *dataset.Table, class []int, sCol int) map[string]int {
	counts := make(map[string]int)
	for _, i := range class {
		counts[t.Cell(i, sCol).String()]++
	}
	return counts
}

// Distinct checks distinct l-diversity: every equivalence class contains at
// least l distinct sensitive values.
func Distinct(t *dataset.Table, l int) (Report, error) {
	if l < 1 {
		return Report{}, fmt.Errorf("diversity: l must be ≥ 1, got %d", l)
	}
	sCol, err := sensitiveIndex(t)
	if err != nil {
		return Report{}, err
	}
	groups, err := classes(t)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Satisfied: true, Classes: len(groups), WorstValue: math.Inf(1)}
	for _, g := range groups {
		n := float64(len(classCounts(t, g, sCol)))
		if n < rep.WorstValue {
			rep.WorstValue, rep.WorstClass = n, g[0]
		}
	}
	rep.Satisfied = rep.WorstValue >= float64(l)
	return rep, nil
}

// Entropy checks entropy l-diversity: the Shannon entropy of the sensitive
// distribution in every class is at least log(l).
func Entropy(t *dataset.Table, l int) (Report, error) {
	if l < 1 {
		return Report{}, fmt.Errorf("diversity: l must be ≥ 1, got %d", l)
	}
	sCol, err := sensitiveIndex(t)
	if err != nil {
		return Report{}, err
	}
	groups, err := classes(t)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Satisfied: true, Classes: len(groups), WorstValue: math.Inf(1)}
	for _, g := range groups {
		var h float64
		total := float64(len(g))
		for _, c := range classCounts(t, g, sCol) {
			p := float64(c) / total
			h -= p * math.Log(p)
		}
		if h < rep.WorstValue {
			rep.WorstValue, rep.WorstClass = h, g[0]
		}
	}
	rep.Satisfied = rep.WorstValue >= math.Log(float64(l))
	return rep, nil
}

// Recursive checks recursive (c,l)-diversity: in every class, with sensitive
// value counts r1 ≥ r2 ≥ …, the most frequent value satisfies
// r1 < c·(r_l + r_{l+1} + … ). WorstValue reports the tightest ratio
// r1 / Σ_{i≥l} r_i (smaller is more diverse).
func Recursive(t *dataset.Table, c float64, l int) (Report, error) {
	if l < 2 {
		return Report{}, fmt.Errorf("diversity: recursive diversity needs l ≥ 2, got %d", l)
	}
	if c <= 0 {
		return Report{}, fmt.Errorf("diversity: recursive diversity needs c > 0, got %g", c)
	}
	sCol, err := sensitiveIndex(t)
	if err != nil {
		return Report{}, err
	}
	groups, err := classes(t)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Satisfied: true, Classes: len(groups)}
	for _, g := range groups {
		counts := classCounts(t, g, sCol)
		sorted := make([]int, 0, len(counts))
		for _, n := range counts {
			sorted = append(sorted, n)
		}
		// Descending selection sort: tiny value sets.
		for i := range sorted {
			best := i
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j] > sorted[best] {
					best = j
				}
			}
			sorted[i], sorted[best] = sorted[best], sorted[i]
		}
		var tail int
		for i := l - 1; i < len(sorted); i++ {
			tail += sorted[i]
		}
		var ratio float64
		if tail == 0 {
			ratio = math.Inf(1) // fewer than l distinct values: fails
		} else {
			ratio = float64(sorted[0]) / float64(tail)
		}
		if ratio > rep.WorstValue {
			rep.WorstValue, rep.WorstClass = ratio, g[0]
		}
	}
	rep.Satisfied = rep.WorstValue < c
	return rep, nil
}

// TCloseness checks t-closeness: the distance between each class's sensitive
// distribution and the global one is at most threshold. Numeric sensitive
// attributes use the normalized 1-Wasserstein distance over empirical
// samples; categorical ones use total variation distance. WorstValue is the
// largest observed distance.
func TCloseness(t *dataset.Table, threshold float64) (Report, error) {
	if threshold < 0 || threshold > 1 {
		return Report{}, fmt.Errorf("diversity: t must be in [0,1], got %g", threshold)
	}
	sCol, err := sensitiveIndex(t)
	if err != nil {
		return Report{}, err
	}
	groups, err := classes(t)
	if err != nil {
		return Report{}, err
	}
	numeric := t.Schema().Column(sCol).Kind == dataset.Number
	rep := Report{Satisfied: true, Classes: len(groups), WorstValue: -1}

	if numeric {
		global := t.ColumnFloats(sCol, 0)
		for _, g := range groups {
			sample := make([]float64, len(g))
			for i, r := range g {
				sample[i], _ = t.Cell(r, sCol).Float()
			}
			d, err := stats.EmpiricalCDFDistance(sample, global)
			if err != nil {
				return Report{}, fmt.Errorf("diversity: t-closeness distance: %w", err)
			}
			if d > rep.WorstValue {
				rep.WorstValue, rep.WorstClass = d, g[0]
			}
		}
	} else {
		// Build the global support and distribution.
		support := make(map[string]int)
		for i := 0; i < t.NumRows(); i++ {
			s := t.Cell(i, sCol).String()
			if _, ok := support[s]; !ok {
				support[s] = len(support)
			}
		}
		globalP := make([]float64, len(support))
		for i := 0; i < t.NumRows(); i++ {
			globalP[support[t.Cell(i, sCol).String()]]++
		}
		for i := range globalP {
			globalP[i] /= float64(t.NumRows())
		}
		for _, g := range groups {
			p := make([]float64, len(support))
			for _, r := range g {
				p[support[t.Cell(r, sCol).String()]]++
			}
			for i := range p {
				p[i] /= float64(len(g))
			}
			d, err := stats.TotalVariation(p, globalP)
			if err != nil {
				return Report{}, fmt.Errorf("diversity: t-closeness distance: %w", err)
			}
			if d > rep.WorstValue {
				rep.WorstValue, rep.WorstClass = d, g[0]
			}
		}
	}
	rep.Satisfied = rep.WorstValue <= threshold
	return rep, nil
}
