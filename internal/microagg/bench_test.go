package microagg

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
)

// BenchmarkAssign pins the MDAV partitioning cost — the O(n²) inner loop the
// whole sweep rides on. ReportAllocs tracks the scratch-hoisting work: the
// group-carving loop must not allocate per call.
func BenchmarkAssign(b *testing.B) {
	for _, rows := range []int{250, 1000} {
		p, _, err := datagen.University(datagen.UniversityConfig{Seed: 42, N: rows})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			a := New()
			for i := 0; i < b.N; i++ {
				if _, err := a.Assign(p, 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
