// Package microagg implements microaggregation-based k-anonymization — the
// Basic_Anonymization scheme the paper's experiments use (Domingo-Ferrer's
// practical data-oriented microaggregation [9], MDAV).
//
// MDAV clusters records into groups of size in [k, 2k−1] that are
// homogeneous in the quasi-identifier space and replaces every record's
// quasi-identifiers by its group centroid. Identifier columns are retained
// verbatim (the enterprise setting of the paper) and sensitive columns are
// left untouched for the caller to suppress.
package microagg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
)

// Options configures MDAV.
type Options struct {
	// Standardize z-scores each quasi-identifier before computing distances
	// so attributes with large ranges do not dominate. Default true via
	// DefaultOptions.
	Standardize bool
	// CentroidAsInterval emits each aggregated cell as the group's
	// [min, max] interval rather than the centroid number. The paper's
	// Table III shows intervals; its experiments use centroids (numeric
	// estimates feed the fuzzy system either way, via interval midpoints).
	CentroidAsInterval bool
}

// DefaultOptions returns the configuration used by the reproduction's
// experiments: standardized distances, centroid cells.
func DefaultOptions() Options { return Options{Standardize: true} }

// Anonymizer runs MDAV at a given k. It implements the core package's
// Anonymizer contract structurally.
type Anonymizer struct {
	Opts Options
}

// New returns an MDAV anonymizer with default options.
func New() *Anonymizer { return &Anonymizer{Opts: DefaultOptions()} }

// Name identifies the scheme in reports.
func (a *Anonymizer) Name() string { return "mdav-microaggregation" }

// ErrTooFewRecords is returned when the table has fewer than k records. It
// wraps dataset.ErrTooFewRecords, the typed sentinel core.EndsSweep checks.
var ErrTooFewRecords = fmt.Errorf("microagg: fewer records than k: %w", dataset.ErrTooFewRecords)

// Anonymize returns a k-anonymous copy of t: quasi-identifier cells replaced
// by their MDAV group centroid (or interval). k must be ≥ 2 and ≤ the number
// of rows.
func (a *Anonymizer) Anonymize(t *dataset.Table, k int) (*dataset.Table, error) {
	groups, err := a.Assign(t, k)
	if err != nil {
		return nil, err
	}
	return Aggregate(t, groups, a.Opts.CentroidAsInterval)
}

// Assign runs MDAV and returns the clusters as row-index groups, each of
// size in [k, 2k−1].
func (a *Anonymizer) Assign(t *dataset.Table, k int) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("microagg: k must be ≥ 2, got %d", k)
	}
	n := t.NumRows()
	if n < k {
		return nil, fmt.Errorf("%w: %d < %d", ErrTooFewRecords, n, k)
	}
	qis := t.Schema().IndicesOf(dataset.QuasiIdentifier)
	if len(qis) == 0 {
		return nil, errors.New("microagg: table has no quasi-identifier columns")
	}
	for _, c := range qis {
		if t.Schema().Column(c).Kind != dataset.Number {
			return nil, fmt.Errorf("microagg: quasi-identifier %q is not numeric; MDAV is a quantitative method", t.Schema().Column(c).Name)
		}
	}
	points := t.Matrix(qis, 0)
	if a.Opts.Standardize {
		standardize(points)
	}

	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	var groups [][]int
	for len(remaining) >= 3*k {
		c := centroidOf(points, remaining)
		r := farthestFrom(points, remaining, c)
		s := farthestFrom(points, remaining, points[r])
		g1, rest := takeNearest(points, remaining, r, k)
		groups = append(groups, g1)
		g2, rest := takeNearest(points, rest, s, k)
		groups = append(groups, g2)
		remaining = rest
	}
	if len(remaining) >= 2*k {
		c := centroidOf(points, remaining)
		r := farthestFrom(points, remaining, c)
		g1, rest := takeNearest(points, remaining, r, k)
		groups = append(groups, g1, rest)
	} else if len(remaining) > 0 {
		groups = append(groups, remaining)
	}
	return groups, nil
}

// Aggregate replaces each record's quasi-identifiers with its group's
// centroid (or covering interval). Groups must partition the row indices.
func Aggregate(t *dataset.Table, groups [][]int, asInterval bool) (*dataset.Table, error) {
	qis := t.Schema().IndicesOf(dataset.QuasiIdentifier)
	out := t.Clone()
	seen := make([]bool, t.NumRows())
	for _, g := range groups {
		if len(g) == 0 {
			return nil, errors.New("microagg: empty group")
		}
		for _, i := range g {
			if i < 0 || i >= t.NumRows() {
				return nil, fmt.Errorf("microagg: group references row %d outside table", i)
			}
			if seen[i] {
				return nil, fmt.Errorf("microagg: row %d in two groups", i)
			}
			seen[i] = true
		}
	}
	// One column extraction per quasi-identifier; the group loops then run
	// over flat vectors.
	for _, c := range qis {
		vals, present := t.FloatColumn(c)
		for _, g := range groups {
			var cell dataset.Value
			if asInterval {
				lo, hi := math.Inf(1), math.Inf(-1)
				for _, i := range g {
					if !present[i] {
						continue
					}
					lo, hi = math.Min(lo, vals[i]), math.Max(hi, vals[i])
				}
				if math.IsInf(lo, 1) {
					cell = dataset.NullValue()
				} else if lo == hi {
					cell = dataset.Num(lo)
				} else {
					cell = dataset.Span(lo, hi)
				}
			} else {
				var sum float64
				var cnt int
				for _, i := range g {
					if present[i] {
						sum += vals[i]
						cnt++
					}
				}
				if cnt == 0 {
					cell = dataset.NullValue()
				} else {
					cell = dataset.Num(sum / float64(cnt))
				}
			}
			for _, i := range g {
				if err := out.SetCell(i, c, cell); err != nil {
					return nil, err
				}
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("microagg: row %d not covered by any group", i)
		}
	}
	return out, nil
}

// SSE returns the within-group sum of squared distances to group centroids in
// the (unstandardized) quasi-identifier space — the information loss measure
// microaggregation minimizes.
func SSE(t *dataset.Table, groups [][]int) float64 {
	qis := t.Schema().IndicesOf(dataset.QuasiIdentifier)
	points := t.Matrix(qis, 0)
	var sse float64
	for _, g := range groups {
		c := centroidOf(points, g)
		for _, i := range g {
			sse += sqDist(points[i], c)
		}
	}
	return sse
}

func standardize(points [][]float64) {
	if len(points) == 0 {
		return
	}
	d := len(points[0])
	for j := 0; j < d; j++ {
		var sum float64
		for _, p := range points {
			sum += p[j]
		}
		mean := sum / float64(len(points))
		var ss float64
		for _, p := range points {
			dv := p[j] - mean
			ss += dv * dv
		}
		sd := math.Sqrt(ss / float64(len(points)))
		if sd == 0 {
			sd = 1
		}
		for _, p := range points {
			p[j] = (p[j] - mean) / sd
		}
	}
}

func centroidOf(points [][]float64, idx []int) []float64 {
	d := len(points[0])
	c := make([]float64, d)
	for _, i := range idx {
		for j := 0; j < d; j++ {
			c[j] += points[i][j]
		}
	}
	for j := range c {
		c[j] /= float64(len(idx))
	}
	return c
}

func sqDist(a, b []float64) float64 {
	var s float64
	for j := range a {
		d := a[j] - b[j]
		s += d * d
	}
	return s
}

// farthestFrom returns the index (into points) of the remaining record
// farthest from ref, breaking ties by lowest row index for determinism.
func farthestFrom(points [][]float64, remaining []int, ref []float64) int {
	best, bestD := remaining[0], -1.0
	for _, i := range remaining {
		if d := sqDist(points[i], ref); d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

// takeNearest removes seed and its k−1 nearest neighbours from remaining,
// returning them as a group plus the leftover slice. Ties break by row index.
func takeNearest(points [][]float64, remaining []int, seed int, k int) (group, rest []int) {
	type cand struct {
		idx int
		d   float64
	}
	cands := make([]cand, 0, len(remaining))
	for _, i := range remaining {
		if i == seed {
			continue
		}
		cands = append(cands, cand{i, sqDist(points[i], points[seed])})
	}
	// Selection of the k−1 smallest, stable on (distance, index).
	for sel := 0; sel < k-1 && sel < len(cands); sel++ {
		best := sel
		for j := sel + 1; j < len(cands); j++ {
			if cands[j].d < cands[best].d || (cands[j].d == cands[best].d && cands[j].idx < cands[best].idx) {
				best = j
			}
		}
		cands[sel], cands[best] = cands[best], cands[sel]
	}
	group = []int{seed}
	for i := 0; i < k-1 && i < len(cands); i++ {
		group = append(group, cands[i].idx)
	}
	inGroup := make(map[int]bool, len(group))
	for _, i := range group {
		inGroup[i] = true
	}
	for _, i := range remaining {
		if !inGroup[i] {
			rest = append(rest, i)
		}
	}
	return group, rest
}
