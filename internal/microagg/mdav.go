// Package microagg implements microaggregation-based k-anonymization — the
// Basic_Anonymization scheme the paper's experiments use (Domingo-Ferrer's
// practical data-oriented microaggregation [9], MDAV).
//
// MDAV clusters records into groups of size in [k, 2k−1] that are
// homogeneous in the quasi-identifier space and replaces every record's
// quasi-identifiers by its group centroid. Identifier columns are retained
// verbatim (the enterprise setting of the paper) and sensitive columns are
// left untouched for the caller to suppress.
package microagg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/parallel"
)

// Options configures MDAV.
type Options struct {
	// Standardize z-scores each quasi-identifier before computing distances
	// so attributes with large ranges do not dominate. Default true via
	// DefaultOptions.
	Standardize bool
	// CentroidAsInterval emits each aggregated cell as the group's
	// [min, max] interval rather than the centroid number. The paper's
	// Table III shows intervals; its experiments use centroids (numeric
	// estimates feed the fuzzy system either way, via interval midpoints).
	CentroidAsInterval bool
}

// DefaultOptions returns the configuration used by the reproduction's
// experiments: standardized distances, centroid cells.
func DefaultOptions() Options { return Options{Standardize: true} }

// Anonymizer runs MDAV at a given k. It implements the core package's
// Anonymizer contract structurally.
type Anonymizer struct {
	Opts Options
}

// New returns an MDAV anonymizer with default options.
func New() *Anonymizer { return &Anonymizer{Opts: DefaultOptions()} }

// Name identifies the scheme in reports.
func (a *Anonymizer) Name() string { return "mdav-microaggregation" }

// ErrTooFewRecords is returned when the table has fewer than k records. It
// wraps dataset.ErrTooFewRecords, the typed sentinel core.EndsSweep checks.
var ErrTooFewRecords = fmt.Errorf("microagg: fewer records than k: %w", dataset.ErrTooFewRecords)

// Anonymize returns a k-anonymous copy of t: quasi-identifier cells replaced
// by their MDAV group centroid (or interval). k must be ≥ 2 and ≤ the number
// of rows.
func (a *Anonymizer) Anonymize(t *dataset.Table, k int) (*dataset.Table, error) {
	return a.AnonymizeParallel(t, k, nil)
}

// AnonymizeParallel is Anonymize with the distance scans spread over spare
// workers borrowed from b. A nil budget runs fully inline; the output is
// bit-identical at every budget (see AssignParallel).
func (a *Anonymizer) AnonymizeParallel(t *dataset.Table, k int, b *parallel.Budget) (*dataset.Table, error) {
	groups, err := a.AssignParallel(t, k, b)
	if err != nil {
		return nil, err
	}
	return Aggregate(t, groups, a.Opts.CentroidAsInterval)
}

// Assign runs MDAV and returns the clusters as row-index groups, each of
// size in [k, 2k−1].
func (a *Anonymizer) Assign(t *dataset.Table, k int) ([][]int, error) {
	return a.AssignParallel(t, k, nil)
}

// AssignParallel is Assign with chunked parallel distance scans. Group
// assignments are bit-identical to the sequential path at any worker budget:
// the chunk decomposition is fixed by the row count alone, accumulating
// reductions stay sequential, and argmax partials combine in chunk order.
func (a *Anonymizer) AssignParallel(t *dataset.Table, k int, b *parallel.Budget) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("microagg: k must be ≥ 2, got %d", k)
	}
	n := t.NumRows()
	if n < k {
		return nil, fmt.Errorf("%w: %d < %d", ErrTooFewRecords, n, k)
	}
	qis := t.Schema().IndicesOf(dataset.QuasiIdentifier)
	if len(qis) == 0 {
		return nil, errors.New("microagg: table has no quasi-identifier columns")
	}
	for _, c := range qis {
		if t.Schema().Column(c).Kind != dataset.Number {
			return nil, fmt.Errorf("microagg: quasi-identifier %q is not numeric; MDAV is a quantitative method", t.Schema().Column(c).Name)
		}
	}
	pts := t.MatrixFlat(qis, 0)
	if a.Opts.Standardize {
		standardizeFlat(pts, n, len(qis))
	}
	kn := newKernel(pts, n, len(qis), k, b)
	return kn.assign(k), nil
}

// Aggregate replaces each record's quasi-identifiers with its group's
// centroid (or covering interval). Groups must partition the row indices.
func Aggregate(t *dataset.Table, groups [][]int, asInterval bool) (*dataset.Table, error) {
	qis := t.Schema().IndicesOf(dataset.QuasiIdentifier)
	out := t.Clone()
	seen := make([]bool, t.NumRows())
	for _, g := range groups {
		if len(g) == 0 {
			return nil, errors.New("microagg: empty group")
		}
		for _, i := range g {
			if i < 0 || i >= t.NumRows() {
				return nil, fmt.Errorf("microagg: group references row %d outside table", i)
			}
			if seen[i] {
				return nil, fmt.Errorf("microagg: row %d in two groups", i)
			}
			seen[i] = true
		}
	}
	// One column extraction per quasi-identifier; the group loops then run
	// over flat vectors.
	for _, c := range qis {
		vals, present := t.FloatColumn(c)
		for _, g := range groups {
			var cell dataset.Value
			if asInterval {
				lo, hi := math.Inf(1), math.Inf(-1)
				for _, i := range g {
					if !present[i] {
						continue
					}
					lo, hi = math.Min(lo, vals[i]), math.Max(hi, vals[i])
				}
				if math.IsInf(lo, 1) {
					cell = dataset.NullValue()
				} else if lo == hi {
					cell = dataset.Num(lo)
				} else {
					cell = dataset.Span(lo, hi)
				}
			} else {
				var sum float64
				var cnt int
				for _, i := range g {
					if present[i] {
						sum += vals[i]
						cnt++
					}
				}
				if cnt == 0 {
					cell = dataset.NullValue()
				} else {
					cell = dataset.Num(sum / float64(cnt))
				}
			}
			for _, i := range g {
				if err := out.SetCell(i, c, cell); err != nil {
					return nil, err
				}
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("microagg: row %d not covered by any group", i)
		}
	}
	return out, nil
}

// SSE returns the within-group sum of squared distances to group centroids in
// the (unstandardized) quasi-identifier space — the information loss measure
// microaggregation minimizes.
func SSE(t *dataset.Table, groups [][]int) float64 {
	qis := t.Schema().IndicesOf(dataset.QuasiIdentifier)
	d := len(qis)
	pts := t.MatrixFlat(qis, 0)
	c := make([]float64, d)
	var sse float64
	for _, g := range groups {
		for j := range c {
			c[j] = 0
		}
		for _, i := range g {
			row := pts[i*d : i*d+d]
			for j, v := range row {
				c[j] += v
			}
		}
		for j := range c {
			c[j] /= float64(len(g))
		}
		for _, i := range g {
			row := pts[i*d : i*d+d]
			var s float64
			for j, v := range row {
				dv := v - c[j]
				s += dv * dv
			}
			sse += s
		}
	}
	return sse
}
