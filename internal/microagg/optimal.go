package microagg

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
)

// OptimalUnivariate computes the optimal k-partition of a single numeric
// attribute by the Hansen–Mukherjee shortest-path dynamic program: groups
// are contiguous runs of the sorted values with sizes in [k, 2k−1], chosen
// to minimize the within-group sum of squared errors. It is the exact
// counterpart MDAV approximates, and the reproduction uses it to bound
// MDAV's information loss in ablations.
type OptimalUnivariate struct {
	// Column selects the quasi-identifier to aggregate; the remaining
	// quasi-identifiers are aggregated with the same groups (the method is
	// univariate — group structure comes from Column alone).
	Column string
	// CentroidAsInterval mirrors Options.CentroidAsInterval.
	CentroidAsInterval bool
}

// Name identifies the scheme in reports.
func (o *OptimalUnivariate) Name() string { return "optimal-univariate-microaggregation" }

// Anonymize implements the core Anonymizer contract.
func (o *OptimalUnivariate) Anonymize(t *dataset.Table, k int) (*dataset.Table, error) {
	groups, err := o.Assign(t, k)
	if err != nil {
		return nil, err
	}
	return Aggregate(t, groups, o.CentroidAsInterval)
}

// Assign returns the optimal groups as row-index sets.
func (o *OptimalUnivariate) Assign(t *dataset.Table, k int) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("microagg: k must be ≥ 2, got %d", k)
	}
	n := t.NumRows()
	if n < k {
		return nil, fmt.Errorf("%w: %d < %d", ErrTooFewRecords, n, k)
	}
	if o.Column == "" {
		return nil, errors.New("microagg: optimal univariate needs a column")
	}
	col, err := t.Schema().Lookup(o.Column)
	if err != nil {
		return nil, err
	}
	if t.Schema().Column(col).Class != dataset.QuasiIdentifier {
		return nil, fmt.Errorf("microagg: column %q is not a quasi-identifier", o.Column)
	}
	if t.Schema().Column(col).Kind != dataset.Number {
		return nil, fmt.Errorf("microagg: column %q is not numeric", o.Column)
	}

	// Sort row indices by the column value (stable on index).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	vals := t.ColumnFloats(col, 0)
	sort.SliceStable(order, func(a, b int) bool {
		if vals[order[a]] != vals[order[b]] {
			return vals[order[a]] < vals[order[b]]
		}
		return order[a] < order[b]
	})
	sorted := make([]float64, n)
	for i, idx := range order {
		sorted[i] = vals[idx]
	}

	// Prefix sums for O(1) within-group SSE of any contiguous run.
	prefix := make([]float64, n+1)
	prefixSq := make([]float64, n+1)
	for i, v := range sorted {
		prefix[i+1] = prefix[i] + v
		prefixSq[i+1] = prefixSq[i] + v*v
	}
	sse := func(lo, hi int) float64 { // [lo, hi)
		cnt := float64(hi - lo)
		sum := prefix[hi] - prefix[lo]
		sq := prefixSq[hi] - prefixSq[lo]
		return sq - sum*sum/cnt
	}

	// dp[i] = minimal cost partitioning the first i sorted values; cut[i]
	// records the start of the last group.
	const inf = 1e308
	dp := make([]float64, n+1)
	cut := make([]int, n+1)
	for i := 1; i <= n; i++ {
		dp[i] = inf
		for size := k; size <= 2*k-1 && size <= i; size++ {
			j := i - size
			if dp[j] == inf && j != 0 {
				continue
			}
			var base float64
			if j > 0 {
				base = dp[j]
			}
			if c := base + sse(j, i); c < dp[i] {
				dp[i] = c
				cut[i] = j
			}
		}
	}
	if dp[n] == inf {
		return nil, fmt.Errorf("microagg: no feasible [k, 2k-1] partition of %d records with k=%d", n, k)
	}
	var groups [][]int
	for i := n; i > 0; i = cut[i] {
		lo := cut[i]
		g := make([]int, 0, i-lo)
		for s := lo; s < i; s++ {
			g = append(g, order[s])
		}
		groups = append(groups, g)
	}
	// Reverse for ascending order (cosmetic but deterministic).
	for a, b := 0, len(groups)-1; a < b; a, b = a+1, b-1 {
		groups[a], groups[b] = groups[b], groups[a]
	}
	return groups, nil
}

// VMDAV is the variable-size extension of MDAV: after forming each k-group
// around the farthest record, it extends the group with additional nearby
// records (up to 2k−1) when they are closer to the group than to the rest —
// gaining lower information loss on clustered data at equal k.
type VMDAV struct {
	Opts Options
	// Gamma controls extension eagerness: a candidate joins when its
	// distance to the group is below Gamma times its distance to the
	// nearest outside record. The literature default is 0.2... 1.1
	// depending on data; 1.0 is a reasonable balance.
	Gamma float64
}

// NewVMDAV returns a V-MDAV anonymizer with standardized distances and
// gamma 1.0.
func NewVMDAV() *VMDAV { return &VMDAV{Opts: DefaultOptions(), Gamma: 1.0} }

// Name identifies the scheme in reports.
func (v *VMDAV) Name() string { return "v-mdav-microaggregation" }

// Anonymize implements the core Anonymizer contract.
func (v *VMDAV) Anonymize(t *dataset.Table, k int) (*dataset.Table, error) {
	groups, err := v.Assign(t, k)
	if err != nil {
		return nil, err
	}
	return Aggregate(t, groups, v.Opts.CentroidAsInterval)
}

// Assign runs V-MDAV and returns groups of size in [k, 2k−1].
func (v *VMDAV) Assign(t *dataset.Table, k int) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("microagg: k must be ≥ 2, got %d", k)
	}
	n := t.NumRows()
	if n < k {
		return nil, fmt.Errorf("%w: %d < %d", ErrTooFewRecords, n, k)
	}
	if v.Gamma < 0 {
		return nil, fmt.Errorf("microagg: gamma %g must be non-negative", v.Gamma)
	}
	qis := t.Schema().IndicesOf(dataset.QuasiIdentifier)
	if len(qis) == 0 {
		return nil, errors.New("microagg: table has no quasi-identifier columns")
	}
	for _, c := range qis {
		if t.Schema().Column(c).Kind != dataset.Number {
			return nil, fmt.Errorf("microagg: quasi-identifier %q is not numeric", t.Schema().Column(c).Name)
		}
	}
	points := t.Matrix(qis, 0)
	if v.Opts.Standardize {
		standardize(points)
	}

	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	var groups [][]int
	for len(remaining) >= 2*k {
		c := centroidOf(points, remaining)
		seed := farthestFrom(points, remaining, c)
		group, rest := takeNearest(points, remaining, seed, k)
		// Extension phase: add up to k−1 more records that are much closer
		// to the group than to the remaining crowd.
		for len(group) < 2*k-1 && len(rest) > k {
			gc := centroidOf(points, group)
			// Nearest outside candidate to the group centroid.
			cand, candD := -1, 0.0
			for _, i := range rest {
				if d := sqDist(points[i], gc); cand < 0 || d < candD {
					cand, candD = i, d
				}
			}
			// Its distance to the nearest other outside record.
			otherD := -1.0
			for _, i := range rest {
				if i == cand {
					continue
				}
				if d := sqDist(points[i], points[cand]); otherD < 0 || d < otherD {
					otherD = d
				}
			}
			if otherD < 0 || candD >= v.Gamma*otherD {
				break
			}
			group = append(group, cand)
			rest = removeOne(rest, cand)
		}
		groups = append(groups, group)
		remaining = rest
	}
	if len(remaining) > 0 {
		groups = append(groups, remaining)
	}
	return groups, nil
}

func removeOne(xs []int, x int) []int {
	out := xs[:0]
	for _, v := range xs {
		if v != x {
			out = append(out, v)
		}
	}
	return out
}

// The row-slice helpers below are the original MDAV formulation over
// [][]float64 points. V-MDAV's ablation path still uses them, and the kernel
// equivalence tests pin the flat SoA kernel (kernel.go) against them — they
// define the reference semantics the flat path must reproduce bit for bit.

func standardize(points [][]float64) {
	if len(points) == 0 {
		return
	}
	d := len(points[0])
	for j := 0; j < d; j++ {
		var sum float64
		for _, p := range points {
			sum += p[j]
		}
		mean := sum / float64(len(points))
		var ss float64
		for _, p := range points {
			dv := p[j] - mean
			ss += dv * dv
		}
		sd := math.Sqrt(ss / float64(len(points)))
		if sd == 0 {
			sd = 1
		}
		for _, p := range points {
			p[j] = (p[j] - mean) / sd
		}
	}
}

func centroidOf(points [][]float64, idx []int) []float64 {
	d := len(points[0])
	c := make([]float64, d)
	for _, i := range idx {
		for j := 0; j < d; j++ {
			c[j] += points[i][j]
		}
	}
	for j := range c {
		c[j] /= float64(len(idx))
	}
	return c
}

func sqDist(a, b []float64) float64 {
	var s float64
	for j := range a {
		d := a[j] - b[j]
		s += d * d
	}
	return s
}

// farthestFrom returns the index (into points) of the remaining record
// farthest from ref, breaking ties by lowest row index for determinism.
func farthestFrom(points [][]float64, remaining []int, ref []float64) int {
	best, bestD := remaining[0], -1.0
	for _, i := range remaining {
		if d := sqDist(points[i], ref); d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

// takeNearest removes seed and its k−1 nearest neighbours from remaining,
// returning them as a group plus the leftover slice. Ties break by row index.
func takeNearest(points [][]float64, remaining []int, seed int, k int) (group, rest []int) {
	type cand struct {
		idx int
		d   float64
	}
	cands := make([]cand, 0, len(remaining))
	for _, i := range remaining {
		if i == seed {
			continue
		}
		cands = append(cands, cand{i, sqDist(points[i], points[seed])})
	}
	// Selection of the k−1 smallest, stable on (distance, index).
	for sel := 0; sel < k-1 && sel < len(cands); sel++ {
		best := sel
		for j := sel + 1; j < len(cands); j++ {
			if cands[j].d < cands[best].d || (cands[j].d == cands[best].d && cands[j].idx < cands[best].idx) {
				best = j
			}
		}
		cands[sel], cands[best] = cands[best], cands[sel]
	}
	group = []int{seed}
	for i := 0; i < k-1 && i < len(cands); i++ {
		group = append(group, cands[i].idx)
	}
	inGroup := make(map[int]bool, len(group))
	for _, i := range group {
		inGroup[i] = true
	}
	for _, i := range remaining {
		if !inGroup[i] {
			rest = append(rest, i)
		}
	}
	return group, rest
}
