package microagg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func TestOptimalUnivariateBeatsOrMatchesMDAV(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rows := make([][]float64, 41)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 100}
	}
	tb := numTable(t, rows)
	for _, k := range []int{2, 3, 5} {
		opt := &OptimalUnivariate{Column: "A"}
		og, err := opt.Assign(tb, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		mg, err := New().Assign(tb, k)
		if err != nil {
			t.Fatal(err)
		}
		if o, m := SSE(tb, og), SSE(tb, mg); o > m+1e-9 {
			t.Errorf("k=%d: optimal SSE %g worse than MDAV %g", k, o, m)
		}
	}
}

func TestOptimalUnivariateGroupSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 29)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64()}
	}
	tb := numTable(t, rows)
	opt := &OptimalUnivariate{Column: "A"}
	groups, err := opt.Assign(tb, 4)
	if err != nil {
		t.Fatal(err)
	}
	var covered int
	for _, g := range groups {
		if len(g) < 4 || len(g) > 7 {
			t.Errorf("group size %d outside [4, 7]", len(g))
		}
		covered += len(g)
	}
	if covered != 29 {
		t.Errorf("covered %d of 29", covered)
	}
}

func TestOptimalUnivariateContiguity(t *testing.T) {
	// Groups must be contiguous runs of the sorted values: no group's range
	// may overlap another's interior.
	rows := [][]float64{{5}, {1}, {9}, {2}, {8}, {3}, {7}, {4}}
	tb := numTable(t, rows)
	opt := &OptimalUnivariate{Column: "A"}
	groups, err := opt.Assign(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	type span struct{ lo, hi float64 }
	var spans []span
	for _, g := range groups {
		s := span{1e18, -1e18}
		for _, i := range g {
			v := tb.Cell(i, 1).MustFloat()
			if v < s.lo {
				s.lo = v
			}
			if v > s.hi {
				s.hi = v
			}
		}
		spans = append(spans, s)
	}
	for a := range spans {
		for b := range spans {
			if a == b {
				continue
			}
			if spans[a].lo < spans[b].hi && spans[b].lo < spans[a].hi {
				t.Errorf("groups %v and %v overlap", spans[a], spans[b])
			}
		}
	}
}

func TestOptimalUnivariateKnownOptimum(t *testing.T) {
	// Two tight pairs far apart: optimal SSE groups are the pairs.
	rows := [][]float64{{0}, {1}, {100}, {101}}
	tb := numTable(t, rows)
	opt := &OptimalUnivariate{Column: "A"}
	groups, err := opt.Assign(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if got := SSE(tb, groups); got != 1 { // 0.5²·2 per pair = 0.5; two pairs = 1
		t.Errorf("SSE = %g, want 1", got)
	}
}

func TestOptimalUnivariateErrors(t *testing.T) {
	tb := numTable(t, [][]float64{{1}, {2}, {3}})
	opt := &OptimalUnivariate{Column: "A"}
	if _, err := opt.Assign(tb, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := opt.Assign(tb, 4); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := (&OptimalUnivariate{}).Assign(tb, 2); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := (&OptimalUnivariate{Column: "Nope"}).Assign(tb, 2); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := (&OptimalUnivariate{Column: "Name"}).Assign(tb, 2); err == nil {
		t.Error("identifier column accepted")
	}
}

func TestOptimalUnivariateAnonymize(t *testing.T) {
	rows := [][]float64{{0}, {1}, {100}, {101}}
	tb := numTable(t, rows)
	opt := &OptimalUnivariate{Column: "A"}
	anon, err := opt.Anonymize(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[float64]int{}
	for i := 0; i < anon.NumRows(); i++ {
		vals[anon.Cell(i, 1).MustFloat()]++
	}
	if vals[0.5] != 2 || vals[100.5] != 2 {
		t.Errorf("centroids = %v", vals)
	}
	if opt.Name() == "" {
		t.Error("empty name")
	}
}

func TestVMDAVInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rows := make([][]float64, 37)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	tb := numTable(t, rows)
	for _, k := range []int{2, 3, 5} {
		groups, err := NewVMDAV().Assign(tb, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		covered := 0
		for _, g := range groups {
			if len(g) < k || len(g) > 2*k-1 {
				t.Errorf("k=%d: group size %d outside [k, 2k-1]", k, len(g))
			}
			covered += len(g)
		}
		if covered != len(rows) {
			t.Errorf("k=%d: covered %d of %d", k, covered, len(rows))
		}
	}
}

func TestVMDAVAnonymizeIsKAnonymous(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	rows := make([][]float64, 30)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() * 3}
	}
	tb := numTable(t, rows)
	anon, err := NewVMDAV().Anonymize(tb, 3)
	if err != nil {
		t.Fatal(err)
	}
	qis := anon.Schema().IndicesOf(dataset.QuasiIdentifier)
	for _, g := range anon.GroupBy(qis) {
		if len(g) < 3 {
			t.Errorf("class of size %d", len(g))
		}
	}
	if NewVMDAV().Name() == "" {
		t.Error("empty name")
	}
}

func TestVMDAVExtensionHelpsOnClusteredData(t *testing.T) {
	// Clouds of 3 with k=2: fixed-size MDAV must split a cloud across
	// groups; V-MDAV can extend to swallow whole clouds.
	var rows [][]float64
	for c := 0; c < 4; c++ {
		base := float64(c * 100)
		rows = append(rows, []float64{base}, []float64{base + 0.5}, []float64{base + 1})
	}
	tb := numTable(t, rows)
	vg, err := NewVMDAV().Assign(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := New().Assign(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v, m := SSE(tb, vg), SSE(tb, mg); v > m+1e-9 {
		t.Errorf("V-MDAV SSE %g worse than MDAV %g on clustered data", v, m)
	}
}

func TestVMDAVErrors(t *testing.T) {
	tb := numTable(t, [][]float64{{1}, {2}, {3}})
	if _, err := NewVMDAV().Assign(tb, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := NewVMDAV().Assign(tb, 4); err == nil {
		t.Error("k>n accepted")
	}
	bad := NewVMDAV()
	bad.Gamma = -1
	if _, err := bad.Assign(tb, 2); err == nil {
		t.Error("negative gamma accepted")
	}
}

// Property: the optimal univariate partition never has higher SSE than
// MDAV's on the same column.
func TestOptimalDominatesMDAVProperty(t *testing.T) {
	f := func(seed int64, kRaw, nRaw uint8) bool {
		k := int(kRaw)%3 + 2 // 2..4
		n := int(nRaw)%30 + 2*k
		rng := rand.New(rand.NewSource(seed))
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = []float64{rng.Float64() * 50}
		}
		tb := numTable(nil, rows)
		og, err1 := (&OptimalUnivariate{Column: "A"}).Assign(tb, k)
		mg, err2 := New().Assign(tb, k)
		if err1 != nil || err2 != nil {
			return false
		}
		return SSE(tb, og) <= SSE(tb, mg)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
