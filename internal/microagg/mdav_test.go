package microagg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func numTable(t testing.TB, rows [][]float64) *dataset.Table {
	if t != nil {
		t.Helper()
	}
	cols := []dataset.Column{{Name: "Name", Class: dataset.Identifier, Kind: dataset.Text}}
	for j := 0; j < len(rows[0]); j++ {
		cols = append(cols, dataset.Column{Name: string(rune('A' + j)), Class: dataset.QuasiIdentifier, Kind: dataset.Number})
	}
	tb := dataset.New(dataset.MustSchema(cols...))
	for i, r := range rows {
		cells := []dataset.Value{dataset.Str(string(rune('a'+i%26)) + string(rune('0'+i/26)))}
		for _, v := range r {
			cells = append(cells, dataset.Num(v))
		}
		tb.MustAppendRow(cells...)
	}
	return tb
}

func TestAssignGroupSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := make([][]float64, 23)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 10, rng.Float64() * 100}
	}
	tb := numTable(t, rows)
	for k := 2; k <= 7; k++ {
		groups, err := New().Assign(tb, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		var covered int
		for _, g := range groups {
			if len(g) < k || len(g) > 2*k-1 {
				t.Errorf("k=%d: group size %d outside [k, 2k-1]", k, len(g))
			}
			covered += len(g)
		}
		if covered != len(rows) {
			t.Errorf("k=%d: covered %d of %d rows", k, covered, len(rows))
		}
	}
}

func TestAnonymizeIsKAnonymous(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rows := make([][]float64, 40)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64() * 50, float64(i % 3)}
	}
	tb := numTable(t, rows)
	for _, k := range []int{2, 3, 5, 8} {
		anon, err := New().Anonymize(tb, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		qis := anon.Schema().IndicesOf(dataset.QuasiIdentifier)
		for _, g := range anon.GroupBy(qis) {
			if len(g) < k {
				t.Errorf("k=%d: equivalence class of size %d", k, len(g))
			}
		}
		// Identifiers must be untouched.
		for i := 0; i < tb.NumRows(); i++ {
			if !anon.Cell(i, 0).Equal(tb.Cell(i, 0)) {
				t.Fatalf("identifier cell %d modified", i)
			}
		}
	}
}

func TestAnonymizeIntervalMode(t *testing.T) {
	rows := [][]float64{{1}, {2}, {10}, {11}}
	tb := numTable(t, rows)
	a := &Anonymizer{Opts: Options{Standardize: true, CentroidAsInterval: true}}
	anon, err := a.Anonymize(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two tight pairs: [1-2] and [10-11].
	got := map[string]bool{}
	for i := 0; i < anon.NumRows(); i++ {
		got[anon.Cell(i, 1).String()] = true
	}
	if !got["[1-2]"] || !got["[10-11]"] {
		t.Errorf("interval cells = %v", got)
	}
}

func TestAnonymizeCentroidValues(t *testing.T) {
	rows := [][]float64{{0}, {2}, {100}, {102}}
	tb := numTable(t, rows)
	anon, err := New().Anonymize(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[float64]int{}
	for i := 0; i < 4; i++ {
		vals[anon.Cell(i, 1).MustFloat()]++
	}
	if vals[1] != 2 || vals[101] != 2 {
		t.Errorf("centroids = %v, want {1:2, 101:2}", vals)
	}
}

func TestMDAVClustersNaturally(t *testing.T) {
	// Three well-separated clouds of 3 → with k=3 MDAV should recover them.
	rows := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{50, 50}, {50.1, 50}, {50, 50.1},
		{100, 0}, {100.1, 0}, {100, 0.1},
	}
	tb := numTable(t, rows)
	groups, err := New().Assign(tb, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	for _, g := range groups {
		base := g[0] / 3
		for _, i := range g {
			if i/3 != base {
				t.Errorf("group %v mixes clouds", g)
			}
		}
	}
}

func TestAnonymizeErrors(t *testing.T) {
	tb := numTable(t, [][]float64{{1}, {2}, {3}})
	if _, err := New().Anonymize(tb, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := New().Anonymize(tb, 4); err == nil {
		t.Error("k > n accepted")
	}
	// No QI columns.
	empty := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "S", Class: dataset.Sensitive, Kind: dataset.Number}))
	empty.MustAppendRow(dataset.Num(1))
	empty.MustAppendRow(dataset.Num(2))
	if _, err := New().Anonymize(empty, 2); err == nil {
		t.Error("no-QI table accepted")
	}
	// Categorical QI.
	cat := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "Q", Class: dataset.QuasiIdentifier, Kind: dataset.Text}))
	cat.MustAppendRow(dataset.Str("x"))
	cat.MustAppendRow(dataset.Str("y"))
	if _, err := New().Anonymize(cat, 2); err == nil {
		t.Error("categorical QI accepted")
	}
}

func TestAggregateValidation(t *testing.T) {
	tb := numTable(t, [][]float64{{1}, {2}, {3}})
	if _, err := Aggregate(tb, [][]int{{0, 1}}, false); err == nil {
		t.Error("uncovered row accepted")
	}
	if _, err := Aggregate(tb, [][]int{{0, 1}, {1, 2}}, false); err == nil {
		t.Error("overlapping groups accepted")
	}
	if _, err := Aggregate(tb, [][]int{{0, 1, 2}, {}}, false); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := Aggregate(tb, [][]int{{0, 1, 5}}, false); err == nil {
		t.Error("out-of-range row accepted")
	}
}

func TestSSE(t *testing.T) {
	tb := numTable(t, [][]float64{{0}, {2}, {10}, {12}})
	// Groups {0,1} and {2,3}: centroids 1 and 11, SSE = 1+1+1+1 = 4.
	if got := SSE(tb, [][]int{{0, 1}, {2, 3}}); got != 4 {
		t.Errorf("SSE = %g, want 4", got)
	}
	// The natural grouping beats a crossed grouping.
	if good, bad := SSE(tb, [][]int{{0, 1}, {2, 3}}), SSE(tb, [][]int{{0, 2}, {1, 3}}); good >= bad {
		t.Errorf("natural SSE %g not better than crossed %g", good, bad)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 31)
	for i := range rows {
		rows[i] = []float64{rng.Float64(), rng.Float64()}
	}
	tb := numTable(t, rows)
	a1, err := New().Anonymize(tb, 4)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := New().Anonymize(tb, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Equal(a2) {
		t.Error("MDAV not deterministic")
	}
}

func TestName(t *testing.T) {
	if New().Name() == "" {
		t.Error("empty name")
	}
}

// Property: for random tables and k, every MDAV group has size in [k, 2k−1]
// and the groups partition the rows.
func TestMDAVInvariantProperty(t *testing.T) {
	f := func(seed int64, kRaw, nRaw uint8) bool {
		k := int(kRaw)%5 + 2  // 2..6
		n := int(nRaw)%40 + k // k..k+39
		rng := rand.New(rand.NewSource(seed))
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = []float64{rng.Float64() * 100, rng.Float64()}
		}
		tb := numTable(nil, rows)
		groups, err := New().Assign(tb, k)
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for _, g := range groups {
			if len(g) < k || len(g) > 2*k-1 {
				return false
			}
			for _, i := range g {
				if seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
