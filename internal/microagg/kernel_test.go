package microagg

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/parallel"
)

// referenceAssign is the original row-slice MDAV loop over [][]float64,
// rebuilt from the reference helpers in optimal.go. The flat SoA kernel must
// reproduce its group assignments exactly.
func referenceAssign(t *dataset.Table, k int, std bool) [][]int {
	qis := t.Schema().IndicesOf(dataset.QuasiIdentifier)
	points := t.Matrix(qis, 0)
	if std {
		standardize(points)
	}
	remaining := make([]int, t.NumRows())
	for i := range remaining {
		remaining[i] = i
	}
	var groups [][]int
	for len(remaining) >= 3*k {
		c := centroidOf(points, remaining)
		r := farthestFrom(points, remaining, c)
		s := farthestFrom(points, remaining, points[r])
		g1, rest := takeNearest(points, remaining, r, k)
		groups = append(groups, g1)
		g2, rest := takeNearest(points, rest, s, k)
		groups = append(groups, g2)
		remaining = rest
	}
	if len(remaining) >= 2*k {
		c := centroidOf(points, remaining)
		r := farthestFrom(points, remaining, c)
		g1, rest := takeNearest(points, remaining, r, k)
		groups = append(groups, g1, rest)
	} else if len(remaining) > 0 {
		groups = append(groups, remaining)
	}
	return groups
}

// quantizedTable builds an n-row table of 3 numeric quasi-identifiers drawn
// from a small grid, so duplicate values (and therefore distance ties) are
// common — the cases where tie-break order matters.
func quantizedTable(tb testing.TB, n int, seed int64) *dataset.Table {
	tb.Helper()
	schema := dataset.MustSchema(
		dataset.Column{Name: "A", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "B", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "C", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
	)
	rng := rand.New(rand.NewSource(seed))
	t := dataset.New(schema)
	for i := 0; i < n; i++ {
		t.MustAppendRow(
			dataset.Num(float64(rng.Intn(12))),
			dataset.Num(float64(rng.Intn(12))),
			dataset.Num(float64(rng.Intn(8))/2),
		)
	}
	return t
}

func groupsEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for g := range a {
		if len(a[g]) != len(b[g]) {
			return false
		}
		for i := range a[g] {
			if a[g][i] != b[g][i] {
				return false
			}
		}
	}
	return true
}

// TestKernelMatchesReference pins the flat kernel — heap selection, chunked
// argmax, hoisted scratch — to the row-slice reference, at every worker
// budget, for both standardized and raw distances.
func TestKernelMatchesReference(t *testing.T) {
	budgets := map[string]func() *parallel.Budget{
		"nil": func() *parallel.Budget { return nil },
		"w2":  func() *parallel.Budget { return parallel.NewBudget(2) },
		"w8":  func() *parallel.Budget { return parallel.NewBudget(8) },
	}
	for _, n := range []int{7, 40, 250, 1000} {
		for _, k := range []int{2, 3, 5, 16} {
			if n < k {
				continue
			}
			tbl := quantizedTable(t, n, int64(n*31+k))
			for _, std := range []bool{true, false} {
				want := referenceAssign(tbl, k, std)
				for bname, mk := range budgets {
					t.Run(fmt.Sprintf("n=%d/k=%d/std=%v/%s", n, k, std, bname), func(t *testing.T) {
						a := &Anonymizer{Opts: Options{Standardize: std}}
						got, err := a.AssignParallel(tbl, k, mk())
						if err != nil {
							t.Fatal(err)
						}
						if !groupsEqual(got, want) {
							t.Fatalf("kernel groups diverge from reference:\ngot  %v\nwant %v", got, want)
						}
					})
				}
			}
		}
	}
}

// TestKernelSeedOutsideRemaining covers the second carve of an MDAV round
// when its seed landed in the first group: the reference still emits the seed
// in the group and keeps every unselected record. The kernel must too. The
// geometry is forced directly through takeNearest.
func TestKernelSeedOutsideRemaining(t *testing.T) {
	pts := []float64{0, 1, 2, 10, 11, 12}
	kn := newKernel(pts, 6, 1, 3, nil)
	rest := make([]int, 0, 6)
	// Seed 0 is not in remaining {3,4,5}: group keeps the seed, rest keeps
	// everything not selected.
	group, newRest := kn.takeNearest([]int{3, 4, 5}, 0, 3, rest)
	if len(group) != 3 || group[0] != 0 || group[1] != 3 || group[2] != 4 {
		t.Fatalf("group = %v, want [0 3 4]", group)
	}
	if len(newRest) != 1 || newRest[0] != 5 {
		t.Fatalf("rest = %v, want [5]", newRest)
	}
}
