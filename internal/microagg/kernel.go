package microagg

import (
	"math"

	"repro/internal/parallel"
)

// MDAV's hot loop is O(n²) distance scans. This file keeps that loop on one
// contiguous row-major buffer (points[i*d+j]) instead of a [][]float64 of
// per-row slices — no pointer chasing, no per-row headers — and hoists every
// scratch buffer into a per-Assign kernel so the group-carving loop does not
// allocate.
//
// Bit-identity contract: results must match the sequential row-slice
// formulation exactly, at any worker budget. Accumulating reductions
// (standardize, centroids) keep their sequential order. The only parallel
// pieces are independent distance writes and chunked argmax scans whose
// chunk decomposition is fixed by parallel.For and whose partials combine in
// chunk order with strict >, preserving first-occurrence-of-max semantics.

// scanGrain is the chunk height of parallel distance scans: big enough that a
// chunk amortizes goroutine handoff, small enough that 10⁴-row scans still
// split across a multi-core budget.
const scanGrain = 2048

// distIdx is a (distance, row-index) pair; ordering is lexicographic, which
// is exactly the tie-break the sequential selection used.
type distIdx struct {
	d   float64
	idx int
}

func diLess(a, b distIdx) bool {
	return a.d < b.d || (a.d == b.d && a.idx < b.idx)
}

// kernel carries the flat point buffer and all per-Assign scratch.
type kernel struct {
	pts  []float64 // n×d row-major
	n, d int
	b    *parallel.Budget // nil ⇒ fully inline

	centroid []float64 // d
	dist     []float64 // n: distances per position of the scanned slice
	heap     []distIdx // bounded max-heap of the k−1 nearest candidates
	inGroup  []bool    // n: membership scratch for rest rebuilding
	bestIdx  []int     // per-chunk argmax partials
	bestD    []float64
	arena    []int // backing store for returned groups; they partition 0..n−1
	restA    []int // ping-pong "remaining" buffers
	restB    []int
}

func newKernel(pts []float64, n, d, k int, b *parallel.Budget) *kernel {
	nc := parallel.NumChunks(n, scanGrain)
	return &kernel{
		pts: pts, n: n, d: d, b: b,
		centroid: make([]float64, d),
		dist:     make([]float64, n),
		heap:     make([]distIdx, 0, k-1),
		inGroup:  make([]bool, n),
		bestIdx:  make([]int, nc),
		bestD:    make([]float64, nc),
		arena:    make([]int, 0, n),
		restA:    make([]int, n),
		restB:    make([]int, n),
	}
}

func (kn *kernel) row(i int) []float64 { return kn.pts[i*kn.d : (i+1)*kn.d] }

// sqDistTo mirrors sqDist(points[i], ref): same element order, same
// accumulation order.
func (kn *kernel) sqDistTo(i int, ref []float64) float64 {
	row := kn.row(i)
	var s float64
	for j, v := range row {
		dd := v - ref[j]
		s += dd * dd
	}
	return s
}

// centroidInto accumulates the mean of the idx rows into the centroid
// scratch, in the exact row-then-column order of the row-slice centroidOf.
func (kn *kernel) centroidInto(idx []int) []float64 {
	c := kn.centroid
	for j := range c {
		c[j] = 0
	}
	for _, i := range idx {
		row := kn.row(i)
		for j, v := range row {
			c[j] += v
		}
	}
	for j := range c {
		c[j] /= float64(len(idx))
	}
	return c
}

// farthest returns the remaining record farthest from ref — the first index
// achieving the maximum distance, matching the sequential strict-> scan.
// Under a budget the scan runs as fixed chunks whose (best, bestD) partials
// combine in chunk order with strict >, which preserves first occurrence.
func (kn *kernel) farthest(remaining []int, ref []float64) int {
	m := len(remaining)
	nc := parallel.NumChunks(m, scanGrain)
	if nc <= 1 || kn.b == nil {
		best, bestD := remaining[0], -1.0
		for _, i := range remaining {
			if dd := kn.sqDistTo(i, ref); dd > bestD {
				best, bestD = i, dd
			}
		}
		return best
	}
	bi, bd := kn.bestIdx[:nc], kn.bestD[:nc]
	kn.b.For(m, scanGrain, func(lo, hi int) {
		best, bestD := remaining[lo], -1.0
		for _, i := range remaining[lo:hi] {
			if dd := kn.sqDistTo(i, ref); dd > bestD {
				best, bestD = i, dd
			}
		}
		c := lo / scanGrain
		bi[c], bd[c] = best, bestD
	})
	best, bestD := bi[0], bd[0]
	for c := 1; c < nc; c++ {
		if bd[c] > bestD {
			best, bestD = bi[c], bd[c]
		}
	}
	return best
}

// takeNearest carves seed plus its k−1 nearest neighbours out of remaining.
// The group is appended to the arena (ascending (distance, index) after the
// seed — the order the sequential selection sort produced); the leftovers are
// written into rest, preserving remaining order. The seed is included even
// when it is not a member of remaining (the second carve of each MDAV round
// seeds from the pre-carve population), matching the row-slice path.
//
// Distance fills are independent writes and run under the budget; candidate
// selection is a sequential bounded max-heap — O(m log k) versus the old
// O(k·m) selection sort — over the same lexicographic (distance, index)
// order, so the selected set and its order are identical.
func (kn *kernel) takeNearest(remaining []int, seed, k int, rest []int) (group, newRest []int) {
	m := len(remaining)
	dist := kn.dist[:m]
	srow := kn.row(seed)
	if kn.b == nil || parallel.NumChunks(m, scanGrain) <= 1 {
		// Inline fill: the For closure literal would allocate once per carve.
		for p := 0; p < m; p++ {
			dist[p] = kn.sqDistTo(remaining[p], srow)
		}
	} else {
		kn.b.For(m, scanGrain, func(lo, hi int) {
			for p := lo; p < hi; p++ {
				dist[p] = kn.sqDistTo(remaining[p], srow)
			}
		})
	}
	h := kn.heap[:0]
	for p := 0; p < m; p++ {
		i := remaining[p]
		if i == seed {
			continue
		}
		c := distIdx{dist[p], i}
		if len(h) < k-1 {
			h = append(h, c)
			siftUp(h)
		} else if diLess(c, h[0]) {
			h[0] = c
			siftDown(h)
		}
	}
	sortDistIdx(h)
	start := len(kn.arena)
	kn.arena = append(kn.arena, seed)
	for _, c := range h {
		kn.arena = append(kn.arena, c.idx)
	}
	group = kn.arena[start:len(kn.arena):len(kn.arena)]
	for _, i := range group {
		kn.inGroup[i] = true
	}
	newRest = rest[:0]
	for _, i := range remaining {
		if !kn.inGroup[i] {
			newRest = append(newRest, i)
		}
	}
	for _, i := range group {
		kn.inGroup[i] = false
	}
	return group, newRest
}

// assign runs the MDAV group-carving loop. Group slices are sub-slices of the
// kernel arena; remaining/rest ping-pong between two fixed buffers, so the
// loop allocates nothing.
func (kn *kernel) assign(k int) [][]int {
	remaining := kn.restA[:kn.n]
	for i := range remaining {
		remaining[i] = i
	}
	other := kn.restB[:0]
	groups := make([][]int, 0, kn.n/k+1)
	for len(remaining) >= 3*k {
		c := kn.centroidInto(remaining)
		r := kn.farthest(remaining, c)
		s := kn.farthest(remaining, kn.row(r))
		g1, rest := kn.takeNearest(remaining, r, k, other)
		groups = append(groups, g1)
		g2, rest2 := kn.takeNearest(rest, s, k, remaining)
		groups = append(groups, g2)
		remaining, other = rest2, rest
	}
	if len(remaining) >= 2*k {
		c := kn.centroidInto(remaining)
		r := kn.farthest(remaining, c)
		g1, rest := kn.takeNearest(remaining, r, k, other)
		start := len(kn.arena)
		kn.arena = append(kn.arena, rest...)
		groups = append(groups, g1, kn.arena[start:len(kn.arena):len(kn.arena)])
	} else if len(remaining) > 0 {
		start := len(kn.arena)
		kn.arena = append(kn.arena, remaining...)
		groups = append(groups, kn.arena[start:len(kn.arena):len(kn.arena)])
	}
	return groups
}

// standardizeFlat z-scores each column of the flat buffer in place, with the
// same per-column accumulation order as the row-slice standardize.
func standardizeFlat(pts []float64, n, d int) {
	if n == 0 {
		return
	}
	for j := 0; j < d; j++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += pts[i*d+j]
		}
		mean := sum / float64(n)
		var ss float64
		for i := 0; i < n; i++ {
			dv := pts[i*d+j] - mean
			ss += dv * dv
		}
		sd := math.Sqrt(ss / float64(n))
		if sd == 0 {
			sd = 1
		}
		for i := 0; i < n; i++ {
			pts[i*d+j] = (pts[i*d+j] - mean) / sd
		}
	}
}

// Bounded max-heap on diLess: h[0] is the lexicographically largest kept
// pair, the one a closer candidate evicts.

func siftUp(h []distIdx) {
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !diLess(h[p], h[i]) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func siftDown(h []distIdx) {
	i := 0
	for {
		l := 2*i + 1
		if l >= len(h) {
			break
		}
		big := l
		if r := l + 1; r < len(h) && diLess(h[l], h[r]) {
			big = r
		}
		if !diLess(h[i], h[big]) {
			break
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// sortDistIdx heap-sorts a max-heap into ascending (distance, index) order in
// place, allocation-free.
func sortDistIdx(h []distIdx) {
	for end := len(h) - 1; end > 0; end-- {
		h[0], h[end] = h[end], h[0]
		siftDown(h[:end])
	}
}
