package service

import (
	"container/list"
	"sync"
)

// resultCache is a small mutex-guarded LRU over finished job results. Every
// engine job type is a pure function of (input table contents, spec), so
// results are cached unconditionally; the key is the tenant plus
// Spec.cacheKey — tenants never share entries, even for byte-identical
// inputs, because a cross-tenant hit (Status.Cached, instant completion)
// would leak that another tenant ran the same sweep. A per-tenant share cap
// additionally bounds how many entries one tenant may occupy, so a single
// tenant's sweep storm cannot evict everyone else's cached releases. Cached
// Results are shared, never mutated — Result tables follow the store's
// immutability contract.
type resultCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List
	items  map[string]*list.Element
	counts map[string]int // tenant → resident entries
	// onEvict, when set, observes each capacity/share eviction with the
	// evicted entry's tenant. Called under mu; it must not re-enter the cache.
	onEvict func(tenant string)
}

type cacheEntry struct {
	tenant string
	key    string
	res    *Result
}

// newResultCache returns a cache holding up to cap results; cap ≤ 0 disables
// caching entirely (every Get misses, every Put drops).
func newResultCache(cap int) *resultCache {
	return &resultCache{
		cap:    cap,
		ll:     list.New(),
		items:  make(map[string]*list.Element),
		counts: make(map[string]int),
	}
}

// Get returns the cached result for key, refreshing its recency.
func (c *resultCache) Get(key string) (*Result, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put inserts a result for tenant. When the tenant is at its share (share >
// 0), the tenant's own least recently used entry is evicted first; the
// global capacity then evicts the overall LRU as before.
func (c *resultCache) Put(tenant, key string, res *Result, share int) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	if share > 0 && c.counts[tenant] >= share {
		c.evictLocked(c.oldestOfLocked(tenant))
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{tenant: tenant, key: key, res: res})
	c.counts[tenant]++
	for c.ll.Len() > c.cap {
		c.evictLocked(c.ll.Back())
	}
}

// oldestOfLocked returns tenant's least recently used entry.
func (c *resultCache) oldestOfLocked(tenant string) *list.Element {
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		if el.Value.(*cacheEntry).tenant == tenant {
			return el
		}
	}
	return nil
}

// evictLocked removes el as a capacity/share eviction, notifying onEvict.
// Non-eviction removals (reseeding, explicit drops) use removeLocked.
func (c *resultCache) evictLocked(el *list.Element) {
	if el == nil {
		return
	}
	if c.onEvict != nil {
		c.onEvict(el.Value.(*cacheEntry).tenant)
	}
	c.removeLocked(el)
}

func (c *resultCache) removeLocked(el *list.Element) {
	if el == nil {
		return
	}
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	if c.counts[ent.tenant]--; c.counts[ent.tenant] <= 0 {
		delete(c.counts, ent.tenant)
	}
}

// Each calls fn for every cached result, most recently used first. fn runs
// under the cache lock and must not re-enter the cache; blob GC uses it to
// collect its cache roots.
func (c *resultCache) Each(fn func(*Result)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; el = el.Next() {
		fn(el.Value.(*cacheEntry).res)
	}
}

// Len reports the number of cached results.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// TenantLen reports the number of cached results held by tenant.
func (c *resultCache) TenantLen(tenant string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[tenant]
}
