package service

import (
	"container/list"
	"sync"
)

// resultCache is a small mutex-guarded LRU over finished job results. Every
// engine job type is a pure function of (input table contents, spec), so
// results are cached unconditionally; the key is Spec.cacheKey. Cached
// Results are shared, never mutated — Result tables follow the store's
// immutability contract.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *Result
}

// newResultCache returns a cache holding up to cap results; cap ≤ 0 disables
// caching entirely (every Get misses, every Put drops).
func newResultCache(cap int) *resultCache {
	return &resultCache{cap: cap, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached result for key, refreshing its recency.
func (c *resultCache) Get(key string) (*Result, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put inserts a result, evicting the least recently used entry when full.
func (c *resultCache) Put(key string, res *Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len reports the number of cached results.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
