package service

import (
	"strings"
	"testing"

	"repro/internal/dataset"
)

func smallTable(t *testing.T, salaries ...float64) *dataset.Table {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.Column{Name: "Name", Class: dataset.Identifier, Kind: dataset.Text},
		dataset.Column{Name: "Score", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "Salary", Class: dataset.Sensitive, Kind: dataset.Number},
	)
	tab := dataset.New(schema)
	for i, s := range salaries {
		tab.MustAppendRow(dataset.Str(string(rune('A'+i))), dataset.Num(float64(i+1)), dataset.Num(s))
	}
	return tab
}

func TestStoreCRUD(t *testing.T) {
	s := NewStore()
	tab := smallTable(t, 50000, 60000, 70000, 80000)

	info, err := s.Put("roster", tab)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.Rows != 4 || info.Cols != 3 || info.Hash == "" {
		t.Fatalf("bad info: %+v", info)
	}

	got, gotInfo, err := s.Get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got != tab || gotInfo.ID != info.ID {
		t.Fatalf("Get returned wrong table/info")
	}

	if _, _, err := s.Get("tbl-999"); err == nil {
		t.Fatal("expected not-found error")
	} else if !strings.Contains(err.Error(), "tbl-999") {
		t.Fatalf("unhelpful error: %v", err)
	}

	if n := len(s.List()); n != 1 {
		t.Fatalf("List: got %d tables, want 1", n)
	}
	if err := s.Delete(info.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(info.ID); err == nil {
		t.Fatal("expected error deleting twice")
	}
	if n := len(s.List()); n != 0 {
		t.Fatalf("List after delete: got %d tables, want 0", n)
	}
}

func TestStoreListOrder(t *testing.T) {
	s := NewStore()
	var ids []string
	for i := 0; i < 12; i++ {
		info, err := s.Put("t", smallTable(t, 1000*float64(i+1), 2000, 3000))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	list := s.List()
	if len(list) != len(ids) {
		t.Fatalf("got %d tables, want %d", len(list), len(ids))
	}
	for i, info := range list {
		if info.ID != ids[i] {
			t.Fatalf("List[%d] = %s, want %s (oldest first)", i, info.ID, ids[i])
		}
	}
}

func TestStoreRejectsEmptyTable(t *testing.T) {
	s := NewStore()
	if _, err := s.Put("empty", nil); err == nil {
		t.Fatal("expected error for nil table")
	}
	if _, err := s.Put("empty", smallTable(t)); err == nil {
		t.Fatal("expected error for zero-row table")
	}
}

func TestHashTable(t *testing.T) {
	a := smallTable(t, 50000, 60000)
	b := smallTable(t, 50000, 60000)
	c := smallTable(t, 50000, 60001)

	ha, err := HashTable(a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := HashTable(b)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := HashTable(c)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("equal tables hash differently: %s vs %s", ha, hb)
	}
	if ha == hc {
		t.Fatalf("different tables collide: %s", ha)
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	r1, r2, r3 := &Result{}, &Result{}, &Result{}
	c.Put("a", r1)
	c.Put("b", r2)
	if got, ok := c.Get("a"); !ok || got != r1 {
		t.Fatal("a should be cached")
	}
	// "b" is now least recently used; inserting "c" evicts it.
	c.Put("c", r3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should survive (recently used)")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.Put("a", &Result{})
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache must not store")
	}
}
