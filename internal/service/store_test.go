package service

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func smallTable(t *testing.T, salaries ...float64) *dataset.Table {
	t.Helper()
	schema := dataset.MustSchema(
		dataset.Column{Name: "Name", Class: dataset.Identifier, Kind: dataset.Text},
		dataset.Column{Name: "Score", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "Salary", Class: dataset.Sensitive, Kind: dataset.Number},
	)
	tab := dataset.New(schema)
	for i, s := range salaries {
		tab.MustAppendRow(dataset.Str(string(rune('A'+i))), dataset.Num(float64(i+1)), dataset.Num(s))
	}
	return tab
}

func TestStoreCRUD(t *testing.T) {
	s := NewStore()
	tab := smallTable(t, 50000, 60000, 70000, 80000)

	info, err := s.Put(DefaultTenant, "roster", tab)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.Rows != 4 || info.Cols != 3 || info.Hash == "" {
		t.Fatalf("bad info: %+v", info)
	}

	got, gotInfo, err := s.Get(DefaultTenant, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got != tab || gotInfo.ID != info.ID {
		t.Fatalf("Get returned wrong table/info")
	}

	if _, _, err := s.Get(DefaultTenant, "tbl-999"); err == nil {
		t.Fatal("expected not-found error")
	} else if !strings.Contains(err.Error(), "tbl-999") {
		t.Fatalf("unhelpful error: %v", err)
	}

	if n := len(s.List(DefaultTenant)); n != 1 {
		t.Fatalf("List: got %d tables, want 1", n)
	}
	if err := s.Delete(DefaultTenant, info.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(DefaultTenant, info.ID); err == nil {
		t.Fatal("expected error deleting twice")
	}
	if n := len(s.List(DefaultTenant)); n != 0 {
		t.Fatalf("List after delete: got %d tables, want 0", n)
	}
}

func TestStoreListOrder(t *testing.T) {
	s := NewStore()
	var ids []string
	for i := 0; i < 12; i++ {
		info, err := s.Put(DefaultTenant, "t", smallTable(t, 1000*float64(i+1), 2000, 3000))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	list := s.List(DefaultTenant)
	if len(list) != len(ids) {
		t.Fatalf("got %d tables, want %d", len(list), len(ids))
	}
	for i, info := range list {
		if info.ID != ids[i] {
			t.Fatalf("List[%d] = %s, want %s (oldest first)", i, info.ID, ids[i])
		}
	}
}

func TestStoreRejectsEmptyTable(t *testing.T) {
	s := NewStore()
	if _, err := s.Put(DefaultTenant, "empty", nil); err == nil {
		t.Fatal("expected error for nil table")
	}
	if _, err := s.Put(DefaultTenant, "empty", smallTable(t)); err == nil {
		t.Fatal("expected error for zero-row table")
	}
}

func TestHashTable(t *testing.T) {
	a := smallTable(t, 50000, 60000)
	b := smallTable(t, 50000, 60000)
	c := smallTable(t, 50000, 60001)

	ha, err := HashTable(a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := HashTable(b)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := HashTable(c)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("equal tables hash differently: %s vs %s", ha, hb)
	}
	if ha == hc {
		t.Fatalf("different tables collide: %s", ha)
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	r1, r2, r3 := &Result{}, &Result{}, &Result{}
	c.Put(DefaultTenant, "a", r1, 0)
	c.Put(DefaultTenant, "b", r2, 0)
	if got, ok := c.Get("a"); !ok || got != r1 {
		t.Fatal("a should be cached")
	}
	// "b" is now least recently used; inserting "c" evicts it.
	c.Put(DefaultTenant, "c", r3, 0)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should survive (recently used)")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.Put(DefaultTenant, "a", &Result{}, 0)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache must not store")
	}
}

// TestResultCacheQuotaShare: a tenant at its share evicts its own LRU entry,
// never another tenant's.
func TestResultCacheQuotaShare(t *testing.T) {
	c := newResultCache(16)
	c.Put("acme", "acme-1", &Result{}, 2)
	c.Put("acme", "acme-2", &Result{}, 2)
	c.Put("globex", "globex-1", &Result{}, 2)
	// acme is at its share of 2: the third insert evicts acme's own oldest.
	c.Put("acme", "acme-3", &Result{}, 2)
	if _, ok := c.Get("acme-1"); ok {
		t.Fatal("acme-1 should have been evicted by acme's own share")
	}
	for _, key := range []string{"acme-2", "acme-3", "globex-1"} {
		if _, ok := c.Get(key); !ok {
			t.Fatalf("%s should survive", key)
		}
	}
	if got := c.TenantLen("acme"); got != 2 {
		t.Fatalf("acme holds %d entries, want 2", got)
	}
	if got := c.TenantLen("globex"); got != 1 {
		t.Fatalf("globex holds %d entries, want 1", got)
	}
}

func TestValidateTenant(t *testing.T) {
	for _, ok := range []string{"default", "acme", "a", "t-1", "team_x", "a.b-c_9"} {
		if err := ValidateTenant(ok); err != nil {
			t.Errorf("ValidateTenant(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "Acme", "a b", "../evil", ".hidden", "-flag", "a/b",
		strings.Repeat("x", 65)} {
		if err := ValidateTenant(bad); err == nil {
			t.Errorf("ValidateTenant(%q) accepted", bad)
		}
	}
}

// TestStoreTenantNamespaces: two tenants get independent handle sequences,
// lists, quotas, and each other's handles are not found.
func TestStoreTenantNamespaces(t *testing.T) {
	s := NewStore()
	s.SetQuotas(&Quotas{Default: Quota{MaxTables: 2}})
	a1, err := s.Put("acme", "roster", smallTable(t, 1000, 2000, 3000))
	if err != nil {
		t.Fatal(err)
	}
	b1, err := s.Put("globex", "roster", smallTable(t, 4000, 5000, 6000))
	if err != nil {
		t.Fatal(err)
	}
	// Per-tenant sequences: both tenants' first table is tbl-1.
	if a1.ID != "tbl-1" || b1.ID != "tbl-1" {
		t.Fatalf("per-tenant handles: got %s and %s, want tbl-1 twice", a1.ID, b1.ID)
	}
	if a1.Tenant != "acme" || b1.Tenant != "globex" {
		t.Fatalf("tenants not recorded: %+v %+v", a1, b1)
	}
	// Lists are disjoint.
	if la, lb := s.List("acme"), s.List("globex"); len(la) != 1 || len(lb) != 1 || la[0].Name != "roster" {
		t.Fatalf("per-tenant lists: %v / %v", la, lb)
	}
	if all := s.ListAll(); len(all) != 2 {
		t.Fatalf("ListAll: %d tables, want 2", len(all))
	}
	// acme's handle resolves only inside acme.
	if _, _, err := s.Get("globex", a1.ID); err == nil {
		// b1.ID == a1.ID, so this actually resolves to globex's own table.
		tab, _, _ := s.Get("globex", a1.ID)
		if v, _ := tab.Cell(0, 2).Float(); v != 4000 {
			t.Fatal("cross-tenant Get leaked a foreign table")
		}
	}
	var nf *ErrNotFound
	if _, _, err := s.Get("initech", a1.ID); !errors.As(err, &nf) {
		t.Fatalf("unknown tenant's Get = %v, want ErrNotFound", err)
	}
	// Deleting in one namespace leaves the other's same-named handle alone.
	if err := s.Delete("acme", a1.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("globex", b1.ID); err != nil {
		t.Fatalf("delete crossed namespaces: %v", err)
	}
	// MaxTables quota: third table for globex (limit 2) is refused.
	if _, err := s.Put("globex", "t2", smallTable(t, 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	var qe *QuotaError
	if _, err := s.Put("globex", "t3", smallTable(t, 4, 5, 6)); !errors.As(err, &qe) {
		t.Fatalf("over-quota Put = %v, want QuotaError", err)
	} else if qe.Resource != "tables" || qe.Limit != 2 {
		t.Fatalf("quota error %+v", qe)
	}
	// acme deleted one: it is back under quota.
	if _, err := s.Put("acme", "t2", smallTable(t, 7, 8, 9)); err != nil {
		t.Fatal(err)
	}
}

// TestQuotasForPartialOverride: a PerTenant entry overrides field by field
// — zero fields inherit the Default, negative means explicitly unlimited.
func TestQuotasForPartialOverride(t *testing.T) {
	q := &Quotas{
		Default: Quota{MaxTables: 8, MaxJobs: 4, CacheShare: 2},
		PerTenant: map[string]Quota{
			"acme":   {MaxTables: 16},              // only tables overridden
			"globex": {MaxJobs: -1, CacheShare: 1}, // jobs explicitly unlimited
		},
	}
	if got := q.For("acme"); got.MaxTables != 16 || got.MaxJobs != 4 || got.CacheShare != 2 {
		t.Fatalf("acme quota %+v: partial override must inherit unspecified defaults", got)
	}
	if got := q.For("globex"); got.MaxTables != 8 || got.MaxJobs != -1 || got.CacheShare != 1 {
		t.Fatalf("globex quota %+v", got)
	}
	if got := q.For("other"); got != q.Default {
		t.Fatalf("unlisted tenant quota %+v, want the default", got)
	}
	var nilQ *Quotas
	if got := nilQ.For("any"); got != (Quota{}) {
		t.Fatalf("nil Quotas resolved to %+v, want unlimited", got)
	}
}

// gatedBackend delays PutTable until the gate opens, widening the window
// between Store.Put's quota check and its insert so the race is forced.
type gatedBackend struct {
	TableBackend
	gate chan struct{}
}

func (b *gatedBackend) PutTable(rec TableRecord) error {
	<-b.gate
	return b.TableBackend.PutTable(rec)
}

// TestStorePutQuotaRace: two concurrent uploads racing for a tenant's last
// table slot — exactly one may win; the loser gets a QuotaError and its
// persisted record is undone, never a tenant above MaxTables.
func TestStorePutQuotaRace(t *testing.T) {
	gate := make(chan struct{})
	s := NewStoreWith(&gatedBackend{TableBackend: NewMemTableBackend(), gate: gate})
	s.SetQuotas(&Quotas{Default: Quota{MaxTables: 1}})

	type res struct {
		info TableInfo
		err  error
	}
	results := make(chan res, 2)
	for i := 0; i < 2; i++ {
		tab := smallTable(t, float64(1000*(i+1)), 2000, 3000)
		go func() {
			info, err := s.Put("acme", "t", tab)
			results <- res{info, err}
		}()
	}
	// Both goroutines are (or will be) parked in the backend, past the
	// first quota check; open the gate and let them race the insert.
	close(gate)
	var oks, quotas int
	for i := 0; i < 2; i++ {
		r := <-results
		switch {
		case r.err == nil:
			oks++
		default:
			var qe *QuotaError
			if !errors.As(r.err, &qe) {
				t.Fatalf("loser failed with %v, want QuotaError", r.err)
			}
			quotas++
		}
	}
	if oks != 1 || quotas != 1 {
		t.Fatalf("raced puts: %d succeeded, %d quota-refused; want exactly 1 each", oks, quotas)
	}
	if n := len(s.List("acme")); n != 1 {
		t.Fatalf("tenant holds %d tables after the race, want 1 (quota)", n)
	}
}
