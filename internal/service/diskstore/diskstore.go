// Package diskstore is the disk-backed storage plane behind the service: a
// service.TableBackend persisting tables as content-addressed columnar
// snapshots, and a service.JobBackend persisting the job log as a JSON-lines
// write-ahead log. With both plugged in, `served -data-dir` survives
// restarts: uploaded tables reload, finished jobs keep their results, and
// interrupted fred-sweeps resume from their last checkpointed level.
//
// Layout under the data directory:
//
//	tables/<tenant>/<sha256>.snap
//	                       columnar table snapshots (dataset.WriteSnapshot),
//	                       content-addressed within each tenant's directory —
//	                       identical uploads by one tenant share a file,
//	                       identical uploads by two tenants do not share
//	                       anything observable
//	results/<sha256>.snap  job result tables ("blobs"), same format; reached
//	                       only through tenant-scoped job results
//	tables.json            versioned table metadata: {"version": 2,
//	                       "tables": [service.TableInfo…]}, rewritten
//	                       atomically (tmp + rename) on every change
//	jobs-<seq>.wal         the job WAL, as numbered segments: one JSON
//	                       service.WALRecord per line (job records carry the
//	                       owning tenant), appended flushed (kill -9 safe),
//	                       fsynced on terminal records. Appends go to the
//	                       highest-numbered segment; WithWALRotation rolls to
//	                       a fresh segment on size/age. A compaction (boot's
//	                       Engine.Recover, or Engine.CompactLog online) writes
//	                       the live image into a NEW segment led by a
//	                       compaction-marker line and unlinks everything
//	                       older; replay starts at the newest marker-led
//	                       segment and spans the rest in order.
//
// A pre-tenancy data directory — a bare-array tables.json and snapshots
// directly under tables/ — is migrated on Open: every table is adopted into
// service.DefaultTenant, its snapshot moved under tables/default/, and the
// metadata rewritten in the versioned format. WAL job records without a
// tenant field are adopted by Engine.Recover the same way, so a v1
// directory recovers byte-identical under the default tenant. A
// pre-segmentation single-file jobs.wal is likewise adopted on Open as the
// oldest segment.
//
// A torn final WAL line in the ACTIVE (last) segment — the signature of a
// crash mid-append — is ignored on replay; rotated-away segments are
// immutable and synced, so corruption anywhere else fails recovery loudly.
// A crash between a compaction's rename and its unlinking of superseded
// segments leaves stale older segments behind; Open detects the newer
// marker-led segment and removes them.
package diskstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/service"
)

// Store implements service.TableBackend and service.JobBackend over one
// data directory. It is safe for concurrent use.
type Store struct {
	dir string

	// mu guards the table metadata (infos + tables.json) and serializes
	// snapshot dedup against last-reference deletes. walMu guards the WAL
	// handle. They are deliberately separate: a long table-snapshot upload
	// must not stall WAL appends — every submission and every running
	// sweep's checkpoint/event publication goes through the WAL.
	mu    sync.Mutex
	infos map[tableKey]service.TableInfo

	walMu sync.Mutex
	wal   *os.File
	lock  *os.File
	// walSeq is the active segment number (appends go to jobs-<walSeq>.wal);
	// segBytes/segBorn track its size and creation time for rotation. All
	// guarded by walMu.
	walSeq   int
	segBytes int64
	segBorn  time.Time

	// rotateBytes/rotateAge are the segment-roll thresholds (WithWALRotation;
	// zero disables that trigger). Set before serving, read-only after.
	rotateBytes int64
	rotateAge   time.Duration

	// metrics instruments the WAL and snapshot paths; its zero value (no
	// WithMetrics option) records nothing.
	metrics storeMetrics
}

// tableKey identifies a table on disk: handles are only unique per tenant.
type tableKey struct{ tenant, id string }

// metaVersion is the tables.json format version. Version 1 was a bare
// TableInfo array with no tenant field; version 2 wraps the list in a
// versioned envelope and every entry names its tenant.
const metaVersion = 2

// metaFile is the versioned tables.json envelope.
type metaFile struct {
	Version int                 `json:"version"`
	Tables  []service.TableInfo `json:"tables"`
}

// Open creates (if needed) and opens a data directory, taking an exclusive
// lock on it — a second process pointed at the same directory is refused
// rather than allowed to interleave a divergent history into the WAL. The
// returned Store serves as both the table backend (service.NewStoreWith)
// and the job log (service.Options.JobLog).
func Open(dir string, opts ...Option) (*Store, error) {
	for _, sub := range []string{"", "tables", "results"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("diskstore: %w", err)
		}
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, infos: make(map[tableKey]service.TableInfo), lock: lock}
	for _, opt := range opts {
		opt(s)
	}
	if err := s.loadMeta(); err != nil {
		unlockDir(lock)
		return nil, err
	}
	s.sweepOrphans()
	if err := s.openWAL(); err != nil {
		unlockDir(lock)
		return nil, err
	}
	return s, nil
}

// openWAL adopts any legacy single-file WAL, removes segments a crashed
// compaction left superseded, opens the newest segment for appending and
// seeds the size accounting.
func (s *Store) openWAL() error {
	// Pre-segmentation layout: adopt jobs.wal as the oldest segment. Segment
	// 0 is reserved for the (never-observed-in-practice) case of a legacy
	// file coexisting with numbered segments: it sorts before all of them,
	// which is where an older history belongs.
	if _, err := os.Stat(s.legacyWALPath()); err == nil {
		segs, err := s.listSegments()
		if err != nil {
			return err
		}
		target := 1
		if len(segs) > 0 {
			target = 0
		}
		if err := os.Rename(s.legacyWALPath(), s.segPath(target)); err != nil {
			return fmt.Errorf("diskstore: adopt legacy wal: %w", err)
		}
	}
	segs, err := s.listSegments()
	if err != nil {
		return err
	}
	// A compacted segment supersedes everything older. Normally CompactWAL
	// unlinks the stale segments itself; a crash between its rename and the
	// unlinks leaves them behind, and this is where they are cleaned up.
	newestCompact := -1
	for _, seq := range segs {
		if ok, err := s.segHasMarker(s.segPath(seq)); err == nil && ok {
			newestCompact = seq
		}
	}
	if newestCompact >= 0 {
		kept := segs[:0]
		for _, seq := range segs {
			if seq < newestCompact {
				os.Remove(s.segPath(seq)) //nolint:errcheck
				continue
			}
			kept = append(kept, seq)
		}
		segs = kept
	}
	active := 1
	if len(segs) > 0 {
		active = segs[len(segs)-1]
	}
	wal, err := os.OpenFile(s.segPath(active), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("diskstore: open wal: %w", err)
	}
	s.wal = wal
	s.walSeq = active
	s.segBorn = time.Now()
	// Seed the size accounting from the files; appends, rotations and
	// compactions keep it current from here.
	var total int64
	for _, seq := range segs {
		if fi, err := os.Stat(s.segPath(seq)); err == nil {
			total += fi.Size()
		}
	}
	if fi, err := wal.Stat(); err == nil {
		s.segBytes = fi.Size()
		if len(segs) == 0 {
			total = fi.Size()
		}
	}
	s.metrics.walBytes.Store(total)
	return nil
}

// sweepOrphans removes crash debris at boot (best-effort, under the
// directory lock): temp files a kill between CreateTemp and Rename left
// behind, and table snapshots no metadata references — a PutTable whose
// tables.json write never landed. Result blobs are NOT swept here: they are
// referenced from the job WAL, which this layer does not interpret.
func (s *Store) sweepOrphans() {
	for _, pat := range []string{
		filepath.Join(s.dir, ".meta-*"),
		filepath.Join(s.dir, "tables", ".snap-*"),
		filepath.Join(s.dir, "tables", "*", ".snap-*"),
		filepath.Join(s.dir, "results", ".snap-*"),
	} {
		matches, _ := filepath.Glob(pat)
		for _, m := range matches {
			os.Remove(m) //nolint:errcheck
		}
	}
	referenced := make(map[[2]string]bool, len(s.infos))
	for _, info := range s.infos {
		referenced[[2]string{info.Tenant, info.Hash}] = true
	}
	snaps, _ := filepath.Glob(filepath.Join(s.dir, "tables", "*", "*.snap"))
	for _, path := range snaps {
		tenant := filepath.Base(filepath.Dir(path))
		hash := strings.TrimSuffix(filepath.Base(path), ".snap")
		if !referenced[[2]string{tenant, hash}] {
			os.Remove(path) //nolint:errcheck
		}
	}
	// Pre-migration leftovers directly under tables/ (the v1 layout keeps
	// nothing there once loadMeta has migrated).
	legacy, _ := filepath.Glob(filepath.Join(s.dir, "tables", "*.snap"))
	for _, path := range legacy {
		os.Remove(path) //nolint:errcheck
	}
}

// Close flushes and closes the job WAL and releases the directory lock.
// Call it after Engine.Shutdown — a graceful exit must not rely on the next
// crash recovery.
func (s *Store) Close() error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	unlockDir(s.lock)
	s.lock = nil
	if s.wal == nil {
		return nil
	}
	err := s.wal.Sync()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.wal = nil
	return err
}

func (s *Store) legacyWALPath() string { return filepath.Join(s.dir, "jobs.wal") }
func (s *Store) metaPath() string      { return filepath.Join(s.dir, "tables.json") }
func (s *Store) segPath(seq int) string {
	return filepath.Join(s.dir, fmt.Sprintf("jobs-%08d.wal", seq))
}

// listSegments returns the on-disk WAL segment numbers, ascending.
func (s *Store) listSegments() ([]int, error) {
	matches, err := filepath.Glob(filepath.Join(s.dir, "jobs-*.wal"))
	if err != nil {
		return nil, fmt.Errorf("diskstore: list wal segments: %w", err)
	}
	seqs := make([]int, 0, len(matches))
	for _, m := range matches {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(m), "jobs-%d.wal", &n); err == nil {
			seqs = append(seqs, n)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// segMarker is the control line opening every compacted segment. It is not a
// service.WALRecord: replay recognizes it by the field and skips it, and its
// presence is what tells Open (and replay) that every older segment is
// superseded.
type segMarker struct {
	CompactBase bool `json:"wal_compact_base"`
}

var segMarkerLine = []byte("{\"wal_compact_base\":true}\n")

// segHasMarker reports whether the segment's first line is the compaction
// marker.
func (s *Store) segHasMarker(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	line, err := bufio.NewReaderSize(f, 4096).ReadBytes('\n')
	if err != nil && !errors.Is(err, io.EOF) {
		return false, err
	}
	return isSegMarker(line), nil
}

func isSegMarker(line []byte) bool {
	var m segMarker
	return json.Unmarshal(line, &m) == nil && m.CompactBase
}
func (s *Store) tablePath(tenant, hash string) string {
	return filepath.Join(s.dir, "tables", tenant, hash+".snap")
}
func (s *Store) blobPath(hash string) string {
	return filepath.Join(s.dir, "results", hash+".snap")
}

// --- TableBackend -----------------------------------------------------------

// PutTable persists the table as a content-addressed snapshot in its
// tenant's directory plus a metadata entry. The snapshot write is atomic
// (tmp + rename), so a crash mid-upload leaves either the previous state or
// the complete new one. The whole put runs under s.mu so the dedup check
// (snapshot already exists) cannot race DeleteTable's last-reference
// removal of the same hash — otherwise a delete could unlink the file a
// just-deduped upload's metadata is about to reference. The tenant name is
// re-validated here — it becomes a path component, and this layer must not
// trust the caller not to traverse.
func (s *Store) PutTable(rec service.TableRecord) error {
	if err := service.ValidateTenant(rec.Info.Tenant); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.MkdirAll(filepath.Join(s.dir, "tables", rec.Info.Tenant), 0o755); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := s.writeSnapshot(s.tablePath(rec.Info.Tenant, rec.Info.Hash), rec.Table); err != nil {
		return err
	}
	s.infos[tableKey{rec.Info.Tenant, rec.Info.ID}] = rec.Info
	return s.writeMetaLocked()
}

// DeleteTable drops the metadata entry and, when no other table of the same
// tenant shares the content hash, the snapshot file. Unknown ids are a
// no-op.
func (s *Store) DeleteTable(tenant, id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := tableKey{tenant, id}
	info, ok := s.infos[key]
	if !ok {
		return nil
	}
	delete(s.infos, key)
	shared := false
	for k, other := range s.infos {
		if k.tenant == tenant && other.Hash == info.Hash {
			shared = true
			break
		}
	}
	if !shared {
		if err := os.Remove(s.tablePath(tenant, info.Hash)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("diskstore: remove snapshot: %w", err)
		}
	}
	return s.writeMetaLocked()
}

// LoadTables reloads every persisted table. A metadata entry whose snapshot
// is missing or corrupt fails the load: a durable store that silently drops
// tables is worse than one that refuses to start.
func (s *Store) LoadTables() ([]service.TableRecord, error) {
	s.mu.Lock()
	infos := make([]service.TableInfo, 0, len(s.infos))
	for _, info := range s.infos {
		infos = append(infos, info)
	}
	s.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].Tenant != infos[j].Tenant {
			return infos[i].Tenant < infos[j].Tenant
		}
		return infos[i].ID < infos[j].ID
	})
	recs := make([]service.TableRecord, 0, len(infos))
	for _, info := range infos {
		t, err := s.readSnapshot(s.tablePath(info.Tenant, info.Hash))
		if err != nil {
			return nil, fmt.Errorf("diskstore: load table %s/%s: %w", info.Tenant, info.ID, err)
		}
		recs = append(recs, service.TableRecord{Info: info, Table: t})
	}
	return recs, nil
}

// PutBlob persists a result table under its content hash. Existing blobs
// are left untouched — content addressing makes re-puts no-ops.
func (s *Store) PutBlob(hash string, t *dataset.Table) error {
	return s.writeSnapshot(s.blobPath(hash), t)
}

// GetBlob reloads a result table by content hash.
func (s *Store) GetBlob(hash string) (*dataset.Table, error) {
	t, err := s.readSnapshot(s.blobPath(hash))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, &service.ErrNotFound{Kind: "blob", ID: hash}
	}
	return t, err
}

// ListBlobs enumerates the content-addressed result blobs on disk — the
// service.BlobGC walk behind Engine.GCBlobs.
func (s *Store) ListBlobs() ([]service.BlobInfo, error) {
	matches, err := filepath.Glob(filepath.Join(s.dir, "results", "*.snap"))
	if err != nil {
		return nil, fmt.Errorf("diskstore: list blobs: %w", err)
	}
	blobs := make([]service.BlobInfo, 0, len(matches))
	for _, m := range matches {
		fi, err := os.Stat(m)
		if err != nil {
			continue // raced a concurrent delete
		}
		blobs = append(blobs, service.BlobInfo{
			Hash:  strings.TrimSuffix(filepath.Base(m), ".snap"),
			Bytes: fi.Size(),
		})
	}
	return blobs, nil
}

// DeleteBlob removes one result blob; an absent blob is a no-op (GC races a
// re-put benignly — content addressing makes the re-put recreate identical
// bytes).
func (s *Store) DeleteBlob(hash string) error {
	err := os.Remove(s.blobPath(hash))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("diskstore: delete blob: %w", err)
	}
	if err == nil {
		s.metrics.blobsDeleted.Inc()
	}
	return nil
}

// Durable reports that this backend outlives the process.
func (s *Store) Durable() bool { return true }

// writeSnapshot writes a columnar snapshot atomically, skipping the write
// when the content-addressed file already exists.
func (s *Store) writeSnapshot(path string, t *dataset.Table) error {
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	// The timer starts after the dedup check: a content-addressed no-op is
	// not a write and must not drag the latency distribution down.
	defer func(start time.Time) {
		s.metrics.snapWrite.Observe(time.Since(start).Seconds())
	}(time.Now())
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snap-*")
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	defer os.Remove(tmp.Name()) //nolint:errcheck // no-op after the rename
	bw := bufio.NewWriterSize(tmp, 1<<16)
	if err := t.WriteSnapshot(bw); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	return nil
}

func (s *Store) readSnapshot(path string) (*dataset.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	defer func(start time.Time) {
		s.metrics.snapRead.Observe(time.Since(start).Seconds())
	}(time.Now())
	return dataset.ReadSnapshot(f)
}

// loadMeta reads tables.json; a missing file is an empty store. A version-1
// file — the pre-tenancy bare TableInfo array — triggers the one-time
// migration: every entry is adopted into service.DefaultTenant, its
// snapshot file moved from tables/<hash>.snap into the tenant directory,
// and the metadata rewritten in the versioned envelope, so the next boot
// reads a plain v2 store.
func (s *Store) loadMeta() error {
	raw, err := os.ReadFile(s.metaPath())
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("diskstore: read metadata: %w", err)
	}
	var meta metaFile
	if err := json.Unmarshal(raw, &meta); err == nil && meta.Version != 0 {
		if meta.Version > metaVersion {
			return fmt.Errorf("diskstore: metadata version %d is newer than this binary understands (%d)", meta.Version, metaVersion)
		}
		for _, info := range meta.Tables {
			if info.Tenant == "" {
				info.Tenant = service.DefaultTenant
			}
			s.infos[tableKey{info.Tenant, info.ID}] = info
		}
		return nil
	}
	// Version 1: a bare array. Adopt and migrate the layout.
	var infos []service.TableInfo
	if err := json.Unmarshal(raw, &infos); err != nil {
		return fmt.Errorf("diskstore: parse metadata: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(s.dir, "tables", service.DefaultTenant), 0o755); err != nil {
		return fmt.Errorf("diskstore: migrate metadata: %w", err)
	}
	for _, info := range infos {
		info.Tenant = service.DefaultTenant
		oldPath := filepath.Join(s.dir, "tables", info.Hash+".snap")
		newPath := s.tablePath(info.Tenant, info.Hash)
		if err := os.Rename(oldPath, newPath); err != nil && !errors.Is(err, fs.ErrNotExist) {
			// ErrNotExist: a duplicate hash already moved it, or the
			// snapshot is genuinely missing — LoadTables reports the
			// latter loudly.
			return fmt.Errorf("diskstore: migrate snapshot %s: %w", info.Hash, err)
		}
		s.infos[tableKey{info.Tenant, info.ID}] = info
	}
	return s.writeMetaLocked()
}

// writeMetaLocked rewrites tables.json atomically in the versioned format.
// Callers hold s.mu.
func (s *Store) writeMetaLocked() error {
	meta := metaFile{Version: metaVersion, Tables: make([]service.TableInfo, 0, len(s.infos))}
	for _, info := range s.infos {
		meta.Tables = append(meta.Tables, info)
	}
	sort.Slice(meta.Tables, func(i, j int) bool {
		if meta.Tables[i].Tenant != meta.Tables[j].Tenant {
			return meta.Tables[i].Tenant < meta.Tables[j].Tenant
		}
		return meta.Tables[i].ID < meta.Tables[j].ID
	})
	raw, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("diskstore: marshal metadata: %w", err)
	}
	return atomicWrite(s.metaPath(), append(raw, '\n'))
}

// atomicWrite writes data to path via a synced temp file and rename.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".meta-*")
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	defer os.Remove(tmp.Name()) //nolint:errcheck
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	return nil
}

// --- JobBackend -------------------------------------------------------------

// AppendWAL appends one JSON line to the job WAL and flushes it to the OS:
// appended records survive kill -9. fsync is reserved for SyncWAL (terminal
// records and shutdown), trading power-loss durability on checkpoints for
// per-level append cost.
func (s *Store) AppendWAL(rec *service.WALRecord) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("diskstore: marshal wal record: %w", err)
	}
	raw = append(raw, '\n')
	start := time.Now()
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.wal == nil {
		return errors.New("diskstore: wal is closed")
	}
	if _, err := s.wal.Write(raw); err != nil {
		return fmt.Errorf("diskstore: append wal: %w", err)
	}
	// The latency includes lock wait: that is what a submitting caller
	// actually experiences when appends contend.
	s.metrics.walAppend.Observe(time.Since(start).Seconds())
	s.metrics.walBytes.Add(int64(len(raw)))
	s.segBytes += int64(len(raw))
	// Rotation is best-effort: the record above IS durable in the old
	// segment either way, so a failed roll (e.g. disk full creating the next
	// file) must not report the append as lost — it just retries on the
	// next append.
	s.maybeRotateLocked() //nolint:errcheck
	return nil
}

// maybeRotateLocked rolls to a fresh segment once the active one crosses the
// size or age threshold. Callers hold walMu.
func (s *Store) maybeRotateLocked() error {
	if s.segBytes == 0 {
		return nil
	}
	bySize := s.rotateBytes > 0 && s.segBytes >= s.rotateBytes
	byAge := s.rotateAge > 0 && time.Since(s.segBorn) >= s.rotateAge
	if !bySize && !byAge {
		return nil
	}
	return s.rotateLocked()
}

// rotateLocked closes the active segment (synced: a rotated-away segment is
// immutable from here on) and opens the next-numbered one. The new segment
// is opened first, so failure leaves the old one active. Callers hold walMu.
func (s *Store) rotateLocked() error {
	next, err := os.OpenFile(s.segPath(s.walSeq+1), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("diskstore: rotate wal: %w", err)
	}
	s.wal.Sync()  //nolint:errcheck // best-effort, matching SyncWAL cadence
	s.wal.Close() //nolint:errcheck
	s.wal = next
	s.walSeq++
	s.segBytes = 0
	s.segBorn = time.Now()
	s.metrics.walRotations.Inc()
	return nil
}

// SyncWAL fsyncs the WAL to stable storage.
func (s *Store) SyncWAL() error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.wal == nil {
		return nil
	}
	s.metrics.walFsync.Inc()
	return s.wal.Sync()
}

// ReplayWAL streams every WAL record to fn in append order, spanning
// segments oldest to newest — starting at the newest compaction-marker-led
// segment, since everything older is superseded history. Only an
// UNTERMINATED final line of the LAST segment is forgiven: AppendWAL writes
// each record in one buffer whose last byte is the newline, so a crash
// mid-append can persist any prefix of a record but never its trailing
// newline — a newline-terminated line that fails to parse, or any short
// line in a rotated-away (immutable) segment, is genuine corruption (bit
// rot, sector damage) and fails recovery loudly.
func (s *Store) ReplayWAL(fn func(service.WALRecord) error) error {
	segs, err := s.listSegments()
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return nil
	}
	defer func(start time.Time) {
		s.metrics.walReplay.Observe(time.Since(start).Seconds())
	}(time.Now())
	start := 0
	for i, seq := range segs {
		if ok, err := s.segHasMarker(s.segPath(seq)); err == nil && ok {
			start = i
		}
	}
	for i := start; i < len(segs); i++ {
		if err := s.replaySegment(s.segPath(segs[i]), i == len(segs)-1, fn); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment streams one segment's records to fn; last marks the active
// segment, the only one whose torn tail is a crash artifact.
func (s *Store) replaySegment(path string, last bool, fn func(service.WALRecord) error) error {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("diskstore: open wal segment: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	for lineNo := 1; ; lineNo++ {
		line, err := r.ReadBytes('\n')
		torn := last && errors.Is(err, io.EOF) && len(line) > 0
		if len(bytes.TrimSpace(line)) > 0 {
			switch {
			case lineNo == 1 && isSegMarker(line):
				// Compacted-segment control line; not a record.
			default:
				var rec service.WALRecord
				if uerr := json.Unmarshal(line, &rec); uerr != nil {
					if torn {
						// The unterminated final line is the crash's torn
						// append. Everything before it stands.
						return nil
					}
					return fmt.Errorf("diskstore: wal line %d corrupt: %w", lineNo, uerr)
				}
				if ferr := fn(rec); ferr != nil {
					return ferr
				}
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("diskstore: read wal: %w", err)
		}
	}
}

// CompactWAL rewrites the WAL to recs — the live image Engine.Recover or
// Engine.CompactLog computes. The image lands in a FRESH marker-led segment
// (tmp + fsync + rename, so a crash leaves either the old segments or the
// complete new one), the append handle moves onto it, and every older
// segment is unlinked. A crash between the rename and the unlinks is safe:
// Open and ReplayWAL treat the newest marker-led segment as the replay base
// and discard everything older.
func (s *Store) CompactWAL(recs []*service.WALRecord) error {
	var buf bytes.Buffer
	buf.Write(segMarkerLine)
	enc := json.NewEncoder(&buf)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("diskstore: marshal wal record: %w", err)
		}
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	next := s.walSeq + 1
	if err := atomicWrite(s.segPath(next), buf.Bytes()); err != nil {
		return err
	}
	if s.wal != nil {
		s.wal.Close() //nolint:errcheck // superseded handle
	}
	wal, err := os.OpenFile(s.segPath(next), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.wal = nil
		return fmt.Errorf("diskstore: reopen wal: %w", err)
	}
	s.wal = wal
	s.walSeq = next
	s.segBytes = int64(buf.Len())
	s.segBorn = time.Now()
	if segs, err := s.listSegments(); err == nil {
		for _, seq := range segs {
			if seq < next {
				os.Remove(s.segPath(seq)) //nolint:errcheck // Open re-sweeps stale segments
			}
		}
	}
	s.metrics.walBytes.Store(int64(buf.Len()))
	s.metrics.walCompactions.Inc()
	return nil
}
