//go:build !unix

package diskstore

import "os"

// lockDir is a no-op on platforms without flock; single-process use is the
// operator's responsibility there.
func lockDir(string) (*os.File, error) { return nil, nil }

func unlockDir(*os.File) {}
