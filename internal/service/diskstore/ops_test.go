package diskstore_test

// Ops-plane tests for the storage layer: WAL segment rotation, online
// compaction, crash images taken mid-compaction, and result-blob garbage
// collection. The headline test is the kill -9 acceptance: a plane that
// rotated several times and compacted once must replay byte-identically
// from a disk image copied while the store was still live.

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/service"
	"repro/internal/service/diskstore"
)

// openPlaneRot is openPlane with diskstore options (rotation) threaded
// through.
func openPlaneRot(t *testing.T, dir string, opts service.Options, dsOpts ...diskstore.Option) (*diskstore.Store, *service.Store, *service.Engine) {
	t.Helper()
	ds, err := diskstore.Open(dir, dsOpts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	store := service.NewStoreWith(ds)
	if err := store.Open(); err != nil {
		t.Fatal(err)
	}
	opts.JobLog = ds
	engine := service.NewEngine(store, opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		engine.Shutdown(ctx)
	})
	return ds, store, engine
}

// replayImage opens dir as a fresh store, replays the whole WAL and returns
// each record's canonical JSON, in replay order. Byte-level comparison of
// two images is exactly the acceptance contract: not "equivalent" state,
// the same records.
func replayImage(t *testing.T, dir string) []string {
	t.Helper()
	ds, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	var lines []string
	err = ds.ReplayWAL(func(rec service.WALRecord) error {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		lines = append(lines, string(b))
		return nil
	})
	if err != nil {
		t.Fatalf("replay %s: %v", dir, err)
	}
	return lines
}

func sameImage(t *testing.T, got, want []string, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: replayed %d records, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: record %d differs\n got %s\nwant %s", what, i, got[i], want[i])
		}
	}
}

// copyDir snapshots a live data directory file-by-file — the moral
// equivalent of the disk image a kill -9 leaves behind. It must be taken
// while the source store is still open (the flock is advisory and
// per-process state, so the copy opens cleanly).
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), "image")
	if err := os.CopyFS(dst, os.DirFS(src)); err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestWALRotationBySize: with a tiny byte threshold, appends roll the log
// across many segments, and replay stitches them back in order — across a
// close/reopen too.
func TestWALRotationBySize(t *testing.T) {
	dir := t.TempDir()
	ds, err := diskstore.Open(dir, diskstore.WithWALRotation(256, 0))
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 1; i <= n; i++ {
		rec := &service.WALRecord{Seq: uint64(i), Kind: service.WALDelete, JobID: "job-rotate"}
		if err := ds.AppendWAL(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(walSegments(t, dir)); got < 3 {
		t.Fatalf("after %d appends at 256-byte rotation: %d segments, want >= 3", n, got)
	}
	var seqs []uint64
	if err := ds.ReplayWAL(func(rec service.WALRecord) error {
		seqs = append(seqs, rec.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != n {
		t.Fatalf("replayed %d records, want %d", len(seqs), n)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("record %d has seq %d — multi-segment replay out of order", i, s)
		}
	}
	// Reopen without the rotation option: segment layout is data, not config.
	img := replayImage(t, dir)
	if len(img) != n {
		t.Fatalf("reopened replay saw %d records, want %d", len(img), n)
	}
}

// TestWALRotationByAge: the age trigger alone must also roll the segment.
func TestWALRotationByAge(t *testing.T) {
	dir := t.TempDir()
	ds, err := diskstore.Open(dir, diskstore.WithWALRotation(0, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	for i := 1; i <= 3; i++ {
		time.Sleep(5 * time.Millisecond)
		rec := &service.WALRecord{Seq: uint64(i), Kind: service.WALDelete, JobID: "job-age"}
		if err := ds.AppendWAL(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(walSegments(t, dir)); got < 2 {
		t.Fatalf("age-based rotation never fired: %d segments", got)
	}
}

// TestCompactionSupersedesSegments: CompactWAL collapses a many-segment
// history into one marker-led segment; replay serves exactly the live image.
func TestCompactionSupersedesSegments(t *testing.T) {
	dir := t.TempDir()
	ds, err := diskstore.Open(dir, diskstore.WithWALRotation(200, 0))
	if err != nil {
		t.Fatal(err)
	}
	live := make([]*service.WALRecord, 0, 10)
	for i := 1; i <= 30; i++ {
		rec := &service.WALRecord{Seq: uint64(i), Kind: service.WALDelete, JobID: "job-compact"}
		if err := ds.AppendWAL(rec); err != nil {
			t.Fatal(err)
		}
		// Every third record survives compaction, standing in for the live
		// subset the engine computes.
		if i%3 == 0 {
			live = append(live, rec)
		}
	}
	before := walSegments(t, dir)
	if len(before) < 3 {
		t.Fatalf("history too small to prove anything: %d segments", len(before))
	}
	if err := ds.CompactWAL(live); err != nil {
		t.Fatal(err)
	}
	after := walSegments(t, dir)
	if len(after) != 1 {
		t.Fatalf("compaction left %d segments %v, want exactly 1", len(after), after)
	}
	raw, err := os.ReadFile(after[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(raw), `{"wal_compact_base":true}`) {
		t.Fatalf("compacted segment does not open with the base marker: %q", raw[:min(len(raw), 60)])
	}
	// Appends continue into the compacted generation.
	if err := ds.AppendWAL(&service.WALRecord{Seq: 31, Kind: service.WALDelete, JobID: "job-compact"}); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	if err := ds.ReplayWAL(func(rec service.WALRecord) error {
		seqs = append(seqs, rec.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, 0, len(live)+1)
	for _, rec := range live {
		want = append(want, rec.Seq)
	}
	want = append(want, 31)
	if len(seqs) != len(want) {
		t.Fatalf("replay saw %d records %v, want %v", len(seqs), seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("replay %v, want %v", seqs, want)
		}
	}
}

// TestCrashMidCompactionImages constructs the two disk states a kill can
// leave inside CompactWAL and proves Open repairs both without changing
// what replays:
//
//   - killed before the rename: a .meta-* temp file holding the half-written
//     compacted segment sits in the directory root; it is swept, the old
//     segments still replay.
//   - killed between the rename and the unlinks: the marker-led segment
//     coexists with the stale history it superseded; Open drops the stale
//     segments and replays only the compacted image.
func TestCrashMidCompactionImages(t *testing.T) {
	dir := t.TempDir()
	ds, err := diskstore.Open(dir, diskstore.WithWALRotation(200, 0))
	if err != nil {
		t.Fatal(err)
	}
	live := make([]*service.WALRecord, 0, 10)
	for i := 1; i <= 30; i++ {
		rec := &service.WALRecord{Seq: uint64(i), Kind: service.WALDelete, JobID: "job-crash"}
		if err := ds.AppendWAL(rec); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			live = append(live, rec)
		}
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	baseline := replayImage(t, dir)

	// State 1: crash before the rename. The atomic write machinery stages
	// under .meta-*; forge one holding a plausible half-compaction.
	debris := filepath.Join(dir, ".meta-1234567")
	if err := os.WriteFile(debris, []byte("{\"wal_compact_base\":true}\n{\"seq\":3,"), 0o644); err != nil {
		t.Fatal(err)
	}
	sameImage(t, replayImage(t, dir), baseline, "crash before rename")
	if _, err := os.Stat(debris); !os.IsNotExist(err) {
		t.Fatal("compaction temp debris survived Open")
	}

	// State 2: crash between rename and unlink. Run a real compaction, then
	// resurrect a stale pre-compaction segment next to the marker segment.
	ds, err = diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.CompactWAL(live); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	compacted := replayImage(t, dir)
	if len(compacted) != len(live) {
		t.Fatalf("compacted image has %d records, want %d", len(compacted), len(live))
	}
	stale := filepath.Join(dir, "jobs-00000001.wal")
	staleBody := "{\"seq\":1,\"kind\":\"delete\",\"job_id\":\"job-crash\"}\n"
	if err := os.WriteFile(stale, []byte(staleBody), 0o644); err != nil {
		t.Fatal(err)
	}
	sameImage(t, replayImage(t, dir), compacted, "crash between rename and unlink")
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("superseded segment survived Open after a simulated mid-compaction crash")
	}
}

// TestKillDuringRotatedCompactedRunByteIdentical is the PR's acceptance
// test: a serving plane that rotated its WAL at least three times and
// compacted once online, imaged as a kill -9 would leave it (copied while
// the store is live, nothing closed), recovers every job byte-identically.
func TestKillDuringRotatedCompactedRunByteIdentical(t *testing.T) {
	dir := t.TempDir()
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 30})
	if err != nil {
		t.Fatal(err)
	}
	_, store, engine := openPlaneRot(t, dir, service.Options{Workers: 2, SweepWorkers: 2},
		diskstore.WithWALRotation(300, 0))
	pInfo, err := store.Put(service.DefaultTenant, "P", sc.P)
	if err != nil {
		t.Fatal(err)
	}
	qInfo, err := store.Put(service.DefaultTenant, "Q", sc.Q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Recover(); err != nil {
		t.Fatal(err)
	}
	engine.Start()

	st1, err := engine.Submit(service.DefaultTenant, sweepSpec(pInfo.ID, qInfo.ID))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, engine, st1.ID)
	if got := len(walSegments(t, dir)); got < 3 {
		t.Fatalf("one sweep at 300-byte rotation produced %d segments, want >= 3 rotations", got)
	}
	if err := engine.CompactLog(); err != nil {
		t.Fatal(err)
	}

	// Second job lands in post-compaction segments: the image mixes a
	// marker-led base segment with fresh rotated history.
	spec2 := sweepSpec(pInfo.ID, qInfo.ID)
	spec2.MaxK = 6
	st2, err := engine.Submit(service.DefaultTenant, spec2)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, engine, st2.ID)
	res1, err := engine.Result(service.DefaultTenant, st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := engine.Result(service.DefaultTenant, st2.ID)
	if err != nil {
		t.Fatal(err)
	}

	// kill -9: image the directory while everything is still open.
	image := copyDir(t, dir)

	_, _, engine2 := openPlane(t, image, service.Options{Workers: 2, SweepWorkers: 2})
	if _, err := engine2.Recover(); err != nil {
		t.Fatal(err)
	}
	engine2.Start()
	for _, job := range []struct {
		id   string
		want *service.Result
	}{{st1.ID, res1}, {st2.ID, res2}} {
		st, err := engine2.Job(service.DefaultTenant, job.id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != service.StateDone {
			t.Fatalf("job %s recovered as %s, want done", job.id, st.State)
		}
		got, err := engine2.Result(service.DefaultTenant, job.id)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprintHex(t, got.Table) != fingerprintHex(t, job.want.Table) {
			t.Fatalf("job %s result diverged after kill -9 recovery", job.id)
		}
		if len(got.Levels) != len(job.want.Levels) {
			t.Fatalf("job %s recovered %d levels, want %d", job.id, len(got.Levels), len(job.want.Levels))
		}
	}
}

// TestBlobGCReclaimsUnreferenced: a done job roots its result blob; deleting
// the job orphans it; a dry run names it without touching the file; a real
// run reclaims it — and the plane keeps serving afterwards.
func TestBlobGCReclaimsUnreferenced(t *testing.T) {
	dir := t.TempDir()
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 30})
	if err != nil {
		t.Fatal(err)
	}
	// CacheSize -1: the result cache must not keep the blob reachable after
	// the job is deleted, or the test would prove nothing.
	_, store, engine := openPlane(t, dir, service.Options{Workers: 2, SweepWorkers: 2, CacheSize: -1})
	pInfo, err := store.Put(service.DefaultTenant, "P", sc.P)
	if err != nil {
		t.Fatal(err)
	}
	qInfo, err := store.Put(service.DefaultTenant, "Q", sc.Q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Recover(); err != nil {
		t.Fatal(err)
	}
	engine.Start()
	st, err := engine.Submit(service.DefaultTenant, sweepSpec(pInfo.ID, qInfo.ID))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, engine, st.ID)

	blobGlob := filepath.Join(dir, "results", "*.snap")
	blobs, err := filepath.Glob(blobGlob)
	if err != nil || len(blobs) == 0 {
		t.Fatalf("no result blobs on disk (%v)", err)
	}

	rep, err := engine.GCBlobs(false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reclaimed != 0 || rep.Live == 0 {
		t.Fatalf("GC with a live job reclaimed %d (live %d), want 0 reclaimed", rep.Reclaimed, rep.Live)
	}

	if err := engine.Delete(service.DefaultTenant, st.ID); err != nil {
		t.Fatal(err)
	}
	dry, err := engine.GCBlobs(true)
	if err != nil {
		t.Fatal(err)
	}
	if !dry.DryRun || dry.Reclaimed != 1 || len(dry.Unreferenced) != 1 || dry.BytesReclaimed <= 0 {
		t.Fatalf("dry run %+v, want exactly one reclaimable blob with bytes", dry)
	}
	if left, _ := filepath.Glob(blobGlob); len(left) != len(blobs) {
		t.Fatal("dry run deleted blobs")
	}

	real, err := engine.GCBlobs(false)
	if err != nil {
		t.Fatal(err)
	}
	if real.Reclaimed != 1 || real.BytesReclaimed != dry.BytesReclaimed {
		t.Fatalf("real run %+v, want the dry run's one blob and byte count", real)
	}
	if left, _ := filepath.Glob(blobGlob); len(left) != 0 {
		t.Fatalf("unreferenced blobs survived GC: %v", left)
	}

	// Tables were never GC roots at risk: the plane still serves, and a
	// re-run of the same spec rewrites the blob.
	st2, err := engine.Submit(service.DefaultTenant, sweepSpec(pInfo.ID, qInfo.ID))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, engine, st2.ID)
	if left, _ := filepath.Glob(blobGlob); len(left) == 0 {
		t.Fatal("re-run did not rewrite the result blob")
	}
}
