package diskstore

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Option configures a Store at Open.
type Option func(*Store)

// WithWALRotation enables WAL segment rolling: the active segment is closed
// and a fresh jobs-<seq+1>.wal opened once it reaches maxBytes (0 disables
// the size trigger) or maxAge since it was opened (0 disables the age
// trigger). Rotation bounds how much history a single file accumulates
// between compactions and keeps the torn-tail crash window confined to the
// newest segment.
func WithWALRotation(maxBytes int64, maxAge time.Duration) Option {
	return func(s *Store) {
		s.rotateBytes = maxBytes
		s.rotateAge = maxAge
	}
}

// WithMetrics registers the storage plane's instrumentation on r: WAL append
// latency and fsync count, the live WAL byte length, replay duration, and
// snapshot read/write latency. All families are unlabelled — the WAL is
// shared across tenants, and attributing per-tenant bytes would require
// interpreting record contents this layer deliberately does not.
func WithMetrics(r *obs.Registry) Option {
	return func(s *Store) { s.metrics.wire(r, s) }
}

// storeMetrics is the Store's instrument set. The zero value (no registry
// wired) records nothing: every obs instrument is nil-safe.
type storeMetrics struct {
	walAppend      obs.Histogram // append latency, write-to-OS only
	walFsync       obs.Counter
	walReplay      obs.Histogram
	walRotations   obs.Counter
	walCompactions obs.Counter
	snapRead       obs.Histogram
	snapWrite      obs.Histogram
	blobsDeleted   obs.Counter
	// walBytes tracks the live WAL length: seeded from a stat at Open,
	// advanced by appends, reset by CompactWAL. Exposed as a gauge func so
	// scrapes never touch the filesystem.
	walBytes atomic.Int64
}

func (m *storeMetrics) wire(r *obs.Registry, s *Store) {
	m.walAppend = r.Histogram("wal_append_seconds",
		"Job WAL append latency (write + flush to OS, no fsync).", nil).With()
	m.walFsync = r.Counter("wal_fsync_total",
		"Job WAL fsyncs (terminal records and shutdown).").With()
	m.walReplay = r.Histogram("wal_replay_seconds",
		"Full job WAL replay duration (crash recovery).", nil).With()
	m.walRotations = r.Counter("wal_segments_rotated_total",
		"WAL segments rolled by size/age rotation.").With()
	m.walCompactions = r.Counter("wal_compactions_total",
		"WAL compactions (boot recovery and online).").With()
	m.blobsDeleted = r.Counter("blobs_deleted_total",
		"Result blobs removed by DeleteBlob (blob GC).").With()
	m.snapRead = r.Histogram("snapshot_read_seconds",
		"Columnar table snapshot read latency.", nil).With()
	m.snapWrite = r.Histogram("snapshot_write_seconds",
		"Columnar table snapshot write latency (deduplicated writes excluded).", nil).With()
	r.GaugeFunc("wal_bytes",
		"Current job WAL length in bytes (drops at compaction).", func() float64 {
			return float64(m.walBytes.Load())
		})
}
