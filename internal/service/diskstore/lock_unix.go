//go:build unix

package diskstore

import (
	"fmt"
	"os"
	"syscall"
)

// lockDir takes an exclusive advisory flock on dir/LOCK, refusing to open a
// data directory another live process holds: two daemons appending to one
// WAL would interleave divergent histories and corrupt recovery. The kernel
// releases the lock when the process dies — kill -9 included — so a crash
// never strands a stale lock the way a pidfile would.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(dir+"/LOCK", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("diskstore: open lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskstore: data directory %s is locked by another process", dir)
	}
	return f, nil
}

func unlockDir(f *os.File) {
	if f != nil {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN) //nolint:errcheck
		f.Close()
	}
}
