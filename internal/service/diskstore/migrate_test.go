package diskstore_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/service"
)

// downgradeToV1 rewrites a current data directory into the exact pre-tenancy
// (version 1) layout: tables.json becomes a bare TableInfo array without
// tenant fields, snapshots move from tables/default/ up into tables/, and
// every WAL record loses its tenant markers. The result is byte-for-byte
// what a pre-tenancy served build would have left behind.
func downgradeToV1(t *testing.T, dir string) {
	t.Helper()

	// tables.json: versioned envelope → bare array, tenant fields dropped.
	raw, err := os.ReadFile(filepath.Join(dir, "tables.json"))
	if err != nil {
		t.Fatal(err)
	}
	var meta struct {
		Version int              `json:"version"`
		Tables  []map[string]any `json:"tables"`
	}
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Version != 2 {
		t.Fatalf("fixture dir has metadata version %d, want 2", meta.Version)
	}
	for _, info := range meta.Tables {
		delete(info, "tenant")
	}
	v1, err := json.MarshalIndent(meta.Tables, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "tables.json"), append(v1, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	// Snapshots: tables/default/<hash>.snap → tables/<hash>.snap.
	snaps, err := filepath.Glob(filepath.Join(dir, "tables", service.DefaultTenant, "*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("fixture dir has no default-tenant snapshots to downgrade")
	}
	for _, snap := range snaps {
		if err := os.Rename(snap, filepath.Join(dir, "tables", filepath.Base(snap))); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Remove(filepath.Join(dir, "tables", service.DefaultTenant)); err != nil {
		t.Fatal(err)
	}

	// WAL: concatenate the segment files back into a single legacy jobs.wal
	// (pre-tenancy builds predate segmentation too), dropping compaction
	// markers, the tenant field on job records, and the tenant inside the
	// embedded terminal status snapshots.
	var out bytes.Buffer
	for _, seg := range walSegments(t, dir) {
		walRaw, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range bytes.Split(walRaw, []byte("\n")) {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var rec map[string]any
			if err := json.Unmarshal(line, &rec); err != nil {
				t.Fatal(err)
			}
			if _, marker := rec["wal_compact_base"]; marker {
				continue
			}
			delete(rec, "tenant")
			if st, ok := rec["status"].(map[string]any); ok {
				delete(st, "tenant")
			}
			v1line, err := json.Marshal(rec)
			if err != nil {
				t.Fatal(err)
			}
			out.Write(v1line)
			out.WriteByte('\n')
		}
		if err := os.Remove(seg); err != nil {
			t.Fatal(err)
		}
	}
	if out.Len() == 0 {
		t.Fatal("fixture dir has no WAL records to downgrade")
	}
	if err := os.WriteFile(filepath.Join(dir, "jobs.wal"), out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestMigratePreTenancyDirIntoDefaultTenant is the migration acceptance
// test: a data directory written before multi-tenancy existed — bare-array
// tables.json, snapshots directly under tables/, WAL records without tenant
// fields — opens cleanly, adopts everything into the default tenant
// (snapshots moved under tables/default/, metadata rewritten versioned),
// and recovers the finished sweep with a byte-identical result.
func TestMigratePreTenancyDirIntoDefaultTenant(t *testing.T) {
	dir, jobID, want, wantRes := runUninterrupted(t)
	wantHash := fingerprintHex(t, wantRes.Table)
	downgradeToV1(t, dir)

	_, store, engine := openPlane(t, dir, service.Options{Workers: 2, SweepWorkers: 2})
	recovered, err := engine.Recover()
	if err != nil {
		t.Fatal(err)
	}
	engine.Start()
	if len(recovered) != 1 || recovered[0].Resumed {
		t.Fatalf("recovered %+v, want one non-resumed terminal job", recovered)
	}
	if got := recovered[0].Status.Tenant; got != service.DefaultTenant {
		t.Fatalf("migrated job's tenant %q, want %q", got, service.DefaultTenant)
	}

	// Tables live in the default namespace, with their handles intact.
	tables := store.List(service.DefaultTenant)
	if len(tables) != 2 {
		t.Fatalf("default tenant has %d tables, want 2", len(tables))
	}
	for _, info := range tables {
		if info.Tenant != service.DefaultTenant {
			t.Fatalf("migrated table %s has tenant %q", info.ID, info.Tenant)
		}
		if _, err := os.Stat(filepath.Join(dir, "tables", service.DefaultTenant, info.Hash+".snap")); err != nil {
			t.Fatalf("snapshot not moved into the tenant directory: %v", err)
		}
	}
	if stray, _ := filepath.Glob(filepath.Join(dir, "tables", "*.snap")); len(stray) != 0 {
		t.Fatalf("migration left snapshots in the v1 location: %v", stray)
	}

	// The finished job recovered under the default tenant, byte-identical.
	st, err := engine.Job(service.DefaultTenant, jobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone || len(st.Levels) != len(want.Levels) {
		t.Fatalf("migrated job state %s with %d levels, want done with %d", st.State, len(st.Levels), len(want.Levels))
	}
	res, err := engine.Result(service.DefaultTenant, jobID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table == nil || fingerprintHex(t, res.Table) != wantHash {
		t.Fatal("migrated result table is not byte-identical to the pre-migration run")
	}

	// The metadata is now versioned: the next boot reads it as v2 directly.
	raw, err := os.ReadFile(filepath.Join(dir, "tables.json"))
	if err != nil {
		t.Fatal(err)
	}
	var meta struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(raw, &meta); err != nil || meta.Version != 2 {
		t.Fatalf("post-migration metadata version %d (err %v), want 2", meta.Version, err)
	}

	// And the migrated namespace behaves like any other: a new upload gets
	// the next free handle in the default tenant.
	tab, _, err := store.Get(service.DefaultTenant, tables[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	extra, err := store.Put(service.DefaultTenant, "extra", tab)
	if err != nil {
		t.Fatal(err)
	}
	if extra.ID == tables[0].ID || extra.ID == tables[1].ID {
		t.Fatalf("migrated store reissued handle %s", extra.ID)
	}
}
