package diskstore_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/service"
	"repro/internal/service/diskstore"
)

// TestDiskWALTornMidFieldVariants: the crash-tolerance contract holds
// wherever the tear lands inside the final record — mid-key, mid-value,
// between fields, inside a nested object, or even a complete object missing
// only its newline. Every prefix of a record is forgiven (a crash can stop
// the append at any byte); only a newline-TERMINATED unparsable line is
// corruption.
func TestDiskWALTornMidFieldVariants(t *testing.T) {
	intact := []service.WALRecord{
		{Seq: 1, Kind: service.WALJob, JobID: "job-1", JobSeq: 1, Tenant: "acme",
			Spec: &service.Spec{Type: service.JobAnonymize, Table: "tbl-1", K: 2}},
		{Seq: 2, Kind: service.WALLevel, JobID: "job-1",
			Level: &service.LevelSummary{K: 2, Before: 1.5, After: 0.75, Utility: 0.5}},
	}
	full, err := json.Marshal(service.WALRecord{
		Seq: 3, Kind: service.WALStatus, JobID: "job-1",
		Status: &service.Status{ID: "job-1", Tenant: "acme", State: service.StateDone},
	})
	if err != nil {
		t.Fatal(err)
	}
	line := string(full)

	cuts := map[string]string{
		"mid-key":          line[:strings.Index(line, `"kind"`)+3],
		"mid-number":       line[:strings.Index(line, `"seq":3`)+6],
		"between-fields":   line[:strings.Index(line, `,"job_id"`)+1],
		"inside-nested":    line[:strings.Index(line, `"state"`)+8],
		"complete-no-eol":  line,
		"open-brace-only":  "{",
		"empty-whitespace": "  ",
	}
	for name, torn := range cuts {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			ds, err := diskstore.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			for i := range intact {
				if err := ds.AppendWAL(&intact[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := ds.Close(); err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(activeWALPath(t, dir), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(torn); err != nil {
				t.Fatal(err)
			}
			f.Close()

			ds2, err := diskstore.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer ds2.Close()
			var seqs []uint64
			if err := ds2.ReplayWAL(func(rec service.WALRecord) error {
				seqs = append(seqs, rec.Seq)
				return nil
			}); err != nil {
				t.Fatalf("torn tail %q failed replay: %v", torn, err)
			}
			// The intact records always survive; the complete-but-unterminated
			// record additionally replays (its bytes are all there).
			want := 2
			if name == "complete-no-eol" {
				want = 3
			}
			if len(seqs) != want {
				t.Fatalf("replayed %d records (%v), want %d", len(seqs), seqs, want)
			}
		})
	}
}

// TestDiskWALCorruptionInsideFailsLoudly: the same malformed bytes that are
// forgiven as a torn tail are CORRUPTION when a newline terminates them —
// a half record in the middle of the log cannot be a crash artifact, and
// replay must refuse rather than silently drop history.
func TestDiskWALCorruptionInsideFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	ds, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.AppendWAL(&service.WALRecord{Seq: 1, Kind: service.WALDelete, JobID: "job-1"}); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(activeWALPath(t, dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A torn half-record WITH a newline, followed by a healthy record.
	if _, err := f.WriteString("{\"seq\":2,\"kind\":\"sta\n{\"seq\":3,\"kind\":\"delete\",\"job_id\":\"job-2\"}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ds2, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	err = ds2.ReplayWAL(func(service.WALRecord) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("mid-log corruption replayed as %v, want a loud line-2 error", err)
	}
}

// TestDiskOpenFailsOnMissingSnapshot: tables.json referencing a snapshot
// file that does not exist must fail the load loudly — a durable store that
// silently drops tables is worse than one that refuses to start.
func TestDiskOpenFailsOnMissingSnapshot(t *testing.T) {
	dir := t.TempDir()
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 7, N: 20})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	store := service.NewStoreWith(ds)
	info, err := store.Put(service.DefaultTenant, "P", sc.P)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "tables", service.DefaultTenant, info.Hash+".snap")); err != nil {
		t.Fatal(err)
	}

	// Re-point a fresh plane at the directory: Open of the diskstore itself
	// succeeds (metadata parses), but loading the tables must fail and name
	// the table it could not restore.
	ds2, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	store2 := service.NewStoreWith(ds2)
	err = store2.Open()
	if err == nil || !strings.Contains(err.Error(), info.ID) {
		t.Fatalf("missing snapshot loaded as %v, want a loud error naming %s", err, info.ID)
	}

	// A corrupt (truncated) snapshot is equally loud.
	dir2 := t.TempDir()
	ds3, err := diskstore.Open(dir2)
	if err != nil {
		t.Fatal(err)
	}
	store3 := service.NewStoreWith(ds3)
	info3, err := store3.Put(service.DefaultTenant, "P", sc.P)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds3.Close(); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir2, "tables", service.DefaultTenant, info3.Hash+".snap")
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapPath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	ds4, err := diskstore.Open(dir2)
	if err != nil {
		t.Fatal(err)
	}
	defer ds4.Close()
	if err := service.NewStoreWith(ds4).Open(); err == nil {
		t.Fatal("truncated snapshot loaded cleanly, want a loud error")
	}
}

// TestDiskEvictTablesRacesSubmit: TTL eviction sweeping a table while jobs
// referencing it are being submitted concurrently. Run under -race (the CI
// tenancy and race jobs do), this pins the locking between Store.Evict,
// Engine.Submit's resolve-register window and the WAL append path. The
// invariant: every submission either fails with not-found (the table was
// already evicted) or produces a job that runs to done — never a job
// stranded by losing its table mid-submit.
func TestDiskEvictTablesRacesSubmit(t *testing.T) {
	dir := t.TempDir()
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 20})
	if err != nil {
		t.Fatal(err)
	}
	_, store, engine := openPlane(t, dir, service.Options{Workers: 2})
	if _, err := engine.Recover(); err != nil {
		t.Fatal(err)
	}
	engine.Start()

	const rounds = 20
	for i := 0; i < rounds; i++ {
		info, err := store.Put(service.DefaultTenant, "P", sc.P)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		var submitted service.Status
		var submitErr error
		wg.Add(2)
		go func() {
			defer wg.Done()
			submitted, submitErr = engine.Submit(service.DefaultTenant, service.Spec{
				Type: service.JobAnonymize, Table: info.ID, K: 2,
			})
		}()
		go func() {
			defer wg.Done()
			engine.EvictTables(0) // everything unreferenced and past TTL 0 goes
		}()
		wg.Wait()
		if submitErr != nil {
			// The eviction won the race: the submit saw no table. That must
			// surface as not-found, nothing else.
			if !strings.Contains(submitErr.Error(), info.ID) {
				t.Fatalf("round %d: submit failed with %v, want not-found for %s", i, submitErr, info.ID)
			}
			continue
		}
		// The submit won: the job captured its table pointer and must finish
		// even if the table handle is evicted right after.
		engine.EvictTables(0)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		st, err := engine.Wait(ctx, service.DefaultTenant, submitted.ID)
		cancel()
		if err != nil || st.State != service.StateDone {
			t.Fatalf("round %d: job %s ended %s (%v), want done despite eviction", i, submitted.ID, st.State, err)
		}
	}
}
