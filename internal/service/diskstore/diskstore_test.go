package diskstore_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro"
	"repro/internal/dataset"
	"repro/internal/service"
	"repro/internal/service/diskstore"
)

// walSegments returns dir's WAL segment files in sequence order. Names are
// zero-padded (jobs-00000001.wal), so a string sort is the numeric order.
func walSegments(t *testing.T, dir string) []string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "jobs-*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(segs)
	return segs
}

// activeWALPath returns dir's newest WAL segment — the file AppendWAL is
// writing. Tests forging crash images must target it, not the legacy
// jobs.wal name.
func activeWALPath(t *testing.T, dir string) string {
	t.Helper()
	segs := walSegments(t, dir)
	if len(segs) == 0 {
		t.Fatalf("no WAL segments in %s", dir)
	}
	return segs[len(segs)-1]
}

// openPlane opens a full disk-backed storage plane on dir: disk store,
// table store (loaded), engine (not yet recovered or started).
func openPlane(t *testing.T, dir string, opts service.Options) (*diskstore.Store, *service.Store, *service.Engine) {
	t.Helper()
	ds, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	store := service.NewStoreWith(ds)
	if err := store.Open(); err != nil {
		t.Fatal(err)
	}
	opts.JobLog = ds
	engine := service.NewEngine(store, opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		engine.Shutdown(ctx)
	})
	return ds, store, engine
}

func fingerprintHex(t *testing.T, tab *dataset.Table) string {
	t.Helper()
	h, err := service.HashTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func waitDone(t *testing.T, e *service.Engine, id string) service.Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := e.Wait(ctx, service.DefaultTenant, id)
	if err != nil {
		t.Fatalf("wait %s: %v (state %s)", id, err, st.State)
	}
	return st
}

func sweepSpec(p, q string) service.Spec {
	return service.Spec{
		Type: service.JobFREDSweep, Table: p, Aux: q,
		MinK: 2, MaxK: 10,
		SensitiveLo: 40000, SensitiveHi: 160000,
	}
}

// runUninterrupted runs one fred-sweep to completion on a fresh disk plane
// and returns the data dir, the job ID, the final status and result.
func runUninterrupted(t *testing.T) (string, string, service.Status, *service.Result) {
	t.Helper()
	dir := t.TempDir()
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 30})
	if err != nil {
		t.Fatal(err)
	}
	ds, store, engine := openPlane(t, dir, service.Options{Workers: 2, SweepWorkers: 2})
	pInfo, err := store.Put(service.DefaultTenant, "P", sc.P)
	if err != nil {
		t.Fatal(err)
	}
	qInfo, err := store.Put(service.DefaultTenant, "Q", sc.Q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Recover(); err != nil {
		t.Fatal(err)
	}
	engine.Start()
	st, err := engine.Submit(service.DefaultTenant, sweepSpec(pInfo.ID, qInfo.ID))
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, engine, st.ID)
	if st.State != service.StateDone {
		t.Fatalf("state %s (%s), want done", st.State, st.Error)
	}
	res, err := engine.Result(service.DefaultTenant, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Shut down and release the directory cleanly so the test can
	// manipulate it and reopen — the lock refuses concurrent opens.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := engine.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, st.ID, st, res
}

// TestDiskTableBackendRoundTrip: tables persisted on one plane reload on
// the next with bit-identical fingerprints; deletes drop the files.
func TestDiskTableBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 7, N: 20})
	if err != nil {
		t.Fatal(err)
	}
	ds1, store1, _ := openPlane(t, dir, service.Options{Workers: 1})
	pInfo, err := store1.Put(service.DefaultTenant, "P", sc.P)
	if err != nil {
		t.Fatal(err)
	}
	qInfo, err := store1.Put(service.DefaultTenant, "Q", sc.Q)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds1.Close(); err != nil {
		t.Fatal(err)
	}

	_, store2, _ := openPlane(t, dir, service.Options{Workers: 1})
	list := store2.List(service.DefaultTenant)
	if len(list) != 2 {
		t.Fatalf("reloaded %d tables, want 2", len(list))
	}
	p2, p2Info, err := store2.Get(service.DefaultTenant, pInfo.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p2Info.Hash != pInfo.Hash || fingerprintHex(t, p2) != pInfo.Hash {
		t.Fatal("reloaded table's fingerprint changed")
	}
	if !p2.Equal(sc.P) {
		t.Fatal("reloaded table differs cellwise from the upload")
	}
	// A fresh Put must not collide with recovered IDs.
	extra, err := store2.Put(service.DefaultTenant, "extra", sc.P)
	if err != nil {
		t.Fatal(err)
	}
	if extra.ID == pInfo.ID || extra.ID == qInfo.ID {
		t.Fatalf("recovered store reissued handle %s", extra.ID)
	}
	// Deleting one of two tables sharing a hash must keep the snapshot.
	if err := store2.Delete(service.DefaultTenant, extra.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store2.Get(service.DefaultTenant, pInfo.ID); err != nil {
		t.Fatalf("delete of duplicate removed the survivor: %v", err)
	}
	if err := store2.Delete(service.DefaultTenant, pInfo.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "tables", service.DefaultTenant, pInfo.Hash+".snap")); !os.IsNotExist(err) {
		t.Fatal("last delete of a hash left its snapshot file behind")
	}
}

// TestDiskWALReplayToleratesTornTail: a crash mid-append leaves a torn
// final line; replay keeps everything before it and ends cleanly.
func TestDiskWALReplayToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	ds, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := ds.AppendWAL(&service.WALRecord{Seq: uint64(i), Kind: service.WALDelete, JobID: "job-x"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: a partial record without its newline.
	f, err := os.OpenFile(activeWALPath(t, dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":4,"kind":"st`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ds2, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	var seqs []uint64
	if err := ds2.ReplayWAL(func(rec service.WALRecord) error {
		seqs = append(seqs, rec.Seq)
		return nil
	}); err != nil {
		t.Fatalf("torn tail must not fail replay: %v", err)
	}
	if len(seqs) != 3 || seqs[2] != 3 {
		t.Fatalf("replayed seqs %v, want [1 2 3]", seqs)
	}
}

// TestRecoverRestoresTerminalJobsDisk: a restart after a clean run restores
// the finished job — status, levels, result table — and identical
// resubmissions hit the re-seeded cache.
func TestRecoverRestoresTerminalJobsDisk(t *testing.T) {
	dir, jobID, want, wantRes := runUninterrupted(t)
	wantHash := fingerprintHex(t, wantRes.Table)

	_, store, engine := openPlane(t, dir, service.Options{Workers: 2, SweepWorkers: 2})
	recovered, err := engine.Recover()
	if err != nil {
		t.Fatal(err)
	}
	engine.Start()
	if len(recovered) != 1 || recovered[0].Resumed {
		t.Fatalf("recovered %+v, want one non-resumed terminal job", recovered)
	}
	st, err := engine.Job(service.DefaultTenant, jobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone || len(st.Levels) != len(want.Levels) {
		t.Fatalf("recovered job: state %s with %d levels, want done with %d", st.State, len(st.Levels), len(want.Levels))
	}
	res, err := engine.Result(service.DefaultTenant, jobID)
	if err != nil {
		t.Fatal(err)
	}
	if res.OptimalK != wantRes.OptimalK ||
		math.Float64bits(res.Hmax) != math.Float64bits(wantRes.Hmax) ||
		math.Float64bits(res.Tp) != math.Float64bits(wantRes.Tp) ||
		math.Float64bits(res.Tu) != math.Float64bits(wantRes.Tu) {
		t.Fatalf("recovered result scalars differ: %+v vs %+v", res, wantRes)
	}
	if res.Table == nil || fingerprintHex(t, res.Table) != wantHash {
		t.Fatal("recovered result table is not byte-identical to the original")
	}
	// The cache was re-seeded: an identical submission is an instant hit.
	tables := store.List(service.DefaultTenant)
	st2, err := engine.Submit(service.DefaultTenant, sweepSpec(tables[0].ID, tables[1].ID))
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached {
		t.Fatal("identical post-restart submission missed the re-seeded cache")
	}
}

// truncateWAL rewrites dir's active WAL segment keeping the submission record
// and the first keepLevels checkpoints of jobID — the exact on-disk image a
// SIGKILL between the keepLevels'th and the next checkpoint leaves behind.
func truncateWAL(t *testing.T, dir, jobID string, keepLevels int) {
	t.Helper()
	path := activeWALPath(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	levels := 0
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec service.WALRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.JobID != jobID {
			continue
		}
		keep := false
		switch rec.Kind {
		case service.WALJob:
			keep = true
		case service.WALLevel:
			if levels < keepLevels {
				keep = true
				levels++
			}
		}
		if keep {
			out.Write(line)
			out.WriteByte('\n')
		}
	}
	if levels != keepLevels {
		t.Fatalf("WAL held %d level checkpoints, want ≥ %d to build the crash image", levels, keepLevels)
	}
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverResumesInterruptedSweepDisk is the crash-recovery acceptance
// test: a fred-sweep killed after two checkpointed levels (the WAL image a
// SIGKILL mid-sweep leaves) is re-submitted on the next boot with a StartK
// resume point, continues from level three, and finishes with a final level
// series, candidate flags and release table byte-identical to the
// uninterrupted run.
func TestRecoverResumesInterruptedSweepDisk(t *testing.T) {
	dir, jobID, want, wantRes := runUninterrupted(t)
	wantHash := fingerprintHex(t, wantRes.Table)
	const checkpointed = 2
	truncateWAL(t, dir, jobID, checkpointed)

	_, _, engine := openPlane(t, dir, service.Options{Workers: 2, SweepWorkers: 2})
	recovered, err := engine.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || !recovered[0].Resumed {
		t.Fatalf("recovered %+v, want one resumed job", recovered)
	}
	if got := recovered[0].Status; got.ID != jobID || !got.Resumed || len(got.Levels) != checkpointed {
		t.Fatalf("resumed job snapshot %+v, want %s seeded with %d levels", got, jobID, checkpointed)
	}

	// Subscribe before starting the workers: the stream must replay the two
	// checkpointed levels (original seqs) and then deliver only the resumed
	// tail live — never a duplicate of the prefix.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	events, err := engine.Stream(ctx, service.DefaultTenant, jobID)
	if err != nil {
		t.Fatal(err)
	}
	engine.Start()

	var ks []int
	var lastSeq uint64
	for ev := range events {
		if ev.Type == service.EventLevel {
			ks = append(ks, ev.Level.K)
			if ev.Seq <= lastSeq {
				t.Fatalf("event seqs not increasing: %d after %d", ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
		}
		if ev.Type == service.EventStatus {
			break
		}
	}
	for i, k := range ks {
		if k != i+2 {
			t.Fatalf("streamed ks %v: resumed feed is not the gap-free full series", ks)
		}
	}
	if len(ks) != len(want.Levels) {
		t.Fatalf("streamed %d levels, want %d", len(ks), len(want.Levels))
	}

	st := waitDone(t, engine, jobID)
	if st.State != service.StateDone {
		t.Fatalf("resumed job state %s (%s), want done", st.State, st.Error)
	}
	if !st.Resumed {
		t.Fatal("finished job lost its resumed marker")
	}

	res, err := engine.Result(service.DefaultTenant, jobID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != len(wantRes.Levels) {
		t.Fatalf("resumed run swept %d levels, uninterrupted %d", len(res.Levels), len(wantRes.Levels))
	}
	for i := range res.Levels {
		a, b := res.Levels[i], wantRes.Levels[i]
		if a.K != b.K || a.Candidate != b.Candidate ||
			math.Float64bits(a.Before) != math.Float64bits(b.Before) ||
			math.Float64bits(a.After) != math.Float64bits(b.After) ||
			math.Float64bits(a.Gain) != math.Float64bits(b.Gain) ||
			math.Float64bits(a.Utility) != math.Float64bits(b.Utility) {
			t.Fatalf("level %d differs after resume:\n got %+v\nwant %+v", i, a, b)
		}
	}
	if res.OptimalK != wantRes.OptimalK ||
		math.Float64bits(res.Hmax) != math.Float64bits(wantRes.Hmax) ||
		math.Float64bits(res.Tp) != math.Float64bits(wantRes.Tp) ||
		math.Float64bits(res.Tu) != math.Float64bits(wantRes.Tu) {
		t.Fatalf("resumed decision differs: k=%d H=%g vs k=%d H=%g", res.OptimalK, res.Hmax, wantRes.OptimalK, wantRes.Hmax)
	}
	if fingerprintHex(t, res.Table) != wantHash {
		t.Fatal("resumed run's release table is not byte-identical to the uninterrupted run's")
	}
}

// TestRecoverResumePointPastSeriesDisk: a crash after the final checkpoint
// but before the terminal record resumes with StartK past every remaining
// level — the re-run evaluates nothing new and still reaches the identical
// decision.
func TestRecoverResumePointPastSeriesDisk(t *testing.T) {
	dir, jobID, want, wantRes := runUninterrupted(t)
	truncateWAL(t, dir, jobID, len(want.Levels))

	_, _, engine := openPlane(t, dir, service.Options{Workers: 1, SweepWorkers: 1})
	recovered, err := engine.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || !recovered[0].Resumed {
		t.Fatalf("recovered %+v, want one resumed job", recovered)
	}
	engine.Start()
	st := waitDone(t, engine, jobID)
	if st.State != service.StateDone {
		t.Fatalf("state %s (%s), want done", st.State, st.Error)
	}
	res, err := engine.Result(service.DefaultTenant, jobID)
	if err != nil {
		t.Fatal(err)
	}
	if res.OptimalK != wantRes.OptimalK || math.Float64bits(res.Hmax) != math.Float64bits(wantRes.Hmax) {
		t.Fatalf("fully-checkpointed resume decided k=%d, want %d", res.OptimalK, wantRes.OptimalK)
	}
	if fingerprintHex(t, res.Table) != fingerprintHex(t, wantRes.Table) {
		t.Fatal("fully-checkpointed resume rebuilt a different release table")
	}
}

// TestDiskEvictTablesTTL: the TTL sweep evicts unreferenced expired tables
// from the store and the disk, but spares tables referenced by live jobs.
func TestDiskEvictTablesTTL(t *testing.T) {
	dir := t.TempDir()
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 20})
	if err != nil {
		t.Fatal(err)
	}
	_, store, engine := openPlane(t, dir, service.Options{Workers: 1})
	pInfo, err := store.Put(service.DefaultTenant, "P", sc.P)
	if err != nil {
		t.Fatal(err)
	}
	qInfo, err := store.Put(service.DefaultTenant, "Q", sc.Q)
	if err != nil {
		t.Fatal(err)
	}
	// Engine not started: the job pins its table while pending.
	if _, err := engine.Submit(service.DefaultTenant, service.Spec{Type: service.JobAnonymize, Table: pInfo.ID, K: 2}); err != nil {
		t.Fatal(err)
	}
	evicted := engine.EvictTables(0)
	if len(evicted) != 1 || evicted[0].ID != qInfo.ID {
		t.Fatalf("evicted %+v, want exactly the unreferenced table %s", evicted, qInfo.ID)
	}
	if _, _, err := store.Get(service.DefaultTenant, qInfo.ID); err == nil {
		t.Fatal("evicted table still served")
	}
	if _, err := os.Stat(filepath.Join(dir, "tables", service.DefaultTenant, qInfo.Hash+".snap")); !os.IsNotExist(err) {
		t.Fatal("evicted table's snapshot file survived")
	}
	if _, _, err := store.Get(service.DefaultTenant, pInfo.ID); err != nil {
		t.Fatalf("referenced table was evicted: %v", err)
	}
}

// TestDiskStoreLockRefusesSecondOpen: a data directory held by a live
// process cannot be opened again — two writers would interleave divergent
// WAL histories.
func TestDiskStoreLockRefusesSecondOpen(t *testing.T) {
	dir := t.TempDir()
	ds, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := diskstore.Open(dir); err == nil {
		t.Fatal("second Open of a locked data dir succeeded")
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	ds2, err := diskstore.Open(dir)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	ds2.Close()
}

// TestRecoverKeepsCursorsAcrossSecondRestartDisk: WAL compaction preserves
// terminal jobs' level checkpoints, so an event-stream resume cursor taken
// before the first restart still works after a second one — the client
// gets nothing but the terminal status, never a duplicated replay.
func TestRecoverKeepsCursorsAcrossSecondRestartDisk(t *testing.T) {
	dir, jobID, want, _ := runUninterrupted(t)

	// Restart #1: recover (compacts the WAL), note the last level seq, close.
	ds1, _, engine1 := openPlane(t, dir, service.Options{Workers: 1})
	if _, err := engine1.Recover(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	events, err := engine1.Stream(ctx, service.DefaultTenant, jobID)
	if err != nil {
		t.Fatal(err)
	}
	var cursor uint64
	levels1 := 0
	for ev := range events {
		if ev.Type == service.EventLevel {
			levels1++
			if ev.Seq == 0 {
				t.Fatal("restart #1 lost the durable event seqs")
			}
			cursor = ev.Seq
		}
	}
	if levels1 != len(want.Levels) {
		t.Fatalf("restart #1 replayed %d levels, want %d", levels1, len(want.Levels))
	}
	if err := engine1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ds1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart #2: the compacted WAL must still carry the checkpoints, so
	// the pre-crash cursor skips the whole replay.
	_, _, engine2 := openPlane(t, dir, service.Options{Workers: 1})
	if _, err := engine2.Recover(); err != nil {
		t.Fatal(err)
	}
	resumed, err := engine2.StreamAfter(ctx, service.DefaultTenant, jobID, cursor)
	if err != nil {
		t.Fatal(err)
	}
	var got []service.Event
	for ev := range resumed {
		got = append(got, ev)
	}
	if len(got) != 1 || got[0].Type != service.EventStatus {
		t.Fatalf("resume after second restart delivered %d events (%+v), want only the terminal status", len(got), got)
	}
}

// TestRecoverNeverReissuesDeletedJobIDsDisk: the compaction high-water
// marker keeps the job-ID and event-seq counters from regressing when a
// deleted job's records are dropped — across two restarts, a new submission
// must not reuse the deleted job's ID (a stale client polling the old URL
// would silently read an unrelated job).
func TestRecoverNeverReissuesDeletedJobIDsDisk(t *testing.T) {
	dir, jobID, _, _ := runUninterrupted(t)

	// Restart #1: delete the finished job, then shut down cleanly.
	ds1, _, engine1 := openPlane(t, dir, service.Options{Workers: 1})
	if _, err := engine1.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := engine1.Delete(service.DefaultTenant, jobID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := engine1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ds1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart #2: the deleted job's records are compacted away; the marker
	// must still keep its ID retired.
	_, store2, engine2 := openPlane(t, dir, service.Options{Workers: 1})
	if _, err := engine2.Recover(); err != nil {
		t.Fatal(err)
	}
	engine2.Start()
	tables := store2.List(service.DefaultTenant)
	st, err := engine2.Submit(service.DefaultTenant, service.Spec{Type: service.JobAnonymize, Table: tables[0].ID, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == jobID {
		t.Fatalf("restarted engine reissued deleted job ID %s", jobID)
	}
	waitDone(t, engine2, st.ID)
}

// craftWAL opens a fresh plane, stores P and Q, appends the given records
// to the WAL and closes — building an arbitrary crash image for recovery
// tests that cannot be produced deterministically by killing a live run.
func craftWAL(t *testing.T, recs func(p, q string) []service.WALRecord) string {
	t.Helper()
	dir := t.TempDir()
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 30})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	store := service.NewStoreWith(ds)
	pInfo, err := store.Put(service.DefaultTenant, "P", sc.P)
	if err != nil {
		t.Fatal(err)
	}
	qInfo, err := store.Put(service.DefaultTenant, "Q", sc.Q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs(pInfo.ID, qInfo.ID) {
		rec := recs(pInfo.ID, qInfo.ID)[i]
		if err := ds.AppendWAL(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func levelRecord(seq uint64, k int) service.WALRecord {
	return service.WALRecord{
		Seq: seq, Kind: service.WALLevel, JobID: "job-1",
		Level: &service.LevelSummary{K: k, Before: 1, After: 1, Gain: 0, Utility: 0.5},
	}
}

// TestRecoverHonorsDurableCancelDisk: a WAL holding an accepted cancel but
// no terminal record (the crash beat the worker to it) replays as a
// canceled terminal job with the strict level prefix — never as an
// interrupted job that re-runs the cancelled work.
func TestRecoverHonorsDurableCancelDisk(t *testing.T) {
	created := time.Now().Round(0)
	dir := craftWAL(t, func(p, q string) []service.WALRecord {
		spec := sweepSpec(p, q)
		return []service.WALRecord{
			{Seq: 1, Kind: service.WALJob, JobID: "job-1", JobSeq: 1, Spec: &spec, Created: &created},
			levelRecord(2, 2),
			levelRecord(3, 3),
			{Seq: 4, Kind: service.WALCancel, JobID: "job-1"},
		}
	})
	_, _, engine := openPlane(t, dir, service.Options{Workers: 1})
	recovered, err := engine.Recover()
	if err != nil {
		t.Fatal(err)
	}
	engine.Start()
	if len(recovered) != 1 || recovered[0].Resumed {
		t.Fatalf("recovered %+v, want one terminal (non-resumed) job", recovered)
	}
	st := waitDone(t, engine, "job-1")
	if st.State != service.StateCanceled {
		t.Fatalf("state %s, want canceled (durable cancel honored)", st.State)
	}
	if len(st.Levels) != 2 || st.Levels[0].K != 2 || st.Levels[1].K != 3 {
		t.Fatalf("canceled job kept levels %+v, want the checkpointed prefix k=2,3", st.Levels)
	}
	if _, err := engine.Result(service.DefaultTenant, "job-1"); err == nil {
		t.Fatal("canceled job must not yield a result")
	}
}

// TestRecoverDiscardsGappedSeedDisk: a WAL whose level checkpoints have a
// gap (a dropped append) must not seed the resume — splicing a gapped
// prefix would duplicate or skip levels — and the sweep re-runs from
// scratch, still finishing correctly.
func TestRecoverDiscardsGappedSeedDisk(t *testing.T) {
	created := time.Now().Round(0)
	dir := craftWAL(t, func(p, q string) []service.WALRecord {
		spec := sweepSpec(p, q)
		return []service.WALRecord{
			{Seq: 1, Kind: service.WALJob, JobID: "job-1", JobSeq: 1, Spec: &spec, Created: &created},
			levelRecord(2, 2),
			levelRecord(3, 3),
			levelRecord(4, 5), // gap: k=4 missing
		}
	})
	_, _, engine := openPlane(t, dir, service.Options{Workers: 1})
	recovered, err := engine.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || !recovered[0].Resumed {
		t.Fatalf("recovered %+v, want one resumed job", recovered)
	}
	if n := len(recovered[0].Status.Levels); n != 0 {
		t.Fatalf("gapped seed kept %d levels, want 0 (full re-run)", n)
	}
	engine.Start()
	st := waitDone(t, engine, "job-1")
	if st.State != service.StateDone {
		t.Fatalf("state %s (%s), want done", st.State, st.Error)
	}
	// The re-run swept the full range: a gap-free series from MinK.
	for i, ls := range st.Levels {
		if ls.K != i+2 {
			t.Fatalf("re-run series %+v has a gap at position %d", st.Levels, i)
		}
	}
}
