package service_test

// Ops-plane tests: admission control (per-tenant and global pending bounds,
// typed overload errors, cache-hit bypass), terminal event-buffer truncation
// with cursor-safe stream replay, and recovery-resubmit error surfacing.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro"
	"repro/internal/service"
)

func TestAdmissionPerTenantBound(t *testing.T) {
	// Not started: submissions stay pending, so the bound is deterministic.
	e, p, _, _ := testFixture(t, service.Options{Workers: 1, QueueDepth: 16, MaxPendingPerTenant: 2})
	for k := 2; k <= 3; k++ {
		if _, err := e.Submit(service.DefaultTenant, service.Spec{Type: service.JobAnonymize, Table: p, K: k}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := e.Submit(service.DefaultTenant, service.Spec{Type: service.JobAnonymize, Table: p, K: 4})
	var ov *service.OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("got %v, want *OverloadError", err)
	}
	if ov.Scope != "tenant" || ov.Limit != 2 || ov.Tenant != service.DefaultTenant {
		t.Fatalf("overload error %+v, want tenant-scope limit 2", ov)
	}
	if ov.RetryAfter < time.Second || ov.RetryAfter > time.Minute {
		t.Fatalf("RetryAfter %v outside [1s, 60s]", ov.RetryAfter)
	}
	// The refinement contract: existing ErrQueueFull checks keep matching.
	if !errors.Is(err, service.ErrQueueFull) {
		t.Fatal("OverloadError must satisfy errors.Is(err, ErrQueueFull)")
	}
	stats := e.Stats()
	if stats.JobsPending != 2 || stats.JobsShed != 1 {
		t.Fatalf("stats pending=%d shed=%d, want 2 and 1", stats.JobsPending, stats.JobsShed)
	}
}

func TestAdmissionGlobalBound(t *testing.T) {
	e, p, _, _ := testFixture(t, service.Options{Workers: 1, QueueDepth: 1})
	if _, err := e.Submit(service.DefaultTenant, service.Spec{Type: service.JobAnonymize, Table: p, K: 2}); err != nil {
		t.Fatal(err)
	}
	_, err := e.Submit(service.DefaultTenant, service.Spec{Type: service.JobAnonymize, Table: p, K: 3})
	var ov *service.OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("got %v, want *OverloadError", err)
	}
	if ov.Scope != "global" || ov.Limit != 1 {
		t.Fatalf("overload error %+v, want global-scope limit 1", ov)
	}
}

func TestAdmissionCacheHitBypass(t *testing.T) {
	e, p, q, _ := testFixture(t, service.Options{
		Workers: 1, SweepWorkers: 1, QueueDepth: 1, MaxPendingPerTenant: 1, CacheSize: 8,
	})
	e.Start()
	cachedSpec := service.Spec{Type: service.JobAnonymize, Table: p, K: 2}
	st, err := e.Submit(service.DefaultTenant, cachedSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, e, st.ID)

	// Saturate the queue: keep offering sweeps until one is refused. While
	// that refusal state holds, the cached spec must still be admitted —
	// cache hits consume no queue slot.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("queue never saturated")
		}
		_, err := e.Submit(service.DefaultTenant, sweepSpec(p, q))
		if errors.Is(err, service.ErrQueueFull) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	hit, err := e.Submit(service.DefaultTenant, cachedSpec)
	if err != nil {
		t.Fatalf("cached submission refused under overload: %v", err)
	}
	if !hit.Cached {
		t.Fatalf("expected a cache hit, got state %s cached=%v", hit.State, hit.Cached)
	}
}

// TestEventTruncationKeepsCursorsValid is the satellite acceptance: a
// terminal job's event buffer is truncated to the retention tail, a
// subscriber holding a still-retained cursor resumes exactly, and a
// subscriber behind the truncation point gets the synthesized result replay
// — the full level series — rather than a gap or a stall.
func TestEventTruncationKeepsCursorsValid(t *testing.T) {
	const keep = 3
	e, p, q, _ := testFixture(t, service.Options{Workers: 1, SweepWorkers: 1, MaxJobEvents: keep})
	e.Start()
	st, err := e.Submit(service.DefaultTenant, sweepSpec(p, q)) // levels 2..10
	if err != nil {
		t.Fatal(err)
	}

	waitDone(t, e, st.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	countLevels := func(after uint64) (levels int, statusSeq uint64) {
		ch, err := e.StreamAfter(ctx, service.DefaultTenant, st.ID, after)
		if err != nil {
			t.Fatal(err)
		}
		for ev := range ch {
			switch ev.Type {
			case service.EventLevel:
				levels++
			case service.EventStatus:
				statusSeq = ev.Seq
			}
		}
		return levels, statusSeq
	}

	// Fresh subscriber: the tail alone can't serve it, so the stream
	// synthesizes the FULL 9-level series from the result (seq 0, the
	// cache-hit replay contract), then the status event. The status seq is
	// the terminal WAL record; with every append durable and no skips, the
	// nine level records immediately precede it — which pins the retained
	// tail's seqs without racing a live subscription.
	n, termSeq := countLevels(0)
	if n != 9 || termSeq == 0 {
		t.Fatalf("fresh subscriber got %d levels (status seq %d), want 9 with a terminal seq", n, termSeq)
	}
	// The last level's record immediately precedes the terminal record.
	levelSeq := func(i int) uint64 { return termSeq - uint64(10-i) } // i = 1..9

	// Cursor at the first RETAINED level (tail keeps the last 3 of 9):
	// resume skips ahead in the tail and delivers exactly the 2 remaining
	// levels — no synthesized duplicates, cursor stays exact.
	if n, _ := countLevels(levelSeq(7)); n != 2 {
		t.Fatalf("tail-cursor resume delivered %d levels, want 2", n)
	}
	if n, _ := countLevels(levelSeq(9)); n != 0 {
		t.Fatalf("caught-up cursor delivered %d levels, want 0", n)
	}

	// Cursor BEHIND the truncation point (after the 2nd level, but levels
	// 1..6 were dropped): the tail cannot prove what the subscriber missed,
	// so it falls back to the full synthesized replay rather than silently
	// gapping.
	if n, _ := countLevels(levelSeq(2)); n != 9 {
		t.Fatalf("pre-truncation cursor delivered %d levels, want the full 9-level replay", n)
	}
}

// fakeJobLog replays canned records and accepts appends, standing in for a
// durable log whose recovered jobs cannot be resubmitted.
type fakeJobLog struct {
	records []service.WALRecord
}

func (f *fakeJobLog) AppendWAL(*service.WALRecord) error    { return nil }
func (f *fakeJobLog) CompactWAL([]*service.WALRecord) error { return nil }
func (f *fakeJobLog) SyncWAL() error                        { return nil }
func (f *fakeJobLog) ReplayWAL(fn func(service.WALRecord) error) error {
	for _, rec := range f.records {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// TestRecoveryResubmitFailureSurfaced: a WAL image holding a running job
// whose input table no longer exists cannot be resubmitted; recovery must
// carry on and surface the failure in EngineStats (and thence healthz)
// instead of dropping it on the floor.
func TestRecoveryResubmitFailureSurfaced(t *testing.T) {
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 30})
	if err != nil {
		t.Fatal(err)
	}
	store := service.NewStore()
	if _, err := store.Put(service.DefaultTenant, "P", sc.P); err != nil {
		t.Fatal(err)
	}
	created := time.Now().UTC()
	log := &fakeJobLog{records: []service.WALRecord{{
		Seq: 1, Kind: service.WALJob, JobID: "job-1", JobSeq: 1,
		Tenant: service.DefaultTenant,
		Spec: &service.Spec{
			Type: service.JobFREDSweep, Table: "tbl-gone", Aux: "",
			MinK: 2, MaxK: 6, SensitiveLo: 40000, SensitiveHi: 160000,
		},
		Created: &created,
	}}}
	e := service.NewEngine(store, service.Options{Workers: 1, JobLog: log})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		e.Shutdown(ctx)
	})
	if _, err := e.Recover(); err != nil {
		t.Fatalf("recovery must survive a failed resubmit, got %v", err)
	}
	e.Start()
	stats := e.Stats()
	if len(stats.RecoveryErrors) != 1 {
		t.Fatalf("RecoveryErrors = %v, want exactly one entry", stats.RecoveryErrors)
	}
	// The failed job is terminal (failed), not silently vanished.
	st, err := e.Job(service.DefaultTenant, "job-1")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateFailed {
		t.Fatalf("unresubmittable job state %s, want failed", st.State)
	}
}
