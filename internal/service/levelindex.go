package service

import (
	"container/list"
	"sync"

	"repro/internal/core"
)

// levelIndex is the cross-job warm-start cache: a mutex-guarded LRU over
// per-table level series, keyed by tenant|Spec.levelKey. Where resultCache
// memoizes whole finished jobs (exact spec match), the level index memoizes
// the individual levels inside them, so a new sweep overlapping ANY cached
// sweep of the same (table, adversary, scheme, sensitive range) seeds the
// overlap and computes only the gap — including partial overlaps, disjoint
// threshold choices and budget-truncated prior runs the result cache can
// never hit on.
//
// Entries hold only the per-level numbers (the tables are stripped): a warm
// level's release is recomputed on demand if the argmax lands on it, exactly
// like a crash-recovery seed. Tenants never share entries — the tenant
// prefixes the key — for the same reason the result cache partitions by
// tenant: a cross-tenant warm hit would leak that another tenant swept the
// same table.
type levelIndex struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element
}

type levelEntry struct {
	key    string
	levels map[int]core.LevelResult
}

// newLevelIndex returns an index tracking up to cap tables; cap ≤ 0 disables
// warm-starting entirely.
func newLevelIndex(cap int) *levelIndex {
	return &levelIndex{
		cap:   cap,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Put merges a sweep's levels into the table's entry, stripping the table
// payloads. Later puts win on duplicate k — the numbers are deterministic
// per levelKey, so the overwrite is a no-op in value.
func (x *levelIndex) Put(key string, levels []core.LevelResult) {
	if x == nil || x.cap <= 0 || len(levels) == 0 {
		return
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	el, ok := x.items[key]
	if !ok {
		el = x.ll.PushFront(&levelEntry{key: key, levels: make(map[int]core.LevelResult, len(levels))})
		x.items[key] = el
		for x.ll.Len() > x.cap {
			old := x.ll.Back()
			delete(x.items, old.Value.(*levelEntry).key)
			x.ll.Remove(old)
		}
	} else {
		x.ll.MoveToFront(el)
	}
	ent := el.Value.(*levelEntry)
	for _, lr := range levels {
		lr.Release, lr.Phat = nil, nil
		// Warm replays cost the borrowing job nothing — drop the timings so
		// they are not misattributed to it.
		lr.Elapsed = 0
		lr.AnonymizeTime, lr.FuseTime, lr.MetricsTime = 0, 0, 0
		ent.levels[lr.K] = lr
	}
}

// Get returns the cached levels among ks, refreshing the entry's recency.
// The returned map is a copy — callers may not observe later merges.
func (x *levelIndex) Get(key string, ks []int) map[int]core.LevelResult {
	if x == nil || x.cap <= 0 {
		return nil
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	el, ok := x.items[key]
	if !ok {
		return nil
	}
	x.ll.MoveToFront(el)
	ent := el.Value.(*levelEntry)
	var out map[int]core.LevelResult
	for _, k := range ks {
		if lr, ok := ent.levels[k]; ok {
			if out == nil {
				out = make(map[int]core.LevelResult)
			}
			out[k] = lr
		}
	}
	return out
}

// Tables reports the number of tables tracked.
func (x *levelIndex) Tables() int {
	if x == nil {
		return 0
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.ll.Len()
}
