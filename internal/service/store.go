// Package service is the serving layer over the FRED core: an in-memory
// table store plus an asynchronous job engine with a bounded worker pool,
// per-job progress/cancellation, and an LRU result cache. It is the
// subsystem behind internal/httpapi and cmd/served — the paper's workload
// (an enterprise re-running FRED over evolving releases against web-fusion
// adversaries) run as a service instead of a one-shot CLI.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/dataset"
)

// TableInfo is the store's metadata record for one table.
type TableInfo struct {
	// ID is the store-assigned handle ("tbl-1", "tbl-2", …).
	ID string `json:"id"`
	// Name is the caller-supplied label (upload filename, scenario name).
	Name string `json:"name"`
	// Rows and Cols record the table shape.
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// Hash is a content hash over the CSV serialization; identical tables
	// hash identically, which is what keys the job result cache.
	Hash string `json:"hash"`
	// Created is the upload time.
	Created time.Time `json:"created"`
}

// Store is a concurrency-safe in-memory table store. Tables are immutable
// once stored: Get hands out the stored pointer and every job clones before
// mutating, matching dataset.Table's concurrent-reads contract.
type Store struct {
	mu     sync.RWMutex
	seq    int
	tables map[string]storedTable
}

type storedTable struct {
	info  TableInfo
	table *dataset.Table
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]storedTable)}
}

// ErrNotFound is returned for unknown table or job IDs.
type ErrNotFound struct{ Kind, ID string }

func (e *ErrNotFound) Error() string { return fmt.Sprintf("service: no %s %q", e.Kind, e.ID) }

// Put stores a table under a fresh ID and returns its metadata. The caller
// must not mutate the table afterwards.
func (s *Store) Put(name string, t *dataset.Table) (TableInfo, error) {
	if t == nil || t.NumRows() == 0 {
		return TableInfo{}, fmt.Errorf("service: refusing to store an empty table")
	}
	h, err := HashTable(t)
	if err != nil {
		return TableInfo{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	info := TableInfo{
		ID:      fmt.Sprintf("tbl-%d", s.seq),
		Name:    name,
		Rows:    t.NumRows(),
		Cols:    t.NumCols(),
		Hash:    h,
		Created: time.Now(),
	}
	s.tables[info.ID] = storedTable{info: info, table: t}
	return info, nil
}

// Get returns the table and metadata for an ID.
func (s *Store) Get(id string) (*dataset.Table, TableInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.tables[id]
	if !ok {
		return nil, TableInfo{}, &ErrNotFound{Kind: "table", ID: id}
	}
	return st.table, st.info, nil
}

// List returns metadata for every stored table, oldest first.
func (s *Store) List() []TableInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]TableInfo, 0, len(s.tables))
	for _, st := range s.tables {
		out = append(out, st.info)
	}
	sort.Slice(out, func(i, j int) bool { return seqOf(out[i].ID) < seqOf(out[j].ID) })
	return out
}

// Delete removes a table. Jobs already holding the pointer keep working —
// tables are immutable, so this only frees the handle.
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[id]; !ok {
		return &ErrNotFound{Kind: "table", ID: id}
	}
	delete(s.tables, id)
	return nil
}

func seqOf(id string) int {
	var n int
	fmt.Sscanf(id, "tbl-%d", &n)
	return n
}

// HashTable content-hashes a table via its canonical columnar fingerprint,
// so equal schemas+cells produce equal hashes regardless of how the table
// was built. This keys the job result cache, where a collision would serve
// one client another's cached release — hence a cryptographic hash, not a
// checksum. Hashing the column buffers (float bits, dictionary bytes)
// instead of rendering every cell through the CSV writer keeps Submit cheap
// on large uploads.
func HashTable(t *dataset.Table) (string, error) {
	h := sha256.New()
	if err := t.WriteFingerprint(h); err != nil {
		return "", fmt.Errorf("service: hash table: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
