// Package service is the serving layer over the FRED core: a table store
// plus an asynchronous job engine with a bounded worker pool, per-job
// progress/cancellation, and an LRU result cache. It is the subsystem
// behind internal/httpapi and cmd/served — the paper's workload (an
// enterprise re-running FRED over evolving releases against web-fusion
// adversaries) run as a service instead of a one-shot CLI.
//
// The service is multi-tenant: tables live in per-tenant namespaces, jobs
// are tenant-scoped, and per-tenant quotas bound tables, concurrent jobs
// and result-cache share (see tenant.go and DESIGN.md). Storage is
// pluggable: the store persists through a TableBackend and the engine
// journals through a JobBackend write-ahead log. The in-memory backends
// preserve the ephemeral behavior; internal/service/diskstore makes the
// plane durable — tables as columnar snapshots under tenant-prefixed
// paths, jobs and per-level sweep checkpoints in a WAL — and
// Engine.Recover rebuilds the service after a restart, re-submitting
// interrupted fred-sweeps with a resume point so they finish byte-identical
// to an uninterrupted run.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/dataset"
)

// TableInfo is the store's metadata record for one table.
type TableInfo struct {
	// ID is the store-assigned handle ("tbl-1", "tbl-2", …), unique within
	// the owning tenant's namespace — two tenants each have their own tbl-1.
	ID string `json:"id"`
	// Tenant is the owning tenant's namespace.
	Tenant string `json:"tenant,omitempty"`
	// Name is the caller-supplied label (upload filename, scenario name).
	Name string `json:"name"`
	// Rows and Cols record the table shape.
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// Hash is a content hash over the canonical columnar fingerprint;
	// identical tables hash identically, which is what keys the job result
	// cache.
	Hash string `json:"hash"`
	// Created is the upload time.
	Created time.Time `json:"created"`
}

// Store is the concurrency-safe table store: the ID-assignment and caching
// layer over a TableBackend, partitioned into per-tenant namespaces. Every
// table stays resident in memory (jobs hold live pointers); the backend
// decides whether tables additionally survive restarts. Tables are
// immutable once stored: Get hands out the stored pointer and every job
// clones before mutating, matching dataset.Table's concurrent-reads
// contract.
type Store struct {
	mu      sync.RWMutex
	backend TableBackend
	quotas  *Quotas
	seq     map[string]int                    // tenant → highest issued handle
	tables  map[string]map[string]storedTable // tenant → id → table
}

type storedTable struct {
	info  TableInfo
	table *dataset.Table
}

// NewStore returns an empty store over the ephemeral in-memory backend.
func NewStore() *Store {
	return NewStoreWith(NewMemTableBackend())
}

// NewStoreWith returns an empty store persisting through backend. Call Open
// to load previously persisted tables.
func NewStoreWith(backend TableBackend) *Store {
	return &Store{
		backend: backend,
		seq:     make(map[string]int),
		tables:  make(map[string]map[string]storedTable),
	}
}

// SetQuotas installs the per-tenant quota table consulted by Put. Call it
// before the store starts serving; a nil Quotas leaves every tenant
// unlimited.
func (s *Store) SetQuotas(q *Quotas) {
	s.mu.Lock()
	s.quotas = q
	s.mu.Unlock()
}

// Open loads every table persisted in the backend into the store and
// restores each tenant's ID sequence past the highest loaded handle. It is
// the first half of crash recovery (Engine.Recover replays the job log
// second) and must run before the store starts serving. Records without a
// tenant — persisted before multi-tenancy — are adopted into DefaultTenant.
func (s *Store) Open() error {
	recs, err := s.backend.LoadTables()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range recs {
		if rec.Info.Tenant == "" {
			rec.Info.Tenant = DefaultTenant
		}
		ns := s.tables[rec.Info.Tenant]
		if ns == nil {
			ns = make(map[string]storedTable)
			s.tables[rec.Info.Tenant] = ns
		}
		ns[rec.Info.ID] = storedTable{info: rec.Info, table: rec.Table}
		if n := seqOf(rec.Info.ID); n > s.seq[rec.Info.Tenant] {
			s.seq[rec.Info.Tenant] = n
		}
	}
	return nil
}

// Durable reports whether the store's backend outlives the process.
func (s *Store) Durable() bool { return s.backend.Durable() }

// PutBlob persists an auxiliary table (a job result) keyed by content hash.
func (s *Store) PutBlob(hash string, t *dataset.Table) error {
	return s.backend.PutBlob(hash, t)
}

// Blob loads an auxiliary table by content hash.
func (s *Store) Blob(hash string) (*dataset.Table, error) {
	return s.backend.GetBlob(hash)
}

// ErrNotFound is returned for unknown table or job IDs — including IDs that
// exist in another tenant's namespace: a foreign handle must be
// indistinguishable from a nonexistent one.
type ErrNotFound struct{ Kind, ID string }

func (e *ErrNotFound) Error() string { return fmt.Sprintf("service: no %s %q", e.Kind, e.ID) }

// Put stores a table under a fresh ID in tenant's namespace and returns its
// metadata. The table is persisted through the backend before it becomes
// visible — a durable store never lists a table it could not reload. The
// caller must not mutate the table afterwards. A tenant at its MaxTables
// quota is refused with a QuotaError.
func (s *Store) Put(tenant, name string, t *dataset.Table) (TableInfo, error) {
	if err := ValidateTenant(tenant); err != nil {
		return TableInfo{}, err
	}
	if t == nil || t.NumRows() == 0 {
		return TableInfo{}, fmt.Errorf("service: refusing to store an empty table")
	}
	h, err := HashTable(t)
	if err != nil {
		return TableInfo{}, err
	}
	s.mu.Lock()
	if q := s.quotas.For(tenant); q.MaxTables > 0 && len(s.tables[tenant]) >= q.MaxTables {
		s.mu.Unlock()
		return TableInfo{}, &QuotaError{Tenant: tenant, Resource: "tables", Limit: q.MaxTables}
	}
	s.seq[tenant]++
	info := TableInfo{
		ID:      fmt.Sprintf("tbl-%d", s.seq[tenant]),
		Tenant:  tenant,
		Name:    name,
		Rows:    t.NumRows(),
		Cols:    t.NumCols(),
		Hash:    h,
		Created: time.Now(),
	}
	s.mu.Unlock()
	// Backend I/O (a snapshot write, for disk backends) runs outside the
	// lock so slow uploads never block concurrent Gets.
	if err := s.backend.PutTable(TableRecord{Info: info, Table: t}); err != nil {
		return TableInfo{}, fmt.Errorf("service: persist table: %w", err)
	}
	s.mu.Lock()
	// Re-check the quota before the table becomes visible: the lock was
	// dropped for the backend write, so a concurrent upload may have taken
	// the last slot. The loser undoes its persisted record and refuses —
	// without this, two racing uploads both passing the first check would
	// land a tenant above its MaxTables.
	if q := s.quotas.For(tenant); q.MaxTables > 0 && len(s.tables[tenant]) >= q.MaxTables {
		s.mu.Unlock()
		s.backend.DeleteTable(tenant, info.ID) //nolint:errcheck // best-effort undo; orphans are swept at boot
		return TableInfo{}, &QuotaError{Tenant: tenant, Resource: "tables", Limit: q.MaxTables}
	}
	ns := s.tables[tenant]
	if ns == nil {
		ns = make(map[string]storedTable)
		s.tables[tenant] = ns
	}
	ns[info.ID] = storedTable{info: info, table: t}
	s.mu.Unlock()
	return info, nil
}

// Get returns the table and metadata for an ID in tenant's namespace.
func (s *Store) Get(tenant, id string) (*dataset.Table, TableInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.tables[tenant][id]
	if !ok {
		return nil, TableInfo{}, &ErrNotFound{Kind: "table", ID: id}
	}
	return st.table, st.info, nil
}

// List returns metadata for every table in tenant's namespace, oldest first.
func (s *Store) List(tenant string) []TableInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]TableInfo, 0, len(s.tables[tenant]))
	for _, st := range s.tables[tenant] {
		out = append(out, st.info)
	}
	sort.Slice(out, func(i, j int) bool { return seqOf(out[i].ID) < seqOf(out[j].ID) })
	return out
}

// ListAll returns metadata for every stored table across all tenants,
// ordered by tenant then handle — the operational view (recovery logging,
// TTL eviction), never exposed through the tenant-scoped API.
func (s *Store) ListAll() []TableInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []TableInfo
	for _, ns := range s.tables {
		for _, st := range ns {
			out = append(out, st.info)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return seqOf(out[i].ID) < seqOf(out[j].ID)
	})
	return out
}

// Delete removes a table from tenant's namespace and its backend. The
// backend goes first: if its delete fails, the in-memory entry survives, so
// the client can retry and a restart cannot resurrect a table the API
// reported gone. Jobs already holding the pointer keep working — tables are
// immutable, so this only frees the handle.
func (s *Store) Delete(tenant, id string) error {
	s.mu.RLock()
	_, ok := s.tables[tenant][id]
	s.mu.RUnlock()
	if !ok {
		return &ErrNotFound{Kind: "table", ID: id}
	}
	if err := s.backend.DeleteTable(tenant, id); err != nil {
		return fmt.Errorf("service: delete table: %w", err)
	}
	s.mu.Lock()
	delete(s.tables[tenant], id)
	s.mu.Unlock()
	return nil
}

// Evict removes every table (across all tenants) created at or before
// cutoff for which keep returns false, from the store and its backend,
// returning the evicted metadata. It is the TTL garbage collection
// primitive; Engine.EvictTables supplies the keep predicate that protects
// tables referenced by live jobs.
func (s *Store) Evict(cutoff time.Time, keep func(TableInfo) bool) []TableInfo {
	s.mu.RLock()
	var victims []TableInfo
	for _, ns := range s.tables {
		for _, st := range ns {
			if !st.info.Created.After(cutoff) && (keep == nil || !keep(st.info)) {
				victims = append(victims, st.info)
			}
		}
	}
	s.mu.RUnlock()
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].Tenant != victims[j].Tenant {
			return victims[i].Tenant < victims[j].Tenant
		}
		return seqOf(victims[i].ID) < seqOf(victims[j].ID)
	})
	evicted := victims[:0]
	for _, info := range victims {
		if err := s.Delete(info.Tenant, info.ID); err == nil {
			evicted = append(evicted, info)
		}
	}
	return evicted
}

func seqOf(id string) int {
	var n int
	fmt.Sscanf(id, "tbl-%d", &n)
	return n
}

// HashTable content-hashes a table via its canonical columnar fingerprint,
// so equal schemas+cells produce equal hashes regardless of how the table
// was built. This keys the job result cache, where a collision would serve
// one client another's cached release — hence a cryptographic hash, not a
// checksum. Hashing the column buffers (float bits, dictionary bytes)
// instead of rendering every cell through the CSV writer keeps Submit cheap
// on large uploads.
func HashTable(t *dataset.Table) (string, error) {
	h := sha256.New()
	if err := t.WriteFingerprint(h); err != nil {
		return "", fmt.Errorf("service: hash table: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
