// Package service is the serving layer over the FRED core: a table store
// plus an asynchronous job engine with a bounded worker pool, per-job
// progress/cancellation, and an LRU result cache. It is the subsystem
// behind internal/httpapi and cmd/served — the paper's workload (an
// enterprise re-running FRED over evolving releases against web-fusion
// adversaries) run as a service instead of a one-shot CLI.
//
// Storage is pluggable (see DESIGN.md): the store persists through a
// TableBackend and the engine journals through a JobBackend write-ahead
// log. The in-memory backends preserve the ephemeral behavior;
// internal/service/diskstore makes the plane durable — tables as columnar
// snapshots, jobs and per-level sweep checkpoints in a WAL — and
// Engine.Recover rebuilds the service after a restart, re-submitting
// interrupted fred-sweeps with a resume point so they finish byte-identical
// to an uninterrupted run.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/dataset"
)

// TableInfo is the store's metadata record for one table.
type TableInfo struct {
	// ID is the store-assigned handle ("tbl-1", "tbl-2", …).
	ID string `json:"id"`
	// Name is the caller-supplied label (upload filename, scenario name).
	Name string `json:"name"`
	// Rows and Cols record the table shape.
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// Hash is a content hash over the CSV serialization; identical tables
	// hash identically, which is what keys the job result cache.
	Hash string `json:"hash"`
	// Created is the upload time.
	Created time.Time `json:"created"`
}

// Store is the concurrency-safe table store: the ID-assignment and caching
// layer over a TableBackend. Every table stays resident in memory (jobs hold
// live pointers); the backend decides whether tables additionally survive
// restarts. Tables are immutable once stored: Get hands out the stored
// pointer and every job clones before mutating, matching dataset.Table's
// concurrent-reads contract.
type Store struct {
	mu      sync.RWMutex
	backend TableBackend
	seq     int
	tables  map[string]storedTable
}

type storedTable struct {
	info  TableInfo
	table *dataset.Table
}

// NewStore returns an empty store over the ephemeral in-memory backend.
func NewStore() *Store {
	return NewStoreWith(NewMemTableBackend())
}

// NewStoreWith returns an empty store persisting through backend. Call Open
// to load previously persisted tables.
func NewStoreWith(backend TableBackend) *Store {
	return &Store{backend: backend, tables: make(map[string]storedTable)}
}

// Open loads every table persisted in the backend into the store and
// restores the ID sequence past the highest loaded handle. It is the first
// half of crash recovery (Engine.Recover replays the job log second) and
// must run before the store starts serving.
func (s *Store) Open() error {
	recs, err := s.backend.LoadTables()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range recs {
		s.tables[rec.Info.ID] = storedTable{info: rec.Info, table: rec.Table}
		if n := seqOf(rec.Info.ID); n > s.seq {
			s.seq = n
		}
	}
	return nil
}

// Durable reports whether the store's backend outlives the process.
func (s *Store) Durable() bool { return s.backend.Durable() }

// PutBlob persists an auxiliary table (a job result) keyed by content hash.
func (s *Store) PutBlob(hash string, t *dataset.Table) error {
	return s.backend.PutBlob(hash, t)
}

// Blob loads an auxiliary table by content hash.
func (s *Store) Blob(hash string) (*dataset.Table, error) {
	return s.backend.GetBlob(hash)
}

// ErrNotFound is returned for unknown table or job IDs.
type ErrNotFound struct{ Kind, ID string }

func (e *ErrNotFound) Error() string { return fmt.Sprintf("service: no %s %q", e.Kind, e.ID) }

// Put stores a table under a fresh ID and returns its metadata. The table
// is persisted through the backend before it becomes visible — a durable
// store never lists a table it could not reload. The caller must not mutate
// the table afterwards.
func (s *Store) Put(name string, t *dataset.Table) (TableInfo, error) {
	if t == nil || t.NumRows() == 0 {
		return TableInfo{}, fmt.Errorf("service: refusing to store an empty table")
	}
	h, err := HashTable(t)
	if err != nil {
		return TableInfo{}, err
	}
	s.mu.Lock()
	s.seq++
	info := TableInfo{
		ID:      fmt.Sprintf("tbl-%d", s.seq),
		Name:    name,
		Rows:    t.NumRows(),
		Cols:    t.NumCols(),
		Hash:    h,
		Created: time.Now(),
	}
	s.mu.Unlock()
	// Backend I/O (a snapshot write, for disk backends) runs outside the
	// lock so slow uploads never block concurrent Gets.
	if err := s.backend.PutTable(TableRecord{Info: info, Table: t}); err != nil {
		return TableInfo{}, fmt.Errorf("service: persist table: %w", err)
	}
	s.mu.Lock()
	s.tables[info.ID] = storedTable{info: info, table: t}
	s.mu.Unlock()
	return info, nil
}

// Get returns the table and metadata for an ID.
func (s *Store) Get(id string) (*dataset.Table, TableInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.tables[id]
	if !ok {
		return nil, TableInfo{}, &ErrNotFound{Kind: "table", ID: id}
	}
	return st.table, st.info, nil
}

// List returns metadata for every stored table, oldest first.
func (s *Store) List() []TableInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]TableInfo, 0, len(s.tables))
	for _, st := range s.tables {
		out = append(out, st.info)
	}
	sort.Slice(out, func(i, j int) bool { return seqOf(out[i].ID) < seqOf(out[j].ID) })
	return out
}

// Delete removes a table from the store and its backend. The backend goes
// first: if its delete fails, the in-memory entry survives, so the client
// can retry and a restart cannot resurrect a table the API reported gone.
// Jobs already holding the pointer keep working — tables are immutable, so
// this only frees the handle.
func (s *Store) Delete(id string) error {
	s.mu.RLock()
	_, ok := s.tables[id]
	s.mu.RUnlock()
	if !ok {
		return &ErrNotFound{Kind: "table", ID: id}
	}
	if err := s.backend.DeleteTable(id); err != nil {
		return fmt.Errorf("service: delete table: %w", err)
	}
	s.mu.Lock()
	delete(s.tables, id)
	s.mu.Unlock()
	return nil
}

// Evict removes every table created at or before cutoff for which keep
// returns false, from the store and its backend, returning the evicted
// metadata. It is the TTL garbage collection primitive; Engine.EvictTables
// supplies the keep predicate that protects tables referenced by live jobs.
func (s *Store) Evict(cutoff time.Time, keep func(TableInfo) bool) []TableInfo {
	s.mu.RLock()
	var victims []TableInfo
	for _, st := range s.tables {
		if !st.info.Created.After(cutoff) && (keep == nil || !keep(st.info)) {
			victims = append(victims, st.info)
		}
	}
	s.mu.RUnlock()
	sort.Slice(victims, func(i, j int) bool { return seqOf(victims[i].ID) < seqOf(victims[j].ID) })
	evicted := victims[:0]
	for _, info := range victims {
		if err := s.Delete(info.ID); err == nil {
			evicted = append(evicted, info)
		}
	}
	return evicted
}

func seqOf(id string) int {
	var n int
	fmt.Sscanf(id, "tbl-%d", &n)
	return n
}

// HashTable content-hashes a table via its canonical columnar fingerprint,
// so equal schemas+cells produce equal hashes regardless of how the table
// was built. This keys the job result cache, where a collision would serve
// one client another's cached release — hence a cryptographic hash, not a
// checksum. Hashing the column buffers (float bits, dictionary bytes)
// instead of rendering every cell through the CSV writer keeps Submit cheap
// on large uploads.
func HashTable(t *dataset.Table) (string, error) {
	h := sha256.New()
	if err := t.WriteFingerprint(h); err != nil {
		return "", fmt.Errorf("service: hash table: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
