package service

import (
	"fmt"
	"time"
)

// This file implements admission control on the engine's worker pool. The
// pending queue is bounded twice: globally by Options.QueueDepth (the channel
// capacity, as before) and per tenant by Options.MaxPendingPerTenant, so one
// tenant's submission storm cannot occupy the whole queue and starve everyone
// else. Overflow on either bound is shed immediately with an OverloadError —
// the HTTP layer maps it to 429 + Retry-After — instead of queueing
// unboundedly or making the caller block.

// OverloadError reports a submission shed by admission control: the pending
// queue (tenant share or global) was full. It carries a Retry-After hint
// estimated from the observed job service rate. errors.Is matches it against
// ErrQueueFull, so pre-admission-control callers keep working.
type OverloadError struct {
	// Tenant is the shedding tenant.
	Tenant string
	// Scope is "tenant" when the tenant's own pending share was exhausted,
	// "global" when the engine-wide queue was full.
	Scope string
	// Limit is the bound that was hit.
	Limit int
	// RetryAfter estimates when a slot is likely to free: roughly the time
	// the pool needs to drain the current backlog, clamped to [1s, 60s].
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	if e.Scope == "tenant" {
		return fmt.Sprintf("service: tenant %q has %d jobs pending, the per-tenant limit; retry in %s",
			e.Tenant, e.Limit, e.RetryAfter)
	}
	return fmt.Sprintf("service: job queue is full (%d pending); retry in %s", e.Limit, e.RetryAfter)
}

// Is makes errors.Is(err, ErrQueueFull) true for every OverloadError, so the
// typed error is a refinement of the original sentinel, not a new failure
// mode callers must learn about.
func (e *OverloadError) Is(target error) bool { return target == ErrQueueFull }

// admitLocked checks the per-tenant pending bound for one more submission
// from tenant; refused reports true with the limit that was hit. Callers
// hold e.mu (the OverloadError itself is built by shed, outside the lock).
func (e *Engine) admitLocked(tenant string) (limit int, refused bool) {
	if lim := e.opts.MaxPendingPerTenant; lim > 0 && e.pending[tenant] >= lim {
		return lim, true
	}
	return 0, false
}

// enqueuedLocked accounts a job handed to the queue. Callers hold e.mu and
// have already performed the channel send.
func (e *Engine) enqueuedLocked(tenant string) {
	e.pending[tenant]++
	e.pendingTotal++
}

// dequeued accounts a job a worker popped from the queue. It runs for every
// popped job — including ones canceled while pending — so the pending
// counters can never leak.
func (e *Engine) dequeued(j *job) {
	tenant := j.snapshot().Tenant
	e.mu.Lock()
	if e.pending[tenant]--; e.pending[tenant] <= 0 {
		delete(e.pending, tenant)
	}
	e.pendingTotal--
	e.mu.Unlock()
}

// shed records a shed submission and builds its OverloadError. Callers must
// not hold e.mu (retryAfter reads it).
func (e *Engine) shed(tenant, scope string, limit int) *OverloadError {
	e.metrics.shed.With(tenant, scope).Inc()
	e.jobsShed.Add(1)
	return &OverloadError{Tenant: tenant, Scope: scope, Limit: limit, RetryAfter: e.retryAfter()}
}

// retryAfter estimates how long until a queue slot frees: the mean observed
// job execution time scaled by the backlog per worker. With no execution
// history yet it answers 1s — optimistic, but the client will simply be shed
// again with a better estimate once jobs complete.
func (e *Engine) retryAfter() time.Duration {
	n := e.execCount.Load()
	if n == 0 {
		return time.Second
	}
	mean := time.Duration(e.execNanos.Load() / n)
	e.mu.RLock()
	backlog := e.pendingTotal + 1
	e.mu.RUnlock()
	est := mean * time.Duration((backlog+e.opts.Workers-1)/e.opts.Workers)
	if est < time.Second {
		return time.Second
	}
	if est > time.Minute {
		return time.Minute
	}
	return est
}
