package service

import (
	"context"
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/core/planner"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// This file is the fred-sweep job executor: the classic exhaustive range
// walk (runFREDSweep) and the adaptive planner path (runAdaptiveSweep) a
// spec opts into with adaptive/k_set/stride/budget_ms. Both warm-start from
// the engine's cross-job level index, publish per-level events and trace
// spans, and end in core.DecideWithin — so their decisions are bit-identical
// for the same series.
//
// The selection deliberately differs from core.Run/Decide: the service
// sweeps the full requested selection (the client asked for — and receives
// — the whole series) and filters candidacy by BOTH thresholds, where
// Algorithm 1 truncates the sweep at the first level below Tu and filters
// by Tp alone. On a non-monotone utility series the two can admit different
// candidate sets.

// sweepEmitter funnels every level entering a sweep job's series — computed,
// warm-started or resume-seeded — through one bookkeeping path: the series,
// the WAL checkpoint, the event stream, metrics and traces.
type sweepEmitter struct {
	e        *Engine
	j        *job
	ctx      context.Context
	tenant   string
	explicit bool
	tp, tu   float64
	total    int
	// calibrate enables the running-calibration payload on level events;
	// the classic path emits ascending series where the running calibration
	// is meaningful, the adaptive path does not.
	calibrate bool

	levels []core.LevelResult
}

// emit records one level. source is "" for computed levels, "warm" for
// level-index seeds.
func (se *sweepEmitter) emit(lr core.LevelResult, source string) {
	se.levels = append(se.levels, lr)
	ls := summarizeLevel(lr)
	ls.Candidate = se.explicit && lr.After >= se.tp && lr.Utility >= se.tu
	var cal *Calibration
	if se.calibrate {
		if tp, tu, err := core.CalibrateThresholds(se.levels); err == nil {
			cal = &Calibration{Tp: tp, Tu: tu}
		}
	}
	se.e.recordLevel(se.j, ls, cal, 0.95*float64(len(se.levels))/float64(se.total), source)
	if source == "warm" {
		se.e.metrics.plannerWarm.With(se.tenant).Inc()
		se.e.logger.DebugContext(se.ctx, "sweep level warm-started",
			"k", lr.K, "after", lr.After, "utility", lr.Utility)
		return
	}
	se.e.metrics.plannerEvaluated.With(se.tenant).Inc()
	// One trace span per computed level, timed where the work ran (core
	// measures lr.Elapsed inside RunLevel), so concurrent sweeps report true
	// per-level cost rather than emission gaps.
	se.e.tracer.Record(obs.Span{
		Job:        obs.JobID(se.ctx),
		Name:       "sweep.level",
		Start:      time.Now().Add(-lr.Elapsed),
		DurationNS: int64(lr.Elapsed),
		Attrs:      map[string]string{"k": strconv.Itoa(lr.K)},
	})
	se.e.logger.DebugContext(se.ctx, "sweep level",
		"k", lr.K, "after", lr.After, "utility", lr.Utility, "elapsed", lr.Elapsed)
}

// finishSweep is the shared decision tail: resolve thresholds, decide over
// the (ascending) series with the band selection, rebuild the optimal
// release if the argmax landed on a level without one (warm or
// resume-seeded), and index the series for future warm starts.
func (e *Engine) finishSweep(j *job, levels []core.LevelResult, tp, tu float64, evaluated int, partial bool) (*Result, error) {
	if tp == 0 && tu == 0 {
		var err error
		if tp, tu, err = core.CalibrateThresholds(levels); err != nil {
			return nil, err
		}
	}
	res, err := core.DecideWithin(levels, tp, tu, metrics.DefaultHOptions())
	if err != nil {
		return nil, err
	}
	relTable := res.Optimal
	if relTable == nil {
		// The argmax landed on a level whose release table was never
		// materialized in this run (warm-started, or seeded from a crash
		// checkpoint). Recompute it: anonymization is deterministic, so the
		// rebuilt release is byte-identical to the original.
		if relTable, err = release(j.p, anonymizerFor(j.spec.Scheme), res.OptimalK); err != nil {
			return nil, err
		}
	}
	e.levels.Put(j.levelKey, levels)
	return &Result{
		Table:     relTable,
		Levels:    summarizeLevels(res.Levels),
		OptimalK:  res.OptimalK,
		Hmax:      res.Hmax,
		Tp:        tp,
		Tu:        tu,
		Evaluated: evaluated,
		Partial:   partial,
	}, nil
}

// runFREDSweep is Algorithm 1 as a service job: the level sweep runs through
// core.SweepStream on SweepWorkers workers, so levels arrive in k order as
// they complete. Each completed level advances progress, is stored on the
// running job as a partial result, and is published to Engine.Stream
// subscribers together with the running threshold calibration over the
// prefix. Cancellation interrupts the sweep between levels. Levels an
// earlier sweep of the same (table, adversary, scheme, range) already
// computed are adopted from the level index — held out of the stream and
// interleaved into the emission at their k position — so an overlapping
// re-sweep computes only the gap. Specs with adaptive selections route to
// the planner instead.
func (e *Engine) runFREDSweep(ctx context.Context, j *job) (*Result, error) {
	if j.spec.adaptive() {
		return e.runAdaptiveSweep(ctx, j)
	}
	sp := j.spec
	total := sp.MaxK - sp.MinK + 1
	se := &sweepEmitter{
		e: e, j: j, ctx: ctx, tenant: j.snapshot().Tenant,
		// With explicit thresholds, per-level candidacy is decidable as
		// levels stream; under auto-calibration it is settled only after
		// the sweep.
		explicit: sp.Tp != 0 || sp.Tu != 0, tp: sp.Tp, tu: sp.Tu,
		total: total, calibrate: true,
		levels: make([]core.LevelResult, 0, total),
	}

	// A recovered job seeds the series with its checkpointed levels and
	// resumes the stream at startK; the level numbers round-tripped the WAL
	// losslessly, so the final series is bit-identical to an uninterrupted
	// run. Seeded levels carry no Release/Phat tables — recomputed on demand
	// in finishSweep. Resume and warm-start are mutually exclusive: the
	// checkpointed prefix already covers the warm levels' k range or the
	// contiguity check would have discarded it.
	startK := 0
	var warm map[int]core.LevelResult
	if j.resume != nil {
		for _, ls := range j.resume.levels {
			se.levels = append(se.levels, core.LevelResult{
				K: ls.K, Before: ls.Before, After: ls.After,
				Gain: ls.Gain, Utility: ls.Utility, Candidate: ls.Candidate,
				AnonymizeTime: time.Duration(ls.AnonymizeNS),
				FuseTime:      time.Duration(ls.FuseNS),
				MetricsTime:   time.Duration(ls.MetricsNS),
			})
		}
		startK = j.resume.startK
	} else {
		warm = e.levels.Get(j.levelKey, rangeKs(sp.MinK, sp.MaxK))
	}
	warmKs := make([]int, 0, len(warm))
	for k := range warm {
		warmKs = append(warmKs, k)
	}
	sort.Ints(warmKs)
	held := make(map[int]bool, len(warm))
	for k := range warm {
		held[k] = true
	}
	// flushWarmBelow interleaves warm levels into the ascending emission:
	// every warm level below k enters the series before k does. k < 0
	// flushes the rest.
	flushWarmBelow := func(k int) {
		for len(warmKs) > 0 && (k < 0 || warmKs[0] < k) {
			se.emit(warm[warmKs[0]], "warm")
			warmKs = warmKs[1:]
		}
	}

	evaluated := 0
	if startK <= sp.MaxK {
		err := core.SweepStream(ctx, j.p, core.StreamConfig{
			Anonymizer:      anonymizerFor(sp.Scheme),
			Attack:          sp.attackConfig(j.aux),
			MinK:            sp.MinK,
			MaxK:            sp.MaxK,
			StartK:          startK,
			Held:            held,
			Workers:         e.opts.SweepWorkers,
			MinParallelRows: core.MinParallelSweepRows,
		}, func(lr core.LevelResult) error {
			flushWarmBelow(lr.K)
			se.emit(lr, "")
			evaluated++
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	flushWarmBelow(-1)

	return e.finishSweep(j, se.levels, sp.Tp, sp.Tu, evaluated, false)
}

// rangeKs expands [lo, hi] into the explicit ascending level list the level
// index and the planner consume.
func rangeKs(lo, hi int) []int {
	ks := make([]int, 0, hi-lo+1)
	for k := lo; k <= hi; k++ {
		ks = append(ks, k)
	}
	return ks
}

// runAdaptiveSweep executes a fred-sweep through the planner: k-sets and
// strides expand to an explicit level list, cached levels of the same table
// warm-start the run, explicit thresholds enable bisection of the Tu
// crossing, and a wall-clock budget stops evaluation at the deadline with a
// well-defined partial result. Level events arrive in evaluation order
// (probes jump around the range), each tagged with its source; skipped
// ranges are published as skip events, and the plan's accounting lands in
// the job trace ("planner.plan", "planner.warmstart", "planner.skip").
func (e *Engine) runAdaptiveSweep(ctx context.Context, j *job) (*Result, error) {
	sp := j.spec
	tenant := j.snapshot().Tenant
	ks, err := planner.Expand(sp.MinK, sp.MaxK, sp.Stride, sp.KSet)
	if err != nil {
		return nil, err
	}
	warm := e.levels.Get(j.levelKey, ks)
	held := make(map[int]core.LevelResult, len(warm))
	for k, lr := range warm {
		held[k] = lr
	}
	se := &sweepEmitter{
		e: e, j: j, ctx: ctx, tenant: tenant,
		explicit: sp.Tp != 0 || sp.Tu != 0, tp: sp.Tp, tu: sp.Tu,
		total: len(ks),
	}
	var warmSeen []int
	cfg := planner.Config{
		Anonymizer:      anonymizerFor(sp.Scheme),
		Attack:          sp.attackConfig(j.aux),
		Levels:          ks,
		Tp:              sp.Tp,
		Tu:              sp.Tu,
		Workers:         e.opts.SweepWorkers,
		MinParallelRows: core.MinParallelSweepRows,
		Held:            held,
		Hooks: planner.Hooks{
			Level: func(lr core.LevelResult, warmLevel bool) {
				source := ""
				if warmLevel {
					source = "warm"
					warmSeen = append(warmSeen, lr.K)
				}
				se.emit(lr, source)
			},
			Fallback: func(reason string) {
				e.metrics.plannerFallbacks.With(tenant).Inc()
				e.logger.InfoContext(ctx, "planner fallback to exhaustive walk", "reason", reason)
				e.tracer.Record(obs.Span{
					Job: obs.JobID(ctx), Name: "planner.fallback", Start: time.Now(),
					Attrs: map[string]string{"reason": reason},
				})
			},
		},
	}
	if sp.BudgetMS > 0 {
		cfg.Deadline = time.Now().Add(time.Duration(sp.BudgetMS) * time.Millisecond)
	}
	out, err := planner.Run(ctx, j.p, cfg)
	if err != nil {
		return nil, err
	}

	// Publish the plan's accounting: warm ranges, skip ranges, and the
	// summary span GET /v1/jobs/{id}/trace surfaces.
	for _, r := range compressKs(warmSeen) {
		e.tracer.Record(obs.Span{
			Job: obs.JobID(ctx), Name: "planner.warmstart", Start: time.Now(),
			Attrs: map[string]string{"from_k": strconv.Itoa(r[0]), "to_k": strconv.Itoa(r[1])},
		})
	}
	for _, r := range out.SkippedRanges {
		e.recordSkip(j, Skip{FromK: r.FromK, ToK: r.ToK, Reason: r.Reason})
		n := 0
		for _, k := range ks {
			if k >= r.FromK && k <= r.ToK {
				n++
			}
		}
		e.metrics.plannerSkipped.With(tenant, r.Reason).Add(float64(n))
		e.tracer.Record(obs.Span{
			Job: obs.JobID(ctx), Name: "planner.skip", Start: time.Now(),
			Attrs: map[string]string{
				"from_k": strconv.Itoa(r.FromK), "to_k": strconv.Itoa(r.ToK), "reason": r.Reason,
			},
		})
		e.logger.DebugContext(ctx, "planner skipped levels",
			"from_k", r.FromK, "to_k", r.ToK, "reason", r.Reason)
	}
	e.tracer.Record(obs.Span{
		Job: obs.JobID(ctx), Name: "planner.plan", Start: time.Now(),
		Attrs: map[string]string{
			"requested":  strconv.Itoa(out.Requested),
			"evaluated":  strconv.Itoa(out.Evaluated),
			"warm":       strconv.Itoa(out.Warm),
			"skipped":    strconv.Itoa(out.Skipped),
			"infeasible": strconv.Itoa(out.Infeasible),
			"fallback":   strconv.FormatBool(out.Fallback),
			"partial":    strconv.FormatBool(out.Partial),
		},
	})

	return e.finishSweep(j, out.Levels, sp.Tp, sp.Tu, out.Evaluated, out.Partial)
}

// compressKs folds an ascending level list into maximal contiguous
// [from, to] runs.
func compressKs(ks []int) [][2]int {
	var out [][2]int
	for _, k := range ks {
		if n := len(out); n > 0 && out[n-1][1] == k-1 {
			out[n-1][1] = k
			continue
		}
		out = append(out, [2]int{k, k})
	}
	return out
}
