package service

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/risk"
)

// JobType names the workloads the engine runs. Each maps onto one paper
// operation: anonymize (Basic_Anonymization), attack (the Section 3 fusion
// attack), fred-sweep (Algorithm 1 over a level range), assess (the
// record-level disclosure report).
type JobType string

// The supported job types.
const (
	JobAnonymize JobType = "anonymize"
	JobAttack    JobType = "attack"
	JobFREDSweep JobType = "fred-sweep"
	JobAssess    JobType = "assess"
)

// JobState is the lifecycle state of a job.
type JobState string

// Job lifecycle states. Terminal states are done, failed and canceled.
const (
	StatePending  JobState = "pending"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Spec is a job request. Table (and Aux, where used) reference tables
// previously stored via Store.Put / POST /v1/tables.
type Spec struct {
	// Type selects the workload. Required.
	Type JobType `json:"type"`
	// Table is the private table P. Required.
	Table string `json:"table"`
	// Aux is the adversary's web-gathered table Q, row-aligned with P.
	// Optional: omitting it simulates an adversary without web access.
	Aux string `json:"aux,omitempty"`
	// Scheme selects Basic_Anonymization: "mdav" (default) or "mondrian".
	Scheme string `json:"scheme,omitempty"`
	// K is the anonymization level for anonymize/attack/assess jobs.
	K int `json:"k,omitempty"`
	// MinK and MaxK bound a fred-sweep (defaults 2 and 16).
	MinK int `json:"min_k,omitempty"`
	MaxK int `json:"max_k,omitempty"`
	// KSet, when non-empty, replaces the MinK..MaxK range with an explicit
	// level set (sorted and deduplicated; every entry ≥ 2, at least two
	// entries). Mutually exclusive with Stride. fred-sweep only; implies the
	// adaptive planner.
	KSet []int `json:"k_set,omitempty"`
	// Stride > 1 thins the MinK..MaxK range to every stride-th level.
	// fred-sweep only; implies the adaptive planner.
	Stride int `json:"stride,omitempty"`
	// BudgetMS > 0 bounds the sweep's wall clock: the planner orders levels
	// by expected information gain and stops at the deadline, finishing the
	// job with the best series obtainable in the budget and Result.Partial
	// set. fred-sweep only; implies the adaptive planner.
	BudgetMS int64 `json:"budget_ms,omitempty"`
	// Adaptive opts a plain range sweep into the planner: with explicit
	// thresholds the Tu crossing is bisected instead of walking every level
	// (the decision is bit-identical — see internal/core/planner). KSet,
	// Stride and BudgetMS imply it.
	Adaptive bool `json:"adaptive,omitempty"`
	// Tp and Tu are the FRED thresholds; both zero auto-calibrates from
	// the sweep the way the paper did from experimental observations.
	Tp float64 `json:"tp,omitempty"`
	Tu float64 `json:"tu,omitempty"`
	// SensitiveLo and SensitiveHi give the publicly known range of the
	// sensitive attribute. Required for attack, fred-sweep and assess.
	SensitiveLo float64 `json:"sensitive_lo,omitempty"`
	SensitiveHi float64 `json:"sensitive_hi,omitempty"`
}

// withDefaults returns the spec with defaulted fields filled in, so cache
// keys for equivalent requests collide.
func (sp Spec) withDefaults() Spec {
	if sp.Scheme == "" {
		sp.Scheme = "mdav"
	}
	if sp.Type == JobFREDSweep {
		if len(sp.KSet) > 0 {
			// An explicit set replaces the range; canonicalize it (and let
			// the range bounds mirror it) so equivalent submissions share a
			// cache key.
			set := append([]int(nil), sp.KSet...)
			sort.Ints(set)
			dst := set[:1]
			for _, k := range set[1:] {
				if k != dst[len(dst)-1] {
					dst = append(dst, k)
				}
			}
			sp.KSet = dst
			sp.MinK, sp.MaxK = dst[0], dst[len(dst)-1]
		}
		if sp.MinK == 0 {
			sp.MinK = 2
		}
		if sp.MaxK == 0 {
			sp.MaxK = 16
		}
	}
	return sp
}

// adaptive reports whether the spec routes through the planner: an explicit
// opt-in, or any selection the classic range walk cannot express.
func (sp Spec) adaptive() bool {
	return sp.Adaptive || len(sp.KSet) > 0 || sp.Stride > 1 || sp.BudgetMS > 0
}

// validate checks everything that does not need the referenced tables.
func (sp Spec) validate() error {
	switch sp.Type {
	case JobAnonymize, JobAttack, JobFREDSweep, JobAssess:
	case "":
		return fmt.Errorf("service: job needs a type (one of %s, %s, %s, %s)",
			JobAnonymize, JobAttack, JobFREDSweep, JobAssess)
	default:
		return fmt.Errorf("service: unknown job type %q", sp.Type)
	}
	if sp.Table == "" {
		return fmt.Errorf("service: job needs a table")
	}
	switch sp.Scheme {
	case "mdav", "mondrian":
	default:
		return fmt.Errorf("service: unknown anonymization scheme %q (want mdav or mondrian)", sp.Scheme)
	}
	switch sp.Type {
	case JobAnonymize, JobAttack, JobAssess:
		if sp.K < 2 {
			return fmt.Errorf("service: %s job needs k ≥ 2, got %d", sp.Type, sp.K)
		}
	case JobFREDSweep:
		if sp.MinK < 2 || sp.MaxK < sp.MinK {
			return fmt.Errorf("service: invalid sweep range [%d, %d]", sp.MinK, sp.MaxK)
		}
		if len(sp.KSet) > 0 {
			if sp.Stride > 1 {
				return fmt.Errorf("service: k_set and stride are mutually exclusive")
			}
			if len(sp.KSet) < 2 {
				return fmt.Errorf("service: k_set needs at least 2 levels, got %d", len(sp.KSet))
			}
			for _, k := range sp.KSet {
				if k < 2 {
					return fmt.Errorf("service: k_set level %d below the minimal k = 2", k)
				}
			}
		}
		if sp.Stride < 0 {
			return fmt.Errorf("service: negative stride %d", sp.Stride)
		}
		if sp.BudgetMS < 0 {
			return fmt.Errorf("service: negative budget_ms %d", sp.BudgetMS)
		}
	}
	if sp.Type != JobFREDSweep && (len(sp.KSet) > 0 || sp.Stride != 0 || sp.BudgetMS != 0 || sp.Adaptive) {
		return fmt.Errorf("service: k_set/stride/budget_ms/adaptive apply to %s jobs only", JobFREDSweep)
	}
	if sp.Type != JobAnonymize && sp.SensitiveHi <= sp.SensitiveLo {
		return fmt.Errorf("service: %s job needs a sensitive range (sensitive_lo < sensitive_hi)", sp.Type)
	}
	return nil
}

// cacheKey canonicalizes the spec plus the content hashes of its input
// tables. Two submissions with byte-identical tables and an equivalent spec
// share a key — the "repeated FRED sweeps served from cache" contract.
func (sp Spec) cacheKey(pHash, auxHash string) string {
	key := fmt.Sprintf("%s|%s|%s|%s|k%d|%d-%d|tp%g|tu%g|%g-%g",
		sp.Type, pHash, auxHash, sp.Scheme, sp.K, sp.MinK, sp.MaxK, sp.Tp, sp.Tu,
		sp.SensitiveLo, sp.SensitiveHi)
	if sp.adaptive() {
		// Adaptive selections extend the key only when present, so every
		// pre-existing classic spec keeps its key (and its cache entries).
		key += fmt.Sprintf("|set%v|s%d|b%d", sp.KSet, sp.Stride, sp.BudgetMS)
	}
	return key
}

// levelKey identifies the per-table level series the cross-job warm-start
// index is keyed by: everything that determines a level's numbers — the
// table contents, the adversary's table, the scheme and the sensitive range
// — and nothing that merely selects levels (range, set, stride, thresholds,
// budget). Two sweeps of the same table agreeing on this key may exchange
// computed levels verbatim.
func (sp Spec) levelKey(pHash, auxHash string) string {
	return fmt.Sprintf("%s|%s|%s|%g-%g", pHash, auxHash, sp.Scheme, sp.SensitiveLo, sp.SensitiveHi)
}

// Status is the externally visible state of a job. It is a value snapshot —
// safe to hand across goroutines and to serialize.
type Status struct {
	ID string `json:"id"`
	// Tenant is the namespace the job runs in — assigned from the
	// authenticated caller, never from the spec.
	Tenant string   `json:"tenant,omitempty"`
	Type   JobType  `json:"type"`
	State  JobState `json:"state"`
	// Progress advances 0 → 1 while running.
	Progress float64 `json:"progress"`
	// Cached reports that the result was served from the LRU cache.
	Cached bool `json:"cached,omitempty"`
	// Resumed reports that the job was interrupted by a crash and
	// re-submitted by Engine.Recover — fred-sweeps continue from their last
	// checkpointed level rather than restarting.
	Resumed bool   `json:"resumed,omitempty"`
	Error   string `json:"error,omitempty"`
	// Summary carries the headline numbers of a finished job (optimal k,
	// dissimilarities, breach rates, …) keyed by metric name.
	Summary map[string]float64 `json:"summary,omitempty"`
	// Levels holds the per-level partial results of a fred-sweep, appended
	// as each level completes — a poll mid-sweep sees the series so far. On
	// completion it is replaced by the final summaries, whose candidate
	// flags reflect the (possibly auto-calibrated) thresholds.
	Levels   []LevelSummary `json:"levels,omitempty"`
	Created  time.Time      `json:"created"`
	Started  *time.Time     `json:"started,omitempty"`
	Finished *time.Time     `json:"finished,omitempty"`
}

// LevelSummary is the JSON-friendly projection of one core.LevelResult —
// the per-level numbers without the table payloads.
type LevelSummary struct {
	K         int     `json:"k"`
	Before    float64 `json:"before"`
	After     float64 `json:"after"`
	Gain      float64 `json:"gain"`
	Utility   float64 `json:"utility"`
	Candidate bool    `json:"candidate"`
	// Phase breakdown of the level's compute time, in nanoseconds:
	// anonymization, fusion attack, utility metric. Observational only;
	// omitted on warm-started levels replayed from the index (their compute
	// happened in an earlier job).
	AnonymizeNS int64 `json:"anonymize_ns,omitempty"`
	FuseNS      int64 `json:"fuse_ns,omitempty"`
	MetricsNS   int64 `json:"metrics_ns,omitempty"`
}

// Result is a finished job's payload. Table is the downloadable artifact
// (the release for anonymize, P̂ for attack, the optimal release for
// fred-sweep); the other fields are populated per job type.
type Result struct {
	// Table is the primary output table, nil only for assess jobs.
	Table *dataset.Table
	// Levels is the fred-sweep series (Figures 4–7).
	Levels []LevelSummary
	// OptimalK and Hmax are Algorithm 1's argmax for fred-sweep jobs.
	OptimalK int
	Hmax     float64
	// Tp and Tu echo the thresholds used (auto-calibrated when the spec
	// left them zero).
	Tp, Tu float64
	// Evaluated counts the levels this job actually computed — excluding
	// warm-started and planner-skipped levels — for fred-sweep jobs.
	Evaluated int
	// Partial reports a budget-bound sweep that hit its deadline: Levels is
	// the best series obtainable in the budget, not the full request.
	Partial bool
	// Before and After are the pre/post-fusion dissimilarities for attack
	// jobs.
	Before, After float64
	// Assessment is the record-level disclosure report for assess jobs.
	Assessment *risk.Assessment
}

// summarize flattens the headline numbers into a Status summary map.
func (r *Result) summarize(t JobType) map[string]float64 {
	m := make(map[string]float64)
	switch t {
	case JobAnonymize:
		m["rows"] = float64(r.Table.NumRows())
	case JobAttack:
		m["before"] = r.Before
		m["after"] = r.After
		m["gain"] = r.Before - r.After
	case JobFREDSweep:
		m["optimal_k"] = float64(r.OptimalK)
		m["h_max"] = r.Hmax
		m["levels"] = float64(len(r.Levels))
		m["levels_evaluated"] = float64(r.Evaluated)
		m["tp"] = r.Tp
		m["tu"] = r.Tu
		if r.Partial {
			m["partial"] = 1
		}
	case JobAssess:
		m["breach10"] = r.Assessment.Breach10
		m["breach20"] = r.Assessment.Breach20
		m["class3"] = r.Assessment.Class3
		m["baseline_class3"] = r.Assessment.BaselineClass3
		m["rank_exposure"] = r.Assessment.Rank
	}
	return m
}

func summarizeLevel(lr core.LevelResult) LevelSummary {
	return LevelSummary{
		K: lr.K, Before: lr.Before, After: lr.After,
		Gain: lr.Gain, Utility: lr.Utility, Candidate: lr.Candidate,
		AnonymizeNS: int64(lr.AnonymizeTime),
		FuseNS:      int64(lr.FuseTime),
		MetricsNS:   int64(lr.MetricsTime),
	}
}

func summarizeLevels(levels []core.LevelResult) []LevelSummary {
	out := make([]LevelSummary, len(levels))
	for i, lr := range levels {
		out[i] = summarizeLevel(lr)
	}
	return out
}
