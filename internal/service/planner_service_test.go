package service_test

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/service"
)

// The adaptive-planner service suite: cross-job warm starts through the
// level index, the bisection planner behind adaptive specs, and the
// observability both feed. Runs in CI's planner job (raced) — keep test
// names matching 'Planner|WarmStart'.

// plannerFixture is testFixture at a cohort size where the utility series
// is strictly monotone (n ≥ ~400), so bisection actually skips levels
// instead of falling back to the exhaustive walk.
func plannerFixture(t *testing.T, opts service.Options) (*service.Engine, string, string) {
	t.Helper()
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 400, DirectAux: true})
	if err != nil {
		t.Fatal(err)
	}
	store := service.NewStore()
	pInfo, err := store.Put(service.DefaultTenant, "P", sc.P)
	if err != nil {
		t.Fatal(err)
	}
	qInfo, err := store.Put(service.DefaultTenant, "Q", sc.Q)
	if err != nil {
		t.Fatal(err)
	}
	e := service.NewEngine(store, opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		e.Shutdown(ctx)
	})
	return e, pInfo.ID, qInfo.ID
}

// TestWarmStartSecondSweepComputesOnlyGap submits two overlapping classic
// sweeps of the same table and asserts the second one seeds the overlap
// from the cross-job level index — only the gap levels are computed, the
// seeded levels stream with source "warm", and the warm-start counter in
// the metrics exposition advances.
func TestWarmStartSecondSweepComputesOnlyGap(t *testing.T) {
	reg := obs.NewRegistry()
	e, p, q, _ := testFixture(t, service.Options{Workers: 1, Metrics: reg})
	e.Start()

	first := sweepSpec(p, q) // k = 2..10
	st, err := e.Submit(service.DefaultTenant, first)
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, e, st.ID)
	if st.State != service.StateDone {
		t.Fatalf("first sweep ended %s: %s", st.State, st.Error)
	}
	if got := int(st.Summary["levels_evaluated"]); got != 9 {
		t.Fatalf("first sweep evaluated %d levels, want 9", got)
	}

	second := first
	second.MaxK = 14 // overlaps k = 2..10, adds k = 11..14
	st2, err := e.Submit(service.DefaultTenant, second)
	if err != nil {
		t.Fatal(err)
	}
	st2 = waitDone(t, e, st2.ID)
	if st2.State != service.StateDone {
		t.Fatalf("second sweep ended %s: %s", st2.State, st2.Error)
	}
	if st2.Cached {
		t.Fatal("second sweep has a different range and must not be a result-cache hit")
	}
	if got := int(st2.Summary["levels_evaluated"]); got != 4 {
		t.Fatalf("second sweep evaluated %d levels, want only the 4-level gap (k=11..14)", got)
	}
	if got := len(st2.Levels); got != 13 {
		t.Fatalf("second sweep reports %d levels, want the full 13 (k=2..14)", got)
	}

	// The seeded levels streamed with source "warm", in ascending k order
	// interleaved with the computed gap.
	warm := 0
	for ev := range mustStream(t, e, st2.ID) {
		if ev.Type == service.EventLevel && ev.Source == "warm" {
			warm++
		}
	}
	if warm != 9 {
		t.Fatalf("second sweep streamed %d warm levels, want 9", warm)
	}

	// A from-scratch engine sweeping k=2..14 must reach the bit-identical
	// decision — warm-started levels are adopted verbatim.
	eFresh, pf, qf, _ := testFixture(t, service.Options{Workers: 1})
	eFresh.Start()
	fresh := sweepSpec(pf, qf)
	fresh.MaxK = 14
	stf, err := eFresh.Submit(service.DefaultTenant, fresh)
	if err != nil {
		t.Fatal(err)
	}
	stf = waitDone(t, eFresh, stf.ID)
	if stf.State != service.StateDone {
		t.Fatalf("fresh sweep ended %s: %s", stf.State, stf.Error)
	}
	for _, key := range []string{"optimal_k", "h_max", "tp", "tu"} {
		if st2.Summary[key] != stf.Summary[key] {
			t.Errorf("warm-started %s = %v, fresh sweep = %v", key, st2.Summary[key], stf.Summary[key])
		}
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `planner_warmstart_levels_total{tenant="default"} 9`) {
		t.Errorf("metrics exposition missing the warm-start counter:\n%s", grepFamily(buf.String(), "planner_"))
	}
}

// TestAdaptivePlannerJobSkipsAndMatchesExhaustive runs the same explicit
// thresholds through a classic exhaustive sweep and an adaptive one on a
// monotone cohort: the planner must evaluate strictly fewer levels, publish
// skip events with the bisection reason, advance the skip counter, and
// decide bit-identically.
func TestAdaptivePlannerJobSkipsAndMatchesExhaustive(t *testing.T) {
	reg := obs.NewRegistry()
	// The level index is disabled so the adaptive job cannot warm-start from
	// the exhaustive one — this test measures bisection, not warm starts.
	e, p, q := plannerFixture(t, service.Options{Workers: 1, Metrics: reg, LevelIndexSize: -1})
	e.Start()

	probe := service.Spec{
		Type: service.JobFREDSweep, Table: p, Aux: q,
		MinK: 2, MaxK: 16,
		SensitiveLo: 40000, SensitiveHi: 160000,
	}
	st, err := e.Submit(service.DefaultTenant, probe)
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, e, st.ID)
	if st.State != service.StateDone {
		t.Fatalf("probe sweep ended %s: %s", st.State, st.Error)
	}
	// Tu at the k=6 utility puts the candidate band at k=2..6, leaving a
	// tail for bisection to skip. Tp stays 0 so candidacy is Tu-only and
	// the thresholds count as explicit.
	var tu float64
	for _, ls := range st.Levels {
		if ls.K == 6 {
			tu = ls.Utility
		}
	}
	if tu == 0 {
		t.Fatal("probe sweep did not report a k=6 level")
	}

	exhaustive := probe
	exhaustive.Tu = tu
	stE, err := e.Submit(service.DefaultTenant, exhaustive)
	if err != nil {
		t.Fatal(err)
	}
	stE = waitDone(t, e, stE.ID)
	if stE.State != service.StateDone {
		t.Fatalf("exhaustive sweep ended %s: %s", stE.State, stE.Error)
	}
	if got := int(stE.Summary["levels_evaluated"]); got != 15 {
		t.Fatalf("exhaustive sweep evaluated %d levels, want all 15", got)
	}

	adaptive := exhaustive
	adaptive.Adaptive = true
	stA, err := e.Submit(service.DefaultTenant, adaptive)
	if err != nil {
		t.Fatal(err)
	}
	stA = waitDone(t, e, stA.ID)
	if stA.State != service.StateDone {
		t.Fatalf("adaptive sweep ended %s: %s", stA.State, stA.Error)
	}
	if stA.Cached {
		t.Fatal("adaptive spec must have its own cache identity")
	}
	evaluated := int(stA.Summary["levels_evaluated"])
	if evaluated >= 15 {
		t.Fatalf("planner evaluated %d levels, wanted fewer than the exhaustive 15", evaluated)
	}
	for _, key := range []string{"optimal_k", "h_max"} {
		if stA.Summary[key] != stE.Summary[key] {
			t.Errorf("adaptive %s = %v, exhaustive = %v", key, stA.Summary[key], stE.Summary[key])
		}
	}

	// The event stream carries the skip ranges with the bisection reason.
	skipped := 0
	for ev := range mustStream(t, e, stA.ID) {
		if ev.Type != service.EventSkip {
			continue
		}
		if ev.Skip == nil || ev.Skip.Reason != "bisection" {
			t.Fatalf("skip event without a bisection payload: %+v", ev)
		}
		skipped += ev.Skip.ToK - ev.Skip.FromK + 1
	}
	if skipped == 0 {
		t.Fatal("adaptive sweep published no skip events")
	}
	if evaluated+skipped != 15 {
		t.Errorf("evaluated %d + skipped %d levels, want the requested 15", evaluated, skipped)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	expo := buf.String()
	if !strings.Contains(expo, `planner_levels_skipped_total{reason="bisection",tenant="default"}`) &&
		!strings.Contains(expo, `planner_levels_skipped_total{tenant="default",reason="bisection"}`) {
		t.Errorf("metrics exposition missing the skip counter:\n%s", grepFamily(expo, "planner_"))
	}
}

// TestAdaptivePlannerWarmStartFillsFromIndex chains warm starts into the
// planner: an exhaustive sweep populates the level index, then an adaptive
// sweep of the same table adopts every level it needs without computing any.
func TestAdaptivePlannerWarmStartFillsFromIndex(t *testing.T) {
	e, p, q := plannerFixture(t, service.Options{Workers: 1})
	e.Start()

	probe := service.Spec{
		Type: service.JobFREDSweep, Table: p, Aux: q,
		MinK: 2, MaxK: 16,
		SensitiveLo: 40000, SensitiveHi: 160000,
	}
	st, err := e.Submit(service.DefaultTenant, probe)
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, e, st.ID)
	if st.State != service.StateDone {
		t.Fatalf("probe sweep ended %s: %s", st.State, st.Error)
	}

	sub := probe
	sub.KSet = []int{2, 5, 9, 14}
	stK, err := e.Submit(service.DefaultTenant, sub)
	if err != nil {
		t.Fatal(err)
	}
	stK = waitDone(t, e, stK.ID)
	if stK.State != service.StateDone {
		t.Fatalf("k-set sweep ended %s: %s", stK.State, stK.Error)
	}
	if got := int(stK.Summary["levels_evaluated"]); got != 0 {
		t.Fatalf("k-set sweep computed %d levels, want 0 (all warm from the index)", got)
	}
	if got := len(stK.Levels); got != 4 {
		t.Fatalf("k-set sweep reports %d levels, want 4", got)
	}
	for i, want := range []int{2, 5, 9, 14} {
		if stK.Levels[i].K != want {
			t.Fatalf("k-set level %d is k=%d, want k=%d", i, stK.Levels[i].K, want)
		}
	}
}

// mustStream drains a terminal job's event feed.
func mustStream(t *testing.T, e *service.Engine, id string) <-chan service.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	ch, err := e.Stream(ctx, service.DefaultTenant, id)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

// grepFamily extracts the exposition lines of one metric family prefix, for
// failure messages.
func grepFamily(expo, prefix string) string {
	var out []string
	for _, line := range strings.Split(expo, "\n") {
		if strings.HasPrefix(line, prefix) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
