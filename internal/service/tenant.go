package service

import (
	"fmt"
	"sync"
)

// This file defines the tenant dimension of the service: every table lives
// in exactly one tenant's namespace, every job runs on behalf of exactly one
// tenant, and a tenant can never observe — not even as a 403 — another
// tenant's tables, jobs or event streams. Tenants are identified by short
// names established out of band (the API-key file of cmd/served); the
// pre-tenancy single-namespace behavior is the DefaultTenant namespace, and
// recovery adopts pre-tenancy durable data into it (see DESIGN.md).

// DefaultTenant is the namespace used when no authentication is configured,
// and the tenant pre-tenancy durable data is adopted into on recovery.
const DefaultTenant = "default"

// maxTenantLen bounds tenant names; they appear in file paths, WAL records
// and log lines.
const maxTenantLen = 64

// ValidateTenant checks that a tenant name is usable as a namespace key and
// as a path component in durable layouts: 1–64 characters drawn from
// [a-z0-9._-], not starting with a dot or a dash. This is deliberately
// strict — a tenant name that could traverse directories ("../evil") or
// collide under case-folding filesystems must never reach a backend.
func ValidateTenant(tenant string) error {
	if tenant == "" {
		return fmt.Errorf("service: empty tenant")
	}
	if len(tenant) > maxTenantLen {
		return fmt.Errorf("service: tenant name longer than %d characters", maxTenantLen)
	}
	for i := 0; i < len(tenant); i++ {
		c := tenant[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
			if i == 0 && c != '_' {
				return fmt.Errorf("service: tenant name %q may not start with %q", tenant, string(c))
			}
		default:
			return fmt.Errorf("service: tenant name %q contains %q (want [a-z0-9._-])", tenant, string(c))
		}
	}
	return nil
}

// Quota bounds one tenant's footprint on the service. The zero value is
// unlimited. In a Quotas.PerTenant override, a zero field inherits the
// Default's value and a negative field is explicitly unlimited; in the
// resolved quota Quotas.For returns, any field ≤ 0 leaves that resource
// unbounded.
type Quota struct {
	// MaxTables caps the tables resident in the tenant's namespace;
	// Store.Put refuses the upload once reached.
	MaxTables int
	// MaxJobs caps the tenant's concurrently live (pending or running)
	// jobs; Engine.Submit refuses further submissions until one finishes.
	MaxJobs int
	// CacheShare caps the result-cache entries the tenant's finished jobs
	// may occupy, so one tenant's sweep storm cannot evict everyone else's
	// cached releases. Bounded by the engine-wide cache capacity either way.
	CacheShare int
}

// Quotas maps tenants to their quotas: PerTenant overrides win field by
// field, everything else gets Default. A nil *Quotas is entirely unlimited.
// Quotas is shared by pointer (engine, store, HTTP layer all hold the same
// one); SetPerTenant swaps the override table at runtime — the SIGHUP
// keys-file reload path — while For keeps reading consistently. Default is
// fixed at construction. Do not mutate PerTenant after sharing the value;
// replace it through SetPerTenant.
type Quotas struct {
	Default   Quota
	PerTenant map[string]Quota

	mu sync.RWMutex
}

// SetPerTenant atomically replaces the per-tenant override table. The map is
// adopted, not copied — callers must not mutate it afterwards.
func (q *Quotas) SetPerTenant(overrides map[string]Quota) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.PerTenant = overrides
	q.mu.Unlock()
}

// For returns the quota in force for a tenant. Overrides are PARTIAL: a
// zero field in the PerTenant entry inherits Default's value, so a keys
// file declaring only `tables=16` does not silently lift the operator's
// job and cache limits. An explicitly unlimited override is expressed with
// a negative value.
func (q *Quotas) For(tenant string) Quota {
	if q == nil {
		return Quota{}
	}
	q.mu.RLock()
	qt, ok := q.PerTenant[tenant]
	q.mu.RUnlock()
	if !ok {
		return q.Default
	}
	if qt.MaxTables == 0 {
		qt.MaxTables = q.Default.MaxTables
	}
	if qt.MaxJobs == 0 {
		qt.MaxJobs = q.Default.MaxJobs
	}
	if qt.CacheShare == 0 {
		qt.CacheShare = q.Default.CacheShare
	}
	return qt
}

// QuotaError reports a refused operation that would exceed a tenant quota.
// The HTTP layer maps it to 429 Too Many Requests.
type QuotaError struct {
	Tenant   string
	Resource string // "tables" or "jobs"
	Limit    int
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("service: tenant %q is at its %s quota (%d)", e.Tenant, e.Resource, e.Limit)
}
