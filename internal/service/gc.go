package service

import (
	"errors"
	"fmt"
)

// This file implements garbage collection of content-addressed result blobs.
// Blobs are written by logTerminal for every durable done job and are shared
// by content, so nothing deletes them eagerly: Engine.Delete, retention
// eviction and WAL compaction all leave the blob space alone. GCBlobs is the
// reclaim path: it walks the backend's blob space and deletes every blob not
// reachable from (a) a job still in the engine's log, (b) a result-cache
// entry, or (c) a stored table's content hash (defensive: table snapshots
// live in a separate space, but a backend is free to unify them).

// BlobInfo describes one content-addressed blob in a backend's blob space.
type BlobInfo struct {
	Hash  string
	Bytes int64
}

// BlobGC is the optional TableBackend extension blob garbage collection
// requires. Backends that do not implement it (the in-memory ones) simply
// cannot leak blobs across restarts, so GCBlobs refuses with ErrNoBlobGC.
type BlobGC interface {
	// ListBlobs enumerates every blob currently stored.
	ListBlobs() ([]BlobInfo, error)
	// DeleteBlob removes one blob; deleting an absent blob is not an error.
	DeleteBlob(hash string) error
}

// ErrNoBlobGC is returned by GCBlobs when the table backend has no blob
// enumeration support.
var ErrNoBlobGC = errors.New("service: table backend does not support blob GC")

// GCReport summarizes one blob garbage-collection pass.
type GCReport struct {
	// DryRun reports that nothing was deleted.
	DryRun bool `json:"dry_run"`
	// Scanned is the number of blobs enumerated.
	Scanned int `json:"scanned"`
	// Live is the number of blobs referenced by a job, cache entry or table.
	Live int `json:"live"`
	// Reclaimed counts unreferenced blobs deleted (or, on a dry run, that
	// would have been deleted).
	Reclaimed int `json:"reclaimed"`
	// BytesReclaimed is their cumulative size.
	BytesReclaimed int64 `json:"bytes_reclaimed"`
	// Unreferenced lists the reclaimable hashes on a dry run.
	Unreferenced []string `json:"unreferenced,omitempty"`
}

// GCBlobs deletes every result blob unreferenced by live jobs, the result
// cache, or the stored tables. With dryRun it only reports what a real pass
// would delete. It is safe to run while the engine is serving: the live set
// is computed from the engine's own job log, which every reachable blob hash
// passes through (logTerminal records it before the job becomes terminal,
// and recovery restores it), so a blob can never be observed unreferenced
// while a job that will reference it is in flight — jobs only reference
// blobs they themselves just wrote.
func (e *Engine) GCBlobs(dryRun bool) (GCReport, error) {
	gc, ok := e.store.backend.(BlobGC)
	if !ok {
		return GCReport{}, ErrNoBlobGC
	}
	live, err := e.liveBlobHashes()
	if err != nil {
		return GCReport{}, err
	}
	blobs, err := gc.ListBlobs()
	if err != nil {
		return GCReport{}, fmt.Errorf("service: list blobs: %w", err)
	}
	rep := GCReport{DryRun: dryRun, Scanned: len(blobs)}
	for _, b := range blobs {
		if live[b.Hash] {
			rep.Live++
			continue
		}
		if dryRun {
			rep.Unreferenced = append(rep.Unreferenced, b.Hash)
		} else if err := gc.DeleteBlob(b.Hash); err != nil {
			return rep, fmt.Errorf("service: delete blob %s: %w", b.Hash, err)
		}
		rep.Reclaimed++
		rep.BytesReclaimed += b.Bytes
	}
	e.metrics.gcRuns.With().Inc()
	if !dryRun {
		e.metrics.gcReclaimed.With().Add(float64(rep.Reclaimed))
		e.metrics.gcBytes.With().Add(float64(rep.BytesReclaimed))
	}
	e.logger.Info("blob gc pass",
		"dry_run", dryRun, "scanned", rep.Scanned, "live", rep.Live,
		"reclaimed", rep.Reclaimed, "bytes_reclaimed", rep.BytesReclaimed)
	return rep, nil
}

// liveBlobHashes computes the GC root set: every blob hash reachable from a
// job in the engine's log, a cached result's table, or a stored table.
func (e *Engine) liveBlobHashes() (map[string]bool, error) {
	live := make(map[string]bool)
	e.mu.RLock()
	jobs := make([]*job, 0, len(e.jobs))
	for _, j := range e.jobs {
		jobs = append(jobs, j)
	}
	e.mu.RUnlock()
	for _, j := range jobs {
		j.mu.Lock()
		if j.resultRec != nil && j.resultRec.TableHash != "" {
			live[j.resultRec.TableHash] = true
		}
		j.mu.Unlock()
	}
	// Cached results hold their tables in memory; hashing them re-derives
	// the content address their blob (if any) lives under. Hash outside the
	// cache lock — fingerprinting a large table is not cheap.
	var tables []*Result
	e.cache.Each(func(res *Result) { tables = append(tables, res) })
	for _, res := range tables {
		if res.Table == nil {
			continue
		}
		h, err := HashTable(res.Table)
		if err != nil {
			return nil, fmt.Errorf("service: hash cached result: %w", err)
		}
		live[h] = true
	}
	// Stored tables' content hashes, defensively: table snapshots live in a
	// separate space under diskstore, but the reachability contract ("not
	// referenced by tables.json") must not depend on that layout.
	for _, info := range e.store.ListAll() {
		if info.Hash != "" {
			live[info.Hash] = true
		}
	}
	return live, nil
}
