package service_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro"
	"repro/internal/dataset"
	"repro/internal/service"
)

// testFixture stores the standard university scenario's P and Q and returns
// the engine plus the table IDs and the scenario, for jobs that need real
// attack inputs.
func testFixture(t *testing.T, opts service.Options) (*service.Engine, string, string, *repro.Scenario) {
	t.Helper()
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 30})
	if err != nil {
		t.Fatal(err)
	}
	store := service.NewStore()
	pInfo, err := store.Put(service.DefaultTenant, "P", sc.P)
	if err != nil {
		t.Fatal(err)
	}
	qInfo, err := store.Put(service.DefaultTenant, "Q", sc.Q)
	if err != nil {
		t.Fatal(err)
	}
	e := service.NewEngine(store, opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		e.Shutdown(ctx)
	})
	return e, pInfo.ID, qInfo.ID, sc
}

func waitDone(t *testing.T, e *service.Engine, id string) service.Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := e.Wait(ctx, service.DefaultTenant, id)
	if err != nil {
		t.Fatalf("wait %s: %v (state %s)", id, err, st.State)
	}
	return st
}

func sweepSpec(p, q string) service.Spec {
	return service.Spec{
		Type: service.JobFREDSweep, Table: p, Aux: q,
		MinK: 2, MaxK: 10,
		SensitiveLo: 40000, SensitiveHi: 160000,
	}
}

func TestSubmitValidation(t *testing.T) {
	e, p, q, _ := testFixture(t, service.Options{Workers: 1})
	for name, spec := range map[string]service.Spec{
		"no type":       {Table: p},
		"unknown type":  {Type: "mine-bitcoin", Table: p},
		"no table":      {Type: service.JobAnonymize, K: 2},
		"unknown table": {Type: service.JobAnonymize, Table: "tbl-404", K: 2},
		"unknown aux":   {Type: service.JobAttack, Table: p, Aux: "tbl-404", K: 2, SensitiveLo: 1, SensitiveHi: 2},
		"bad scheme":    {Type: service.JobAnonymize, Table: p, K: 2, Scheme: "rot13"},
		"k too small":   {Type: service.JobAnonymize, Table: p, K: 1},
		"bad range":     {Type: service.JobFREDSweep, Table: p, Aux: q, MinK: 9, MaxK: 3, SensitiveLo: 1, SensitiveHi: 2},
		"no sensitive":  {Type: service.JobAttack, Table: p, Aux: q, K: 2},
	} {
		if _, err := e.Submit(service.DefaultTenant, spec); err == nil {
			t.Errorf("%s: expected a validation error", name)
		}
	}
}

func TestAnonymizeJob(t *testing.T) {
	e, p, _, sc := testFixture(t, service.Options{Workers: 2})
	e.Start()
	st, err := e.Submit(service.DefaultTenant, service.Spec{Type: service.JobAnonymize, Table: p, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, e, st.ID)
	if st.State != service.StateDone {
		t.Fatalf("state %s (%s), want done", st.State, st.Error)
	}
	res, err := e.Result(service.DefaultTenant, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != sc.P.NumRows() {
		t.Fatalf("release has %d rows, want %d", res.Table.NumRows(), sc.P.NumRows())
	}
	// The sensitive column must be suppressed in the release.
	for _, c := range res.Table.Schema().IndicesOf(dataset.Sensitive) {
		for r := 0; r < res.Table.NumRows(); r++ {
			if res.Table.Cell(r, c).Kind() != dataset.Null {
				t.Fatalf("row %d: sensitive cell not suppressed: %s", r, res.Table.Cell(r, c))
			}
		}
	}
}

func TestAttackAndAssessJobs(t *testing.T) {
	e, p, q, _ := testFixture(t, service.Options{Workers: 2})
	e.Start()

	atkSt, err := e.Submit(service.DefaultTenant, service.Spec{
		Type: service.JobAttack, Table: p, Aux: q, K: 4,
		SensitiveLo: 40000, SensitiveHi: 160000,
	})
	if err != nil {
		t.Fatal(err)
	}
	asSt, err := e.Submit(service.DefaultTenant, service.Spec{
		Type: service.JobAssess, Table: p, Aux: q, K: 4,
		SensitiveLo: 40000, SensitiveHi: 160000,
	})
	if err != nil {
		t.Fatal(err)
	}

	atk := waitDone(t, e, atkSt.ID)
	if atk.State != service.StateDone {
		t.Fatalf("attack state %s (%s)", atk.State, atk.Error)
	}
	if atk.Summary["after"] <= 0 || atk.Summary["before"] <= 0 {
		t.Fatalf("attack summary missing dissimilarities: %v", atk.Summary)
	}
	// Fusion must beat the no-fusion baseline: after < before.
	if atk.Summary["after"] >= atk.Summary["before"] {
		t.Fatalf("fusion did not gain: before %g, after %g", atk.Summary["before"], atk.Summary["after"])
	}

	as := waitDone(t, e, asSt.ID)
	if as.State != service.StateDone {
		t.Fatalf("assess state %s (%s)", as.State, as.Error)
	}
	res, err := e.Result(service.DefaultTenant, as.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assessment == nil || res.Assessment.Records != 30 {
		t.Fatalf("bad assessment: %+v", res.Assessment)
	}
}

func TestFREDSweepJobAndCache(t *testing.T) {
	e, p, q, _ := testFixture(t, service.Options{Workers: 2, SweepWorkers: 4})
	e.Start()

	st, err := e.Submit(service.DefaultTenant, sweepSpec(p, q))
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, e, st.ID)
	if st.State != service.StateDone {
		t.Fatalf("state %s (%s), want done", st.State, st.Error)
	}
	if st.Cached {
		t.Fatal("first sweep must not be a cache hit")
	}
	optK := int(st.Summary["optimal_k"])
	if optK < 2 || optK > 10 {
		t.Fatalf("optimal k %d outside the swept range", optK)
	}
	if st.Summary["levels"] < 3 {
		t.Fatalf("too few swept levels: %v", st.Summary)
	}
	res, err := e.Result(service.DefaultTenant, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table == nil || res.Table.NumRows() != 30 {
		t.Fatal("sweep result must carry the optimal release")
	}

	// An identical resubmission is served from the cache, instantly done.
	st2, err := e.Submit(service.DefaultTenant, sweepSpec(p, q))
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != service.StateDone || !st2.Cached {
		t.Fatalf("resubmission: state %s cached %v, want done from cache", st2.State, st2.Cached)
	}
	res2, err := e.Result(service.DefaultTenant, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res {
		t.Fatal("cache must return the shared result")
	}

	// A different config is a different cache key.
	other := sweepSpec(p, q)
	other.MaxK = 8
	st3, err := e.Submit(service.DefaultTenant, other)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Cached {
		t.Fatal("different config must miss the cache")
	}
	waitDone(t, e, st3.ID)
}

func TestCancelPendingJob(t *testing.T) {
	// Engine deliberately not started: the job stays pending in the queue.
	e, p, _, _ := testFixture(t, service.Options{Workers: 1})
	st, err := e.Submit(service.DefaultTenant, service.Spec{Type: service.JobAnonymize, Table: p, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Cancel(service.DefaultTenant, st.ID); err != nil {
		t.Fatal(err)
	}
	got := waitDone(t, e, st.ID)
	if got.State != service.StateCanceled {
		t.Fatalf("state %s, want canceled", got.State)
	}
	if _, err := e.Result(service.DefaultTenant, st.ID); err == nil {
		t.Fatal("canceled job must not yield a result")
	}
	// Canceling a terminal job is an explicit error, not a silent no-op.
	if err := e.Cancel(service.DefaultTenant, st.ID); !errors.Is(err, service.ErrAlreadyFinished) {
		t.Fatalf("cancel of terminal job: got %v, want ErrAlreadyFinished", err)
	}
}

func TestQueueFull(t *testing.T) {
	e, p, _, _ := testFixture(t, service.Options{Workers: 1, QueueDepth: 1})
	// Not started: the first submission fills the queue.
	if _, err := e.Submit(service.DefaultTenant, service.Spec{Type: service.JobAnonymize, Table: p, K: 2}); err != nil {
		t.Fatal(err)
	}
	_, err := e.Submit(service.DefaultTenant, service.Spec{Type: service.JobAnonymize, Table: p, K: 3})
	if !errors.Is(err, service.ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
}

func TestJobsListing(t *testing.T) {
	e, p, _, _ := testFixture(t, service.Options{Workers: 2})
	e.Start()
	var ids []string
	for k := 2; k <= 4; k++ {
		st, err := e.Submit(service.DefaultTenant, service.Spec{Type: service.JobAnonymize, Table: p, K: k})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitDone(t, e, id)
	}
	jobs := e.Jobs(service.DefaultTenant)
	if len(jobs) != len(ids) {
		t.Fatalf("Jobs: got %d, want %d", len(jobs), len(ids))
	}
	for i, st := range jobs {
		if st.ID != ids[i] {
			t.Fatalf("Jobs[%d] = %s, want %s (submission order)", i, st.ID, ids[i])
		}
		if st.State != service.StateDone {
			t.Fatalf("job %s state %s", st.ID, st.State)
		}
	}
	if _, err := e.Job(service.DefaultTenant, "job-404"); err == nil {
		t.Fatal("expected not-found for unknown job")
	}
}

func TestShutdownRejectsNewJobs(t *testing.T) {
	e, p, _, _ := testFixture(t, service.Options{Workers: 1})
	e.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(service.DefaultTenant, service.Spec{Type: service.JobAnonymize, Table: p, K: 2}); err == nil {
		t.Fatal("submit after shutdown must fail")
	}
}

func TestDeleteJob(t *testing.T) {
	e, p, _, _ := testFixture(t, service.Options{Workers: 1, CacheSize: -1})
	e.Start()
	st, err := e.Submit(service.DefaultTenant, service.Spec{Type: service.JobAnonymize, Table: p, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, e, st.ID)
	if err := e.Delete(service.DefaultTenant, st.ID); err != nil {
		t.Fatalf("delete finished job: %v", err)
	}
	if _, err := e.Job(service.DefaultTenant, st.ID); err == nil {
		t.Error("deleted job still listed")
	}
	var nf *service.ErrNotFound
	if err := e.Delete(service.DefaultTenant, st.ID); !errors.As(err, &nf) {
		t.Errorf("second delete = %v, want ErrNotFound", err)
	}
}

func TestDeleteRunningJobRefused(t *testing.T) {
	// Engine never started: the job stays pending (non-terminal) forever.
	e, p, _, _ := testFixture(t, service.Options{Workers: 1})
	st, err := e.Submit(service.DefaultTenant, service.Spec{Type: service.JobAnonymize, Table: p, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(service.DefaultTenant, st.ID); !errors.Is(err, service.ErrNotFinished) {
		t.Fatalf("delete pending job = %v, want ErrNotFinished", err)
	}
	if _, err := e.Job(service.DefaultTenant, st.ID); err != nil {
		t.Errorf("refused delete removed the job: %v", err)
	}
}

// collectEvents drains a Stream subscription to completion and returns the
// level events and the terminal status event.
func collectEvents(t *testing.T, ch <-chan service.Event) ([]service.Event, service.Event) {
	t.Helper()
	var levels []service.Event
	var terminal service.Event
	sawTerminal := false
	timeout := time.After(60 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				if !sawTerminal {
					t.Fatal("stream closed without a terminal status event")
				}
				return levels, terminal
			}
			if sawTerminal {
				t.Fatalf("event %q after the terminal status event", ev.Type)
			}
			switch ev.Type {
			case service.EventLevel:
				if ev.Level == nil {
					t.Fatal("level event without a level payload")
				}
				levels = append(levels, ev)
			case service.EventStatus:
				if ev.Status == nil || !ev.Status.State.Terminal() {
					t.Fatalf("status event not terminal: %+v", ev.Status)
				}
				terminal = ev
				sawTerminal = true
			default:
				t.Fatalf("unknown event type %q", ev.Type)
			}
		case <-timeout:
			t.Fatal("stream did not complete in time")
		}
	}
}

// TestStreamDeliversOrderedLevels: a Stream subscription on a running sweep
// sees every level in k order with per-level progress advancing, running
// calibration once three levels are in, and a terminal done status.
func TestStreamDeliversOrderedLevels(t *testing.T) {
	e, p, q, _ := testFixture(t, service.Options{Workers: 2, SweepWorkers: 4})
	e.Start()
	st, err := e.Submit(service.DefaultTenant, sweepSpec(p, q))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ch, err := e.Stream(ctx, service.DefaultTenant, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	levels, terminal := collectEvents(t, ch)
	if len(levels) < 2 {
		t.Fatalf("saw %d level events, want ≥ 2", len(levels))
	}
	prevProgress := 0.0
	for i, ev := range levels {
		if ev.Level.K != i+2 {
			t.Errorf("level event %d has k=%d, want %d (k-order)", i, ev.Level.K, i+2)
		}
		if ev.Progress <= prevProgress {
			t.Errorf("k=%d: progress %g did not advance past %g (per-level granularity)",
				ev.Level.K, ev.Progress, prevProgress)
		}
		prevProgress = ev.Progress
		if i >= 2 && ev.Calibration == nil {
			t.Errorf("k=%d: no running calibration after ≥ 3 levels", ev.Level.K)
		}
	}
	if terminal.Status.State != service.StateDone {
		t.Fatalf("terminal state %s (%s), want done", terminal.Status.State, terminal.Status.Error)
	}
	// The terminal snapshot carries the final level series with candidate
	// flags settled by calibration.
	if len(terminal.Status.Levels) != len(levels) {
		t.Errorf("terminal status has %d levels, stream delivered %d",
			len(terminal.Status.Levels), len(levels))
	}
	anyCandidate := false
	for _, ls := range terminal.Status.Levels {
		anyCandidate = anyCandidate || ls.Candidate
	}
	if !anyCandidate {
		t.Error("no candidate levels in the finished sweep's series")
	}
}

// TestStreamReplaysFinishedAndCachedJobs: subscribing after completion (or
// to a cache-hit job whose levels never streamed) replays the full series
// before the terminal status.
func TestStreamReplaysFinishedAndCachedJobs(t *testing.T) {
	e, p, q, _ := testFixture(t, service.Options{Workers: 2, SweepWorkers: 4})
	e.Start()
	st, err := e.Submit(service.DefaultTenant, sweepSpec(p, q))
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, e, st.ID)
	if st.State != service.StateDone {
		t.Fatalf("state %s (%s)", st.State, st.Error)
	}
	want := int(st.Summary["levels"])

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ch, err := e.Stream(ctx, service.DefaultTenant, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	levels, terminal := collectEvents(t, ch)
	if len(levels) != want {
		t.Fatalf("replay delivered %d level events, want %d", len(levels), want)
	}
	if terminal.Status.State != service.StateDone {
		t.Fatalf("terminal state %s", terminal.Status.State)
	}

	// The identical resubmission finishes instantly from the cache; its
	// stream still replays the level series.
	st2, err := e.Submit(service.DefaultTenant, sweepSpec(p, q))
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached {
		t.Fatal("resubmission must hit the cache")
	}
	ch2, err := e.Stream(ctx, service.DefaultTenant, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	levels2, terminal2 := collectEvents(t, ch2)
	if len(levels2) != want {
		t.Fatalf("cached replay delivered %d level events, want %d", len(levels2), want)
	}
	if terminal2.Status.State != service.StateDone || !terminal2.Status.Cached {
		t.Fatalf("cached terminal: state %s cached %v", terminal2.Status.State, terminal2.Status.Cached)
	}
}

// TestCancelRunningSweepMidFlight: cancelling a running fred-sweep
// propagates through the job context into the streaming executor, ending the
// job (and every Wait and Stream on it) promptly, with the partial level
// series preserved on the status.
func TestCancelRunningSweepMidFlight(t *testing.T) {
	// A big cohort and a wide range keep the sweep busy long enough that the
	// cancel provably lands mid-flight.
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 200})
	if err != nil {
		t.Fatal(err)
	}
	store := service.NewStore()
	pInfo, err := store.Put(service.DefaultTenant, "P", sc.P)
	if err != nil {
		t.Fatal(err)
	}
	qInfo, err := store.Put(service.DefaultTenant, "Q", sc.Q)
	if err != nil {
		t.Fatal(err)
	}
	e := service.NewEngine(store, service.Options{Workers: 1, SweepWorkers: 2})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		e.Shutdown(ctx)
	})

	st, err := e.Submit(service.DefaultTenant, service.Spec{
		Type: service.JobFREDSweep, Table: pInfo.ID, Aux: qInfo.ID,
		MinK: 2, MaxK: 100,
		SensitiveLo: 40000, SensitiveHi: 160000,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Subscribe while the job is still pending, then start the workers and
	// cancel as soon as the first level lands: the sweep still has ~98
	// levels to go, so a canceled terminal state can only mean mid-sweep
	// interruption.
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	ch, err := e.Stream(ctx, service.DefaultTenant, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	var sawLevel bool
	for ev := range ch {
		if ev.Type == service.EventLevel && !sawLevel {
			sawLevel = true
			if err := e.Cancel(service.DefaultTenant, st.ID); err != nil {
				t.Fatalf("cancel running job: %v", err)
			}
		}
		if ev.Type == service.EventStatus {
			if ev.Status.State != service.StateCanceled {
				t.Fatalf("terminal state %s, want canceled (cancel did not interrupt the sweep)", ev.Status.State)
			}
		}
	}
	if !sawLevel {
		t.Fatal("no level event before the job finished")
	}

	// Wait unblocks immediately on the done channel, and the partial levels
	// survive on the canceled status.
	st = waitDone(t, e, st.ID)
	if st.State != service.StateCanceled {
		t.Fatalf("state %s, want canceled", st.State)
	}
	if len(st.Levels) == 0 || len(st.Levels) >= 99 {
		t.Fatalf("canceled sweep kept %d partial levels, want a strict mid-sweep prefix", len(st.Levels))
	}
	if _, err := e.Result(service.DefaultTenant, st.ID); err == nil {
		t.Fatal("canceled job must not yield a result")
	}
}

func TestFinishedJobRetention(t *testing.T) {
	e, p, _, _ := testFixture(t, service.Options{Workers: 1, CacheSize: -1, MaxFinishedJobs: 3})
	e.Start()
	var ids []string
	for i := 0; i < 6; i++ {
		st, err := e.Submit(service.DefaultTenant, service.Spec{Type: service.JobAnonymize, Table: p, K: 2 + i})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, e, st.ID)
		ids = append(ids, st.ID)
	}
	if got := len(e.Jobs(service.DefaultTenant)); got != 3 {
		t.Fatalf("job log holds %d jobs, want 3 (retention)", got)
	}
	// The survivors are the newest three, in order.
	for _, id := range ids[:3] {
		if _, err := e.Job(service.DefaultTenant, id); err == nil {
			t.Errorf("evicted job %s still listed", id)
		}
	}
	for _, id := range ids[3:] {
		if _, err := e.Job(service.DefaultTenant, id); err != nil {
			t.Errorf("retained job %s missing: %v", id, err)
		}
	}
}

// TestTenantJobIsolationAndQuota: jobs are invisible across tenants (foreign
// IDs behave exactly like unknown ones), listings are disjoint, and the
// per-tenant MaxJobs quota refuses over-limit submissions without affecting
// other tenants.
func TestTenantJobIsolationAndQuota(t *testing.T) {
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 30})
	if err != nil {
		t.Fatal(err)
	}
	store := service.NewStore()
	aInfo, err := store.Put("acme", "P", sc.P)
	if err != nil {
		t.Fatal(err)
	}
	bInfo, err := store.Put("globex", "P", sc.P)
	if err != nil {
		t.Fatal(err)
	}
	// Engine not started: jobs stay pending, so the live-job quota bites.
	e := service.NewEngine(store, service.Options{
		Workers: 1,
		Quotas:  &service.Quotas{Default: service.Quota{MaxJobs: 1}},
	})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		e.Shutdown(ctx)
	})

	aJob, err := e.Submit("acme", service.Spec{Type: service.JobAnonymize, Table: aInfo.ID, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if aJob.Tenant != "acme" {
		t.Fatalf("job tenant %q, want acme", aJob.Tenant)
	}
	// acme is at its quota of 1 live job.
	var qe *service.QuotaError
	if _, err := e.Submit("acme", service.Spec{Type: service.JobAnonymize, Table: aInfo.ID, K: 3}); !errors.As(err, &qe) {
		t.Fatalf("over-quota submit = %v, want QuotaError", err)
	} else if qe.Resource != "jobs" || qe.Limit != 1 {
		t.Fatalf("quota error %+v", qe)
	}
	// globex has its own budget.
	bJob, err := e.Submit("globex", service.Spec{Type: service.JobAnonymize, Table: bInfo.ID, K: 2})
	if err != nil {
		t.Fatalf("other tenant's submit refused: %v", err)
	}

	// Foreign job IDs are not found — for every read and write path.
	var nf *service.ErrNotFound
	if _, err := e.Job("acme", bJob.ID); !errors.As(err, &nf) {
		t.Fatalf("foreign Job = %v, want ErrNotFound", err)
	}
	if _, err := e.Result("acme", bJob.ID); !errors.As(err, &nf) {
		t.Fatalf("foreign Result = %v, want ErrNotFound", err)
	}
	if err := e.Cancel("acme", bJob.ID); !errors.As(err, &nf) {
		t.Fatalf("foreign Cancel = %v, want ErrNotFound", err)
	}
	if err := e.Delete("acme", bJob.ID); !errors.As(err, &nf) {
		t.Fatalf("foreign Delete = %v, want ErrNotFound", err)
	}
	if _, err := e.Stream(context.Background(), "acme", bJob.ID); !errors.As(err, &nf) {
		t.Fatalf("foreign Stream = %v, want ErrNotFound", err)
	}
	// Listings are disjoint.
	if jobs := e.Jobs("acme"); len(jobs) != 1 || jobs[0].ID != aJob.ID {
		t.Fatalf("acme's job list %+v", jobs)
	}
	if jobs := e.Jobs("globex"); len(jobs) != 1 || jobs[0].ID != bJob.ID {
		t.Fatalf("globex's job list %+v", jobs)
	}
	// A tenant cancelling its own job frees its quota slot.
	if err := e.Cancel("acme", aJob.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit("acme", service.Spec{Type: service.JobAnonymize, Table: aInfo.ID, K: 4}); err != nil {
		t.Fatalf("submit after freeing the quota slot: %v", err)
	}
}

// TestTenantCacheIsolation: byte-identical tables and specs submitted by two
// tenants never share a cache entry — a cross-tenant hit would leak that the
// other tenant ran the same job — while a same-tenant resubmission still
// hits.
func TestTenantCacheIsolation(t *testing.T) {
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 30})
	if err != nil {
		t.Fatal(err)
	}
	store := service.NewStore()
	aInfo, err := store.Put("acme", "P", sc.P)
	if err != nil {
		t.Fatal(err)
	}
	aAux, err := store.Put("acme", "Q", sc.Q)
	if err != nil {
		t.Fatal(err)
	}
	bInfo, err := store.Put("globex", "P", sc.P)
	if err != nil {
		t.Fatal(err)
	}
	bAux, err := store.Put("globex", "Q", sc.Q)
	if err != nil {
		t.Fatal(err)
	}
	e := service.NewEngine(store, service.Options{Workers: 2, SweepWorkers: 4})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		e.Shutdown(ctx)
	})
	e.Start()

	st, err := e.Submit("acme", sweepSpec(aInfo.ID, aAux.ID))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if st, err = e.Wait(ctx, "acme", st.ID); err != nil || st.State != service.StateDone {
		t.Fatalf("acme sweep: %v (%s %s)", err, st.State, st.Error)
	}
	// Same tenant, identical submission: cache hit.
	st2, err := e.Submit("acme", sweepSpec(aInfo.ID, aAux.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached {
		t.Fatal("same-tenant resubmission must hit the cache")
	}
	// Other tenant, byte-identical tables and spec: must NOT hit.
	st3, err := e.Submit("globex", sweepSpec(bInfo.ID, bAux.ID))
	if err != nil {
		t.Fatal(err)
	}
	if st3.Cached {
		t.Fatal("cross-tenant cache hit leaks another tenant's activity")
	}
	if st3, err = e.Wait(ctx, "globex", st3.ID); err != nil || st3.State != service.StateDone {
		t.Fatalf("globex sweep: %v (%s %s)", err, st3.State, st3.Error)
	}
}
