package service

import (
	"fmt"
	"sort"
)

// This file implements online WAL compaction: CompactLog rewrites the
// durable job log down to its live image while the engine is serving, so a
// long-lived process does not depend on restarts (Engine.Recover) to shrink
// its log. The write path already serializes every append through walMu;
// CompactLog holds the same mutex for the whole rewrite, so the compacted
// image plus subsequent appends is exactly the record sequence a restart
// would have produced.

// CompactLog rewrites the job log to the live image of the engine's current
// state: for every job still in the log, its submission record, retained
// level checkpoints (with their original sequence numbers, so resume cursors
// survive), a journaled-but-unfinished cancellation if any, and the terminal
// status + result projection. Jobs deleted or evicted from the log simply do
// not appear. Appends are blocked for the duration; level checkpoints (the
// only high-frequency appends) block on walMu anyway, so this adds latency,
// not a new failure mode.
func (e *Engine) CompactLog() error {
	e.walMu.Lock()
	defer e.walMu.Unlock()

	e.mu.RLock()
	jobs := make([]*job, 0, len(e.jobs))
	for _, j := range e.jobs {
		jobs = append(jobs, j)
	}
	maxJobSeq := e.seq
	e.mu.RUnlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })

	live := []*WALRecord{{Seq: e.eventSeq, Kind: WALMark, JobSeq: maxJobSeq}}
	for _, j := range jobs {
		live = append(live, j.walImage()...)
	}
	if err := e.opts.JobLog.CompactWAL(live); err != nil {
		return fmt.Errorf("service: compact job log: %w", err)
	}
	return nil
}

// walImage renders one job's live WAL records, in the same kind order the
// original appends used (job, levels, cancel, status). Sequence numbers of
// level and status records are the original durable ones — they are the
// resume cursors subscribers hold. Events without a durable seq (failed
// appends, skips) are not re-journaled, matching what recovery would keep.
func (j *job) walImage() []*WALRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.status
	created := st.Created
	out := []*WALRecord{{
		Seq: j.firstSeqLocked(), Kind: WALJob, Ver: walSpecVersion,
		JobID: st.ID, JobSeq: j.seq, Tenant: st.Tenant, Spec: &j.spec, Created: &created,
	}}
	for i := range j.events {
		ev := &j.events[i]
		if ev.Type != EventLevel || ev.Seq == 0 {
			continue
		}
		out = append(out, &WALRecord{
			Seq: ev.Seq, Kind: WALLevel, JobID: st.ID,
			Level: ev.Level, Calibration: ev.Calibration,
			Progress: ev.Progress, Source: ev.Source,
		})
	}
	if st.State.Terminal() {
		stCopy := st
		out = append(out, &WALRecord{
			Seq: j.termSeq, Kind: WALStatus, JobID: st.ID,
			Status: &stCopy, Result: j.resultRec,
		})
	} else if j.cancelRequested {
		// Cancel journaled, worker still unwinding: preserve the record, or
		// a crash before the terminal append would re-run a canceled job.
		out = append(out, &WALRecord{Seq: j.cancelSeq, Kind: WALCancel, JobID: st.ID})
	}
	return out
}

// firstSeqLocked reconstructs a plausible sequence number for the job's
// submission record, strictly below its first retained checkpoint and
// terminal record — the compacted-log counterpart of recovery's firstSeqOf.
// Callers hold j.mu.
func (j *job) firstSeqLocked() uint64 {
	if j.droppedSeq > 0 {
		return j.droppedSeq // truncated prefix: anything below the tail works
	}
	for i := range j.events {
		if j.events[i].Seq > 0 {
			return j.events[i].Seq - 1
		}
	}
	if j.termSeq > 0 {
		return j.termSeq - 1
	}
	return 0
}
