package service

import (
	"context"
)

// EventType discriminates streamed job events.
type EventType string

// The event types. A job's stream is zero or more level events followed by
// exactly one status event carrying the terminal snapshot.
const (
	// EventLevel reports one completed sweep level, in ascending k order.
	EventLevel EventType = "level"
	// EventStatus carries the terminal status snapshot and always closes the
	// stream.
	EventStatus EventType = "status"
)

// Calibration carries the running threshold calibration — CalibrateThresholds
// over the levels streamed so far. It accompanies level events once at least
// three levels have completed, so a subscriber watching a long sweep sees
// where the thresholds are converging before the sweep ends.
type Calibration struct {
	Tp float64 `json:"tp"`
	Tu float64 `json:"tu"`
}

// Event is one incremental update from a job's execution, delivered through
// Engine.Stream and the GET /v1/jobs/{id}/events endpoint.
type Event struct {
	Type EventType `json:"type"`
	// Job is the emitting job's ID.
	Job string `json:"job"`
	// Level is the completed level for level events. Its Candidate flag is
	// authoritative only when the job's thresholds were explicit; under
	// auto-calibration candidacy is decided once the sweep completes and the
	// terminal result carries the final flags.
	Level *LevelSummary `json:"level,omitempty"`
	// Calibration is the running (Tp, Tu) over the prefix, for level events
	// with ≥ 3 levels behind them.
	Calibration *Calibration `json:"calibration,omitempty"`
	// Progress mirrors Status.Progress at emission time.
	Progress float64 `json:"progress,omitempty"`
	// Status is the terminal snapshot, set only on status events.
	Status *Status `json:"status,omitempty"`
}

// Stream subscribes to a job's event feed. The returned channel first
// replays every event the job has already recorded (so late subscribers see
// the full per-level series), then delivers live events as levels complete,
// then a final status event with the terminal snapshot, and closes. For a
// job that is already terminal — including cache hits, whose levels were
// never streamed — the recorded or result-derived levels are replayed before
// the status event. Cancelling ctx detaches the subscriber; the job itself
// is unaffected.
func (e *Engine) Stream(ctx context.Context, id string) (<-chan Event, error) {
	j, err := e.get(id)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	out := make(chan Event, 8)
	go func() {
		defer close(out)
		i := 0
		for {
			evs, notify, terminal := j.eventsSince(i)
			if terminal && i == 0 && len(evs) == 0 {
				// Terminal with nothing recorded (a cache hit, or a job that
				// finished before event recording existed): synthesize the
				// level series from the result so the stream stays useful.
				evs = j.replayEvents()
			}
			for _, ev := range evs {
				select {
				case out <- ev:
				case <-ctx.Done():
					return
				}
				i++
			}
			if terminal {
				st := j.snapshot()
				select {
				case out <- Event{Type: EventStatus, Job: st.ID, Progress: st.Progress, Status: &st}:
				case <-ctx.Done():
				}
				return
			}
			select {
			case <-notify:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out, nil
}

// eventsSince returns the events recorded at index i and beyond, the channel
// closed at the next broadcast, and whether the job is terminal. Recorded
// events are append-only and immutable, so the returned slice is safe to
// read without the lock.
func (j *job) eventsSince(i int) ([]Event, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.events[i:], j.notify, j.status.State.Terminal()
}

// replayEvents synthesizes level events from a terminal job's result, for
// subscribers to jobs whose levels were never streamed (cache hits).
func (j *job) replayEvents() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result == nil || len(j.result.Levels) == 0 {
		return nil
	}
	cal := &Calibration{Tp: j.result.Tp, Tu: j.result.Tu}
	evs := make([]Event, len(j.result.Levels))
	for i := range j.result.Levels {
		lev := j.result.Levels[i]
		evs[i] = Event{
			Type:        EventLevel,
			Job:         j.status.ID,
			Level:       &lev,
			Calibration: cal,
			Progress:    j.status.Progress,
		}
	}
	return evs
}

// recordLevel stores a completed sweep level on the running job, advances
// progress, and publishes the level event to subscribers. It is a no-op once
// the job is terminal (a cancel can race the last in-flight level).
func (j *job) recordLevel(ls LevelSummary, cal *Calibration, progress float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.State.Terminal() {
		return
	}
	j.status.Levels = append(j.status.Levels, ls)
	j.status.Progress = progress
	lev := ls
	j.events = append(j.events, Event{
		Type:        EventLevel,
		Job:         j.status.ID,
		Level:       &lev,
		Calibration: cal,
		Progress:    progress,
	})
	j.broadcastLocked()
}

// broadcastLocked wakes every subscriber blocked on the current notify
// channel. Callers must hold j.mu.
func (j *job) broadcastLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}
