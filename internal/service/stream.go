package service

import (
	"context"
)

// EventType discriminates streamed job events.
type EventType string

// The event types. A job's stream is zero or more level events followed by
// exactly one status event carrying the terminal snapshot.
const (
	// EventLevel reports one completed sweep level — ascending k order for
	// classic range sweeps; evaluation order (probes jump) for adaptive
	// jobs, each level tagged with its Source.
	EventLevel EventType = "level"
	// EventSkip reports a contiguous run of requested levels an adaptive
	// sweep decided not to evaluate, with the reason (bisection, deadline,
	// infeasible). Skip events have no durable identity (seq 0) and are
	// always replayed.
	EventSkip EventType = "skip"
	// EventStatus carries the terminal status snapshot and always closes the
	// stream.
	EventStatus EventType = "status"
)

// Skip is the payload of an EventSkip: the inclusive level range and why the
// planner skipped it.
type Skip struct {
	FromK  int    `json:"from_k"`
	ToK    int    `json:"to_k"`
	Reason string `json:"reason"`
}

// Calibration carries the running threshold calibration — CalibrateThresholds
// over the levels streamed so far. It accompanies level events once at least
// three levels have completed, so a subscriber watching a long sweep sees
// where the thresholds are converging before the sweep ends.
type Calibration struct {
	Tp float64 `json:"tp"`
	Tu float64 `json:"tu"`
}

// Event is one incremental update from a job's execution, delivered through
// Engine.Stream and the GET /v1/jobs/{id}/events endpoint.
type Event struct {
	Type EventType `json:"type"`
	// Seq is the engine-wide monotonic event sequence number, shared with
	// the durable job log: it is the resume cursor for Last-Event-ID /
	// ?after= reconnects. Zero on synthesized replay events (cache hits),
	// which have no durable identity and are always resent.
	Seq uint64 `json:"seq,omitempty"`
	// Job is the emitting job's ID.
	Job string `json:"job"`
	// Level is the completed level for level events. Its Candidate flag is
	// authoritative only when the job's thresholds were explicit; under
	// auto-calibration candidacy is decided once the sweep completes and the
	// terminal result carries the final flags.
	Level *LevelSummary `json:"level,omitempty"`
	// Source distinguishes how a level event's numbers were obtained:
	// "" (computed by this job) or "warm" (seeded from the cross-job level
	// index).
	Source string `json:"source,omitempty"`
	// Skip is the skipped range, set only on skip events.
	Skip *Skip `json:"skip,omitempty"`
	// Calibration is the running (Tp, Tu) over the prefix, for level events
	// with ≥ 3 levels behind them.
	Calibration *Calibration `json:"calibration,omitempty"`
	// Progress mirrors Status.Progress at emission time.
	Progress float64 `json:"progress,omitempty"`
	// Status is the terminal snapshot, set only on status events.
	Status *Status `json:"status,omitempty"`
}

// Stream subscribes to a job's event feed. The returned channel first
// replays every event the job has already recorded (so late subscribers see
// the full per-level series), then delivers live events as levels complete,
// then a final status event with the terminal snapshot, and closes. For a
// job that is already terminal — including cache hits, whose levels were
// never streamed — the recorded or result-derived levels are replayed before
// the status event. Cancelling ctx detaches the subscriber; the job itself
// is unaffected. The job must live in tenant's namespace; foreign IDs are
// not found.
func (e *Engine) Stream(ctx context.Context, tenant, id string) (<-chan Event, error) {
	return e.StreamAfter(ctx, tenant, id, 0)
}

// StreamAfter is Stream with a resume cursor: recorded events whose sequence
// number is at or below after are skipped, so a reconnecting client that
// remembers the last seq it processed (the SSE Last-Event-ID) resumes
// without the replay. Synthesized replay events (seq 0, cache hits) and the
// terminal status event are always delivered.
func (e *Engine) StreamAfter(ctx context.Context, tenant, id string, after uint64) (<-chan Event, error) {
	j, err := e.get(tenant, id)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	out := make(chan Event, 8)
	go func() {
		defer close(out)
		i := 0           // absolute index into the job's full event history
		lastSeq := after // highest durable seq this subscriber has consumed
		levelsSeen := 0  // level events delivered, for gap-free synthesis
		send := func(ev Event) bool {
			select {
			case out <- ev:
				return true
			case <-ctx.Done():
				return false
			}
		}
		for {
			w := j.eventWindow(i)
			if i < w.base {
				// Events this subscriber has not consumed were truncated away
				// (terminal jobs only — see truncateEvents). If everything
				// unseen is still in the retained tail, skip ahead and let the
				// cursor filter below do its usual work; otherwise synthesize
				// the level series from the result — the same replay the
				// cache-hit path uses — skipping levels already delivered.
				if lastSeq > 0 && lastSeq >= w.droppedSeq {
					i = w.base
					continue
				}
				synth := j.replayEvents()
				for _, ev := range synth[min(levelsSeen, len(synth)):] {
					if !send(ev) {
						return
					}
				}
				levelsSeen = len(synth)
				i = w.total
				continue
			}
			evs := w.evs
			if w.terminal && i == 0 && len(evs) == 0 {
				// Terminal with nothing recorded (a cache hit, or a job that
				// finished before event recording existed): synthesize the
				// level series from the result so the stream stays useful.
				evs = j.replayEvents()
			}
			for _, ev := range evs {
				i++
				if ev.Seq > lastSeq {
					lastSeq = ev.Seq
				}
				if ev.Type == EventLevel {
					levelsSeen++
				}
				if after > 0 && ev.Seq != 0 && ev.Seq <= after {
					continue
				}
				if !send(ev) {
					return
				}
			}
			if w.terminal {
				st := j.snapshot()
				j.mu.Lock()
				seq := j.termSeq
				j.mu.Unlock()
				send(Event{Type: EventStatus, Seq: seq, Job: st.ID, Progress: st.Progress, Status: &st})
				return
			}
			select {
			case <-w.notify:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out, nil
}

// eventWindow is one consistent snapshot of a job's event log as seen from
// absolute index i: the retained events at i and beyond, the absolute index
// range the in-memory log covers, and the truncation high-water mark.
type eventWindow struct {
	evs        []Event // retained events from index max(i, base)
	base       int     // absolute index of the first retained event
	total      int     // absolute index just past the last recorded event
	droppedSeq uint64  // highest seq among truncated events (0 if none)
	terminal   bool
	notify     <-chan struct{}
}

// eventWindow snapshots the log for a subscriber at absolute index i.
// Retained events are immutable and truncation replaces the backing slice,
// so the returned slice is safe to read without the lock.
func (j *job) eventWindow(i int) eventWindow {
	j.mu.Lock()
	defer j.mu.Unlock()
	w := eventWindow{
		base:       j.eventsBase,
		total:      j.eventsBase + len(j.events),
		droppedSeq: j.droppedSeq,
		terminal:   j.status.State.Terminal(),
		notify:     j.notify,
	}
	if i >= j.eventsBase {
		w.evs = j.events[i-j.eventsBase:]
	}
	return w
}

// truncateEvents drops a terminal job's event-log prefix beyond the
// Options.MaxJobEvents retention bound. It runs only after the terminal WAL
// record (and result blob, on durable stores) landed, so nothing is lost:
// subscribers behind the truncation point fall back to the synthesized
// result replay, which the cache-hit path already exercises.
func (e *Engine) truncateEvents(j *job) {
	keep := e.opts.MaxJobEvents
	if keep < 0 {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.status.State.Terminal() {
		return
	}
	drop := len(j.events) - keep
	if drop <= 0 {
		return
	}
	for _, ev := range j.events[:drop] {
		if ev.Seq > j.droppedSeq {
			j.droppedSeq = ev.Seq
		}
	}
	tail := make([]Event, keep)
	copy(tail, j.events[drop:])
	j.events = tail
	j.eventsBase += drop
	// Wake parked subscribers so stragglers switch to the synthesized replay
	// immediately instead of at the next broadcast.
	j.broadcastLocked()
}

// replayEvents synthesizes level events from a terminal job's result — or,
// for result-less terminal jobs (canceled, failed), from the status's level
// prefix — for subscribers whose position in the log was never recorded
// (cache hits) or was truncated away.
func (j *job) replayEvents() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	levels := j.status.Levels
	var cal *Calibration
	if j.result != nil && len(j.result.Levels) > 0 {
		levels = j.result.Levels
		cal = &Calibration{Tp: j.result.Tp, Tu: j.result.Tu}
	}
	if len(levels) == 0 {
		return nil
	}
	evs := make([]Event, len(levels))
	for i := range levels {
		lev := levels[i]
		evs[i] = Event{
			Type:        EventLevel,
			Job:         j.status.ID,
			Level:       &lev,
			Calibration: cal,
			Progress:    j.status.Progress,
		}
	}
	return evs
}

// recordLevel checkpoints a completed sweep level: the WAL record is
// appended first (durability before visibility — a level a subscriber has
// seen is a level recovery can replay), then the level is stored on the
// running job, progress advances, and the event is published to
// subscribers. It is a no-op once the job is terminal (a cancel can race
// the last in-flight level; the stray WAL checkpoint lands after the
// terminal record and recovery discards it, so the rebuilt event feed
// always agrees with Status.Levels).
func (e *Engine) recordLevel(j *job, ls LevelSummary, cal *Calibration, progress float64, source string) {
	lev := ls
	seq, err := e.appendWAL(&WALRecord{
		Kind:        WALLevel,
		JobID:       j.status.ID,
		Level:       &lev,
		Calibration: cal,
		Progress:    progress,
		Source:      source,
	})
	if err != nil {
		// The checkpoint never became durable, so the event must not carry
		// its sequence number: after a crash the recovered counter would
		// reissue it to a different event, and a client resuming from this
		// cursor would silently skip that event. Seq 0 means "no durable
		// identity — always resent", which is exactly right here.
		seq = 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.State.Terminal() {
		return
	}
	j.status.Levels = append(j.status.Levels, ls)
	j.status.Progress = progress
	j.events = append(j.events, Event{
		Type:        EventLevel,
		Seq:         seq,
		Job:         j.status.ID,
		Level:       &lev,
		Calibration: cal,
		Progress:    progress,
		Source:      source,
	})
	j.broadcastLocked()
}

// recordSkip publishes a planner skip range to subscribers. Skips are not
// WAL-checkpointed — an adaptive job interrupted by a crash re-plans from
// scratch anyway (its checkpoints are non-contiguous and recovery discards
// them) — so the event carries no durable sequence number and is always
// replayed to reconnecting subscribers.
func (e *Engine) recordSkip(j *job, sk Skip) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.State.Terminal() {
		return
	}
	j.events = append(j.events, Event{
		Type: EventSkip,
		Job:  j.status.ID,
		Skip: &sk,
	})
	j.broadcastLocked()
}

// broadcastLocked wakes every subscriber blocked on the current notify
// channel. Callers must hold j.mu.
func (j *job) broadcastLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}
