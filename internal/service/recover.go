package service

import (
	"context"
	"fmt"
	"sort"
	"time"
)

// This file implements crash recovery: Engine.Recover replays the durable
// job log after Store.Open reloaded the tables, rebuilds terminal jobs
// (results included, via the table backend's blob space), re-submits
// interrupted jobs — fred-sweeps with a StartK resume point seeded from
// their checkpointed levels, so they continue instead of restarting — and
// compacts the log to the live image. It also hosts the table TTL sweep,
// which consults the live-job set recovery re-established.

// RecoveredJob describes one job Engine.Recover restored or re-submitted.
type RecoveredJob struct {
	Status Status
	// Resumed reports that the job was interrupted by the crash and has
	// been re-submitted; for fred-sweeps with checkpointed levels the
	// re-run continues from the checkpoint instead of restarting.
	Resumed bool
}

// replayedJob accumulates one job's WAL records during replay.
type replayedJob struct {
	id      string
	seq     int
	tenant  string
	spec    Spec
	created time.Time
	deleted bool

	levels    []WALRecord // kind "level", in append order
	status    *Status
	statusSeq uint64
	result    *ResultRecord
	canceled  bool
	cancelSeq uint64
}

// Recover rebuilds the engine from the job log. It must run after
// Store.Open and before Start and the first Submit: recovered jobs reclaim
// their original IDs, and re-submitted jobs are placed on the (not yet
// consumed) queue. The log is compacted to the live image afterwards, so it
// does not grow across restarts. The returned slice describes every
// recovered job, re-submitted ones first marked Resumed.
func (e *Engine) Recover() ([]RecoveredJob, error) {
	byID := make(map[string]*replayedJob)
	var order []string
	var maxSeq uint64
	var maxJobSeq int
	err := e.opts.JobLog.ReplayWAL(func(rec WALRecord) error {
		if rec.Ver > walSpecVersion {
			// A log written by a newer build: its spec vocabulary may carry
			// fields this build would silently drop, turning a resumed job
			// into a different job. Refuse loudly.
			return fmt.Errorf("record %d has spec version %d, this build understands ≤ %d",
				rec.Seq, rec.Ver, walSpecVersion)
		}
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
		if rec.Kind == WALMark {
			// Compaction high-water marker: restore the counters even though
			// the records that produced them are gone.
			if rec.JobSeq > maxJobSeq {
				maxJobSeq = rec.JobSeq
			}
			return nil
		}
		rj := byID[rec.JobID]
		if rj == nil {
			rj = &replayedJob{id: rec.JobID}
			byID[rec.JobID] = rj
			order = append(order, rec.JobID)
		}
		switch rec.Kind {
		case WALJob:
			if rec.Spec != nil {
				rj.spec = *rec.Spec
			}
			rj.seq = rec.JobSeq
			// The default-tenant migration: job records written before
			// multi-tenancy carry no tenant and are adopted into
			// DefaultTenant, matching Store.Open's adoption of untagged
			// table metadata.
			rj.tenant = rec.Tenant
			if rj.tenant == "" {
				rj.tenant = DefaultTenant
			}
			if rec.Created != nil {
				rj.created = *rec.Created
			}
			if rec.JobSeq > maxJobSeq {
				maxJobSeq = rec.JobSeq
			}
		case WALLevel:
			rj.levels = append(rj.levels, rec)
		case WALStatus:
			rj.status = rec.Status
			rj.statusSeq = rec.Seq
			rj.result = rec.Result
		case WALCancel:
			rj.canceled = true
			rj.cancelSeq = rec.Seq
		case WALDelete:
			rj.deleted = true
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("service: replay job log: %w", err)
	}

	e.mu.Lock()
	e.seq = maxJobSeq
	e.mu.Unlock()
	e.walMu.Lock()
	e.eventSeq = maxSeq
	e.walMu.Unlock()

	sort.SliceStable(order, func(i, k int) bool { return byID[order[i]].seq < byID[order[k]].seq })

	var live []*WALRecord
	if maxSeq > 0 || maxJobSeq > 0 {
		// Lead the compacted log with the high-water marker, so counters
		// survive even if every job below was deleted or compacted away.
		live = append(live, &WALRecord{Seq: maxSeq, Kind: WALMark, JobSeq: maxJobSeq})
	}
	var recovered []RecoveredJob
	var interrupted []*job
	for _, id := range order {
		rj := byID[id]
		if rj.deleted || rj.spec.Type == "" {
			// Retracted, or a stray record without its submission (e.g. the
			// job record itself was the torn final line): drop it.
			continue
		}
		if rj.status == nil && rj.canceled {
			// Cancelled, but the crash beat the worker to the terminal
			// record: synthesize the canceled terminal state the worker
			// would have written, instead of re-running an explicitly
			// cancelled job. Checkpoints past the cancel are trimmed below,
			// so the preserved level series is the same strict prefix a
			// live cancel keeps.
			rj.statusSeq = rj.cancelSeq
			now := time.Now()
			rj.status = &Status{
				ID: rj.id, Tenant: rj.tenant, Type: rj.spec.Type, State: StateCanceled,
				Error: "canceled", Created: rj.created, Finished: &now,
			}
			for _, rec := range rj.levels {
				if rec.Level != nil && rec.Seq < rj.cancelSeq {
					rj.status.Levels = append(rj.status.Levels, *rec.Level)
				}
			}
		}
		if rj.statusSeq > 0 {
			// Drop checkpoints recorded after the terminal record: a cancel
			// racing the last in-flight level can append one stray WALLevel
			// the live stream never delivered, and replaying it would make
			// the rebuilt event feed disagree with Status.Levels.
			kept := rj.levels[:0]
			for _, rec := range rj.levels {
				if rec.Seq < rj.statusSeq {
					kept = append(kept, rec)
				}
			}
			rj.levels = kept
		}
		created := rj.created
		live = append(live, &WALRecord{
			Seq: firstSeqOf(rj), Kind: WALJob, JobID: rj.id,
			JobSeq: rj.seq, Tenant: rj.tenant, Spec: &rj.spec, Created: &created,
		})
		// Checkpoints stay in the compacted log for every job: interrupted
		// jobs resume from them after a second crash, and terminal jobs keep
		// their event feed — and therefore their subscribers' resume cursors
		// — valid across any number of restarts.
		for i := range rj.levels {
			rec := rj.levels[i]
			live = append(live, &rec)
		}
		if rj.status != nil && rj.status.State.Terminal() {
			j := e.rebuildTerminal(rj)
			live = append(live, &WALRecord{
				Seq: j.termSeq, Kind: WALStatus, JobID: rj.id,
				Status: rj.status, Result: rj.result,
			})
			recovered = append(recovered, RecoveredJob{Status: j.snapshot()})
			continue
		}
		j := e.rebuildInterrupted(rj)
		interrupted = append(interrupted, j)
		recovered = append(recovered, RecoveredJob{Status: j.snapshot(), Resumed: true})
	}
	if err := e.opts.JobLog.CompactWAL(live); err != nil {
		return nil, fmt.Errorf("service: compact job log: %w", err)
	}
	e.sortFinished()
	for _, j := range interrupted {
		e.resubmit(j)
	}
	return recovered, nil
}

// firstSeqOf reconstructs the sequence number of a job's submission record:
// strictly below its first checkpoint and terminal record, preserving WAL
// kind ordering through compaction. The exact value is otherwise
// insignificant — cursors only ever name level and status records.
func firstSeqOf(rj *replayedJob) uint64 {
	if len(rj.levels) > 0 && rj.levels[0].Seq > 0 {
		return rj.levels[0].Seq - 1
	}
	if rj.statusSeq > 0 {
		return rj.statusSeq - 1
	}
	return 0
}

// rebuildTerminal restores a finished job into the engine's log: status,
// per-level events (for Stream replay), and — for done jobs — the Result,
// its table reloaded from the blob space. A missing or unreadable blob
// degrades to a result-less job rather than failing recovery.
func (e *Engine) rebuildTerminal(rj *replayedJob) *job {
	j := &job{
		status:  *rj.status,
		seq:     rj.seq,
		spec:    rj.spec,
		done:    make(chan struct{}),
		notify:  make(chan struct{}),
		termSeq: rj.statusSeq,
	}
	if j.status.Tenant == "" {
		// Terminal records written before multi-tenancy: the migrated
		// tenant from the job record carries over.
		j.status.Tenant = rj.tenant
	}
	close(j.done)
	j.events = eventsFromCheckpoints(rj)
	if n := len(rj.status.Levels) - len(j.events); n > 0 && len(j.events) > 0 {
		// The durable log carries only a truncated tail of the level series
		// (online compaction ran after event truncation): restore the base
		// offset so resuming subscribers keep getting the same synthesized
		// result replay they would have gotten before the restart.
		j.eventsBase = n
		if s := j.events[0].Seq; s > 0 {
			j.droppedSeq = s - 1
		}
	}
	j.resultRec = rj.result
	if rj.status.State == StateDone && rj.result != nil {
		res := &Result{
			Levels:     rj.result.Levels,
			OptimalK:   rj.result.OptimalK,
			Hmax:       rj.result.Hmax,
			Tp:         rj.result.Tp,
			Tu:         rj.result.Tu,
			Evaluated:  rj.result.Evaluated,
			Partial:    rj.result.Partial,
			Before:     rj.result.Before,
			After:      rj.result.After,
			Assessment: rj.result.Assessment,
		}
		if rj.result.TableHash != "" {
			if t, err := e.store.Blob(rj.result.TableHash); err == nil {
				res.Table = t
			}
		}
		j.result = res
		e.reseedCache(j, res)
	}
	// Recovered terminal jobs obey the same replay-buffer bound as live ones.
	e.truncateEvents(j)
	e.mu.Lock()
	e.jobs[j.status.ID] = j
	e.finished = append(e.finished, j)
	e.mu.Unlock()
	return j
}

// eventsFromCheckpoints rebuilds the per-job event feed from WAL level
// records, preserving the original sequence numbers so reconnecting
// subscribers' cursors stay valid across the restart.
func eventsFromCheckpoints(rj *replayedJob) []Event {
	if len(rj.levels) == 0 {
		return nil
	}
	evs := make([]Event, 0, len(rj.levels))
	for _, rec := range rj.levels {
		evs = append(evs, Event{
			Type:        EventLevel,
			Seq:         rec.Seq,
			Job:         rj.id,
			Level:       rec.Level,
			Calibration: rec.Calibration,
			Progress:    rec.Progress,
			Source:      rec.Source,
		})
	}
	return evs
}

// reseedCache re-registers a recovered done job's result under its cache
// key, so identical post-restart submissions hit the cache exactly as they
// would have before the crash. Jobs whose input tables are gone (deleted,
// or TTL-evicted) are skipped — their key can no longer be formed.
func (e *Engine) reseedCache(j *job, res *Result) {
	if res.Table == nil && j.status.Type != JobAssess {
		return // incomplete rebuild (missing blob): don't serve it from cache
	}
	_, _, key, _, err := e.resolveInputs(j.status.Tenant, j.spec)
	if err != nil {
		return
	}
	e.cache.Put(j.status.Tenant, key, res, e.opts.Quotas.For(j.status.Tenant).CacheShare)
}

// rebuildInterrupted reconstructs an interrupted job as pending, seeded
// with its checkpointed levels: Status.Levels and the event feed replay the
// prefix, and a fred-sweep resumes at the first uncheckpointed level.
func (e *Engine) rebuildInterrupted(rj *replayedJob) *job {
	ctx, cancel := context.WithCancel(e.baseCtx)
	j := &job{
		status: Status{
			ID: rj.id, Tenant: rj.tenant, Type: rj.spec.Type, State: StatePending,
			Created: rj.created, Resumed: true,
		},
		seq:    rj.seq,
		spec:   rj.spec,
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
		notify: make(chan struct{}),
	}
	// Adaptive sweeps re-plan from scratch: their checkpoints arrive in
	// evaluation order (probes jump), which the StartK resume machinery
	// cannot splice, and a re-run warm-starts from the level index anyway.
	if rj.spec.Type == JobFREDSweep && len(rj.levels) > 0 && !rj.spec.adaptive() {
		seed := make([]LevelSummary, 0, len(rj.levels))
		for _, rec := range rj.levels {
			if rec.Level != nil {
				seed = append(seed, *rec.Level)
			}
		}
		// Emission is k-ordered and gap-free from MinK, so a healthy seed is
		// exactly MinK, MinK+1, …; verify it, because recordLevel tolerates
		// a dropped WAL append (durability degrades, not availability) and a
		// gapped seed spliced into a resumed sweep would duplicate or skip
		// levels. A gapped seed is discarded — the sweep re-runs from
		// scratch, which is always correct.
		contiguous := true
		for i, ls := range seed {
			if ls.K != rj.spec.MinK+i {
				contiguous = false
				break
			}
		}
		if contiguous {
			j.resume = &resumeSeed{startK: seed[len(seed)-1].K + 1, levels: seed}
			j.status.Levels = seed
			j.events = eventsFromCheckpoints(rj)
			total := rj.spec.MaxK - rj.spec.MinK + 1
			j.status.Progress = 0.95 * float64(len(seed)) / float64(total)
		}
	}
	e.mu.Lock()
	e.jobs[j.status.ID] = j
	e.mu.Unlock()
	return j
}

// resubmit resolves a rebuilt interrupted job's tables and enqueues it. A
// job whose inputs cannot be resolved (table deleted before the crash, or
// queue overflow) finalizes as failed instead of blocking recovery, and the
// failure is recorded for healthz (readiness alone would hide it: the pool
// comes up fine, the job just failed instantly).
func (e *Engine) resubmit(j *job) {
	p, aux, key, levelKey, err := e.resolveInputs(j.status.Tenant, j.spec)
	if err != nil {
		e.noteRecoveryError(j.status.ID, err)
		e.finalize(j, nil, fmt.Errorf("resume: %w", err))
		return
	}
	j.p, j.aux, j.key, j.levelKey = p, aux, key, levelKey
	e.mu.Lock()
	select {
	case e.queue <- j:
		e.enqueuedLocked(j.status.Tenant)
		e.mu.Unlock()
	default:
		e.mu.Unlock()
		e.noteRecoveryError(j.status.ID, ErrQueueFull)
		e.finalize(j, nil, fmt.Errorf("resume: %w", ErrQueueFull))
	}
}

// noteRecoveryError records a job recovery tried to re-submit but couldn't,
// for EngineStats.RecoveryErrors / healthz.
func (e *Engine) noteRecoveryError(id string, err error) {
	e.mu.Lock()
	e.recoveryErrs = append(e.recoveryErrs, fmt.Sprintf("%s: %v", id, err))
	e.mu.Unlock()
}

// sortFinished restores the finished log's finish order after recovery, so
// retention keeps evicting oldest-finished first.
func (e *Engine) sortFinished() {
	e.mu.Lock()
	defer e.mu.Unlock()
	sort.SliceStable(e.finished, func(i, k int) bool {
		fi, fk := e.finished[i].status.Finished, e.finished[k].status.Finished
		switch {
		case fi == nil:
			return fk != nil
		case fk == nil:
			return false
		default:
			return fi.Before(*fk)
		}
	})
}

// EvictTables removes tables older than ttl that no pending or running job
// references from the store and its backend, returning the evicted
// metadata. It is the TTL garbage collection behind `served -table-ttl`.
// Tables referenced by in-flight jobs are exempt; jobs already holding
// table pointers are unaffected either way (tables are immutable — eviction
// only frees the handle and the backing files).
func (e *Engine) EvictTables(ttl time.Duration) []TableInfo {
	// Table handles are only unique per tenant, so the in-use set is keyed
	// by (tenant, id) — tenant A's live job must not shield tenant B's
	// same-numbered table from eviction.
	inUse := make(map[[2]string]bool)
	e.mu.RLock()
	for _, j := range e.jobs {
		if st := j.snapshot(); !st.State.Terminal() {
			inUse[[2]string{st.Tenant, j.spec.Table}] = true
			if j.spec.Aux != "" {
				inUse[[2]string{st.Tenant, j.spec.Aux}] = true
			}
		}
	}
	e.mu.RUnlock()
	return e.store.Evict(time.Now().Add(-ttl), func(info TableInfo) bool {
		return inUse[[2]string{info.Tenant, info.ID}]
	})
}
