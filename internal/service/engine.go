package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fusion"
	"repro/internal/microagg"
	"repro/internal/mondrian"
	"repro/internal/obs"
	"repro/internal/risk"
)

// Options configures an Engine. Zero values pick sensible defaults.
type Options struct {
	// Workers is the size of the job worker pool (default: NumCPU).
	Workers int
	// SweepWorkers bounds the intra-job concurrency of a fred-sweep's
	// core.SweepStream executor (default: Workers).
	SweepWorkers int
	// QueueDepth bounds the pending-job queue; submissions beyond it are
	// shed with an OverloadError (which errors.Is-matches ErrQueueFull)
	// rather than queued unboundedly (default: 256).
	QueueDepth int
	// MaxPendingPerTenant bounds one tenant's share of the pending queue:
	// submissions beyond it are shed with a tenant-scoped OverloadError even
	// while the global queue has room, so a single tenant's storm cannot
	// starve everyone else (default: 0 = no per-tenant bound).
	MaxPendingPerTenant int
	// MaxJobEvents bounds the in-memory replay buffer kept per terminal job:
	// once a job finishes and its result is durably recorded, the event log
	// is truncated to this many trailing events. Subscribers resuming from a
	// cursor inside the retained tail replay as before; earlier cursors fall
	// back to a synthesized replay from the result, exactly like cache hits
	// (default: 256; negative keeps every event).
	MaxJobEvents int
	// CacheSize is the LRU result cache capacity in entries (default: 64;
	// negative disables caching).
	CacheSize int
	// LevelIndexSize is the cross-job warm-start index capacity in tables
	// (default: 32; negative disables warm-starting). Each tracked table
	// holds the per-level sweep numbers previous fred-sweeps computed, so
	// overlapping re-sweeps only compute the gap.
	LevelIndexSize int
	// MaxFinishedJobs bounds the job log: once more than this many jobs are
	// in a terminal state, the oldest-finished are evicted from the log
	// (default: 512; negative keeps every job forever).
	MaxFinishedJobs int
	// JobLog is the durable write-ahead log behind the job engine: every
	// submission, per-level sweep checkpoint and terminal status is appended
	// to it, and Engine.Recover replays it after a restart. Nil keeps the
	// pre-durability behavior (an ephemeral in-memory log).
	JobLog JobBackend
	// Quotas bounds each tenant's footprint (tables, concurrent jobs,
	// result-cache share). NewEngine installs it on the store as well, so
	// there is a single configuration point. Nil leaves every tenant
	// unlimited.
	Quotas *Quotas
	// Metrics receives the engine's job/queue/cache instrumentation
	// (jobs_*_total, job_duration_seconds, queue_depth, workers_*, cache_*).
	// Nil records nothing.
	Metrics *obs.Registry
	// Tracer receives per-job spans: one "job.run" per executed job and one
	// "sweep.level" per completed sweep level. Nil records nothing.
	Tracer *obs.Tracer
	// Logger receives structured job-lifecycle lines (submit, finish,
	// cancel). Records logged with a job context carry tenant= and job=
	// attributes. Nil discards.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.JobLog == nil {
		o.JobLog = NewMemJobBackend()
	}
	if o.SweepWorkers <= 0 {
		o.SweepWorkers = o.Workers
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.CacheSize == 0 {
		o.CacheSize = 64
	}
	if o.LevelIndexSize == 0 {
		o.LevelIndexSize = 32
	}
	if o.MaxFinishedJobs == 0 {
		o.MaxFinishedJobs = 512
	}
	if o.MaxJobEvents == 0 {
		o.MaxJobEvents = 256
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
	return o
}

// ErrQueueFull is returned by Submit when the pending queue is at capacity.
var ErrQueueFull = errors.New("service: job queue is full")

// ErrNotFinished is returned by Result for a job without a result yet.
var ErrNotFinished = errors.New("service: job has not finished")

// ErrAlreadyFinished is returned by Cancel for a job in a terminal state.
var ErrAlreadyFinished = errors.New("service: job already finished")

// Engine runs jobs asynchronously on a bounded worker pool. Submit enqueues
// and returns immediately; callers poll Job, block on Wait (which parks on
// the job's done channel — no polling), or subscribe to Stream for
// incremental per-level events, then fetch the payload with Result.
// Identical submissions (same table contents, same spec) are served from an
// LRU cache without re-running the sweep.
type Engine struct {
	store  *Store
	opts   Options
	cache  *resultCache
	levels *levelIndex

	baseCtx   context.Context
	cancelAll context.CancelFunc

	queue chan *job
	wg    sync.WaitGroup

	// walMu serializes WAL appends and guards eventSeq, so sequence numbers
	// are monotonic AND appear in the log in order.
	walMu    sync.Mutex
	eventSeq uint64

	mu       sync.RWMutex
	seq      int
	jobs     map[string]*job
	finished []*job // terminal jobs in finish order, for retention eviction
	closed   bool
	// pending counts enqueued-not-yet-popped jobs per tenant; pendingTotal is
	// their sum. Both guarded by mu and maintained by enqueuedLocked/dequeued
	// (admission.go).
	pending      map[string]int
	pendingTotal int
	// recoveryErrs records jobs Recover re-submitted that immediately failed
	// (missing table, queue overflow) so healthz can surface them instead of
	// burying them in logs. Guarded by mu.
	recoveryErrs []string

	metrics *engineMetrics
	tracer  *obs.Tracer
	logger  *slog.Logger
	// busyWorkers counts workers currently executing a job (workers_busy).
	busyWorkers atomic.Int64
	// ready flips true once Start launches the pool; false during the
	// Recover replay window. Served by /v1/readyz.
	ready atomic.Bool
	// doneJobs counts terminal transitions since process start, cumulative
	// across retention eviction and Delete (unlike len(finished)).
	doneJobs atomic.Uint64
	// jobsShed counts submissions refused by admission control.
	jobsShed atomic.Uint64
	// execCount/execNanos accumulate executed-job wall time, feeding the
	// Retry-After estimate on shed submissions.
	execCount atomic.Int64
	execNanos atomic.Int64
}

// job is the engine-internal job record. status is guarded by mu; the input
// tables are captured at submit time so a concurrent Store.Delete cannot
// strand a queued job.
type job struct {
	mu     sync.Mutex
	status Status
	seq    int
	spec   Spec
	p, aux *dataset.Table
	key    string
	// levelKey addresses the cross-job warm-start index entry for the job's
	// (table, adversary, scheme, sensitive range), tenant-prefixed.
	levelKey string
	result   *Result
	ctx      context.Context
	cancel   context.CancelFunc
	done     chan struct{}
	// events is the per-job event log streamed by Engine.Stream; notify is
	// closed and replaced at every append (and at finish) to wake blocked
	// subscribers. Once the job is terminal and its result is durable the
	// log may be truncated to a bounded tail: eventsBase counts the events
	// dropped from the front (so absolute stream indices stay stable) and
	// droppedSeq is the highest sequence number among them. All guarded by mu.
	events     []Event
	eventsBase int
	droppedSeq uint64
	notify     chan struct{}
	// termSeq is the event sequence number of the terminal status record,
	// assigned by logTerminal (best-effort: a subscriber racing the WAL
	// append may observe it as zero). Guarded by mu.
	termSeq uint64
	// resume seeds a recovered fred-sweep with its checkpointed levels so
	// the sweep restarts at startK instead of MinK. Set only by Recover.
	resume *resumeSeed
	// resultRec is the durable projection logTerminal wrote (nil for jobs
	// that failed, were canceled, or ran on an ephemeral store). Online log
	// compaction re-emits it instead of re-hashing the result table, and
	// blob GC reads its TableHash as a liveness root. Guarded by mu.
	resultRec *ResultRecord
	// cancelRequested marks a journaled cancellation whose terminal record
	// has not landed yet; online compaction must preserve the WALCancel
	// record (at cancelSeq) or a crash would re-run the canceled job.
	// Guarded by mu.
	cancelRequested bool
	cancelSeq       uint64
}

// resumeSeed carries a recovered sweep's checkpointed prefix.
type resumeSeed struct {
	startK int
	levels []LevelSummary
}

func (j *job) snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

func (j *job) setProgress(p float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.status.State.Terminal() {
		j.status.Progress = p
	}
}

// start transitions pending → running; it reports false when the job was
// already finalized (e.g. canceled while queued).
func (j *job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.State != StatePending {
		return false
	}
	now := time.Now()
	j.status.State = StateRunning
	j.status.Started = &now
	return true
}

// finish finalizes the job exactly once; later calls are no-ops. It reports
// whether this call performed the transition, so exactly one caller retires
// the job into the engine's finished log.
func (j *job) finish(res *Result, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.State.Terminal() {
		return false
	}
	now := time.Now()
	j.status.Finished = &now
	switch {
	case err == nil:
		j.result = res
		j.status.State = StateDone
		j.status.Progress = 1
		j.status.Summary = res.summarize(j.status.Type)
	case errors.Is(err, context.Canceled):
		j.status.State = StateCanceled
		j.status.Error = "canceled"
	default:
		j.status.State = StateFailed
		j.status.Error = err.Error()
	}
	close(j.done)
	if err == nil && res != nil && len(res.Levels) > 0 {
		// Adopt the result's level summaries: they carry the final candidate
		// flags the streamed partials could not know under auto-calibration.
		j.status.Levels = res.Levels
	}
	// Release the job's child context so finished jobs do not accumulate
	// on the engine's base context, and drop the captured input tables so
	// a deleted store table is not pinned for the daemon's lifetime. The
	// worker never reads p/aux after finish: a finalized job fails its
	// start() gate.
	j.cancel()
	j.p, j.aux = nil, nil
	// Wake subscribers so they observe the terminal state and close out.
	j.broadcastLocked()
	return true
}

// NewEngine builds an engine over the store. Call Start to launch the
// worker pool and Shutdown to drain it. The engine's quota table is also
// installed on the store, so table quotas and job quotas are configured in
// one place (Options.Quotas).
func NewEngine(store *Store, opts Options) *Engine {
	opts = opts.withDefaults()
	store.SetQuotas(opts.Quotas)
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		store:     store,
		opts:      opts,
		cache:     newResultCache(opts.CacheSize),
		levels:    newLevelIndex(opts.LevelIndexSize),
		baseCtx:   ctx,
		cancelAll: cancel,
		queue:     make(chan *job, opts.QueueDepth),
		jobs:      make(map[string]*job),
		pending:   make(map[string]int),
		tracer:    opts.Tracer,
		logger:    opts.Logger,
	}
	e.metrics = newEngineMetrics(opts.Metrics, e)
	e.cache.onEvict = func(tenant string) {
		e.metrics.cacheEvictions.With(tenant).Inc()
	}
	return e
}

// Start launches the worker pool and marks the engine ready. Recover (when
// used) runs before Start, so readiness is exactly "replay finished, pool
// accepting work".
func (e *Engine) Start() {
	for w := 0; w < e.opts.Workers; w++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for j := range e.queue {
				e.dequeued(j)
				if j.ctx.Err() != nil || !j.start() {
					e.finalize(j, nil, context.Canceled)
					continue
				}
				e.busyWorkers.Add(1)
				st := j.snapshot()
				e.metrics.started.With(st.Tenant, string(st.Type)).Inc()
				ctx, span := e.tracer.StartSpan(j.ctx, "job.run")
				span.SetAttr("type", string(st.Type))
				res, err := e.run(ctx, j)
				span.End()
				e.busyWorkers.Add(-1)
				// Partial (budget-truncated) results are not memoized: an
				// identical resubmission with a fresh budget should compute
				// the missing levels, not replay the truncation. Their
				// computed levels still entered the level index, so the
				// re-run warm-starts from them.
				if err == nil && !res.Partial {
					e.cachePut(j, res)
				}
				e.finalize(j, res, err)
			}
		}()
	}
	e.ready.Store(true)
}

// Ready reports whether Start has launched the worker pool. It is false for
// the whole Recover replay window, which is what /v1/readyz serves.
func (e *Engine) Ready() bool { return e.ready.Load() }

// EngineStats is a point-in-time operational snapshot, served by healthz and
// logged at shutdown.
type EngineStats struct {
	// Ready mirrors Engine.Ready.
	Ready bool `json:"ready"`
	// WALSeq is the last event sequence number appended to the job log.
	WALSeq uint64 `json:"wal_seq"`
	// JobsFinished counts terminal transitions since process start. Unlike
	// the job log it is not reduced by retention eviction or Delete.
	JobsFinished uint64 `json:"jobs_finished"`
	// JobsLive counts pending plus running jobs.
	JobsLive int `json:"jobs_live"`
	// JobsPending counts jobs enqueued but not yet picked up by a worker.
	JobsPending int `json:"jobs_pending"`
	// JobsShed counts submissions refused by admission control since start.
	JobsShed uint64 `json:"jobs_shed"`
	// RecoveryErrors lists jobs the last Recover re-submitted that
	// immediately failed (for example on a table deleted before the crash).
	// Empty on a clean recovery.
	RecoveryErrors []string `json:"recovery_errors,omitempty"`
}

// Stats returns the engine's operational snapshot.
func (e *Engine) Stats() EngineStats {
	e.walMu.Lock()
	seq := e.eventSeq
	e.walMu.Unlock()
	live := 0
	e.mu.RLock()
	for _, j := range e.jobs {
		if !j.snapshot().State.Terminal() {
			live++
		}
	}
	pending := e.pendingTotal
	recoveryErrs := append([]string(nil), e.recoveryErrs...)
	e.mu.RUnlock()
	return EngineStats{
		Ready:          e.Ready(),
		WALSeq:         seq,
		JobsFinished:   e.doneJobs.Load(),
		JobsLive:       live,
		JobsPending:    pending,
		JobsShed:       e.jobsShed.Load(),
		RecoveryErrors: recoveryErrs,
	}
}

// cachePut registers a finished job's result under its tenant-scoped cache
// key, bounded by the tenant's cache share.
func (e *Engine) cachePut(j *job, res *Result) {
	tenant := j.snapshot().Tenant
	e.cache.Put(tenant, j.key, res, e.opts.Quotas.For(tenant).CacheShare)
}

// finalize finishes a job exactly once, writes its terminal WAL record,
// retires it into the finished log and logs any retention evictions. It must
// not be called while holding e.mu (it performs WAL I/O and takes the lock
// itself).
func (e *Engine) finalize(j *job, res *Result, err error) bool {
	if !j.finish(res, err) {
		return false
	}
	e.observeTerminal(j)
	e.logTerminal(j)
	// The terminal record (and result blob, when durable) is on disk now, so
	// the full in-memory event log is redundant with the result: keep only a
	// bounded tail for resuming subscribers.
	e.truncateEvents(j)
	e.mu.Lock()
	evicted := e.retireLocked(j)
	e.mu.Unlock()
	e.logDeletes(evicted)
	return true
}

// observeTerminal records a just-finished job's metrics and log line. The
// duration histogram measures worker start → terminal, so cache-served jobs
// (never started) contribute to jobs_finished_total but not to duration.
func (e *Engine) observeTerminal(j *job) {
	st := j.snapshot()
	e.doneJobs.Add(1)
	e.metrics.finished.With(st.Tenant, string(st.Type), string(st.State)).Inc()
	attrs := []any{"type", string(st.Type), "state", string(st.State), "cached", st.Cached}
	if st.Started != nil && st.Finished != nil {
		d := st.Finished.Sub(*st.Started)
		e.metrics.duration.With(st.Tenant, string(st.Type)).Observe(d.Seconds())
		e.execCount.Add(1)
		e.execNanos.Add(d.Nanoseconds())
		attrs = append(attrs, "duration", d)
	}
	if st.Error != "" {
		attrs = append(attrs, "error", st.Error)
	}
	e.logger.InfoContext(e.jobCtx(st), "job finished", attrs...)
}

// jobCtx builds a context carrying a job's identity for log correlation —
// used on paths (finalize, cancel) that may run outside the job's own
// context.
func (e *Engine) jobCtx(st Status) context.Context {
	return obs.WithJobID(obs.WithTenant(context.Background(), st.Tenant), st.ID)
}

// retireLocked records a terminal job in the finished log, evicts the
// oldest-finished jobs beyond the retention limit and returns the evicted
// IDs for WAL retraction. Callers hold e.mu.
func (e *Engine) retireLocked(j *job) []string {
	if e.opts.MaxFinishedJobs < 0 {
		return nil
	}
	if _, ok := e.jobs[j.status.ID]; !ok {
		// Deleted between finish() and retire(): don't resurrect a ghost
		// entry that would pin the result and consume a retention slot.
		return nil
	}
	e.finished = append(e.finished, j)
	var evicted []string
	for len(e.finished) > e.opts.MaxFinishedJobs {
		old := e.finished[0]
		e.finished[0] = nil
		e.finished = e.finished[1:]
		delete(e.jobs, old.status.ID)
		evicted = append(evicted, old.status.ID)
	}
	return evicted
}

// appendWAL assigns the next event sequence number to rec and appends it to
// the job log. Append errors degrade durability, not availability: the
// running job proceeds and the error is reported to the caller for paths
// that can refuse (Submit).
func (e *Engine) appendWAL(rec *WALRecord) (uint64, error) {
	e.walMu.Lock()
	defer e.walMu.Unlock()
	e.eventSeq++
	rec.Seq = e.eventSeq
	return rec.Seq, e.opts.JobLog.AppendWAL(rec)
}

// logTerminal appends a job's terminal status record — and, for a done job
// on a durable store, the result projection plus the result table's blob —
// then syncs the log: terminal records are the ones a crash must not lose.
func (e *Engine) logTerminal(j *job) {
	st := j.snapshot()
	rec := &WALRecord{Kind: WALStatus, JobID: st.ID, Status: &st}
	if st.State == StateDone {
		rec.Result = e.resultRecord(j)
	}
	seq, err := e.appendWAL(rec)
	if err != nil {
		// Not durable: the terminal event must not advertise a sequence
		// number recovery could reissue (see recordLevel).
		seq = 0
	} else {
		e.opts.JobLog.SyncWAL() //nolint:errcheck // durability is best-effort here
	}
	j.mu.Lock()
	j.termSeq = seq
	j.resultRec = rec.Result
	j.mu.Unlock()
}

// resultRecord builds the durable projection of a done job's result,
// persisting the result table as a content-addressed blob. Ephemeral stores
// skip the blob work entirely.
func (e *Engine) resultRecord(j *job) *ResultRecord {
	j.mu.Lock()
	res := j.result
	j.mu.Unlock()
	if res == nil || !e.store.Durable() {
		return nil
	}
	rec := &ResultRecord{
		Levels:     res.Levels,
		OptimalK:   res.OptimalK,
		Hmax:       res.Hmax,
		Tp:         res.Tp,
		Tu:         res.Tu,
		Evaluated:  res.Evaluated,
		Partial:    res.Partial,
		Before:     res.Before,
		After:      res.After,
		Assessment: res.Assessment,
	}
	if res.Table != nil {
		if h, err := HashTable(res.Table); err == nil {
			if err := e.store.PutBlob(h, res.Table); err == nil {
				rec.TableHash = h
			}
		}
	}
	return rec
}

// logDeletes appends WAL retractions for jobs dropped from the log.
func (e *Engine) logDeletes(ids []string) {
	for _, id := range ids {
		e.appendWAL(&WALRecord{Kind: WALDelete, JobID: id}) //nolint:errcheck
	}
}

// Shutdown stops accepting jobs and waits for in-flight work. If ctx
// expires first, running jobs are canceled and Shutdown returns ctx.Err()
// after they unwind.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.queue)
	}
	e.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		e.cancelAll()
		<-drained
		err = ctx.Err()
	}
	// Flush the job log last: every in-flight job has written its terminal
	// record by now.
	e.opts.JobLog.SyncWAL() //nolint:errcheck
	return err
}

// Submit validates the spec, resolves its tables from tenant's namespace,
// and enqueues the job on tenant's behalf. A cache hit completes the job
// immediately with Status.Cached set. A tenant at its MaxJobs quota (live =
// pending or running) is refused with a QuotaError. The returned Status is
// the initial snapshot; poll Job for updates.
func (e *Engine) Submit(tenant string, spec Spec) (Status, error) {
	if err := ValidateTenant(tenant); err != nil {
		return Status{}, err
	}
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return Status{}, err
	}
	p, aux, key, levelKey, err := e.resolveInputs(tenant, spec)
	if err != nil {
		return Status{}, err
	}

	// ID assignment is its own short critical section; the WAL append (disk
	// I/O) runs outside e.mu so a slow submission never stalls job reads,
	// polls or stream subscriptions. The quota check shares the section with
	// registration, so two racing submissions cannot both squeeze under the
	// same last quota slot.
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return Status{}, errors.New("service: engine is shut down")
	}
	if q := e.opts.Quotas.For(tenant); q.MaxJobs > 0 && e.liveJobsLocked(tenant) >= q.MaxJobs {
		e.mu.Unlock()
		return Status{}, &QuotaError{Tenant: tenant, Resource: "jobs", Limit: q.MaxJobs}
	}
	e.seq++
	id := fmt.Sprintf("job-%d", e.seq)
	ctx, cancel := context.WithCancel(e.baseCtx)
	// The job context carries its identity so every log line and trace span
	// recorded under it is correlated to this job (cancel propagates through
	// the value wrapper unchanged).
	ctx = obs.WithJobID(obs.WithTenant(ctx, tenant), id)
	now := time.Now()
	j := &job{
		status:   Status{ID: id, Tenant: tenant, Type: spec.Type, State: StatePending, Created: now},
		seq:      e.seq,
		spec:     spec,
		p:        p,
		aux:      aux,
		key:      key,
		levelKey: levelKey,
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		notify:   make(chan struct{}),
	}
	// Register before releasing the lock: a submission must be visible to
	// EvictTables (which spares tables referenced by live jobs) for the
	// whole window the WAL append below may block on disk. A refused
	// submission unregisters itself.
	e.jobs[j.status.ID] = j
	e.mu.Unlock()
	unregister := func() {
		e.mu.Lock()
		delete(e.jobs, j.status.ID)
		e.mu.Unlock()
		cancel()
	}
	// The WAL submission record is written before the job becomes runnable:
	// a crash at any later point replays as an interrupted job and is
	// re-run — a submission is never silently lost. A WAL append failure
	// refuses the submission outright.
	if _, err := e.appendWAL(&WALRecord{Kind: WALJob, Ver: walSpecVersion, JobID: j.status.ID, JobSeq: j.seq, Tenant: tenant, Spec: &spec, Created: &now}); err != nil {
		unregister()
		return Status{}, fmt.Errorf("service: append job log: %w", err)
	}
	retract := func(reason error) (Status, error) {
		unregister()
		// Retract the never-enqueued submission so replay does not re-run it.
		e.appendWAL(&WALRecord{Kind: WALDelete, JobID: j.status.ID}) //nolint:errcheck
		return Status{}, reason
	}
	// The enqueue shares one critical section with the closed check:
	// Shutdown closes the queue under the same mutex, so Submit can never
	// send on a closed channel.
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return retract(errors.New("service: engine is shut down"))
	}
	e.metrics.submitted.With(tenant, string(spec.Type)).Inc()
	if res, ok := e.cache.Get(j.key); ok {
		e.mu.Unlock()
		e.metrics.cacheHits.With(tenant).Inc()
		// The job is already visible, so the status write takes its lock.
		j.mu.Lock()
		j.status.Cached = true
		j.mu.Unlock()
		e.logger.InfoContext(ctx, "job submitted", "type", string(spec.Type), "cached", true)
		e.finalize(j, res, nil)
		return j.snapshot(), nil
	}
	e.metrics.cacheMisses.With(tenant).Inc()
	// Admission control: the tenant's pending share is checked first, then
	// the global queue bound (the channel capacity). Either refusal is an
	// OverloadError the HTTP layer turns into 429 + Retry-After.
	if limit, refused := e.admitLocked(tenant); refused {
		e.mu.Unlock()
		return retract(e.shed(tenant, "tenant", limit))
	}
	select {
	case e.queue <- j:
		e.enqueuedLocked(tenant)
		e.mu.Unlock()
	default:
		e.mu.Unlock()
		return retract(e.shed(tenant, "global", e.opts.QueueDepth))
	}
	e.logger.InfoContext(ctx, "job submitted", "type", string(spec.Type), "cached", false)
	return j.snapshot(), nil
}

// liveJobsLocked counts tenant's pending and running jobs. Callers hold
// e.mu (read or write).
func (e *Engine) liveJobsLocked(tenant string) int {
	n := 0
	for _, j := range e.jobs {
		st := j.snapshot()
		if st.Tenant == tenant && !st.State.Terminal() {
			n++
		}
	}
	return n
}

// Job returns the current status snapshot of one of tenant's jobs.
func (e *Engine) Job(tenant, id string) (Status, error) {
	j, err := e.get(tenant, id)
	if err != nil {
		return Status{}, err
	}
	return j.snapshot(), nil
}

// Jobs lists the status of every job in tenant's namespace, oldest first.
func (e *Engine) Jobs(tenant string) []Status {
	e.mu.RLock()
	all := make([]*job, 0, len(e.jobs))
	for _, j := range e.jobs {
		all = append(all, j)
	}
	e.mu.RUnlock()
	sort.Slice(all, func(i, k int) bool { return all[i].seq < all[k].seq })
	out := make([]Status, 0, len(all))
	for _, j := range all {
		if st := j.snapshot(); st.Tenant == tenant {
			out = append(out, st)
		}
	}
	return out
}

// Result returns a finished job's payload; ErrNotFinished before then.
func (e *Engine) Result(tenant, id string) (*Result, error) {
	j, err := e.get(tenant, id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.State != StateDone {
		if j.status.State == StateFailed || j.status.State == StateCanceled {
			return nil, fmt.Errorf("service: job %s %s: %s", id, j.status.State, j.status.Error)
		}
		return nil, ErrNotFinished
	}
	if j.result == nil {
		// A job recovered from the log whose result could not be rebuilt
		// (e.g. its blob predates the crash-recovery format).
		return nil, fmt.Errorf("service: job %s finished before the last restart and its result is no longer available", id)
	}
	return j.result, nil
}

// Cancel cancels a pending or running job. Pending jobs finalize
// immediately; running jobs stop at their next cancellation point — for a
// fred-sweep that is between levels, mid-sweep, because the cancellation
// propagates through the job context into the streaming sweep executor. A
// job already in a terminal state reports ErrAlreadyFinished.
func (e *Engine) Cancel(tenant, id string) error {
	j, err := e.get(tenant, id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	state := j.status.State
	j.mu.Unlock()
	if state.Terminal() {
		return fmt.Errorf("%w: job %s is %s", ErrAlreadyFinished, id, state)
	}
	// The cancellation is journaled before anything else: a crash after
	// Cancel returns but before the worker unwinds and writes the terminal
	// status must not replay the job as interrupted and re-run it. The
	// journaled seq is remembered so online log compaction re-emits the
	// cancel record for jobs still unwinding.
	seq, cancelErr := e.appendWAL(&WALRecord{Kind: WALCancel, JobID: id})
	j.mu.Lock()
	if cancelErr == nil {
		j.cancelRequested = true
		j.cancelSeq = seq
	}
	j.mu.Unlock()
	e.metrics.canceled.With(tenant).Inc()
	e.logger.InfoContext(e.jobCtx(j.snapshot()), "job canceled", "was", string(state))
	j.cancel()
	if state == StatePending {
		e.finalize(j, nil, context.Canceled)
	}
	return nil
}

// Delete purges a terminal job from the job log, freeing its result and
// retracting it from the durable log. A job that is still pending or running
// reports ErrNotFinished — cancel it first. The job's result blob, if any,
// stays in the blob space: blobs are content-addressed and may be shared.
func (e *Engine) Delete(tenant, id string) error {
	e.mu.Lock()
	j, ok := e.jobs[id]
	if !ok || j.snapshot().Tenant != tenant {
		e.mu.Unlock()
		return &ErrNotFound{Kind: "job", ID: id}
	}
	if !j.snapshot().State.Terminal() {
		e.mu.Unlock()
		return fmt.Errorf("%w: job %s is not terminal; cancel it before deleting", ErrNotFinished, id)
	}
	delete(e.jobs, id)
	// Drop the finished-log entry too, so the job's result is freed now and
	// the ghost does not consume a retention slot.
	for i, fj := range e.finished {
		if fj == j {
			e.finished = append(e.finished[:i], e.finished[i+1:]...)
			break
		}
	}
	e.mu.Unlock()
	e.appendWAL(&WALRecord{Kind: WALDelete, JobID: id}) //nolint:errcheck
	return nil
}

// Wait blocks until the job reaches a terminal state or ctx expires. It
// parks on the job's done channel (closed exactly once by finish), so a
// cancellation that interrupts a sweep mid-flight unblocks every waiter
// immediately — there is no polling loop or sleep anywhere on this path.
func (e *Engine) Wait(ctx context.Context, tenant, id string) (Status, error) {
	j, err := e.get(tenant, id)
	if err != nil {
		return Status{}, err
	}
	select {
	case <-j.done:
		return j.snapshot(), nil
	case <-ctx.Done():
		return j.snapshot(), ctx.Err()
	}
}

// resolveInputs fetches a spec's tables from tenant's namespace and builds
// its tenant-scoped cache key. Submit and the crash-recovery resubmission
// path share it, so the two can never diverge on resolution or key
// semantics. The tenant prefixes the key: byte-identical tables uploaded by
// two tenants must not share cache entries — a cross-tenant hit would leak
// that the other tenant ran the same job.
func (e *Engine) resolveInputs(tenant string, spec Spec) (p, aux *dataset.Table, key, levelKey string, err error) {
	p, pInfo, err := e.store.Get(tenant, spec.Table)
	if err != nil {
		return nil, nil, "", "", err
	}
	var auxHash string
	if spec.Aux != "" {
		var auxInfo TableInfo
		if aux, auxInfo, err = e.store.Get(tenant, spec.Aux); err != nil {
			return nil, nil, "", "", err
		}
		auxHash = auxInfo.Hash
	}
	return p, aux,
		tenant + "|" + spec.cacheKey(pInfo.Hash, auxHash),
		tenant + "|" + spec.levelKey(pInfo.Hash, auxHash), nil
}

// get resolves a job ID within tenant's namespace. A job owned by another
// tenant is reported exactly like a nonexistent one — foreign IDs must be
// unobservable, not merely forbidden.
func (e *Engine) get(tenant, id string) (*job, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	j, ok := e.jobs[id]
	if !ok || j.snapshot().Tenant != tenant {
		return nil, &ErrNotFound{Kind: "job", ID: id}
	}
	return j, nil
}

// --- job execution ----------------------------------------------------------

// run dispatches a started job. ctx is the job's cancellation context,
// threaded through every workload so Cancel (and engine shutdown) interrupts
// work mid-flight — for sweeps, between levels — rather than only between
// jobs.
func (e *Engine) run(ctx context.Context, j *job) (*Result, error) {
	switch j.spec.Type {
	case JobAnonymize:
		return e.runAnonymize(ctx, j)
	case JobAttack:
		return e.runAttack(ctx, j)
	case JobFREDSweep:
		return e.runFREDSweep(ctx, j)
	case JobAssess:
		return e.runAssess(ctx, j)
	default:
		return nil, fmt.Errorf("service: unknown job type %q", j.spec.Type)
	}
}

func anonymizerFor(scheme string) core.Anonymizer {
	if scheme == "mondrian" {
		return mondrian.New()
	}
	return microagg.New()
}

func (sp Spec) attackConfig(aux *dataset.Table) core.AttackConfig {
	return core.AttackConfig{
		Aux:            aux,
		Estimator:      fusion.NewFuzzy(),
		SensitiveRange: fusion.Range{Lo: sp.SensitiveLo, Hi: sp.SensitiveHi},
	}
}

// release anonymizes p at level k and suppresses the sensitive columns —
// the enterprise release step shared by every job type. The suppression is a
// zero-copy column-mask view over the anonymizer's output.
func release(p *dataset.Table, anon core.Anonymizer, k int) (*dataset.Table, error) {
	out, err := anon.Anonymize(p, k)
	if err != nil {
		return nil, err
	}
	return out.WithSuppressed(out.Schema().IndicesOf(dataset.Sensitive)...), nil
}

func (e *Engine) runAnonymize(ctx context.Context, j *job) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rel, err := release(j.p, anonymizerFor(j.spec.Scheme), j.spec.K)
	if err != nil {
		return nil, err
	}
	return &Result{Table: rel}, nil
}

func (e *Engine) runAttack(ctx context.Context, j *job) (*Result, error) {
	rel, err := release(j.p, anonymizerFor(j.spec.Scheme), j.spec.K)
	if err != nil {
		return nil, err
	}
	j.setProgress(0.5)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	phat, before, after, err := core.Attack(j.p, rel, j.spec.attackConfig(j.aux))
	if err != nil {
		return nil, err
	}
	return &Result{Table: phat, Before: before, After: after}, nil
}

func (e *Engine) runAssess(ctx context.Context, j *job) (*Result, error) {
	sens := j.p.Schema().NamesOf(dataset.Sensitive)
	if len(sens) != 1 {
		return nil, fmt.Errorf("service: assess needs exactly one sensitive column, table has %d", len(sens))
	}
	rel, err := release(j.p, anonymizerFor(j.spec.Scheme), j.spec.K)
	if err != nil {
		return nil, err
	}
	j.setProgress(0.4)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	phat, _, _, err := core.Attack(j.p, rel, j.spec.attackConfig(j.aux))
	if err != nil {
		return nil, err
	}
	j.setProgress(0.8)
	a, err := risk.Assess(j.p, phat, sens[0], j.spec.SensitiveLo, j.spec.SensitiveHi)
	if err != nil {
		return nil, err
	}
	return &Result{Table: phat, Assessment: a}, nil
}

// runFREDSweep lives in sweepjob.go: the classic range walk with cross-job
// warm-starting, and the adaptive planner path behind it.
