package service

import (
	"repro/internal/obs"
)

// engineMetrics is the engine's instrument set, resolved once from the
// registry at construction. Every instrument is nil-safe through obs, so an
// engine built without Options.Metrics records nothing at zero cost.
//
// Cardinality rules (internal/obs/DESIGN.md): tenant is the only free
// label; job type and terminal state are closed enums; job IDs never become
// labels — per-job detail goes to traces and logs.
type engineMetrics struct {
	submitted *obs.CounterVec   // tenant, type
	started   *obs.CounterVec   // tenant, type
	finished  *obs.CounterVec   // tenant, type, state
	canceled  *obs.CounterVec   // tenant
	duration  *obs.HistogramVec // tenant, type

	cacheHits      *obs.CounterVec // tenant
	cacheMisses    *obs.CounterVec // tenant
	cacheEvictions *obs.CounterVec // tenant

	plannerEvaluated *obs.CounterVec // tenant
	plannerWarm      *obs.CounterVec // tenant
	plannerSkipped   *obs.CounterVec // tenant, reason
	plannerFallbacks *obs.CounterVec // tenant

	shed *obs.CounterVec // tenant, scope

	gcRuns      *obs.CounterVec // (no labels)
	gcReclaimed *obs.CounterVec // (no labels)
	gcBytes     *obs.CounterVec // (no labels)
}

// newEngineMetrics registers the engine's metric families on r (nil r is a
// no-op set) and wires the scrape-time gauges that read live engine state.
func newEngineMetrics(r *obs.Registry, e *Engine) *engineMetrics {
	m := &engineMetrics{
		submitted: r.Counter("jobs_submitted_total",
			"Jobs accepted by Submit, including cache hits.", "tenant", "type"),
		started: r.Counter("jobs_started_total",
			"Jobs a worker began executing.", "tenant", "type"),
		finished: r.Counter("jobs_finished_total",
			"Jobs reaching a terminal state.", "tenant", "type", "state"),
		canceled: r.Counter("jobs_canceled_total",
			"Cancellations accepted by Cancel.", "tenant"),
		duration: r.Histogram("job_duration_seconds",
			"Job wall time from worker start to terminal state.", nil, "tenant", "type"),
		cacheHits: r.Counter("cache_hits_total",
			"Result-cache hits at Submit.", "tenant"),
		cacheMisses: r.Counter("cache_misses_total",
			"Result-cache misses at Submit.", "tenant"),
		cacheEvictions: r.Counter("cache_evictions_total",
			"Result-cache evictions (capacity or tenant share).", "tenant"),
		plannerEvaluated: r.Counter("planner_levels_evaluated_total",
			"Sweep levels actually computed by fred-sweep jobs.", "tenant"),
		plannerWarm: r.Counter("planner_warmstart_levels_total",
			"Sweep levels seeded from the cross-job level index instead of recomputed.", "tenant"),
		plannerSkipped: r.Counter("planner_levels_skipped_total",
			"Sweep levels the planner proved unnecessary (reason: bisection, deadline, infeasible).", "tenant", "reason"),
		plannerFallbacks: r.Counter("planner_fallbacks_total",
			"Adaptive sweeps that fell back to the exhaustive walk on a detected non-monotone utility series.", "tenant"),
		shed: r.Counter("admission_shed_total",
			"Submissions refused by admission control (scope: tenant, global).", "tenant", "scope"),
		gcRuns: r.Counter("blob_gc_runs_total",
			"Blob garbage-collection passes completed (dry runs included)."),
		gcReclaimed: r.Counter("blob_gc_reclaimed_total",
			"Unreferenced result blobs deleted by GC."),
		gcBytes: r.Counter("blob_gc_bytes_reclaimed_total",
			"Bytes of unreferenced result blobs deleted by GC."),
	}
	if r != nil && e != nil {
		r.GaugeFunc("queue_depth",
			"Jobs waiting in the pending queue.", func() float64 {
				return float64(len(e.queue))
			})
		r.GaugeFunc("workers_busy",
			"Workers currently executing a job.", func() float64 {
				return float64(e.busyWorkers.Load())
			})
		r.GaugeFunc("workers_total",
			"Size of the job worker pool.", func() float64 {
				return float64(e.opts.Workers)
			})
	}
	return m
}
