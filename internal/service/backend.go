package service

import (
	"time"

	"repro/internal/dataset"
	"repro/internal/risk"
)

// This file defines the storage plane behind the service: the backend
// interfaces Store and Engine persist through, the write-ahead-log record
// vocabulary, and the ephemeral in-memory implementations that preserve the
// pre-durability behavior. internal/service/diskstore provides the
// disk-backed implementations; DESIGN.md in this package documents the file
// layout, the WAL format and the recovery protocol.

// TableRecord pairs a stored table with its metadata — the unit a
// TableBackend persists and reloads.
type TableRecord struct {
	Info  TableInfo
	Table *dataset.Table
}

// TableBackend is the durability plane behind Store. Store remains the
// concurrency and ID-assignment layer and keeps every table resident in
// memory (jobs need live *dataset.Table pointers); the backend only decides
// whether tables additionally survive restarts. Implementations must be safe
// for concurrent use.
type TableBackend interface {
	// PutTable persists one table record in its tenant's namespace
	// (rec.Info.Tenant). Identical tables (same content hash) within one
	// tenant may share storage.
	PutTable(rec TableRecord) error
	// DeleteTable removes the record for (tenant, id) — table handles are
	// only unique per tenant. Unknown ids are a no-op.
	DeleteTable(tenant, id string) error
	// LoadTables returns every persisted record, for Store.Open.
	LoadTables() ([]TableRecord, error)
	// PutBlob persists an auxiliary table keyed by its content hash — job
	// result tables, which recovery reloads with GetBlob. Re-putting an
	// existing hash is a no-op.
	PutBlob(hash string, t *dataset.Table) error
	// GetBlob loads an auxiliary table by content hash.
	GetBlob(hash string) (*dataset.Table, error)
	// Durable reports whether the backend outlives the process. The engine
	// skips result-blob work on ephemeral backends.
	Durable() bool
}

// WALKind discriminates job write-ahead-log records.
type WALKind string

// The WAL record kinds. A job's durable history is one "job" record,
// zero or more "level" checkpoints, and at most one terminal "status"
// record; a "delete" record retracts the job (explicit DELETE or retention
// eviction). A job record without a terminal status is an interrupted job,
// which recovery re-submits.
// walSpecVersion is the current WAL spec vocabulary version, stamped on
// every submission record. Version history:
//
//	0/1 — the pre-planner vocabulary (range sweeps, thresholds).
//	2   — adds the adaptive planner spec fields (k_set, stride, budget_ms,
//	      adaptive) and the level checkpoint source tag.
const walSpecVersion = 2

const (
	WALJob    WALKind = "job"
	WALLevel  WALKind = "level"
	WALStatus WALKind = "status"
	WALDelete WALKind = "delete"
	// WALCancel durably records a cancellation the moment Cancel accepts
	// it, before the worker has unwound and written the terminal status: a
	// crash in that window must not resurrect the cancelled job as an
	// interrupted one — recovery synthesizes the canceled terminal state
	// instead of re-running it.
	WALCancel WALKind = "cancel"
	// WALMark is the compaction high-water marker: it carries the event-seq
	// (Seq) and job-ID (JobSeq) counters at compaction time, so they never
	// regress even when every record that produced them was dropped — a
	// deleted job's ID is never reissued and old stream cursors stay
	// meaningful.
	WALMark WALKind = "mark"
)

// WALRecord is one job write-ahead-log entry. Seq is the engine-assigned
// monotonic event sequence number shared with streamed Events, so a WAL is
// also the durable form of the event feed.
type WALRecord struct {
	Seq   uint64  `json:"seq"`
	Kind  WALKind `json:"kind"`
	JobID string  `json:"job_id"`
	// Ver is the spec vocabulary version the record was written under (see
	// walSpecVersion). Zero on records from builds predating versioning —
	// replayed fine, their vocabulary is a strict subset. Recovery refuses
	// records from a NEWER vocabulary loudly instead of silently dropping
	// fields a downgrade cannot honor.
	Ver int `json:"ver,omitempty"`

	// Submission fields (kind "job"). Tenant is the namespace the job runs
	// in; an empty tenant on replay — a record written before multi-tenancy
	// — is adopted into DefaultTenant by Recover.
	JobSeq  int        `json:"job_seq,omitempty"`
	Tenant  string     `json:"tenant,omitempty"`
	Spec    *Spec      `json:"spec,omitempty"`
	Created *time.Time `json:"created,omitempty"`

	// Checkpoint fields (kind "level"). Source tags warm-started levels, as
	// on the streamed event.
	Level       *LevelSummary `json:"level,omitempty"`
	Calibration *Calibration  `json:"calibration,omitempty"`
	Progress    float64       `json:"progress,omitempty"`
	Source      string        `json:"source,omitempty"`

	// Terminal fields (kind "status").
	Status *Status       `json:"status,omitempty"`
	Result *ResultRecord `json:"result,omitempty"`
}

// ResultRecord is the durable projection of a done job's Result: every
// scalar field verbatim (encoding/json round-trips float64 exactly), plus
// the content hash of the result table, whose snapshot lives in the table
// backend's blob space.
type ResultRecord struct {
	TableHash  string           `json:"table_hash,omitempty"`
	Levels     []LevelSummary   `json:"levels,omitempty"`
	OptimalK   int              `json:"optimal_k,omitempty"`
	Hmax       float64          `json:"hmax,omitempty"`
	Tp         float64          `json:"tp,omitempty"`
	Tu         float64          `json:"tu,omitempty"`
	Evaluated  int              `json:"evaluated,omitempty"`
	Partial    bool             `json:"partial,omitempty"`
	Before     float64          `json:"before,omitempty"`
	After      float64          `json:"after,omitempty"`
	Assessment *risk.Assessment `json:"assessment,omitempty"`
}

// JobBackend is the durability plane behind the engine's job log.
// Implementations must be safe for concurrent appends; the engine
// additionally serializes appends so file order matches sequence order.
type JobBackend interface {
	// AppendWAL durably appends one record.
	AppendWAL(rec *WALRecord) error
	// ReplayWAL calls fn for every persisted record in append order. A
	// torn final record (crash mid-append) ends the replay cleanly.
	ReplayWAL(fn func(WALRecord) error) error
	// CompactWAL atomically replaces the log with recs — recovery rewrites
	// the live image so the log does not grow across restarts.
	CompactWAL(recs []*WALRecord) error
	// SyncWAL flushes appended records to stable storage.
	SyncWAL() error
}

// memTableBackend is the ephemeral backend: tables live only in the Store's
// resident map, blobs are never persisted. It preserves the pre-durability
// in-memory service exactly.
type memTableBackend struct{}

// NewMemTableBackend returns the ephemeral table backend used by NewStore.
func NewMemTableBackend() TableBackend { return memTableBackend{} }

func (memTableBackend) PutTable(TableRecord) error           { return nil }
func (memTableBackend) DeleteTable(string, string) error     { return nil }
func (memTableBackend) LoadTables() ([]TableRecord, error)   { return nil, nil }
func (memTableBackend) PutBlob(string, *dataset.Table) error { return nil }
func (memTableBackend) GetBlob(hash string) (*dataset.Table, error) {
	return nil, &ErrNotFound{Kind: "blob", ID: hash}
}
func (memTableBackend) Durable() bool { return false }

// memJobBackend is the ephemeral job log: appends vanish, replay is empty.
type memJobBackend struct{}

// NewMemJobBackend returns the ephemeral job log used when Options.JobLog
// is nil.
func NewMemJobBackend() JobBackend { return memJobBackend{} }

func (memJobBackend) AppendWAL(*WALRecord) error            { return nil }
func (memJobBackend) ReplayWAL(func(WALRecord) error) error { return nil }
func (memJobBackend) CompactWAL([]*WALRecord) error         { return nil }
func (memJobBackend) SyncWAL() error                        { return nil }
