package kanon

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/hierarchy"
)

// paperTableII builds the enterprise data of the paper's Table II with the
// three investment quasi-identifiers on a 1–10 scale.
func paperTableII(t *testing.T) *dataset.Table {
	t.Helper()
	tb := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "Name", Class: dataset.Identifier, Kind: dataset.Text},
		dataset.Column{Name: "InvstVol", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "InvstAmt", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "Valuation", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "Income", Class: dataset.Sensitive, Kind: dataset.Number},
	))
	tb.MustAppendRow(dataset.Str("Alice"), dataset.Num(8), dataset.Num(7), dataset.Num(4), dataset.Num(91250))
	tb.MustAppendRow(dataset.Str("Bob"), dataset.Num(5), dataset.Num(4), dataset.Num(4), dataset.Num(74340))
	tb.MustAppendRow(dataset.Str("Christine"), dataset.Num(4), dataset.Num(5), dataset.Num(5), dataset.Num(75123))
	tb.MustAppendRow(dataset.Str("Robert"), dataset.Num(9), dataset.Num(8), dataset.Num(9), dataset.Num(98230))
	return tb
}

func investGens(t *testing.T) map[string]hierarchy.Generalizer {
	t.Helper()
	// The 1–10 index generalizes through [1-5]/[5-10]-style rungs: base
	// width 5 buckets at level 1, whole domain at level 2.
	mk := func() hierarchy.Generalizer {
		l, err := hierarchy.NewLadder(0, 10, 5)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	return map[string]hierarchy.Generalizer{
		"InvstVol": mk(), "InvstAmt": mk(), "Valuation": mk(),
	}
}

func TestAnonymizeReproducesTableIII(t *testing.T) {
	tb := paperTableII(t)
	a := New(investGens(t))
	res, err := a.AnonymizeDetail(tb, 2)
	if err != nil {
		t.Fatalf("AnonymizeDetail: %v", err)
	}
	anon := res.Table
	if !IsKAnonymous(anon, 2) {
		t.Fatalf("result not 2-anonymous:\n%s", anon)
	}
	// Identifiers retained — the enterprise property.
	for i := 0; i < tb.NumRows(); i++ {
		if !anon.Cell(i, 0).Equal(tb.Cell(i, 0)) {
			t.Errorf("identifier row %d modified", i)
		}
	}
	// Note: the paper's Table III ([5-10],[5-10],[1-5] etc.) keeps all four
	// rows distinct and so is not strictly 2-anonymous; the true lattice
	// minimum for this data is levels (2,2,1) — Valuation in [0-5]/[5-10]
	// buckets, the other two indexes fully generalized — giving the pairs
	// {Alice,Bob} and {Christine,Robert}.
	wantLevels := map[string]int{"InvstVol": 2, "InvstAmt": 2, "Valuation": 1}
	for name, want := range wantLevels {
		if got := res.Levels[name]; got != want {
			t.Errorf("level[%s] = %d, want %d", name, got, want)
		}
	}
	if got := anon.Cell(0, 3).String(); got != "[0-5]" { // Alice Valuation 4
		t.Errorf("Alice Valuation = %s, want [0-5]", got)
	}
	if got := anon.Cell(3, 3).String(); got != "[5-10]" { // Robert Valuation 9
		t.Errorf("Robert Valuation = %s, want [5-10]", got)
	}
}

func TestAnonymizeMinimality(t *testing.T) {
	// Already 1-anonymous data: k=1 needs no generalization at all.
	tb := paperTableII(t)
	a := New(investGens(t))
	res, err := a.AnonymizeDetail(tb, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, lvl := range res.Levels {
		if lvl != 0 {
			t.Errorf("k=1 generalized %q to level %d", name, lvl)
		}
	}
	if !res.Table.Equal(tb) {
		t.Error("k=1 should be the identity")
	}
}

func TestAnonymizeWithSuppression(t *testing.T) {
	// Three clustered rows plus one far outlier. With suppression allowed,
	// the outlier is suppressed instead of dragging everyone to the top.
	tb := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "Name", Class: dataset.Identifier, Kind: dataset.Text},
		dataset.Column{Name: "Age", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "Income", Class: dataset.Sensitive, Kind: dataset.Number},
	))
	tb.MustAppendRow(dataset.Str("a"), dataset.Num(21), dataset.Num(1))
	tb.MustAppendRow(dataset.Str("b"), dataset.Num(22), dataset.Num(2))
	tb.MustAppendRow(dataset.Str("c"), dataset.Num(23), dataset.Num(3))
	tb.MustAppendRow(dataset.Str("d"), dataset.Num(99), dataset.Num(4))
	lad, err := hierarchy.NewLadder(0, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	a := &Anonymizer{
		Generalizers:        map[string]hierarchy.Generalizer{"Age": lad},
		MaxSuppressFraction: 0.25,
	}
	res, err := a.AnonymizeDetail(tb, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suppressed) != 1 || res.Suppressed[0] != 3 {
		t.Errorf("Suppressed = %v, want [3]", res.Suppressed)
	}
	// The outlier's QI and sensitive cells are gone but its identifier stays.
	if !res.Table.Cell(3, 1).IsNull() || !res.Table.Cell(3, 2).IsNull() {
		t.Error("outlier cells not suppressed")
	}
	if got, _ := res.Table.Cell(3, 0).Text(); got != "d" {
		t.Error("outlier identifier should stay")
	}
	// The cluster must not be generalized to the whole domain.
	if res.Levels["Age"] >= lad.MaxLevel() {
		t.Errorf("Age over-generalized to level %d", res.Levels["Age"])
	}
	if !IsKAnonymous(res.Table, 3) {
		t.Error("result not 3-anonymous")
	}
}

func TestAnonymizeUnsatisfiable(t *testing.T) {
	tb := paperTableII(t)
	a := New(investGens(t))
	if _, err := a.Anonymize(tb, 5); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := a.Anonymize(tb, 0); err == nil {
		t.Error("k = 0 accepted")
	}
}

func TestAnonymizeMissingHierarchy(t *testing.T) {
	tb := paperTableII(t)
	a := New(map[string]hierarchy.Generalizer{})
	if _, err := a.Anonymize(tb, 2); err == nil {
		t.Error("missing hierarchy accepted")
	}
}

func TestAnonymizeAtLevels(t *testing.T) {
	tb := paperTableII(t)
	a := New(investGens(t))
	out, err := a.AnonymizeAtLevels(tb, map[string]int{"InvstVol": 1, "InvstAmt": 1, "Valuation": 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every QI cell is one of the two level-1 buckets.
	for i := 0; i < out.NumRows(); i++ {
		for _, c := range out.Schema().IndicesOf(dataset.QuasiIdentifier) {
			s := out.Cell(i, c).String()
			if s != "[0-5]" && s != "[5-10]" {
				t.Errorf("cell (%d,%d) = %s", i, c, s)
			}
		}
	}
	if _, err := a.AnonymizeAtLevels(tb, map[string]int{"InvstVol": 1}); err == nil {
		t.Error("partial level map accepted")
	}
	if _, err := a.AnonymizeAtLevels(tb, map[string]int{"InvstVol": 99, "InvstAmt": 0, "Valuation": 0}); err == nil {
		t.Error("out-of-range level accepted")
	}
}

func TestCategoricalDGHIntegration(t *testing.T) {
	tb := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "Name", Class: dataset.Identifier, Kind: dataset.Text},
		dataset.Column{Name: "Nationality", Class: dataset.QuasiIdentifier, Kind: dataset.Text},
		dataset.Column{Name: "Condition", Class: dataset.Sensitive, Kind: dataset.Text},
	))
	tb.MustAppendRow(dataset.Str("Alice"), dataset.Str("Russian"), dataset.Str("AIDS"))
	tb.MustAppendRow(dataset.Str("Bob"), dataset.Str("American"), dataset.Str("Flu"))
	tb.MustAppendRow(dataset.Str("Christine"), dataset.Str("Japanese"), dataset.Str("Cancer"))
	tb.MustAppendRow(dataset.Str("Robert"), dataset.Str("American"), dataset.Str("Meningitis"))
	dgh, err := hierarchy.NewDGH("*", map[string]string{
		"Russian": "European", "Japanese": "Asian", "American": "N-American",
		"European": "*", "Asian": "*", "N-American": "*",
	})
	if err != nil {
		t.Fatal(err)
	}
	a := New(map[string]hierarchy.Generalizer{"Nationality": dgh})
	res, err := a.AnonymizeDetail(tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Continent level cannot make Russian+Japanese a pair; only the root
	// level (suppression of the column) yields 2-anonymity.
	if res.Levels["Nationality"] != 2 {
		t.Errorf("Nationality level = %d, want 2", res.Levels["Nationality"])
	}
	if !IsKAnonymous(res.Table, 2) {
		t.Error("not 2-anonymous")
	}
}

func TestIsKAnonymous(t *testing.T) {
	tb := paperTableII(t)
	if IsKAnonymous(tb, 2) {
		t.Error("raw Table II reported 2-anonymous")
	}
	if !IsKAnonymous(tb, 1) {
		t.Error("raw table not even 1-anonymous")
	}
	// A table with no QIs is never k-anonymous by convention.
	noQI := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "S", Class: dataset.Sensitive, Kind: dataset.Number}))
	if IsKAnonymous(noQI, 1) {
		t.Error("no-QI table reported anonymous")
	}
}

func TestVectorsOfHeight(t *testing.T) {
	got := vectorsOfHeight([]int{2, 1}, 2)
	// Vectors with sum 2 bounded by (2,1): (1,1), (2,0).
	want := [][]int{{1, 1}, {2, 0}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Errorf("vector %d = %v, want %v", i, got[i], want[i])
		}
	}
	if got := vectorsOfHeight([]int{1}, 5); len(got) != 0 {
		t.Errorf("impossible height yielded %v", got)
	}
	if got := vectorsOfHeight(nil, 0); len(got) != 1 {
		t.Errorf("empty maxima height 0 = %v, want one empty vector", got)
	}
}

func TestName(t *testing.T) {
	if New(nil).Name() == "" {
		t.Error("empty name")
	}
}
