// Package kanon implements full-domain k-anonymity by generalization and
// suppression in the style of Samarati and Sweeney [2] — the technique that
// produces releases like the paper's Table III. Quasi-identifiers are
// rewritten through per-attribute generalization hierarchies
// (internal/hierarchy) and up to MaxSuppress outlier records may be
// suppressed entirely.
//
// The search walks the lattice of generalization level vectors in order of
// total height and returns a minimal vector whose generalization is
// k-anonymous, i.e. minimal distortion for the requested k.
package kanon

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/hierarchy"
)

// Anonymizer holds the per-quasi-identifier hierarchies.
type Anonymizer struct {
	// Generalizers maps quasi-identifier column names to their hierarchy.
	// Every QI column of an input table must have an entry.
	Generalizers map[string]hierarchy.Generalizer
	// MaxSuppressFraction is the largest fraction of records that may be
	// suppressed to reach k-anonymity (Samarati's MaxSup). Zero forbids
	// suppression.
	MaxSuppressFraction float64
}

// New returns a generalization anonymizer over the given hierarchies with no
// suppression allowance.
func New(gens map[string]hierarchy.Generalizer) *Anonymizer {
	return &Anonymizer{Generalizers: gens}
}

// Name identifies the scheme in reports.
func (a *Anonymizer) Name() string { return "full-domain-generalization" }

// ErrUnsatisfiable is returned when no level vector achieves k-anonymity
// within the suppression allowance.
var ErrUnsatisfiable = errors.New("kanon: no generalization achieves k-anonymity")

// Result carries an anonymization plus the lattice node that produced it.
type Result struct {
	Table *dataset.Table
	// Levels is the generalization level per quasi-identifier, keyed by
	// column name.
	Levels map[string]int
	// Suppressed lists the row indices whose cells were fully suppressed.
	Suppressed []int
}

// Anonymize returns a minimal-height k-anonymous generalization of t.
func (a *Anonymizer) Anonymize(t *dataset.Table, k int) (*dataset.Table, error) {
	res, err := a.AnonymizeDetail(t, k)
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// AnonymizeDetail is Anonymize with the chosen lattice node and suppression
// set exposed.
func (a *Anonymizer) AnonymizeDetail(t *dataset.Table, k int) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("kanon: k must be ≥ 1, got %d", k)
	}
	if t.NumRows() < k {
		return nil, fmt.Errorf("kanon: %d records cannot be %d-anonymous: %w", t.NumRows(), k, dataset.ErrTooFewRecords)
	}
	qiNames := t.Schema().NamesOf(dataset.QuasiIdentifier)
	if len(qiNames) == 0 {
		return nil, errors.New("kanon: table has no quasi-identifier columns")
	}
	gens := make([]hierarchy.Generalizer, len(qiNames))
	for i, n := range qiNames {
		g, ok := a.Generalizers[n]
		if !ok {
			return nil, fmt.Errorf("kanon: no hierarchy for quasi-identifier %q", n)
		}
		gens[i] = g
	}
	maxSup := int(a.MaxSuppressFraction * float64(t.NumRows()))

	// Enumerate level vectors by total height, lexicographic within a
	// height for determinism.
	maxima := make([]int, len(gens))
	total := 0
	for i, g := range gens {
		maxima[i] = g.MaxLevel()
		total += maxima[i]
	}
	for height := 0; height <= total; height++ {
		vectors := vectorsOfHeight(maxima, height)
		for _, vec := range vectors {
			res, ok, err := a.tryVector(t, qiNames, gens, vec, k, maxSup)
			if err != nil {
				return nil, err
			}
			if ok {
				return res, nil
			}
		}
	}
	return nil, fmt.Errorf("%w (k=%d, max suppression %d rows)", ErrUnsatisfiable, k, maxSup)
}

// AnonymizeAtLevels applies an explicit level vector (keyed by QI name)
// without any search or suppression, returning the generalized table. This
// is the building block CLI users reach for when they want Table III exactly.
func (a *Anonymizer) AnonymizeAtLevels(t *dataset.Table, levels map[string]int) (*dataset.Table, error) {
	qiNames := t.Schema().NamesOf(dataset.QuasiIdentifier)
	vec := make([]int, len(qiNames))
	gens := make([]hierarchy.Generalizer, len(qiNames))
	for i, n := range qiNames {
		g, ok := a.Generalizers[n]
		if !ok {
			return nil, fmt.Errorf("kanon: no hierarchy for quasi-identifier %q", n)
		}
		gens[i] = g
		lvl, ok := levels[n]
		if !ok {
			return nil, fmt.Errorf("kanon: no level given for quasi-identifier %q", n)
		}
		vec[i] = lvl
	}
	return applyVector(t, qiNames, gens, vec)
}

func (a *Anonymizer) tryVector(t *dataset.Table, qiNames []string, gens []hierarchy.Generalizer, vec []int, k, maxSup int) (*Result, bool, error) {
	gt, err := applyVector(t, qiNames, gens, vec)
	if err != nil {
		return nil, false, err
	}
	qis := gt.Schema().IndicesOf(dataset.QuasiIdentifier)
	groups := gt.GroupBy(qis)
	var small []int
	for _, g := range groups {
		if len(g) < k {
			small = append(small, g...)
		}
	}
	if len(small) > maxSup {
		return nil, false, nil
	}
	sort.Ints(small)
	for _, i := range small {
		for c := 0; c < gt.NumCols(); c++ {
			if gt.Schema().Column(c).Class == dataset.Identifier {
				continue // enterprise setting: identifiers stay
			}
			if err := gt.SetCell(i, c, dataset.NullValue()); err != nil {
				return nil, false, err
			}
		}
	}
	levels := make(map[string]int, len(qiNames))
	for i, n := range qiNames {
		levels[n] = vec[i]
	}
	return &Result{Table: gt, Levels: levels, Suppressed: small}, true, nil
}

func applyVector(t *dataset.Table, qiNames []string, gens []hierarchy.Generalizer, vec []int) (*dataset.Table, error) {
	out := t.Clone()
	for i, name := range qiNames {
		col := out.Schema().MustLookup(name)
		for r := 0; r < out.NumRows(); r++ {
			nv, err := gens[i].GeneralizeValue(out.Cell(r, col), vec[i])
			if err != nil {
				return nil, fmt.Errorf("kanon: column %q row %d: %w", name, r, err)
			}
			if err := out.SetCell(r, col, nv); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// vectorsOfHeight enumerates all level vectors bounded by maxima whose
// components sum to height, in lexicographic order.
func vectorsOfHeight(maxima []int, height int) [][]int {
	var out [][]int
	vec := make([]int, len(maxima))
	var rec func(i, remaining int)
	rec = func(i, remaining int) {
		if i == len(maxima) {
			if remaining == 0 {
				out = append(out, append([]int(nil), vec...))
			}
			return
		}
		hi := maxima[i]
		if hi > remaining {
			hi = remaining
		}
		for v := 0; v <= hi; v++ {
			vec[i] = v
			rec(i+1, remaining-v)
		}
		vec[i] = 0
	}
	rec(0, height)
	return out
}

// IsKAnonymous reports whether every quasi-identifier equivalence class of t
// has at least k members, ignoring fully suppressed rows (all-null QIs count
// as suppressed and are exempt, per the generalization+suppression model).
func IsKAnonymous(t *dataset.Table, k int) bool {
	qis := t.Schema().IndicesOf(dataset.QuasiIdentifier)
	if len(qis) == 0 {
		return false
	}
	for _, g := range t.GroupBy(qis) {
		if len(g) >= k {
			continue
		}
		// Exempt only groups whose QIs are entirely suppressed.
		allNull := true
		for _, c := range qis {
			if !t.Cell(g[0], c).IsNull() {
				allNull = false
				break
			}
		}
		if !allNull {
			return false
		}
	}
	return true
}
