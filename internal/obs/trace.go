package obs

import (
	"context"
	"sync"
	"time"
)

// Span is one completed trace span: a named, timed slice of a job's
// execution. Start carries Go's monotonic clock reading, so Duration is
// immune to wall-clock steps; the JSON projection is what
// GET /v1/jobs/{id}/trace serves.
type Span struct {
	// Job is the owning job's ID — the query key. Spans recorded outside a
	// job context have an empty Job and are only reachable via Recent.
	Job string `json:"job,omitempty"`
	// Name identifies the operation ("job.run", "sweep.level", …).
	Name string `json:"name"`
	// Start is the span's begin time.
	Start time.Time `json:"start"`
	// DurationNS is the span's length in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
	// Attrs carries bounded, low-cardinality details (level k, job kind).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Tracer records completed spans into a fixed-size ring buffer: old spans
// are overwritten, memory is bounded, and a job's spans stay queryable for
// as long as the ring has room. A nil *Tracer records nothing.
type Tracer struct {
	mu   sync.Mutex
	buf  []Span
	next int // ring write cursor; once the ring is full it is also the oldest entry
}

// DefaultTraceCapacity bounds the span ring when NewTracer is given no size:
// enough for hundreds of concurrent sweeps' level spans.
const DefaultTraceCapacity = 4096

// NewTracer builds a tracer whose ring holds capacity spans (≤ 0 picks
// DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Span, 0, capacity)}
}

// Record appends one completed span to the ring.
func (t *Tracer) Record(sp Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, sp)
		return
	}
	t.buf[t.next] = sp
	t.next++
	if t.next == cap(t.buf) {
		t.next = 0
	}
}

// ActiveSpan is an in-flight span started by StartSpan; End records it.
type ActiveSpan struct {
	t     *Tracer
	span  Span
	ended bool
	mu    sync.Mutex
}

// StartSpan opens a span named name, adopting the job ID carried by ctx
// (WithJobID). End it to record it; an un-ended span is simply never
// recorded. The context is returned unchanged today (spans do not nest) but
// callers should thread it anyway — nesting can then be added without
// touching call sites.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	if t == nil {
		return ctx, nil
	}
	return ctx, &ActiveSpan{t: t, span: Span{Job: JobID(ctx), Name: name, Start: time.Now()}}
}

// SetAttr attaches a low-cardinality attribute to the span.
func (s *ActiveSpan) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.span.Attrs == nil {
		s.span.Attrs = make(map[string]string, 2)
	}
	s.span.Attrs[k] = v
}

// End closes the span and records it; extra Ends are no-ops.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.span.DurationNS = int64(time.Since(s.span.Start))
	s.t.Record(s.span)
}

// Spans returns every retained span of one job, oldest first. The slice is
// a copy — safe to serialize concurrently with new recordings.
func (t *Tracer) Spans(job string) []Span {
	if t == nil {
		return nil
	}
	var out []Span
	t.scan(func(sp Span) {
		if sp.Job == job {
			out = append(out, sp)
		}
	})
	return out
}

// Recent returns up to n most recent spans across all jobs, oldest first.
func (t *Tracer) Recent(n int) []Span {
	if t == nil || n <= 0 {
		return nil
	}
	var all []Span
	t.scan(func(sp Span) { all = append(all, sp) })
	if len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// scan visits retained spans oldest-first under the lock. While the ring is
// filling the oldest span is index 0; once full, the write cursor points at
// the slot about to be overwritten — the oldest entry.
func (t *Tracer) scan(fn func(Span)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) == cap(t.buf) {
		for i := t.next; i < len(t.buf); i++ {
			fn(t.buf[i])
		}
		for i := 0; i < t.next; i++ {
			fn(t.buf[i])
		}
		return
	}
	for i := range t.buf {
		fn(t.buf[i])
	}
}
