package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestPrometheusExpositionGolden pins the full text exposition — HELP/TYPE
// lines, label rendering and escaping, histogram expansion, sort order — to
// a golden string. The format is a wire contract with Prometheus scrapers;
// any change here must be deliberate.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()

	jobs := r.Counter("jobs_submitted_total", "Jobs accepted by Submit.", "tenant", "type")
	jobs.With("default", "fred-sweep").Add(3)
	jobs.With("acme", "anonymize").Inc()

	depth := r.Gauge("queue_depth_static", "Pending jobs (static test gauge).")
	depth.With().Set(7)

	r.GaugeFunc("workers_busy", "Workers currently running a job.", func() float64 { return 2 })

	lat := r.Histogram("job_duration_seconds", "Job wall time.", []float64{0.1, 1, 10}, "tenant")
	h := lat.With("default")
	h.Observe(0.05) // ≤ 0.1
	h.Observe(0.5)  // ≤ 1
	h.Observe(0.5)  // ≤ 1
	h.Observe(99)   // +Inf

	esc := r.Counter("weird_labels_total", "Label escaping.", "name")
	esc.With("a\"b\\c\nd").Inc()

	want := strings.Join([]string{
		`# HELP job_duration_seconds Job wall time.`,
		`# TYPE job_duration_seconds histogram`,
		`job_duration_seconds_bucket{tenant="default",le="0.1"} 1`,
		`job_duration_seconds_bucket{tenant="default",le="1"} 3`,
		`job_duration_seconds_bucket{tenant="default",le="10"} 3`,
		`job_duration_seconds_bucket{tenant="default",le="+Inf"} 4`,
		`job_duration_seconds_sum{tenant="default"} 100.05`,
		`job_duration_seconds_count{tenant="default"} 4`,
		`# HELP jobs_submitted_total Jobs accepted by Submit.`,
		`# TYPE jobs_submitted_total counter`,
		`jobs_submitted_total{tenant="acme",type="anonymize"} 1`,
		`jobs_submitted_total{tenant="default",type="fred-sweep"} 3`,
		`# HELP queue_depth_static Pending jobs (static test gauge).`,
		`# TYPE queue_depth_static gauge`,
		`queue_depth_static 7`,
		`# HELP weird_labels_total Label escaping.`,
		`# TYPE weird_labels_total counter`,
		`weird_labels_total{name="a\"b\\c\nd"} 1`,
		`# HELP workers_busy Workers currently running a job.`,
		`# TYPE workers_busy gauge`,
		`workers_busy 2`,
		``,
	}, "\n")

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRegistryGetOrCreate: re-registering a family returns the same series
// storage, so independently wired components share one metric.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("shared_total", "Shared.", "tenant")
	b := r.Counter("shared_total", "Shared.", "tenant")
	a.With("t1").Inc()
	b.With("t1").Add(2)
	if got := a.With("t1").Value(); got != 3 {
		t.Fatalf("shared counter = %v, want 3", got)
	}
}

// TestRegistryKindMismatchPanics: silently aliasing a counter as a gauge
// would corrupt the exposition; it must fail loudly instead.
func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("dual_total", "x")
}

// TestNilSafety: the entire instrument surface is a no-op on nil receivers,
// so uninstrumented components never nil-check.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a", "x", "tenant").With("t").Inc()
	r.Gauge("b", "x").With().Set(1)
	r.Histogram("c", "x", nil, "tenant").With("t").Observe(1)
	r.GaugeFunc("d", "x", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var tr *Tracer
	_, sp := tr.StartSpan(t.Context(), "noop")
	sp.SetAttr("k", "v")
	sp.End()
	if got := tr.Spans("job-1"); got != nil {
		t.Fatalf("nil tracer returned spans: %v", got)
	}
}

// TestCounterMonotonic: negative deltas are dropped, counters only go up.
func TestCounterMonotonic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mono_total", "x").With()
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %v, want 5", got)
	}
}

// TestConcurrentInstruments hammers one registry from parallel goroutines —
// the shape of parallel jobs all recording into shared families — and checks
// the totals are exact. Run under -race this is also the data-race gate for
// the whole metrics path, exposition included.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "x", "tenant")
	g := r.Gauge("hammer_gauge", "x", "tenant")
	h := r.Histogram("hammer_seconds", "x", nil, "tenant")

	const goroutines = 16
	const perG = 1000
	tenants := []string{"t0", "t1", "t2"}
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tn := tenants[i%len(tenants)]
			for j := 0; j < perG; j++ {
				c.With(tn).Inc()
				g.With(tn).Add(1)
				h.With(tn).Observe(float64(j%100) / 1000)
				if j%100 == 0 {
					// Scrape concurrently with writes.
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
					}
				}
			}
		}(i)
	}
	wg.Wait()

	var total float64
	var observed uint64
	for _, tn := range tenants {
		total += c.With(tn).Value()
		observed += h.With(tn).Count()
	}
	if total != goroutines*perG {
		t.Fatalf("counter total = %v, want %d", total, goroutines*perG)
	}
	if observed != goroutines*perG {
		t.Fatalf("histogram count = %v, want %d", observed, goroutines*perG)
	}
}
