package obs

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTracerSpansPerJob: spans land under the job ID their context carried
// and are returned oldest-first; other jobs' spans stay invisible.
func TestTracerSpansPerJob(t *testing.T) {
	tr := NewTracer(16)
	ctx := WithJobID(context.Background(), "job-1")
	for k := 2; k <= 4; k++ {
		_, sp := tr.StartSpan(ctx, "sweep.level")
		sp.SetAttr("k", fmt.Sprint(k))
		sp.End()
	}
	_, other := tr.StartSpan(WithJobID(context.Background(), "job-2"), "job.run")
	other.End()

	spans := tr.Spans("job-1")
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for i, sp := range spans {
		if sp.Name != "sweep.level" || sp.Job != "job-1" {
			t.Fatalf("span %d = %+v", i, sp)
		}
		if want := fmt.Sprint(i + 2); sp.Attrs["k"] != want {
			t.Fatalf("span %d k attr = %q, want %q (order violated)", i, sp.Attrs["k"], want)
		}
		if sp.DurationNS < 0 {
			t.Fatalf("span %d has negative duration", i)
		}
	}
	if got := tr.Spans("job-3"); got != nil {
		t.Fatalf("unknown job returned spans: %v", got)
	}
}

// TestTracerRingOverwrite: the ring stays bounded and keeps the most recent
// spans, dropping the oldest.
func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Span{Job: "j", Name: fmt.Sprintf("s%d", i), Start: time.Now()})
	}
	spans := tr.Spans("j")
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := fmt.Sprintf("s%d", 6+i); sp.Name != want {
			t.Fatalf("span %d = %s, want %s", i, sp.Name, want)
		}
	}
	if got := tr.Recent(2); len(got) != 2 || got[1].Name != "s9" {
		t.Fatalf("Recent(2) = %v", got)
	}
}

// TestTracerDoubleEndRecordsOnce: End is idempotent.
func TestTracerDoubleEndRecordsOnce(t *testing.T) {
	tr := NewTracer(8)
	_, sp := tr.StartSpan(WithJobID(context.Background(), "j"), "x")
	sp.End()
	sp.End()
	if got := len(tr.Spans("j")); got != 1 {
		t.Fatalf("recorded %d spans, want 1", got)
	}
}

// TestTracerConcurrent hammers Record/Spans from parallel goroutines — the
// -race gate for the ring buffer.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := WithJobID(context.Background(), fmt.Sprintf("job-%d", i%2))
			for j := 0; j < 500; j++ {
				_, sp := tr.StartSpan(ctx, "op")
				sp.End()
				if j%50 == 0 {
					tr.Spans("job-0")
				}
			}
		}(i)
	}
	wg.Wait()
	if got := len(tr.Recent(1000)); got != 64 {
		t.Fatalf("ring retained %d spans, want 64", got)
	}
}

// TestCtxHandlerStampsIdentities: a context carrying request ID, tenant and
// job ID stamps all three onto records logged through the wrapped handler.
func TestCtxHandlerStampsIdentities(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, slog.LevelDebug)
	ctx := WithJobID(WithTenant(WithRequestID(context.Background(), "req-abc"), "acme"), "job-7")
	logger.InfoContext(ctx, "level done", "k", 5)
	line := buf.String()
	for _, want := range []string{"request_id=req-abc", "tenant=acme", "job=job-7", "k=5", "level done"} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %q: %s", want, line)
		}
	}

	buf.Reset()
	logger.Info("no context")
	if line := buf.String(); strings.Contains(line, "request_id") {
		t.Errorf("context-free line gained a request_id: %s", line)
	}
}
