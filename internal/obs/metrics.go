// Package obs is the service-wide observability plane: a dependency-free
// typed metrics registry with Prometheus text-format exposition, a
// lightweight per-job trace span API backed by a ring buffer, and slog
// context plumbing that threads request ID, tenant and job ID through every
// log line. The module is stdlib-only and this package keeps it that way.
//
// Everything is nil-safe: a nil *Registry hands out nil instruments whose
// methods are no-ops, and a nil *Tracer records nothing — components accept
// an optional registry/tracer and instrument unconditionally, paying nothing
// when observability is not wired up.
//
// DESIGN.md documents the naming conventions and the cardinality rules
// (tenant is the only free label; job IDs and request IDs never become
// labels — they go to traces and logs instead).
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// LatencyBuckets is the fixed log-scale bucket ladder shared by every
// latency histogram in the service: 100µs to 25s in 1–2.5–5 decades. One
// shared ladder keeps histograms comparable across metric families and
// bounds the exposition size.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
	10, 25,
}

// metricKind discriminates the exposition TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. The zero value is not usable; NewRegistry is. A nil
// *Registry is a valid no-op sink.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string // registration order; exposition sorts anyway
	funcs    map[string]*gaugeFunc
}

type gaugeFunc struct {
	help string
	fn   func() float64
}

// family is one named metric with a fixed label schema and a set of live
// label-value series.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histogram upper bounds, +Inf implicit

	mu     sync.RWMutex
	series map[string]*series
}

// series is one labeled time series. Counter/gauge values are float64 bits
// in an atomic word; histograms add per-bucket counts and a sum.
type series struct {
	labelVals []string
	bits      atomic.Uint64 // counter/gauge value, and histogram sum
	count     atomic.Uint64 // histogram observation count
	bucketN   []atomic.Uint64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		funcs:    make(map[string]*gaugeFunc),
	}
}

// register get-or-creates a family. Re-registering an existing name returns
// the existing family; asking for it with a different kind or label schema is
// a programming error and panics loudly rather than corrupting the exposition.
func (r *Registry) register(name, help string, kind metricKind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind or label schema", name))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    kind,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*series),
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter registers (or retrieves) a counter family. Counters only go up.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.register(name, help, kindCounter, nil, labels)}
}

// Gauge registers (or retrieves) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.register(name, help, kindGauge, nil, labels)}
}

// Histogram registers (or retrieves) a histogram family with the given
// upper-bound buckets (+Inf implied). Nil buckets default to LatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = LatencyBuckets
	}
	return &HistogramVec{fam: r.register(name, help, kindHistogram, buckets, labels)}
}

// GaugeFunc registers a label-less gauge evaluated at scrape time — the
// natural shape for instantaneous values the owner already tracks (queue
// depth, busy workers). Re-registering a name replaces its callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, taken := r.families[name]; taken {
		panic(fmt.Sprintf("obs: metric %q already registered as a non-func family", name))
	}
	r.funcs[name] = &gaugeFunc{help: help, fn: fn}
}

// get resolves one series of the family for the given label values.
func (f *family) get(vals []string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, "\x00")
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.series[key]; ok {
		return s
	}
	s = &series{labelVals: append([]string(nil), vals...)}
	if f.kind == kindHistogram {
		s.bucketN = make([]atomic.Uint64, len(f.buckets)+1)
	}
	f.series[key] = s
	return s
}

// addFloat atomically adds delta to the series' float64 word.
func (s *series) addFloat(delta float64) {
	for {
		old := s.bits.Load()
		if s.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// --- counter ----------------------------------------------------------------

// CounterVec is a counter family; With resolves one labeled counter.
type CounterVec struct{ fam *family }

// Counter is one labeled counter series.
type Counter struct{ s *series }

// With returns the counter for the given label values (one per label name,
// in registration order).
func (v *CounterVec) With(labelVals ...string) Counter {
	if v == nil {
		return Counter{}
	}
	return Counter{s: v.fam.get(labelVals)}
}

// Add increments the counter by delta; negative deltas are ignored —
// counters only go up.
func (c Counter) Add(delta float64) {
	if c.s == nil || delta < 0 {
		return
	}
	c.s.addFloat(delta)
}

// Inc increments the counter by one.
func (c Counter) Inc() { c.Add(1) }

// Value reads the counter, for tests and snapshot logging.
func (c Counter) Value() float64 {
	if c.s == nil {
		return 0
	}
	return math.Float64frombits(c.s.bits.Load())
}

// --- gauge ------------------------------------------------------------------

// GaugeVec is a gauge family; With resolves one labeled gauge.
type GaugeVec struct{ fam *family }

// Gauge is one labeled gauge series.
type Gauge struct{ s *series }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelVals ...string) Gauge {
	if v == nil {
		return Gauge{}
	}
	return Gauge{s: v.fam.get(labelVals)}
}

// Set stores an absolute value.
func (g Gauge) Set(v float64) {
	if g.s == nil {
		return
	}
	g.s.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by delta (negative deltas allowed).
func (g Gauge) Add(delta float64) {
	if g.s == nil {
		return
	}
	g.s.addFloat(delta)
}

// Inc and Dec move the gauge by ±1.
func (g Gauge) Inc() { g.Add(1) }

// Dec decrements the gauge by one.
func (g Gauge) Dec() { g.Add(-1) }

// Value reads the gauge, for tests and snapshot logging.
func (g Gauge) Value() float64 {
	if g.s == nil {
		return 0
	}
	return math.Float64frombits(g.s.bits.Load())
}

// --- histogram --------------------------------------------------------------

// HistogramVec is a histogram family; With resolves one labeled histogram.
type HistogramVec struct{ fam *family }

// Histogram is one labeled histogram series.
type Histogram struct {
	s       *series
	buckets []float64
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelVals ...string) Histogram {
	if v == nil {
		return Histogram{}
	}
	return Histogram{s: v.fam.get(labelVals), buckets: v.fam.buckets}
}

// Observe records one observation.
func (h Histogram) Observe(v float64) {
	if h.s == nil {
		return
	}
	// Cumulative buckets are computed at exposition; each observation lands
	// in exactly one bucket slot here (the last slot is +Inf).
	i := sort.SearchFloat64s(h.buckets, v)
	h.s.bucketN[i].Add(1)
	h.s.count.Add(1)
	h.s.addFloat(v)
}

// Count reads the observation count, for tests and snapshot logging.
func (h Histogram) Count() uint64 {
	if h.s == nil {
		return 0
	}
	return h.s.count.Load()
}

// --- exposition -------------------------------------------------------------

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4): HELP and TYPE lines, one sample line per series,
// histogram series expanded into cumulative _bucket/_sum/_count. Output is
// fully sorted (families by name, series by label values), so it is stable
// for golden tests and diffable between scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families)+len(r.funcs))
	for name := range r.families {
		names = append(names, name)
	}
	for name := range r.funcs {
		names = append(names, name)
	}
	fams := make(map[string]*family, len(r.families))
	for name, f := range r.families {
		fams[name] = f
	}
	funcs := make(map[string]*gaugeFunc, len(r.funcs))
	for name, gf := range r.funcs {
		funcs[name] = gf
	}
	r.mu.RUnlock()
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		if gf, ok := funcs[name]; ok {
			writeHeader(&b, name, gf.help, kindGauge)
			fmt.Fprintf(&b, "%s %s\n", name, formatFloat(gf.fn()))
			continue
		}
		f := fams[name]
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		writeHeader(&b, f.name, f.help, f.kind)
		for _, k := range keys {
			s := f.series[k]
			switch f.kind {
			case kindHistogram:
				writeHistogram(&b, f, s)
			default:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, s.labelVals, "", ""), formatFloat(math.Float64frombits(s.bits.Load())))
			}
		}
		f.mu.RUnlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHeader(b *strings.Builder, name, help string, kind metricKind) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, kind)
}

func writeHistogram(b *strings.Builder, f *family, s *series) {
	cum := uint64(0)
	for i, ub := range f.buckets {
		cum += s.bucketN[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.labelVals, "le", formatFloat(ub)), cum)
	}
	cum += s.bucketN[len(f.buckets)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.labelVals, "le", "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, s.labelVals, "", ""), formatFloat(math.Float64frombits(s.bits.Load())))
	fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, s.labelVals, "", ""), s.count.Load())
}

// labelString renders {a="x",b="y"} with exposition-format escaping, with an
// optional extra label (the histogram "le"). Empty schemas render nothing.
func labelString(names, vals []string, extraName, extraVal string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(v string) string { return helpEscaper.Replace(v) }

// formatFloat renders a sample value: shortest exact representation, +Inf
// spelled the Prometheus way.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the exposition over HTTP — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // nothing to do once headers are out
	})
}
