package obs

import (
	"context"
	"io"
	"log/slog"
)

// This file threads the three correlation identities — request ID, tenant,
// job ID — through context, and provides a slog.Handler wrapper that stamps
// them onto every log record emitted with a context-aware call
// (InfoContext & friends). One job's lifecycle is then grep-able end to end:
// the HTTP access line, the engine's submit/finish lines and the per-level
// stream all carry the same ids.

type ctxKey int

const (
	ctxRequestID ctxKey = iota
	ctxTenant
	ctxJobID
)

// WithRequestID returns ctx carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxRequestID, id)
}

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string { return ctxString(ctx, ctxRequestID) }

// WithTenant returns ctx carrying the tenant name.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, ctxTenant, tenant)
}

// Tenant returns the tenant carried by ctx, or "".
func Tenant(ctx context.Context) string { return ctxString(ctx, ctxTenant) }

// WithJobID returns ctx carrying the job ID.
func WithJobID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxJobID, id)
}

// JobID returns the job ID carried by ctx, or "".
func JobID(ctx context.Context) string { return ctxString(ctx, ctxJobID) }

func ctxString(ctx context.Context, key ctxKey) string {
	if ctx == nil {
		return ""
	}
	if v, ok := ctx.Value(key).(string); ok {
		return v
	}
	return ""
}

// ctxHandler decorates an inner handler with the context identities.
type ctxHandler struct{ inner slog.Handler }

// NewCtxHandler wraps h so every record logged with a context carrying a
// request ID, tenant or job ID (the With* helpers above) gains the matching
// request_id / tenant / job attributes automatically.
func NewCtxHandler(h slog.Handler) slog.Handler { return ctxHandler{inner: h} }

func (h ctxHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h ctxHandler) Handle(ctx context.Context, rec slog.Record) error {
	if id := RequestID(ctx); id != "" {
		rec.AddAttrs(slog.String("request_id", id))
	}
	if t := Tenant(ctx); t != "" {
		rec.AddAttrs(slog.String("tenant", t))
	}
	if id := JobID(ctx); id != "" {
		rec.AddAttrs(slog.String("job", id))
	}
	return h.inner.Handle(ctx, rec)
}

func (h ctxHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return ctxHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h ctxHandler) WithGroup(name string) slog.Handler {
	return ctxHandler{inner: h.inner.WithGroup(name)}
}

// NewLogger builds the service's standard structured logger: slog text
// format on w at the given level, with the context identities stamped on
// every record.
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(NewCtxHandler(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})))
}

// NopLogger returns a logger that discards everything — the default where a
// component was handed no logger, so call sites never nil-check.
func NopLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }
