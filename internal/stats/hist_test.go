package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0, 1, 2, 3, 9.9, 10, -5, 15}, 0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	// -5 clamps to bin 0, 15 and 10 clamp to bin 4.
	if h.Counts[0] != 3 { // 0, 1, -5 → bins: 0→0, 1→0, -5→0... wait 1 is in bin 0 (width 2): 0,1,-5
		t.Errorf("bin 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 3 { // 9.9, 10, 15
		t.Errorf("bin 4 = %d, want 3", h.Counts[4])
	}
	if _, err := NewHistogram(nil, 0, 10, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewHistogram(nil, 5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
}

func TestHistogramProbabilities(t *testing.T) {
	h, err := NewHistogram([]float64{1, 1, 9}, 0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := h.Probabilities()
	if !almost(p[0], 2.0/3, 1e-12) || !almost(p[1], 1.0/3, 1e-12) {
		t.Errorf("probabilities = %v", p)
	}
	empty := &Histogram{Lo: 0, Hi: 1, Counts: make([]int, 3)}
	for _, v := range empty.Probabilities() {
		if v != 0 {
			t.Error("empty histogram probabilities should be zero")
		}
	}
}

func TestEMDOrdered(t *testing.T) {
	// Identical distributions.
	d, err := EMDOrdered([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	if err != nil || d != 0 {
		t.Errorf("identical EMD = %g, %v", d, err)
	}
	// All mass moves across the full support → 1.
	d, err = EMDOrdered([]float64{1, 0, 0}, []float64{0, 0, 1})
	if err != nil || !almost(d, 1, 1e-12) {
		t.Errorf("extreme EMD = %g, %v", d, err)
	}
	// The t-closeness running example from Li et al.: uniform vs point mass.
	d, _ = EMDOrdered([]float64{1.0 / 3, 1.0 / 3, 1.0 / 3}, []float64{0, 1, 0})
	if !almost(d, 1.0/3, 1e-12) {
		t.Errorf("uniform-vs-point EMD = %g, want 1/3", d)
	}
	if _, err := EMDOrdered([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("support mismatch accepted")
	}
	if _, err := EMDOrdered(nil, nil); err == nil {
		t.Error("empty accepted")
	}
	if d, err := EMDOrdered([]float64{1}, []float64{1}); err != nil || d != 0 {
		t.Errorf("singleton EMD = %g, %v", d, err)
	}
}

// Property: EMD is symmetric, non-negative, and zero on identical inputs.
func TestEMDProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		n := len(raw) / 2 * 2
		p := make([]float64, n/2)
		q := make([]float64, n/2)
		var sp, sq float64
		for i := 0; i < n/2; i++ {
			p[i] = float64(raw[i]) + 1
			q[i] = float64(raw[n/2+i]) + 1
			sp += p[i]
			sq += q[i]
		}
		for i := range p {
			p[i] /= sp
			q[i] /= sq
		}
		dpq, err1 := EMDOrdered(p, q)
		dqp, err2 := EMDOrdered(q, p)
		dpp, err3 := EMDOrdered(p, p)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return dpq >= 0 && math.Abs(dpq-dqp) < 1e-12 && dpp == 0 && dpq <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTotalVariation(t *testing.T) {
	d, err := TotalVariation([]float64{1, 0}, []float64{0, 1})
	if err != nil || d != 1 {
		t.Errorf("TV = %g, %v", d, err)
	}
	d, _ = TotalVariation([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	if d != 0 {
		t.Errorf("identical TV = %g", d)
	}
	if _, err := TotalVariation([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("support mismatch accepted")
	}
}

func TestEmpiricalCDFDistance(t *testing.T) {
	d, err := EmpiricalCDFDistance([]float64{0, 1}, []float64{0, 1})
	if err != nil || d != 0 {
		t.Errorf("identical = %g, %v", d, err)
	}
	// Point masses at opposite ends of the pooled range → 1.
	d, err = EmpiricalCDFDistance([]float64{0, 0}, []float64{10, 10})
	if err != nil || !almost(d, 1, 1e-12) {
		t.Errorf("extreme = %g, %v", d, err)
	}
	if _, err := EmpiricalCDFDistance(nil, []float64{1}); err == nil {
		t.Error("empty accepted")
	}
	if d, err := EmpiricalCDFDistance([]float64{5}, []float64{5}); err != nil || d != 0 {
		t.Errorf("degenerate equal = %g, %v", d, err)
	}
}
