package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is an equal-width histogram over [Lo, Hi] with len(Counts) bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram bins xs into bins equal-width buckets over [lo, hi]. Values
// outside the range clamp to the edge bins, so mass is never dropped.
func NewHistogram(xs []float64, lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bin count, got %d", bins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram range [%g, %g] is empty", lo, hi)
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
	}
	return h, nil
}

// Total returns the number of observations binned.
func (h *Histogram) Total() int {
	var n int
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Probabilities returns the normalized bin masses. An empty histogram
// returns all zeros.
func (h *Histogram) Probabilities() []float64 {
	out := make([]float64, len(h.Counts))
	n := h.Total()
	if n == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(n)
	}
	return out
}

// EMDOrdered computes the first Wasserstein (earth mover's) distance between
// two distributions over the same ordered support with unit adjacent-bin
// ground distance, normalized by (len−1) so the result lies in [0, 1]. This
// is the distance t-closeness uses for numeric attributes.
func EMDOrdered(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: EMD over different supports (%d vs %d)", len(p), len(q))
	}
	if len(p) == 0 {
		return 0, ErrEmpty
	}
	if len(p) == 1 {
		return 0, nil
	}
	var carry, dist float64
	for i := 0; i < len(p)-1; i++ {
		carry += p[i] - q[i]
		dist += math.Abs(carry)
	}
	return dist / float64(len(p)-1), nil
}

// TotalVariation returns half the L1 distance between two distributions over
// the same support — the distance t-closeness uses for categorical
// attributes.
func TotalVariation(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: total variation over different supports (%d vs %d)", len(p), len(q))
	}
	var s float64
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s / 2, nil
}

// EmpiricalCDFDistance returns the 1-Wasserstein distance between the
// empirical distributions of two raw samples, normalized by the pooled
// range. It is a support-free alternative to EMDOrdered used when the
// attribute has no natural binning.
func EmpiricalCDFDistance(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrEmpty
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	pooledLo := math.Min(as[0], bs[0])
	pooledHi := math.Max(as[len(as)-1], bs[len(bs)-1])
	if pooledHi == pooledLo {
		return 0, nil
	}
	// Integrate |F_a(x) − F_b(x)| over the merged breakpoints.
	points := append(append([]float64(nil), as...), bs...)
	sort.Float64s(points)
	cdf := func(s []float64, x float64) float64 {
		return float64(sort.SearchFloat64s(s, x+math.SmallestNonzeroFloat64)) / float64(len(s))
	}
	var dist float64
	for i := 0; i < len(points)-1; i++ {
		dx := points[i+1] - points[i]
		if dx == 0 {
			continue
		}
		dist += math.Abs(cdf(as, points[i])-cdf(bs, points[i])) * dx
	}
	return dist / (pooledHi - pooledLo), nil
}
