// Package stats provides the small numerical substrate shared by the fusion
// baselines, t-closeness and the experiment harness: summaries, quantiles,
// correlation, ordinary least squares, histograms and the 1-D earth mover's
// distance.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that need at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs (division by n).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the minimum and maximum of xs.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Median returns the sample median (average of the two central order
// statistics for even n).
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile of xs (0 ≤ q ≤ 1) with linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %g outside [0,1]", q)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	i := int(math.Floor(pos))
	if i >= len(s)-1 {
		return s[len(s)-1], nil
	}
	frac := pos - float64(i)
	return s[i]*(1-frac) + s[i+1]*frac, nil
}

// Correlation returns the Pearson correlation of paired samples. Degenerate
// (zero-variance) inputs yield 0.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: correlation of unequal lengths %d and %d", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// MeanSquaredError returns the mean of squared differences of paired samples.
func MeanSquaredError(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: mse of unequal lengths %d and %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a)), nil
}

// Normalize maps xs affinely onto [0,1] using its own min and max. A
// constant slice maps to all zeros.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	lo, hi, err := MinMax(xs)
	if err != nil || hi == lo {
		return out
	}
	for i, x := range xs {
		out[i] = (x - lo) / (hi - lo)
	}
	return out
}

// Clamp restricts x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
