package stats

import (
	"errors"
	"fmt"
	"math"
)

// LinearModel is a fitted ordinary-least-squares model
// y ≈ Intercept + Σ Coef[j]·x[j]. It backs the regression-based fusion
// baseline the reproduction compares against the paper's fuzzy system.
type LinearModel struct {
	Intercept float64
	Coef      []float64
}

// ErrSingular is returned when the normal equations are (numerically)
// singular, e.g. collinear or constant predictors.
var ErrSingular = errors.New("stats: singular design matrix")

// FitOLS fits y ≈ b0 + Σ bj·x[i][j] by solving the normal equations with
// partial-pivot Gaussian elimination. Every row of x must have the same
// width, and len(x) must equal len(y).
func FitOLS(x [][]float64, y []float64) (*LinearModel, error) {
	n := len(x)
	if n == 0 {
		return nil, ErrEmpty
	}
	if n != len(y) {
		return nil, fmt.Errorf("stats: FitOLS with %d rows but %d targets", n, len(y))
	}
	p := len(x[0])
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("stats: FitOLS row %d has %d features, want %d", i, len(row), p)
		}
	}
	d := p + 1 // intercept column
	if n < d {
		return nil, fmt.Errorf("stats: FitOLS needs at least %d rows for %d features, got %d", d, p, n)
	}
	// Build XtX (d×d) and Xty (d) with the implicit leading 1 column.
	xtx := make([][]float64, d)
	for i := range xtx {
		xtx[i] = make([]float64, d)
	}
	xty := make([]float64, d)
	feat := func(row []float64, j int) float64 {
		if j == 0 {
			return 1
		}
		return row[j-1]
	}
	for r := 0; r < n; r++ {
		for i := 0; i < d; i++ {
			fi := feat(x[r], i)
			xty[i] += fi * y[r]
			for j := i; j < d; j++ {
				xtx[i][j] += fi * feat(x[r], j)
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	beta, err := SolveLinear(xtx, xty)
	if err != nil {
		return nil, err
	}
	return &LinearModel{Intercept: beta[0], Coef: beta[1:]}, nil
}

// Predict evaluates the model at x. It panics if len(x) != len(m.Coef),
// which indicates a programming error.
func (m *LinearModel) Predict(x []float64) float64 {
	if len(x) != len(m.Coef) {
		panic(fmt.Sprintf("stats: Predict with %d features, model has %d", len(x), len(m.Coef)))
	}
	y := m.Intercept
	for j, c := range m.Coef {
		y += c * x[j]
	}
	return y
}

// SolveLinear solves A·x = b by Gaussian elimination with partial pivoting.
// A is modified in place via an internal copy; inputs are not mutated.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("stats: SolveLinear with %d×? matrix and %d rhs", n, len(b))
	}
	// Working copies.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, fmt.Errorf("stats: SolveLinear row %d has %d columns, want %d", i, len(a[i]), n)
		}
		m[i] = append([]float64(nil), a[i]...)
	}
	x := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		x[col], x[pivot] = x[pivot], x[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		s := x[col]
		for c := col + 1; c < n; c++ {
			s -= m[col][c] * x[c]
		}
		x[col] = s / m[col][col]
	}
	return x, nil
}
