package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaries(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Sum(xs); got != 40 {
		t.Errorf("Sum = %g", got)
	}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %g", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %g", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %g", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty summaries should be 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil || lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%g, %g, %v)", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("MinMax(nil) should error")
	}
}

func TestMedianAndQuantile(t *testing.T) {
	m, err := Median([]float64{5, 1, 3})
	if err != nil || m != 3 {
		t.Errorf("Median odd = %g, %v", m, err)
	}
	m, err = Median([]float64{4, 1, 3, 2})
	if err != nil || m != 2.5 {
		t.Errorf("Median even = %g, %v", m, err)
	}
	q, err := Quantile([]float64{0, 10}, 0.25)
	if err != nil || q != 2.5 {
		t.Errorf("Quantile = %g, %v", q, err)
	}
	if q, _ := Quantile([]float64{1, 2, 3}, 1); q != 3 {
		t.Errorf("Quantile(1) = %g", q)
	}
	if q, _ := Quantile([]float64{1, 2, 3}, 0); q != 1 {
		t.Errorf("Quantile(0) = %g", q)
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("Quantile(nil) should error")
	}
	if _, err := Quantile([]float64{1}, 1.5); err == nil {
		t.Error("Quantile(1.5) should error")
	}
}

func TestCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	yUp := []float64{2, 4, 6, 8}
	yDown := []float64{8, 6, 4, 2}
	if c, _ := Correlation(x, yUp); !almost(c, 1, 1e-12) {
		t.Errorf("corr up = %g", c)
	}
	if c, _ := Correlation(x, yDown); !almost(c, -1, 1e-12) {
		t.Errorf("corr down = %g", c)
	}
	if c, _ := Correlation(x, []float64{5, 5, 5, 5}); c != 0 {
		t.Errorf("corr const = %g", c)
	}
	if _, err := Correlation(x, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Correlation(nil, nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestMeanSquaredError(t *testing.T) {
	got, err := MeanSquaredError([]float64{1, 2, 3}, []float64{1, 4, 0})
	if err != nil || !almost(got, (0+4+9)/3.0, 1e-12) {
		t.Errorf("MSE = %g, %v", got, err)
	}
	if _, err := MeanSquaredError([]float64{1}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MeanSquaredError(nil, nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestNormalizeAndClamp(t *testing.T) {
	got := Normalize([]float64{10, 20, 30})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almost(got[i], want[i], 1e-12) {
			t.Errorf("Normalize[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	for _, v := range Normalize([]float64{7, 7}) {
		if v != 0 {
			t.Error("constant Normalize should be zeros")
		}
	}
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp wrong")
	}
}

// Property: normalized output is always within [0,1].
func TestNormalizeRangeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		for _, v := range Normalize(xs) {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitOLSRecoversPlane(t *testing.T) {
	// y = 3 + 2a − b, exact fit.
	x := [][]float64{{0, 0}, {1, 0}, {0, 1}, {2, 3}, {5, 1}, {4, 4}}
	y := make([]float64, len(x))
	for i, r := range x {
		y[i] = 3 + 2*r[0] - r[1]
	}
	m, err := FitOLS(x, y)
	if err != nil {
		t.Fatalf("FitOLS: %v", err)
	}
	if !almost(m.Intercept, 3, 1e-9) || !almost(m.Coef[0], 2, 1e-9) || !almost(m.Coef[1], -1, 1e-9) {
		t.Errorf("model = %+v", m)
	}
	if got := m.Predict([]float64{10, 10}); !almost(got, 3+20-10, 1e-9) {
		t.Errorf("Predict = %g", got)
	}
}

func TestFitOLSErrors(t *testing.T) {
	if _, err := FitOLS(nil, nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := FitOLS([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("row/target mismatch accepted")
	}
	if _, err := FitOLS([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := FitOLS([][]float64{{1}}, []float64{1}); err == nil {
		t.Error("underdetermined system accepted")
	}
	// Constant predictor is collinear with the intercept.
	x := [][]float64{{1}, {1}, {1}}
	if _, err := FitOLS(x, []float64{1, 2, 3}); err == nil {
		t.Error("collinear design accepted")
	}
}

func TestPredictPanicsOnWidthMismatch(t *testing.T) {
	m := &LinearModel{Intercept: 0, Coef: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Fatal("Predict width mismatch did not panic")
		}
	}()
	m.Predict([]float64{1})
}

func TestSolveLinear(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x[0], 1, 1e-9) || !almost(x[1], 3, 1e-9) {
		t.Errorf("x = %v", x)
	}
	// Inputs must not be mutated.
	if a[0][0] != 2 || b[1] != 10 {
		t.Error("SolveLinear mutated inputs")
	}
	if _, err := SolveLinear([][]float64{{0, 0}, {0, 0}}, []float64{1, 1}); err == nil {
		t.Error("singular accepted")
	}
	if _, err := SolveLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := SolveLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("non-square accepted")
	}
}

// Property: SolveLinear solutions actually satisfy A·x = b for random
// well-conditioned diagonal-dominant systems.
func TestSolveLinearSatisfiesSystemProperty(t *testing.T) {
	f := func(seed uint8) bool {
		// Deterministic 3×3 diagonally dominant system derived from the seed.
		s := float64(seed%13) + 1
		a := [][]float64{
			{10 + s, 1, 2},
			{2, 12 - s/2, 1},
			{1, 3, 9 + s},
		}
		b := []float64{s, 2 * s, -s}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range a {
			var got float64
			for j := range a[i] {
				got += a[i][j] * x[j]
			}
			if !almost(got, b[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
