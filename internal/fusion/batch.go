package fusion

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/parallel"
	"repro/internal/stats"
)

// This file holds the BatchEstimator faces of the baseline estimators. Each
// EstimateBatch consumes the flat row-major Matrix directly, runs its row
// loop chunk-parallel under the sweep's worker budget, and writes the exact
// bits its Estimate counterpart returns (the estimator-axis determinism
// suite pins this): per-row results depend only on the row, and chunked
// reductions are avoided entirely — so worker count can never change output.

// Chunk grains: rows of heavy per-row work (a full calibration scan, a
// Mamdani defuzzification) parallelize at the parallel.For floor; cheap
// streaming passes use large chunks so bookkeeping stays negligible.
const (
	heavyRowGrain = 256
	lightRowGrain = 8192
)

// EstimateBatch implements BatchEstimator: the no-fusion estimate for every
// row.
func (Midpoint) EstimateBatch(m Matrix, out Range, _ *parallel.Budget, _ *Arena, est []float64) error {
	if !out.valid() {
		return fmt.Errorf("fusion: empty range")
	}
	mid := out.Mid()
	for i := range est {
		est[i] = mid
	}
	return nil
}

// EstimateBatch implements BatchEstimator. The per-record score accumulates
// normalized features in column order exactly as Estimate does — the batch
// form only swaps the loop nesting (rows outer), which leaves every
// score's addition sequence unchanged — and the final sort uses the same
// (score, index) total order, so the permutation and the estimates are
// bit-identical.
func (Rank) EstimateBatch(m Matrix, out Range, b *parallel.Budget, a *Arena, est []float64) error {
	if !out.valid() {
		return fmt.Errorf("fusion: empty range")
	}
	n := m.Rows
	if n == 0 {
		return errors.New("fusion: rank estimator needs at least one record")
	}
	d := m.Stride
	// Per-column affine parameters of stats.Normalize, computed with its
	// comparison order. A degenerate column normalizes to all zeros; adding
	// +0 to a score never changes its bits (scores are sums of non-negative
	// terms, so never −0), so those columns are skipped.
	lows := a.Floats(d)
	highs := a.Floats(d)
	for j := 0; j < d; j++ {
		lo, hi := m.Flat[j], m.Flat[j]
		for i := 1; i < n; i++ {
			x := m.Flat[i*d+j]
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		lows[j], highs[j] = lo, hi
	}
	scores := a.Floats(n)
	fd := float64(d)
	b.For(n, lightRowGrain, func(rlo, rhi int) {
		for i := rlo; i < rhi; i++ {
			row := m.Flat[i*d : (i+1)*d]
			var s float64
			for j, x := range row {
				if highs[j] == lows[j] {
					continue
				}
				s += ((x - lows[j]) / (highs[j] - lows[j])) / fd
			}
			scores[i] = s
		}
	})
	order := a.Ints(n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(x, y int) bool {
		i, j := order[x], order[y]
		return scores[i] < scores[j] || (scores[i] == scores[j] && i < j)
	})
	if n == 1 {
		est[0] = out.Mid()
		return nil
	}
	span := out.Hi - out.Lo
	for rank, idx := range order {
		est[idx] = out.Lo + float64(rank)/float64(n-1)*span
	}
	return nil
}

// EstimateBatch implements BatchEstimator: the OLS fit runs on the (small)
// calibration set exactly as in Estimate; only the prediction pass is
// chunk-parallel.
func (r *Regression) EstimateBatch(m Matrix, out Range, b *parallel.Budget, _ *Arena, est []float64) error {
	model, err := stats.FitOLS(r.CalibFeatures, r.CalibTargets)
	if err != nil {
		return fmt.Errorf("fusion: regression calibration: %w", err)
	}
	if len(model.Coef) != m.Stride {
		return fmt.Errorf("fusion: regression model has %d features, matrix has %d", len(model.Coef), m.Stride)
	}
	b.For(m.Rows, lightRowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			est[i] = stats.Clamp(model.Predict(m.Row(i)), out.Lo, out.Hi)
		}
	})
	return nil
}

// distIdx is a (distance, calibration-index) pair; ordering is lexicographic
// so ties break deterministically, matching the row-slice path.
type distIdx struct {
	d   float64
	idx int32
}

func diLess(a, b distIdx) bool {
	return a.d < b.d || (a.d == b.d && a.idx < b.idx)
}

func siftUp(h []distIdx) {
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !diLess(h[p], h[i]) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func siftDown(h []distIdx) {
	i := 0
	for {
		l := 2*i + 1
		if l >= len(h) {
			break
		}
		big := l
		if r := l + 1; r < len(h) && diLess(h[l], h[r]) {
			big = r
		}
		if !diLess(h[i], h[big]) {
			break
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// sortDistIdx heap-sorts a max-heap into ascending (distance, index) order
// in place, allocation-free.
func sortDistIdx(h []distIdx) {
	for end := len(h) - 1; end > 0; end-- {
		h[0], h[end] = h[end], h[0]
		siftDown(h[:end])
	}
}

// calibMatrix lazily flattens the calibration features row-major, once per
// estimator. Mutating CalibFeatures after the first batch call is not
// supported.
func (k *KNN) calibMatrix() ([]float64, int, error) {
	k.calibOnce.Do(func() {
		if len(k.CalibFeatures) == 0 {
			return // validated by the caller
		}
		k.calibD = len(k.CalibFeatures[0])
		flat := make([]float64, 0, len(k.CalibFeatures)*k.calibD)
		for c, cf := range k.CalibFeatures {
			if len(cf) != k.calibD {
				k.calibErr = fmt.Errorf("fusion: knn calibration row %d has %d features, row 0 has %d", c, len(cf), k.calibD)
				return
			}
			flat = append(flat, cf...)
		}
		k.calibFlat = flat
	})
	return k.calibFlat, k.calibD, k.calibErr
}

// EstimateBatch implements BatchEstimator. Every query row scans the
// flattened calibration matrix with the exact distance accumulation of the
// row-slice path, keeps the kk nearest in a bounded max-heap ordered by
// (distance, index) — the same total order the selection sort uses — and
// sums their targets in ascending order, so each estimate is bit-identical
// at any worker count.
func (k *KNN) EstimateBatch(m Matrix, out Range, b *parallel.Budget, _ *Arena, est []float64) error {
	if k.K < 1 {
		return fmt.Errorf("fusion: knn needs K ≥ 1, got %d", k.K)
	}
	if len(k.CalibFeatures) != len(k.CalibTargets) || len(k.CalibFeatures) == 0 {
		return errors.New("fusion: knn calibration features and targets must be non-empty and aligned")
	}
	calib, cd, err := k.calibMatrix()
	if err != nil {
		return err
	}
	if cd != m.Stride {
		return fmt.Errorf("fusion: knn calibration rows have %d features, query has %d", cd, m.Stride)
	}
	kk := k.K
	if kk > len(k.CalibTargets) {
		kk = len(k.CalibTargets)
	}
	nc := len(k.CalibTargets)
	fkk := float64(kk)
	b.For(m.Rows, heavyRowGrain, func(lo, hi int) {
		hp, _ := k.heapPool.Get().(*[]distIdx)
		if hp == nil || cap(*hp) < kk {
			s := make([]distIdx, 0, kk)
			hp = &s
		}
		for i := lo; i < hi; i++ {
			row := m.Flat[i*cd : (i+1)*cd]
			h := (*hp)[:0]
			for c := 0; c < nc; c++ {
				cf := calib[c*cd : (c+1)*cd]
				var dist float64
				for j, fv := range row {
					diff := fv - cf[j]
					dist += diff * diff
				}
				cand := distIdx{dist, int32(c)}
				if len(h) < kk {
					h = append(h, cand)
					siftUp(h)
				} else if diLess(cand, h[0]) {
					h[0] = cand
					siftDown(h)
				}
			}
			sortDistIdx(h)
			var sum float64
			for _, di := range h {
				sum += k.CalibTargets[di.idx]
			}
			est[i] = stats.Clamp(sum/fkk, out.Lo, out.Hi)
		}
		k.heapPool.Put(hp)
	})
	return nil
}

// EstimateBatch implements BatchEstimator: members estimate in order, each
// through its own batch face when it has one (sharing the budget and arena)
// and through the row-slice path otherwise, and the weighted accumulation
// runs member-outer exactly as in Estimate.
func (e *Ensemble) EstimateBatch(m Matrix, out Range, b *parallel.Budget, a *Arena, est []float64) error {
	if len(e.Members) == 0 {
		return errors.New("fusion: ensemble has no members")
	}
	weights := e.Weights
	if weights == nil {
		weights = make([]float64, len(e.Members))
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != len(e.Members) {
		return fmt.Errorf("fusion: ensemble has %d members and %d weights", len(e.Members), len(weights))
	}
	var totalW float64
	for _, w := range weights {
		if w < 0 {
			return fmt.Errorf("fusion: negative ensemble weight %g", w)
		}
		totalW += w
	}
	if totalW == 0 {
		return errors.New("fusion: ensemble weights sum to zero")
	}
	acc := a.Floats(m.Rows)
	tmp := a.Floats(m.Rows)
	var rows [][]float64 // lazy row views for members without a batch face
	for mi, member := range e.Members {
		sub := tmp
		if bm, ok := member.(BatchEstimator); ok {
			if err := bm.EstimateBatch(m, out, b, a, sub); err != nil {
				return fmt.Errorf("fusion: ensemble member %s: %w", member.Name(), err)
			}
		} else {
			if rows == nil {
				rows = rowViews(m)
			}
			got, err := member.Estimate(rows, out)
			if err != nil {
				return fmt.Errorf("fusion: ensemble member %s: %w", member.Name(), err)
			}
			if len(got) != m.Rows {
				return fmt.Errorf("fusion: ensemble member %s returned %d estimates for %d rows", member.Name(), len(got), m.Rows)
			}
			sub = got
		}
		w := weights[mi]
		for i, v := range sub {
			acc[i] += w * v
		}
	}
	for i := range acc {
		est[i] = stats.Clamp(acc[i]/totalW, out.Lo, out.Hi)
	}
	return nil
}

// Compile-time checks: every built-in estimator offers the batch face.
var (
	_ BatchEstimator = Midpoint{}
	_ BatchEstimator = Rank{}
	_ BatchEstimator = (*Regression)(nil)
	_ BatchEstimator = (*KNN)(nil)
	_ BatchEstimator = (*Ensemble)(nil)
)
