package fusion

import (
	"fmt"
	"sync"

	"repro/internal/dataset"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Matrix is the flat row-major form of the adversary's feature matrix: row r
// occupies Flat[r*Stride : (r+1)*Stride]. It carries the same values as the
// [][]float64 the Estimator contract passes around, without the row-slice
// headers, so batch estimators can stream it, hand it to the fuzzy batch
// evaluator, or chunk it across workers by plain index arithmetic.
type Matrix struct {
	Flat   []float64
	Rows   int
	Stride int
	Names  []string
}

// Row returns the r-th feature row (cap-limited, so appends cannot clobber
// the neighbouring row).
func (m Matrix) Row(r int) []float64 {
	return m.Flat[r*m.Stride : (r+1)*m.Stride : (r+1)*m.Stride]
}

// BatchEstimator is the flat-matrix fast path of an Estimator. EstimateBatch
// must write exactly the bits Estimate would return for the same feature
// values into est (one estimate per matrix row), drawing scratch from the
// arena and spreading row chunks over the budget's spare workers. The
// determinism contract of parallel.For applies: results never depend on the
// number of workers.
type BatchEstimator interface {
	Estimator
	EstimateBatch(m Matrix, out Range, b *parallel.Budget, a *Arena, est []float64) error
}

// Arena is a bump allocator for per-level fusion scratch: feature columns,
// the flat matrix, estimate vectors. A sweep resets it at the start of every
// level, so once its blocks have grown to the level's working set, fusion
// steady state allocates nothing. A nil *Arena is valid and falls back to
// plain allocations.
//
// The arena is single-writer: only the goroutine orchestrating a level may
// allocate from it. Parallel workers receive slices carved out beforehand.
type Arena struct {
	floats []float64
	nf     int
	bools  []bool
	nb     int
	ints   []int32
	ni     int
}

// Reset makes the arena's whole capacity available again. Slices handed out
// before the reset must no longer be used.
func (a *Arena) Reset() {
	if a != nil {
		a.nf, a.nb, a.ni = 0, 0, 0
	}
}

// Floats returns a zeroed []float64 of length n.
func (a *Arena) Floats(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	if a.nf+n > len(a.floats) {
		grow := 2 * len(a.floats)
		if grow < a.nf+n {
			grow = a.nf + n
		}
		// Outstanding slices keep the old block alive; the arena only tracks
		// the new one, which doubles until a whole level fits.
		a.floats = make([]float64, grow)
		a.nf = 0
	}
	s := a.floats[a.nf : a.nf+n : a.nf+n]
	a.nf += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// Bools returns a zeroed []bool of length n.
func (a *Arena) Bools(n int) []bool {
	if a == nil {
		return make([]bool, n)
	}
	if a.nb+n > len(a.bools) {
		grow := 2 * len(a.bools)
		if grow < a.nb+n {
			grow = a.nb + n
		}
		a.bools = make([]bool, grow)
		a.nb = 0
	}
	s := a.bools[a.nb : a.nb+n : a.nb+n]
	a.nb += n
	for i := range s {
		s[i] = false
	}
	return s
}

// Ints returns a zeroed []int32 of length n.
func (a *Arena) Ints(n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	if a.ni+n > len(a.ints) {
		grow := 2 * len(a.ints)
		if grow < a.ni+n {
			grow = a.ni + n
		}
		a.ints = make([]int32, grow)
		a.ni = 0
	}
	s := a.ints[a.ni : a.ni+n : a.ni+n]
	a.ni += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// imputedColumnInto is imputedColumn into arena-backed buffers: the same
// column read, the same mean accumulated over present cells in row order, the
// same fill of missing cells — bit-identical values without the allocations.
func imputedColumnInto(t *dataset.Table, idx int, a *Arena, present []bool) []float64 {
	vals := a.Floats(t.NumRows())
	t.FloatColumnInto(idx, vals, present)
	var sum float64
	var seen int
	for r, ok := range present {
		if ok {
			sum += vals[r]
			seen++
		}
	}
	mean := 0.0
	if seen > 0 {
		mean = sum / float64(seen)
	}
	for r, ok := range present {
		if !ok {
			vals[r] = mean
		}
	}
	return vals
}

// FeaturesMatrix assembles the adversary's input matrix in flat row-major
// form — the same columns, imputation and values as Features.
func FeaturesMatrix(release, aux *dataset.Table) (Matrix, error) {
	return FeaturesMatrixWith(release, PrepareAux(aux), nil, nil)
}

// FeaturesMatrixWith is FeaturesMatrix with the aux-side columns prepared and
// optional budget/arena: release columns are imputed into arena buffers and
// the transpose into the flat matrix runs chunk-parallel. Every value carries
// the exact bits of the FeaturesWith matrix.
func FeaturesMatrixWith(release *dataset.Table, aux *AuxFeatures, b *parallel.Budget, a *Arena) (Matrix, error) {
	if aux.rows >= 0 && release.NumRows() != aux.rows {
		return Matrix{}, fmt.Errorf("fusion: release has %d rows, aux has %d; align them first (web.Gather aligns by roster order)", release.NumRows(), aux.rows)
	}
	qis := release.Schema().IndicesOf(dataset.QuasiIdentifier)
	var cols [][]float64
	var names []string
	var present []bool
	for _, i := range qis {
		if release.Schema().Column(i).Kind != dataset.Number {
			continue
		}
		if present == nil {
			present = a.Bools(release.NumRows())
		}
		cols = append(cols, imputedColumnInto(release, i, a, present))
		names = append(names, release.Schema().Column(i).Name)
	}
	cols = append(cols, aux.cols...)
	names = append(names, aux.names...)
	if len(cols) == 0 {
		return Matrix{}, ErrNoFeatures
	}
	n := release.NumRows()
	d := len(cols)
	flat := a.Floats(n * d)
	b.For(n, transposeGrain, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row := flat[r*d : (r+1)*d]
			for j := range cols {
				row[j] = cols[j][r]
			}
		}
	})
	return Matrix{Flat: flat, Rows: n, Stride: d, Names: names}, nil
}

// transposeGrain sizes the chunks of the column-to-row transpose; the work
// per row is a handful of strided loads, so chunks stay large.
const transposeGrain = 8192

// FuseWithBatch is FuseWith on the flat-matrix fast path: when the estimator
// implements BatchEstimator, features are assembled into an arena-backed
// Matrix and estimated chunk-parallel under the budget, with scratch reused
// from the arena. Estimators without a batch face fall back to FuseWith
// unchanged. The produced table is bit-identical either way.
func FuseWithBatch(release *dataset.Table, aux *AuxFeatures, est Estimator, out Range, b *parallel.Budget, a *Arena) (*dataset.Table, error) {
	be, ok := est.(BatchEstimator)
	if !ok {
		return FuseWith(release, aux, est, out)
	}
	if !out.valid() {
		return nil, fmt.Errorf("fusion: empty sensitive range [%g, %g]", out.Lo, out.Hi)
	}
	sens, err := sensitiveColumn(release)
	if err != nil {
		return nil, err
	}
	m, err := FeaturesMatrixWith(release, aux, b, a)
	if err != nil {
		return nil, err
	}
	if m.Rows != release.NumRows() {
		return nil, fmt.Errorf("fusion: feature matrix has %d rows for %d records", m.Rows, release.NumRows())
	}
	vals := a.Floats(m.Rows)
	if err := be.EstimateBatch(m, out, b, a, vals); err != nil {
		return nil, err
	}
	for i, v := range vals {
		vals[i] = stats.Clamp(v, out.Lo, out.Hi)
	}
	// WithColumnFloats copies vals, so the arena slice can be reused freely.
	return release.WithColumnFloats(sens, vals)
}

// batchErr collects the first error raised inside a parallel region.
type batchErr struct {
	mu  sync.Mutex
	err error
}

func (e *batchErr) set(err error) {
	if err == nil {
		return
	}
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *batchErr) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// rowViews materializes the [][]float64 view of a flat matrix for estimators
// that only implement the row-slice contract (e.g. foreign Ensemble members).
func rowViews(m Matrix) [][]float64 {
	rows := make([][]float64, m.Rows)
	for r := range rows {
		rows[r] = m.Row(r)
	}
	return rows
}
