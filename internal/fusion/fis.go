package fusion

import (
	"errors"
	"fmt"

	"repro/internal/fuzzy"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// FIS adapts a hand-authored fuzzy inference system (typically loaded with
// fuzzy.ParseFIS) into an Estimator. Unlike Fuzzy, which synthesizes
// variables and rules from the data, FIS runs the system exactly as
// authored — the workflow of the paper's adversary, who wrote the Figure 2
// system by hand in the Matlab toolbox.
type FIS struct {
	// System is the complete authored system.
	System *fuzzy.System
	// FeatureNames maps feature columns to the system's input variables,
	// in feature order. Every registered input must appear.
	FeatureNames []string
	// Sugeno evaluates with zero-order Sugeno inference instead of Mamdani
	// (the output terms must then be singletons).
	Sugeno bool
}

// Name implements Estimator.
func (f *FIS) Name() string { return "fis" }

// Estimate implements Estimator. Records on which no rule fires fall back
// to the range midpoint, matching the Fuzzy estimator's convention.
func (f *FIS) Estimate(features [][]float64, out Range) ([]float64, error) {
	if f.System == nil {
		return nil, errors.New("fusion: FIS estimator has no system")
	}
	if !out.valid() {
		return nil, fmt.Errorf("fusion: empty range")
	}
	if len(features) == 0 {
		return nil, errors.New("fusion: FIS estimator needs at least one record")
	}
	d := len(features[0])
	if len(f.FeatureNames) != d {
		return nil, fmt.Errorf("fusion: %d feature names for %d features", len(f.FeatureNames), d)
	}
	declared := make(map[string]bool, d)
	for _, n := range f.FeatureNames {
		declared[n] = true
	}
	for _, in := range f.System.Inputs() {
		if !declared[in] {
			return nil, fmt.Errorf("fusion: system input %q has no feature column", in)
		}
	}
	var ev *fuzzy.Evaluator
	if !f.Sugeno {
		var err error
		if ev, err = fuzzy.NewEvaluator(f.System); err != nil {
			return nil, err
		}
	}
	est := make([]float64, len(features))
	in := make(map[string]float64, d)
	for i, row := range features {
		if len(row) != d {
			return nil, fmt.Errorf("fusion: ragged feature row %d", i)
		}
		for j, name := range f.FeatureNames {
			in[name] = row[j]
		}
		var y float64
		var err error
		if f.Sugeno {
			y, err = f.System.EvaluateSugeno(in)
		} else {
			y, err = ev.Evaluate(in)
		}
		if errors.Is(err, fuzzy.ErrNoRuleFired) {
			y = out.Mid()
		} else if err != nil {
			return nil, err
		}
		est[i] = stats.Clamp(y, out.Lo, out.Hi)
	}
	return est, nil
}

// EstimateBatch implements BatchEstimator. The system is compiled per call —
// FIS runs the system exactly as currently authored, so rules added between
// calls must stay visible — and the rows evaluate chunk-parallel through
// per-chunk evaluator clones, Mamdani and Sugeno alike, with the batch NaN
// sentinel falling back to the range midpoint.
func (f *FIS) EstimateBatch(m Matrix, out Range, b *parallel.Budget, _ *Arena, est []float64) error {
	if f.System == nil {
		return errors.New("fusion: FIS estimator has no system")
	}
	if !out.valid() {
		return fmt.Errorf("fusion: empty range")
	}
	n := m.Rows
	if n == 0 {
		return errors.New("fusion: FIS estimator needs at least one record")
	}
	d := m.Stride
	if len(f.FeatureNames) != d {
		return fmt.Errorf("fusion: %d feature names for %d features", len(f.FeatureNames), d)
	}
	declared := make(map[string]bool, d)
	for _, fn := range f.FeatureNames {
		declared[fn] = true
	}
	for _, in := range f.System.Inputs() {
		if !declared[in] {
			return fmt.Errorf("fusion: system input %q has no feature column", in)
		}
	}
	proto, err := fuzzy.NewEvaluator(f.System)
	if err != nil {
		return err
	}
	if err := proto.BindInputs(f.FeatureNames); err != nil {
		return err
	}
	var firstErr batchErr
	b.For(n, heavyRowGrain, func(lo, hi int) {
		ev := proto.Clone()
		var err error
		if f.Sugeno {
			err = ev.EvaluateBatchSugeno(m.Flat[lo*d:hi*d], d, est[lo:hi])
		} else {
			err = ev.EvaluateBatch(m.Flat[lo*d:hi*d], d, est[lo:hi])
		}
		firstErr.set(err)
	})
	if err := firstErr.get(); err != nil {
		return err
	}
	mid := out.Mid()
	for i, v := range est {
		if v != v { // NaN: no rule fired on this row
			v = mid
		}
		est[i] = stats.Clamp(v, out.Lo, out.Hi)
	}
	return nil
}

// Compile-time check.
var _ BatchEstimator = (*FIS)(nil)
