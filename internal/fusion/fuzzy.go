package fusion

import (
	"errors"
	"fmt"

	"repro/internal/fuzzy"
	"repro/internal/stats"
)

// FuzzyOptions configures the automatically built Figure 2 system.
type FuzzyOptions struct {
	// Terms is the number of linguistic terms per variable (the paper's
	// Figure 2 uses 3: Low/Med/High). Defaults to 3 when zero.
	Terms int
	// Engine passes through the inference options (norms, implication,
	// defuzzifier, resolution).
	Engine fuzzy.Options
	// Rules optionally overrides the generated single-antecedent rule base
	// with a hand-written one in the rule language. Input variables are
	// named x0..x(d−1) unless FeatureNames is set; the output variable is
	// named "out".
	Rules string
	// FeatureNames names the input variables for hand-written rules.
	FeatureNames []string
	// Domains fixes the input variable ranges from domain knowledge, one
	// per feature — how the paper's Figure 2 defines its fuzzy sets ("Low
	// [500-1000], Med [1000-2500], High [2500-6000]"). When nil, domains
	// fall back to the observed feature ranges, which silently re-centers
	// the system at every anonymization level and masks the degradation
	// the paper reports; prefer fixed domains for attack studies.
	Domains []Range
}

// Fuzzy is the paper's estimator: a Mamdani system whose input variables
// partition each feature's observed range and whose rule base encodes the
// monotone domain knowledge "higher indicators → higher income", one rule
// per (feature, term) with uniform weights.
type Fuzzy struct {
	Opts FuzzyOptions
}

// NewFuzzy returns the estimator with the paper's defaults (3 terms,
// min-AND, clipped implication, centroid defuzzification).
func NewFuzzy() *Fuzzy { return &Fuzzy{} }

// Name implements Estimator.
func (f *Fuzzy) Name() string { return "fuzzy" }

// termNames generates "t0".."t{n-1}" with the paper's familiar aliases for
// three terms.
func termNames(n int) []string {
	if n == 3 {
		return []string{"low", "med", "high"}
	}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("t%d", i)
	}
	return out
}

// Estimate implements Estimator. The system is rebuilt per call because the
// input variable domains come from the observed feature ranges (which change
// with the anonymization level, exactly as in the paper: coarser releases
// feed the same rule base worse inputs).
func (f *Fuzzy) Estimate(features [][]float64, out Range) ([]float64, error) {
	if !out.valid() {
		return nil, fmt.Errorf("fusion: empty range")
	}
	n := len(features)
	if n == 0 {
		return nil, errors.New("fusion: fuzzy estimator needs at least one record")
	}
	d := len(features[0])
	if d == 0 {
		return nil, ErrNoFeatures
	}
	terms := f.Opts.Terms
	if terms == 0 {
		terms = 3
	}
	if terms < 2 {
		return nil, fmt.Errorf("fusion: fuzzy estimator needs ≥ 2 terms, got %d", terms)
	}
	names := f.Opts.FeatureNames
	if names == nil {
		names = make([]string, d)
		for j := range names {
			names[j] = fmt.Sprintf("x%d", j)
		}
	}
	if len(names) != d {
		return nil, fmt.Errorf("fusion: %d feature names for %d features", len(names), d)
	}
	tnames := termNames(terms)

	output, err := fuzzy.NewVariable("out", out.Lo, out.Hi)
	if err != nil {
		return nil, err
	}
	if err := output.UniformTerms(tnames); err != nil {
		return nil, err
	}
	sys, err := fuzzy.NewSystem(output, f.Opts.Engine)
	if err != nil {
		return nil, err
	}
	if f.Opts.Domains != nil && len(f.Opts.Domains) != d {
		return nil, fmt.Errorf("fusion: %d domains for %d features", len(f.Opts.Domains), d)
	}
	for j := 0; j < d; j++ {
		col := make([]float64, n)
		for i := range features {
			if len(features[i]) != d {
				return nil, fmt.Errorf("fusion: ragged feature row %d", i)
			}
			col[i] = features[i][j]
		}
		var lo, hi float64
		if f.Opts.Domains != nil {
			dom := f.Opts.Domains[j]
			if !dom.valid() {
				return nil, fmt.Errorf("fusion: empty domain [%g, %g] for feature %d", dom.Lo, dom.Hi, j)
			}
			lo, hi = dom.Lo, dom.Hi
		} else {
			var err error
			lo, hi, err = stats.MinMax(col)
			if err != nil {
				return nil, err
			}
			if hi == lo {
				// Degenerate feature (fully generalized release at high k):
				// widen artificially so the variable stays valid; every
				// record then fires the middle terms equally.
				lo, hi = lo-0.5, hi+0.5
			}
		}
		v, err := fuzzy.NewVariable(names[j], lo, hi)
		if err != nil {
			return nil, err
		}
		if err := v.UniformTerms(tnames); err != nil {
			return nil, err
		}
		if err := sys.AddInput(v); err != nil {
			return nil, err
		}
	}
	if f.Opts.Rules != "" {
		rules, err := fuzzy.ParseRules(f.Opts.Rules)
		if err != nil {
			return nil, err
		}
		for _, r := range rules {
			if err := sys.AddRule(r); err != nil {
				return nil, err
			}
		}
	} else {
		// The paper's simplistic monotone knowledge rules, uniform weights:
		// IF xj IS term_i THEN out IS term_i.
		for j := 0; j < d; j++ {
			for _, t := range tnames {
				rule := fmt.Sprintf("IF %s IS %s THEN out IS %s", names[j], t, t)
				if err := sys.AddRuleText(rule); err != nil {
					return nil, err
				}
			}
		}
	}

	// One evaluator for the whole cohort: rules compile once, the per-row
	// buffers are reused, and the results match sys.Evaluate bit for bit.
	ev, err := fuzzy.NewEvaluator(sys)
	if err != nil {
		return nil, err
	}
	est := make([]float64, n)
	in := make(map[string]float64, d)
	for i, row := range features {
		for j, name := range names {
			in[name] = row[j]
		}
		y, err := ev.Evaluate(in)
		if errors.Is(err, fuzzy.ErrNoRuleFired) {
			// Possible only with hand-written sparse rule bases; fall back
			// to the no-fusion estimate for that record.
			y = out.Mid()
		} else if err != nil {
			return nil, err
		}
		est[i] = stats.Clamp(y, out.Lo, out.Hi)
	}
	return est, nil
}
