package fusion

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/fuzzy"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// FuzzyOptions configures the automatically built Figure 2 system.
type FuzzyOptions struct {
	// Terms is the number of linguistic terms per variable (the paper's
	// Figure 2 uses 3: Low/Med/High). Defaults to 3 when zero.
	Terms int
	// Engine passes through the inference options (norms, implication,
	// defuzzifier, resolution).
	Engine fuzzy.Options
	// Rules optionally overrides the generated single-antecedent rule base
	// with a hand-written one in the rule language. Input variables are
	// named x0..x(d−1) unless FeatureNames is set; the output variable is
	// named "out".
	Rules string
	// FeatureNames names the input variables for hand-written rules.
	FeatureNames []string
	// Domains fixes the input variable ranges from domain knowledge, one
	// per feature — how the paper's Figure 2 defines its fuzzy sets ("Low
	// [500-1000], Med [1000-2500], High [2500-6000]"). When nil, domains
	// fall back to the observed feature ranges, which silently re-centers
	// the system at every anonymization level and masks the degradation
	// the paper reports; prefer fixed domains for attack studies.
	Domains []Range
}

// Fuzzy is the paper's estimator: a Mamdani system whose input variables
// partition each feature's observed range and whose rule base encodes the
// monotone domain knowledge "higher indicators → higher income", one rule
// per (feature, term) with uniform weights.
//
// With fixed Domains the system no longer depends on the input data, so the
// compiled evaluator is cached across calls and shared (via per-worker
// clones) by concurrent estimates; Opts must then not be mutated after the
// first call. Without Domains the system is rebuilt per call, because the
// observed feature ranges change with every anonymization level.
type Fuzzy struct {
	Opts FuzzyOptions

	mu       sync.Mutex
	compiled *compiledFuzzy
}

// NewFuzzy returns the estimator with the paper's defaults (3 terms,
// min-AND, clipped implication, centroid defuzzification).
func NewFuzzy() *Fuzzy { return &Fuzzy{} }

// Name implements Estimator.
func (f *Fuzzy) Name() string { return "fuzzy" }

// termNames generates "t0".."t{n-1}" with the paper's familiar aliases for
// three terms.
func termNames(n int) []string {
	if n == 3 {
		return []string{"low", "med", "high"}
	}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("t%d", i)
	}
	return out
}

// compiledFuzzy is one fully built system with its compiled evaluator and a
// pool of clones for concurrent use. The proto evaluator itself never
// evaluates — it only seeds clones — so handing the same compiledFuzzy to
// many goroutines is race-free.
type compiledFuzzy struct {
	d     int
	out   Range
	names []string
	proto *fuzzy.Evaluator
	pool  sync.Pool
}

func (cf *compiledFuzzy) get() *fuzzy.Evaluator {
	if ev, ok := cf.pool.Get().(*fuzzy.Evaluator); ok {
		return ev
	}
	return cf.proto.Clone()
}

func (cf *compiledFuzzy) put(ev *fuzzy.Evaluator) { cf.pool.Put(ev) }

// compile builds the system for d features: validation, variables (domains
// from Opts.Domains or from obsRange, the observed feature ranges), the rule
// base, and the compiled evaluator bound to the feature columns.
func (f *Fuzzy) compile(d int, out Range, obsRange func(j int) (float64, float64)) (*compiledFuzzy, error) {
	terms := f.Opts.Terms
	if terms == 0 {
		terms = 3
	}
	if terms < 2 {
		return nil, fmt.Errorf("fusion: fuzzy estimator needs ≥ 2 terms, got %d", terms)
	}
	names := f.Opts.FeatureNames
	if names == nil {
		names = make([]string, d)
		for j := range names {
			names[j] = fmt.Sprintf("x%d", j)
		}
	}
	if len(names) != d {
		return nil, fmt.Errorf("fusion: %d feature names for %d features", len(names), d)
	}
	tnames := termNames(terms)

	output, err := fuzzy.NewVariable("out", out.Lo, out.Hi)
	if err != nil {
		return nil, err
	}
	if err := output.UniformTerms(tnames); err != nil {
		return nil, err
	}
	sys, err := fuzzy.NewSystem(output, f.Opts.Engine)
	if err != nil {
		return nil, err
	}
	if f.Opts.Domains != nil && len(f.Opts.Domains) != d {
		return nil, fmt.Errorf("fusion: %d domains for %d features", len(f.Opts.Domains), d)
	}
	for j := 0; j < d; j++ {
		var lo, hi float64
		if f.Opts.Domains != nil {
			dom := f.Opts.Domains[j]
			if !dom.valid() {
				return nil, fmt.Errorf("fusion: empty domain [%g, %g] for feature %d", dom.Lo, dom.Hi, j)
			}
			lo, hi = dom.Lo, dom.Hi
		} else {
			lo, hi = obsRange(j)
			if hi == lo {
				// Degenerate feature (fully generalized release at high k):
				// widen artificially so the variable stays valid; every
				// record then fires the middle terms equally.
				lo, hi = lo-0.5, hi+0.5
			}
		}
		v, err := fuzzy.NewVariable(names[j], lo, hi)
		if err != nil {
			return nil, err
		}
		if err := v.UniformTerms(tnames); err != nil {
			return nil, err
		}
		if err := sys.AddInput(v); err != nil {
			return nil, err
		}
	}
	if f.Opts.Rules != "" {
		rules, err := fuzzy.ParseRules(f.Opts.Rules)
		if err != nil {
			return nil, err
		}
		for _, r := range rules {
			if err := sys.AddRule(r); err != nil {
				return nil, err
			}
		}
	} else {
		// The paper's simplistic monotone knowledge rules, uniform weights:
		// IF xj IS term_i THEN out IS term_i.
		for j := 0; j < d; j++ {
			for _, t := range tnames {
				rule := fmt.Sprintf("IF %s IS %s THEN out IS %s", names[j], t, t)
				if err := sys.AddRuleText(rule); err != nil {
					return nil, err
				}
			}
		}
	}
	proto, err := fuzzy.NewEvaluator(sys)
	if err != nil {
		return nil, err
	}
	if err := proto.BindInputs(names); err != nil {
		return nil, err
	}
	return &compiledFuzzy{d: d, out: out, names: names, proto: proto}, nil
}

// compiledFor returns the compiled system for (d, out): the cached one when
// Opts.Domains pins the system independent of the data, a freshly built one
// otherwise.
func (f *Fuzzy) compiledFor(d int, out Range, obsRange func(j int) (float64, float64)) (*compiledFuzzy, error) {
	fixed := f.Opts.Domains != nil
	if fixed {
		f.mu.Lock()
		if cf := f.compiled; cf != nil && cf.d == d && cf.out == out {
			f.mu.Unlock()
			return cf, nil
		}
		f.mu.Unlock()
	}
	cf, err := f.compile(d, out, obsRange)
	if err != nil {
		return nil, err
	}
	if fixed {
		f.mu.Lock()
		// A concurrent call may have compiled the same system; keep one so
		// the clone pool is shared.
		if old := f.compiled; old != nil && old.d == d && old.out == out {
			cf = old
		} else {
			f.compiled = cf
		}
		f.mu.Unlock()
	}
	return cf, nil
}

// Estimate implements Estimator. Without fixed domains the system is rebuilt
// per call, because the input variable domains come from the observed
// feature ranges (which change with the anonymization level, exactly as in
// the paper: coarser releases feed the same rule base worse inputs).
func (f *Fuzzy) Estimate(features [][]float64, out Range) ([]float64, error) {
	if !out.valid() {
		return nil, fmt.Errorf("fusion: empty range")
	}
	n := len(features)
	if n == 0 {
		return nil, errors.New("fusion: fuzzy estimator needs at least one record")
	}
	d := len(features[0])
	if d == 0 {
		return nil, ErrNoFeatures
	}
	for i := range features {
		if len(features[i]) != d {
			return nil, fmt.Errorf("fusion: ragged feature row %d", i)
		}
	}
	cf, err := f.compiledFor(d, out, func(j int) (float64, float64) {
		col := make([]float64, n)
		for i := range features {
			col[i] = features[i][j]
		}
		lo, hi, _ := stats.MinMax(col) // n ≥ 1, never empty
		return lo, hi
	})
	if err != nil {
		return nil, err
	}
	// One evaluator for the whole cohort: rules compile once, the per-row
	// buffers are reused, and the results match sys.Evaluate bit for bit.
	ev := cf.get()
	defer cf.put(ev)
	est := make([]float64, n)
	in := make(map[string]float64, d)
	for i, row := range features {
		for j, name := range cf.names {
			in[name] = row[j]
		}
		y, err := ev.Evaluate(in)
		if errors.Is(err, fuzzy.ErrNoRuleFired) {
			// Possible only with hand-written sparse rule bases; fall back
			// to the no-fusion estimate for that record.
			y = out.Mid()
		} else if err != nil {
			return nil, err
		}
		est[i] = stats.Clamp(y, out.Lo, out.Hi)
	}
	return est, nil
}

// EstimateBatch implements BatchEstimator: the compiled system evaluates the
// flat matrix chunk-parallel, one pooled evaluator clone per chunk, through
// fuzzy.Evaluator.EvaluateBatch — no per-row input maps, no per-row
// allocations. NaN results (the batch evaluator's no-rule-fired sentinel)
// fall back to the range midpoint exactly as Estimate does.
func (f *Fuzzy) EstimateBatch(m Matrix, out Range, b *parallel.Budget, _ *Arena, est []float64) error {
	if !out.valid() {
		return fmt.Errorf("fusion: empty range")
	}
	n := m.Rows
	if n == 0 {
		return errors.New("fusion: fuzzy estimator needs at least one record")
	}
	d := m.Stride
	if d == 0 {
		return ErrNoFeatures
	}
	cf, err := f.compiledFor(d, out, func(j int) (float64, float64) {
		// stats.MinMax over the strided column: first element, then strict
		// comparisons in row order — the same sequence as the extracted
		// column, so the observed domain carries identical bits.
		lo, hi := m.Flat[j], m.Flat[j]
		for i := 1; i < n; i++ {
			x := m.Flat[i*d+j]
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return lo, hi
	})
	if err != nil {
		return err
	}
	var firstErr batchErr
	b.For(n, heavyRowGrain, func(lo, hi int) {
		ev := cf.get()
		if err := ev.EvaluateBatch(m.Flat[lo*d:hi*d], d, est[lo:hi]); err != nil {
			firstErr.set(err)
		}
		cf.put(ev)
	})
	if err := firstErr.get(); err != nil {
		return err
	}
	mid := out.Mid()
	for i, v := range est {
		if v != v { // NaN: no rule fired on this row
			v = mid
		}
		est[i] = stats.Clamp(v, out.Lo, out.Hi)
	}
	return nil
}

// Compile-time check: the paper's estimator offers the batch face.
var _ BatchEstimator = (*Fuzzy)(nil)
