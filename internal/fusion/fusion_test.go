package fusion

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// releaseTable builds a release with one numeric QI ("Valuation"), one text
// QI that must be ignored, and a suppressed sensitive column.
func releaseTable(t *testing.T, vals []dataset.Value) *dataset.Table {
	t.Helper()
	tb := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "Name", Class: dataset.Identifier, Kind: dataset.Text},
		dataset.Column{Name: "Valuation", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "Notes", Class: dataset.QuasiIdentifier, Kind: dataset.Text},
		dataset.Column{Name: "Income", Class: dataset.Sensitive, Kind: dataset.Number},
	))
	for i, v := range vals {
		tb.MustAppendRow(dataset.Str(string(rune('a'+i))), v, dataset.Str("n"), dataset.NullValue())
	}
	return tb
}

func auxTable(t *testing.T, props []dataset.Value) *dataset.Table {
	t.Helper()
	tb := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "Name", Class: dataset.Identifier, Kind: dataset.Text},
		dataset.Column{Name: "Property", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
	))
	for i, p := range props {
		tb.MustAppendRow(dataset.Str(string(rune('a'+i))), p)
	}
	return tb
}

func TestFeaturesCombinesReleaseAndAux(t *testing.T) {
	rel := releaseTable(t, []dataset.Value{dataset.Num(2), dataset.Span(4, 8)})
	aux := auxTable(t, []dataset.Value{dataset.Num(100), dataset.Num(300)})
	f, names, err := Features(rel, aux)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "Valuation" || names[1] != "aux.Property" {
		t.Fatalf("names = %v", names)
	}
	// Interval reads at midpoint: Span(4,8) → 6.
	want := [][]float64{{2, 100}, {6, 300}}
	for i := range want {
		for j := range want[i] {
			if f[i][j] != want[i][j] {
				t.Errorf("f[%d][%d] = %g, want %g", i, j, f[i][j], want[i][j])
			}
		}
	}
}

func TestFeaturesImputesMissing(t *testing.T) {
	rel := releaseTable(t, []dataset.Value{dataset.Num(2), dataset.Num(4), dataset.Num(6)})
	aux := auxTable(t, []dataset.Value{dataset.Num(100), dataset.NullValue(), dataset.Num(300)})
	f, _, err := Features(rel, aux)
	if err != nil {
		t.Fatal(err)
	}
	// Missing property imputes to mean of observed = 200.
	if f[1][1] != 200 {
		t.Errorf("imputed = %g, want 200", f[1][1])
	}
}

func TestFeaturesErrors(t *testing.T) {
	rel := releaseTable(t, []dataset.Value{dataset.Num(1)})
	aux := auxTable(t, []dataset.Value{dataset.Num(1), dataset.Num(2)})
	if _, _, err := Features(rel, aux); err == nil {
		t.Error("misaligned tables accepted")
	}
	// Table with no numeric QIs at all.
	bare := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "Name", Class: dataset.Identifier, Kind: dataset.Text},
		dataset.Column{Name: "Income", Class: dataset.Sensitive, Kind: dataset.Number},
	))
	bare.MustAppendRow(dataset.Str("a"), dataset.NullValue())
	if _, _, err := Features(bare, nil); err == nil {
		t.Error("featureless table accepted")
	}
}

func TestMidpoint(t *testing.T) {
	est, err := Midpoint{}.Estimate([][]float64{{1}, {2}}, Range{40000, 100000})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range est {
		if v != 70000 {
			t.Errorf("midpoint = %g", v)
		}
	}
	if _, err := (Midpoint{}).Estimate(nil, Range{5, 5}); err == nil {
		t.Error("empty range accepted")
	}
}

func TestRankSpreadsRange(t *testing.T) {
	est, err := Rank{}.Estimate([][]float64{{10}, {30}, {20}}, Range{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if est[0] != 0 || est[1] != 100 || est[2] != 50 {
		t.Errorf("rank estimates = %v", est)
	}
	// Single record: midpoint.
	est, err = Rank{}.Estimate([][]float64{{10}}, Range{0, 100})
	if err != nil || est[0] != 50 {
		t.Errorf("singleton = %v, %v", est, err)
	}
	if _, err := (Rank{}).Estimate(nil, Range{0, 1}); err == nil {
		t.Error("empty accepted")
	}
}

func TestRegressionEstimator(t *testing.T) {
	// Calibration: y = 10·x. Prediction clamps into the range.
	reg := &Regression{
		CalibFeatures: [][]float64{{1}, {2}, {3}, {4}},
		CalibTargets:  []float64{10, 20, 30, 40},
	}
	est, err := reg.Estimate([][]float64{{2.5}, {100}}, Range{0, 50})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(est[0], 25, 1e-9) {
		t.Errorf("est[0] = %g", est[0])
	}
	if est[1] != 50 {
		t.Errorf("est[1] = %g, want clamped 50", est[1])
	}
	// Unfittable calibration.
	bad := &Regression{CalibFeatures: [][]float64{{1}}, CalibTargets: []float64{1}}
	if _, err := bad.Estimate([][]float64{{1}}, Range{0, 1}); err == nil {
		t.Error("underdetermined calibration accepted")
	}
}

func TestKNNEstimator(t *testing.T) {
	knn := &KNN{
		K:             2,
		CalibFeatures: [][]float64{{0}, {1}, {10}, {11}},
		CalibTargets:  []float64{100, 200, 1000, 1100},
	}
	est, err := knn.Estimate([][]float64{{0.4}, {10.6}}, Range{0, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if est[0] != 150 || est[1] != 1050 {
		t.Errorf("knn = %v", est)
	}
	// K larger than the calibration set degrades to the global mean.
	knn.K = 99
	est, err = knn.Estimate([][]float64{{5}}, Range{0, 2000})
	if err != nil || est[0] != 600 {
		t.Errorf("big-K = %v, %v", est, err)
	}
	if _, err := (&KNN{K: 0}).Estimate([][]float64{{1}}, Range{0, 1}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := (&KNN{K: 1}).Estimate([][]float64{{1}}, Range{0, 1}); err == nil {
		t.Error("empty calibration accepted")
	}
	mis := &KNN{K: 1, CalibFeatures: [][]float64{{1, 2}}, CalibTargets: []float64{1}}
	if _, err := mis.Estimate([][]float64{{1}}, Range{0, 1}); err == nil {
		t.Error("feature width mismatch accepted")
	}
}

func TestFuseProducesPhat(t *testing.T) {
	rel := releaseTable(t, []dataset.Value{dataset.Num(1), dataset.Num(5), dataset.Num(9)})
	aux := auxTable(t, []dataset.Value{dataset.Num(500), dataset.Num(2000), dataset.Num(5500)})
	phat, err := Fuse(rel, aux, NewFuzzy(), Range{40000, 160000})
	if err != nil {
		t.Fatal(err)
	}
	inc := phat.Schema().MustLookup("Income")
	var prev float64
	for i := 0; i < phat.NumRows(); i++ {
		v := phat.Cell(i, inc).MustFloat()
		if v < 40000 || v > 160000 {
			t.Errorf("estimate %g outside range", v)
		}
		if i > 0 && v <= prev {
			t.Errorf("estimates not increasing with monotone inputs: %g after %g", v, prev)
		}
		prev = v
	}
	// Original release untouched.
	if !rel.Cell(0, rel.Schema().MustLookup("Income")).IsNull() {
		t.Error("Fuse mutated its input")
	}
}

func TestFuseValidation(t *testing.T) {
	rel := releaseTable(t, []dataset.Value{dataset.Num(1), dataset.Num(2)})
	if _, err := Fuse(rel, nil, nil, Range{0, 1}); err == nil {
		t.Error("nil estimator accepted")
	}
	if _, err := Fuse(rel, nil, Midpoint{}, Range{7, 7}); err == nil {
		t.Error("empty range accepted")
	}
	// Two sensitive columns.
	two := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "Q", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "S1", Class: dataset.Sensitive, Kind: dataset.Number},
		dataset.Column{Name: "S2", Class: dataset.Sensitive, Kind: dataset.Number},
	))
	two.MustAppendRow(dataset.Num(1), dataset.Num(1), dataset.Num(1))
	if _, err := Fuse(two, nil, Midpoint{}, Range{0, 1}); err == nil {
		t.Error("two sensitive columns accepted")
	}
	// Text sensitive column.
	txt := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "Q", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "S", Class: dataset.Sensitive, Kind: dataset.Text},
	))
	txt.MustAppendRow(dataset.Num(1), dataset.Str("x"))
	if _, err := Fuse(txt, nil, Midpoint{}, Range{0, 1}); err == nil {
		t.Error("text sensitive accepted")
	}
}

func TestFuseWithoutAux(t *testing.T) {
	// Fusion degrades gracefully to release-only estimation (Q = nil).
	rel := releaseTable(t, []dataset.Value{dataset.Num(1), dataset.Num(9)})
	phat, err := Fuse(rel, nil, NewFuzzy(), Range{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	inc := phat.Schema().MustLookup("Income")
	lo := phat.Cell(0, inc).MustFloat()
	hi := phat.Cell(1, inc).MustFloat()
	if lo >= hi {
		t.Errorf("lo %g, hi %g", lo, hi)
	}
}

func TestEstimatorNames(t *testing.T) {
	ests := []Estimator{Midpoint{}, Rank{}, &Regression{}, &KNN{}, NewFuzzy()}
	seen := map[string]bool{}
	for _, e := range ests {
		n := e.Name()
		if n == "" || seen[n] {
			t.Errorf("bad or duplicate name %q", n)
		}
		seen[n] = true
	}
}
