package fusion

import (
	"testing"
	"testing/quick"

	"repro/internal/fuzzy"
)

func TestFuzzyMonotone(t *testing.T) {
	features := [][]float64{{1, 500}, {5, 2500}, {9, 5500}}
	est, err := NewFuzzy().Estimate(features, Range{40000, 160000})
	if err != nil {
		t.Fatal(err)
	}
	if !(est[0] < est[1] && est[1] < est[2]) {
		t.Errorf("not monotone: %v", est)
	}
}

func TestFuzzyBeatsMidpointOnCorrelatedData(t *testing.T) {
	// Truth: y proportional to x. Fuzzy fusion must reduce squared error vs
	// the midpoint estimate — the paper's central information-gain claim.
	var features [][]float64
	var truth []float64
	for i := 0; i < 30; i++ {
		x := float64(i) / 29 // 0..1
		features = append(features, []float64{x * 10})
		truth = append(truth, 40000+x*120000)
	}
	r := Range{40000, 160000}
	fz, err := NewFuzzy().Estimate(features, r)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := Midpoint{}.Estimate(features, r)
	if err != nil {
		t.Fatal(err)
	}
	sq := func(est []float64) float64 {
		var s float64
		for i := range est {
			d := est[i] - truth[i]
			s += d * d
		}
		return s
	}
	if sq(fz) >= sq(mid) {
		t.Errorf("fuzzy SSE %g not better than midpoint %g", sq(fz), sq(mid))
	}
}

func TestFuzzyDegenerateFeature(t *testing.T) {
	// Fully generalized release: every record identical. The estimator must
	// not fail; estimates collapse to a single central value.
	features := [][]float64{{5}, {5}, {5}}
	est, err := NewFuzzy().Estimate(features, Range{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if est[0] != est[1] || est[1] != est[2] {
		t.Errorf("estimates differ on identical inputs: %v", est)
	}
	if est[0] < 0 || est[0] > 100 {
		t.Errorf("estimate %g escapes range", est[0])
	}
}

func TestFuzzyTermCountVariants(t *testing.T) {
	features := [][]float64{{1}, {3}, {5}, {7}, {9}}
	for _, terms := range []int{2, 3, 5, 7} {
		f := &Fuzzy{Opts: FuzzyOptions{Terms: terms}}
		est, err := f.Estimate(features, Range{0, 100})
		if err != nil {
			t.Fatalf("terms=%d: %v", terms, err)
		}
		for i := 1; i < len(est); i++ {
			if est[i] < est[i-1] {
				t.Errorf("terms=%d: non-monotone %v", terms, est)
			}
		}
	}
	bad := &Fuzzy{Opts: FuzzyOptions{Terms: 1}}
	if _, err := bad.Estimate(features, Range{0, 100}); err == nil {
		t.Error("terms=1 accepted")
	}
}

func TestFuzzyCustomRules(t *testing.T) {
	f := &Fuzzy{Opts: FuzzyOptions{
		FeatureNames: []string{"valuation", "property"},
		Rules: `
# Figure 2 style hand-written knowledge.
IF valuation IS high AND property IS high THEN out IS high
IF valuation IS low  OR  property IS low  THEN out IS low
IF valuation IS med THEN out IS med
`,
	}}
	features := [][]float64{{1, 500}, {5, 2500}, {9, 5500}}
	est, err := f.Estimate(features, Range{40000, 160000})
	if err != nil {
		t.Fatal(err)
	}
	if !(est[0] < est[2]) {
		t.Errorf("custom rules not ordering extremes: %v", est)
	}
	// Sparse rules that never fire fall back to the midpoint.
	sparse := &Fuzzy{Opts: FuzzyOptions{
		FeatureNames: []string{"v"},
		Rules:        "IF v IS high THEN out IS high",
	}}
	est, err = sparse.Estimate([][]float64{{0}, {10}}, Range{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if est[0] != 50 {
		t.Errorf("no-fire fallback = %g, want midpoint 50", est[0])
	}
	// Broken custom rules error.
	broken := &Fuzzy{Opts: FuzzyOptions{Rules: "IF nonsense"}}
	if _, err := broken.Estimate([][]float64{{1}}, Range{0, 1}); err == nil {
		t.Error("broken rules accepted")
	}
	// Rule referencing unknown variable errors.
	unknown := &Fuzzy{Opts: FuzzyOptions{Rules: "IF zz IS high THEN out IS high"}}
	if _, err := unknown.Estimate([][]float64{{1}, {2}}, Range{0, 1}); err == nil {
		t.Error("unknown variable accepted")
	}
}

func TestFuzzyEngineVariants(t *testing.T) {
	features := [][]float64{{1, 500}, {5, 2500}, {9, 5500}}
	r := Range{40000, 160000}
	variants := []fuzzy.Options{
		{},
		{Norms: fuzzy.Norms{ProductAND: true}},
		{ProductImplication: true},
		{Defuzz: fuzzy.Bisector},
		{Defuzz: fuzzy.MeanOfMaxima},
		{Resolution: 1001},
	}
	for i, opts := range variants {
		f := &Fuzzy{Opts: FuzzyOptions{Engine: opts}}
		est, err := f.Estimate(features, r)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if !(est[0] < est[2]) {
			t.Errorf("variant %d: extremes unordered: %v", i, est)
		}
	}
}

func TestFuzzyErrors(t *testing.T) {
	if _, err := NewFuzzy().Estimate(nil, Range{0, 1}); err == nil {
		t.Error("no records accepted")
	}
	if _, err := NewFuzzy().Estimate([][]float64{{}}, Range{0, 1}); err == nil {
		t.Error("zero-width features accepted")
	}
	if _, err := NewFuzzy().Estimate([][]float64{{1}}, Range{3, 3}); err == nil {
		t.Error("empty range accepted")
	}
	f := &Fuzzy{Opts: FuzzyOptions{FeatureNames: []string{"a", "b"}}}
	if _, err := f.Estimate([][]float64{{1}}, Range{0, 1}); err == nil {
		t.Error("name/width mismatch accepted")
	}
	if _, err := NewFuzzy().Estimate([][]float64{{1}, {1, 2}}, Range{0, 1}); err == nil {
		t.Error("ragged features accepted")
	}
}

// Property: fuzzy estimates always stay inside the sensitive range.
func TestFuzzyRangeProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 20 {
			raw = raw[:20]
		}
		features := make([][]float64, len(raw))
		for i, b := range raw {
			features[i] = []float64{float64(b)}
		}
		est, err := NewFuzzy().Estimate(features, Range{40000, 160000})
		if err != nil {
			return false
		}
		for _, v := range est {
			if v < 40000 || v > 160000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
