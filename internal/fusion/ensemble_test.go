package fusion

import "testing"

func TestEnsemble(t *testing.T) {
	// Midpoint says 50 everywhere; rank spreads [0, 100]. Uniform ensemble
	// averages the two.
	ens := &Ensemble{Members: []Estimator{Midpoint{}, Rank{}}}
	est, err := ens.Estimate([][]float64{{1}, {2}, {3}}, Range{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{25, 50, 75} // (50+0)/2, (50+50)/2, (50+100)/2
	for i := range want {
		if est[i] != want[i] {
			t.Errorf("est[%d] = %g, want %g", i, est[i], want[i])
		}
	}
}

func TestEnsembleWeighted(t *testing.T) {
	ens := &Ensemble{Members: []Estimator{Midpoint{}, Rank{}}, Weights: []float64{1, 3}}
	est, err := ens.Estimate([][]float64{{1}, {3}}, Range{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	// (1·50 + 3·0)/4 = 12.5 and (1·50 + 3·100)/4 = 87.5.
	if est[0] != 12.5 || est[1] != 87.5 {
		t.Errorf("weighted = %v", est)
	}
}

func TestEnsembleErrors(t *testing.T) {
	if _, err := (&Ensemble{}).Estimate([][]float64{{1}}, Range{0, 1}); err == nil {
		t.Error("empty ensemble accepted")
	}
	bad := &Ensemble{Members: []Estimator{Midpoint{}}, Weights: []float64{1, 2}}
	if _, err := bad.Estimate([][]float64{{1}}, Range{0, 1}); err == nil {
		t.Error("weight count mismatch accepted")
	}
	neg := &Ensemble{Members: []Estimator{Midpoint{}}, Weights: []float64{-1}}
	if _, err := neg.Estimate([][]float64{{1}}, Range{0, 1}); err == nil {
		t.Error("negative weight accepted")
	}
	zero := &Ensemble{Members: []Estimator{Midpoint{}}, Weights: []float64{0}}
	if _, err := zero.Estimate([][]float64{{1}}, Range{0, 1}); err == nil {
		t.Error("zero weights accepted")
	}
	failing := &Ensemble{Members: []Estimator{&KNN{K: 0}}}
	if _, err := failing.Estimate([][]float64{{1}}, Range{0, 1}); err == nil {
		t.Error("failing member accepted")
	}
	if (&Ensemble{}).Name() == "" {
		t.Error("empty name")
	}
}

func TestEnsembleWithFuzzy(t *testing.T) {
	ens := &Ensemble{Members: []Estimator{NewFuzzy(), Rank{}}}
	features := [][]float64{{1}, {5}, {9}}
	est, err := ens.Estimate(features, Range{40000, 160000})
	if err != nil {
		t.Fatal(err)
	}
	if !(est[0] < est[1] && est[1] < est[2]) {
		t.Errorf("not monotone: %v", est)
	}
	for _, v := range est {
		if v < 40000 || v > 160000 {
			t.Errorf("estimate %g escapes range", v)
		}
	}
}
