// Package fusion implements the paper's information fusion system F: given
// the anonymized release P' and the web auxiliary data Q, it produces P̂, the
// adversary's estimate of the private data P (Section 4, Figure 2).
//
// The primary estimator is the fuzzy inference system of Figure 2, built
// automatically from the data's observed ranges with the paper's
// "simplistic set of knowledge rules ... assigned uniform weights"
// (Section 6.A). Comparison estimators — midpoint (no fusion), rank,
// ordinary least squares and k-nearest-neighbours — support the ablation
// benches.
package fusion

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Range is the publicly known span of the sensitive attribute (the paper's
// "income range for all the customers is [$40000 - $100000]").
type Range struct{ Lo, Hi float64 }

// Mid returns the range midpoint — the no-fusion estimate.
func (r Range) Mid() float64 { return (r.Lo + r.Hi) / 2 }

// valid reports whether the range is non-empty.
func (r Range) valid() bool { return r.Hi > r.Lo }

// Estimator maps per-record feature vectors to sensitive estimates within a
// range.
type Estimator interface {
	// Name identifies the estimator in reports and benches.
	Name() string
	// Estimate returns one estimate per feature row, each inside [out.Lo,
	// out.Hi].
	Estimate(features [][]float64, out Range) ([]float64, error)
}

// ErrNoFeatures is returned when the release and auxiliary tables yield no
// numeric features.
var ErrNoFeatures = errors.New("fusion: no numeric features available")

// AuxFeatures is the precomputed aux-side half of the adversary's feature
// matrix: one mean-imputed column vector per numeric quasi-identifier of the
// auxiliary table Q. The columns are invariant across anonymization levels,
// so a sweep prepares them once (core.SweepContext) and every level only
// assembles the release-side half.
type AuxFeatures struct {
	// rows is Q's row count, or -1 for the no-aux adversary.
	rows  int
	cols  [][]float64
	names []string
}

// PrepareAux extracts and imputes the aux-side feature columns. A nil aux
// models the adversary without web access and yields an empty feature set.
func PrepareAux(aux *dataset.Table) *AuxFeatures {
	af := &AuxFeatures{rows: -1}
	if aux == nil {
		return af
	}
	af.rows = aux.NumRows()
	for _, i := range aux.Schema().IndicesOf(dataset.QuasiIdentifier) {
		if aux.Schema().Column(i).Kind != dataset.Number {
			continue
		}
		af.cols = append(af.cols, imputedColumn(aux, i))
		af.names = append(af.names, "aux."+aux.Schema().Column(i).Name)
	}
	return af
}

// imputedColumn reads a column's numeric values (interval midpoints) with
// missing cells replaced by the mean of the observed ones.
func imputedColumn(t *dataset.Table, idx int) []float64 {
	vals, present := t.FloatColumn(idx)
	var sum float64
	var seen int
	for r, ok := range present {
		if ok {
			sum += vals[r]
			seen++
		}
	}
	mean := 0.0
	if seen > 0 {
		mean = sum / float64(seen)
	}
	for r, ok := range present {
		if !ok {
			vals[r] = mean
		}
	}
	return vals
}

// Features assembles the adversary's input matrix: the numeric
// quasi-identifiers of the release (generalized cells read at interval
// midpoints) concatenated with the numeric quasi-identifiers of the aux
// table, row-aligned. Missing cells (suppressed, unlinked web attributes)
// are imputed with the column mean of the observed values. The returned
// names parallel the feature columns.
func Features(release, aux *dataset.Table) (features [][]float64, names []string, err error) {
	return FeaturesWith(release, PrepareAux(aux))
}

// FeaturesWith is Features with the aux-side columns already prepared — the
// per-level half of the work. It extracts the release's feature columns from
// its column buffers and assembles the row-major matrix the Estimator
// contract expects.
func FeaturesWith(release *dataset.Table, aux *AuxFeatures) (features [][]float64, names []string, err error) {
	if aux.rows >= 0 && release.NumRows() != aux.rows {
		return nil, nil, fmt.Errorf("fusion: release has %d rows, aux has %d; align them first (web.Gather aligns by roster order)", release.NumRows(), aux.rows)
	}
	var cols [][]float64
	for _, i := range release.Schema().IndicesOf(dataset.QuasiIdentifier) {
		if release.Schema().Column(i).Kind == dataset.Number {
			cols = append(cols, imputedColumn(release, i))
			names = append(names, release.Schema().Column(i).Name)
		}
	}
	cols = append(cols, aux.cols...)
	names = append(names, aux.names...)
	if len(cols) == 0 {
		return nil, nil, ErrNoFeatures
	}
	m := release.NumRows()
	features = make([][]float64, m)
	flat := make([]float64, m*len(cols))
	for r := range features {
		// cap==len so estimator code appending to a row cannot clobber the
		// next row in the shared backing array.
		row := flat[r*len(cols) : (r+1)*len(cols) : (r+1)*len(cols)]
		for j := range cols {
			row[j] = cols[j][r]
		}
		features[r] = row
	}
	return features, names, nil
}

// sensitiveColumn validates the release's sensitive column for fusion: there
// must be exactly one and it must be numeric.
func sensitiveColumn(release *dataset.Table) (int, error) {
	sens := release.Schema().IndicesOf(dataset.Sensitive)
	if len(sens) != 1 {
		return 0, fmt.Errorf("fusion: release needs exactly one sensitive column, found %d", len(sens))
	}
	if release.Schema().Column(sens[0]).Kind != dataset.Number {
		return 0, fmt.Errorf("fusion: sensitive column %q is not numeric", release.Schema().Column(sens[0]).Name)
	}
	return sens[0], nil
}

// Fuse runs the full F(P', Q) step: build features, estimate the sensitive
// attribute, and return P̂ — the release with its (single, numeric) sensitive
// column holding the estimates and every other column shared.
func Fuse(release, aux *dataset.Table, est Estimator, out Range) (*dataset.Table, error) {
	return FuseWith(release, PrepareAux(aux), est, out)
}

// FuseWith is Fuse with the aux-side feature columns already prepared.
func FuseWith(release *dataset.Table, aux *AuxFeatures, est Estimator, out Range) (*dataset.Table, error) {
	if est == nil {
		return nil, errors.New("fusion: nil estimator")
	}
	if !out.valid() {
		return nil, fmt.Errorf("fusion: empty sensitive range [%g, %g]", out.Lo, out.Hi)
	}
	sens, err := sensitiveColumn(release)
	if err != nil {
		return nil, err
	}
	features, _, err := FeaturesWith(release, aux)
	if err != nil {
		return nil, err
	}
	est2, err := est.Estimate(features, out)
	if err != nil {
		return nil, err
	}
	if len(est2) != release.NumRows() {
		return nil, fmt.Errorf("fusion: estimator %s returned %d estimates for %d rows", est.Name(), len(est2), release.NumRows())
	}
	for i, v := range est2 {
		est2[i] = stats.Clamp(v, out.Lo, out.Hi)
	}
	return release.WithColumnFloats(sens, est2)
}

// CanFuse reports whether a release can enter the fusion step for the given
// range: the checks Fuse performs before any feature work (valid range,
// exactly one numeric sensitive column, at least one numeric feature when
// the adversary has no aux table). It is the allocation-free validation
// core.SweepContext runs per level in place of building the midpoint
// baseline table.
func CanFuse(release *dataset.Table, out Range) error {
	if !out.valid() {
		return fmt.Errorf("fusion: empty sensitive range [%g, %g]", out.Lo, out.Hi)
	}
	if _, err := sensitiveColumn(release); err != nil {
		return err
	}
	// Features(release, nil) fails only when the release contributes no
	// numeric quasi-identifiers; preserve that contract without the build.
	for _, i := range release.Schema().IndicesOf(dataset.QuasiIdentifier) {
		if release.Schema().Column(i).Kind == dataset.Number {
			return nil
		}
	}
	return ErrNoFeatures
}

// FuseBaseline returns the no-fusion estimate P̂₀: the release with its
// sensitive column set to the public-range midpoint. It is Fuse(release,
// nil, Midpoint{}, out) minus the feature assembly the Midpoint estimator
// ignores, with identical validation — the pre-fusion side of the attack.
func FuseBaseline(release *dataset.Table, out Range) (*dataset.Table, error) {
	if err := CanFuse(release, out); err != nil {
		return nil, err
	}
	sens, _ := sensitiveColumn(release)
	mid := out.Mid()
	vals := make([]float64, release.NumRows())
	for i := range vals {
		vals[i] = mid
	}
	return release.WithColumnFloats(sens, vals)
}

// ---------------------------------------------------------------------------
// Baseline estimators

// Midpoint is the no-fusion adversary of Section 6.B: with the sensitive
// column suppressed, the best k-independent guess is the middle of the
// public range. (P ∘ P') in Figure 4 corresponds to this estimate.
type Midpoint struct{}

// Name implements Estimator.
func (Midpoint) Name() string { return "midpoint" }

// Estimate implements Estimator.
func (Midpoint) Estimate(features [][]float64, out Range) ([]float64, error) {
	if !out.valid() {
		return nil, fmt.Errorf("fusion: empty range")
	}
	est := make([]float64, len(features))
	for i := range est {
		est[i] = out.Mid()
	}
	return est, nil
}

// Rank estimates by composite rank: records are scored by the mean of their
// min-max-normalized features and the public range is spread across the
// score order. It needs no calibration data — only the public range —
// making it the weakest "real" fusion baseline.
type Rank struct{}

// Name implements Estimator.
func (Rank) Name() string { return "rank" }

// Estimate implements Estimator.
func (Rank) Estimate(features [][]float64, out Range) ([]float64, error) {
	if !out.valid() {
		return nil, fmt.Errorf("fusion: empty range")
	}
	n := len(features)
	if n == 0 {
		return nil, errors.New("fusion: rank estimator needs at least one record")
	}
	d := len(features[0])
	scores := make([]float64, n)
	for j := 0; j < d; j++ {
		colVals := make([]float64, n)
		for i := range features {
			colVals[i] = features[i][j]
		}
		norm := stats.Normalize(colVals)
		for i := range scores {
			scores[i] += norm[i] / float64(d)
		}
	}
	// Rank by score (average ranks are unnecessary; stable order by index).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort on (score, index)
		for j := i; j > 0 && (scores[order[j]] < scores[order[j-1]] ||
			(scores[order[j]] == scores[order[j-1]] && order[j] < order[j-1])); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	est := make([]float64, n)
	if n == 1 {
		est[0] = out.Mid()
		return est, nil
	}
	for rank, idx := range order {
		est[idx] = out.Lo + float64(rank)/float64(n-1)*(out.Hi-out.Lo)
	}
	return est, nil
}

// Ensemble averages several estimators — a cautious adversary hedging
// between fusion strategies. Weights default to uniform when nil.
type Ensemble struct {
	Members []Estimator
	Weights []float64
}

// Name implements Estimator.
func (e *Ensemble) Name() string { return "ensemble" }

// Estimate implements Estimator.
func (e *Ensemble) Estimate(features [][]float64, out Range) ([]float64, error) {
	if len(e.Members) == 0 {
		return nil, errors.New("fusion: ensemble has no members")
	}
	weights := e.Weights
	if weights == nil {
		weights = make([]float64, len(e.Members))
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != len(e.Members) {
		return nil, fmt.Errorf("fusion: ensemble has %d members and %d weights", len(e.Members), len(weights))
	}
	var totalW float64
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("fusion: negative ensemble weight %g", w)
		}
		totalW += w
	}
	if totalW == 0 {
		return nil, errors.New("fusion: ensemble weights sum to zero")
	}
	acc := make([]float64, len(features))
	for m, member := range e.Members {
		est, err := member.Estimate(features, out)
		if err != nil {
			return nil, fmt.Errorf("fusion: ensemble member %s: %w", member.Name(), err)
		}
		if len(est) != len(features) {
			return nil, fmt.Errorf("fusion: ensemble member %s returned %d estimates for %d rows", member.Name(), len(est), len(features))
		}
		for i, v := range est {
			acc[i] += weights[m] * v
		}
	}
	for i := range acc {
		acc[i] = stats.Clamp(acc[i]/totalW, out.Lo, out.Hi)
	}
	return acc, nil
}

// Regression fits ordinary least squares on a leaked calibration subset —
// records whose sensitive values the adversary already knows (e.g. salaries
// disclosed in public records) — and predicts the rest.
type Regression struct {
	// CalibFeatures and CalibTargets are the adversary's labeled examples.
	CalibFeatures [][]float64
	CalibTargets  []float64
}

// Name implements Estimator.
func (*Regression) Name() string { return "regression" }

// Estimate implements Estimator.
func (r *Regression) Estimate(features [][]float64, out Range) ([]float64, error) {
	model, err := stats.FitOLS(r.CalibFeatures, r.CalibTargets)
	if err != nil {
		return nil, fmt.Errorf("fusion: regression calibration: %w", err)
	}
	est := make([]float64, len(features))
	for i, f := range features {
		est[i] = stats.Clamp(model.Predict(f), out.Lo, out.Hi)
	}
	return est, nil
}

// KNN averages the sensitive values of the K nearest calibration records in
// feature space. Ties in distance break by calibration index, so the chosen
// neighbourhood is a deterministic function of the data alone.
type KNN struct {
	K             int
	CalibFeatures [][]float64
	CalibTargets  []float64

	// Batch-path caches (see batch.go): the calibration features flattened
	// row-major, built once, and the per-worker neighbour heaps. Do not
	// mutate CalibFeatures after the first batch estimate.
	calibOnce sync.Once
	calibFlat []float64
	calibD    int
	calibErr  error
	heapPool  sync.Pool
}

// Name implements Estimator.
func (*KNN) Name() string { return "knn" }

// Estimate implements Estimator.
func (k *KNN) Estimate(features [][]float64, out Range) ([]float64, error) {
	if k.K < 1 {
		return nil, fmt.Errorf("fusion: knn needs K ≥ 1, got %d", k.K)
	}
	if len(k.CalibFeatures) != len(k.CalibTargets) || len(k.CalibFeatures) == 0 {
		return nil, errors.New("fusion: knn calibration features and targets must be non-empty and aligned")
	}
	kk := k.K
	if kk > len(k.CalibFeatures) {
		kk = len(k.CalibFeatures)
	}
	est := make([]float64, len(features))
	type cand struct {
		d float64
		y float64
		i int
	}
	for i, f := range features {
		cands := make([]cand, len(k.CalibFeatures))
		for c, cf := range k.CalibFeatures {
			if len(cf) != len(f) {
				return nil, fmt.Errorf("fusion: knn calibration row %d has %d features, query has %d", c, len(cf), len(f))
			}
			var d float64
			for j := range f {
				diff := f[j] - cf[j]
				d += diff * diff
			}
			cands[c] = cand{d, k.CalibTargets[c], c}
		}
		// Partial selection of the kk nearest under the (distance, index)
		// total order — the tie-break keeps the selected set and its sum
		// order a pure function of the data (the batch path's neighbour
		// heap relies on this).
		for s := 0; s < kk; s++ {
			best := s
			for j := s + 1; j < len(cands); j++ {
				if cands[j].d < cands[best].d ||
					(cands[j].d == cands[best].d && cands[j].i < cands[best].i) {
					best = j
				}
			}
			cands[s], cands[best] = cands[best], cands[s]
		}
		var sum float64
		for s := 0; s < kk; s++ {
			sum += cands[s].y
		}
		est[i] = stats.Clamp(sum/float64(kk), out.Lo, out.Hi)
	}
	return est, nil
}
