package fusion

import (
	"strings"
	"testing"

	"repro/internal/fuzzy"
)

const incomeFIS = `
OUTPUT income 40000 160000
TERM income low  trap -inf -inf 70000 100000
TERM income med  tri 70000 100000 130000
TERM income high trap 100000 130000 inf inf
INPUT valuation 1 10
TERM valuation low  trap -inf -inf 4 6
TERM valuation high trap 4 6 inf inf
RULE IF valuation IS low THEN income IS low
RULE IF valuation IS high THEN income IS high
`

func loadFIS(t *testing.T) *fuzzy.System {
	t.Helper()
	sys, err := fuzzy.ParseFIS(strings.NewReader(incomeFIS), fuzzy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestFISEstimator(t *testing.T) {
	est := &FIS{System: loadFIS(t), FeatureNames: []string{"valuation"}}
	got, err := est.Estimate([][]float64{{1}, {9}}, Range{40000, 160000})
	if err != nil {
		t.Fatal(err)
	}
	if !(got[0] < got[1]) {
		t.Errorf("estimates unordered: %v", got)
	}
	if got[0] > 90000 || got[1] < 110000 {
		t.Errorf("extremes not separated: %v", got)
	}
	if est.Name() == "" {
		t.Error("empty name")
	}
}

func TestFISNoRuleFallsBackToMidpoint(t *testing.T) {
	// Dead zone at valuation 5: both trapezoids are zero there.
	est := &FIS{System: loadFIS(t), FeatureNames: []string{"valuation"}}
	got, err := est.Estimate([][]float64{{5}}, Range{40000, 160000})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 100000 {
		t.Errorf("fallback = %g, want 100000", got[0])
	}
}

func TestFISErrors(t *testing.T) {
	sys := loadFIS(t)
	if _, err := (&FIS{FeatureNames: []string{"x"}}).Estimate([][]float64{{1}}, Range{0, 1}); err == nil {
		t.Error("nil system accepted")
	}
	if _, err := (&FIS{System: sys, FeatureNames: []string{"valuation"}}).Estimate(nil, Range{0, 1}); err == nil {
		t.Error("no records accepted")
	}
	if _, err := (&FIS{System: sys, FeatureNames: []string{"a", "b"}}).Estimate([][]float64{{1}}, Range{0, 1}); err == nil {
		t.Error("name width mismatch accepted")
	}
	if _, err := (&FIS{System: sys, FeatureNames: []string{"wrong"}}).Estimate([][]float64{{1}}, Range{40000, 160000}); err == nil {
		t.Error("unmapped system input accepted")
	}
	if _, err := (&FIS{System: sys, FeatureNames: []string{"valuation"}}).Estimate([][]float64{{1}}, Range{5, 5}); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := (&FIS{System: sys, FeatureNames: []string{"valuation"}}).Estimate([][]float64{{1}, {1, 2}}, Range{0, 1}); err == nil {
		t.Error("ragged features accepted")
	}
	// Sugeno over Mamdani terms fails.
	sug := &FIS{System: sys, FeatureNames: []string{"valuation"}, Sugeno: true}
	if _, err := sug.Estimate([][]float64{{9}}, Range{40000, 160000}); err == nil {
		t.Error("Sugeno over non-singleton terms accepted")
	}
}

func TestFISSugeno(t *testing.T) {
	src := `
OUTPUT income 0 100
TERM income low singleton 20
TERM income high singleton 80
INPUT x 0 10
TERM x low  trap -inf -inf 4 6
TERM x high trap 4 6 inf inf
RULE IF x IS low THEN income IS low
RULE IF x IS high THEN income IS high
`
	sys, err := fuzzy.ParseFIS(strings.NewReader(src), fuzzy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	est := &FIS{System: sys, FeatureNames: []string{"x"}, Sugeno: true}
	got, err := est.Estimate([][]float64{{0}, {10}, {5}}, Range{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 20 || got[1] != 80 {
		t.Errorf("sugeno = %v", got)
	}
	if got[2] != 50 { // dead zone → midpoint
		t.Errorf("dead zone = %g", got[2])
	}
}
