package fusion

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fuzzy"
	"repro/internal/parallel"
)

// featureFixture builds a release/aux pair with nulls and intervals so both
// imputation paths get exercised.
func featureFixture(t *testing.T) (*dataset.Table, *dataset.Table) {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	var relVals, auxVals []dataset.Value
	for i := 0; i < 300; i++ {
		switch rng.Intn(5) {
		case 0:
			relVals = append(relVals, dataset.NullValue())
		case 1:
			lo := float64(rng.Intn(50))
			relVals = append(relVals, dataset.Span(lo, lo+float64(rng.Intn(10))))
		default:
			relVals = append(relVals, dataset.Num(float64(rng.Intn(100))))
		}
		if rng.Intn(7) == 0 {
			auxVals = append(auxVals, dataset.NullValue())
		} else {
			auxVals = append(auxVals, dataset.Num(float64(rng.Intn(1000))))
		}
	}
	return releaseTable(t, relVals), auxTable(t, auxVals)
}

// randMatrix builds a random flat feature matrix plus its row-slice view.
func randMatrix(rng *rand.Rand, n, d int) (Matrix, [][]float64) {
	flat := make([]float64, n*d)
	for i := range flat {
		flat[i] = math.Round(rng.Float64()*100) / 10 // coarse grid → distance ties
	}
	m := Matrix{Flat: flat, Rows: n, Stride: d}
	return m, rowViews(m)
}

func sameBits(t *testing.T, tag string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d estimates, want %d", tag, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: row %d: batch %v != row-slice %v", tag, i, got[i], want[i])
		}
	}
}

// batchBudgets covers the worker axis: inline, and budgets of 2 and 8
// spare tokens.
func batchBudgets() []*parallel.Budget {
	return []*parallel.Budget{nil, parallel.NewBudget(2), parallel.NewBudget(8)}
}

// TestEstimateBatchMatchesEstimate pins every built-in estimator's batch
// face to its row-slice Estimate, bit for bit, across worker budgets.
func TestEstimateBatchMatchesEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	out := Range{Lo: 40, Hi: 160}
	const n, d = 700, 3
	m, rows := randMatrix(rng, n, d)

	calibN := 60
	_, calibRows := randMatrix(rng, calibN, d)
	targets := make([]float64, calibN)
	for i := range targets {
		targets[i] = out.Lo + rng.Float64()*(out.Hi-out.Lo)
	}

	ests := []Estimator{
		Midpoint{},
		Rank{},
		&Regression{CalibFeatures: calibRows, CalibTargets: targets},
		&KNN{K: 5, CalibFeatures: calibRows, CalibTargets: targets},
		&Fuzzy{},
		&Fuzzy{Opts: FuzzyOptions{Domains: []Range{{0, 10}, {0, 10}, {0, 10}}}},
		&Ensemble{Members: []Estimator{
			Midpoint{},
			Rank{},
			&KNN{K: 3, CalibFeatures: calibRows, CalibTargets: targets},
		}, Weights: []float64{1, 2, 3}},
	}
	arena := &Arena{}
	for _, est := range ests {
		want, err := est.Estimate(rows, out)
		if err != nil {
			t.Fatalf("%s: Estimate: %v", est.Name(), err)
		}
		be := est.(BatchEstimator)
		for bi, b := range batchBudgets() {
			arena.Reset()
			got := arena.Floats(n)
			if err := be.EstimateBatch(m, out, b, arena, got); err != nil {
				t.Fatalf("%s budget %d: EstimateBatch: %v", est.Name(), bi, err)
			}
			sameBits(t, est.Name(), got, want)
		}
	}
}

// TestFISBatchMatchesEstimate covers the hand-authored system adapter in
// both inference modes, including no-rule-fired rows.
func TestFISBatchMatchesEstimate(t *testing.T) {
	build := func(sugeno bool) *FIS {
		outVar, err := fuzzy.NewVariable("out", 0, 100)
		if err != nil {
			t.Fatal(err)
		}
		if sugeno {
			for _, s := range []struct {
				name string
				x    float64
			}{{"low", 10}, {"high", 90}} {
				if err := outVar.AddTerm(s.name, fuzzy.Singleton{X: s.x}); err != nil {
					t.Fatal(err)
				}
			}
		} else if err := outVar.UniformTerms([]string{"low", "high"}); err != nil {
			t.Fatal(err)
		}
		sys, err := fuzzy.NewSystem(outVar, fuzzy.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"f1", "f2"} {
			v, err := fuzzy.NewVariable(name, 0, 10)
			if err != nil {
				t.Fatal(err)
			}
			if err := v.ThreeTerms("low", "med", "high"); err != nil {
				t.Fatal(err)
			}
			if err := sys.AddInput(v); err != nil {
				t.Fatal(err)
			}
		}
		for _, r := range []string{
			// Sparse on purpose: mid-range rows fire nothing.
			"IF f1 IS low AND f2 IS low THEN out IS low",
			"IF f1 IS high AND f2 IS high THEN out IS high",
		} {
			if err := sys.AddRuleText(r); err != nil {
				t.Fatal(err)
			}
		}
		return &FIS{System: sys, FeatureNames: []string{"f1", "f2"}, Sugeno: sugeno}
	}
	rng := rand.New(rand.NewSource(5))
	const n = 400
	m, rows := randMatrix(rng, n, 2)
	out := Range{Lo: 0, Hi: 100}
	arena := &Arena{}
	for _, sugeno := range []bool{false, true} {
		f := build(sugeno)
		want, err := f.Estimate(rows, out)
		if err != nil {
			t.Fatalf("sugeno=%v: %v", sugeno, err)
		}
		for _, b := range batchBudgets() {
			arena.Reset()
			got := arena.Floats(n)
			if err := f.EstimateBatch(m, out, b, arena, got); err != nil {
				t.Fatalf("sugeno=%v: %v", sugeno, err)
			}
			sameBits(t, f.Name(), got, want)
		}
	}
}

// TestFeaturesMatrixMatchesFeatures pins the flat matrix to the row-slice
// features: same columns, same imputation, same bits.
func TestFeaturesMatrixMatchesFeatures(t *testing.T) {
	release, aux := featureFixture(t)
	want, wantNames, err := Features(release, aux)
	if err != nil {
		t.Fatal(err)
	}
	arena := &Arena{}
	for _, b := range batchBudgets() {
		arena.Reset()
		m, err := FeaturesMatrixWith(release, PrepareAux(aux), b, arena)
		if err != nil {
			t.Fatal(err)
		}
		if m.Rows != len(want) || m.Stride != len(wantNames) {
			t.Fatalf("matrix %dx%d, want %dx%d", m.Rows, m.Stride, len(want), len(wantNames))
		}
		for j, name := range wantNames {
			if m.Names[j] != name {
				t.Fatalf("feature %d named %q, want %q", j, m.Names[j], name)
			}
		}
		for r := range want {
			for j := range want[r] {
				if math.Float64bits(m.Flat[r*m.Stride+j]) != math.Float64bits(want[r][j]) {
					t.Fatalf("cell (%d,%d): %v != %v", r, j, m.Flat[r*m.Stride+j], want[r][j])
				}
			}
		}
	}
}

// TestFuseWithBatchMatchesFuseWith: the full fusion step must produce an
// identical table on the batch path, and reusing the arena across levels
// must not corrupt results.
func TestFuseWithBatchMatchesFuseWith(t *testing.T) {
	release, aux := featureFixture(t)
	out := Range{Lo: 40000, Hi: 160000}
	af := PrepareAux(aux)
	arena := &Arena{}
	b := parallel.NewBudget(4)
	for _, est := range []Estimator{&Fuzzy{}, Rank{}, Midpoint{}} {
		want, err := FuseWith(release, af, est, out)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ { // arena reuse across "levels"
			arena.Reset()
			got, err := FuseWithBatch(release, af, est, out, b, arena)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s round %d: batch fusion table differs", est.Name(), round)
			}
		}
	}
}

// TestArenaReuse: once warm, a fuse step on the arena path must not grow the
// arena again (the per-level steady state the sweep relies on).
func TestArenaReuse(t *testing.T) {
	arena := &Arena{}
	for round := 0; round < 4; round++ {
		arena.Reset()
		a := arena.Floats(100)
		bb := arena.Bools(50)
		c := arena.Ints(70)
		if len(a) != 100 || len(bb) != 50 || len(c) != 70 {
			t.Fatal("arena returned wrong lengths")
		}
		a[99] = 1
		bb[49] = true
		c[69] = 7
	}
	arena.Reset()
	allocs := testing.AllocsPerRun(20, func() {
		arena.Reset()
		_ = arena.Floats(100)
		_ = arena.Bools(50)
		_ = arena.Ints(70)
	})
	if allocs > 0 {
		t.Fatalf("warm arena allocates %g times per run, want 0", allocs)
	}
	// Slices are zeroed on every allocation.
	arena.Reset()
	if f := arena.Floats(100); f[99] != 0 {
		t.Fatal("arena floats not zeroed")
	}
	if bb := arena.Bools(50); bb[49] {
		t.Fatal("arena bools not zeroed")
	}
	if c := arena.Ints(70); c[69] != 0 {
		t.Fatal("arena ints not zeroed")
	}
}

// TestKNNTieBreak: with exactly tied distances straddling the K boundary,
// the (distance, index) order must pick the lower calibration indices on
// both paths.
func TestKNNTieBreak(t *testing.T) {
	calib := [][]float64{{1, 0}, {0, 1}, {-1, 0}, {0, -1}} // all at distance 1 from origin
	targets := []float64{10, 20, 40, 80}
	k := &KNN{K: 2, CalibFeatures: calib, CalibTargets: targets}
	query := [][]float64{{0, 0}}
	want, err := k.Estimate(query, Range{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if want[0] != 15 { // neighbours 0 and 1 under (d, idx) order
		t.Fatalf("row-slice knn picked %v, want 15", want[0])
	}
	got := make([]float64, 1)
	if err := k.EstimateBatch(Matrix{Flat: []float64{0, 0}, Rows: 1, Stride: 2}, Range{0, 100}, nil, nil, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != want[0] {
		t.Fatalf("batch knn %v != row-slice %v", got[0], want[0])
	}
}

// BenchmarkFuzzyEstimateBatch is the attack-plane CI smoke benchmark: the
// paper's estimator with fixed domains over a mid-size cohort.
func BenchmarkFuzzyEstimateBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	const n, d = 4096, 4
	m, _ := randMatrix(rng, n, d)
	doms := make([]Range, d)
	for j := range doms {
		doms[j] = Range{0, 10}
	}
	f := &Fuzzy{Opts: FuzzyOptions{Domains: doms}}
	out := Range{Lo: 40, Hi: 160}
	arena := &Arena{}
	est := arena.Floats(n)
	if err := f.EstimateBatch(m, out, nil, arena, est); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.EstimateBatch(m, out, nil, arena, est); err != nil {
			b.Fatal(err)
		}
	}
}
