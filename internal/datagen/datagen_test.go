package datagen

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestUniversityShapeAndDeterminism(t *testing.T) {
	p1, prof1, err := University(UniversityConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if p1.NumRows() != 40 || len(prof1) != 40 {
		t.Fatalf("rows = %d, profiles = %d", p1.NumRows(), len(prof1))
	}
	p2, prof2, err := University(UniversityConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Equal(p2) {
		t.Error("same seed, different tables")
	}
	for i := range prof1 {
		// Profiles embed a Ladder slice; compare the value fields.
		if prof1[i].Name != prof2[i].Name || prof1[i].Seniority != prof2[i].Seniority ||
			prof1[i].Property != prof2[i].Property {
			t.Fatalf("profile %d differs", i)
		}
	}
	p3, _, err := University(UniversityConfig{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Equal(p3) {
		t.Error("different seeds, same table")
	}
}

func TestUniversityValueRanges(t *testing.T) {
	p, profiles, err := University(UniversityConfig{Seed: 7, N: 60})
	if err != nil {
		t.Fatal(err)
	}
	sal := p.Schema().MustLookup("Salary")
	for i := 0; i < p.NumRows(); i++ {
		s := p.Cell(i, sal).MustFloat()
		if s < 40000 || s > 160000 {
			t.Errorf("salary %g out of range", s)
		}
		for _, c := range []string{"Teaching", "Research", "Service"} {
			v := p.Cell(i, p.Schema().MustLookup(c)).MustFloat()
			if v < 1 || v > 10 {
				t.Errorf("%s = %g out of [1,10]", c, v)
			}
		}
	}
	for _, pr := range profiles {
		if pr.Seniority < 1 || pr.Seniority > 10 {
			t.Errorf("seniority %g out of range", pr.Seniority)
		}
		if pr.Property < 200 || pr.Property > 8000 {
			t.Errorf("property %g out of range", pr.Property)
		}
	}
}

func TestUniversityCorrelations(t *testing.T) {
	// The two substitution-critical correlations (DESIGN.md §4): reviews ↔
	// salary and web attributes ↔ salary must be strongly positive.
	p, profiles, err := University(UniversityConfig{Seed: 11, N: 80})
	if err != nil {
		t.Fatal(err)
	}
	salaries := p.ColumnFloats(p.Schema().MustLookup("Salary"), 0)
	reviews := p.ColumnFloats(p.Schema().MustLookup("Research"), 0)
	property := make([]float64, len(profiles))
	seniority := make([]float64, len(profiles))
	for i, pr := range profiles {
		property[i] = pr.Property
		seniority[i] = pr.Seniority
	}
	for name, xs := range map[string][]float64{
		"reviews": reviews, "property": property, "seniority": seniority,
	} {
		r, err := stats.Correlation(xs, salaries)
		if err != nil {
			t.Fatal(err)
		}
		if r < 0.6 {
			t.Errorf("correlation(%s, salary) = %.2f, want ≥ 0.6", name, r)
		}
	}
}

func TestUniversityUniqueNames(t *testing.T) {
	p, _, err := University(UniversityConfig{Seed: 3, N: 200})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < p.NumRows(); i++ {
		n, _ := p.Cell(i, 0).Text()
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
	}
}

func TestUniversityValidation(t *testing.T) {
	if _, _, err := University(UniversityConfig{N: 1}); err == nil {
		t.Error("N=1 accepted")
	}
	if _, _, err := University(UniversityConfig{SalaryLo: 5, SalaryHi: 4}); err == nil {
		t.Error("inverted salary range accepted")
	}
	if _, _, err := University(UniversityConfig{ReviewNoise: -1}); err == nil {
		t.Error("negative noise accepted")
	}
}

func TestFinancial(t *testing.T) {
	p, profiles, err := Financial(FinancialConfig{Seed: 5, N: 30})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRows() != 30 || len(profiles) != 30 {
		t.Fatalf("rows = %d, profiles = %d", p.NumRows(), len(profiles))
	}
	inc := p.Schema().MustLookup("Income")
	for i := 0; i < p.NumRows(); i++ {
		v := p.Cell(i, inc).MustFloat()
		if v < 40000 || v > 100000 {
			t.Errorf("income %g out of default range", v)
		}
	}
	if _, _, err := Financial(FinancialConfig{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, _, err := Financial(FinancialConfig{N: 5, IncomeLo: 2, IncomeHi: 1}); err == nil {
		t.Error("inverted income range accepted")
	}
}

func TestTableIVerbatim(t *testing.T) {
	tb := TableI()
	if tb.NumRows() != 4 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if got, _ := tb.Cell(2, 0).Text(); got != "Christine" {
		t.Errorf("row 2 = %q", got)
	}
	if got, _ := tb.Cell(0, 5).Text(); got != "AIDS" {
		t.Errorf("Alice condition = %q", got)
	}
	if tb.Schema().Column(5).Class != dataset.Sensitive {
		t.Error("Condition should be sensitive")
	}
}

func TestTableIIVerbatim(t *testing.T) {
	tb := TableII()
	if tb.NumRows() != 4 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if got := tb.Cell(3, 4).MustFloat(); got != 98230 {
		t.Errorf("Robert income = %g", got)
	}
	profs := TableIIProfiles()
	if len(profs) != 4 || profs[3].Property != 5430 {
		t.Errorf("profiles = %+v", profs)
	}
	// Roster names line up between table and profiles.
	for i, pr := range profs {
		if got, _ := tb.Cell(i, 0).Text(); got != pr.Name {
			t.Errorf("row %d: table %q vs profile %q", i, got, pr.Name)
		}
	}
}
