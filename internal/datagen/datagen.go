// Package datagen generates the reproduction's datasets.
//
// The paper's experiments use a private dataset — salary and performance
// review numbers of faculty at a public university — that was never
// published. University substitutes a deterministic synthetic cohort whose
// two essential correlations are explicit parameters (DESIGN.md §4):
//
//  1. performance reviews correlate with salary through a latent
//     seniority/merit variable (so the release leaks), and
//  2. web-visible attributes (job title, property holdings) correlate with
//     salary through the same latent variable (so fusion gains).
//
// Tables I and II reproduce the paper's worked examples verbatim.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/web"
)

// UniversityConfig parameterizes the synthetic faculty cohort.
type UniversityConfig struct {
	// Seed drives all randomness; same seed, same cohort.
	Seed int64
	// N is the number of faculty. The paper's cohort size is unstated; 40
	// reproduces its utility magnitudes (DESIGN.md §4). Defaults to 40.
	N int
	// SalaryLo and SalaryHi bound the salary range; the paper's Figure 2
	// uses [$40000, $160000]. Defaults apply when both are zero.
	SalaryLo, SalaryHi float64
	// ReviewNoise is the standard deviation of the noise added to each
	// review score (1–10 scale). Defaults to 0.8.
	ReviewNoise float64
	// SalaryNoise is the relative noise on salary around its latent value.
	// Defaults to 0.05.
	SalaryNoise float64
	// MeritWeight is the share of salary driven by internal merit — the
	// latent component visible in performance reviews but NOT on the web.
	// This is what makes the release quasi-identifiers worth protecting:
	// coarsening them destroys salary information the adversary cannot
	// recover from auxiliary data, which is why (P ∘ P̂) rises with k in
	// the paper's Figure 5. Defaults to 0.4; the remaining 0.6 is the
	// web-visible seniority component.
	MeritWeight float64
}

func (c *UniversityConfig) fill() {
	if c.N == 0 {
		c.N = 40
	}
	if c.SalaryLo == 0 && c.SalaryHi == 0 {
		c.SalaryLo, c.SalaryHi = 40000, 160000
	}
	if c.ReviewNoise == 0 {
		c.ReviewNoise = 0.5
	}
	if c.SalaryNoise == 0 {
		c.SalaryNoise = 0.05
	}
	if c.MeritWeight == 0 {
		c.MeritWeight = 0.4
	}
}

// UniversitySchema returns the faculty table schema: Name identifier, three
// 1–10 performance review indices as quasi-identifiers, Salary sensitive.
func UniversitySchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Column{Name: "Name", Class: dataset.Identifier, Kind: dataset.Text},
		dataset.Column{Name: "Teaching", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "Research", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "Service", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "Salary", Class: dataset.Sensitive, Kind: dataset.Number},
	)
}

// University generates the private table P and the matching ground-truth
// web profiles (to feed web.BuildCorpus). Profiles use the academic ladder.
func University(cfg UniversityConfig) (*dataset.Table, []web.Profile, error) {
	cfg.fill()
	if cfg.N < 2 {
		return nil, nil, fmt.Errorf("datagen: university cohort needs N ≥ 2, got %d", cfg.N)
	}
	if cfg.SalaryHi <= cfg.SalaryLo {
		return nil, nil, fmt.Errorf("datagen: empty salary range [%g, %g]", cfg.SalaryLo, cfg.SalaryHi)
	}
	if cfg.ReviewNoise < 0 || cfg.SalaryNoise < 0 {
		return nil, nil, fmt.Errorf("datagen: negative noise")
	}
	if cfg.MeritWeight < 0 || cfg.MeritWeight > 1 {
		return nil, nil, fmt.Errorf("datagen: merit weight %g outside [0, 1]", cfg.MeritWeight)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Rows stream through the chunked builder: a million-row cohort
	// materializes into exact-size column buffers instead of growing them
	// geometrically.
	b := dataset.NewBuilder(UniversitySchema())
	profiles := make([]web.Profile, 0, cfg.N)
	names := personNames(rng, cfg.N)
	row := make([]dataset.Value, 5)
	w := cfg.MeritWeight
	for i := 0; i < cfg.N; i++ {
		// Two latent components: u is web-visible seniority (rank, property
		// holdings follow it); v is internal merit, visible only through the
		// released performance reviews. Salary mixes both, so the release's
		// quasi-identifiers carry information the web cannot replace.
		u := (float64(i) + 0.5) / float64(cfg.N)
		u = stats.Clamp(u+rng.NormFloat64()*0.06, 0.01, 0.99)
		v := stats.Clamp(rng.Float64(), 0.01, 0.99)
		latent := stats.Clamp((1-w)*u+w*v, 0.01, 0.99)

		review := func() float64 {
			// Reviews read the merit component (with a touch of seniority
			// halo) plus evaluation noise.
			r := 1 + 9*stats.Clamp(0.25*u+0.75*v, 0, 1) + rng.NormFloat64()*cfg.ReviewNoise
			return float64(int(stats.Clamp(r, 1, 10)*10+0.5)) / 10 // one decimal
		}
		salary := cfg.SalaryLo + latent*(cfg.SalaryHi-cfg.SalaryLo)
		salary *= 1 + rng.NormFloat64()*cfg.SalaryNoise
		salary = stats.Clamp(salary, cfg.SalaryLo, cfg.SalaryHi)
		salary = float64(int(salary)) // whole dollars

		row[0] = dataset.Str(names[i])
		row[1], row[2], row[3] = dataset.Num(review()), dataset.Num(review()), dataset.Num(review())
		row[4] = dataset.Num(salary)
		if err := b.AppendRow(row); err != nil {
			return nil, nil, err
		}
		// Web-visible ground truth shares the latent u: title rank and
		// property holdings both rise with merit/seniority.
		seniority := stats.Clamp(1+9*u+rng.NormFloat64()*0.7, 1, 10)
		property := stats.Clamp(500+u*5500*(1+rng.NormFloat64()*0.15), 200, 8000)
		profiles = append(profiles, web.Profile{
			Name:      names[i],
			Seniority: seniority,
			Property:  float64(int(property)),
			Ladder:    web.AcademicLadder,
			Employer:  "Penn State University",
		})
	}
	return b.Table(), profiles, nil
}

// FinancialConfig parameterizes a synthetic enterprise-customer table shaped
// like the paper's Table II, for scaling experiments beyond four rows.
type FinancialConfig struct {
	Seed               int64
	N                  int
	IncomeLo, IncomeHi float64
}

// Financial generates an N-customer enterprise table (Invst Vol/Amt,
// Valuation on a 1–10 scale; Income sensitive) plus corporate web profiles.
func Financial(cfg FinancialConfig) (*dataset.Table, []web.Profile, error) {
	if cfg.N < 2 {
		return nil, nil, fmt.Errorf("datagen: financial roster needs N ≥ 2, got %d", cfg.N)
	}
	if cfg.IncomeLo == 0 && cfg.IncomeHi == 0 {
		cfg.IncomeLo, cfg.IncomeHi = 40000, 100000
	}
	if cfg.IncomeHi <= cfg.IncomeLo {
		return nil, nil, fmt.Errorf("datagen: empty income range [%g, %g]", cfg.IncomeLo, cfg.IncomeHi)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := dataset.NewBuilder(TableIISchema())
	profiles := make([]web.Profile, 0, cfg.N)
	names := personNames(rng, cfg.N)
	row := make([]dataset.Value, 5)
	for i := 0; i < cfg.N; i++ {
		u := stats.Clamp((float64(i)+0.5)/float64(cfg.N)+rng.NormFloat64()*0.1, 0.01, 0.99)
		idx := func() float64 {
			return float64(int(stats.Clamp(1+9*u+rng.NormFloat64(), 1, 10) + 0.5))
		}
		income := cfg.IncomeLo + u*(cfg.IncomeHi-cfg.IncomeLo)*(1+rng.NormFloat64()*0.04)
		income = stats.Clamp(income, cfg.IncomeLo, cfg.IncomeHi)
		row[0] = dataset.Str(names[i])
		row[1], row[2], row[3] = dataset.Num(idx()), dataset.Num(idx()), dataset.Num(idx())
		row[4] = dataset.Num(float64(int(income)))
		if err := b.AppendRow(row); err != nil {
			return nil, nil, err
		}
		profiles = append(profiles, web.Profile{
			Name:      names[i],
			Seniority: stats.Clamp(1+9*u+rng.NormFloat64()*0.8, 1, 10),
			Property:  float64(int(stats.Clamp(500+u*5500*(1+rng.NormFloat64()*0.2), 200, 8000))),
			Ladder:    web.CorporateLadder,
		})
	}
	return b.Table(), profiles, nil
}

// TableISchema returns the schema of the paper's Table I.
func TableISchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Column{Name: "Name", Class: dataset.Identifier, Kind: dataset.Text},
		dataset.Column{Name: "SSN", Class: dataset.Identifier, Kind: dataset.Text},
		dataset.Column{Name: "Zipcode", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "Age", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "Nationality", Class: dataset.QuasiIdentifier, Kind: dataset.Text},
		dataset.Column{Name: "Condition", Class: dataset.Sensitive, Kind: dataset.Text},
	)
}

// TableI returns the paper's Table I verbatim.
func TableI() *dataset.Table {
	t := dataset.New(TableISchema())
	t.MustAppendRow(dataset.Str("Alice"), dataset.Str("111-111-1111"), dataset.Num(13053), dataset.Num(28), dataset.Str("Russian"), dataset.Str("AIDS"))
	t.MustAppendRow(dataset.Str("Bob"), dataset.Str("222-222-2222"), dataset.Num(13068), dataset.Num(29), dataset.Str("American"), dataset.Str("Flu"))
	t.MustAppendRow(dataset.Str("Christine"), dataset.Str("333-333-3333"), dataset.Num(13068), dataset.Num(21), dataset.Str("Japanese"), dataset.Str("Cancer"))
	t.MustAppendRow(dataset.Str("Robert"), dataset.Str("444-444-4444"), dataset.Num(13053), dataset.Num(23), dataset.Str("American"), dataset.Str("Meningitis"))
	return t
}

// TableIISchema returns the schema of the paper's Table II.
func TableIISchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Column{Name: "Name", Class: dataset.Identifier, Kind: dataset.Text},
		dataset.Column{Name: "InvstVol", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "InvstAmt", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "Valuation", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "Income", Class: dataset.Sensitive, Kind: dataset.Number},
	)
}

// TableII returns the paper's Table II verbatim.
func TableII() *dataset.Table {
	t := dataset.New(TableIISchema())
	t.MustAppendRow(dataset.Str("Alice"), dataset.Num(8), dataset.Num(7), dataset.Num(4), dataset.Num(91250))
	t.MustAppendRow(dataset.Str("Bob"), dataset.Num(5), dataset.Num(4), dataset.Num(4), dataset.Num(74340))
	t.MustAppendRow(dataset.Str("Christine"), dataset.Num(4), dataset.Num(5), dataset.Num(5), dataset.Num(75123))
	t.MustAppendRow(dataset.Str("Robert"), dataset.Num(9), dataset.Num(8), dataset.Num(9), dataset.Num(98230))
	return t
}

// TableIIProfiles returns the web ground truth of the paper's Table IV:
// Alice (CEO, Deutsche Bank, 3560), Bob (Manager, Verizon, 1200), Christine
// (Assistant, NYU, 720), Robert (CEO, Microsoft, 5430).
func TableIIProfiles() []web.Profile {
	return []web.Profile{
		{Name: "Alice", Seniority: 10, Property: 3560, Employer: "Deutsche Bank", Ladder: web.CorporateLadder},
		{Name: "Bob", Seniority: 4, Property: 1200, Employer: "Verizon", Ladder: web.CorporateLadder},
		{Name: "Christine", Seniority: 1, Property: 720, Employer: "NYU", Ladder: web.CorporateLadder},
		{Name: "Robert", Seniority: 10, Property: 5430, Employer: "Microsoft", Ladder: web.CorporateLadder},
	}
}

var firstNames = []string{
	"Alice", "Bob", "Christine", "Robert", "David", "Emily", "Frank", "Grace",
	"Henry", "Irene", "James", "Karen", "Liam", "Maria", "Nathan", "Olivia",
	"Peter", "Quinn", "Rachel", "Samuel", "Teresa", "Ulysses", "Victoria",
	"Walter", "Xenia", "Yusuf", "Zoe", "Andrew", "Beatrice", "Carl",
}

var lastNames = []string{
	"Johnson", "Smith", "Lee", "Brown", "Garcia", "Miller", "Davis", "Wilson",
	"Anderson", "Taylor", "Thomas", "Moore", "Martin", "Jackson", "Thompson",
	"White", "Harris", "Clark", "Lewis", "Walker", "Hall", "Young", "King",
	"Wright", "Scott", "Green", "Baker", "Adams", "Nelson", "Carter",
}

// personNames returns n distinct full names, deterministic given the rng
// state. Uniqueness matters: identifiers key the whole attack.
func personNames(rng *rand.Rand, n int) []string {
	// The rejection loop below goes quadratic once n approaches the
	// first×last pool (900 combinations): every draw collides and the
	// counter suffixes creep up one map probe at a time. Large cohorts —
	// where every name would carry a suffix anyway — append a monotone
	// serial instead: unique by construction, O(n), still one rng draw per
	// name so cohorts stay deterministic given the seed. Small cohorts keep
	// the legacy path bit for bit (golden series and fixtures pin it).
	if n > 600 {
		out := make([]string, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, fmt.Sprintf("%s %s %d",
				firstNames[rng.Intn(len(firstNames))], lastNames[rng.Intn(len(lastNames))], i+2))
		}
		return out
	}
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for len(out) < n {
		name := firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
		for i := 2; seen[name]; i++ {
			name = fmt.Sprintf("%s %s %d", firstNames[rng.Intn(len(firstNames))], lastNames[rng.Intn(len(lastNames))], i)
		}
		seen[name] = true
		out = append(out, name)
	}
	return out
}
