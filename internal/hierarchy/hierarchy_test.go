package hierarchy

import (
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

// nationalityDGH builds the classic three-level nationality hierarchy of the
// k-anonymity literature: ground values → continent → "*".
func nationalityDGH(t *testing.T) *DGH {
	t.Helper()
	d, err := NewDGH("*", map[string]string{
		"Russian":  "European",
		"Japanese": "Asian",
		"American": "N-American",
		"Canadian": "N-American",
		"European": "*", "Asian": "*", "N-American": "*",
	})
	if err != nil {
		t.Fatalf("NewDGH: %v", err)
	}
	return d
}

func TestDGHBasics(t *testing.T) {
	d := nationalityDGH(t)
	if d.Height() != 3 || d.MaxLevel() != 2 {
		t.Errorf("Height = %d, MaxLevel = %d", d.Height(), d.MaxLevel())
	}
	if d.Root() != "*" {
		t.Errorf("Root = %q", d.Root())
	}
	if !d.IsLeaf("Russian") || d.IsLeaf("European") || d.IsLeaf("*") || d.IsLeaf("Martian") {
		t.Error("IsLeaf wrong")
	}
	if d.Leaves() != 4 {
		t.Errorf("Leaves = %d", d.Leaves())
	}
}

func TestDGHAncestor(t *testing.T) {
	d := nationalityDGH(t)
	for _, tc := range []struct {
		leaf  string
		steps int
		want  string
	}{
		{"Russian", 0, "Russian"},
		{"Russian", 1, "European"},
		{"Russian", 2, "*"},
		{"American", 1, "N-American"},
	} {
		got, err := d.Ancestor(tc.leaf, tc.steps)
		if err != nil || got != tc.want {
			t.Errorf("Ancestor(%q, %d) = %q, %v; want %q", tc.leaf, tc.steps, got, err, tc.want)
		}
	}
	if _, err := d.Ancestor("Russian", 3); err == nil {
		t.Error("over-deep ancestor accepted")
	}
	if _, err := d.Ancestor("Martian", 1); err == nil {
		t.Error("unknown leaf accepted")
	}
}

func TestDGHGeneralizeValue(t *testing.T) {
	d := nationalityDGH(t)
	v, err := d.GeneralizeValue(dataset.Str("Japanese"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := v.Text(); s != "Asian" {
		t.Errorf("level 1 = %v", v)
	}
	// Root "*" renders as suppression.
	v, err = d.GeneralizeValue(dataset.Str("Japanese"), 2)
	if err != nil || !v.IsNull() {
		t.Errorf("level 2 = %v, %v; want null", v, err)
	}
	// Level 0 identity.
	v, err = d.GeneralizeValue(dataset.Str("Japanese"), 0)
	if err != nil || !v.Equal(dataset.Str("Japanese")) {
		t.Errorf("level 0 = %v, %v", v, err)
	}
	// Null propagates.
	v, err = d.GeneralizeValue(dataset.NullValue(), 1)
	if err != nil || !v.IsNull() {
		t.Errorf("null = %v, %v", v, err)
	}
	// Errors.
	if _, err := d.GeneralizeValue(dataset.Str("Japanese"), 3); err == nil {
		t.Error("over-level accepted")
	}
	if _, err := d.GeneralizeValue(dataset.Str("Japanese"), -1); err == nil {
		t.Error("negative level accepted")
	}
	if _, err := d.GeneralizeValue(dataset.Num(3), 1); err == nil {
		t.Error("numeric cell accepted by DGH")
	}
	if _, err := d.GeneralizeValue(dataset.Str("Martian"), 1); err == nil {
		t.Error("unknown value accepted")
	}
	if _, err := d.GeneralizeValue(dataset.Str("European"), 1); err == nil {
		t.Error("internal node accepted as input")
	}
}

func TestNewDGHValidation(t *testing.T) {
	if _, err := NewDGH("", nil); err == nil {
		t.Error("empty root accepted")
	}
	if _, err := NewDGH("*", map[string]string{"*": "x"}); err == nil {
		t.Error("root with parent accepted")
	}
	if _, err := NewDGH("*", map[string]string{"": "x"}); err == nil {
		t.Error("empty label accepted")
	}
	if _, err := NewDGH("*", map[string]string{"a": "b", "b": "a"}); err == nil {
		t.Error("cycle accepted")
	}
	if _, err := NewDGH("*", map[string]string{"a": "orphanparent"}); err == nil {
		t.Error("orphan chain accepted")
	}
	if _, err := NewDGH("*", nil); err == nil {
		t.Error("leafless hierarchy accepted")
	}
	// Mixed leaf depth: a at depth 1, b at depth 2.
	if _, err := NewDGH("*", map[string]string{"a": "*", "b": "mid", "mid": "*"}); err == nil {
		t.Error("mixed leaf depths accepted")
	}
}

func TestParseDGH(t *testing.T) {
	d, err := ParseDGH(`
# nationality hierarchy
*
Russian -> European
Japanese -> Asian
American -> N-American
European -> *
Asian -> *
N-American -> *
`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Height() != 3 || !d.IsLeaf("Japanese") {
		t.Errorf("height = %d", d.Height())
	}
	got, err := d.Ancestor("Russian", 1)
	if err != nil || got != "European" {
		t.Errorf("ancestor = %q, %v", got, err)
	}
}

func TestParseDGHErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"empty", ""},
		{"comments only", "# nothing\n"},
		{"link before root", "a -> b\n"},
		{"malformed link", "*\njust-a-label\n"},
		{"empty child", "*\n -> x\n"},
		{"empty parent", "*\nx -> \n"},
		{"conflicting parents", "*\na -> b\na -> c\nb -> *\nc -> *\n"},
		{"orphan", "*\na -> missing\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseDGH(tc.src); err == nil {
				t.Errorf("accepted:\n%s", tc.src)
			}
		})
	}
	// Duplicate identical links are fine.
	if _, err := ParseDGH("*\na -> *\na -> *\n"); err != nil {
		t.Errorf("idempotent duplicate rejected: %v", err)
	}
}

func TestLadderBasics(t *testing.T) {
	l, err := NewLadder(0, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	// widths: 5, 10, 20, 40, 80, 160 ≥ 100 → levels 1..6, so MaxLevel 6.
	if l.MaxLevel() != 6 {
		t.Errorf("MaxLevel = %d, want 6", l.MaxLevel())
	}
	if l.Width(1) != 5 || l.Width(3) != 20 {
		t.Errorf("widths = %g, %g", l.Width(1), l.Width(3))
	}
}

func TestLadderGeneralize(t *testing.T) {
	l, err := NewLadder(0, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		in    dataset.Value
		level int
		want  dataset.Value
	}{
		{dataset.Num(28), 0, dataset.Num(28)},
		{dataset.Num(28), 1, dataset.Span(25, 30)},
		{dataset.Num(28), 2, dataset.Span(20, 30)},
		{dataset.Num(28), 3, dataset.Span(20, 40)},
		{dataset.Num(0), 1, dataset.Span(0, 5)},
		{dataset.Num(100), 1, dataset.Span(95, 100)}, // top edge clamps
		{dataset.Num(28), 6, dataset.Span(0, 100)},   // max level = domain
		{dataset.Span(24, 31), 1, dataset.Span(20, 35)},
		{dataset.NullValue(), 2, dataset.NullValue()},
	}
	for _, tc := range tests {
		got, err := l.GeneralizeValue(tc.in, tc.level)
		if err != nil {
			t.Errorf("GeneralizeValue(%v, %d): %v", tc.in, tc.level, err)
			continue
		}
		if !got.Equal(tc.want) {
			t.Errorf("GeneralizeValue(%v, %d) = %v, want %v", tc.in, tc.level, got, tc.want)
		}
	}
}

func TestLadderValidation(t *testing.T) {
	if _, err := NewLadder(5, 5, 1); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := NewLadder(0, 10, 0); err == nil {
		t.Error("zero base accepted")
	}
	l, _ := NewLadder(0, 10, 1)
	if _, err := l.GeneralizeValue(dataset.Num(3), -1); err == nil {
		t.Error("negative level accepted")
	}
	if _, err := l.GeneralizeValue(dataset.Num(3), l.MaxLevel()+1); err == nil {
		t.Error("over-level accepted")
	}
	if _, err := l.GeneralizeValue(dataset.Str("x"), 1); err == nil {
		t.Error("text accepted by ladder")
	}
}

// Property: for in-domain values, the generalized interval always contains
// the input and its width grows monotonically with level.
func TestLadderContainmentProperty(t *testing.T) {
	l, err := NewLadder(0, 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint16) bool {
		x := float64(raw) / 65535 * 1000
		prevW := -1.0
		for level := 0; level <= l.MaxLevel(); level++ {
			g, err := l.GeneralizeValue(dataset.Num(x), level)
			if err != nil {
				return false
			}
			if !g.Contains(x) {
				return false
			}
			if g.Width() < prevW {
				return false
			}
			prevW = g.Width()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DGH generalization is idempotent in the sense that two values
// sharing a level-l ancestor share all coarser ancestors too.
func TestDGHMonotoneMergingProperty(t *testing.T) {
	d := nationalityDGH(t)
	leaves := []string{"Russian", "Japanese", "American", "Canadian"}
	f := func(i, j, lvl uint8) bool {
		a := leaves[int(i)%len(leaves)]
		b := leaves[int(j)%len(leaves)]
		l := int(lvl) % (d.MaxLevel() + 1)
		ga, err1 := d.GeneralizeValue(dataset.Str(a), l)
		gb, err2 := d.GeneralizeValue(dataset.Str(b), l)
		if err1 != nil || err2 != nil {
			return false
		}
		if !ga.Equal(gb) {
			return true // nothing to check
		}
		for m := l; m <= d.MaxLevel(); m++ {
			ga, _ = d.GeneralizeValue(dataset.Str(a), m)
			gb, _ = d.GeneralizeValue(dataset.Str(b), m)
			if !ga.Equal(gb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
