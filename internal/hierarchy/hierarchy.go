// Package hierarchy implements generalization hierarchies — the substrate
// k-anonymity by generalization [2] rewrites quasi-identifier values with.
//
// Two kinds are provided:
//
//   - DGH: a domain generalization hierarchy for categorical values (a tree
//     whose leaves are ground values and whose internal nodes are coarser
//     labels, e.g. Russian → European → Person).
//   - Ladder: a numeric generalization ladder that snaps numbers into
//     intervals whose width doubles at each level (Age 28 → [25-30) →
//     [20-40) → …), the interval scheme of the paper's Table III.
//
// Both satisfy Generalizer, keyed by a non-negative level where level 0 is
// the ground (unmodified) value and MaxLevel() is full suppression.
package hierarchy

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/dataset"
)

// Generalizer rewrites a cell to a coarser representation at a level in
// [0, MaxLevel()]. Level 0 returns the value unchanged; MaxLevel() returns
// the fully suppressed (or root) value.
type Generalizer interface {
	// GeneralizeValue returns the generalization of v at the given level.
	GeneralizeValue(v dataset.Value, level int) (dataset.Value, error)
	// MaxLevel returns the coarsest level.
	MaxLevel() int
}

// ErrLevel is returned for levels outside [0, MaxLevel()].
var ErrLevel = errors.New("hierarchy: level out of range")

// ErrUnknownValue is returned when a categorical value is not a leaf of the
// DGH.
var ErrUnknownValue = errors.New("hierarchy: value not in hierarchy")

// ---------------------------------------------------------------------------
// Categorical DGH

// DGH is a domain generalization hierarchy over categorical values. All
// leaves sit at depth Height-1; generalizing a leaf by l levels walks l
// parent links. The root generalization is rendered as a Null (suppressed)
// cell when the root label is "*", and as a Text cell otherwise.
type DGH struct {
	height int
	parent map[string]string // child label → parent label
	depth  map[string]int    // label → depth from root (root = 0)
	leaf   map[string]bool
	root   string
}

// NewDGH builds a hierarchy from parent links (child → parent) and a root
// label. Every chain from a leaf must reach the root, and all leaves must be
// at uniform depth so that full-domain generalization is well defined.
func NewDGH(root string, parents map[string]string) (*DGH, error) {
	if root == "" {
		return nil, errors.New("hierarchy: empty root label")
	}
	d := &DGH{parent: make(map[string]string, len(parents)), depth: map[string]int{root: 0}, root: root}
	for c, p := range parents {
		if c == root {
			return nil, fmt.Errorf("hierarchy: root %q cannot have a parent", root)
		}
		if c == "" || p == "" {
			return nil, errors.New("hierarchy: empty label in parent map")
		}
		d.parent[c] = p
	}
	// Compute depths, detecting cycles and orphans.
	hasChild := make(map[string]bool)
	for _, p := range d.parent {
		hasChild[p] = true
	}
	for c := range d.parent {
		depth, err := d.resolveDepth(c, make(map[string]bool))
		if err != nil {
			return nil, err
		}
		d.depth[c] = depth
	}
	// Leaves are labels that never appear as a parent. Check uniform depth.
	d.leaf = make(map[string]bool)
	leafDepth := -1
	for c := range d.parent {
		if hasChild[c] {
			continue
		}
		d.leaf[c] = true
		if leafDepth == -1 {
			leafDepth = d.depth[c]
		} else if d.depth[c] != leafDepth {
			return nil, fmt.Errorf("hierarchy: leaves at mixed depths (%d and %d); pad the shallow branches", leafDepth, d.depth[c])
		}
	}
	if leafDepth == -1 {
		return nil, errors.New("hierarchy: DGH has no leaves")
	}
	d.height = leafDepth + 1
	return d, nil
}

func (d *DGH) resolveDepth(label string, seen map[string]bool) (int, error) {
	if label == d.root {
		return 0, nil
	}
	if seen[label] {
		return 0, fmt.Errorf("hierarchy: cycle through %q", label)
	}
	seen[label] = true
	p, ok := d.parent[label]
	if !ok {
		return 0, fmt.Errorf("hierarchy: %q does not reach root %q", label, d.root)
	}
	pd, err := d.resolveDepth(p, seen)
	if err != nil {
		return 0, err
	}
	return pd + 1, nil
}

// Height returns the number of levels including the ground level.
func (d *DGH) Height() int { return d.height }

// MaxLevel returns Height()-1: generalizing a leaf all the way to the root.
func (d *DGH) MaxLevel() int { return d.height - 1 }

// Root returns the root label.
func (d *DGH) Root() string { return d.root }

// IsLeaf reports whether label is a ground value of the hierarchy.
func (d *DGH) IsLeaf(label string) bool { return d.leaf[label] }

// Leaves returns the number of ground values.
func (d *DGH) Leaves() int { return len(d.leaf) }

// Ancestor returns the label l parent-steps above the given leaf.
func (d *DGH) Ancestor(leaf string, steps int) (string, error) {
	if _, ok := d.depth[leaf]; !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownValue, leaf)
	}
	cur := leaf
	for i := 0; i < steps; i++ {
		p, ok := d.parent[cur]
		if !ok {
			return "", fmt.Errorf("%w: %d above %q", ErrLevel, steps, leaf)
		}
		cur = p
	}
	return cur, nil
}

// GeneralizeValue implements Generalizer for text cells. Null cells stay
// Null at any level. A root label of "*" renders as a suppressed cell.
func (d *DGH) GeneralizeValue(v dataset.Value, level int) (dataset.Value, error) {
	if level < 0 || level > d.MaxLevel() {
		return dataset.Value{}, fmt.Errorf("%w: %d not in [0, %d]", ErrLevel, level, d.MaxLevel())
	}
	if v.IsNull() {
		return v, nil
	}
	s, ok := v.Text()
	if !ok {
		return dataset.Value{}, fmt.Errorf("hierarchy: DGH generalizes text cells, got %s", v.Kind())
	}
	if !d.IsLeaf(s) {
		return dataset.Value{}, fmt.Errorf("%w: %q", ErrUnknownValue, s)
	}
	label, err := d.Ancestor(s, level)
	if err != nil {
		return dataset.Value{}, err
	}
	if label == "*" {
		return dataset.NullValue(), nil
	}
	return dataset.Str(label), nil
}

// ParseDGH reads a hierarchy from text: the first non-comment line is the
// root label, every further line is "child -> parent". Blank lines and '#'
// comments are ignored. This is the CLI-friendly way to supply categorical
// hierarchies to the kanon scheme.
func ParseDGH(text string) (*DGH, error) {
	var root string
	parents := make(map[string]string)
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if root == "" {
			if strings.Contains(line, "->") {
				return nil, fmt.Errorf("hierarchy: line %d: expected a root label before parent links", lineNo+1)
			}
			root = line
			continue
		}
		parts := strings.SplitN(line, "->", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("hierarchy: line %d: expected \"child -> parent\", got %q", lineNo+1, line)
		}
		child := strings.TrimSpace(parts[0])
		parent := strings.TrimSpace(parts[1])
		if child == "" || parent == "" {
			return nil, fmt.Errorf("hierarchy: line %d: empty label", lineNo+1)
		}
		if prev, dup := parents[child]; dup && prev != parent {
			return nil, fmt.Errorf("hierarchy: line %d: %q already has parent %q", lineNo+1, child, prev)
		}
		parents[child] = parent
	}
	if root == "" {
		return nil, errors.New("hierarchy: empty hierarchy text")
	}
	return NewDGH(root, parents)
}

// ---------------------------------------------------------------------------
// Numeric ladder

// Ladder generalizes numbers into grid-aligned intervals whose width doubles
// per level: level 1 intervals have width Base, level 2 width 2·Base, level
// l width Base·2^(l−1). Level 0 is the exact value; MaxLevel generalizes to
// the full domain; MaxLevel+… is clamped out by validation.
type Ladder struct {
	Lo, Hi float64 // domain
	Base   float64 // width of level-1 intervals
	levels int
}

// NewLadder builds a ladder over [lo, hi] with level-1 width base. The
// number of levels is the smallest L with base·2^(L−1) ≥ hi−lo, plus the
// ground level.
func NewLadder(lo, hi, base float64) (*Ladder, error) {
	if hi <= lo {
		return nil, fmt.Errorf("hierarchy: ladder domain [%g, %g] is empty", lo, hi)
	}
	if base <= 0 {
		return nil, fmt.Errorf("hierarchy: ladder base width %g must be positive", base)
	}
	levels := 1
	for w := base; w < hi-lo; w *= 2 {
		levels++
	}
	return &Ladder{Lo: lo, Hi: hi, Base: base, levels: levels}, nil
}

// MaxLevel returns the coarsest level (the whole domain).
func (l *Ladder) MaxLevel() int { return l.levels }

// Width returns the interval width at a level ≥ 1.
func (l *Ladder) Width(level int) float64 {
	w := l.Base
	for i := 1; i < level; i++ {
		w *= 2
	}
	return w
}

// GeneralizeValue implements Generalizer for numeric cells. Interval inputs
// generalize by their midpoint's bucket widened to cover the input. Null
// stays Null.
func (l *Ladder) GeneralizeValue(v dataset.Value, level int) (dataset.Value, error) {
	if level < 0 || level > l.MaxLevel() {
		return dataset.Value{}, fmt.Errorf("%w: %d not in [0, %d]", ErrLevel, level, l.MaxLevel())
	}
	if v.IsNull() || level == 0 {
		return v, nil
	}
	lo, hi, ok := v.Bounds()
	if !ok {
		return dataset.Value{}, fmt.Errorf("hierarchy: ladder generalizes numeric cells, got %s", v.Kind())
	}
	if level == l.MaxLevel() {
		return dataset.Span(l.Lo, l.Hi), nil
	}
	w := l.Width(level)
	bucket := func(x float64) (float64, float64) {
		i := int((x - l.Lo) / w)
		if x < l.Lo {
			i = 0
		}
		blo := l.Lo + float64(i)*w
		bhi := blo + w
		if bhi > l.Hi {
			bhi = l.Hi
			if blo > l.Hi-w {
				blo = l.Hi - w
			}
			if blo < l.Lo {
				blo = l.Lo
			}
		}
		return blo, bhi
	}
	blo, _ := bucket(lo)
	_, bhi := bucket(hi)
	return dataset.Span(blo, bhi), nil
}
