package linkage

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNormalizeName(t *testing.T) {
	tests := []struct{ in, want string }{
		{"John Doe", "doe john"},
		{"Doe, John", "doe john"},
		{"  DOE   john ", "doe john"},
		{"O'Brien, Mary-Jane", "brien jane mary o"},
		{"", ""},
		{"J.R. Smith", "j r smith"},
	}
	for _, tc := range tests {
		if got := NormalizeName(tc.in); got != tc.want {
			t.Errorf("NormalizeName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestLevenshtein(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"gumbo", "gambol", 2},
		{"same", "same", 0},
	}
	for _, tc := range tests {
		if got := Levenshtein(tc.a, tc.b); got != tc.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLevenshteinSimilarity(t *testing.T) {
	if got := LevenshteinSimilarity("", ""); got != 1 {
		t.Errorf("empty = %g", got)
	}
	if got := LevenshteinSimilarity("abcd", "abcd"); got != 1 {
		t.Errorf("same = %g", got)
	}
	if got := LevenshteinSimilarity("abcd", "wxyz"); got != 0 {
		t.Errorf("disjoint = %g", got)
	}
	if got := LevenshteinSimilarity("abcd", "abce"); !almost(got, 0.75, 1e-12) {
		t.Errorf("one edit = %g", got)
	}
}

func TestJaro(t *testing.T) {
	// Classic reference values.
	if got := Jaro("MARTHA", "MARHTA"); !almost(got, 0.944444, 1e-5) {
		t.Errorf("MARTHA/MARHTA = %g", got)
	}
	if got := Jaro("DIXON", "DICKSONX"); !almost(got, 0.766667, 1e-5) {
		t.Errorf("DIXON/DICKSONX = %g", got)
	}
	if got := Jaro("", ""); got != 1 {
		t.Errorf("empty = %g", got)
	}
	if got := Jaro("a", ""); got != 0 {
		t.Errorf("half empty = %g", got)
	}
	if got := Jaro("ab", "cd"); got != 0 {
		t.Errorf("no match = %g", got)
	}
}

func TestJaroWinkler(t *testing.T) {
	if got := JaroWinkler("MARTHA", "MARHTA"); !almost(got, 0.961111, 1e-5) {
		t.Errorf("MARTHA/MARHTA = %g", got)
	}
	if got := JaroWinkler("DWAYNE", "DUANE"); !almost(got, 0.84, 1e-2) {
		t.Errorf("DWAYNE/DUANE = %g", got)
	}
	// Winkler boost never decreases Jaro.
	if jw, j := JaroWinkler("prefix", "prefecture"), Jaro("prefix", "prefecture"); jw < j {
		t.Errorf("JW %g < Jaro %g", jw, j)
	}
}

func TestSoundex(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Robert", "R163"},
		{"Rupert", "R163"},
		{"Ashcraft", "A261"},
		{"Ashcroft", "A261"},
		{"Tymczak", "T522"},
		{"Pfister", "P236"},
		{"Honeyman", "H555"},
		{"", "0000"},
		{"123", "0000"},
		{"Lee, Robert", "L000"}, // first token only
	}
	for _, tc := range tests {
		if got := Soundex(tc.in); got != tc.want {
			t.Errorf("Soundex(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestLinkExactRoster(t *testing.T) {
	release := []string{"Alice Johnson", "Bob Smith", "Christine Lee", "Robert Brown"}
	web := []string{"Robert Brown", "Alice Johnson", "Bob Smith"}
	links, err := DefaultMatcher().Link(web, release)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]int{0: 3, 1: 0, 2: 1}
	if len(links) != len(want) {
		t.Fatalf("links = %v", links)
	}
	for q, tgt := range want {
		if links[q] != tgt {
			t.Errorf("links[%d] = %d, want %d", q, links[q], tgt)
		}
	}
}

func TestLinkNoisyNames(t *testing.T) {
	release := []string{"Christine Anderson", "Katherine Sanders"}
	web := []string{"Cristine Andersen", "Catherine Sanders"}
	m := DefaultMatcher()
	m.Block = false // typo'd first letters break phonetic blocking; scan all
	links, err := m.Link(web, release)
	if err != nil {
		t.Fatal(err)
	}
	if links[0] != 0 || links[1] != 1 {
		t.Errorf("links = %v", links)
	}
}

func TestLinkRespectsThreshold(t *testing.T) {
	m := DefaultMatcher()
	links, err := m.Link([]string{"Zebulon Pike"}, []string{"Alice Johnson"})
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 0 {
		t.Errorf("unrelated names linked: %v", links)
	}
}

func TestLinkOneToOne(t *testing.T) {
	// Two identical queries compete for one target; only one wins.
	m := DefaultMatcher()
	links, err := m.Link([]string{"John Doe", "John Doe"}, []string{"John Doe"})
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 1 {
		t.Errorf("links = %v, want exactly one", links)
	}
}

func TestLinkConflictResolution(t *testing.T) {
	// Query 0 is a worse match for the target than query 1: the better
	// score wins regardless of order.
	m := &Matcher{Sim: func(a, b string) float64 {
		if a == b {
			return 1
		}
		return 0.9
	}, Threshold: 0.5}
	links, err := m.Link([]string{"near miss", "target"}, []string{"target"})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := links[1]; !ok || got != 0 {
		t.Errorf("links = %v, want {1:0}", links)
	}
}

func TestLinkValidation(t *testing.T) {
	m := &Matcher{Sim: nil, Threshold: 0.5}
	if _, err := m.Link([]string{"a"}, []string{"b"}); err == nil {
		t.Error("nil similarity accepted")
	}
	m = &Matcher{Sim: JaroWinkler, Threshold: 1.5}
	if _, err := m.Link([]string{"a"}, []string{"b"}); err == nil {
		t.Error("bad threshold accepted")
	}
}

func TestDiceBigram(t *testing.T) {
	if got := DiceBigram("night", "nacht"); almost(got, 0.25, 1e-12) == false {
		t.Errorf("night/nacht = %g, want 0.25", got)
	}
	if got := DiceBigram("same", "same"); got != 1 {
		t.Errorf("identical = %g", got)
	}
	if got := DiceBigram("", ""); got != 1 {
		t.Errorf("both empty = %g", got)
	}
	if got := DiceBigram("a", "b"); got != 1 { // no bigrams on either side
		t.Errorf("single runes = %g", got)
	}
	if got := DiceBigram("ab", "xy"); got != 0 {
		t.Errorf("disjoint = %g", got)
	}
	if got := DiceBigram("ab", "z"); got != 0 {
		t.Errorf("one empty bigram set = %g", got)
	}
	// Multiset semantics: repeated bigrams do not inflate similarity.
	if got := DiceBigram("aaaa", "aa"); got >= 1 {
		t.Errorf("repeat inflation: %g", got)
	}
	// Token reordering is cheap for Dice (unlike Levenshtein).
	reordered := DiceBigram("deutsche bank", "bank deutsche")
	if reordered < 0.7 {
		t.Errorf("reordered tokens = %g, want high", reordered)
	}
}

// Property: Dice stays in [0, 1] and is symmetric.
func TestDiceBigramRangeProperty(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		d1 := DiceBigram(a, b)
		d2 := DiceBigram(b, a)
		return d1 >= 0 && d1 <= 1 && math.Abs(d1-d2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Levenshtein is a metric on short random strings (symmetry,
// identity, triangle inequality).
func TestLevenshteinMetricProperty(t *testing.T) {
	clip := func(s string) string {
		if len(s) > 8 {
			return s[:8]
		}
		return s
	}
	f := func(a, b, c string) bool {
		a, b, c = clip(a), clip(b), clip(c)
		dab := Levenshtein(a, b)
		dba := Levenshtein(b, a)
		daa := Levenshtein(a, a)
		dac := Levenshtein(a, c)
		dcb := Levenshtein(c, b)
		return dab == dba && daa == 0 && dab <= dac+dcb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Jaro-Winkler stays in [0, 1] and equals 1 on identical strings.
func TestJaroWinklerRangeProperty(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 16 {
			a = a[:16]
		}
		if len(b) > 16 {
			b = b[:16]
		}
		s := JaroWinkler(a, b)
		if s < 0 || s > 1+1e-12 {
			return false
		}
		return JaroWinkler(a, a) >= 1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
