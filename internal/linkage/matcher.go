package linkage

import (
	"fmt"
	"sort"
	"strings"
)

// blockKeys returns the Soundex codes of each token of the normalized name.
func blockKeys(name string) []string {
	tokens := strings.Fields(NormalizeName(name))
	keys := make([]string, 0, len(tokens))
	seen := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		k := Soundex(t)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// Similarity is a name-similarity function in [0, 1].
type Similarity func(a, b string) float64

// Matcher links entity names extracted from the web back to the identifiers
// in the anonymized release.
type Matcher struct {
	// Sim scores candidate pairs (defaults to Jaro-Winkler over normalized
	// names via DefaultMatcher).
	Sim Similarity
	// Threshold is the minimum score for a link.
	Threshold float64
	// Block enables Soundex blocking: only candidates sharing a phonetic
	// block are compared, which keeps linkage near-linear.
	Block bool
}

// DefaultMatcher links with Jaro-Winkler ≥ 0.88 under Soundex blocking —
// tight enough to avoid false merges on small enterprise rosters, loose
// enough to absorb web typos.
func DefaultMatcher() *Matcher {
	return &Matcher{
		Sim:       func(a, b string) float64 { return JaroWinkler(NormalizeName(a), NormalizeName(b)) },
		Threshold: 0.88,
		Block:     true,
	}
}

// Link matches each query name (web entity) to at most one target name
// (release identifier). It returns a map from query index to target index.
// Each target is linked at most once; conflicts resolve by score, then by
// query order (stable, greedy on descending score).
func (m *Matcher) Link(queries, targets []string) (map[int]int, error) {
	if m.Sim == nil {
		return nil, fmt.Errorf("linkage: matcher has no similarity function")
	}
	if m.Threshold < 0 || m.Threshold > 1 {
		return nil, fmt.Errorf("linkage: threshold %g outside [0, 1]", m.Threshold)
	}
	type pair struct {
		q, t  int
		score float64
	}
	var pairs []pair
	var blocks map[string][]int
	if m.Block {
		// Block on the Soundex of every name token, so a typo in one token
		// still shares a block through the others.
		blocks = make(map[string][]int)
		for t, name := range targets {
			for _, key := range blockKeys(name) {
				blocks[key] = append(blocks[key], t)
			}
		}
	}
	for q, qn := range queries {
		var cands []int
		if m.Block {
			seen := make(map[int]bool)
			for _, key := range blockKeys(qn) {
				for _, t := range blocks[key] {
					if !seen[t] {
						seen[t] = true
						cands = append(cands, t)
					}
				}
			}
			sort.Ints(cands)
		} else {
			cands = make([]int, len(targets))
			for i := range targets {
				cands[i] = i
			}
		}
		for _, t := range cands {
			if s := m.Sim(qn, targets[t]); s >= m.Threshold {
				pairs = append(pairs, pair{q, t, s})
			}
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool {
		if pairs[i].score != pairs[j].score {
			return pairs[i].score > pairs[j].score
		}
		if pairs[i].q != pairs[j].q {
			return pairs[i].q < pairs[j].q
		}
		return pairs[i].t < pairs[j].t
	})
	links := make(map[int]int)
	usedTarget := make(map[int]bool)
	for _, p := range pairs {
		if _, done := links[p.q]; done || usedTarget[p.t] {
			continue
		}
		links[p.q] = p.t
		usedTarget[p.t] = true
	}
	return links, nil
}
