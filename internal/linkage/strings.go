// Package linkage implements record linkage between the anonymized release
// and the adversary's web-extracted entities — the "use the identifiers
// present in the release to index into the web" step of the paper's attack
// (Section 3.B).
//
// The paper assumes exact identifiers; real web extraction yields noisy
// names, so the package provides approximate string similarity (Levenshtein,
// Jaro, Jaro-Winkler), phonetic blocking (Soundex) and a best-match linker
// with a similarity threshold.
package linkage

import (
	"strings"
	"unicode"
)

// NormalizeName canonicalizes a person name for comparison: lower-case,
// punctuation stripped, whitespace collapsed, tokens sorted so "Doe, John"
// matches "john doe".
func NormalizeName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case unicode.IsSpace(r) || r == ',' || r == '.' || r == '-' || r == '\'':
			b.WriteByte(' ')
		}
	}
	tokens := strings.Fields(b.String())
	// Insertion sort; names have a handful of tokens.
	for i := 1; i < len(tokens); i++ {
		for j := i; j > 0 && tokens[j] < tokens[j-1]; j-- {
			tokens[j], tokens[j-1] = tokens[j-1], tokens[j]
		}
	}
	return strings.Join(tokens, " ")
}

// Levenshtein returns the edit distance between two strings (unit costs).
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// LevenshteinSimilarity maps edit distance into [0, 1]:
// 1 − d / max(len(a), len(b)). Two empty strings are fully similar.
func LevenshteinSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	longest := la
	if lb > longest {
		longest = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(longest)
}

// Jaro returns the Jaro similarity in [0, 1].
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	window := len(ra)
	if len(rb) > window {
		window = len(rb)
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, len(ra))
	matchB := make([]bool, len(rb))
	var matches int
	for i := range ra {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > len(rb) {
			hi = len(rb)
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i], matchB[j] = true, true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	var transpositions int
	j := 0
	for i := range ra {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-t)/m) / 3
}

// JaroWinkler boosts Jaro similarity for strings sharing a prefix (up to 4
// runes) with the standard scaling factor 0.1.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	ra, rb := []rune(a), []rune(b)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// DiceBigram returns the Sørensen–Dice coefficient over character bigrams —
// a token-order-insensitive similarity that complements Jaro-Winkler for
// long multi-word strings (e.g. employer names).
func DiceBigram(a, b string) float64 {
	ba := bigrams(a)
	bb := bigrams(b)
	if len(ba) == 0 && len(bb) == 0 {
		return 1
	}
	if len(ba) == 0 || len(bb) == 0 {
		return 0
	}
	counts := make(map[string]int, len(ba))
	for _, g := range ba {
		counts[g]++
	}
	var overlap int
	for _, g := range bb {
		if counts[g] > 0 {
			counts[g]--
			overlap++
		}
	}
	return 2 * float64(overlap) / float64(len(ba)+len(bb))
}

func bigrams(s string) []string {
	runes := []rune(s)
	if len(runes) < 2 {
		return nil
	}
	out := make([]string, 0, len(runes)-1)
	for i := 0; i+1 < len(runes); i++ {
		out = append(out, string(runes[i:i+2]))
	}
	return out
}

// Soundex returns the classic four-character American Soundex code of the
// first token of s, used for phonetic blocking. Non-alphabetic input yields
// "0000".
func Soundex(s string) string {
	s = strings.ToUpper(strings.TrimSpace(s))
	var letters []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			letters = append(letters, c)
		} else if len(letters) > 0 && (c == ' ' || c == ',') {
			break // first token only
		}
	}
	if len(letters) == 0 {
		return "0000"
	}
	code := func(c byte) byte {
		switch c {
		case 'B', 'F', 'P', 'V':
			return '1'
		case 'C', 'G', 'J', 'K', 'Q', 'S', 'X', 'Z':
			return '2'
		case 'D', 'T':
			return '3'
		case 'L':
			return '4'
		case 'M', 'N':
			return '5'
		case 'R':
			return '6'
		default: // A E I O U H W Y
			return 0
		}
	}
	out := []byte{letters[0]}
	prev := code(letters[0])
	for _, c := range letters[1:] {
		d := code(c)
		if d != 0 && d != prev {
			out = append(out, d)
			if len(out) == 4 {
				break
			}
		}
		if c == 'H' || c == 'W' {
			continue // H and W do not reset the run
		}
		prev = d
	}
	for len(out) < 4 {
		out = append(out, '0')
	}
	return string(out)
}
