// Package httpapi exposes the service subsystem over REST: CSV table upload
// and download, asynchronous job submission and polling, health. Handlers
// speak JSON (errors included) except for the CSV table payloads, which use
// the dataset two-header layout so the CLIs and the API exchange identical
// files.
//
//	POST   /v1/tables            upload a table (CSV body, ?name= label)
//	GET    /v1/tables            list tables
//	GET    /v1/tables/{id}       table metadata
//	GET    /v1/tables/{id}/csv   download a table
//	DELETE /v1/tables/{id}       drop a table
//	POST   /v1/jobs              submit a job (JSON service.Spec)
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         poll job status (includes per-level partials)
//	GET    /v1/jobs/{id}/result  download the result (CSV; JSON for assess)
//	GET    /v1/jobs/{id}/events  stream per-level results live (SSE; NDJSON
//	                             with Accept: application/x-ndjson). Resumable:
//	                             pass Last-Event-ID or ?after=<seq> to skip
//	                             already-delivered events after a reconnect
//	POST   /v1/jobs/{id}/cancel  cancel a pending or running job
//	DELETE /v1/jobs/{id}         purge a terminal job (409 while running)
//	GET    /v1/jobs/{id}/trace   per-job trace spans (job.run, sweep.level,
//	                             and for adaptive sweeps planner.plan,
//	                             planner.warmstart, planner.skip,
//	                             planner.fallback)
//
// fred-sweep specs accept the adaptive planner fields alongside min_k/max_k:
// "k_set" (explicit level set), "stride" (every Nth level), "budget_ms"
// (wall-clock budget — the job stops at the deadline with status partial and
// the best release over the levels it managed), and "adaptive": true (force
// the bisection planner on a plain range). Adaptive jobs' event streams
// deliver "level" events in evaluation order — each tagged with "source":
// "warm" when seeded from the cross-job level index — plus "skip" events
// naming the level ranges the planner proved it could skip and why
// (bisection, deadline, infeasible). The final decision is bit-identical to
// the exhaustive sweep's.
//
//	GET    /v1/healthz           liveness probe + ops snapshot (never
//	                             authenticated)
//	GET    /v1/readyz            readiness probe: 503 until the engine's
//	                             worker pool is up — i.e. for the whole WAL
//	                             replay window (never authenticated)
//	GET    /metrics              Prometheus text exposition (never
//	                             authenticated, like the probes: scrapers
//	                             hold no tenant key and the exposition is
//	                             operational, not tenant data)
//
// The API is multi-tenant: with WithAuth configured, every request (except
// healthz) must present an API key (Authorization: Bearer <key>, or
// X-API-Key) and runs inside the key's tenant namespace — tables and jobs
// of other tenants are invisible (foreign IDs are 404, never 403), and
// per-tenant quotas answer 429 when exceeded. Without auth, everything
// runs as the default tenant, preserving the single-namespace behavior.
//
// The engine also evicts the oldest finished jobs beyond its retention
// limit (service.Options.MaxFinishedJobs), so the job log stays bounded
// even without explicit DELETEs. When the service runs on the durable
// storage plane (served -data-dir), tables, finished jobs and sweep
// checkpoints additionally survive restarts, and event sequence numbers
// stay valid across them.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/service"
)

// maxUploadBytes bounds a table upload (64 MiB of CSV).
const maxUploadBytes = 64 << 20

// Server routes the v1 API onto a store and an engine.
type Server struct {
	store  *service.Store
	engine *service.Engine
	logger *slog.Logger
	// auth is swappable at runtime (SetAuth, the SIGHUP keys-file reload);
	// a nil pointer leaves the server open on the default tenant.
	auth     atomic.Pointer[Auth]
	mux      *http.ServeMux
	registry *obs.Registry
	metrics  *httpMetrics
	tracer   *obs.Tracer
	started  time.Time
}

// Option configures optional server behavior.
type Option func(*Server)

// WithAuth enables API-key authentication: every request resolves to the
// presenting key's tenant. A nil auth leaves the server open on the
// default tenant.
func WithAuth(a *Auth) Option {
	return func(s *Server) { s.auth.Store(a) }
}

// SetAuth atomically replaces the authenticator — the SIGHUP keys-file
// reload path. In-flight requests finish under whichever authenticator they
// loaded; new requests see the new key set (and fresh rate-limit buckets)
// immediately. Swapping in nil disables authentication, so reload paths
// should keep the old Auth on a parse error instead.
func (s *Server) SetAuth(a *Auth) { s.auth.Store(a) }

// WithMetrics serves r at GET /metrics and records the HTTP request metrics
// into it. Share the same registry with the engine and diskstore so one
// scrape covers the whole service. Without this option the server uses a
// private registry — /metrics always works, it just only carries the HTTP
// families.
func WithMetrics(r *obs.Registry) Option {
	return func(s *Server) { s.registry = r }
}

// WithTracer serves t's spans at GET /v1/jobs/{id}/trace. Wire the same
// tracer into the engine (service.Options.Tracer) or the endpoint will
// always answer with an empty span list.
func WithTracer(t *obs.Tracer) Option {
	return func(s *Server) { s.tracer = t }
}

// New builds the server. A nil logger discards request logging.
func New(store *service.Store, engine *service.Engine, logger *slog.Logger, opts ...Option) *Server {
	s := &Server{store: store, engine: engine, logger: logger, mux: http.NewServeMux(), started: time.Now()}
	for _, opt := range opts {
		opt(s)
	}
	if s.logger == nil {
		s.logger = obs.NopLogger()
	}
	if s.registry == nil {
		s.registry = obs.NewRegistry()
	}
	s.metrics = newHTTPMetrics(s.registry)
	s.mux.Handle("GET /metrics", s.registry.Handler())
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("POST /v1/tables", s.handleTableUpload)
	s.mux.HandleFunc("GET /v1/tables", s.handleTableList)
	s.mux.HandleFunc("GET /v1/tables/{id}", s.handleTableGet)
	s.mux.HandleFunc("GET /v1/tables/{id}/csv", s.handleTableCSV)
	s.mux.HandleFunc("DELETE /v1/tables/{id}", s.handleTableDelete)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleJobCancel)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	return s
}

// ServeHTTP implements http.Handler with the observability and
// authentication middleware applied — auth runs inside withObs, so refused
// requests are counted and logged too.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.withObs(s.withAuth(s.mux)).ServeHTTP(w, r)
}

// --- handlers ---------------------------------------------------------------

// handleHealthz is the liveness probe: always 200 while the process serves,
// with an operational snapshot in the body. Readiness (is the engine
// accepting work yet?) is readyz's question, not this one's.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	stats := s.engine.Stats()
	body := map[string]any{
		"status":         "ok",
		"uptime_seconds": int64(time.Since(s.started).Seconds()),
		"durable":        s.store.Durable(),
		"wal_seq":        stats.WALSeq,
		"jobs_finished":  stats.JobsFinished,
		"jobs_live":      stats.JobsLive,
		"jobs_pending":   stats.JobsPending,
		"jobs_shed":      stats.JobsShed,
		"tenants":        s.tenantCount(),
	}
	// Jobs that could not be resubmitted during recovery are degraded state
	// an operator must see: the process is alive (still 200) but some work
	// recorded as running before the restart is NOT running now.
	if len(stats.RecoveryErrors) > 0 {
		body["status"] = "degraded"
		body["recovery_errors"] = stats.RecoveryErrors
	}
	writeJSON(w, http.StatusOK, body)
}

// tenantCount reports how many tenants this deployment serves: the distinct
// tenants in the key file, or one (the default tenant) on an open server.
func (s *Server) tenantCount() int {
	auth := s.auth.Load()
	if auth == nil {
		return 1
	}
	seen := make(map[string]struct{})
	for _, k := range auth.keys {
		seen[k.tenant] = struct{}{}
	}
	return len(seen)
}

// handleReadyz is the readiness probe: 503 until Engine.Start has launched
// the worker pool. Recovery (the WAL replay) runs before Start, so a
// restarting durable node reports unready for the whole replay window and a
// load balancer keeps traffic away until it can actually run jobs.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.engine.Ready() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "recovering"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleJobTrace returns a job's recorded trace spans (one job.run per
// execution, one sweep.level per completed level). The job lookup runs
// first: foreign or unknown job IDs are 404 exactly like every other job
// route, so the trace endpoint leaks nothing across tenants.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.engine.Job(tenantFrom(r), id); err != nil {
		writeServiceError(w, err)
		return
	}
	spans := s.tracer.Spans(id)
	if spans == nil {
		spans = []obs.Span{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"job": id, "spans": spans})
}

func (s *Server) handleTableUpload(w http.ResponseWriter, r *http.Request) {
	t, err := dataset.ReadCSV(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("table upload exceeds the %d byte limit", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("parse csv: %v", err))
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "table"
	}
	info, err := s.store.Put(tenantFrom(r), name, t)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleTableList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tables": s.store.List(tenantFrom(r))})
}

func (s *Server) handleTableGet(w http.ResponseWriter, r *http.Request) {
	_, info, err := s.store.Get(tenantFrom(r), r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleTableCSV(w http.ResponseWriter, r *http.Request) {
	t, info, err := s.store.Get(tenantFrom(r), r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeCSV(w, info.ID, t)
}

func (s *Server) handleTableDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Delete(tenantFrom(r), r.PathValue("id")); err != nil {
		writeServiceError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var spec service.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("parse job spec: %v", err))
		return
	}
	st, err := s.engine.Submit(tenantFrom(r), spec)
	if err != nil {
		var ov *service.OverloadError
		switch {
		case errors.As(err, &ov):
			writeServiceError(w, err)
		case errors.Is(err, service.ErrQueueFull):
			// Untyped queue-full (no admission metadata): still shed as 429
			// so clients use one retry path for all backpressure.
			setRetryAfter(w, time.Second)
			writeError(w, http.StatusTooManyRequests, err.Error())
		default:
			writeServiceError(w, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.engine.Jobs(tenantFrom(r))})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.engine.Job(tenantFrom(r), r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, err := s.engine.Result(tenantFrom(r), id)
	if err != nil {
		switch {
		case errors.Is(err, service.ErrNotFinished):
			writeError(w, http.StatusConflict, err.Error())
		default:
			writeServiceError(w, err)
		}
		return
	}
	// Assess jobs report numbers, not a release; everything else downloads
	// the result table as CSV.
	if res.Assessment != nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"records":         res.Assessment.Records,
			"breach10":        res.Assessment.Breach10,
			"breach20":        res.Assessment.Breach20,
			"class3":          res.Assessment.Class3,
			"baseline_class3": res.Assessment.BaselineClass3,
			"rank_exposure":   res.Assessment.Rank,
		})
		return
	}
	if res.Table == nil {
		writeError(w, http.StatusInternalServerError, "job finished without a result table")
		return
	}
	writeCSV(w, id, res.Table)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.engine.Cancel(tenantFrom(r), r.PathValue("id")); err != nil {
		if errors.Is(err, service.ErrAlreadyFinished) {
			writeError(w, http.StatusConflict, err.Error())
			return
		}
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "canceling"})
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.engine.Delete(tenantFrom(r), r.PathValue("id")); err != nil {
		if errors.Is(err, service.ErrNotFinished) {
			writeError(w, http.StatusConflict, err.Error())
			return
		}
		writeServiceError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- response helpers -------------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing to do once headers are out
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeServiceError maps service-layer errors onto status codes: unknown
// (or foreign-tenant) IDs are 404; exceeded tenant quotas and shed
// (overloaded) submissions 429 with a Retry-After; everything else a
// 400-class client error.
func writeServiceError(w http.ResponseWriter, err error) {
	var nf *service.ErrNotFound
	if errors.As(err, &nf) {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	var ov *service.OverloadError
	if errors.As(err, &ov) {
		setRetryAfter(w, ov.RetryAfter)
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	}
	var qe *service.QuotaError
	if errors.As(err, &qe) {
		// Quota headroom frees when a job finishes or a table is dropped —
		// not on a predictable schedule. One second is the poll floor.
		setRetryAfter(w, time.Second)
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	}
	writeError(w, http.StatusBadRequest, err.Error())
}

// setRetryAfter stamps a Retry-After header: whole seconds, rounded up,
// never below 1 — the smallest honest delay HTTP's delta-seconds form can
// express.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

func writeCSV(w http.ResponseWriter, name string, t *dataset.Table) {
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", name+".csv"))
	if err := dataset.WriteCSV(w, t); err != nil {
		// Headers are gone; all we can do is truncate the stream.
		return
	}
}
