package httpapi

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"time"

	"repro/internal/obs"
)

// httpMetrics is the request-path instrument set. Route labels are the
// registered mux patterns ("GET /v1/jobs/{id}"), never raw URLs, and status
// is the class — both cardinality rules from internal/obs/DESIGN.md.
type httpMetrics struct {
	requests    *obs.CounterVec   // route, method, status, tenant
	duration    *obs.HistogramVec // route, tenant
	inFlight    *obs.GaugeVec     // route (tenant is unresolved while in flight)
	rateLimited *obs.CounterVec   // tenant
}

func newHTTPMetrics(r *obs.Registry) *httpMetrics {
	return &httpMetrics{
		requests: r.Counter("http_requests_total",
			"HTTP requests served, by registered route and status class.",
			"route", "method", "status", "tenant"),
		duration: r.Histogram("http_request_duration_seconds",
			"HTTP request latency, by registered route.", nil, "route", "tenant"),
		inFlight: r.Gauge("http_in_flight_requests",
			"Requests currently being served, by registered route.", "route"),
		rateLimited: r.Counter("http_rate_limited_total",
			"Requests refused by a key's token-bucket rate limit.", "tenant"),
	}
}

// statusRecorder captures the response code for metrics and the access log.
// It passes Flush through so streaming handlers (SSE) keep flushing when the
// middleware wraps the ResponseWriter.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// statusClass buckets a response code for the status label: "2xx" … "5xx".
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// tenantHolder lets the auth middleware, which runs inside withObs, report
// the resolved tenant back out to it: withObs needs the tenant for the
// request counter and access log, but it wraps withAuth, so a plain context
// value written by auth would be invisible to it. The holder is mutable
// shared state scoped to one request.
type tenantHolder struct{ tenant string }

type ctxKeyTenantHolder struct{}

// requestID returns the inbound X-Request-ID or mints one (8 random bytes,
// hex). Client-supplied IDs are passed through so a caller can correlate
// across services; they become log attributes, never metric labels.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" && len(id) <= 128 {
		return id
	}
	var b [8]byte
	rand.Read(b[:]) //nolint:errcheck // crypto/rand.Read never fails on supported platforms
	return hex.EncodeToString(b[:])
}

// withObs is the outermost middleware: it assigns the request ID, tracks
// in-flight requests, records the request counter and latency histogram, and
// writes one structured access-log line carrying request ID and tenant. It
// wraps auth so refused requests are observed too.
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := requestID(r)
		w.Header().Set("X-Request-ID", reqID)
		holder := &tenantHolder{}
		ctx := obs.WithRequestID(r.Context(), reqID)
		ctx = context.WithValue(ctx, ctxKeyTenantHolder{}, holder)
		r = r.WithContext(ctx)

		// The route label is the *registered pattern*, resolved on the
		// original request before the handler consumes it — raw paths embed
		// job IDs and would explode series cardinality.
		route := "unmatched"
		if _, pattern := s.mux.Handler(r); pattern != "" {
			route = pattern
		}

		rec := &statusRecorder{ResponseWriter: w}
		inFlight := s.metrics.inFlight.With(route)
		inFlight.Inc()
		start := time.Now()
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		inFlight.Dec()
		if rec.code == 0 {
			rec.code = http.StatusOK
		}

		// The tenant resolved (or not) while the inner handlers ran; an
		// unauthenticated refusal leaves it empty and is labelled "".
		s.metrics.requests.With(route, r.Method, statusClass(rec.code), holder.tenant).Inc()
		s.metrics.duration.With(route, holder.tenant).Observe(elapsed.Seconds())
		if holder.tenant != "" {
			ctx = obs.WithTenant(ctx, holder.tenant)
		}
		s.logger.InfoContext(ctx, "request",
			"method", r.Method, "path", r.URL.Path, "route", route,
			"status", rec.code, "duration", elapsed.Round(time.Microsecond))
	})
}
