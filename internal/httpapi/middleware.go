package httpapi

import (
	"net/http"
	"time"
)

// statusRecorder captures the response code for the request log.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// withLogging logs one line per request: method, path, status, duration.
func (s *Server) withLogging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.logger == nil {
			next.ServeHTTP(w, r)
			return
		}
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		if rec.code == 0 {
			rec.code = http.StatusOK
		}
		s.logger.Printf("%s %s %d %s", r.Method, r.URL.Path, rec.code, time.Since(start).Round(time.Microsecond))
	})
}
