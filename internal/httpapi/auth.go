package httpapi

import (
	"bufio"
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// This file implements API-key authentication and the tenant dimension of
// the HTTP layer. Every request (except the liveness probe) resolves to a
// tenant before any handler runs: with an Auth configured, the bearer key
// names the tenant; without one, everything runs as service.DefaultTenant —
// the pre-tenancy single-namespace behavior.

// ctxKeyTenant carries the authenticated tenant through the request context.
type ctxKeyTenant struct{}

// tenantFrom returns the tenant the middleware resolved for this request.
func tenantFrom(r *http.Request) string {
	if t, ok := r.Context().Value(ctxKeyTenant{}).(string); ok {
		return t
	}
	return service.DefaultTenant
}

// Auth authenticates requests by API key and maps each key to its tenant.
// Keys are held only as SHA-256 digests: the presented key is hashed and
// the digests compared with crypto/subtle's constant-time comparison, so
// neither a memory disclosure nor a timing oracle reveals key material.
// Keys may additionally carry a token-bucket request rate limit; Admit
// enforces it at authentication time.
type Auth struct {
	// keys maps sha256(key) → tenant. Lookup iterates every entry with a
	// constant-time compare rather than indexing, so the comparison cost
	// does not depend on which (or whether a) key matched.
	keys []authKey
}

type authKey struct {
	digest [sha256.Size]byte
	tenant string
	bucket *tokenBucket // nil = unlimited
}

// tokenBucket is a classic leaky-refill rate limiter: capacity burst,
// refilled at rate tokens/second, one token per admitted request. It is
// per-key state, so a SIGHUP reload that swaps the Auth also resets the
// buckets — acceptable: the reload is rare and the refill catches up within
// a second.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// take consumes one token if available. When the bucket is empty it reports
// how long until the next token accrues — the Retry-After the caller should
// surface.
func (b *tokenBucket) take(now time.Time) (ok bool, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	} else {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// KeyConfig declares one API key: its tenant, the key material, and an
// optional request rate limit (RatePerSec ≤ 0 means unlimited; Burst
// defaults to max(1, ceil(rate)) when unset).
type KeyConfig struct {
	Tenant     string
	Key        string
	RatePerSec float64
	Burst      int
}

// NewAuth builds an authenticator from a key → tenant map with no rate
// limits. Tenant names must satisfy service.ValidateTenant.
func NewAuth(keyTenants map[string]string) (*Auth, error) {
	cfgs := make([]KeyConfig, 0, len(keyTenants))
	for key, tenant := range keyTenants {
		cfgs = append(cfgs, KeyConfig{Tenant: tenant, Key: key})
	}
	return NewAuthConfig(cfgs)
}

// NewAuthConfig builds an authenticator from explicit key configs,
// including per-key rate limits.
func NewAuthConfig(cfgs []KeyConfig) (*Auth, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("httpapi: no API keys configured")
	}
	a := &Auth{}
	for _, c := range cfgs {
		if err := service.ValidateTenant(c.Tenant); err != nil {
			return nil, fmt.Errorf("httpapi: %w", err)
		}
		if len(c.Key) < 8 {
			return nil, fmt.Errorf("httpapi: API key for tenant %q is shorter than 8 characters", c.Tenant)
		}
		k := authKey{digest: sha256.Sum256([]byte(c.Key)), tenant: c.Tenant}
		if c.RatePerSec > 0 {
			burst := float64(c.Burst)
			if burst < 1 {
				burst = math.Ceil(c.RatePerSec)
				if burst < 1 {
					burst = 1
				}
			}
			k.bucket = &tokenBucket{rate: c.RatePerSec, burst: burst, tokens: burst}
		}
		a.keys = append(a.keys, k)
	}
	return a, nil
}

// Authenticate resolves a presented key to its tenant. The scan always
// visits every configured key with a constant-time digest comparison.
func (a *Auth) Authenticate(key string) (string, bool) {
	tenant, _, found := a.lookup(key)
	return tenant, found
}

// Admit authenticates the key AND charges its rate limit: found reports
// whether the key exists, limited whether the key's bucket refused this
// request (with the wait until it would admit one). An unlimited key is
// never limited.
func (a *Auth) Admit(key string, now time.Time) (tenant string, found, limited bool, retryAfter time.Duration) {
	tenant, idx, found := a.lookup(key)
	if !found || a.keys[idx].bucket == nil {
		return tenant, found, false, 0
	}
	ok, wait := a.keys[idx].bucket.take(now)
	return tenant, true, !ok, wait
}

func (a *Auth) lookup(key string) (tenant string, idx int, found bool) {
	digest := sha256.Sum256([]byte(key))
	idx = -1
	for i := range a.keys {
		if subtle.ConstantTimeCompare(digest[:], a.keys[i].digest[:]) == 1 {
			tenant, idx, found = a.keys[i].tenant, i, true
		}
	}
	return tenant, idx, found
}

// KeysConfig is a parsed key file: the authenticator plus any per-tenant
// quota overrides declared alongside the keys.
type KeysConfig struct {
	Auth   *Auth
	Quotas map[string]service.Quota
}

// ParseKeys reads the API key file format:
//
//	# comment
//	<tenant> <key> [tables=N] [jobs=N] [cache=N] [rate=R] [burst=N]
//
// One key per line, whitespace separated; a tenant may own several keys.
// The optional tables/jobs/cache fields override that tenant's quota (last
// line wins); rate (requests per second, fractional allowed) and burst
// attach a token-bucket request limit to THAT key.
func ParseKeys(r io.Reader) (*KeysConfig, error) {
	cfg := &KeysConfig{Quotas: make(map[string]service.Quota)}
	keyTenants := make(map[string]string)
	var keyCfgs []KeyConfig
	sc := bufio.NewScanner(r)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("httpapi: keys file line %d: want `tenant key [tables=N] [jobs=N] [cache=N] [rate=R] [burst=N]`", lineNo)
		}
		tenant, key := fields[0], fields[1]
		if err := service.ValidateTenant(tenant); err != nil {
			return nil, fmt.Errorf("httpapi: keys file line %d: %w", lineNo, err)
		}
		if other, dup := keyTenants[key]; dup && other != tenant {
			return nil, fmt.Errorf("httpapi: keys file line %d: key already assigned to tenant %q", lineNo, other)
		}
		keyTenants[key] = tenant
		kc := KeyConfig{Tenant: tenant, Key: key}
		if len(fields) > 2 {
			q := cfg.Quotas[tenant]
			touchedQuota := false
			for _, f := range fields[2:] {
				name, val, ok := strings.Cut(f, "=")
				if !ok {
					return nil, fmt.Errorf("httpapi: keys file line %d: bad field %q", lineNo, f)
				}
				if name == "rate" {
					rate, err := strconv.ParseFloat(val, 64)
					if err != nil || rate <= 0 {
						return nil, fmt.Errorf("httpapi: keys file line %d: bad rate %q (want requests/second > 0)", lineNo, f)
					}
					kc.RatePerSec = rate
					continue
				}
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("httpapi: keys file line %d: bad field %q", lineNo, f)
				}
				switch name {
				case "tables":
					q.MaxTables, touchedQuota = n, true
				case "jobs":
					q.MaxJobs, touchedQuota = n, true
				case "cache":
					q.CacheShare, touchedQuota = n, true
				case "burst":
					kc.Burst = n
				default:
					return nil, fmt.Errorf("httpapi: keys file line %d: unknown field %q (want tables, jobs, cache, rate or burst)", lineNo, name)
				}
			}
			if touchedQuota {
				cfg.Quotas[tenant] = q
			}
			if kc.Burst > 0 && kc.RatePerSec <= 0 {
				return nil, fmt.Errorf("httpapi: keys file line %d: burst without rate", lineNo)
			}
		}
		keyCfgs = append(keyCfgs, kc)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("httpapi: read keys file: %w", err)
	}
	auth, err := NewAuthConfig(keyCfgs)
	if err != nil {
		return nil, err
	}
	cfg.Auth = auth
	return cfg, nil
}

// LoadKeysFile parses the key file at path.
func LoadKeysFile(path string) (*KeysConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("httpapi: open keys file: %w", err)
	}
	defer f.Close()
	return ParseKeys(f)
}

// bearerKey extracts the API key from Authorization: Bearer <key> or, as a
// curl-friendly fallback, the X-API-Key header. The scheme name is matched
// case-insensitively — HTTP auth schemes are (RFC 9110 §11.1), and some
// client libraries emit "bearer".
func bearerKey(r *http.Request) (string, bool) {
	if h := r.Header.Get("Authorization"); h != "" {
		if scheme, key, ok := strings.Cut(h, " "); ok && strings.EqualFold(scheme, "Bearer") {
			if key = strings.TrimSpace(key); key != "" {
				return key, true
			}
		}
		return "", false
	}
	if key := r.Header.Get("X-API-Key"); key != "" {
		return key, true
	}
	return "", false
}

// authExempt reports whether a path is served without a key even on an
// authenticated server: the probes (a load balancer holds no key) and the
// metrics exposition (a scraper holds no key either, and the exposition
// carries operational aggregates, not tenant data).
func authExempt(path string) bool {
	switch path {
	case "/v1/healthz", "/v1/readyz", "/metrics":
		return true
	}
	return false
}

// withAuth resolves the request's tenant before any handler runs. Without
// an authenticator every request is the default tenant; with one, a missing
// or malformed credential is 401, an unknown key 403, and a known key past
// its request rate 429 with a Retry-After — all as JSON. The authenticator
// is loaded through an atomic pointer so a SIGHUP keys-file reload swaps it
// without quiescing in-flight requests.
func (s *Server) withAuth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tenant := service.DefaultTenant
		if auth := s.auth.Load(); auth != nil && !authExempt(r.URL.Path) {
			key, ok := bearerKey(r)
			if !ok {
				w.Header().Set("WWW-Authenticate", `Bearer realm="repro"`)
				writeError(w, http.StatusUnauthorized, "missing API key: send Authorization: Bearer <key>")
				return
			}
			t, found, limited, wait := auth.Admit(key, time.Now())
			if !found {
				writeError(w, http.StatusForbidden, "unknown API key")
				return
			}
			if limited {
				s.metrics.rateLimited.With(t).Inc()
				setRetryAfter(w, wait)
				writeError(w, http.StatusTooManyRequests, "API key request rate exceeded")
				return
			}
			tenant = t
		}
		ctx := context.WithValue(r.Context(), ctxKeyTenant{}, tenant)
		// Stamp the tenant for log correlation and report it back to the
		// enclosing withObs middleware for the request metrics.
		ctx = obs.WithTenant(ctx, tenant)
		if h, ok := ctx.Value(ctxKeyTenantHolder{}).(*tenantHolder); ok {
			h.tenant = tenant
		}
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
