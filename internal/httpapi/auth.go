package httpapi

import (
	"bufio"
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/service"
)

// This file implements API-key authentication and the tenant dimension of
// the HTTP layer. Every request (except the liveness probe) resolves to a
// tenant before any handler runs: with an Auth configured, the bearer key
// names the tenant; without one, everything runs as service.DefaultTenant —
// the pre-tenancy single-namespace behavior.

// ctxKeyTenant carries the authenticated tenant through the request context.
type ctxKeyTenant struct{}

// tenantFrom returns the tenant the middleware resolved for this request.
func tenantFrom(r *http.Request) string {
	if t, ok := r.Context().Value(ctxKeyTenant{}).(string); ok {
		return t
	}
	return service.DefaultTenant
}

// Auth authenticates requests by API key and maps each key to its tenant.
// Keys are held only as SHA-256 digests: the presented key is hashed and
// the digests compared with crypto/subtle's constant-time comparison, so
// neither a memory disclosure nor a timing oracle reveals key material.
type Auth struct {
	// keys maps sha256(key) → tenant. Lookup iterates every entry with a
	// constant-time compare rather than indexing, so the comparison cost
	// does not depend on which (or whether a) key matched.
	keys []authKey
}

type authKey struct {
	digest [sha256.Size]byte
	tenant string
}

// NewAuth builds an authenticator from a key → tenant map. Tenant names
// must satisfy service.ValidateTenant.
func NewAuth(keyTenants map[string]string) (*Auth, error) {
	if len(keyTenants) == 0 {
		return nil, fmt.Errorf("httpapi: no API keys configured")
	}
	a := &Auth{}
	for key, tenant := range keyTenants {
		if err := service.ValidateTenant(tenant); err != nil {
			return nil, fmt.Errorf("httpapi: %w", err)
		}
		if len(key) < 8 {
			return nil, fmt.Errorf("httpapi: API key for tenant %q is shorter than 8 characters", tenant)
		}
		a.keys = append(a.keys, authKey{digest: sha256.Sum256([]byte(key)), tenant: tenant})
	}
	return a, nil
}

// Authenticate resolves a presented key to its tenant. The scan always
// visits every configured key with a constant-time digest comparison.
func (a *Auth) Authenticate(key string) (string, bool) {
	digest := sha256.Sum256([]byte(key))
	tenant, found := "", false
	for i := range a.keys {
		if subtle.ConstantTimeCompare(digest[:], a.keys[i].digest[:]) == 1 {
			tenant, found = a.keys[i].tenant, true
		}
	}
	return tenant, found
}

// KeysConfig is a parsed key file: the authenticator plus any per-tenant
// quota overrides declared alongside the keys.
type KeysConfig struct {
	Auth   *Auth
	Quotas map[string]service.Quota
}

// ParseKeys reads the API key file format:
//
//	# comment
//	<tenant> <key> [tables=N] [jobs=N] [cache=N]
//
// One key per line, whitespace separated; a tenant may own several keys.
// The optional k=v fields override that tenant's quota (last line wins).
func ParseKeys(r io.Reader) (*KeysConfig, error) {
	cfg := &KeysConfig{Quotas: make(map[string]service.Quota)}
	keyTenants := make(map[string]string)
	sc := bufio.NewScanner(r)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("httpapi: keys file line %d: want `tenant key [tables=N] [jobs=N] [cache=N]`", lineNo)
		}
		tenant, key := fields[0], fields[1]
		if err := service.ValidateTenant(tenant); err != nil {
			return nil, fmt.Errorf("httpapi: keys file line %d: %w", lineNo, err)
		}
		if other, dup := keyTenants[key]; dup && other != tenant {
			return nil, fmt.Errorf("httpapi: keys file line %d: key already assigned to tenant %q", lineNo, other)
		}
		keyTenants[key] = tenant
		if len(fields) > 2 {
			q := cfg.Quotas[tenant]
			for _, f := range fields[2:] {
				name, val, ok := strings.Cut(f, "=")
				n, err := strconv.Atoi(val)
				if !ok || err != nil {
					return nil, fmt.Errorf("httpapi: keys file line %d: bad quota field %q", lineNo, f)
				}
				switch name {
				case "tables":
					q.MaxTables = n
				case "jobs":
					q.MaxJobs = n
				case "cache":
					q.CacheShare = n
				default:
					return nil, fmt.Errorf("httpapi: keys file line %d: unknown quota %q (want tables, jobs or cache)", lineNo, name)
				}
			}
			cfg.Quotas[tenant] = q
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("httpapi: read keys file: %w", err)
	}
	auth, err := NewAuth(keyTenants)
	if err != nil {
		return nil, err
	}
	cfg.Auth = auth
	return cfg, nil
}

// LoadKeysFile parses the key file at path.
func LoadKeysFile(path string) (*KeysConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("httpapi: open keys file: %w", err)
	}
	defer f.Close()
	return ParseKeys(f)
}

// bearerKey extracts the API key from Authorization: Bearer <key> or, as a
// curl-friendly fallback, the X-API-Key header. The scheme name is matched
// case-insensitively — HTTP auth schemes are (RFC 9110 §11.1), and some
// client libraries emit "bearer".
func bearerKey(r *http.Request) (string, bool) {
	if h := r.Header.Get("Authorization"); h != "" {
		if scheme, key, ok := strings.Cut(h, " "); ok && strings.EqualFold(scheme, "Bearer") {
			if key = strings.TrimSpace(key); key != "" {
				return key, true
			}
		}
		return "", false
	}
	if key := r.Header.Get("X-API-Key"); key != "" {
		return key, true
	}
	return "", false
}

// authExempt reports whether a path is served without a key even on an
// authenticated server: the probes (a load balancer holds no key) and the
// metrics exposition (a scraper holds no key either, and the exposition
// carries operational aggregates, not tenant data).
func authExempt(path string) bool {
	switch path {
	case "/v1/healthz", "/v1/readyz", "/metrics":
		return true
	}
	return false
}

// withAuth resolves the request's tenant before any handler runs. Without
// an authenticator every request is the default tenant; with one, a missing
// or malformed credential is 401 and an unknown key 403, both as JSON.
func (s *Server) withAuth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tenant := service.DefaultTenant
		if s.auth != nil && !authExempt(r.URL.Path) {
			key, ok := bearerKey(r)
			if !ok {
				w.Header().Set("WWW-Authenticate", `Bearer realm="repro"`)
				writeError(w, http.StatusUnauthorized, "missing API key: send Authorization: Bearer <key>")
				return
			}
			t, found := s.auth.Authenticate(key)
			if !found {
				writeError(w, http.StatusForbidden, "unknown API key")
				return
			}
			tenant = t
		}
		ctx := context.WithValue(r.Context(), ctxKeyTenant{}, tenant)
		// Stamp the tenant for log correlation and report it back to the
		// enclosing withObs middleware for the request metrics.
		ctx = obs.WithTenant(ctx, tenant)
		if h, ok := ctx.Value(ctxKeyTenantHolder{}).(*tenantHolder); ok {
			h.tenant = tenant
		}
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
