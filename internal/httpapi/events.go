package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// handleJobEvents streams a job's incremental events — per-level sweep
// results with running threshold calibration and progress, closed by the
// terminal status — as Server-Sent Events, or as newline-delimited JSON when
// the client asks for it (Accept: application/x-ndjson). The stream replays
// everything the job has already emitted, so subscribing late (or to a
// finished job) still yields the full series.
//
// Streams are resumable: every event carries a monotonic sequence number
// (the SSE id: field, also the "seq" JSON field), and a reconnecting client
// presenting it — the standard Last-Event-ID header an EventSource sends
// automatically, or an explicit ?after=<seq> query parameter — skips the
// already-delivered replay. The sequence numbers are durable: they survive a
// server restart, so a cursor taken before a crash stays valid after
// recovery. The connection closes when the job reaches a terminal state or
// the client disconnects; a cancel mid-sweep ends the stream promptly with a
// terminal status event.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	after, err := resumeCursor(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	events, err := s.engine.StreamAfter(r.Context(), tenantFrom(r), r.PathValue("id"), after)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	ndjson := strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
	// The access log line only lands when the stream closes; this one marks
	// the subscription start, correlated by request_id and job.
	s.logger.DebugContext(obs.WithJobID(r.Context(), r.PathValue("id")),
		"event stream subscribed", "after", after, "ndjson", ndjson)
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
	}
	// Tell buffering reverse proxies to pass events through as they happen.
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	flush()
	for ev := range events {
		payload, err := json.Marshal(ev)
		if err != nil {
			return
		}
		if ndjson {
			if _, err := fmt.Fprintf(w, "%s\n", payload); err != nil {
				return
			}
		} else {
			if ev.Seq != 0 {
				if _, err := fmt.Fprintf(w, "id: %d\n", ev.Seq); err != nil {
					return
				}
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, payload); err != nil {
				return
			}
		}
		flush()
	}
}

// resumeCursor extracts the resume sequence from the SSE Last-Event-ID
// header or ?after=. The header wins when both are present: an EventSource
// reconnects to its original URL (a possibly stale ?after=) but advances
// Last-Event-ID to the newest event it processed, so the header is always
// the fresher cursor. Zero means "from the beginning".
func resumeCursor(r *http.Request) (uint64, error) {
	raw := strings.TrimSpace(r.Header.Get("Last-Event-ID"))
	if raw == "" {
		raw = r.URL.Query().Get("after")
	}
	if raw == "" {
		return 0, nil
	}
	after, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid resume cursor %q: want the numeric seq of the last received event", raw)
	}
	return after, nil
}
