package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// handleJobEvents streams a job's incremental events — per-level sweep
// results with running threshold calibration and progress, closed by the
// terminal status — as Server-Sent Events, or as newline-delimited JSON when
// the client asks for it (Accept: application/x-ndjson). The stream replays
// everything the job has already emitted, so subscribing late (or to a
// finished job) still yields the full series. The connection closes when
// the job reaches a terminal state or the client disconnects; a cancel
// mid-sweep ends the stream promptly with a terminal status event.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	events, err := s.engine.Stream(r.Context(), r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	ndjson := strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
	}
	// Tell buffering reverse proxies to pass events through as they happen.
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	flush()
	for ev := range events {
		payload, err := json.Marshal(ev)
		if err != nil {
			return
		}
		if ndjson {
			if _, err := fmt.Fprintf(w, "%s\n", payload); err != nil {
				return
			}
		} else {
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, payload); err != nil {
				return
			}
		}
		flush()
	}
}
