package httpapi_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/dataset"
	"repro/internal/httpapi"
	"repro/internal/service"
)

// newTestServer spins up the full stack — store, engine, REST layer — on an
// httptest server. When start is false the engine's workers stay parked, so
// submitted jobs remain pending (for testing the not-finished paths).
func newTestServer(t *testing.T, start bool) (*httptest.Server, *service.Store) {
	ts, store, _ := newTestServerEngine(t, start, service.Options{Workers: 2, SweepWorkers: 4})
	return ts, store
}

// checkGoroutineLeaks registers a cleanup — first, so it runs after the
// server and engine cleanups — that fails the test when the goroutine count
// does not return to its pre-test baseline. This is what catches a leaked
// SSE response body: an unclosed stream pins the server's event-stream
// handler, the engine's subscription goroutine and the client connection
// forever, and the count never converges.
func checkGoroutineLeaks(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		deadline := time.Now().Add(10 * time.Second)
		var n int
		for {
			if n = runtime.NumGoroutine(); n <= base+3 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d at test start, still %d after shutdown\n%s", base, n, buf)
	})
}

// newTestServerEngine additionally hands back the engine, for tests that
// need to start the workers only after setting up observers (event-stream
// tests subscribe first so streaming is observed deterministically) or to
// tune the worker counts.
func newTestServerEngine(t *testing.T, start bool, opts service.Options) (*httptest.Server, *service.Store, *service.Engine) {
	t.Helper()
	checkGoroutineLeaks(t)
	store := service.NewStore()
	engine := service.NewEngine(store, opts)
	if start {
		engine.Start()
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		engine.Shutdown(ctx)
	})
	ts := httptest.NewServer(httpapi.New(store, engine, nil))
	t.Cleanup(ts.Close)
	return ts, store, engine
}

func decodeJSON(t *testing.T, r io.Reader, v any) {
	t.Helper()
	if err := json.NewDecoder(r).Decode(v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
}

// errorBody asserts the standard JSON error envelope and returns the message.
func errorBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	var e struct {
		Error string `json:"error"`
	}
	decodeJSON(t, resp.Body, &e)
	if e.Error == "" {
		t.Fatal("error response without an error field")
	}
	return e.Error
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, true)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body map[string]any
	decodeJSON(t, resp.Body, &body)
	if body["status"] != "ok" {
		t.Fatalf("body %v", body)
	}
	for _, field := range []string{"uptime_seconds", "durable", "wal_seq", "jobs_finished", "jobs_live", "tenants"} {
		if _, ok := body[field]; !ok {
			t.Errorf("healthz body missing %q: %v", field, body)
		}
	}
	if body["durable"] != false {
		t.Errorf("in-memory server reports durable=%v", body["durable"])
	}
}

func TestUploadRejectsMalformedCSV(t *testing.T) {
	ts, _ := newTestServer(t, true)
	resp, err := http.Post(ts.URL+"/v1/tables", "text/csv",
		strings.NewReader("Name,Age\nnot-a-meta-header\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if msg := errorBody(t, resp); !strings.Contains(msg, "csv") {
		t.Fatalf("unhelpful error: %q", msg)
	}
}

func TestTableLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, true)
	csv := "Name,Score,Salary\nid:text,qi:number,s:number\nAlice,5,90000\nBob,7,110000\n"

	resp, err := http.Post(ts.URL+"/v1/tables?name=demo", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	var info service.TableInfo
	decodeJSON(t, resp.Body, &info)
	if info.Name != "demo" || info.Rows != 2 || info.Cols != 3 {
		t.Fatalf("bad info: %+v", info)
	}

	// Metadata endpoint.
	resp2, err := http.Get(ts.URL + "/v1/tables/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var info2 service.TableInfo
	decodeJSON(t, resp2.Body, &info2)
	if info2.Hash != info.Hash {
		t.Fatalf("metadata mismatch: %+v vs %+v", info2, info)
	}

	// CSV download round-trips.
	resp3, err := http.Get(ts.URL + "/v1/tables/" + info.ID + "/csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if ct := resp3.Header.Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("content type %q", ct)
	}
	tab, err := dataset.ReadCSV(resp3.Body)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("downloaded %d rows", tab.NumRows())
	}

	// List contains it; delete removes it.
	resp4, err := http.Get(ts.URL + "/v1/tables")
	if err != nil {
		t.Fatal(err)
	}
	defer resp4.Body.Close()
	var list struct {
		Tables []service.TableInfo `json:"tables"`
	}
	decodeJSON(t, resp4.Body, &list)
	if len(list.Tables) != 1 {
		t.Fatalf("list has %d tables", len(list.Tables))
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/tables/"+info.ID, nil)
	resp5, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp5.Body.Close()
	if resp5.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp5.StatusCode)
	}
	resp6, err := http.Get(ts.URL + "/v1/tables/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp6.Body.Close()
	if resp6.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d after delete, want 404", resp6.StatusCode)
	}
	errorBody(t, resp6)
}

func TestJobSubmissionErrors(t *testing.T) {
	ts, _ := newTestServer(t, true)

	// Unknown table → 404.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"type":"anonymize","table":"tbl-404","k":3}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	errorBody(t, resp)

	// Unknown spec field → 400 (DisallowUnknownFields guards typos).
	resp2, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"type":"anonymize","table":"tbl-1","kay":3}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp2.StatusCode)
	}

	// Invalid spec (k too small) → 400.
	resp3, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"type":"anonymize","table":"tbl-1","k":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest && resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 4xx", resp3.StatusCode)
	}
}

func TestJobResultBeforeCompletion(t *testing.T) {
	// Engine not started: the job stays pending forever.
	ts, store := newTestServer(t, false)
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 7, N: 20})
	if err != nil {
		t.Fatal(err)
	}
	info, err := store.Put(service.DefaultTenant, "P", sc.P)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(fmt.Sprintf(`{"type":"anonymize","table":%q,"k":2}`, info.ID)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var st service.Status
	decodeJSON(t, resp.Body, &st)
	if st.State != service.StatePending {
		t.Fatalf("state %s, want pending", st.State)
	}

	resp2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("result status %d, want 409", resp2.StatusCode)
	}
	errorBody(t, resp2)

	// Deleting a non-terminal job is a conflict; the job keeps running.
	reqDel, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	respDel, err := http.DefaultClient.Do(reqDel)
	if err != nil {
		t.Fatal(err)
	}
	respDel.Body.Close()
	if respDel.StatusCode != http.StatusConflict {
		t.Fatalf("delete-while-pending status %d, want 409", respDel.StatusCode)
	}

	// Cancel over HTTP, then the job is terminal.
	resp3, err := http.Post(ts.URL+"/v1/jobs/"+st.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d", resp3.StatusCode)
	}
	resp4, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp4.Body.Close()
	var st2 service.Status
	decodeJSON(t, resp4.Body, &st2)
	if st2.State != service.StateCanceled {
		t.Fatalf("state %s, want canceled", st2.State)
	}

	// A terminal job can be purged, after which it is unknown.
	reqDel2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	respDel2, err := http.DefaultClient.Do(reqDel2)
	if err != nil {
		t.Fatal(err)
	}
	respDel2.Body.Close()
	if respDel2.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d, want 204", respDel2.StatusCode)
	}
	resp5, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp5.Body.Close()
	if resp5.StatusCode != http.StatusNotFound {
		t.Fatalf("status after purge %d, want 404", resp5.StatusCode)
	}
}

func TestUnknownJobRoutes(t *testing.T) {
	ts, _ := newTestServer(t, true)
	for _, path := range []string{"/v1/jobs/job-404", "/v1/jobs/job-404/result"} {
		// The deferred close runs even when an assertion below fails the
		// test — a bare Close after the assertions would leak the body (and
		// its connection) on that early exit.
		func() {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
			}
			errorBody(t, resp)
		}()
	}
}

// uploadTable pushes a dataset.Table through the upload endpoint.
func uploadTable(t *testing.T, baseURL, name string, tab *dataset.Table) service.TableInfo {
	t.Helper()
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/tables?name="+name, "text/csv", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload %s: status %d", name, resp.StatusCode)
	}
	var info service.TableInfo
	decodeJSON(t, resp.Body, &info)
	return info
}

// submitJob posts a job spec and returns the accepted status.
func submitJob(t *testing.T, baseURL string, spec service.Spec) service.Status {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, errorBody(t, resp))
	}
	var st service.Status
	decodeJSON(t, resp.Body, &st)
	return st
}

// pollJob polls the status endpoint until the job is terminal.
func pollJob(t *testing.T, baseURL, id string) service.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(baseURL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st service.Status
		func() {
			// Deferred so a decode failure's t.Fatal cannot leak the body.
			defer resp.Body.Close()
			decodeJSON(t, resp.Body, &st)
		}()
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s at deadline", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// sseData extracts the data payloads from a Server-Sent Events stream body.
func sseData(t *testing.T, r io.Reader) []string {
	t.Helper()
	var out []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "data: ") {
			out = append(out, strings.TrimPrefix(line, "data: "))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read event stream: %v", err)
	}
	return out
}

// TestEndToEndJobEventStream is the streaming e2e: submit a fred-sweep and
// read GET /v1/jobs/{id}/events to completion. The stream must deliver at
// least two per-level events — in k order, with running calibration and
// advancing progress — before the terminal status event, then close. The
// subscription is opened while the job is still pending (the engine starts
// after the stream is connected), so every level event is observed live,
// ahead of the terminal state, not replayed after the fact.
func TestEndToEndJobEventStream(t *testing.T) {
	ts, _, engine := newTestServerEngine(t, false, service.Options{Workers: 2, SweepWorkers: 4})
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 40})
	if err != nil {
		t.Fatal(err)
	}
	pInfo := uploadTable(t, ts.URL, "P", sc.P)
	qInfo := uploadTable(t, ts.URL, "Q", sc.Q)
	st := submitJob(t, ts.URL, service.Spec{
		Type: service.JobFREDSweep, Table: pInfo.ID, Aux: qInfo.ID,
		MinK: 2, MaxK: 16,
		SensitiveLo: 40000, SensitiveHi: 160000,
	})

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q, want text/event-stream", ct)
	}
	// Connected and subscribed to a still-pending job; now let it run.
	engine.Start()

	var events []service.Event
	for _, data := range sseData(t, resp.Body) {
		var ev service.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("bad event payload %q: %v", data, err)
		}
		events = append(events, ev)
	}
	if len(events) < 3 {
		t.Fatalf("stream delivered %d events, want ≥ 2 levels + terminal", len(events))
	}
	levels, terminal := events[:len(events)-1], events[len(events)-1]
	if len(levels) < 2 {
		t.Fatalf("saw %d level events before the terminal status, want ≥ 2", len(levels))
	}
	lastProgress := 0.0
	for i, ev := range levels {
		if ev.Type != service.EventLevel || ev.Level == nil {
			t.Fatalf("event %d is %q, want an in-stream level event", i, ev.Type)
		}
		if ev.Level.K != i+2 {
			t.Errorf("level event %d has k=%d, want %d", i, ev.Level.K, i+2)
		}
		if ev.Progress <= lastProgress {
			t.Errorf("k=%d: progress %g did not advance past %g", ev.Level.K, ev.Progress, lastProgress)
		}
		lastProgress = ev.Progress
		if i >= 2 && ev.Calibration == nil {
			t.Errorf("k=%d: missing running calibration", ev.Level.K)
		}
	}
	if terminal.Type != service.EventStatus || terminal.Status == nil {
		t.Fatalf("last event is %q, want the terminal status", terminal.Type)
	}
	if terminal.Status.State != service.StateDone {
		t.Fatalf("job ended %s: %s", terminal.Status.State, terminal.Status.Error)
	}
	if optK := int(terminal.Status.Summary["optimal_k"]); optK < 2 || optK > 16 {
		t.Fatalf("optimal k %d outside the sweep range", optK)
	}
	// The status endpoint agrees and carries the final per-level series.
	final := pollJob(t, ts.URL, st.ID)
	if len(final.Levels) != len(levels) {
		t.Fatalf("status has %d levels, stream delivered %d", len(final.Levels), len(levels))
	}
}

// TestJobEventStreamCancelMidSweep cancels a long sweep after its first
// level event and requires the NDJSON event stream to end promptly with a
// canceled terminal status. The stream is connected before the engine
// starts, so the cancel provably lands with ~98 of 99 levels still unswept.
func TestJobEventStreamCancelMidSweep(t *testing.T) {
	// One worker and one sweep worker: the sweep runs serially (slow, on a
	// big cohort) and leaves the scheduler room for the stream reads and the
	// cancel round-trip even on a single-CPU machine. The cohort must be big
	// enough that 99 MDAV levels take whole seconds — the batch attack plane
	// made small-cohort levels so cheap that a 400-row sweep could finish
	// before an immediate cancel landed.
	ts, _, engine := newTestServerEngine(t, false, service.Options{Workers: 1, SweepWorkers: 1})
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 2000, DirectAux: true})
	if err != nil {
		t.Fatal(err)
	}
	pInfo := uploadTable(t, ts.URL, "P", sc.P)
	qInfo := uploadTable(t, ts.URL, "Q", sc.Q)
	st := submitJob(t, ts.URL, service.Spec{
		Type: service.JobFREDSweep, Table: pInfo.ID, Aux: qInfo.ID,
		MinK: 2, MaxK: 100,
		SensitiveLo: 40000, SensitiveHi: 160000,
	})

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/events", nil)
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q, want application/x-ndjson", ct)
	}
	engine.Start()

	// Read events line by line; cancel over HTTP at the first level event,
	// then require the stream to terminate within a tight deadline — ~98
	// levels were still unswept, so a prompt EOF proves the cancellation
	// interrupted the sweep rather than waiting it out.
	var canceledAt time.Time
	var terminal *service.Event
	levelEvents := 0
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for scanner.Scan() {
		var ev service.Event
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatalf("bad ndjson line %q: %v", scanner.Text(), err)
		}
		switch ev.Type {
		case service.EventLevel:
			levelEvents++
			if canceledAt.IsZero() {
				cancelResp, err := http.Post(ts.URL+"/v1/jobs/"+st.ID+"/cancel", "", nil)
				if err != nil {
					t.Fatal(err)
				}
				cancelResp.Body.Close()
				if cancelResp.StatusCode != http.StatusAccepted {
					t.Fatalf("cancel status %d", cancelResp.StatusCode)
				}
				canceledAt = time.Now()
			}
		case service.EventStatus:
			terminal = &ev
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatalf("read stream: %v", err)
	}
	if levelEvents == 0 || canceledAt.IsZero() {
		t.Fatal("no level event arrived before the sweep finished")
	}
	if terminal == nil {
		t.Fatal("stream ended without a terminal status event")
	}
	if terminal.Status.State != service.StateCanceled {
		t.Fatalf("terminal state %s, want canceled", terminal.Status.State)
	}
	if waited := time.Since(canceledAt); waited > 30*time.Second {
		t.Fatalf("stream took %s to end after cancel", waited)
	}
	if levelEvents >= 99 {
		t.Fatalf("stream delivered %d level events after a mid-sweep cancel", levelEvents)
	}
}

// TestEndToEndFREDSweep is the integration test of the serving layer: upload
// the private table P and the adversary's web-gathered Q over HTTP, run an
// asynchronous fred-sweep job through the worker pool, poll it to
// completion, download the optimal fusion-resilient release as CSV — then
// repeat the identical sweep and require a cache hit.
func TestEndToEndFREDSweep(t *testing.T) {
	ts, _ := newTestServer(t, true)
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 40})
	if err != nil {
		t.Fatal(err)
	}

	pInfo := uploadTable(t, ts.URL, "faculty-P", sc.P)
	qInfo := uploadTable(t, ts.URL, "web-Q", sc.Q)

	spec := service.Spec{
		Type: service.JobFREDSweep, Table: pInfo.ID, Aux: qInfo.ID,
		MinK: 2, MaxK: 16,
		SensitiveLo: 40000, SensitiveHi: 160000,
	}
	st := submitJob(t, ts.URL, spec)
	st = pollJob(t, ts.URL, st.ID)
	if st.State != service.StateDone {
		t.Fatalf("sweep ended %s: %s", st.State, st.Error)
	}
	if st.Cached {
		t.Fatal("first sweep must compute, not hit the cache")
	}
	optK := int(st.Summary["optimal_k"])
	if optK < 2 || optK > 16 {
		t.Fatalf("optimal k %d outside sweep range", optK)
	}

	// Download the optimal release and verify it is a faithful table: same
	// cohort, same schema, sensitive column suppressed.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("download status %d", resp.StatusCode)
	}
	release, err := dataset.ReadCSV(resp.Body)
	if err != nil {
		t.Fatalf("result is not valid table CSV: %v", err)
	}
	if release.NumRows() != sc.P.NumRows() {
		t.Fatalf("release has %d rows, want %d", release.NumRows(), sc.P.NumRows())
	}
	for _, c := range release.Schema().IndicesOf(dataset.Sensitive) {
		for r := 0; r < release.NumRows(); r++ {
			if !release.Cell(r, c).IsNull() {
				t.Fatalf("row %d: sensitive cell leaked into the release", r)
			}
		}
	}

	// The repeated identical sweep is served from the cache.
	st2 := submitJob(t, ts.URL, spec)
	st2 = pollJob(t, ts.URL, st2.ID)
	if st2.State != service.StateDone || !st2.Cached {
		t.Fatalf("repeat sweep: state %s cached %v, want cached hit", st2.State, st2.Cached)
	}
	if int(st2.Summary["optimal_k"]) != optK {
		t.Fatalf("cache returned different optimum: %v vs %d", st2.Summary["optimal_k"], optK)
	}
}

// fetchEvents reads a full event stream (NDJSON for easy parsing) with the
// given resume cursor headers/query and returns the decoded events.
func fetchEvents(t *testing.T, baseURL, id, query, lastEventID string) []service.Event {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, baseURL+"/v1/jobs/"+id+"/events"+query, nil)
	req.Header.Set("Accept", "application/x-ndjson")
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	var events []service.Event
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		if len(strings.TrimSpace(scanner.Text())) == 0 {
			continue
		}
		var ev service.Event
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatalf("bad ndjson line %q: %v", scanner.Text(), err)
		}
		events = append(events, ev)
	}
	return events
}

// TestJobEventStreamResume: a reconnecting client presenting the seq of the
// last event it processed — via ?after= or the SSE Last-Event-ID header —
// skips the already-delivered replay and receives only the events past its
// cursor, closed by the terminal status.
func TestJobEventStreamResume(t *testing.T) {
	ts, _ := newTestServer(t, true)
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 40})
	if err != nil {
		t.Fatal(err)
	}
	pInfo := uploadTable(t, ts.URL, "P", sc.P)
	qInfo := uploadTable(t, ts.URL, "Q", sc.Q)
	st := submitJob(t, ts.URL, service.Spec{
		Type: service.JobFREDSweep, Table: pInfo.ID, Aux: qInfo.ID,
		MinK: 2, MaxK: 10,
		SensitiveLo: 40000, SensitiveHi: 160000,
	})
	if st = pollJob(t, ts.URL, st.ID); st.State != service.StateDone {
		t.Fatalf("sweep ended %s: %s", st.State, st.Error)
	}

	full := fetchEvents(t, ts.URL, st.ID, "", "")
	if len(full) < 4 {
		t.Fatalf("full stream delivered %d events, want ≥ 3 levels + terminal", len(full))
	}
	levels := full[:len(full)-1]
	for i, ev := range levels {
		if ev.Type != service.EventLevel || ev.Seq == 0 {
			t.Fatalf("level event %d lacks a resume seq: %+v", i, ev)
		}
		if i > 0 && ev.Seq <= levels[i-1].Seq {
			t.Fatalf("event seqs not increasing: %d after %d", ev.Seq, levels[i-1].Seq)
		}
	}

	// Reconnect as if the connection dropped after the second level.
	cursor := levels[1].Seq
	for name, resumed := range map[string][]service.Event{
		"after-query":   fetchEvents(t, ts.URL, st.ID, fmt.Sprintf("?after=%d", cursor), ""),
		"last-event-id": fetchEvents(t, ts.URL, st.ID, "", fmt.Sprintf("%d", cursor)),
	} {
		wantLevels := len(levels) - 2
		if len(resumed) != wantLevels+1 {
			t.Fatalf("%s: resumed stream delivered %d events, want %d levels + terminal",
				name, len(resumed), wantLevels)
		}
		for i, ev := range resumed[:wantLevels] {
			if ev.Seq != levels[i+2].Seq || ev.Level.K != levels[i+2].Level.K {
				t.Fatalf("%s: resumed event %d is seq %d k=%d, want seq %d k=%d",
					name, i, ev.Seq, ev.Level.K, levels[i+2].Seq, levels[i+2].Level.K)
			}
		}
		if last := resumed[len(resumed)-1]; last.Type != service.EventStatus || last.Status == nil {
			t.Fatalf("%s: resumed stream did not close with a terminal status", name)
		}
	}

	// A cursor past everything still yields the terminal status.
	tail := fetchEvents(t, ts.URL, st.ID, fmt.Sprintf("?after=%d", levels[len(levels)-1].Seq), "")
	if len(tail) != 1 || tail[0].Type != service.EventStatus {
		t.Fatalf("cursor-past-all stream = %+v, want only the terminal status", tail)
	}

	// A malformed cursor is a client error.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/events?after=banana", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed cursor status %d, want 400", resp.StatusCode)
	}
}
