package httpapi_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/service/diskstore"
)

// newObsServer builds the full durable stack — diskstore WAL, engine and
// REST layer — sharing one registry and tracer, the way cmd/served wires
// them. Everything the observability plane promises is checked against this
// server.
func newObsServer(t *testing.T) (*httptest.Server, *obs.Registry, *obs.Tracer) {
	t.Helper()
	checkGoroutineLeaks(t)
	registry := obs.NewRegistry()
	tracer := obs.NewTracer(obs.DefaultTraceCapacity)
	ds, err := diskstore.Open(t.TempDir(), diskstore.WithMetrics(registry))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	store := service.NewStoreWith(ds)
	if err := store.Open(); err != nil {
		t.Fatal(err)
	}
	engine := service.NewEngine(store, service.Options{
		Workers: 2, SweepWorkers: 4, JobLog: ds,
		Metrics: registry, Tracer: tracer, Logger: obs.NewLogger(io.Discard, nil),
	})
	engine.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		engine.Shutdown(ctx)
	})
	ts := httptest.NewServer(httpapi.New(store, engine, nil,
		httpapi.WithMetrics(registry), httpapi.WithTracer(tracer)))
	t.Cleanup(ts.Close)
	return ts, registry, tracer
}

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestMetricsEndToEnd runs a real fred-sweep through the durable stack and
// asserts one scrape covers every layer: HTTP requests, per-tenant job
// latency histograms, queue/worker gauges, cache hit/miss, WAL append
// latency and fsyncs.
func TestMetricsEndToEnd(t *testing.T) {
	ts, _, _ := newObsServer(t)
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 40})
	if err != nil {
		t.Fatal(err)
	}
	pInfo := uploadTable(t, ts.URL, "P", sc.P)
	qInfo := uploadTable(t, ts.URL, "Q", sc.Q)
	spec := service.Spec{
		Type: service.JobFREDSweep, Table: pInfo.ID, Aux: qInfo.ID,
		MinK: 2, MaxK: 6,
		SensitiveLo: 40000, SensitiveHi: 160000,
	}
	st := submitJob(t, ts.URL, spec)
	if st = pollJob(t, ts.URL, st.ID); st.State != service.StateDone {
		t.Fatalf("sweep ended %s: %s", st.State, st.Error)
	}
	// The identical resubmission is the cache-hit sample.
	st2 := submitJob(t, ts.URL, spec)
	if st2 = pollJob(t, ts.URL, st2.ID); !st2.Cached {
		t.Fatalf("repeat sweep not served from cache: %+v", st2)
	}

	text := scrape(t, ts.URL)
	for _, want := range []string{
		// HTTP layer: the route label is the registered pattern, the status a
		// class, the tenant resolved by the auth middleware (default here).
		`http_requests_total{route="POST /v1/jobs",method="POST",status="2xx",tenant="default"} 2`,
		`http_request_duration_seconds_bucket{route="POST /v1/tables",tenant="default",le="+Inf"} 2`,
		`http_in_flight_requests{route="GET /metrics"} 1`,
		// Engine: lifecycle counters, per-tenant duration histogram, gauges.
		`jobs_submitted_total{tenant="default",type="fred-sweep"} 2`,
		`jobs_started_total{tenant="default",type="fred-sweep"} 1`,
		`jobs_finished_total{tenant="default",type="fred-sweep",state="done"} 2`,
		`job_duration_seconds_count{tenant="default",type="fred-sweep"} 1`,
		`queue_depth 0`,
		`workers_total 2`,
		// Cache: one miss (first sweep), one hit (resubmission).
		`cache_hits_total{tenant="default"} 1`,
		`cache_misses_total{tenant="default"} 1`,
		// Storage plane: WAL appends happened and terminal records fsynced.
		`# TYPE wal_append_seconds histogram`,
		`# TYPE wal_fsync_total counter`,
		`# TYPE wal_bytes gauge`,
		`# TYPE snapshot_write_seconds histogram`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The WAL actually recorded work: appends observed, bytes accumulated.
	for _, prefix := range []string{"wal_append_seconds_count ", "wal_bytes ", "wal_fsync_total "} {
		if !hasPositiveSample(text, prefix) {
			t.Errorf("%s has no positive sample:\n%s", prefix, grepLines(text, strings.TrimSpace(prefix)))
		}
	}
}

// hasPositiveSample reports whether a line `prefix<value>` exists with a
// value above zero.
func hasPositiveSample(text, prefix string) bool {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, prefix); ok && rest != "" && rest != "0" {
			return true
		}
	}
	return false
}

func grepLines(text, needle string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, needle) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestJobTraceEndpoint: a finished sweep serves one job.run span plus one
// sweep.level span per level, and foreign job IDs stay 404.
func TestJobTraceEndpoint(t *testing.T) {
	ts, _, _ := newObsServer(t)
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 40})
	if err != nil {
		t.Fatal(err)
	}
	pInfo := uploadTable(t, ts.URL, "P", sc.P)
	qInfo := uploadTable(t, ts.URL, "Q", sc.Q)
	st := submitJob(t, ts.URL, service.Spec{
		Type: service.JobFREDSweep, Table: pInfo.ID, Aux: qInfo.ID,
		MinK: 2, MaxK: 6,
		SensitiveLo: 40000, SensitiveHi: 160000,
	})
	if st = pollJob(t, ts.URL, st.ID); st.State != service.StateDone {
		t.Fatalf("sweep ended %s: %s", st.State, st.Error)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	var body struct {
		Job   string     `json:"job"`
		Spans []obs.Span `json:"spans"`
	}
	decodeJSON(t, resp.Body, &body)
	if body.Job != st.ID {
		t.Fatalf("trace for %q, want %q", body.Job, st.ID)
	}
	byName := map[string]int{}
	seenK := map[string]bool{}
	for _, sp := range body.Spans {
		byName[sp.Name]++
		if sp.Name == "sweep.level" {
			seenK[sp.Attrs["k"]] = true
			if sp.DurationNS <= 0 {
				t.Errorf("level k=%s span has duration %d", sp.Attrs["k"], sp.DurationNS)
			}
		}
	}
	if byName["job.run"] != 1 {
		t.Errorf("got %d job.run spans, want 1", byName["job.run"])
	}
	if byName["sweep.level"] != 5 {
		t.Errorf("got %d sweep.level spans, want 5 (k=2..6)", byName["sweep.level"])
	}
	for _, k := range []string{"2", "3", "4", "5", "6"} {
		if !seenK[k] {
			t.Errorf("no span for level k=%s", k)
		}
	}

	// Unknown job IDs are 404 on the trace route like every other job route.
	resp404, err := http.Get(ts.URL + "/v1/jobs/job-999/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job trace status %d, want 404", resp404.StatusCode)
	}
}

// TestReadyz: 503 while the engine's worker pool has not started (the WAL
// replay window), 200 after Start.
func TestReadyz(t *testing.T) {
	ts, _, engine := newTestServerEngine(t, false, service.Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-start readyz status %d, want 503", resp.StatusCode)
	}
	engine.Start()
	resp, err = http.Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-start readyz status %d, want 200", resp.StatusCode)
	}
}

// TestRequestIDEcho: the middleware mints an X-Request-ID when absent and
// echoes a client-supplied one — on plain routes and on the SSE stream.
func TestRequestIDEcho(t *testing.T) {
	ts, _ := newTestServer(t, true)

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); len(id) != 16 {
		t.Fatalf("minted request ID %q, want 16 hex chars", id)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-supplied-1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); id != "caller-supplied-1" {
		t.Fatalf("echoed request ID %q, want caller-supplied-1", id)
	}

	// The SSE stream writes its headers up front, so the echo must survive
	// the streaming path too (exercising the recorder's Flush passthrough).
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 7, N: 20})
	if err != nil {
		t.Fatal(err)
	}
	pInfo := uploadTable(t, ts.URL, "P", sc.P)
	st := submitJob(t, ts.URL, service.Spec{
		Type: service.JobAnonymize, Table: pInfo.ID, K: 3,
	})
	streamReq, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/events", nil)
	streamReq.Header.Set("X-Request-ID", "sse-correlate-9")
	streamResp, err := http.DefaultClient.Do(streamReq)
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if id := streamResp.Header.Get("X-Request-ID"); id != "sse-correlate-9" {
		t.Fatalf("SSE request ID %q, want sse-correlate-9", id)
	}
	io.Copy(io.Discard, streamResp.Body) //nolint:errcheck // drain to completion
}
