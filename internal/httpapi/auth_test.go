package httpapi_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/dataset"
	"repro/internal/httpapi"
	"repro/internal/service"
)

// tenantClient wraps a base URL with one tenant's API key, so the isolation
// tests read like two separate customers using the service.
type tenantClient struct {
	t       *testing.T
	baseURL string
	key     string
}

func (c *tenantClient) do(method, path string, body []byte, header http.Header) *http.Response {
	c.t.Helper()
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, c.baseURL+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	if c.key != "" {
		req.Header.Set("Authorization", "Bearer "+c.key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	return resp
}

// expect performs the request, asserts the status code, decodes a JSON body
// into out (when non-nil) and closes the body.
func (c *tenantClient) expect(method, path string, body []byte, wantStatus int, out any) {
	c.t.Helper()
	resp := c.do(method, path, body, nil)
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		c.t.Fatalf("%s %s: status %d, want %d", method, path, resp.StatusCode, wantStatus)
	}
	if out != nil {
		decodeJSON(c.t, resp.Body, out)
	}
}

func (c *tenantClient) upload(name string, tab *dataset.Table) service.TableInfo {
	c.t.Helper()
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, tab); err != nil {
		c.t.Fatal(err)
	}
	var info service.TableInfo
	c.expect(http.MethodPost, "/v1/tables?name="+name, buf.Bytes(), http.StatusCreated, &info)
	return info
}

func (c *tenantClient) submit(spec service.Spec) service.Status {
	c.t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		c.t.Fatal(err)
	}
	var st service.Status
	c.expect(http.MethodPost, "/v1/jobs", body, http.StatusAccepted, &st)
	return st
}

func (c *tenantClient) poll(id string) service.Status {
	c.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st service.Status
		c.expect(http.MethodGet, "/v1/jobs/"+id, nil, http.StatusOK, &st)
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("job %s still %s at deadline", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// newAuthServer spins up the stack with API-key auth for tenants acme and
// globex, plus the given quotas. With start false the engine's workers stay
// parked, so submitted jobs remain pending — which makes quota-occupancy
// assertions deterministic instead of racing job completion.
func newAuthServer(t *testing.T, start bool, quotas *service.Quotas) (*httptest.Server, *tenantClient, *tenantClient) {
	t.Helper()
	checkGoroutineLeaks(t)
	cfg, err := httpapi.ParseKeys(strings.NewReader(`
# tenant   key
acme       sk-acme-secret-1
globex     sk-globex-secret-1
`))
	if err != nil {
		t.Fatal(err)
	}
	store := service.NewStore()
	engine := service.NewEngine(store, service.Options{Workers: 2, SweepWorkers: 2, Quotas: quotas})
	if start {
		engine.Start()
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		engine.Shutdown(ctx)
	})
	ts := httptest.NewServer(httpapi.New(store, engine, nil, httpapi.WithAuth(cfg.Auth)))
	t.Cleanup(ts.Close)
	acme := &tenantClient{t: t, baseURL: ts.URL, key: "sk-acme-secret-1"}
	globex := &tenantClient{t: t, baseURL: ts.URL, key: "sk-globex-secret-1"}
	return ts, acme, globex
}

// TestAuthRequired: with auth enabled, a missing credential is 401, an
// unknown key 403 (both JSON), healthz stays open for probes, and the
// X-API-Key fallback works.
func TestAuthRequired(t *testing.T) {
	ts, acme, _ := newAuthServer(t, true, nil)

	resp, err := http.Get(ts.URL + "/v1/tables")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no-key status %d, want 401", resp.StatusCode)
	}
	if h := resp.Header.Get("WWW-Authenticate"); !strings.Contains(h, "Bearer") {
		t.Fatalf("WWW-Authenticate %q", h)
	}
	errorBody(t, resp)

	bad := &tenantClient{t: t, baseURL: ts.URL, key: "sk-wrong-key-123"}
	resp2 := bad.do(http.MethodGet, "/v1/tables", nil, nil)
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusForbidden {
		t.Fatalf("bad-key status %d, want 403", resp2.StatusCode)
	}
	errorBody(t, resp2)

	// healthz needs no key.
	resp3, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d, want 200", resp3.StatusCode)
	}

	// X-API-Key works as a curl-friendly alternative.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/tables", nil)
	req.Header.Set("X-API-Key", acme.key)
	resp4, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusOK {
		t.Fatalf("X-API-Key status %d, want 200", resp4.StatusCode)
	}

	// The auth scheme is case-insensitive (RFC 9110 §11.1): "bearer" from
	// lowercase-emitting client libraries must authenticate too.
	req2, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/tables", nil)
	req2.Header.Set("Authorization", "bearer "+acme.key)
	resp5, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp5.Body.Close()
	if resp5.StatusCode != http.StatusOK {
		t.Fatalf("lowercase bearer status %d, want 200", resp5.StatusCode)
	}
}

// TestTenantIsolationEndToEnd is the multi-tenancy acceptance test: two
// tenants upload same-named tables and run fred-sweep jobs concurrently;
// each gets correct results, and neither can read, list, delete, stream or
// cancel the other's tables, jobs or events — every foreign ID answers 404,
// indistinguishable from a nonexistent one.
func TestTenantIsolationEndToEnd(t *testing.T) {
	_, acme, globex := newAuthServer(t, true, nil)

	// Different cohorts, same table names and (by per-tenant sequences) the
	// same table IDs — the namespaces fully overlap, the data must not.
	scA, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 30})
	if err != nil {
		t.Fatal(err)
	}
	scB, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 7, N: 40})
	if err != nil {
		t.Fatal(err)
	}
	aP, aQ := acme.upload("P", scA.P), acme.upload("Q", scA.Q)
	bP, bQ := globex.upload("P", scB.P), globex.upload("Q", scB.Q)
	if aP.ID != bP.ID {
		t.Fatalf("per-tenant table handles diverged: %s vs %s", aP.ID, bP.ID)
	}

	// Each tenant lists exactly its own two tables.
	for _, tc := range []struct {
		c    *tenantClient
		want string
	}{{acme, aP.Hash}, {globex, bP.Hash}} {
		var list struct {
			Tables []service.TableInfo `json:"tables"`
		}
		tc.c.expect(http.MethodGet, "/v1/tables", nil, http.StatusOK, &list)
		if len(list.Tables) != 2 || list.Tables[0].Hash != tc.want {
			t.Fatalf("tenant list %+v, want its own 2 tables (first hash %s)", list.Tables, tc.want)
		}
	}

	// Concurrent sweeps over the overlapping handles.
	spec := func(p, q string) service.Spec {
		return service.Spec{
			Type: service.JobFREDSweep, Table: p, Aux: q,
			MinK: 2, MaxK: 8,
			SensitiveLo: 40000, SensitiveHi: 160000,
		}
	}
	var wg sync.WaitGroup
	var aSt, bSt service.Status
	wg.Add(2)
	go func() { defer wg.Done(); st := acme.submit(spec(aP.ID, aQ.ID)); aSt = acme.poll(st.ID) }()
	go func() { defer wg.Done(); st := globex.submit(spec(bP.ID, bQ.ID)); bSt = globex.poll(st.ID) }()
	wg.Wait()
	if aSt.State != service.StateDone || bSt.State != service.StateDone {
		t.Fatalf("sweeps ended %s / %s", aSt.State, bSt.State)
	}
	if aSt.Tenant != "acme" || bSt.Tenant != "globex" {
		t.Fatalf("job tenants %q / %q", aSt.Tenant, bSt.Tenant)
	}

	// The two releases differ (different cohorts) even though every handle
	// collided: download both and compare.
	respA := acme.do(http.MethodGet, "/v1/jobs/"+aSt.ID+"/result", nil, nil)
	defer respA.Body.Close()
	relA, err := dataset.ReadCSV(respA.Body)
	if err != nil {
		t.Fatal(err)
	}
	if relA.NumRows() != scA.P.NumRows() {
		t.Fatalf("acme's release has %d rows, want %d", relA.NumRows(), scA.P.NumRows())
	}

	// Cross-tenant access: every route answers 404 for a foreign ID —
	// including IDs that do not collide, so the foreign namespace is fully
	// unobservable.
	globex.expect(http.MethodGet, "/v1/jobs/"+aSt.ID, nil, http.StatusNotFound, nil)
	globex.expect(http.MethodGet, "/v1/jobs/"+aSt.ID+"/result", nil, http.StatusNotFound, nil)
	globex.expect(http.MethodGet, "/v1/jobs/"+aSt.ID+"/events", nil, http.StatusNotFound, nil)
	globex.expect(http.MethodPost, "/v1/jobs/"+aSt.ID+"/cancel", nil, http.StatusNotFound, nil)
	globex.expect(http.MethodDelete, "/v1/jobs/"+aSt.ID, nil, http.StatusNotFound, nil)
	// (globex's own job with acme's job ID — the IDs are global, so a
	// colliding read is impossible; its own job is reachable.)
	globex.expect(http.MethodGet, "/v1/jobs/"+bSt.ID, nil, http.StatusOK, nil)

	// acme's job list shows only acme's job.
	var jobs struct {
		Jobs []service.Status `json:"jobs"`
	}
	acme.expect(http.MethodGet, "/v1/jobs", nil, http.StatusOK, &jobs)
	if len(jobs.Jobs) != 1 || jobs.Jobs[0].ID != aSt.ID {
		t.Fatalf("acme's job list %+v", jobs.Jobs)
	}

	// Deleting the shared handle in globex's namespace must not touch
	// acme's table.
	globex.expect(http.MethodDelete, "/v1/tables/"+bQ.ID, nil, http.StatusNoContent, nil)
	acme.expect(http.MethodGet, "/v1/tables/"+aQ.ID, nil, http.StatusOK, nil)
	// And a deleted own handle is 404 afterwards.
	globex.expect(http.MethodGet, "/v1/tables/"+bQ.ID, nil, http.StatusNotFound, nil)
}

// TestTenantQuotasOverHTTP: a tenant at its table or concurrent-job quota
// gets 429 Too Many Requests; other tenants are unaffected.
func TestTenantQuotasOverHTTP(t *testing.T) {
	// The engine's workers stay parked: submitted jobs remain pending, so
	// the single job slot is provably occupied when the second submit lands
	// — no racing against job completion.
	_, acme, globex := newAuthServer(t, false, &service.Quotas{
		Default: service.Quota{MaxTables: 2, MaxJobs: 1},
	})
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 20})
	if err != nil {
		t.Fatal(err)
	}
	aP := acme.upload("P", sc.P)
	acme.upload("Q", sc.Q) // acme is now at its table quota of 2

	// Third upload: table quota exceeded.
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, sc.P); err != nil {
		t.Fatal(err)
	}
	resp := acme.do(http.MethodPost, "/v1/tables?name=extra", buf.Bytes(), nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota upload status %d, want 429", resp.StatusCode)
	}
	if got := retryAfterSecs(t, resp); got < 1 {
		t.Fatalf("over-quota upload Retry-After %d, want >= 1s", got)
	}
	errorBody(t, resp)
	// globex still has its own table budget.
	globex.upload("P", sc.Q)

	// The pending job occupies acme's single slot; the next submit is 429.
	st := acme.submit(service.Spec{Type: service.JobAnonymize, Table: aP.ID, K: 2})
	body, _ := json.Marshal(service.Spec{Type: service.JobAnonymize, Table: aP.ID, K: 3})
	resp2 := acme.do(http.MethodPost, "/v1/jobs", body, nil)
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit status %d, want 429", resp2.StatusCode)
	}
	if got := retryAfterSecs(t, resp2); got < 1 {
		t.Fatalf("over-quota submit Retry-After %d, want >= 1s", got)
	}
	errorBody(t, resp2)
	// globex has its own job budget.
	bP := globex.upload("Q", sc.P)
	globex.submit(service.Spec{Type: service.JobAnonymize, Table: bP.ID, K: 2})

	// Cancelling the pending job frees the slot; acme can submit again.
	acme.expect(http.MethodPost, "/v1/jobs/"+st.ID+"/cancel", nil, http.StatusAccepted, nil)
	if got := acme.poll(st.ID); got.State != service.StateCanceled {
		t.Fatalf("canceled pending job ended %s", got.State)
	}
	acme.submit(service.Spec{Type: service.JobAnonymize, Table: aP.ID, K: 4})
}

// TestParseKeys covers the key-file format: comments, quota overrides,
// per-key rate limits, malformed lines, duplicate keys across tenants, bad
// tenant names.
func TestParseKeys(t *testing.T) {
	cfg, err := httpapi.ParseKeys(strings.NewReader(`
# fleet tenants
acme     sk-acme-12345   tables=8 jobs=2 cache=4
globex   sk-globex-12345 rate=1 burst=1
globex   sk-globex-backup
`))
	if err != nil {
		t.Fatal(err)
	}
	for key, tenant := range map[string]string{
		"sk-acme-12345":    "acme",
		"sk-globex-12345":  "globex",
		"sk-globex-backup": "globex",
	} {
		if got, ok := cfg.Auth.Authenticate(key); !ok || got != tenant {
			t.Fatalf("Authenticate(%q) = %q, %v", key, got, ok)
		}
	}
	if _, ok := cfg.Auth.Authenticate("sk-acme-12346"); ok {
		t.Fatal("near-miss key authenticated")
	}
	if q := cfg.Quotas["acme"]; q.MaxTables != 8 || q.MaxJobs != 2 || q.CacheShare != 4 {
		t.Fatalf("acme quota %+v", q)
	}
	if _, ok := cfg.Quotas["globex"]; ok {
		t.Fatal("globex has no quota overrides, none expected")
	}

	// The rate-limited key admits its burst, then refuses with a positive
	// retry hint; the unlimited keys never limit.
	now := time.Now()
	if _, _, limited, _ := cfg.Auth.Admit("sk-globex-12345", now); limited {
		t.Fatal("first request within burst was limited")
	}
	_, found, limited, wait := cfg.Auth.Admit("sk-globex-12345", now)
	if !found || !limited || wait <= 0 {
		t.Fatalf("second immediate request: found=%v limited=%v wait=%v, want limited with a wait", found, limited, wait)
	}
	for i := 0; i < 10; i++ {
		if _, _, limited, _ := cfg.Auth.Admit("sk-acme-12345", now); limited {
			t.Fatal("key without rate= must never be limited")
		}
	}

	for name, file := range map[string]string{
		"missing key":     "acme\n",
		"bad tenant":      "Ac/me sk-key-123456\n",
		"bad quota field": "acme sk-key-123456 tables=lots\n",
		"unknown quota":   "acme sk-key-123456 ponies=3\n",
		"duplicate key":   "acme sk-key-123456\nglobex sk-key-123456\n",
		"short key":       "acme short\n",
		"empty file":      "# nothing\n",
		"bad rate":        "acme sk-key-123456 rate=fast\n",
		"zero rate":       "acme sk-key-123456 rate=0\n",
		"bad burst":       "acme sk-key-123456 rate=1 burst=none\n",
		"burst w/o rate":  "acme sk-key-123456 burst=3\n",
	} {
		if _, err := httpapi.ParseKeys(strings.NewReader(file)); err == nil {
			t.Errorf("%s: ParseKeys accepted %q", name, file)
		}
	}
}
