package httpapi_test

// Ops-plane HTTP tests: admission-control 429s carry Retry-After, per-key
// rate limits refuse over-rate traffic the same way, and a SIGHUP-style
// auth reload (SetAuth) races concurrent requests without ever producing a
// wrong status.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/dataset"
	"repro/internal/httpapi"
	"repro/internal/service"
)

// retryAfterSecs parses the Retry-After header as delay-seconds, failing the
// test when it is absent or malformed — every 429 this service emits must
// tell the client when to come back.
func retryAfterSecs(t *testing.T, resp *http.Response) int {
	t.Helper()
	v := resp.Header.Get("Retry-After")
	if v == "" {
		t.Fatal("429 response carries no Retry-After header")
	}
	secs, err := strconv.Atoi(v)
	if err != nil {
		t.Fatalf("Retry-After %q is not delay-seconds: %v", v, err)
	}
	return secs
}

// TestOverloadShedsWith429RetryAfter: a full admission queue turns a submit
// into 429 + Retry-After, and the job that made it in still completes once
// workers start — shedding refuses new work, never abandons accepted work.
func TestOverloadShedsWith429RetryAfter(t *testing.T) {
	checkGoroutineLeaks(t)
	store := service.NewStore()
	// Workers parked: the first job provably occupies the tenant's single
	// pending slot when the second submit lands.
	engine := service.NewEngine(store, service.Options{
		Workers: 1, QueueDepth: 16, MaxPendingPerTenant: 1,
	})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		engine.Shutdown(ctx)
	})
	ts := httptest.NewServer(httpapi.New(store, engine, nil))
	t.Cleanup(ts.Close)
	c := &tenantClient{t: t, baseURL: ts.URL}

	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 20})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, sc.P); err != nil {
		t.Fatal(err)
	}
	var info service.TableInfo
	c.expect(http.MethodPost, "/v1/tables?name=P", buf.Bytes(), http.StatusCreated, &info)

	st := c.submit(service.Spec{Type: service.JobAnonymize, Table: info.ID, K: 2})
	body, _ := json.Marshal(service.Spec{Type: service.JobAnonymize, Table: info.ID, K: 3})
	resp := c.do(http.MethodPost, "/v1/jobs", body, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded submit status %d, want 429", resp.StatusCode)
	}
	if secs := retryAfterSecs(t, resp); secs < 1 || secs > 60 {
		t.Fatalf("overload Retry-After %ds outside [1, 60]", secs)
	}
	errorBody(t, resp)

	// The accepted job was shed-adjacent, not shed: it finishes normally.
	engine.Start()
	if got := c.poll(st.ID); got.State != service.StateDone {
		t.Fatalf("in-flight job ended %s after overload shed, want done", got.State)
	}
}

// TestKeyRateLimit429: a key configured with rate=/burst= is refused with
// 429 + Retry-After once its bucket drains, while an unlimited key on the
// same server sails through.
func TestKeyRateLimit429(t *testing.T) {
	checkGoroutineLeaks(t)
	auth, err := httpapi.NewAuthConfig([]httpapi.KeyConfig{
		{Tenant: "acme", Key: "sk-acme-limited-1", RatePerSec: 0.01, Burst: 1},
		{Tenant: "globex", Key: "sk-globex-open-1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	store := service.NewStore()
	engine := service.NewEngine(store, service.Options{Workers: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		engine.Shutdown(ctx)
	})
	ts := httptest.NewServer(httpapi.New(store, engine, nil, httpapi.WithAuth(auth)))
	t.Cleanup(ts.Close)
	limited := &tenantClient{t: t, baseURL: ts.URL, key: "sk-acme-limited-1"}
	open := &tenantClient{t: t, baseURL: ts.URL, key: "sk-globex-open-1"}

	limited.expect(http.MethodGet, "/v1/tables", nil, http.StatusOK, nil)
	resp := limited.do(http.MethodGet, "/v1/tables", nil, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate request status %d, want 429", resp.StatusCode)
	}
	if secs := retryAfterSecs(t, resp); secs < 1 {
		t.Fatalf("rate-limit Retry-After %ds, want >= 1", secs)
	}
	errorBody(t, resp)
	for i := 0; i < 5; i++ {
		open.expect(http.MethodGet, "/v1/tables", nil, http.StatusOK, nil)
	}
}

// TestAuthReloadRacesRequests is the SIGHUP half of satellite 4: SetAuth
// swaps the key set while clients hammer the API. Every response must be a
// coherent verdict from one key set or the other — 200 or 403, never a
// half-applied state (5xx, 401) — and after the dust settles the final key
// set is authoritative in both directions.
func TestAuthReloadRacesRequests(t *testing.T) {
	checkGoroutineLeaks(t)
	oldAuth, err := httpapi.NewAuth(map[string]string{"sk-old-key-111": "acme"})
	if err != nil {
		t.Fatal(err)
	}
	newAuth, err := httpapi.NewAuth(map[string]string{"sk-new-key-222": "acme"})
	if err != nil {
		t.Fatal(err)
	}
	store := service.NewStore()
	engine := service.NewEngine(store, service.Options{Workers: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		engine.Shutdown(ctx)
	})
	api := httpapi.New(store, engine, nil, httpapi.WithAuth(oldAuth))
	ts := httptest.NewServer(api)
	t.Cleanup(ts.Close)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, key := range []string{"sk-old-key-111", "sk-new-key-222"} {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			c := &tenantClient{t: t, baseURL: ts.URL, key: key}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp := c.do(http.MethodGet, "/v1/tables", nil, nil)
				code := resp.StatusCode
				resp.Body.Close()
				if code != http.StatusOK && code != http.StatusForbidden {
					t.Errorf("key %s observed status %d during reload, want 200 or 403", key, code)
					return
				}
			}
		}(key)
	}
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			api.SetAuth(newAuth)
		} else {
			api.SetAuth(oldAuth)
		}
	}
	api.SetAuth(newAuth)
	close(stop)
	wg.Wait()

	// Post-reload, the new key set is authoritative both ways.
	fresh := &tenantClient{t: t, baseURL: ts.URL, key: "sk-new-key-222"}
	fresh.expect(http.MethodGet, "/v1/tables", nil, http.StatusOK, nil)
	stale := &tenantClient{t: t, baseURL: ts.URL, key: "sk-old-key-111"}
	resp := stale.do(http.MethodGet, "/v1/tables", nil, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("revoked key status %d after reload, want 403", resp.StatusCode)
	}
}

// TestHealthzSurfacesRecoveryErrors: a recovery that had to fail a job
// degrades healthz and lists the error, still at HTTP 200 — probes keep the
// process alive, operators see the loss.
func TestHealthzSurfacesRecoveryErrors(t *testing.T) {
	checkGoroutineLeaks(t)
	store := service.NewStore()
	created := time.Now().UTC()
	log := &replayOnlyLog{records: []service.WALRecord{{
		Seq: 1, Kind: service.WALJob, JobID: "job-lost", JobSeq: 1,
		Tenant: service.DefaultTenant,
		Spec: &service.Spec{
			Type: service.JobFREDSweep, Table: "tbl-gone",
			MinK: 2, MaxK: 6, SensitiveLo: 40000, SensitiveHi: 160000,
		},
		Created: &created,
	}}}
	engine := service.NewEngine(store, service.Options{Workers: 1, JobLog: log})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		engine.Shutdown(ctx)
	})
	if _, err := engine.Recover(); err != nil {
		t.Fatal(err)
	}
	engine.Start()
	ts := httptest.NewServer(httpapi.New(store, engine, nil))
	t.Cleanup(ts.Close)

	c := &tenantClient{t: t, baseURL: ts.URL}
	var health struct {
		Status         string   `json:"status"`
		RecoveryErrors []string `json:"recovery_errors"`
	}
	c.expect(http.MethodGet, "/v1/healthz", nil, http.StatusOK, &health)
	if health.Status != "degraded" {
		t.Fatalf("healthz status %q with a recovery loss, want degraded", health.Status)
	}
	if len(health.RecoveryErrors) != 1 {
		t.Fatalf("healthz recovery_errors %v, want one entry", health.RecoveryErrors)
	}
}

// replayOnlyLog feeds canned records to Recover and swallows appends.
type replayOnlyLog struct {
	records []service.WALRecord
}

func (f *replayOnlyLog) AppendWAL(*service.WALRecord) error    { return nil }
func (f *replayOnlyLog) CompactWAL([]*service.WALRecord) error { return nil }
func (f *replayOnlyLog) SyncWAL() error                        { return nil }
func (f *replayOnlyLog) ReplayWAL(fn func(service.WALRecord) error) error {
	for _, rec := range f.records {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}
