package httpapi_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro"
	"repro/internal/service"
)

// End-to-end coverage of the adaptive planner spec fields over REST: k-set
// and budget-bound sweeps, spec validation, and the SSE shape of the skip
// events a bisecting sweep publishes. Runs in CI's planner job — keep test
// names matching 'Planner|WarmStart'.

// TestEndToEndAdaptivePlannerSpecs uploads a monotone-utility cohort and
// drives the new spec fields through the full REST stack.
func TestEndToEndAdaptivePlannerSpecs(t *testing.T) {
	// The level index is disabled so the adaptive job bisects instead of
	// warm-starting from the probe sweep — this test wants skip events.
	ts, _, _ := newTestServerEngine(t, true, service.Options{
		Workers: 2, SweepWorkers: 2, LevelIndexSize: -1,
	})
	sc, err := repro.UniversityScenario(repro.ScenarioOptions{Seed: 42, N: 400, DirectAux: true})
	if err != nil {
		t.Fatal(err)
	}
	pInfo := uploadTable(t, ts.URL, "faculty-P", sc.P)
	qInfo := uploadTable(t, ts.URL, "web-Q", sc.Q)
	base := service.Spec{
		Type: service.JobFREDSweep, Table: pInfo.ID, Aux: qInfo.ID,
		MinK: 2, MaxK: 16,
		SensitiveLo: 40000, SensitiveHi: 160000,
	}

	// Probe sweep: learns the utility series so the adaptive sweep below
	// can carry explicit thresholds, and doubles as the exhaustive baseline.
	probe := submitJob(t, ts.URL, base)
	probe = pollJob(t, ts.URL, probe.ID)
	if probe.State != service.StateDone {
		t.Fatalf("probe sweep ended %s: %s", probe.State, probe.Error)
	}
	var tu float64
	for _, ls := range probe.Levels {
		if ls.K == 6 {
			tu = ls.Utility
		}
	}
	if tu == 0 {
		t.Fatal("probe sweep did not report a k=6 level")
	}

	t.Run("k-set", func(t *testing.T) {
		spec := base
		spec.KSet = []int{2, 4, 8, 12}
		st := submitJob(t, ts.URL, spec)
		st = pollJob(t, ts.URL, st.ID)
		if st.State != service.StateDone {
			t.Fatalf("k-set sweep ended %s: %s", st.State, st.Error)
		}
		if len(st.Levels) != 4 {
			t.Fatalf("k-set sweep reports %d levels, want 4", len(st.Levels))
		}
		for i, want := range []int{2, 4, 8, 12} {
			if st.Levels[i].K != want {
				t.Fatalf("level %d is k=%d, want k=%d", i, st.Levels[i].K, want)
			}
		}
	})

	t.Run("budget", func(t *testing.T) {
		spec := base
		spec.BudgetMS = 60_000 // generous: asserts the path, not the truncation
		st := submitJob(t, ts.URL, spec)
		st = pollJob(t, ts.URL, st.ID)
		if st.State != service.StateDone {
			t.Fatalf("budget sweep ended %s: %s", st.State, st.Error)
		}
		if _, partial := st.Summary["partial"]; partial {
			t.Fatalf("a 60s budget on a 400-row cohort must not truncate: %v", st.Summary)
		}
		if got := int(st.Summary["levels"]); got != 15 {
			t.Fatalf("budget sweep decided over %d levels, want 15", got)
		}
	})

	t.Run("validation", func(t *testing.T) {
		for name, mutate := range map[string]func(*service.Spec){
			"k_set with stride":    func(sp *service.Spec) { sp.KSet = []int{2, 4}; sp.Stride = 2 },
			"single k_set entry":   func(sp *service.Spec) { sp.KSet = []int{4} },
			"k_set below minimum":  func(sp *service.Spec) { sp.KSet = []int{1, 4} },
			"negative budget":      func(sp *service.Spec) { sp.BudgetMS = -5 },
			"adaptive on non-fred": func(sp *service.Spec) { sp.Type = service.JobAttack; sp.K = 3; sp.Adaptive = true },
		} {
			spec := base
			mutate(&spec)
			body, err := json.Marshal(spec)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusBadRequest {
				resp.Body.Close()
				t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
			}
			errorBody(t, resp)
			resp.Body.Close()
		}
	})

	t.Run("skip events over SSE", func(t *testing.T) {
		spec := base
		spec.Tu = tu // band k=2..6 — bisection skips the tail
		spec.Adaptive = true
		st := submitJob(t, ts.URL, spec)
		st = pollJob(t, ts.URL, st.ID)
		if st.State != service.StateDone {
			t.Fatalf("adaptive sweep ended %s: %s", st.State, st.Error)
		}
		if got := int(st.Summary["levels_evaluated"]); got >= 15 {
			t.Fatalf("adaptive sweep evaluated %d levels, want fewer than 15", got)
		}

		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("events status %d", resp.StatusCode)
		}
		var skips []service.Skip
		event := ""
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: ") && event == "skip":
				var ev service.Event
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
					t.Fatalf("skip event payload does not parse: %v", err)
				}
				if ev.Skip == nil {
					t.Fatalf("skip event without a skip payload: %s", line)
				}
				skips = append(skips, *ev.Skip)
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("read event stream: %v", err)
		}
		if len(skips) == 0 {
			t.Fatal("adaptive sweep streamed no skip events")
		}
		for _, sk := range skips {
			if sk.Reason != "bisection" {
				t.Errorf("skip reason %q, want bisection", sk.Reason)
			}
			if sk.FromK < 2 || sk.ToK > 16 || sk.FromK > sk.ToK {
				t.Errorf("skip range k=%d..%d outside the requested sweep", sk.FromK, sk.ToK)
			}
		}
	})
}
