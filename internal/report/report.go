// Package report renders FRED runs, sweeps and attack assessments as
// human-readable text and Markdown — the artifact a data publisher would
// attach to a release decision. It is presentation-only: all numbers come
// from internal/core, internal/metrics and internal/risk.
package report

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/risk"
)

// Options configures rendering.
type Options struct {
	// Markdown emits GitHub-flavoured Markdown tables; the default is
	// aligned plain text.
	Markdown bool
	// Title heads the report.
	Title string
}

// WriteSweep renders the level sweep — the data behind Figures 4–7.
func WriteSweep(w io.Writer, levels []core.LevelResult, opts Options) error {
	if len(levels) == 0 {
		return errors.New("report: empty sweep")
	}
	if err := writeTitle(w, opts, "Anonymization level sweep"); err != nil {
		return err
	}
	head := []string{"k", "P∘P' (before)", "P∘P̂ (after)", "gain G", "utility U", "candidate"}
	rows := make([][]string, len(levels))
	for i, lr := range levels {
		mark := ""
		if lr.Candidate {
			mark = "yes"
		}
		rows[i] = []string{
			fmt.Sprintf("%d", lr.K),
			fmt.Sprintf("%.6g", lr.Before),
			fmt.Sprintf("%.6g", lr.After),
			fmt.Sprintf("%.6g", lr.Gain),
			fmt.Sprintf("%.6g", lr.Utility),
			mark,
		}
	}
	return writeTable(w, head, rows, opts)
}

// WriteFRED renders a full Algorithm 1 result: the sweep, the solution
// space with H, and the chosen level.
func WriteFRED(w io.Writer, res *core.Result, opts Options) error {
	if res == nil {
		return errors.New("report: nil result")
	}
	if err := WriteSweep(w, res.Levels, opts); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if err := writeTitle(w, opts, "Solution space (Figure 8)"); err != nil {
		return err
	}
	head := []string{"k", "H"}
	rows := make([][]string, len(res.Candidates))
	for i, li := range res.Candidates {
		rows[i] = []string{
			fmt.Sprintf("%d", res.Levels[li].K),
			fmt.Sprintf("%.4f", res.H[i]),
		}
	}
	if err := writeTable(w, head, rows, opts); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\nOptimal anonymization level: k = %d (H = %.4f)\n", res.OptimalK, res.Hmax)
	return err
}

// WriteAssessment renders a record-level disclosure risk report.
func WriteAssessment(w io.Writer, a *risk.Assessment, opts Options) error {
	if a == nil {
		return errors.New("report: nil assessment")
	}
	if err := writeTitle(w, opts, "Disclosure risk"); err != nil {
		return err
	}
	head := []string{"metric", "value"}
	rows := [][]string{
		{"records", fmt.Sprintf("%d", a.Records)},
		{"±10% breach rate", fmt.Sprintf("%.0f%%", 100*a.Breach10)},
		{"±20% breach rate", fmt.Sprintf("%.0f%%", 100*a.Breach20)},
		{"income-class hit rate", fmt.Sprintf("%.0f%%", 100*a.Class3)},
		{"midpoint-baseline class hit", fmt.Sprintf("%.0f%%", 100*a.BaselineClass3)},
		{"rank exposure (Spearman)", fmt.Sprintf("%.2f", a.Rank)},
	}
	return writeTable(w, head, rows, opts)
}

// WriteAdaptive renders an adaptive-defense result.
func WriteAdaptive(w io.Writer, res *core.AdaptiveResult, opts Options) error {
	if res == nil {
		return errors.New("report: nil adaptive result")
	}
	if err := writeTitle(w, opts, "Adaptive defense"); err != nil {
		return err
	}
	head := []string{"metric", "value"}
	rows := [][]string{
		{"rounds", fmt.Sprintf("%d", res.Rounds)},
		{"records suppressed", fmt.Sprintf("%d", len(res.Suppressed))},
		{"exposure before", fmt.Sprintf("%.0f%%", 100*res.ExposedBefore)},
		{"exposure after", fmt.Sprintf("%.0f%%", 100*res.ExposedAfter)},
		{"utility", fmt.Sprintf("%.6g", res.Utility)},
		{"exhausted", fmt.Sprintf("%v", res.Exhausted)},
	}
	return writeTable(w, head, rows, opts)
}

func writeTitle(w io.Writer, opts Options, def string) error {
	title := opts.Title
	if title == "" {
		title = def
	}
	var err error
	if opts.Markdown {
		_, err = fmt.Fprintf(w, "## %s\n\n", title)
	} else {
		_, err = fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len([]rune(title))))
	}
	return err
}

func writeTable(w io.Writer, head []string, rows [][]string, opts Options) error {
	for _, r := range rows {
		if len(r) != len(head) {
			return fmt.Errorf("report: row has %d cells, header has %d", len(r), len(head))
		}
	}
	if opts.Markdown {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(head, " | ")); err != nil {
			return err
		}
		seps := make([]string, len(head))
		for i := range seps {
			seps[i] = "---"
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
			return err
		}
		for _, r := range rows {
			if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | ")); err != nil {
				return err
			}
		}
		return nil
	}
	widths := make([]int, len(head))
	for i, h := range head {
		widths[i] = len([]rune(h))
	}
	for _, r := range rows {
		for i, c := range r {
			if n := len([]rune(c)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len([]rune(c)); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(head); err != nil {
		return err
	}
	for _, r := range rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}
