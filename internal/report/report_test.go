package report

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/risk"
)

func sampleLevels() []core.LevelResult {
	return []core.LevelResult{
		{K: 2, Before: 6.4e8, After: 3.3e8, Gain: 3.1e8, Utility: 0.0125, Candidate: false},
		{K: 3, Before: 6.4e8, After: 3.4e8, Gain: 3.0e8, Utility: 0.0081, Candidate: true},
	}
}

func TestWriteSweepText(t *testing.T) {
	var b strings.Builder
	if err := WriteSweep(&b, sampleLevels(), Options{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Anonymization level sweep", "P∘P̂", "yes", "0.0125"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Plain text has no Markdown pipes.
	if strings.Contains(out, "| k |") {
		t.Error("text mode emitted markdown")
	}
}

func TestWriteSweepMarkdown(t *testing.T) {
	var b strings.Builder
	if err := WriteSweep(&b, sampleLevels(), Options{Markdown: true, Title: "Custom"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "## Custom") {
		t.Errorf("missing markdown title:\n%s", out)
	}
	if !strings.Contains(out, "| --- |") {
		t.Errorf("missing separator row:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title, blank, header, separator, two rows.
	if len(lines) != 6 {
		t.Errorf("markdown lines = %d:\n%s", len(lines), out)
	}
}

func TestWriteSweepEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteSweep(&b, nil, Options{}); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestWriteFRED(t *testing.T) {
	res := &core.Result{
		Levels:     sampleLevels(),
		H:          []float64{0.93},
		Candidates: []int{1},
		OptimalK:   3,
		Hmax:       0.93,
	}
	var b strings.Builder
	if err := WriteFRED(&b, res, Options{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Solution space", "Optimal anonymization level: k = 3", "0.9300"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if err := WriteFRED(&b, nil, Options{}); err == nil {
		t.Error("nil result accepted")
	}
}

func TestWriteAssessment(t *testing.T) {
	a := &risk.Assessment{
		Records: 40, Breach10: 0.45, Breach20: 0.75,
		Class3: 0.62, BaselineClass3: 0.62, Rank: 0.96,
	}
	var b strings.Builder
	if err := WriteAssessment(&b, a, Options{Markdown: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"45%", "75%", "0.96", "Disclosure risk"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if err := WriteAssessment(&b, nil, Options{}); err == nil {
		t.Error("nil assessment accepted")
	}
}

func TestWriteAdaptive(t *testing.T) {
	res := &core.AdaptiveResult{
		Rounds: 18, Suppressed: make([]int, 18),
		ExposedBefore: 0.45, ExposedAfter: 0.38,
		Utility: 0.0011, Exhausted: true,
	}
	var b strings.Builder
	if err := WriteAdaptive(&b, res, Options{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Adaptive defense", "45%", "38%", "true", "18"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if err := WriteAdaptive(&b, nil, Options{}); err == nil {
		t.Error("nil adaptive accepted")
	}
}

func TestTextAlignment(t *testing.T) {
	var b strings.Builder
	if err := WriteAssessment(&b, &risk.Assessment{Records: 7}, Options{}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	// Header underline matches title length.
	if len(lines) < 3 || len(lines[1]) != len([]rune(lines[0])) {
		t.Errorf("underline mismatch:\n%s", b.String())
	}
}
