// Package risk quantifies per-record disclosure risk — the record-level
// view of the paper's aggregate dissimilarity. The paper's Robert anecdote
// reasons in income classes ("falls into the upper category of the High
// income class"); this package turns that reasoning into measurable rates:
// how many individuals does a fusion attack actually place within tolerance,
// into the right class, or in the right rank order?
package risk

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
)

// ErrLength is returned when truth and estimate series are misaligned.
var ErrLength = errors.New("risk: truth and estimate lengths differ")

// BreachRate returns the fraction of records whose estimate falls within
// relTol (relative, e.g. 0.1 = ±10%) of the true value — the interval
// disclosure rate. Records with zero truth compare absolutely against
// relTol.
func BreachRate(truth, est []float64, relTol float64) (float64, error) {
	if len(truth) != len(est) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLength, len(truth), len(est))
	}
	if len(truth) == 0 {
		return 0, errors.New("risk: empty series")
	}
	if relTol < 0 {
		return 0, fmt.Errorf("risk: negative tolerance %g", relTol)
	}
	var hits int
	for i := range truth {
		bound := relTol * math.Abs(truth[i])
		if truth[i] == 0 {
			bound = relTol
		}
		if math.Abs(est[i]-truth[i]) <= bound {
			hits++
		}
	}
	return float64(hits) / float64(len(truth)), nil
}

// ClassDisclosure splits [lo, hi] into bands equal-width classes (the
// paper's Low/Medium/High income classes) and returns the fraction of
// records whose estimate lands in the true value's class.
func ClassDisclosure(truth, est []float64, lo, hi float64, bands int) (float64, error) {
	if len(truth) != len(est) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLength, len(truth), len(est))
	}
	if len(truth) == 0 {
		return 0, errors.New("risk: empty series")
	}
	if bands < 2 {
		return 0, fmt.Errorf("risk: need ≥ 2 bands, got %d", bands)
	}
	if hi <= lo {
		return 0, fmt.Errorf("risk: empty range [%g, %g]", lo, hi)
	}
	band := func(x float64) int {
		i := int((x - lo) / (hi - lo) * float64(bands))
		if i < 0 {
			i = 0
		}
		if i >= bands {
			i = bands - 1
		}
		return i
	}
	var hits int
	for i := range truth {
		if band(truth[i]) == band(est[i]) {
			hits++
		}
	}
	return float64(hits) / float64(len(truth)), nil
}

// RankExposure returns the Spearman rank correlation between the true and
// estimated series — ordering disclosure. 1 means the adversary knows
// exactly who out-earns whom even if absolute values are off.
func RankExposure(truth, est []float64) (float64, error) {
	if len(truth) != len(est) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLength, len(truth), len(est))
	}
	n := len(truth)
	if n < 2 {
		return 0, errors.New("risk: rank exposure needs ≥ 2 records")
	}
	rt := ranks(truth)
	re := ranks(est)
	// Pearson correlation of the rank vectors (handles ties via midranks).
	var mt, me float64
	for i := 0; i < n; i++ {
		mt += rt[i]
		me += re[i]
	}
	mt /= float64(n)
	me /= float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := rt[i]-mt, re[i]-me
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// ranks returns midranks (average rank for ties), 1-based.
func ranks(xs []float64) []float64 {
	n := len(xs)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return xs[order[a]] < xs[order[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[order[j+1]] == xs[order[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1
		for s := i; s <= j; s++ {
			out[order[s]] = mid
		}
		i = j + 1
	}
	return out
}

// ReidentificationRisk returns the journalist re-identification risk of a
// release: for each record, 1/|E| where E is its quasi-identifier
// equivalence class; the result is the mean (average prosecutor risk) and
// max (worst record) over the table.
func ReidentificationRisk(t *dataset.Table) (mean, max float64, err error) {
	qis := t.Schema().IndicesOf(dataset.QuasiIdentifier)
	if len(qis) == 0 {
		return 0, 0, errors.New("risk: table has no quasi-identifier columns")
	}
	if t.NumRows() == 0 {
		return 0, 0, errors.New("risk: empty table")
	}
	var sum float64
	for _, g := range t.GroupBy(qis) {
		r := 1 / float64(len(g))
		sum += r * float64(len(g))
		if r > max {
			max = r
		}
	}
	return sum / float64(t.NumRows()), max, nil
}

// Assessment is the per-attack risk report.
type Assessment struct {
	// Records is the cohort size.
	Records int
	// Breach10 and Breach20 are the ±10% and ±20% interval disclosure
	// rates.
	Breach10, Breach20 float64
	// Class3 is the 3-band (Low/Med/High) class disclosure rate.
	Class3 float64
	// Rank is the Spearman rank exposure.
	Rank float64
	// BaselineClass3 is the expected class rate for the range-midpoint
	// guesser, for contrast.
	BaselineClass3 float64
}

// Assess compares the adversary's estimate table against the truth on the
// named sensitive column and computes the standard report.
func Assess(p, phat *dataset.Table, sensitive string, lo, hi float64) (*Assessment, error) {
	if p.NumRows() != phat.NumRows() {
		return nil, fmt.Errorf("%w: %d vs %d rows", ErrLength, p.NumRows(), phat.NumRows())
	}
	ci, err := p.Schema().Lookup(sensitive)
	if err != nil {
		return nil, err
	}
	cj, err := phat.Schema().Lookup(sensitive)
	if err != nil {
		return nil, err
	}
	truth := p.ColumnFloats(ci, 0)
	est := phat.ColumnFloats(cj, 0)
	a := &Assessment{Records: len(truth)}
	if a.Breach10, err = BreachRate(truth, est, 0.10); err != nil {
		return nil, err
	}
	if a.Breach20, err = BreachRate(truth, est, 0.20); err != nil {
		return nil, err
	}
	if a.Class3, err = ClassDisclosure(truth, est, lo, hi, 3); err != nil {
		return nil, err
	}
	if a.Rank, err = RankExposure(truth, est); err != nil {
		return nil, err
	}
	mid := make([]float64, len(truth))
	for i := range mid {
		mid[i] = (lo + hi) / 2
	}
	if a.BaselineClass3, err = ClassDisclosure(truth, mid, lo, hi, 3); err != nil {
		return nil, err
	}
	return a, nil
}

// String renders the assessment for CLI output.
func (a *Assessment) String() string {
	return fmt.Sprintf(
		"records %d: ±10%% breach %.0f%%, ±20%% breach %.0f%%, class hit %.0f%% (midpoint baseline %.0f%%), rank exposure %.2f",
		a.Records, 100*a.Breach10, 100*a.Breach20, 100*a.Class3, 100*a.BaselineClass3, a.Rank)
}
