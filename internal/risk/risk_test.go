package risk

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBreachRate(t *testing.T) {
	truth := []float64{100, 200, 300, 400}
	est := []float64{105, 250, 300, 500} // within 10%: 105 (5%), 300 (0%) → 2/4
	r, err := BreachRate(truth, est, 0.10)
	if err != nil || r != 0.5 {
		t.Errorf("BreachRate = %g, %v", r, err)
	}
	// ±25%: 105, 250, 300, 500 all within → 1.0
	r, err = BreachRate(truth, est, 0.25)
	if err != nil || r != 1 {
		t.Errorf("BreachRate(0.25) = %g, %v", r, err)
	}
	// Zero truth compares absolutely.
	r, err = BreachRate([]float64{0}, []float64{0.05}, 0.1)
	if err != nil || r != 1 {
		t.Errorf("zero-truth = %g, %v", r, err)
	}
	if _, err := BreachRate(truth, est[:2], 0.1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := BreachRate(nil, nil, 0.1); err == nil {
		t.Error("empty accepted")
	}
	if _, err := BreachRate(truth, est, -1); err == nil {
		t.Error("negative tolerance accepted")
	}
}

func TestClassDisclosure(t *testing.T) {
	// Range [0, 90], 3 bands: [0,30), [30,60), [60,90].
	truth := []float64{10, 40, 80}
	est := []float64{25, 65, 85} // bands 0,2,2 vs truth 0,1,2 → 2/3
	r, err := ClassDisclosure(truth, est, 0, 90, 3)
	if err != nil || !almost(r, 2.0/3, 1e-12) {
		t.Errorf("ClassDisclosure = %g, %v", r, err)
	}
	// Out-of-range values clamp to edge bands.
	r, err = ClassDisclosure([]float64{-5}, []float64{5}, 0, 90, 3)
	if err != nil || r != 1 {
		t.Errorf("clamped = %g, %v", r, err)
	}
	if _, err := ClassDisclosure(truth, est, 0, 90, 1); err == nil {
		t.Error("1 band accepted")
	}
	if _, err := ClassDisclosure(truth, est, 9, 9, 3); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := ClassDisclosure(truth, est[:1], 0, 90, 3); err == nil {
		t.Error("mismatch accepted")
	}
	if _, err := ClassDisclosure(nil, nil, 0, 90, 3); err == nil {
		t.Error("empty accepted")
	}
}

func TestRankExposure(t *testing.T) {
	truth := []float64{10, 20, 30, 40}
	if r, err := RankExposure(truth, []float64{1, 2, 3, 4}); err != nil || !almost(r, 1, 1e-12) {
		t.Errorf("perfect order = %g, %v", r, err)
	}
	if r, err := RankExposure(truth, []float64{4, 3, 2, 1}); err != nil || !almost(r, -1, 1e-12) {
		t.Errorf("reversed = %g, %v", r, err)
	}
	if r, err := RankExposure(truth, []float64{7, 7, 7, 7}); err != nil || r != 0 {
		t.Errorf("constant estimate = %g, %v", r, err)
	}
	// Midranks on ties: swapping tied elements changes nothing.
	r1, err := RankExposure([]float64{1, 2, 2, 3}, []float64{10, 20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RankExposure([]float64{1, 2, 2, 3}, []float64{10, 30, 20, 40})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r1, r2, 1e-12) {
		t.Errorf("tie handling differs: %g vs %g", r1, r2)
	}
	if _, err := RankExposure([]float64{1}, []float64{1}); err == nil {
		t.Error("single record accepted")
	}
	if _, err := RankExposure(truth, truth[:2]); err == nil {
		t.Error("mismatch accepted")
	}
}

func riskTable(t *testing.T, groups []string) *dataset.Table {
	t.Helper()
	tb := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "G", Class: dataset.QuasiIdentifier, Kind: dataset.Text},
	))
	for _, g := range groups {
		tb.MustAppendRow(dataset.Str(g))
	}
	return tb
}

func TestReidentificationRisk(t *testing.T) {
	// Classes of sizes 1 and 3: mean = (1·1 + 3·(1/3))/4 = 0.5, max = 1.
	tb := riskTable(t, []string{"a", "b", "b", "b"})
	mean, max, err := ReidentificationRisk(tb)
	if err != nil || !almost(mean, 0.5, 1e-12) || max != 1 {
		t.Errorf("risk = (%g, %g, %v)", mean, max, err)
	}
	// Uniform pairs: mean = max = 0.5.
	tb = riskTable(t, []string{"a", "a", "b", "b"})
	mean, max, err = ReidentificationRisk(tb)
	if err != nil || mean != 0.5 || max != 0.5 {
		t.Errorf("pairs = (%g, %g, %v)", mean, max, err)
	}
	if _, _, err := ReidentificationRisk(riskTable(t, nil)); err == nil {
		t.Error("empty accepted")
	}
	noQI := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "S", Class: dataset.Sensitive, Kind: dataset.Number}))
	if _, _, err := ReidentificationRisk(noQI); err == nil {
		t.Error("no-QI accepted")
	}
}

func assessTables(t *testing.T, truth, est []float64) (*dataset.Table, *dataset.Table) {
	t.Helper()
	mk := func(vals []float64) *dataset.Table {
		tb := dataset.New(dataset.MustSchema(
			dataset.Column{Name: "Q", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
			dataset.Column{Name: "Salary", Class: dataset.Sensitive, Kind: dataset.Number},
		))
		for i, v := range vals {
			tb.MustAppendRow(dataset.Num(float64(i)), dataset.Num(v))
		}
		return tb
	}
	return mk(truth), mk(est)
}

func TestAssess(t *testing.T) {
	truth := []float64{50000, 80000, 110000, 140000}
	est := []float64{52000, 95000, 108000, 139000}
	p, phat := assessTables(t, truth, est)
	a, err := Assess(p, phat, "Salary", 40000, 160000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Records != 4 {
		t.Errorf("records = %d", a.Records)
	}
	// 52000 (4%), 108000 (1.8%), 139000 (0.7%) within 10%; 95000 is 18.75%.
	if !almost(a.Breach10, 0.75, 1e-12) {
		t.Errorf("Breach10 = %g", a.Breach10)
	}
	if !almost(a.Breach20, 1, 1e-12) {
		t.Errorf("Breach20 = %g", a.Breach20)
	}
	if a.Rank < 0.99 {
		t.Errorf("Rank = %g", a.Rank)
	}
	if a.Class3 <= a.BaselineClass3 {
		t.Errorf("Class3 %g not above baseline %g", a.Class3, a.BaselineClass3)
	}
	if a.String() == "" {
		t.Error("empty String()")
	}
	// Errors.
	if _, err := Assess(p, phat, "Nope", 0, 1); err == nil {
		t.Error("unknown column accepted")
	}
	short := p.Select(func([]dataset.Value) bool { return false })
	if _, err := Assess(p, short, "Salary", 0, 1); err == nil {
		t.Error("row mismatch accepted")
	}
}

// Property: breach rate is monotone in the tolerance.
func TestBreachRateMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, tolRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 20 {
			raw = raw[:20]
		}
		n := len(raw) / 2
		truth := make([]float64, n)
		est := make([]float64, n)
		for i := 0; i < n; i++ {
			truth[i] = float64(raw[i]) + 1
			est[i] = float64(raw[n+i]) + 1
		}
		t1 := float64(tolRaw) / 512
		t2 := t1 * 2
		r1, err1 := BreachRate(truth, est, t1)
		r2, err2 := BreachRate(truth, est, t2)
		if err1 != nil || err2 != nil {
			return false
		}
		return r1 <= r2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: rank exposure is invariant under any strictly monotone transform
// of the estimate.
func TestRankExposureMonotoneInvarianceProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 4 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		n := len(raw) / 2
		truth := make([]float64, n)
		est := make([]float64, n)
		esq := make([]float64, n)
		for i := 0; i < n; i++ {
			truth[i] = float64(raw[i])
			est[i] = float64(raw[n+i])
			esq[i] = est[i]*est[i] + 3*est[i] // strictly monotone for x ≥ 0
		}
		r1, err1 := RankExposure(truth, est)
		r2, err2 := RankExposure(truth, esq)
		if err1 != nil || err2 != nil {
			return false
		}
		return almost(r1, r2, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
