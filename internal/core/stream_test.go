package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/microagg"
)

// TestSweepStreamOrderedUnderParallelWorkers: whatever the worker count,
// levels are emitted gap-free in ascending k order and bit-identical to the
// sequential sweep.
func TestSweepStreamOrderedUnderParallelWorkers(t *testing.T) {
	p, q := universityFixture(t, 40)
	atk := AttackConfig{Aux: q, SensitiveRange: salaryRange()}
	seq, err := Sweep(p, microagg.New(), atk, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 4, 16} {
		var got []LevelResult
		err := SweepStream(context.Background(), p, StreamConfig{
			Anonymizer: microagg.New(),
			Attack:     atk,
			MinK:       2,
			MaxK:       12,
			Workers:    workers,
		}, func(lr LevelResult) error {
			got = append(got, lr)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(seq) {
			t.Fatalf("workers=%d: emitted %d levels, want %d", workers, len(got), len(seq))
		}
		for i, lr := range got {
			if lr.K != i+2 {
				t.Fatalf("workers=%d: emission %d has k=%d, want %d (k-order violated)", workers, i, lr.K, i+2)
			}
			if lr.Before != seq[i].Before || lr.After != seq[i].After ||
				lr.Gain != seq[i].Gain || lr.Utility != seq[i].Utility {
				t.Errorf("workers=%d k=%d: streamed level differs from sequential", workers, lr.K)
			}
		}
	}
}

// TestSweepStreamEarlyStopPastTable: a level above MinK outgrowing the table
// ends the series cleanly; the same condition at MinK is an error.
func TestSweepStreamEarlyStopPastTable(t *testing.T) {
	p, q := universityFixture(t, 10)
	atk := AttackConfig{Aux: q, SensitiveRange: salaryRange()}
	var ks []int
	err := SweepStream(context.Background(), p, StreamConfig{
		Anonymizer: microagg.New(),
		Attack:     atk,
		MinK:       2,
		MaxK:       40,
		Workers:    4,
	}, func(lr LevelResult) error {
		ks = append(ks, lr.K)
		return nil
	})
	if err != nil {
		t.Fatalf("early stop must not be an error: %v", err)
	}
	if len(ks) == 0 || ks[len(ks)-1] > 10 {
		t.Errorf("emitted ks = %v, want a series ending at or before k=10", ks)
	}
	for i, k := range ks {
		if k != i+2 {
			t.Fatalf("emission %d has k=%d: early stop broke k-order", i, k)
		}
	}

	// MinK itself exceeding the table is a sweep error, not an early stop.
	err = SweepStream(context.Background(), p, StreamConfig{
		Anonymizer: microagg.New(),
		Attack:     atk,
		MinK:       11,
		MaxK:       20,
	}, func(LevelResult) error { return nil })
	if err == nil {
		t.Error("first level exceeding the table must fail the sweep")
	}
}

// TestSweepStreamCancellation: cancelling the context mid-sweep aborts
// promptly with context.Canceled and stops emission.
func TestSweepStreamCancellation(t *testing.T) {
	p, q := universityFixture(t, 40)
	atk := AttackConfig{Aux: q, SensitiveRange: salaryRange()}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emitted := 0
	err := SweepStream(ctx, p, StreamConfig{
		Anonymizer: microagg.New(),
		Attack:     atk,
		MinK:       2,
		MaxK:       30,
		Workers:    2,
	}, func(lr LevelResult) error {
		emitted++
		cancel()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if emitted != 1 {
		t.Errorf("emitted %d levels after cancel, want 1", emitted)
	}

	// A context cancelled before the sweep starts emits nothing.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	err = SweepStream(pre, p, StreamConfig{
		Anonymizer: microagg.New(),
		Attack:     atk,
		MinK:       2,
		MaxK:       6,
	}, func(LevelResult) error {
		t.Error("emit called under a pre-cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v, want context.Canceled", err)
	}
}

// TestSweepStreamStopSentinel: emit returning ErrStopSweep ends the sweep
// without error; any other emit error aborts and surfaces verbatim.
func TestSweepStreamStopSentinel(t *testing.T) {
	p, q := universityFixture(t, 40)
	atk := AttackConfig{Aux: q, SensitiveRange: salaryRange()}
	var got []LevelResult
	err := SweepStream(context.Background(), p, StreamConfig{
		Anonymizer: microagg.New(),
		Attack:     atk,
		MinK:       2,
		MaxK:       16,
		Workers:    4,
	}, func(lr LevelResult) error {
		got = append(got, lr)
		if len(got) == 3 {
			return ErrStopSweep
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ErrStopSweep must end the sweep cleanly: %v", err)
	}
	if len(got) != 3 || got[2].K != 4 {
		t.Fatalf("stopped series = %d levels (last k=%d), want 3 ending at k=4", len(got), got[len(got)-1].K)
	}

	boom := fmt.Errorf("emit exploded")
	err = SweepStream(context.Background(), p, StreamConfig{
		Anonymizer: microagg.New(),
		Attack:     atk,
		MinK:       2,
		MaxK:       6,
	}, func(LevelResult) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("emit error = %v, want the callback's error verbatim", err)
	}
}

// TestSweepStreamStartKResume: a sweep resumed from StartK emits exactly the
// tail of the full series, bit-identical, under sequential and parallel
// execution — the contract crash recovery relies on to finish an interrupted
// sweep without changing a single bit of the result.
func TestSweepStreamStartKResume(t *testing.T) {
	p, q := universityFixture(t, 40)
	atk := AttackConfig{Aux: q, SensitiveRange: salaryRange()}
	full, err := Sweep(p, microagg.New(), atk, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		for _, startK := range []int{2, 7, 12} {
			var got []LevelResult
			err := SweepStream(context.Background(), p, StreamConfig{
				Anonymizer: microagg.New(),
				Attack:     atk,
				MinK:       2,
				MaxK:       12,
				StartK:     startK,
				Workers:    workers,
			}, func(lr LevelResult) error {
				got = append(got, lr)
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d startK=%d: %v", workers, startK, err)
			}
			tail := full[startK-2:]
			if len(got) != len(tail) {
				t.Fatalf("workers=%d startK=%d: emitted %d levels, want %d", workers, startK, len(got), len(tail))
			}
			for i, lr := range got {
				if lr.K != tail[i].K {
					t.Fatalf("workers=%d startK=%d: emission %d has k=%d, want %d", workers, startK, i, lr.K, tail[i].K)
				}
				if lr.Before != tail[i].Before || lr.After != tail[i].After ||
					lr.Gain != tail[i].Gain || lr.Utility != tail[i].Utility {
					t.Errorf("workers=%d startK=%d k=%d: resumed level differs from the full sweep", workers, startK, lr.K)
				}
			}
		}
	}
}

// TestSweepStreamStartKPastTableEndsCleanly: a resume point beyond what the
// table supports ends the series cleanly (the caller's seed holds the lower
// levels), even when it is the first level the resumed sweep attempts.
func TestSweepStreamStartKPastTableEndsCleanly(t *testing.T) {
	p, q := universityFixture(t, 10)
	atk := AttackConfig{Aux: q, SensitiveRange: salaryRange()}
	emitted := 0
	err := SweepStream(context.Background(), p, StreamConfig{
		Anonymizer: microagg.New(),
		Attack:     atk,
		MinK:       2,
		MaxK:       40,
		StartK:     11, // table holds 10 records: k=11 exceeds it immediately
		Workers:    2,
	}, func(LevelResult) error {
		emitted++
		return nil
	})
	if err != nil {
		t.Fatalf("resumed sweep past the table must end cleanly: %v", err)
	}
	if emitted != 0 {
		t.Errorf("emitted %d levels past the table, want 0", emitted)
	}
}

// TestSweepStreamValidation mirrors the Sweep/SweepParallel contracts.
func TestSweepStreamValidation(t *testing.T) {
	p, _ := universityFixture(t, 10)
	noop := func(LevelResult) error { return nil }
	if err := SweepStream(context.Background(), p, StreamConfig{MinK: 2, MaxK: 4}, noop); err == nil {
		t.Error("nil anonymizer accepted")
	}
	if err := SweepStream(context.Background(), p, StreamConfig{Anonymizer: microagg.New(), MinK: 1, MaxK: 4}, noop); err == nil {
		t.Error("minK=1 accepted")
	}
	if err := SweepStream(context.Background(), p, StreamConfig{Anonymizer: microagg.New(), MinK: 5, MaxK: 4}, noop); err == nil {
		t.Error("inverted range accepted")
	}
	if err := SweepStream(context.Background(), p, StreamConfig{Anonymizer: microagg.New(), MinK: 2, MaxK: 6, StartK: 7}, noop); err == nil {
		t.Error("StartK above MaxK accepted")
	}
	if err := SweepStream(context.Background(), p, StreamConfig{Anonymizer: microagg.New(), MinK: 3, MaxK: 6, StartK: 2}, noop); err == nil {
		t.Error("StartK below MinK accepted")
	}
}

// TestDecideMatchesRun: Decide over a streamed series reaches Run's exact
// decision — same candidates, same H, same optimal level.
func TestDecideMatchesRun(t *testing.T) {
	p, q := universityFixture(t, 40)
	atk := AttackConfig{Aux: q, SensitiveRange: salaryRange()}
	probe, err := Sweep(p, microagg.New(), atk, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	tp := probe[4].After
	tu := probe[12].Utility
	cfg := Config{Anonymizer: microagg.New(), Attack: atk, Tp: tp, Tu: tu, MaxK: 16}

	want, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Replay Run's loop on the probe series: truncate at the stopping rule,
	// then Decide.
	levels := probe
	for i, lr := range levels {
		if cfg.StopsAfter(lr) {
			levels = levels[:i+1]
			break
		}
	}
	got, err := Decide(levels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.OptimalK != want.OptimalK || got.Hmax != want.Hmax {
		t.Errorf("Decide picked k=%d (H=%g), Run picked k=%d (H=%g)",
			got.OptimalK, got.Hmax, want.OptimalK, want.Hmax)
	}
	if len(got.Candidates) != len(want.Candidates) || len(got.Levels) != len(want.Levels) {
		t.Errorf("Decide: %d candidates over %d levels, Run: %d over %d",
			len(got.Candidates), len(got.Levels), len(want.Candidates), len(want.Levels))
	}
}
