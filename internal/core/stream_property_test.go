package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/microagg"
)

// TestSweepStreamPropertyRandomized is a property-style test of the
// streaming executor: across randomized (but seeded, hence reproducible)
// worker counts, StartK resume offsets and fault injections — consumer
// stops via ErrStopSweep and context cancellations at arbitrary emission
// points — the emitted series is ALWAYS a gap-free, k-ordered prefix of the
// resumed range, bit-identical to the sequential sweep. This is the
// invariant every consumer builds on: the service's WAL checkpoints, the
// crash-resume StartK path and the HTTP event stream all assume concurrency
// and interruption never change what is observed, only how much of it.
func TestSweepStreamPropertyRandomized(t *testing.T) {
	const minK, maxK = 2, 12
	p, q := universityFixture(t, 40)
	atk := AttackConfig{Aux: q, SensitiveRange: salaryRange()}

	// The sequential baseline the paper's Algorithm 1 would compute.
	seq, err := Sweep(p, microagg.New(), atk, minK, maxK)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != maxK-minK+1 {
		t.Fatalf("baseline swept %d levels, want %d", len(seq), maxK-minK+1)
	}

	sameBits := func(a, b LevelResult) bool {
		return a.K == b.K && a.Candidate == b.Candidate &&
			math.Float64bits(a.Before) == math.Float64bits(b.Before) &&
			math.Float64bits(a.After) == math.Float64bits(b.After) &&
			math.Float64bits(a.Gain) == math.Float64bits(b.Gain) &&
			math.Float64bits(a.Utility) == math.Float64bits(b.Utility)
	}

	rng := rand.New(rand.NewSource(20260730))
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		workers := rng.Intn(9) // 0 = one worker per level, 1 = sequential path
		startK := 0
		if rng.Intn(2) == 1 {
			startK = minK + rng.Intn(maxK-minK+1)
		}
		first := startK
		if first == 0 {
			first = minK
		}
		remaining := maxK - first + 1

		// Fault injection: none, consumer stop, or context cancel, at a
		// uniformly random emission index within the resumed range.
		const (
			injNone = iota
			injStop
			injCancel
		)
		inj := rng.Intn(3)
		injAt := rng.Intn(remaining)

		ctx, cancel := context.WithCancel(context.Background())
		var got []LevelResult
		err := SweepStream(ctx, p, StreamConfig{
			Anonymizer: microagg.New(),
			Attack:     atk,
			MinK:       minK,
			MaxK:       maxK,
			StartK:     startK,
			Workers:    workers,
		}, func(lr LevelResult) error {
			got = append(got, lr)
			if len(got)-1 == injAt {
				switch inj {
				case injStop:
					return ErrStopSweep
				case injCancel:
					cancel()
				}
			}
			return nil
		})
		cancel()

		desc := func() string {
			return map[int]string{injNone: "none", injStop: "stop", injCancel: "cancel"}[inj]
		}
		switch inj {
		case injCancel:
			// A cancel during the FINAL emission races sweep completion:
			// both "completed, nil" and "canceled" are legal outcomes. At
			// any earlier emission the cancel must win, because the
			// executor re-checks the context before every next emission.
			lastEmission := injAt == remaining-1
			if !errors.Is(err, context.Canceled) && !(lastEmission && err == nil) {
				t.Fatalf("trial %d (workers=%d startK=%d inj=cancel@%d): err %v, want context.Canceled",
					trial, workers, startK, injAt, err)
			}
			if len(got) != injAt+1 {
				t.Fatalf("trial %d (workers=%d startK=%d): %d levels emitted after a cancel at emission %d",
					trial, workers, startK, len(got), injAt)
			}
		default:
			if err != nil {
				t.Fatalf("trial %d (workers=%d startK=%d inj=%s@%d): %v",
					trial, workers, startK, desc(), injAt, err)
			}
			want := remaining
			if inj == injStop {
				want = injAt + 1
			}
			if len(got) != want {
				t.Fatalf("trial %d (workers=%d startK=%d inj=%s@%d): emitted %d levels, want %d",
					trial, workers, startK, desc(), injAt, len(got), want)
			}
		}

		// The core property: whatever happened, the emissions are the
		// gap-free k-ordered prefix starting at the resume point, and every
		// level is bit-identical to the sequential baseline.
		for i, lr := range got {
			wantK := first + i
			if lr.K != wantK {
				t.Fatalf("trial %d (workers=%d startK=%d): emission %d has k=%d, want %d (gap or disorder)",
					trial, workers, startK, i, lr.K, wantK)
			}
			if !sameBits(lr, seq[wantK-minK]) {
				t.Fatalf("trial %d (workers=%d startK=%d): k=%d differs from the sequential sweep:\n got %+v\nwant %+v",
					trial, workers, startK, lr.K, lr, seq[wantK-minK])
			}
		}
	}
}
