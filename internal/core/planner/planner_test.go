package planner

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/fusion"
	"repro/internal/linkage"
	"repro/internal/metrics"
	"repro/internal/microagg"
	"repro/internal/web"
)

func universityFixture(t testing.TB, n int) (*dataset.Table, *dataset.Table) {
	t.Helper()
	p, profiles, err := datagen.University(datagen.UniversityConfig{Seed: 42, N: n})
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := web.BuildCorpus(profiles, web.GenOptions{Seed: 42, Distractors: 2 * n, PropertyNoise: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	q, err := web.Gather(corpus, p.ColumnStrings(0), web.AcademicLadder, linkage.DefaultMatcher())
	if err != nil {
		t.Fatal(err)
	}
	return p, q
}

func salaryRange() fusion.Range { return fusion.Range{Lo: 40000, Hi: 160000} }

// exhaustiveSeries computes every requested level the slow way, as the
// comparison ground truth.
func exhaustiveSeries(t *testing.T, p, q *dataset.Table, minK, maxK int) []core.LevelResult {
	t.Helper()
	series, err := core.Sweep(p, microagg.New(), core.AttackConfig{Aux: q, SensitiveRange: salaryRange()}, minK, maxK)
	if err != nil {
		t.Fatal(err)
	}
	return series
}

func sameDecision(t *testing.T, want, got *core.Result) {
	t.Helper()
	if got.OptimalK != want.OptimalK {
		t.Fatalf("optimal k = %d, exhaustive picked %d", got.OptimalK, want.OptimalK)
	}
	if got.Hmax != want.Hmax {
		t.Fatalf("Hmax = %v, exhaustive %v (not bit-identical)", got.Hmax, want.Hmax)
	}
	if len(got.H) != len(want.H) {
		t.Fatalf("%d candidates, exhaustive has %d", len(got.H), len(want.H))
	}
	for i := range got.H {
		if got.H[i] != want.H[i] {
			t.Fatalf("H[%d] = %v, exhaustive %v (not bit-identical)", i, got.H[i], want.H[i])
		}
	}
}

func ceilLog2(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

func TestPlannerBisectMatchesExhaustive(t *testing.T) {
	// 400 rows: large enough that the utility series is strictly monotone
	// (the discernibility metric's O(n·k) growth dominates remainder-group
	// jitter), so bisection must complete without falling back.
	p, q := universityFixture(t, 400)
	atk := core.AttackConfig{Aux: q, SensitiveRange: salaryRange()}
	series := exhaustiveSeries(t, p, q, 2, 24)
	// Tu crossing at k=8: the band is the 7-level prefix. Tp mid-series so
	// the noisy After filter is active inside the band.
	tu := series[6].Utility
	tp := series[2].After
	want, err := core.DecideWithin(append([]core.LevelResult(nil), series...), tp, tu, metrics.HOptions{})
	if err != nil {
		t.Fatal(err)
	}

	ks, err := Expand(2, 24, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(context.Background(), p, Config{
		Anonymizer: microagg.New(), Attack: atk,
		Levels: ks, Tp: tp, Tu: tu, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Fallback {
		t.Fatalf("fallback on a monotone utility series: %s", out.FallbackReason)
	}
	if out.Partial {
		t.Fatal("partial without a deadline")
	}
	if out.Evaluated >= out.Requested {
		t.Fatalf("evaluated %d of %d levels: bisection saved nothing", out.Evaluated, out.Requested)
	}
	band := 0
	for _, lr := range series {
		if lr.Utility >= tu {
			band++
		}
	}
	if bound := ceilLog2(len(ks)+1) + band + 1; out.Evaluated > bound {
		t.Fatalf("evaluated %d levels, bisection bound is %d (band %d)", out.Evaluated, bound, band)
	}
	got, err := core.DecideWithin(out.Levels, tp, tu, metrics.HOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameDecision(t, want, got)
	// Every skipped level must be a non-candidate in the exhaustive series —
	// that is the invariant making the sparse decision exact.
	evaluated := map[int]bool{}
	for _, lr := range out.Levels {
		evaluated[lr.K] = true
	}
	for _, lr := range want.Levels {
		if lr.Candidate && !evaluated[lr.K] {
			t.Fatalf("candidate level k=%d was skipped", lr.K)
		}
	}
}

func TestPlannerWarmStartSkipsSeededLevels(t *testing.T) {
	p, q := universityFixture(t, 50)
	atk := core.AttackConfig{Aux: q, SensitiveRange: salaryRange()}
	series := exhaustiveSeries(t, p, q, 2, 16)
	tp, tu, err := core.CalibrateThresholds(series)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.DecideWithin(append([]core.LevelResult(nil), series...), tp, tu, metrics.HOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Seed every third level, plus one outside the requested set (ignored).
	held := map[int]core.LevelResult{}
	for i, lr := range series {
		if i%3 == 0 {
			held[lr.K] = lr
		}
	}
	held[99] = core.LevelResult{K: 99}
	ks, _ := Expand(2, 16, 1, nil)

	var warmSeen, computedSeen int
	out, err := Run(context.Background(), p, Config{
		Anonymizer: microagg.New(), Attack: atk,
		Levels: ks, Held: held, Workers: 2,
		Hooks: Hooks{Level: func(lr core.LevelResult, warm bool) {
			if warm {
				warmSeen++
			} else {
				computedSeen++
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Warm != len(held)-1 {
		t.Fatalf("adopted %d warm levels, want %d (the out-of-set seed must be ignored)", out.Warm, len(held)-1)
	}
	if out.Evaluated != out.Requested-out.Warm {
		t.Fatalf("evaluated %d levels, want exactly the %d-level gap", out.Evaluated, out.Requested-out.Warm)
	}
	if warmSeen != out.Warm || computedSeen != out.Evaluated {
		t.Fatalf("hooks saw %d warm + %d computed, outcome says %d + %d", warmSeen, computedSeen, out.Warm, out.Evaluated)
	}
	got, err := core.DecideWithin(out.Levels, tp, tu, metrics.HOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameDecision(t, want, got)
	for i, lr := range out.Levels {
		if lr.K != series[i].K || lr.After != series[i].After || lr.Utility != series[i].Utility {
			t.Fatalf("level %d: warm-started series diverges from exhaustive at k=%d", i, lr.K)
		}
	}
}

func TestPlannerFallbackOnNonMonotoneSeeds(t *testing.T) {
	p, q := universityFixture(t, 40)
	atk := core.AttackConfig{Aux: q, SensitiveRange: salaryRange()}
	series := exhaustiveSeries(t, p, q, 2, 12)

	// Doctor a seed so Utility RISES in k — the monotonicity violation the
	// planner must detect at adoption time and answer with the exhaustive
	// walk. (Only utility ordering counts: the After series is noisy by
	// nature and its wiggles must never trigger a fallback.)
	held := map[int]core.LevelResult{
		4: series[2],
		6: {K: 6, After: series[4].After, Utility: 2 * series[2].Utility},
	}
	// Tu at k=5 keeps the band small, so bisection would skip the tail —
	// exactly what the detected violation must undo.
	ks, _ := Expand(2, 12, 1, nil)
	var fellBack string
	out, err := Run(context.Background(), p, Config{
		Anonymizer: microagg.New(), Attack: atk,
		Levels: ks, Tp: series[1].After, Tu: series[3].Utility, Held: held,
		Hooks: Hooks{Fallback: func(reason string) { fellBack = reason }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Fallback || fellBack == "" {
		t.Fatal("non-monotone seeds did not trigger the exhaustive fallback")
	}
	if out.Skipped != 0 {
		t.Fatalf("fallback left %d levels skipped; it must evaluate everything", out.Skipped)
	}
	if out.Evaluated != out.Requested-out.Warm {
		t.Fatalf("fallback evaluated %d levels, want the full %d-level remainder", out.Evaluated, out.Requested-out.Warm)
	}
}

func TestPlannerKSetEvaluatesExactlyTheSet(t *testing.T) {
	p, q := universityFixture(t, 40)
	atk := core.AttackConfig{Aux: q, SensitiveRange: salaryRange()}
	series := exhaustiveSeries(t, p, q, 2, 12)
	byK := map[int]core.LevelResult{}
	for _, lr := range series {
		byK[lr.K] = lr
	}

	ks, err := Expand(0, 0, 0, []int{9, 2, 5, 9, 12})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{2, 5, 9, 12}; len(ks) != len(want) {
		t.Fatalf("Expand = %v, want %v", ks, want)
	}
	out, err := Run(context.Background(), p, Config{
		Anonymizer: microagg.New(), Attack: atk, Levels: ks, Workers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Levels) != len(ks) || out.Evaluated != len(ks) {
		t.Fatalf("evaluated %d levels (%d in series), want exactly the %d-level set", out.Evaluated, len(out.Levels), len(ks))
	}
	for i, lr := range out.Levels {
		ref := byK[ks[i]]
		if lr.K != ks[i] || lr.After != ref.After || lr.Utility != ref.Utility || lr.Before != ref.Before {
			t.Fatalf("k=%d: k-set level differs from the exhaustive series", ks[i])
		}
	}
}

func TestPlannerBudgetStopsAtDeadline(t *testing.T) {
	p, q := universityFixture(t, 40)
	atk := core.AttackConfig{Aux: q, SensitiveRange: salaryRange()}
	ks, _ := Expand(2, 16, 1, nil)

	// A clock already past the deadline: only the decidability floor (three
	// levels under auto-calibration) runs — endpoints, then the widest-gap
	// midpoint.
	base := time.Unix(1700000000, 0)
	out, err := Run(context.Background(), p, Config{
		Anonymizer: microagg.New(), Attack: atk, Levels: ks,
		Deadline: base,
		now:      func() time.Time { return base.Add(time.Hour) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Partial {
		t.Fatal("deadline in the past must yield a partial outcome")
	}
	if out.Evaluated != 3 {
		t.Fatalf("evaluated %d levels, want the 3-level auto-calibration floor", out.Evaluated)
	}
	gotK := []int{out.Levels[0].K, out.Levels[1].K, out.Levels[2].K}
	if gotK[0] != 2 || gotK[2] != 16 || gotK[1] != 9 {
		t.Fatalf("budget walk evaluated k=%v, want endpoints then widest-gap midpoint [2 9 16]", gotK)
	}
	if len(out.SkippedRanges) == 0 {
		t.Fatal("no skip ranges recorded")
	}
	for _, r := range out.SkippedRanges {
		if r.Reason != SkipDeadline {
			t.Fatalf("skip range %+v, want reason %q", r, SkipDeadline)
		}
	}
	if out.Skipped != out.Requested-3 {
		t.Fatalf("skipped %d, want %d", out.Skipped, out.Requested-3)
	}

	// A generous deadline evaluates everything with no partial flag.
	out, err = Run(context.Background(), p, Config{
		Anonymizer: microagg.New(), Attack: atk, Levels: ks,
		Deadline: base,
		now:      func() time.Time { return base.Add(-time.Hour) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Partial || out.Evaluated != len(ks) {
		t.Fatalf("generous budget: partial=%v evaluated=%d, want full %d-level walk", out.Partial, out.Evaluated, len(ks))
	}
}

func TestPlannerInfeasibleTail(t *testing.T) {
	p, q := universityFixture(t, 12)
	atk := core.AttackConfig{Aux: q, SensitiveRange: salaryRange()}
	series := exhaustiveSeries(t, p, q, 2, 8)
	tp, tu, err := core.CalibrateThresholds(series)
	if err != nil {
		t.Fatal(err)
	}

	// Levels 2..20 on 12 rows: the tail outgrows the table in both modes.
	ks, _ := Expand(2, 20, 1, nil)
	for name, cfg := range map[string]Config{
		"walk":   {Anonymizer: microagg.New(), Attack: atk, Levels: ks},
		"bisect": {Anonymizer: microagg.New(), Attack: atk, Levels: ks, Tp: tp, Tu: tu},
	} {
		out, err := Run(context.Background(), p, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Infeasible == 0 {
			t.Fatalf("%s: no levels marked infeasible on a 12-row table swept to k=20", name)
		}
		last := out.SkippedRanges[len(out.SkippedRanges)-1]
		if last.Reason != SkipInfeasible || last.ToK != 20 {
			t.Fatalf("%s: last skip range %+v, want an infeasible tail ending at 20", name, last)
		}
		for _, lr := range out.Levels {
			if lr.K > 12 {
				t.Fatalf("%s: evaluated k=%d beyond the table", name, lr.K)
			}
		}
	}

	// A set that starts beyond the table fails like the exhaustive sweep.
	if _, err := Run(context.Background(), p, Config{
		Anonymizer: microagg.New(), Attack: atk, Levels: []int{15, 18},
	}); err == nil {
		t.Fatal("k-set entirely beyond the table must error, as the exhaustive sweep does")
	}
	if _, err := Run(context.Background(), p, Config{
		Anonymizer: microagg.New(), Attack: atk, Levels: []int{15, 18}, Tp: tp, Tu: tu,
	}); err == nil {
		t.Fatal("bisect over an infeasible set must error, as the exhaustive sweep does")
	}
}

func TestExpandValidation(t *testing.T) {
	if _, err := Expand(1, 8, 1, nil); err == nil {
		t.Error("minK below 2 accepted")
	}
	if _, err := Expand(8, 4, 1, nil); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := Expand(0, 0, 0, []int{1, 4}); err == nil {
		t.Error("k-set entry below 2 accepted")
	}
	ks, err := Expand(2, 11, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{2, 5, 8, 11}; len(ks) != 4 || ks[0] != 2 || ks[3] != 11 {
		t.Fatalf("stride expansion = %v, want %v", ks, want)
	}
}
