// Package planner turns FRED's exhaustive K-walk into a search. The
// exhaustive sweep (core.SweepStream over [MinK, MaxK]) evaluates O(K) full
// anonymizations even though the decision (core.DecideWithin) only depends
// on the candidate band — the levels clearing both thresholds. The utility
// series U_k = 1/C_DM(k) is monotone non-increasing in k for any cohort
// large enough that the discernibility metric's remainder-group jitter
// cannot outweigh its O(n·k) growth (empirically: every in-tree cohort
// ≥ ~400 rows, and structurally ever more so as n grows). The Tu filter
// therefore admits a prefix of the range, whose end — the Tu crossing —
// bisection finds in O(log K) probes; everything above it is provably
// non-candidate and is skipped, and only the prefix band is evaluated
// exhaustively. The After series, by contrast, is measurement-noisy in
// both directions at scale (the paper's Figure 5 trend does not survive
// 10⁵-row cohorts), so the planner never skips on the Tp filter: After is
// tested per level inside the band, where every level is evaluated anyway.
//
// The contract with the exhaustive sweep is exact, not approximate: H
// normalization is computed over the candidate arrays alone, so as long as
// the planner evaluates every candidate the decision — optimal k, Hmax,
// the chosen release — is IEEE-754-bit-identical to the full walk.
// Utility monotonicity is verified over every level the planner sees
// (probed, band-filled, or warm-started); a violation triggers an
// exhaustive fallback walk of the remaining levels, restoring the full
// series. The one documented gap: a utility rise confined entirely to
// levels the planner never probed is undetectable and can change the band
// — callers that cannot tolerate this submit exhaustive sweeps.
//
// Beyond bisection the planner schedules three richer specs:
//
//   - k-sets and strides: evaluate an arbitrary ascending level set
//     (Expand builds one), holes held out of the gap-free stream.
//   - Warm starts: levels another sweep of the same table already computed
//     enter as Held seeds — adopted, not recomputed — generalizing
//     StreamConfig.StartK's held prefix to arbitrary held sets.
//   - Wall-clock budgets: a deadline stops evaluation with a well-defined
//     partial result. Without thresholds the planner evaluates endpoints
//     first and then always the midpoint of the widest unevaluated gap —
//     the point of maximum uncertainty about the series — so whatever the
//     budget allows is spread over the range rather than clustered at low
//     k.
package planner

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Skip-range reasons recorded in Outcome.SkippedRanges.
const (
	// SkipBisection marks levels outside the candidate band that bisection
	// proved the decision cannot depend on.
	SkipBisection = "bisection"
	// SkipDeadline marks levels the wall-clock budget expired before
	// evaluating.
	SkipDeadline = "deadline"
	// SkipInfeasible marks levels at or above the table's feasibility
	// cutoff (k exceeds what the anonymizer can group); the exhaustive
	// sweep would not have produced them either.
	SkipInfeasible = "infeasible"
)

// Hooks observe a run as it progresses; any field may be nil.
type Hooks struct {
	// Level fires for every level entering the series, in the order the
	// planner adopts them: warm seeds first (ascending), then computed
	// levels in evaluation order. warm distinguishes the two.
	Level func(lr core.LevelResult, warm bool)
	// Fallback fires at most once, when a detected monotonicity violation
	// switches the run to the exhaustive walk.
	Fallback func(reason string)
}

// Config parameterizes an adaptive sweep.
type Config struct {
	// Anonymizer is Basic_Anonymization. Required.
	Anonymizer core.Anonymizer
	// Attack is the simulated fusion adversary.
	Attack core.AttackConfig
	// Levels is the requested level set, ascending, distinct, each ≥ 2
	// (build one with Expand). Required.
	Levels []int
	// Tp and Tu are the explicit decision thresholds. Either non-zero
	// enables bisection of the Tu crossing (Tu alone drives skipping; the
	// noisy Tp/After filter is tested per level inside the band). Both
	// zero means thresholds will be auto-calibrated after the fact, which
	// needs the full series, so the planner walks every level (deadline
	// permitting).
	Tp, Tu float64
	// Workers bounds sweep concurrency exactly as StreamConfig.Workers.
	Workers int
	// MinParallelRows is StreamConfig's small-cohort gate, forwarded.
	MinParallelRows int
	// Deadline, when non-zero, bounds wall-clock: evaluation stops at the
	// deadline with Outcome.Partial set. The first level (first three under
	// auto-calibration, so a decision is always possible) is exempt.
	Deadline time.Time
	// Held seeds levels the caller already holds — e.g. warm-started from
	// another job's cached sweep of the same table. Keyed by k; keys
	// outside Levels are ignored. Seeds are adopted verbatim: they must be
	// bit-exact prior computations of the same (table, adversary, scheme)
	// or the equivalence guarantee is void.
	Held map[int]core.LevelResult
	// Hooks observe the run.
	Hooks Hooks
	// now overrides the deadline clock in tests; nil means time.Now.
	now func() time.Time
}

// SkipRange is a maximal run of requested-but-unevaluated levels sharing a
// reason.
type SkipRange struct {
	FromK, ToK int
	Reason     string
}

// Outcome reports what a run evaluated, adopted and skipped.
type Outcome struct {
	// Levels is the ascending series of every level known at the end —
	// warm seeds and computed levels merged. Decisions run over it
	// (core.DecideWithin / core.CalibrateThresholds).
	Levels []core.LevelResult
	// Requested is len(Config.Levels).
	Requested int
	// Evaluated counts levels computed by this run.
	Evaluated int
	// Warm counts Held seeds adopted instead of recomputed.
	Warm int
	// Skipped counts requested feasible levels never evaluated (bisection
	// or deadline); Infeasible counts requested levels at or above the
	// feasibility cutoff.
	Skipped, Infeasible int
	// SkippedRanges lists the skipped and infeasible levels as maximal
	// same-reason runs, ascending.
	SkippedRanges []SkipRange
	// Fallback reports that a monotonicity violation forced the exhaustive
	// walk; FallbackReason says where.
	Fallback       bool
	FallbackReason string
	// Partial reports the deadline expired with requested levels
	// unevaluated; the series is the best obtainable within budget.
	Partial bool
}

// Expand builds the requested level list from a spec's selection: an
// explicit set wins (sorted, deduplicated); otherwise the arithmetic
// progression minK, minK+stride, … capped at maxK (stride ≤ 1 meaning every
// level). Every level must be ≥ 2.
func Expand(minK, maxK, stride int, set []int) ([]int, error) {
	if len(set) > 0 {
		out := append([]int(nil), set...)
		sort.Ints(out)
		dst := out[:1]
		for _, k := range out[1:] {
			if k != dst[len(dst)-1] {
				dst = append(dst, k)
			}
		}
		if dst[0] < 2 {
			return nil, fmt.Errorf("planner: k-set level %d below the minimal k = 2", dst[0])
		}
		return dst, nil
	}
	if minK < 2 || maxK < minK {
		return nil, fmt.Errorf("planner: invalid sweep range [%d, %d]", minK, maxK)
	}
	if stride < 1 {
		stride = 1
	}
	var out []int
	for k := minK; k <= maxK; k += stride {
		out = append(out, k)
	}
	return out, nil
}

type evalStatus int

const (
	evalOK evalStatus = iota
	evalInfeasible
)

type runState struct {
	ctx context.Context
	p   *dataset.Table
	cfg Config
	ks  []int
	req map[int]bool
	sc  *core.SweepContext

	known           map[int]core.LevelResult
	sortedK         []int
	evaluated, warm int

	// infeasibleFrom is the lowest probed k the anonymizer rejected with
	// the "k exceeds the table" condition; feasibility is monotone in k, so
	// everything at or above it is infeasible. infeasibleErr keeps the
	// original error for the case where even the lowest requested level is
	// infeasible, which must fail exactly like the exhaustive sweep.
	infeasibleFrom int
	infeasibleErr  error

	nonMonotone   bool
	nonMonotoneAt int

	// minDecide is how many known levels deadline stops must leave behind
	// so the run always ends decidable: 1 with explicit thresholds, 3 under
	// auto-calibration.
	minDecide int
	partial   bool
}

func (s *runState) clock() time.Time {
	if s.cfg.now != nil {
		return s.cfg.now()
	}
	return time.Now()
}

// stopForDeadline reports — and records — that the budget expired, once
// enough levels are known to decide on.
func (s *runState) stopForDeadline() bool {
	if s.cfg.Deadline.IsZero() || len(s.known) < s.minDecide {
		return false
	}
	if s.clock().After(s.cfg.Deadline) {
		s.partial = true
		return true
	}
	return false
}

// adopt enters a level into the series and checks the monotonicity
// invariant against its nearest known neighbors.
func (s *runState) adopt(lr core.LevelResult, warm bool) {
	k := lr.K
	s.known[k] = lr
	i := sort.SearchInts(s.sortedK, k)
	s.sortedK = append(s.sortedK, 0)
	copy(s.sortedK[i+1:], s.sortedK[i:])
	s.sortedK[i] = k
	if !s.nonMonotone {
		if i > 0 && lr.Utility > s.known[s.sortedK[i-1]].Utility {
			s.nonMonotone, s.nonMonotoneAt = true, k
		}
		if i+1 < len(s.sortedK) && s.known[s.sortedK[i+1]].Utility > lr.Utility {
			s.nonMonotone, s.nonMonotoneAt = true, s.sortedK[i+1]
		}
	}
	if warm {
		s.warm++
	} else {
		s.evaluated++
	}
	if s.cfg.Hooks.Level != nil {
		s.cfg.Hooks.Level(lr, warm)
	}
}

// eval computes requested level index i unless it is already known or
// infeasible. Memoized: bisection probes the same midpoints from both
// boundary searches for free.
func (s *runState) eval(i int) (evalStatus, error) {
	k := s.ks[i]
	if k >= s.infeasibleFrom {
		return evalInfeasible, nil
	}
	if _, ok := s.known[k]; ok {
		return evalOK, nil
	}
	if err := s.ctx.Err(); err != nil {
		return 0, err
	}
	lr, err := s.sc.RunLevel(s.cfg.Anonymizer, k, s.cfg.Tp)
	if err != nil {
		if core.EndsSweep(err) {
			s.infeasibleFrom, s.infeasibleErr = k, err
			return evalInfeasible, nil
		}
		return 0, fmt.Errorf("planner: level k=%d: %w", k, err)
	}
	s.adopt(lr, false)
	return evalOK, nil
}

// Run executes the adaptive sweep and returns the series with its
// evaluation accounting. Decide over Outcome.Levels with
// core.DecideWithin (after core.CalibrateThresholds when thresholds were
// left for auto-calibration).
func Run(ctx context.Context, p *dataset.Table, cfg Config) (*Outcome, error) {
	if cfg.Anonymizer == nil {
		return nil, errors.New("planner: config needs an anonymizer")
	}
	if p == nil || p.NumRows() == 0 {
		return nil, errors.New("planner: empty private table")
	}
	if len(cfg.Levels) == 0 {
		return nil, errors.New("planner: empty level set")
	}
	for i, k := range cfg.Levels {
		if k < 2 {
			return nil, fmt.Errorf("planner: level %d below the minimal k = 2", k)
		}
		if i > 0 && k <= cfg.Levels[i-1] {
			return nil, fmt.Errorf("planner: level set not ascending at %d", k)
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}

	explicit := cfg.Tp != 0 || cfg.Tu != 0
	s := &runState{
		ctx:            ctx,
		p:              p,
		cfg:            cfg,
		ks:             cfg.Levels,
		req:            make(map[int]bool, len(cfg.Levels)),
		known:          make(map[int]core.LevelResult, len(cfg.Levels)),
		infeasibleFrom: 1 << 62,
		minDecide:      1,
	}
	if !explicit {
		s.minDecide = 3
	}
	for _, k := range s.ks {
		s.req[k] = true
	}
	// One kernel-budgeted context shared by every single-level probe, so
	// bisection keeps within-level parallelism. The walk paths go through
	// SweepStream, which builds its own context and budget.
	s.sc = core.NewSweepContextParallel(p, cfg.Attack,
		core.SweepWorkersFor(p.NumRows(), cfg.Workers, cfg.MinParallelRows))

	// Warm seeds enter first, ascending, before anything is computed.
	for _, k := range s.ks {
		if lr, ok := cfg.Held[k]; ok {
			lr.K = k
			s.adopt(lr, true)
		}
	}

	var err error
	switch {
	case explicit:
		err = s.bisect()
	case !cfg.Deadline.IsZero():
		err = s.budgetWalk()
	default:
		err = s.walkRemaining()
	}
	if err != nil {
		return nil, err
	}

	// A detected monotonicity violation voids bisection's skip proof: walk
	// everything still missing so the series — and therefore the decision —
	// matches the exhaustive sweep exactly. A deadline overrides: the
	// partial series stands, best-effort by construction.
	var fellBack bool
	var fallbackReason string
	if s.nonMonotone && !s.partial && len(s.known) < len(s.feasibleKs()) {
		fellBack = true
		fallbackReason = fmt.Sprintf("non-monotone series at k=%d", s.nonMonotoneAt)
		if cfg.Hooks.Fallback != nil {
			cfg.Hooks.Fallback(fallbackReason)
		}
		if err := s.walkRemaining(); err != nil {
			return nil, err
		}
	}

	// The lowest requested level being infeasible is an error, exactly as
	// it is for the exhaustive sweep (the early-stop rule anchors there).
	if s.infeasibleFrom <= s.ks[0] {
		return nil, fmt.Errorf("planner: level k=%d: %w", s.ks[0], s.infeasibleErr)
	}

	out := &Outcome{
		Requested:      len(s.ks),
		Evaluated:      s.evaluated,
		Warm:           s.warm,
		Fallback:       fellBack,
		FallbackReason: fallbackReason,
		Partial:        s.partial,
	}
	out.Levels = make([]core.LevelResult, 0, len(s.sortedK))
	for _, k := range s.sortedK {
		out.Levels = append(out.Levels, s.known[k])
	}
	for _, k := range s.ks {
		if _, ok := s.known[k]; ok {
			continue
		}
		reason := SkipBisection
		switch {
		case k >= s.infeasibleFrom:
			reason = SkipInfeasible
			out.Infeasible++
		case s.partial:
			reason = SkipDeadline
			out.Skipped++
		default:
			out.Skipped++
		}
		if n := len(out.SkippedRanges); n > 0 && out.SkippedRanges[n-1].Reason == reason && out.SkippedRanges[n-1].ToK == prevRequested(s.ks, k) {
			out.SkippedRanges[n-1].ToK = k
		} else {
			out.SkippedRanges = append(out.SkippedRanges, SkipRange{FromK: k, ToK: k, Reason: reason})
		}
	}
	return out, nil
}

// prevRequested returns the requested level immediately below k, or k when
// k is the first (ks is ascending and contains k).
func prevRequested(ks []int, k int) int {
	i := sort.SearchInts(ks, k)
	if i == 0 {
		return k
	}
	return ks[i-1]
}

// feasibleKs returns the requested levels below the feasibility cutoff.
func (s *runState) feasibleKs() []int {
	n := sort.SearchInts(s.ks, s.infeasibleFrom)
	return s.ks[:n]
}

// bisect finds the Tu crossing with one memoized binary search and
// evaluates only the band below it. The predicate leans on utility
// monotonicity: Utility is non-increasing in k, so "Utility < Tu" is
// suffix-true over the requested indices, and infeasibility is suffix-true
// structurally. Every level above the crossing fails the Tu filter — After
// cannot rescue it — so skipping it provably preserves the candidate set;
// levels inside the band are all evaluated, which is also where the noisy
// Tp/After filter gets tested per level. Probe count is ≤ ⌈log₂ K⌉, total
// evaluations ≤ ⌈log₂ K⌉ + band.
func (s *runState) bisect() error {
	n := len(s.ks)
	bEnd, stopped, err := s.search(n, func(i int) (bool, error) {
		st, err := s.eval(i)
		if err != nil || st == evalInfeasible {
			return st == evalInfeasible, err
		}
		return s.known[s.ks[i]].Utility < s.cfg.Tu, nil
	})
	if err != nil || stopped {
		return err
	}
	// Band fill: every requested level below the crossing joins the series
	// — the argmax needs them all.
	for i := 0; i < bEnd; i++ {
		if s.stopForDeadline() {
			return nil
		}
		if _, err := s.eval(i); err != nil {
			return err
		}
	}
	return nil
}

// search is sort.Search with error propagation and deadline stops: the
// smallest index in [0, n] with pred true (pred suffix-true).
func (s *runState) search(n int, pred func(int) (bool, error)) (idx int, stopped bool, err error) {
	lo, hi := 0, n
	for lo < hi {
		if s.stopForDeadline() {
			return lo, true, nil
		}
		mid := int(uint(lo+hi) >> 1)
		ok, err := pred(mid)
		if err != nil {
			return 0, false, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, false, nil
}

// budgetWalk evaluates the requested set without thresholds under a
// deadline: endpoints first, then always the midpoint of the widest gap
// between levels already settled — maximum-uncertainty-first, so a partial
// series spans the whole range instead of its low end.
func (s *runState) budgetWalk() error {
	n := len(s.ks)
	done := func(i int) bool {
		if s.ks[i] >= s.infeasibleFrom {
			return true
		}
		_, ok := s.known[s.ks[i]]
		return ok
	}
	for {
		pick := -1
		switch {
		case !done(0):
			pick = 0
		case !done(n - 1):
			pick = n - 1
		default:
			// Widest gap between consecutive settled indices; ties go to
			// the lower gap for determinism.
			widest := 1
			prev := 0
			for i := 1; i < n; i++ {
				if !done(i) {
					continue
				}
				if i-prev > widest {
					widest, pick = i-prev, prev+(i-prev)/2
				}
				prev = i
			}
		}
		if pick < 0 {
			return nil
		}
		if s.stopForDeadline() {
			return nil
		}
		if _, err := s.eval(pick); err != nil {
			return err
		}
	}
}

// walkRemaining evaluates every requested feasible level not yet known via
// the parallel streaming sweep — the exhaustive mode (auto-calibration
// needs the full series) and the non-monotone fallback. Known levels and
// non-requested holes ride in the Held set.
func (s *runState) walkRemaining() error {
	minK := s.ks[0]
	maxK := s.ks[len(s.ks)-1]
	if s.infeasibleFrom <= maxK {
		maxK = s.infeasibleFrom - 1
	}
	if maxK < minK {
		return nil
	}
	held := make(map[int]bool)
	for k := minK; k <= maxK; k++ {
		if !s.req[k] {
			held[k] = true
			continue
		}
		if _, ok := s.known[k]; ok {
			held[k] = true
		}
	}
	runCtx := s.ctx
	if !s.cfg.Deadline.IsZero() {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithDeadline(s.ctx, s.cfg.Deadline)
		defer cancel()
	}
	err := core.SweepStream(runCtx, s.p, core.StreamConfig{
		Anonymizer:      s.cfg.Anonymizer,
		Attack:          s.cfg.Attack,
		MinK:            minK,
		MaxK:            maxK,
		Held:            held,
		Workers:         s.cfg.Workers,
		MinParallelRows: s.cfg.MinParallelRows,
		Tp:              s.cfg.Tp,
	}, func(lr core.LevelResult) error {
		s.adopt(lr, false)
		return nil
	})
	if err != nil {
		// The deadline expiring mid-walk is a partial result, not an
		// error — unless the caller's own context is what fired.
		if errors.Is(err, context.DeadlineExceeded) && s.ctx.Err() == nil {
			s.partial = true
			return nil
		}
		return err
	}
	// The stream ends early — cleanly — when the anonymizer outgrows the
	// table, so after a complete walk any requested level still unknown
	// marks the feasibility cutoff.
	for _, k := range s.ks {
		if k >= s.infeasibleFrom {
			break
		}
		if _, ok := s.known[k]; !ok {
			s.infeasibleFrom = k
			s.infeasibleErr = fmt.Errorf("%w", dataset.ErrTooFewRecords)
			break
		}
	}
	return nil
}
