package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/parallel"
)

// ErrStopSweep is the sentinel an emit callback returns to end a streaming
// sweep early without error: the levels emitted so far form the series and
// SweepStream returns nil. Any other callback error aborts the sweep and is
// returned as-is.
var ErrStopSweep = errors.New("core: stop sweep")

// StreamConfig parameterizes SweepStream.
type StreamConfig struct {
	// Anonymizer is Basic_Anonymization. Required.
	Anonymizer Anonymizer
	// Attack is the simulated fusion adversary.
	Attack AttackConfig
	// MinK and MaxK bound the sweep (MinK ≥ 2, MaxK ≥ MinK).
	MinK, MaxK int
	// StartK, when non-zero, resumes the sweep mid-range: levels in
	// [MinK, StartK) are neither evaluated nor emitted — the caller already
	// holds them, e.g. replayed from durable checkpoints — and emission
	// begins at StartK. Must satisfy MinK ≤ StartK ≤ MaxK; zero starts at
	// MinK. The early-stop rule still anchors at MinK: a resumed first level
	// outgrowing the table ends the series cleanly rather than erroring,
	// because lower levels exist in the caller's seed.
	StartK int
	// Workers bounds level concurrency; 0 means one worker per level.
	// Whatever the worker count, levels are emitted in ascending k order.
	Workers int
	// Tp is the protection threshold recorded in each LevelResult's
	// Candidate flag (0 marks every level a candidate, as in plain sweeps).
	Tp float64
}

// SweepStream is the streaming sweep executor every sweep entry point is
// built on: it evaluates levels MinK..MaxK on a bounded worker pool over one
// shared SweepContext and calls emit with each LevelResult in ascending k
// order as soon as it — and every level below it — has completed. A reorder
// buffer bridges completion order and emission order, so concurrency never
// changes what the consumer observes.
//
// Invariants:
//
//   - Emission is k-ordered and gap-free: emit(k) happens only after every
//     level in [MinK, k] was emitted or the sweep ended. A resume point
//     (StartK) shifts the series start: emission is then gap-free over
//     [StartK, k], the caller holding [MinK, StartK) from its checkpoints.
//   - Early stop: a level above MinK failing with the "k exceeds the table"
//     condition (EndsSweep) ends the series cleanly — emit never sees it and
//     SweepStream returns nil. The same condition at MinK is an error.
//   - Any other level error aborts the sweep with "core: level k=%d: …",
//     after all lower levels were emitted.
//   - emit returning ErrStopSweep ends the sweep without error; any other
//     emit error aborts the sweep and is returned verbatim. In-flight higher
//     levels are discarded either way.
//   - Cancelling ctx aborts promptly with ctx.Err(); workers stop picking up
//     new levels and nothing further is emitted.
//
// emit runs on the calling goroutine; it may block (e.g. writing an HTTP
// response) without stalling more than the in-flight workers.
func SweepStream(ctx context.Context, p *dataset.Table, cfg StreamConfig, emit func(LevelResult) error) error {
	if cfg.Anonymizer == nil {
		return errors.New("core: sweep needs an anonymizer")
	}
	minK, maxK := cfg.MinK, cfg.MaxK
	if minK < 2 || maxK < minK {
		return fmt.Errorf("core: invalid sweep range [%d, %d]", minK, maxK)
	}
	first := minK
	if cfg.StartK != 0 {
		if cfg.StartK < minK || cfg.StartK > maxK {
			return fmt.Errorf("core: resume point StartK=%d outside sweep range [%d, %d]", cfg.StartK, minK, maxK)
		}
		first = cfg.StartK
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := maxK - first + 1
	// The requested worker count is the sweep-wide concurrency bound, shared
	// between level-parallelism and within-level kernel parallelism through
	// one token budget: each in-flight level holds a token while it runs, so
	// spare tokens — workers beyond the remaining levels, or pool slots freed
	// at the sweep tail — are what budgeted kernels may borrow. The level
	// pool itself never needs more goroutines than levels.
	workers := cfg.Workers
	if workers <= 0 {
		workers = n
	}
	budget := parallel.NewBudget(workers)
	pool := workers
	if pool > n {
		pool = n
	}

	sc := NewSweepContext(p, cfg.Attack)
	sc.budget = budget

	// A single-slot pool is the old sequential loop: run it inline, without
	// pool goroutines, so a consumer stop (Run's Algorithm 1 stopping rule)
	// never pays for a speculative level past the stop point. With parallel
	// workers that speculation is inherent — in-flight levels above a stop
	// are cancelled and discarded. (A multi-worker budget over a single
	// level still parallelizes inside the level: the kernels borrow the
	// spare tokens.)
	if pool == 1 {
		for k := first; k <= maxK; k++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			budget.Acquire()
			lr, err := sc.RunLevel(cfg.Anonymizer, k, cfg.Tp)
			budget.Release()
			if err != nil {
				if k > minK && isTooFewRecords(err) {
					return nil
				}
				return fmt.Errorf("core: level k=%d: %w", k, err)
			}
			// A cancel that landed while RunLevel was executing must not
			// leak one more emission — same contract as the parallel path.
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := emit(lr); err != nil {
				if errors.Is(err, ErrStopSweep) {
					return nil
				}
				return err
			}
		}
		return nil
	}

	type slot struct {
		k   int
		lr  LevelResult
		err error
	}
	ctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup

	// Dispatcher: feeds levels one at a time so a cancel (or early stop)
	// keeps workers from picking up work past the stop point.
	ks := make(chan int)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(ks)
		for k := first; k <= maxK; k++ {
			select {
			case ks <- k:
			case <-ctx.Done():
				return
			}
		}
	}()

	// results is buffered to the whole sweep so workers never block on send:
	// cancel() alone winds the pool down.
	results := make(chan slot, n)
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range ks {
				// Each in-flight level holds one budget token — counting
				// itself against the sweep-wide worker bound — so kernel
				// helpers can only use genuinely idle capacity.
				budget.Acquire()
				lr, err := sc.RunLevel(cfg.Anonymizer, k, cfg.Tp)
				budget.Release()
				results <- slot{k: k, lr: lr, err: err}
			}
		}()
	}
	defer func() {
		cancel()
		wg.Wait()
	}()

	// Reorder buffer: results arrive in completion order, levels leave in k
	// order.
	pending := make(map[int]slot, pool)
	for next := first; next <= maxK; {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		s, ok := pending[next]
		if !ok {
			select {
			case r := <-results:
				pending[r.k] = r
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		delete(pending, next)
		if s.err != nil {
			if next > minK && isTooFewRecords(s.err) {
				// The anonymizer legitimately outgrew the table: the series
				// ends here rather than failing.
				return nil
			}
			return fmt.Errorf("core: level k=%d: %w", next, s.err)
		}
		if err := emit(s.lr); err != nil {
			if errors.Is(err, ErrStopSweep) {
				return nil
			}
			return err
		}
		next++
	}
	return nil
}

// StopsAfter reports whether Algorithm 1's stopping rule ends the sweep
// after this level: the prose rule stops once utility falls below Tu, the
// literal pseudocode rule ("repeat … until U_level ≥ Tu") as soon as a
// release is useful.
func (cfg Config) StopsAfter(lr LevelResult) bool {
	if cfg.LiteralPaperLoop {
		return lr.Utility >= cfg.Tu
	}
	return lr.Utility < cfg.Tu
}

// Decide applies Algorithm 1's selection to a swept (possibly truncated)
// series: the Tp candidate filter, the weighted objective H over the
// candidates, and the argmax. It records candidacy on the series in place
// and returns the partial Result alongside ErrNoCandidate when no level
// passes the filter. Run is SweepStream + Decide; callers that stream a
// sweep themselves (e.g. a CLI printing levels live) reuse it to reach
// Run's exact decision without a second sweep — provided they also apply
// Run's Tu stopping rule (Config.StopsAfter) as truncation first. The
// service's fred-sweep job deliberately deviates: it sweeps the full
// requested range and filters candidacy by both thresholds instead of
// truncating at Tu (see service.Engine's runFREDSweep).
func Decide(levels []LevelResult, cfg Config) (*Result, error) {
	if cfg.HOpts.W1 == 0 && cfg.HOpts.W2 == 0 {
		cfg.HOpts = metrics.DefaultHOptions()
	}
	res := &Result{Levels: levels}
	for i := range res.Levels {
		res.Levels[i].Candidate = res.Levels[i].After >= cfg.Tp
		if res.Levels[i].Candidate {
			res.Candidates = append(res.Candidates, i)
		}
	}
	if len(res.Candidates) == 0 {
		return res, ErrNoCandidate
	}
	dis := make([]float64, len(res.Candidates))
	utl := make([]float64, len(res.Candidates))
	for i, li := range res.Candidates {
		dis[i] = res.Levels[li].After
		utl[i] = res.Levels[li].Utility
	}
	h, err := metrics.HSeries(dis, utl, cfg.HOpts)
	if err != nil {
		return nil, err
	}
	res.H = h
	best, hmax, err := metrics.ArgMax(h)
	if err != nil {
		return nil, err
	}
	opt := res.Levels[res.Candidates[best]]
	res.OptimalK = opt.K
	res.Hmax = hmax
	res.Optimal = opt.Release
	return res, nil
}
