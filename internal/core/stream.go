package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/dataset"
	"repro/internal/parallel"
)

// ErrStopSweep is the sentinel an emit callback returns to end a streaming
// sweep early without error: the levels emitted so far form the series and
// SweepStream returns nil. Any other callback error aborts the sweep and is
// returned as-is.
var ErrStopSweep = errors.New("core: stop sweep")

// StreamConfig parameterizes SweepStream.
type StreamConfig struct {
	// Anonymizer is Basic_Anonymization. Required.
	Anonymizer Anonymizer
	// Attack is the simulated fusion adversary.
	Attack AttackConfig
	// MinK and MaxK bound the sweep (MinK ≥ 2, MaxK ≥ MinK).
	MinK, MaxK int
	// StartK, when non-zero, resumes the sweep mid-range: levels in
	// [MinK, StartK) are neither evaluated nor emitted — the caller already
	// holds them, e.g. replayed from durable checkpoints — and emission
	// begins at StartK. Must satisfy MinK ≤ StartK ≤ MaxK; zero starts at
	// MinK. The early-stop rule still anchors at MinK: a resumed first level
	// outgrowing the table ends the series cleanly rather than erroring,
	// because lower levels exist in the caller's seed.
	StartK int
	// Held generalizes StartK from a held prefix to an arbitrary held level
	// set: levels with Held[k] == true are neither evaluated nor emitted —
	// the caller already has them, e.g. warm-started from another job's
	// cached sweep of the same table, or outside a k-set/stride spec's
	// requested set. Emission stays ascending and gap-free over the levels
	// that remain. Keys outside the (possibly StartK-resumed) range are
	// ignored; nil holds nothing.
	Held map[int]bool
	// Workers bounds level concurrency; 0 means one worker per level.
	// Whatever the worker count, levels are emitted in ascending k order.
	Workers int
	// MinParallelRows gates the parallel fan-out on a per-level work
	// estimate: when > 0 and the table has fewer rows, the sweep runs
	// sequentially (inline loop, no kernel budget) regardless of Workers —
	// pool goroutines and budget tokens cost more than they recover on
	// sub-millisecond levels. 0 leaves fan-out ungated (library default;
	// the service engine passes MinParallelSweepRows).
	MinParallelRows int
	// Tp is the protection threshold recorded in each LevelResult's
	// Candidate flag (0 marks every level a candidate, as in plain sweeps).
	Tp float64
}

// SweepStream is the streaming sweep executor every sweep entry point is
// built on: it evaluates levels MinK..MaxK on a bounded worker pool over one
// shared SweepContext and calls emit with each LevelResult in ascending k
// order as soon as it — and every level below it — has completed. A reorder
// buffer bridges completion order and emission order, so concurrency never
// changes what the consumer observes.
//
// Invariants:
//
//   - Emission is k-ordered and gap-free: emit(k) happens only after every
//     level in [MinK, k] was emitted or the sweep ended. A resume point
//     (StartK) shifts the series start: emission is then gap-free over
//     [StartK, k], the caller holding [MinK, StartK) from its checkpoints.
//     A Held set punches holes the same way: gap-free is over the non-held
//     levels, the caller holding the rest.
//   - Early stop: a level above MinK failing with the "k exceeds the table"
//     condition (EndsSweep) ends the series cleanly — emit never sees it and
//     SweepStream returns nil. The same condition at MinK is an error.
//   - Any other level error aborts the sweep with "core: level k=%d: …",
//     after all lower levels were emitted.
//   - emit returning ErrStopSweep ends the sweep without error; any other
//     emit error aborts the sweep and is returned verbatim. In-flight higher
//     levels are discarded either way.
//   - Cancelling ctx aborts promptly with ctx.Err(); workers stop picking up
//     new levels and nothing further is emitted.
//
// emit runs on the calling goroutine; it may block (e.g. writing an HTTP
// response) without stalling more than the in-flight workers.
func SweepStream(ctx context.Context, p *dataset.Table, cfg StreamConfig, emit func(LevelResult) error) error {
	if cfg.Anonymizer == nil {
		return errors.New("core: sweep needs an anonymizer")
	}
	minK, maxK := cfg.MinK, cfg.MaxK
	if minK < 2 || maxK < minK {
		return fmt.Errorf("core: invalid sweep range [%d, %d]", minK, maxK)
	}
	first := minK
	if cfg.StartK != 0 {
		if cfg.StartK < minK || cfg.StartK > maxK {
			return fmt.Errorf("core: resume point StartK=%d outside sweep range [%d, %d]", cfg.StartK, minK, maxK)
		}
		first = cfg.StartK
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// The evaluation list is the range minus the caller-held levels; all
	// sizing, dispatch and reordering below runs over it.
	evalKs := make([]int, 0, maxK-first+1)
	for k := first; k <= maxK; k++ {
		if cfg.Held[k] {
			continue
		}
		evalKs = append(evalKs, k)
	}
	n := len(evalKs)
	if n == 0 {
		return nil
	}
	// The requested worker count is the sweep-wide concurrency bound, shared
	// between level-parallelism and within-level kernel parallelism through
	// one token budget: each in-flight level holds a token while it runs, so
	// spare tokens — workers beyond the remaining levels, or pool slots freed
	// at the sweep tail — are what budgeted kernels may borrow. The level
	// pool itself never needs more goroutines than levels.
	workers := SweepWorkersFor(p.NumRows(), cfg.Workers, cfg.MinParallelRows)
	if workers <= 0 {
		workers = n
	}
	budget := parallel.NewBudget(workers)
	pool := workers
	if pool > n {
		pool = n
	}

	sc := NewSweepContext(p, cfg.Attack)
	sc.budget = budget

	// A single-slot pool is the old sequential loop: run it inline, without
	// pool goroutines, so a consumer stop (Run's Algorithm 1 stopping rule)
	// never pays for a speculative level past the stop point. With parallel
	// workers that speculation is inherent — in-flight levels above a stop
	// are cancelled and discarded. (A multi-worker budget over a single
	// level still parallelizes inside the level: the kernels borrow the
	// spare tokens.)
	if pool == 1 {
		for _, k := range evalKs {
			if err := ctx.Err(); err != nil {
				return err
			}
			budget.Acquire()
			lr, err := sc.RunLevel(cfg.Anonymizer, k, cfg.Tp)
			budget.Release()
			if err != nil {
				if k > minK && isTooFewRecords(err) {
					return nil
				}
				return fmt.Errorf("core: level k=%d: %w", k, err)
			}
			// A cancel that landed while RunLevel was executing must not
			// leak one more emission — same contract as the parallel path.
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := emit(lr); err != nil {
				if errors.Is(err, ErrStopSweep) {
					return nil
				}
				return err
			}
		}
		return nil
	}

	type slot struct {
		k   int
		lr  LevelResult
		err error
	}
	ctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup

	// Dispatcher: feeds levels one at a time so a cancel (or early stop)
	// keeps workers from picking up work past the stop point.
	ks := make(chan int)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(ks)
		for _, k := range evalKs {
			select {
			case ks <- k:
			case <-ctx.Done():
				return
			}
		}
	}()

	// results is buffered to the whole sweep so workers never block on send:
	// cancel() alone winds the pool down.
	results := make(chan slot, n)
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range ks {
				// Each in-flight level holds one budget token — counting
				// itself against the sweep-wide worker bound — so kernel
				// helpers can only use genuinely idle capacity.
				budget.Acquire()
				lr, err := sc.RunLevel(cfg.Anonymizer, k, cfg.Tp)
				budget.Release()
				results <- slot{k: k, lr: lr, err: err}
			}
		}()
	}
	defer func() {
		cancel()
		wg.Wait()
	}()

	// Reorder buffer: results arrive in completion order, levels leave in k
	// order.
	pending := make(map[int]slot, pool)
	for i := 0; i < n; {
		next := evalKs[i]
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		s, ok := pending[next]
		if !ok {
			select {
			case r := <-results:
				pending[r.k] = r
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		delete(pending, next)
		if s.err != nil {
			if next > minK && isTooFewRecords(s.err) {
				// The anonymizer legitimately outgrew the table: the series
				// ends here rather than failing.
				return nil
			}
			return fmt.Errorf("core: level k=%d: %w", next, s.err)
		}
		if err := emit(s.lr); err != nil {
			if errors.Is(err, ErrStopSweep) {
				return nil
			}
			return err
		}
		i++
	}
	return nil
}

// MinParallelSweepRows is the per-level work gate production sweeps pass as
// StreamConfig.MinParallelRows: below it, a level completes in well under a
// millisecond and the parallel path's pool goroutines plus budget tokens
// cost more wall time than they recover (mdav@10³ measured ~65% slower at
// workers=8 than sequential on one CPU). The threshold is deliberately far
// below the 10⁴-row cell where fan-out measurably wins.
const MinParallelSweepRows = 4096

// SweepWorkersFor applies the small-cohort gate to a requested sweep worker
// count: tables with fewer than minParallelRows rows run on one worker,
// everything else keeps the request. A non-positive gate disables it. The
// bench grid uses this to report the workers actually in effect.
func SweepWorkersFor(rows, workers, minParallelRows int) int {
	if minParallelRows > 0 && rows < minParallelRows {
		return 1
	}
	return workers
}
