// Package core implements the paper's primary contribution: the Web-Based
// Information-Fusion Attack simulation (Section 3) and FRED Anonymization —
// Fusion Resilient Enterprise Data Anonymization, Algorithm 1 (Section 5).
//
// FRED sweeps anonymization levels, simulates the fusion attack at each
// level, filters candidates by the protection threshold Tp, stops when
// release utility drops below Tu, and returns the level maximizing the
// weighted objective H = W1·(P ∘ P̂) + W2·U.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/fusion"
	"repro/internal/metrics"
	"repro/internal/parallel"
)

// Anonymizer is the Basic_Anonymization contract of Algorithm 1: any
// k-anonymization scheme (internal/microagg, internal/kanon,
// internal/mondrian all satisfy it).
type Anonymizer interface {
	Name() string
	Anonymize(t *dataset.Table, k int) (*dataset.Table, error)
}

// ParallelAnonymizer is the optional extension schemes implement to spread a
// single level's work (distance scans, sub-partition recursion) over spare
// workers from the sweep's shared budget. The contract is strict: the output
// must be bit-identical to Anonymize at every budget, including nil. Sweeps
// hand each level the pool budget, so within-level parallelism soaks up
// whatever level-parallelism leaves idle — one worker bound governs both.
type ParallelAnonymizer interface {
	Anonymizer
	AnonymizeParallel(t *dataset.Table, k int, b *parallel.Budget) (*dataset.Table, error)
}

// anonymizeLevel dispatches to the scheme's budgeted path when it has one
// and a budget is present.
func anonymizeLevel(anon Anonymizer, t *dataset.Table, k int, b *parallel.Budget) (*dataset.Table, error) {
	if pa, ok := anon.(ParallelAnonymizer); ok && b != nil {
		return pa.AnonymizeParallel(t, k, b)
	}
	return anon.Anonymize(t, k)
}

// AttackConfig describes the simulated adversary.
type AttackConfig struct {
	// Aux is the web-gathered auxiliary table Q, row-aligned with P (build
	// it with web.Gather over the release identifiers). Nil simulates an
	// adversary without web access.
	Aux *dataset.Table
	// Estimator is the fusion system F; nil defaults to the paper's fuzzy
	// system.
	Estimator fusion.Estimator
	// SensitiveRange is the publicly known range of the sensitive
	// attribute.
	SensitiveRange fusion.Range
}

// Config parameterizes a FRED run.
type Config struct {
	// Anonymizer is Basic_Anonymization. Required.
	Anonymizer Anonymizer
	// Attack is the simulated fusion adversary. Required.
	Attack AttackConfig
	// Tp is the protection threshold: a level is a candidate only if
	// (P ∘ P̂) ≥ Tp.
	Tp float64
	// Tu is the utility threshold: the sweep stops when U_k < Tu.
	Tu float64
	// HOpts weighs protection and utility (paper: W1 = W2 = 0.5, terms
	// normalized; see metrics.DefaultHOptions).
	HOpts metrics.HOptions
	// MinK is the first anonymization level; 0 means the paper's minimal
	// k = 2.
	MinK int
	// MaxK caps the sweep; 0 means "until utility falls below Tu or the
	// anonymizer runs out of records".
	MaxK int
	// LiteralPaperLoop reproduces the pseudocode's literal stopping rule
	// ("repeat … until U_level ≥ Tu"), which halts as soon as a release is
	// useful — almost certainly a typo for the prose rule. Kept for the
	// ablation bench (DESIGN.md §6).
	LiteralPaperLoop bool
}

// LevelResult records one sweep iteration — one point on each of the
// paper's Figures 4–8.
type LevelResult struct {
	K int
	// Release is P'_k with the sensitive column suppressed.
	Release *dataset.Table
	// Phat is the adversary's fused estimate P̂_k.
	Phat *dataset.Table
	// Before is (P ∘ P') — the pre-fusion dissimilarity of Figure 4.
	Before float64
	// After is (P ∘ P̂) — the post-fusion dissimilarity of Figure 5.
	After float64
	// Gain is G = Before − After (Figure 6).
	Gain float64
	// Utility is U_k = 1/C_DM(k) (Figure 7).
	Utility float64
	// Candidate reports After ≥ Tp.
	Candidate bool
	// Elapsed is the level's compute time (anonymize + attack + utility),
	// measured where the work runs so concurrent sweeps report true
	// per-level cost, not pipeline emission gaps. Purely observational — it
	// never feeds back into the sweep numerics.
	Elapsed time.Duration
	// AnonymizeTime, FuseTime and MetricsTime break Elapsed into its three
	// phases: anonymization (including the suppressed projection), the
	// fusion attack with both dissimilarities, and the utility metric.
	AnonymizeTime time.Duration
	FuseTime      time.Duration
	MetricsTime   time.Duration
}

// Attack simulates the Web-Based Information-Fusion Attack against one
// release: it fuses the release with the auxiliary data and reports the
// adversary's estimate and its dissimilarity from the truth.
//
// The returned before/after pair quantifies the information gain of
// Section 6.B: before is the no-fusion (midpoint) estimate's dissimilarity,
// after the fused estimate's.
//
// Attack is the one-shot form; sweeps build a SweepContext once and reuse
// its precomputed invariants at every level.
func Attack(p, release *dataset.Table, atk AttackConfig) (phat *dataset.Table, before, after float64, err error) {
	return NewSweepContext(p, atk).Attack(release)
}

// SweepContext precomputes everything about a (P, adversary) pair that is
// invariant across anonymization levels: the comparison columns of
// Definition 1, P's column vectors, the aux-side fusion feature columns, and
// the Midpoint estimator's baseline inputs. Run, Sweep and SweepParallel
// build one context per sweep; each level then only pays for the work that
// actually depends on k. A context is immutable after construction (the
// worker budget is attached once, before the context is shared) and safe for
// concurrent use; per-level mutable state lives in pooled levelScratch
// values, one checked out per level.
type SweepContext struct {
	p   *dataset.Table
	atk AttackConfig
	est fusion.Estimator
	// budget is the sweep-wide worker budget levels borrow spare tokens
	// from for within-level parallelism; nil runs every level inline.
	budget *parallel.Budget
	// cols names the compared attributes; colIdx are their schema indices
	// (identical in P and any release, which share the schema).
	cols   []string
	colIdx []int
	// pVecs holds P's comparison columns read at def = SensitiveRange.Mid().
	pVecs [][]float64
	// midVec is the no-fusion baseline estimate: one midpoint per record.
	midVec []float64
	// aux is the precomputed aux-side half of the fusion features.
	aux *fusion.AuxFeatures
	// scratch pools per-level working state (the fusion arena, the grouper,
	// the comparison vectors) so a sweep's steady-state levels allocate next
	// to nothing. Each level checks one levelScratch out for its whole
	// duration, which keeps the context itself free of mutable shared state.
	scratch sync.Pool
}

// levelScratch is the reusable working state of one level evaluation: the
// fusion arena backing the feature matrix, imputation buffers and estimate
// slices; the grouper behind the discernibility metric; and the release-side
// comparison vectors of the dissimilarity step.
type levelScratch struct {
	arena   fusion.Arena
	grouper dataset.Grouper
	relVecs [][]float64
}

func (sc *SweepContext) getScratch() *levelScratch {
	if ls, ok := sc.scratch.Get().(*levelScratch); ok {
		return ls
	}
	return &levelScratch{}
}

func (sc *SweepContext) putScratch(ls *levelScratch) { sc.scratch.Put(ls) }

// NewSweepContext prepares the per-sweep invariants of the fusion attack
// against p.
func NewSweepContext(p *dataset.Table, atk AttackConfig) *SweepContext {
	est := atk.Estimator
	if est == nil {
		est = fusion.NewFuzzy()
	}
	sc := &SweepContext{p: p, atk: atk, est: est, cols: comparisonColumns(p)}
	mid := atk.SensitiveRange.Mid()
	sc.colIdx = make([]int, len(sc.cols))
	sc.pVecs = make([][]float64, len(sc.cols))
	for j, name := range sc.cols {
		sc.colIdx[j] = p.Schema().MustLookup(name)
		sc.pVecs[j] = p.ColumnFloats(sc.colIdx[j], mid)
	}
	sc.midVec = make([]float64, p.NumRows())
	for i := range sc.midVec {
		sc.midVec[i] = mid
	}
	sc.aux = fusion.PrepareAux(atk.Aux)
	return sc
}

// NewSweepContextParallel is NewSweepContext with a worker budget attached:
// budgeted kernels inside RunLevel may use up to workers tokens. The
// adaptive planner's single-level probes share one such context so
// bisection keeps within-level parallelism even though levels are probed
// one at a time; workers ≤ 1 attaches no budget and kernels run inline.
func NewSweepContextParallel(p *dataset.Table, atk AttackConfig, workers int) *SweepContext {
	sc := NewSweepContext(p, atk)
	sc.budget = parallel.NewBudget(workers)
	return sc
}

// Attack runs the fusion attack of the context's adversary against one
// release, exactly as the package-level Attack does.
func (sc *SweepContext) Attack(release *dataset.Table) (phat *dataset.Table, before, after float64, err error) {
	ls := sc.getScratch()
	defer sc.putScratch(ls)
	return sc.attack(release, ls)
}

// attack is Attack with the level's scratch checked out by the caller. All
// transient fusion state (feature matrix, imputation buffers, estimates,
// comparison vectors) comes out of ls.arena, which is reset here — callers
// must not hold arena-backed slices across attack calls.
func (sc *SweepContext) attack(release *dataset.Table, ls *levelScratch) (phat *dataset.Table, before, after float64, err error) {
	p := sc.p
	if p.NumRows() != release.NumRows() {
		return nil, 0, 0, fmt.Errorf("core: private data has %d rows, release has %d", p.NumRows(), release.NumRows())
	}
	// Resolve the comparison columns in the release. Sweeps hand back P's
	// own schema, so the precomputed indices apply; a caller-supplied
	// release with a different layout is resolved (and validated) by name.
	relIdx := sc.colIdx
	if release.Schema() != p.Schema() && !release.Schema().Equal(p.Schema()) {
		relIdx = make([]int, len(sc.cols))
		for j, name := range sc.cols {
			idx, err := release.Schema().Lookup(name)
			if err != nil {
				return nil, 0, 0, fmt.Errorf("core: release: %w", err)
			}
			relIdx[j] = idx
		}
	}
	// Pre-fusion: the adversary holds only the release with its sensitive
	// column forced to the public-range midpoint. CanFuse reproduces the
	// baseline Fuse's validation without building the baseline table.
	if err := fusion.CanFuse(release, sc.atk.SensitiveRange); err != nil {
		return nil, 0, 0, fmt.Errorf("core: pre-fusion baseline: %w", err)
	}
	ls.arena.Reset()
	phat, err = fusion.FuseWithBatch(release, sc.aux, sc.est, sc.atk.SensitiveRange, sc.budget, &ls.arena)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("core: fusion attack: %w", err)
	}
	mid := sc.atk.SensitiveRange.Mid()
	n := p.NumRows()
	if cap(ls.relVecs) < len(sc.cols) {
		ls.relVecs = make([][]float64, len(sc.cols))
	}
	relVecs := ls.relVecs[:len(sc.cols)]
	sensPos := -1
	for j, idx := range relIdx {
		if release.Schema().Column(idx).Class == dataset.Sensitive {
			// The baseline estimate is the constant midpoint, whatever the
			// release publishes in the sensitive column.
			relVecs[j] = sc.midVec
			sensPos = j
		} else {
			relVecs[j] = release.AppendColumnFloats(ls.arena.Floats(n)[:0], idx, mid)
		}
	}
	before, err = metrics.ColumnDissimilarity(sc.pVecs, relVecs, p.NumRows())
	if err != nil {
		return nil, 0, 0, err
	}
	// P̂ shares every column with the release except the estimated sensitive
	// one; swap just that vector for the after-fusion comparison.
	if sensPos >= 0 {
		relVecs[sensPos] = phat.AppendColumnFloats(ls.arena.Floats(n)[:0], relIdx[sensPos], mid)
	}
	after, err = metrics.ColumnDissimilarity(sc.pVecs, relVecs, p.NumRows())
	if err != nil {
		return nil, 0, 0, err
	}
	return phat, before, after, nil
}

// RunLevel anonymizes P at level k, projects the release (sensitive columns
// suppressed, zero-copy), attacks it and measures utility — one sweep
// iteration.
func (sc *SweepContext) RunLevel(anon Anonymizer, k int, tp float64) (LevelResult, error) {
	start := time.Now()
	anonT, err := anonymizeLevel(anon, sc.p, k, sc.budget)
	if err != nil {
		return LevelResult{}, err
	}
	release := anonT.WithSuppressed(anonT.Schema().IndicesOf(dataset.Sensitive)...)
	anonDone := time.Now()
	ls := sc.getScratch()
	defer sc.putScratch(ls)
	phat, before, after, err := sc.attack(release, ls)
	if err != nil {
		return LevelResult{}, err
	}
	fuseDone := time.Now()
	util, err := metrics.UtilityWith(release, k, &ls.grouper)
	if err != nil {
		return LevelResult{}, err
	}
	end := time.Now()
	return LevelResult{
		K:             k,
		Release:       release,
		Phat:          phat,
		Before:        before,
		After:         after,
		Gain:          metrics.InformationGain(before, after),
		Utility:       util,
		Candidate:     after >= tp,
		Elapsed:       end.Sub(start),
		AnonymizeTime: anonDone.Sub(start),
		FuseTime:      fuseDone.Sub(anonDone),
		MetricsTime:   end.Sub(fuseDone),
	}, nil
}

// comparisonColumns returns the numeric quasi-identifier and sensitive
// columns of P — the attributes Definition 1 compares.
func comparisonColumns(p *dataset.Table) []string {
	var cols []string
	for i := 0; i < p.NumCols(); i++ {
		c := p.Schema().Column(i)
		if c.Kind != dataset.Number {
			continue
		}
		if c.Class == dataset.QuasiIdentifier || c.Class == dataset.Sensitive {
			cols = append(cols, c.Name)
		}
	}
	return cols
}

// Run executes FRED Anonymization (Algorithm 1) on the private table p: a
// sequential SweepStream under the configured stopping rule, then Decide's
// threshold filter and H-objective argmax.
func Run(p *dataset.Table, cfg Config) (*Result, error) {
	if cfg.Anonymizer == nil {
		return nil, errors.New("core: config needs an anonymizer")
	}
	if p == nil || p.NumRows() == 0 {
		return nil, errors.New("core: empty private table")
	}
	minK := cfg.MinK
	if minK == 0 {
		minK = 2
	}
	if minK < 2 {
		return nil, fmt.Errorf("core: MinK must be ≥ 2, got %d", minK)
	}
	maxK := cfg.MaxK
	if maxK == 0 {
		maxK = p.NumRows()
	}
	if maxK < minK {
		return nil, fmt.Errorf("core: MaxK %d below MinK %d", maxK, minK)
	}

	var levels []LevelResult
	err := SweepStream(context.Background(), p, StreamConfig{
		Anonymizer: cfg.Anonymizer,
		Attack:     cfg.Attack,
		MinK:       minK,
		MaxK:       maxK,
		Workers:    1,
		Tp:         cfg.Tp,
	}, func(lr LevelResult) error {
		levels = append(levels, lr)
		if cfg.StopsAfter(lr) {
			return ErrStopSweep
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return Decide(levels, cfg)
}

// Sweep evaluates every level in [minK, maxK] unconditionally — the series
// behind Figures 4–7, which the paper plots for k = 2..16 regardless of
// thresholds. A sweep that outgrows the table ends early rather than
// failing. It is SweepStream with a single worker, collected into a slice.
func Sweep(p *dataset.Table, anon Anonymizer, atk AttackConfig, minK, maxK int) ([]LevelResult, error) {
	return sweepCollect(p, anon, atk, minK, maxK, 1)
}

// SweepParallel is Sweep with the levels evaluated concurrently — they are
// independent, so the sweep parallelizes perfectly. Results are identical to
// Sweep's (same order, deterministic); only wall time changes. Workers
// bounds the concurrency (0 means one worker per level).
func SweepParallel(p *dataset.Table, anon Anonymizer, atk AttackConfig, minK, maxK, workers int) ([]LevelResult, error) {
	return sweepCollect(p, anon, atk, minK, maxK, workers)
}

func sweepCollect(p *dataset.Table, anon Anonymizer, atk AttackConfig, minK, maxK, workers int) ([]LevelResult, error) {
	var out []LevelResult
	err := SweepStream(context.Background(), p, StreamConfig{
		Anonymizer: anon,
		Attack:     atk,
		MinK:       minK,
		MaxK:       maxK,
		Workers:    workers,
	}, func(lr LevelResult) error {
		out = append(out, lr)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// isTooFewRecords detects "k exceeds the table" errors from any anonymizer.
// The in-tree schemes all wrap dataset.ErrTooFewRecords, checked via
// errors.Is; the string match remains as a fallback for out-of-tree
// anonymizers that satisfy the structural contract with their own wording.
func isTooFewRecords(err error) bool {
	if errors.Is(err, dataset.ErrTooFewRecords) {
		return true
	}
	s := err.Error()
	return strings.Contains(s, "fewer records") || strings.Contains(s, "cannot be")
}

// EndsSweep reports whether err is the legitimate "k exceeds the table"
// condition that ends a level sweep early rather than failing it — the same
// predicate Sweep and SweepParallel apply internally, exported for callers
// that stitch sweeps together chunk by chunk.
func EndsSweep(err error) bool { return err != nil && isTooFewRecords(err) }
