package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/metrics"
)

// Adaptive anonymization is the follow-up the paper cites as [11] ("Adaptive
// data anonymization against information fusion based privacy attacks on
// enterprise data", SAC 2008): rather than one global level, protection is
// tightened only where the simulated attack still succeeds. This file
// implements a prototype of that idea on top of the FRED machinery —
// per-record targeted suppression driven by the attack simulation.

// AdaptiveConfig parameterizes AdaptiveRun.
type AdaptiveConfig struct {
	// Anonymizer and Attack are as in Config.
	Anonymizer Anonymizer
	Attack     AttackConfig
	// K is the base anonymization level.
	K int
	// RiskTol is the relative error below which a record counts as exposed
	// (e.g. 0.1: the adversary estimated within ±10% of the truth).
	RiskTol float64
	// MaxExposedFraction is the acceptable fraction of exposed records; the
	// loop tightens the release until the rate drops to or below it.
	MaxExposedFraction float64
	// MaxRounds bounds the tighten-and-reattack loop. 0 means rounds until
	// every record could have been suppressed once.
	MaxRounds int
}

// AdaptiveResult reports an adaptive run.
type AdaptiveResult struct {
	// Release is the final adaptive release.
	Release *dataset.Table
	// Rounds is the number of tighten-and-reattack iterations performed.
	Rounds int
	// Suppressed lists the rows whose quasi-identifiers were suppressed.
	Suppressed []int
	// ExposedBefore and ExposedAfter are the exposure rates at the base
	// release and at the final release.
	ExposedBefore, ExposedAfter float64
	// Utility is the discernibility utility of the final release at K.
	Utility float64
	// Exhausted reports that every exposed record was already suppressed
	// yet exposure stayed above target — the auxiliary data alone keeps
	// estimating them, the paper's "it is not possible to entirely prevent
	// fusion based privacy attacks".
	Exhausted bool
}

// AdaptiveRun anonymizes at the base level, simulates the fusion attack,
// and suppresses the quasi-identifiers of the most precisely estimated
// records until the exposure rate is acceptable. Suppression removes those
// records' rows from the adversary's feature space (their cells impute to
// column means), trading their utility for protection — the adaptive
// counterpart of raising k globally.
func AdaptiveRun(p *dataset.Table, cfg AdaptiveConfig) (*AdaptiveResult, error) {
	if cfg.Anonymizer == nil {
		return nil, errors.New("core: adaptive config needs an anonymizer")
	}
	if p == nil || p.NumRows() == 0 {
		return nil, errors.New("core: empty private table")
	}
	if cfg.K < 2 {
		return nil, fmt.Errorf("core: adaptive base level must be ≥ 2, got %d", cfg.K)
	}
	if cfg.RiskTol <= 0 {
		return nil, fmt.Errorf("core: risk tolerance must be positive, got %g", cfg.RiskTol)
	}
	if cfg.MaxExposedFraction < 0 || cfg.MaxExposedFraction > 1 {
		return nil, fmt.Errorf("core: max exposed fraction %g outside [0, 1]", cfg.MaxExposedFraction)
	}
	sens := p.Schema().IndicesOf(dataset.Sensitive)
	if len(sens) != 1 {
		return nil, fmt.Errorf("core: adaptive run needs exactly one sensitive column, found %d", len(sens))
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = p.NumRows()
	}

	anon, err := cfg.Anonymizer.Anonymize(p, cfg.K)
	if err != nil {
		return nil, err
	}
	release := anon.Clone()
	release.SuppressColumn(sens[0])

	res := &AdaptiveResult{Release: release}
	truth := p.ColumnFloats(sens[0], 0)
	qis := release.Schema().IndicesOf(dataset.QuasiIdentifier)

	suppressedSet := make(map[int]bool)
	for round := 0; ; round++ {
		phat, _, _, err := Attack(p, release, cfg.Attack)
		if err != nil {
			return nil, err
		}
		est := phat.ColumnFloats(sens[0], 0)
		exposed := exposedRecords(truth, est, cfg.RiskTol)
		rate := float64(len(exposed)) / float64(len(truth))
		if round == 0 {
			res.ExposedBefore = rate
		}
		res.ExposedAfter = rate
		res.Rounds = round
		if rate <= cfg.MaxExposedFraction || round >= maxRounds {
			break
		}
		// Tighten: suppress the most precisely estimated still-unsuppressed
		// record. One per round keeps the loop attack-guided — the next
		// attack sees the changed feature space.
		progress := false
		for _, i := range exposed {
			if suppressedSet[i] {
				continue
			}
			for _, c := range qis {
				if err := release.SetCell(i, c, dataset.NullValue()); err != nil {
					return nil, err
				}
			}
			suppressedSet[i] = true
			res.Suppressed = append(res.Suppressed, i)
			progress = true
			break
		}
		if !progress {
			res.Exhausted = true
			break // everything exposed is already suppressed; give up
		}
	}
	sort.Ints(res.Suppressed)
	if res.Utility, err = metrics.Utility(release, cfg.K); err != nil {
		return nil, err
	}
	return res, nil
}

// exposedRecords returns the indices of records estimated within relTol of
// the truth, ordered most-precisely-estimated first.
func exposedRecords(truth, est []float64, relTol float64) []int {
	type rec struct {
		idx int
		rel float64
	}
	var out []rec
	for i := range truth {
		bound := relTol * math.Abs(truth[i])
		if truth[i] == 0 {
			bound = relTol
		}
		if d := math.Abs(est[i] - truth[i]); d <= bound {
			rel := d
			if truth[i] != 0 {
				rel = d / math.Abs(truth[i])
			}
			out = append(out, rec{i, rel})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].rel != out[b].rel {
			return out[a].rel < out[b].rel
		}
		return out[a].idx < out[b].idx
	})
	idx := make([]int, len(out))
	for i, r := range out {
		idx[i] = r.idx
	}
	return idx
}
