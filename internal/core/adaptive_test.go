package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/microagg"
)

func TestAdaptiveRunReducesExposure(t *testing.T) {
	p, q := universityFixture(t, 40)
	res, err := AdaptiveRun(p, AdaptiveConfig{
		Anonymizer:         microagg.New(),
		Attack:             AttackConfig{Aux: q, SensitiveRange: salaryRange()},
		K:                  4,
		RiskTol:            0.10,
		MaxExposedFraction: 0.10,
		MaxRounds:          30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExposedAfter > res.ExposedBefore {
		t.Errorf("exposure rose: %.2f → %.2f", res.ExposedBefore, res.ExposedAfter)
	}
	// Three legal terminal states: target reached, rounds exhausted, or all
	// exposed rows already suppressed (the web data alone keeps estimating
	// them). A stop in any other state is a bug.
	if res.ExposedAfter > 0.10 && res.Rounds < 30 && !res.Exhausted {
		t.Errorf("stopped early at %.2f exposure", res.ExposedAfter)
	}
	// Suppressed rows have null QIs in the release.
	qis := res.Release.Schema().IndicesOf(dataset.QuasiIdentifier)
	for _, i := range res.Suppressed {
		for _, c := range qis {
			if !res.Release.Cell(i, c).IsNull() {
				t.Errorf("row %d QI %d not suppressed", i, c)
			}
		}
	}
	if res.Utility <= 0 {
		t.Errorf("utility = %g", res.Utility)
	}
}

func TestAdaptiveRunNoOpWhenAlreadySafe(t *testing.T) {
	p, q := universityFixture(t, 30)
	res, err := AdaptiveRun(p, AdaptiveConfig{
		Anonymizer:         microagg.New(),
		Attack:             AttackConfig{Aux: q, SensitiveRange: salaryRange()},
		K:                  3,
		RiskTol:            0.001, // nobody is estimated this precisely
		MaxExposedFraction: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || len(res.Suppressed) != 0 {
		t.Errorf("rounds = %d, suppressed = %v", res.Rounds, res.Suppressed)
	}
	if res.ExposedBefore != res.ExposedAfter {
		t.Error("exposure changed without suppression")
	}
}

func TestAdaptiveRunZeroTargetSuppressesUntilDry(t *testing.T) {
	p, q := universityFixture(t, 20)
	res, err := AdaptiveRun(p, AdaptiveConfig{
		Anonymizer:         microagg.New(),
		Attack:             AttackConfig{Aux: q, SensitiveRange: salaryRange()},
		K:                  2,
		RiskTol:            0.15,
		MaxExposedFraction: 0,
		MaxRounds:          25,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Either exposure reached zero, rounds ran out, or the loop exhausted
	// its suppression options (the aux data alone can keep estimating
	// suppressed rows — exactly the paper's point that fusion attacks
	// cannot be fully prevented).
	if res.ExposedAfter > 0 && res.Rounds < 25 && !res.Exhausted {
		t.Errorf("stopped with %.2f exposure after %d rounds, %d suppressed",
			res.ExposedAfter, res.Rounds, len(res.Suppressed))
	}
	if res.Exhausted && len(res.Suppressed) == 0 {
		t.Error("exhausted without suppressing anything")
	}
}

func TestAdaptiveRunValidation(t *testing.T) {
	p, q := universityFixture(t, 10)
	atk := AttackConfig{Aux: q, SensitiveRange: salaryRange()}
	cases := []AdaptiveConfig{
		{Attack: atk, K: 3, RiskTol: 0.1},                                                    // nil anonymizer
		{Anonymizer: microagg.New(), Attack: atk, K: 1, RiskTol: 0.1},                        // bad K
		{Anonymizer: microagg.New(), Attack: atk, K: 3, RiskTol: 0},                          // bad tol
		{Anonymizer: microagg.New(), Attack: atk, K: 3, RiskTol: 0.1, MaxExposedFraction: 2}, // bad fraction
	}
	for i, cfg := range cases {
		if _, err := AdaptiveRun(p, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := AdaptiveRun(nil, AdaptiveConfig{Anonymizer: microagg.New(), K: 2, RiskTol: 0.1}); err == nil {
		t.Error("nil table accepted")
	}
	// Two sensitive columns.
	two := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "Q", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "S1", Class: dataset.Sensitive, Kind: dataset.Number},
		dataset.Column{Name: "S2", Class: dataset.Sensitive, Kind: dataset.Number},
	))
	two.MustAppendRow(dataset.Num(1), dataset.Num(1), dataset.Num(1))
	two.MustAppendRow(dataset.Num(2), dataset.Num(2), dataset.Num(2))
	if _, err := AdaptiveRun(two, AdaptiveConfig{Anonymizer: microagg.New(), K: 2, RiskTol: 0.1, Attack: AttackConfig{SensitiveRange: salaryRange()}}); err == nil {
		t.Error("two sensitive columns accepted")
	}
}
