package core

import (
	"errors"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/fusion"
	"repro/internal/linkage"
	"repro/internal/metrics"
	"repro/internal/microagg"
	"repro/internal/web"
)

// universityFixture builds the full paper scenario: private table P, web
// corpus from the matching profiles, and gathered auxiliary table Q.
func universityFixture(t testing.TB, n int) (*dataset.Table, *dataset.Table) {
	t.Helper()
	p, profiles, err := datagen.University(datagen.UniversityConfig{Seed: 42, N: n})
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := web.BuildCorpus(profiles, web.GenOptions{Seed: 42, Distractors: 2 * n, PropertyNoise: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	q, err := web.Gather(corpus, p.ColumnStrings(0), web.AcademicLadder, linkage.DefaultMatcher())
	if err != nil {
		t.Fatal(err)
	}
	return p, q
}

func salaryRange() fusion.Range { return fusion.Range{Lo: 40000, Hi: 160000} }

func TestAttackGainsInformation(t *testing.T) {
	p, q := universityFixture(t, 40)
	anon, err := microagg.New().Anonymize(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	release := anon.Clone()
	release.SuppressColumn(release.Schema().MustLookup("Salary"))

	phat, before, after, err := Attack(p, release, AttackConfig{Aux: q, SensitiveRange: salaryRange()})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's central claim (Figures 4 vs 5): fusion strictly improves
	// the adversary's estimate.
	if after >= before {
		t.Errorf("after %g not below before %g: fusion gained nothing", after, before)
	}
	if g := metrics.InformationGain(before, after); g <= 0 {
		t.Errorf("information gain %g not positive", g)
	}
	// P̂ has the same shape as P and a filled sensitive column.
	if phat.NumRows() != p.NumRows() {
		t.Fatalf("phat rows = %d", phat.NumRows())
	}
	sal := phat.Schema().MustLookup("Salary")
	for i := 0; i < phat.NumRows(); i++ {
		if phat.Cell(i, sal).IsNull() {
			t.Fatalf("row %d estimate missing", i)
		}
	}
}

func TestAttackWithoutAuxMatchesMidpointBaseline(t *testing.T) {
	// With no web data and the release-only fuzzy system, the adversary
	// still does no worse than the midpoint (QIs alone correlate with
	// salary — the reason the paper suppresses and generalizes them).
	p, _ := universityFixture(t, 40)
	anon, err := microagg.New().Anonymize(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	release := anon.Clone()
	release.SuppressColumn(release.Schema().MustLookup("Salary"))
	_, before, after, err := Attack(p, release, AttackConfig{SensitiveRange: salaryRange()})
	if err != nil {
		t.Fatal(err)
	}
	if after > before {
		t.Errorf("release-only fusion (%g) worse than midpoint (%g)", after, before)
	}
}

func TestAttackRowMismatch(t *testing.T) {
	p, _ := universityFixture(t, 40)
	short := p.Select(func([]dataset.Value) bool { return false })
	if _, _, _, err := Attack(p, short, AttackConfig{SensitiveRange: salaryRange()}); err == nil {
		t.Error("row mismatch accepted")
	}
}

func TestSweepSeriesShapes(t *testing.T) {
	p, q := universityFixture(t, 40)
	atk := AttackConfig{Aux: q, SensitiveRange: salaryRange()}
	levels, err := Sweep(p, microagg.New(), atk, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 15 {
		t.Fatalf("levels = %d, want 15", len(levels))
	}
	for i, lr := range levels {
		if lr.K != i+2 {
			t.Errorf("level %d has K=%d", i, lr.K)
		}
		// Figure 5 below Figure 4 at every k.
		if lr.After >= lr.Before {
			t.Errorf("k=%d: after %g ≥ before %g", lr.K, lr.After, lr.Before)
		}
		// Figure 6: gain positive.
		if lr.Gain <= 0 {
			t.Errorf("k=%d: gain %g", lr.K, lr.Gain)
		}
	}
	// Figure 7: utility decreases with k as a trend. MDAV's cluster-size
	// arithmetic makes it locally bumpy (40 = 5×8 at k=8 scores better
	// than 4×7+12 at k=7), so assert the endpoints and the half-means
	// rather than strict monotonicity.
	if levels[len(levels)-1].Utility >= levels[0].Utility {
		t.Errorf("utility did not fall across the sweep: %g → %g",
			levels[0].Utility, levels[len(levels)-1].Utility)
	}
	var firstHalf, secondHalf float64
	half := len(levels) / 2
	for i, lr := range levels {
		if i < half {
			firstHalf += lr.Utility
		} else {
			secondHalf += lr.Utility
		}
	}
	if firstHalf/float64(half) <= secondHalf/float64(len(levels)-half) {
		t.Errorf("utility trend not decreasing: first half mean %g ≤ second half mean %g",
			firstHalf/float64(half), secondHalf/float64(len(levels)-half))
	}
	// Figure 4 nearly flat: the salary midpoint error dominates; relative
	// spread of Before across k stays under 1%.
	lo, hi := levels[0].Before, levels[0].Before
	for _, lr := range levels {
		if lr.Before < lo {
			lo = lr.Before
		}
		if lr.Before > hi {
			hi = lr.Before
		}
	}
	if (hi-lo)/hi > 0.01 {
		t.Errorf("Before spread %.3f%% too large for the 'flat' Figure 4 shape", 100*(hi-lo)/hi)
	}
}

func TestSweepValidation(t *testing.T) {
	p, _ := universityFixture(t, 10)
	if _, err := Sweep(p, nil, AttackConfig{SensitiveRange: salaryRange()}, 2, 4); err == nil {
		t.Error("nil anonymizer accepted")
	}
	if _, err := Sweep(p, microagg.New(), AttackConfig{SensitiveRange: salaryRange()}, 1, 4); err == nil {
		t.Error("minK=1 accepted")
	}
	if _, err := Sweep(p, microagg.New(), AttackConfig{SensitiveRange: salaryRange()}, 5, 4); err == nil {
		t.Error("inverted range accepted")
	}
	// Sweep beyond the table ends early instead of failing.
	levels, err := Sweep(p, microagg.New(), AttackConfig{SensitiveRange: salaryRange()}, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) == 0 || levels[len(levels)-1].K > 10 {
		t.Errorf("sweep = %d levels, last K = %d", len(levels), levels[len(levels)-1].K)
	}
}

func TestSweepParallelMatchesSequential(t *testing.T) {
	p, q := universityFixture(t, 40)
	atk := AttackConfig{Aux: q, SensitiveRange: salaryRange()}
	seq, err := Sweep(p, microagg.New(), atk, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3, 8} {
		par, err := SweepParallel(p, microagg.New(), atk, 2, 12, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d levels vs %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i].K != seq[i].K || par[i].Before != seq[i].Before ||
				par[i].After != seq[i].After || par[i].Utility != seq[i].Utility {
				t.Errorf("workers=%d level %d differs: %+v vs %+v",
					workers, i, par[i], seq[i])
			}
		}
	}
}

func TestSweepParallelEndsEarlyPastTable(t *testing.T) {
	p, q := universityFixture(t, 10)
	atk := AttackConfig{Aux: q, SensitiveRange: salaryRange()}
	levels, err := SweepParallel(p, microagg.New(), atk, 2, 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) == 0 || levels[len(levels)-1].K > 10 {
		t.Errorf("levels = %d, last K = %d", len(levels), levels[len(levels)-1].K)
	}
	if _, err := SweepParallel(p, nil, atk, 2, 4, 2); err == nil {
		t.Error("nil anonymizer accepted")
	}
	if _, err := SweepParallel(p, microagg.New(), atk, 1, 4, 2); err == nil {
		t.Error("minK=1 accepted")
	}
}

func TestRunFindsInteriorOptimum(t *testing.T) {
	p, q := universityFixture(t, 40)
	// Thresholds recalibrated for the synthetic cohort (DESIGN.md §4):
	// derive them from a probe sweep the way the authors did "based on
	// experimental observations".
	atk := AttackConfig{Aux: q, SensitiveRange: salaryRange()}
	probe, err := Sweep(p, microagg.New(), atk, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	tp := probe[4].After    // protection achieved around k=6 gates the space
	tu := probe[12].Utility // utility at k=14 is the floor
	res, err := Run(p, Config{
		Anonymizer: microagg.New(),
		Attack:     atk,
		Tp:         tp,
		Tu:         tu,
		MaxK:       16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	if res.OptimalK < 2 || res.Hmax <= 0 {
		t.Errorf("optimal K = %d, Hmax = %g", res.OptimalK, res.Hmax)
	}
	if res.Optimal == nil {
		t.Fatal("no optimal release")
	}
	// The optimal release's candidate entry satisfies the thresholds.
	var found bool
	for _, li := range res.Candidates {
		lr := res.Levels[li]
		if lr.K == res.OptimalK {
			found = true
			if lr.After < tp {
				t.Errorf("optimal level violates Tp: %g < %g", lr.After, tp)
			}
			if lr.Utility < tu {
				t.Errorf("optimal level violates Tu: %g < %g", lr.Utility, tu)
			}
		}
	}
	if !found {
		t.Error("optimal K not among candidates")
	}
	// The sensitive column of the optimal release is suppressed.
	sal := res.Optimal.Schema().MustLookup("Salary")
	for i := 0; i < res.Optimal.NumRows(); i++ {
		if !res.Optimal.Cell(i, sal).IsNull() {
			t.Fatal("optimal release leaks the sensitive column")
		}
	}
}

func TestRunStopsAtUtilityThreshold(t *testing.T) {
	p, q := universityFixture(t, 40)
	atk := AttackConfig{Aux: q, SensitiveRange: salaryRange()}
	probe, err := Sweep(p, microagg.New(), atk, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Set Tu to the utility at k=6: the sweep must not continue past the
	// first level whose utility drops below it.
	tu := probe[4].Utility // k=6
	res, err := Run(p, Config{
		Anonymizer: microagg.New(),
		Attack:     atk,
		Tp:         0,
		Tu:         tu,
		MaxK:       20,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := res.Levels[len(res.Levels)-1]
	if last.K > 7 {
		t.Errorf("sweep ran to k=%d despite utility threshold at k≈6", last.K)
	}
}

func TestRunLiteralPaperLoop(t *testing.T) {
	p, q := universityFixture(t, 40)
	atk := AttackConfig{Aux: q, SensitiveRange: salaryRange()}
	// Literal pseudocode: "repeat ... until U ≥ Tu" with a tiny Tu stops
	// after the very first level.
	res, err := Run(p, Config{
		Anonymizer:       microagg.New(),
		Attack:           atk,
		Tp:               0,
		Tu:               1e-9,
		LiteralPaperLoop: true,
		MaxK:             16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 1 || res.Levels[0].K != 2 {
		t.Errorf("literal loop swept %d levels", len(res.Levels))
	}
}

func TestRunNoCandidates(t *testing.T) {
	p, q := universityFixture(t, 20)
	_, err := Run(p, Config{
		Anonymizer: microagg.New(),
		Attack:     AttackConfig{Aux: q, SensitiveRange: salaryRange()},
		Tp:         1e18, // unreachable protection
		Tu:         0,
		MaxK:       6,
	})
	if !errors.Is(err, ErrNoCandidate) {
		t.Errorf("err = %v, want ErrNoCandidate", err)
	}
}

func TestRunConfigValidation(t *testing.T) {
	p, _ := universityFixture(t, 10)
	if _, err := Run(p, Config{}); err == nil {
		t.Error("nil anonymizer accepted")
	}
	if _, err := Run(nil, Config{Anonymizer: microagg.New()}); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := Run(p, Config{Anonymizer: microagg.New(), MinK: 1}); err == nil {
		t.Error("MinK=1 accepted")
	}
	if _, err := Run(p, Config{Anonymizer: microagg.New(), MinK: 5, MaxK: 3}); err == nil {
		t.Error("MaxK < MinK accepted")
	}
}

func TestRunWithAlternativeEstimators(t *testing.T) {
	p, q := universityFixture(t, 30)
	for _, est := range []fusion.Estimator{fusion.Rank{}, fusion.NewFuzzy()} {
		res, err := Run(p, Config{
			Anonymizer: microagg.New(),
			Attack:     AttackConfig{Aux: q, Estimator: est, SensitiveRange: salaryRange()},
			Tp:         0,
			Tu:         0,
			MaxK:       8,
		})
		if err != nil {
			t.Fatalf("%s: %v", est.Name(), err)
		}
		if res.OptimalK < 2 {
			t.Errorf("%s: optimal K = %d", est.Name(), res.OptimalK)
		}
	}
}

// TestAttackUnsuppressedSensitiveBaseline: the pre-fusion "before" always
// measures the midpoint baseline, even when the caller's release publishes
// the sensitive column (e.g. a perturbed release handed straight to Attack).
func TestAttackUnsuppressedSensitiveBaseline(t *testing.T) {
	p, q := universityFixture(t, 24)
	anon, err := microagg.New().Anonymize(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Leave the sensitive column published: before must still compare P
	// against the release with the sensitive column forced to the midpoint.
	atk := AttackConfig{Aux: q, SensitiveRange: salaryRange()}
	_, before, _, err := Attack(p, anon, atk)
	if err != nil {
		t.Fatal(err)
	}
	pmid, err := fusion.FuseBaseline(anon, salaryRange())
	if err != nil {
		t.Fatal(err)
	}
	want, err := metrics.TableDissimilarity(p, pmid, comparisonColumns(p), salaryRange().Mid())
	if err != nil {
		t.Fatal(err)
	}
	if before != want {
		t.Errorf("before = %v, want midpoint-baseline %v", before, want)
	}
}

// TestAttackReleaseWithReorderedSchema: a caller-supplied release whose
// columns are laid out differently is resolved by name, not by P's column
// positions.
func TestAttackReleaseWithReorderedSchema(t *testing.T) {
	p, q := universityFixture(t, 24)
	anon, err := microagg.New().Anonymize(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	release := anon.WithSuppressed(anon.Schema().IndicesOf(dataset.Sensitive)...)
	// Reverse the column order in a projected copy of the release.
	names := release.Schema().Names()
	rev := make([]string, len(names))
	for i, n := range names {
		rev[len(names)-1-i] = n
	}
	shuffled, err := release.Project(rev...)
	if err != nil {
		t.Fatal(err)
	}
	atk := AttackConfig{Aux: q, SensitiveRange: salaryRange()}
	_, beforeA, afterA, err := Attack(p, release, atk)
	if err != nil {
		t.Fatal(err)
	}
	_, beforeB, afterB, err := Attack(p, shuffled, atk)
	if err != nil {
		t.Fatal(err)
	}
	if beforeA != beforeB || afterA != afterB {
		t.Errorf("reordered release changed the attack: before %v vs %v, after %v vs %v",
			beforeA, beforeB, afterA, afterB)
	}
	// A release missing a compared column is an error, not a misread.
	narrow, err := release.Project(names[:len(names)-1]...)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Attack(p, narrow, atk); err == nil {
		t.Error("release missing a comparison column accepted")
	}
}
