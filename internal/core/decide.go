package core

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/metrics"
)

// This file is the decision half of Algorithm 1 — threshold calibration,
// candidate filtering and the H-objective argmax — split from the sweep
// driver so planners and services can depend on the selection semantics
// without importing the executor. Everything here is pure over a
// []LevelResult series: no sweeping, no I/O.

// Result is the outcome of a FRED run.
type Result struct {
	// Levels holds every swept level in order.
	Levels []LevelResult
	// H holds the objective per candidate level, aligned with Candidates.
	H []float64
	// Candidates indexes Levels entries that passed Tp.
	Candidates []int
	// OptimalK is the chosen anonymization level (Figure 8's argmax).
	OptimalK int
	// Hmax is the objective at OptimalK.
	Hmax float64
	// Optimal is the fusion-resilient release P'_opt.
	Optimal *dataset.Table
}

// ErrNoCandidate is returned when no level passes both thresholds.
var ErrNoCandidate = errors.New("core: no anonymization level satisfies the thresholds")

// StopsAfter reports whether Algorithm 1's stopping rule ends the sweep
// after this level: the prose rule stops once utility falls below Tu, the
// literal pseudocode rule ("repeat … until U_level ≥ Tu") as soon as a
// release is useful.
func (cfg Config) StopsAfter(lr LevelResult) bool {
	if cfg.LiteralPaperLoop {
		return lr.Utility >= cfg.Tu
	}
	return lr.Utility < cfg.Tu
}

// Decide applies Algorithm 1's selection to a swept (possibly truncated)
// series: the Tp candidate filter, the weighted objective H over the
// candidates, and the argmax. It records candidacy on the series in place
// and returns the partial Result alongside ErrNoCandidate when no level
// passes the filter. Run is SweepStream + Decide; callers that stream a
// sweep themselves (e.g. a CLI printing levels live) reuse it to reach
// Run's exact decision without a second sweep — provided they also apply
// Run's Tu stopping rule (Config.StopsAfter) as truncation first. The
// service's fred-sweep job deliberately deviates: it sweeps the full
// requested range and filters candidacy by both thresholds instead of
// truncating at Tu (DecideWithin).
func Decide(levels []LevelResult, cfg Config) (*Result, error) {
	if cfg.HOpts.W1 == 0 && cfg.HOpts.W2 == 0 {
		cfg.HOpts = metrics.DefaultHOptions()
	}
	res := &Result{Levels: levels}
	for i := range res.Levels {
		res.Levels[i].Candidate = res.Levels[i].After >= cfg.Tp
		if res.Levels[i].Candidate {
			res.Candidates = append(res.Candidates, i)
		}
	}
	if len(res.Candidates) == 0 {
		return res, ErrNoCandidate
	}
	dis := make([]float64, len(res.Candidates))
	utl := make([]float64, len(res.Candidates))
	for i, li := range res.Candidates {
		dis[i] = res.Levels[li].After
		utl[i] = res.Levels[li].Utility
	}
	return decideTail(res, dis, utl, cfg.HOpts)
}

// DecideWithin applies the band variant of the selection the service's
// fred-sweep job uses: a level is a candidate only when it clears BOTH
// thresholds (After ≥ tp AND Utility ≥ tu), with no Tu truncation — the
// whole series is considered and the H argmax runs over the band. Candidacy
// is recorded on the series in place; the partial Result is returned
// alongside ErrNoCandidate when the band is empty.
//
// Because H normalization (metrics.HSeries) is computed over the candidate
// arrays alone, any two series that agree on the candidate band decide
// bit-identically — the invariant the adaptive planner's bisection relies
// on to skip levels outside the band.
func DecideWithin(levels []LevelResult, tp, tu float64, opts metrics.HOptions) (*Result, error) {
	if opts.W1 == 0 && opts.W2 == 0 {
		opts = metrics.DefaultHOptions()
	}
	res := &Result{Levels: levels}
	var dis, utl []float64
	for i := range res.Levels {
		res.Levels[i].Candidate = res.Levels[i].After >= tp && res.Levels[i].Utility >= tu
		if res.Levels[i].Candidate {
			res.Candidates = append(res.Candidates, i)
			dis = append(dis, res.Levels[i].After)
			utl = append(utl, res.Levels[i].Utility)
		}
	}
	if len(res.Candidates) == 0 {
		return res, ErrNoCandidate
	}
	return decideTail(res, dis, utl, opts)
}

// decideTail finishes a decision once the candidate arrays are fixed: the
// weighted objective over the band, the argmax, and the optimal level.
func decideTail(res *Result, dis, utl []float64, opts metrics.HOptions) (*Result, error) {
	h, err := metrics.HSeries(dis, utl, opts)
	if err != nil {
		return nil, err
	}
	res.H = h
	best, hmax, err := metrics.ArgMax(h)
	if err != nil {
		return nil, err
	}
	opt := res.Levels[res.Candidates[best]]
	res.OptimalK = opt.K
	res.Hmax = hmax
	res.Optimal = opt.Release
	return res, nil
}

// CalibrateThresholds derives (Tp, Tu) from a probe sweep so the solution
// space is an interior band of levels, mirroring the paper's Tp = 3.075e8,
// Tu = 0.0018 which carve k = 7..14 out of k = 2..16: Tp is the post-fusion
// dissimilarity one third into the sweep, Tu the utility five sixths in —
// thresholds set "based on experimental observations", as the paper puts it.
func CalibrateThresholds(levels []LevelResult) (tp, tu float64, err error) {
	if len(levels) < 3 {
		return 0, 0, fmt.Errorf("core: calibration needs ≥ 3 levels, got %d", len(levels))
	}
	tp = levels[len(levels)/3].After
	tu = levels[len(levels)*5/6].Utility
	return tp, tu, nil
}
