package composition

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/microagg"
	"repro/internal/mondrian"
)

func release(t *testing.T, names []string, ages []dataset.Value) *dataset.Table {
	t.Helper()
	tb := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "Name", Class: dataset.Identifier, Kind: dataset.Text},
		dataset.Column{Name: "Age", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "Income", Class: dataset.Sensitive, Kind: dataset.Number},
	))
	for i := range names {
		tb.MustAppendRow(dataset.Str(names[i]), ages[i], dataset.NullValue())
	}
	return tb
}

func TestIntersectTightensCells(t *testing.T) {
	r1 := release(t, []string{"a", "b"}, []dataset.Value{dataset.Span(20, 40), dataset.Span(30, 50)})
	r2 := release(t, []string{"b", "a"}, []dataset.Value{dataset.Span(25, 35), dataset.Span(30, 60)})
	merged, err := Intersect(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	// a: [20,40] ∩ [30,60] = [30,40]; b: [30,50] ∩ [25,35] = [30,35].
	if got := merged.Cell(0, 1).String(); got != "[30-40]" {
		t.Errorf("a = %s", got)
	}
	if got := merged.Cell(1, 1).String(); got != "[30-35]" {
		t.Errorf("b = %s", got)
	}
}

func TestIntersectPointAndNull(t *testing.T) {
	r1 := release(t, []string{"a", "b", "c"}, []dataset.Value{
		dataset.Span(20, 40), dataset.NullValue(), dataset.Span(10, 20),
	})
	r2 := release(t, []string{"a", "b", "c"}, []dataset.Value{
		dataset.Num(30), dataset.Span(5, 9), dataset.NullValue(),
	})
	merged, err := Intersect(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	// Point inside interval → point.
	if got := merged.Cell(0, 1); !got.Equal(dataset.Num(30)) {
		t.Errorf("a = %v", got)
	}
	// Null in r1 constrains nothing → r2's cell.
	if got := merged.Cell(1, 1); !got.Equal(dataset.Span(5, 9)) {
		t.Errorf("b = %v", got)
	}
	// Null in r2 keeps r1's cell.
	if got := merged.Cell(2, 1); !got.Equal(dataset.Span(10, 20)) {
		t.Errorf("c = %v", got)
	}
}

func TestIntersectDisjointKeepsNarrower(t *testing.T) {
	r1 := release(t, []string{"a"}, []dataset.Value{dataset.Span(0, 10)})
	r2 := release(t, []string{"a"}, []dataset.Value{dataset.Span(20, 25)})
	merged, err := Intersect(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Cell(0, 1); !got.Equal(dataset.Span(20, 25)) {
		t.Errorf("disjoint = %v", got)
	}
}

func TestIntersectMissingIndividual(t *testing.T) {
	r1 := release(t, []string{"a", "b"}, []dataset.Value{dataset.Span(0, 10), dataset.Span(0, 10)})
	r2 := release(t, []string{"a"}, []dataset.Value{dataset.Span(3, 5)})
	merged, err := Intersect(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Cell(0, 1); !got.Equal(dataset.Span(3, 5)) {
		t.Errorf("a = %v", got)
	}
	if got := merged.Cell(1, 1); !got.Equal(dataset.Span(0, 10)) {
		t.Errorf("b untouched = %v", got)
	}
}

func TestIntersectErrors(t *testing.T) {
	if _, err := Intersect(); err == nil {
		t.Error("no releases accepted")
	}
	noID := dataset.New(dataset.MustSchema(
		dataset.Column{Name: "Age", Class: dataset.QuasiIdentifier, Kind: dataset.Number}))
	if _, err := Intersect(noID); err == nil {
		t.Error("identifier-less release accepted")
	}
	r1 := release(t, []string{"a"}, []dataset.Value{dataset.Num(1)})
	if _, err := Intersect(r1, noID); err == nil {
		t.Error("identifier-less second release accepted")
	}
}

func TestNarrowing(t *testing.T) {
	r1 := release(t, []string{"a"}, []dataset.Value{dataset.Span(0, 10)})
	r2 := release(t, []string{"a"}, []dataset.Value{dataset.Span(5, 15)})
	merged, err := Intersect(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	// merged = [5,10], min single width = 10, ratio = 0.5.
	ratio, err := Narrowing(merged, r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 0.5 {
		t.Errorf("ratio = %g, want 0.5", ratio)
	}
	if _, err := Narrowing(merged); err == nil {
		t.Error("no releases accepted")
	}
	short := release(t, []string{"a", "b"}, []dataset.Value{dataset.Num(1), dataset.Num(2)})
	if _, err := Narrowing(merged, short); err == nil {
		t.Error("row mismatch accepted")
	}
}

// TestSequentialReleaseLeak is the integration check: two honest k-anonymous
// releases of the same cohort (different schemes) compose into something
// strictly tighter than either — the attack of refs [16]-[18].
func TestSequentialReleaseLeak(t *testing.T) {
	// A spread of individuals so the two schemes cut differently.
	names := make([]string, 12)
	ages := make([]dataset.Value, 12)
	for i := range names {
		names[i] = string(rune('a' + i))
		ages[i] = dataset.Num(float64(20 + 5*i))
	}
	p := release(t, names, ages)

	m1 := &microagg.Anonymizer{Opts: microagg.Options{Standardize: true, CentroidAsInterval: true}}
	r1, err := m1.Anonymize(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mondrian.New().Anonymize(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Intersect(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := Narrowing(merged, r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if ratio > 1 {
		t.Errorf("composition widened cells: ratio %g", ratio)
	}
	if ratio == 1 {
		t.Log("composition did not tighten this pair (schemes cut identically)")
	}
	// The merged cells still cover the truth.
	for i := 0; i < p.NumRows(); i++ {
		truth := p.Cell(i, 1).MustFloat()
		cell := merged.Cell(i, 1)
		if !cell.Contains(truth) {
			t.Errorf("row %d: merged cell %v does not cover %g", i, cell, truth)
		}
	}
}
