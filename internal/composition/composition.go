// Package composition implements the sequential-release attack from the
// paper's related work (Section 2, refs [16]–[18]): when the same private
// table is anonymized and released more than once — say at different k, or
// after re-clustering — an adversary who holds every release can intersect
// the generalized cells per individual. Identifiers stay in enterprise
// releases, so the per-individual join is exact, and the intersection is
// never looser than the tightest single release.
//
// The package both mounts the attack (Intersect) and measures the leak
// (how much narrower the intersected cells are than any single release's).
package composition

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
)

// ErrNoIdentifier is returned when a release lacks a text identifier column
// to join on.
var ErrNoIdentifier = errors.New("composition: release has no identifier column")

// Intersect joins any number of releases of the same individuals on their
// first identifier column and intersects each quasi-identifier cell. The
// result uses the first release's schema and row order. Cells intersect as:
//
//   - two bounded cells (numbers/intervals) → their interval intersection
//     (disjoint bounds keep the narrower cell — inconsistent releases are
//     the publisher's bug, and the adversary keeps the tighter claim);
//   - Null is the identity (a suppressed cell constrains nothing);
//   - text cells keep the more specific (non-equal text stays as-is).
func Intersect(releases ...*dataset.Table) (*dataset.Table, error) {
	if len(releases) == 0 {
		return nil, errors.New("composition: no releases")
	}
	base := releases[0].Clone()
	idCol, err := identifierColumn(base)
	if err != nil {
		return nil, err
	}
	qis := base.Schema().IndicesOf(dataset.QuasiIdentifier)
	for ri, r := range releases[1:] {
		rid, err := identifierColumn(r)
		if err != nil {
			return nil, fmt.Errorf("composition: release %d: %w", ri+1, err)
		}
		// Index the other release's rows by identifier.
		byName := make(map[string]int, r.NumRows())
		for i := 0; i < r.NumRows(); i++ {
			if name, ok := r.Cell(i, rid).Text(); ok {
				byName[name] = i
			}
		}
		for i := 0; i < base.NumRows(); i++ {
			name, ok := base.Cell(i, idCol).Text()
			if !ok {
				continue
			}
			j, ok := byName[name]
			if !ok {
				continue // individual absent from this release
			}
			for _, c := range qis {
				colName := base.Schema().Column(c).Name
				if !r.Schema().Has(colName) {
					continue
				}
				other, err := r.CellByName(j, colName)
				if err != nil {
					return nil, err
				}
				merged := intersectCells(base.Cell(i, c), other)
				if err := base.SetCell(i, c, merged); err != nil {
					return nil, err
				}
			}
		}
	}
	return base, nil
}

func identifierColumn(t *dataset.Table) (int, error) {
	for _, i := range t.Schema().IndicesOf(dataset.Identifier) {
		if t.Schema().Column(i).Kind == dataset.Text {
			return i, nil
		}
	}
	return 0, ErrNoIdentifier
}

func intersectCells(a, b dataset.Value) dataset.Value {
	if a.IsNull() {
		return b
	}
	if b.IsNull() {
		return a
	}
	alo, ahi, aok := a.Bounds()
	blo, bhi, bok := b.Bounds()
	if aok && bok {
		lo := math.Max(alo, blo)
		hi := math.Min(ahi, bhi)
		if lo > hi {
			// Disjoint claims: keep the narrower cell.
			if ahi-alo <= bhi-blo {
				return a
			}
			return b
		}
		if lo == hi {
			return dataset.Num(lo)
		}
		return dataset.Span(lo, hi)
	}
	// Text vs text: equal or keep the first (no hierarchy information here).
	return a
}

// Narrowing reports how much the composition attack tightened the
// quasi-identifier cells: the mean ratio of the intersected cell width to
// the minimum single-release width, over all bounded QI cells (1 = no
// tightening; smaller = leak). Releases must be row-aligned with merged.
func Narrowing(merged *dataset.Table, releases ...*dataset.Table) (float64, error) {
	if len(releases) == 0 {
		return 0, errors.New("composition: no releases")
	}
	qis := merged.Schema().IndicesOf(dataset.QuasiIdentifier)
	var ratioSum float64
	var cells int
	for i := 0; i < merged.NumRows(); i++ {
		for _, c := range qis {
			mv := merged.Cell(i, c)
			_, _, ok := mv.Bounds()
			if !ok {
				continue
			}
			minWidth := math.Inf(1)
			for _, r := range releases {
				if r.NumRows() != merged.NumRows() {
					return 0, fmt.Errorf("composition: release has %d rows, merged has %d", r.NumRows(), merged.NumRows())
				}
				colName := merged.Schema().Column(c).Name
				if !r.Schema().Has(colName) {
					continue
				}
				rv, err := r.CellByName(i, colName)
				if err != nil {
					return 0, err
				}
				if _, _, ok := rv.Bounds(); ok && rv.Width() < minWidth {
					minWidth = rv.Width()
				}
			}
			if math.IsInf(minWidth, 1) {
				continue
			}
			if minWidth == 0 {
				// Already exact in a single release; composition cannot
				// tighten further.
				ratioSum++
			} else {
				ratioSum += mv.Width() / minWidth
			}
			cells++
		}
	}
	if cells == 0 {
		return 0, errors.New("composition: no bounded quasi-identifier cells to compare")
	}
	return ratioSum / float64(cells), nil
}
