package fuzzy

import (
	"errors"
	"fmt"
	"math"
)

// Defuzzifier selects the crisp-output strategy for Mamdani inference.
type Defuzzifier int

// The five standard defuzzifiers.
const (
	// Centroid is the center of gravity of the aggregated surface — the
	// default, and what the paper's Figure 2 "DE-FUZZIFIER" box computes.
	Centroid Defuzzifier = iota
	// Bisector splits the aggregated area in half.
	Bisector
	// MeanOfMaxima averages the points of maximal membership.
	MeanOfMaxima
	// SmallestOfMaxima takes the smallest point of maximal membership.
	SmallestOfMaxima
	// LargestOfMaxima takes the largest point of maximal membership.
	LargestOfMaxima
)

// String returns the defuzzifier name.
func (d Defuzzifier) String() string {
	switch d {
	case Centroid:
		return "centroid"
	case Bisector:
		return "bisector"
	case MeanOfMaxima:
		return "mom"
	case SmallestOfMaxima:
		return "som"
	case LargestOfMaxima:
		return "lom"
	default:
		return fmt.Sprintf("Defuzzifier(%d)", int(d))
	}
}

// Options configures inference.
type Options struct {
	// Norms selects the AND connective (min or product).
	Norms Norms
	// ProductImplication scales consequents by firing strength instead of
	// clipping them (Larsen vs Mamdani implication).
	ProductImplication bool
	// Defuzz selects the output strategy.
	Defuzz Defuzzifier
	// Resolution is the number of samples across the output domain used by
	// the numeric defuzzifiers. Defaults to 201 when zero.
	Resolution int
}

// System is a complete fuzzy inference system: input variables, one output
// variable and a rule base, mirroring the structure of the paper's Figure 2.
type System struct {
	inputs map[string]*Variable
	output *Variable
	rules  []Rule
	opts   Options
}

// NewSystem creates a system with the given output variable and options.
func NewSystem(output *Variable, opts Options) (*System, error) {
	if output == nil {
		return nil, errors.New("fuzzy: system needs an output variable")
	}
	if len(output.Terms()) == 0 {
		return nil, fmt.Errorf("fuzzy: output variable %q has no terms", output.Name)
	}
	if opts.Resolution == 0 {
		opts.Resolution = 201
	}
	if opts.Resolution < 2 {
		return nil, fmt.Errorf("fuzzy: resolution %d too small", opts.Resolution)
	}
	return &System{
		inputs: make(map[string]*Variable),
		output: output,
		opts:   opts,
	}, nil
}

// AddInput registers an input variable.
func (s *System) AddInput(v *Variable) error {
	if v == nil {
		return errors.New("fuzzy: nil input variable")
	}
	if v.Name == s.output.Name {
		return fmt.Errorf("fuzzy: input %q collides with the output variable", v.Name)
	}
	if _, dup := s.inputs[v.Name]; dup {
		return fmt.Errorf("fuzzy: duplicate input variable %q", v.Name)
	}
	if len(v.Terms()) == 0 {
		return fmt.Errorf("fuzzy: input variable %q has no terms", v.Name)
	}
	s.inputs[v.Name] = v
	return nil
}

// AddRule validates a rule against the registered variables and appends it.
func (s *System) AddRule(r Rule) error {
	if r.Antecedent == nil {
		return errors.New("fuzzy: rule has no antecedent")
	}
	if r.outputVar != "" && r.outputVar != s.output.Name {
		return fmt.Errorf("fuzzy: rule %q concludes on %q; system output is %q", r.Text, r.outputVar, s.output.Name)
	}
	if _, err := s.output.Term(r.OutputTerm); err != nil {
		return fmt.Errorf("fuzzy: rule %q: %w", r.Text, err)
	}
	used := make(map[string]bool)
	r.Antecedent.vars(used)
	for name := range used {
		v, ok := s.inputs[name]
		if !ok {
			return fmt.Errorf("fuzzy: rule %q references unknown input %q", r.Text, name)
		}
		// Validate referenced terms exist by walking the expression.
		if err := checkTerms(r.Antecedent, v); err != nil {
			return fmt.Errorf("fuzzy: rule %q: %w", r.Text, err)
		}
	}
	s.rules = append(s.rules, r)
	return nil
}

func checkTerms(e Expr, v *Variable) error {
	switch n := e.(type) {
	case cond:
		if n.variable == v.Name {
			if _, err := v.Term(n.term); err != nil {
				return err
			}
		}
	case notExpr:
		return checkTerms(n.inner, v)
	case andExpr:
		for _, k := range n.kids {
			if err := checkTerms(k, v); err != nil {
				return err
			}
		}
	case orExpr:
		for _, k := range n.kids {
			if err := checkTerms(k, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// AddRuleText parses and adds one rule.
func (s *System) AddRuleText(text string) error {
	r, err := ParseRule(text)
	if err != nil {
		return err
	}
	return s.AddRule(r)
}

// Rules returns a copy of the rule base.
func (s *System) Rules() []Rule {
	out := make([]Rule, len(s.rules))
	copy(out, s.rules)
	return out
}

// Inputs returns the input variable names in no particular order.
func (s *System) Inputs() []string {
	out := make([]string, 0, len(s.inputs))
	for n := range s.inputs {
		out = append(out, n)
	}
	return out
}

// Output returns the output variable.
func (s *System) Output() *Variable { return s.output }

// ErrNoRuleFired is returned when every rule has zero firing strength, so
// the aggregated output surface is empty.
var ErrNoRuleFired = errors.New("fuzzy: no rule fired")

// Evaluate runs Mamdani inference: fuzzify inputs, fire every rule, clip or
// scale its consequent, aggregate by max, and defuzzify. Inputs are crisp
// values keyed by variable name; every registered input must be present
// (the fusion layer handles missing web attributes before calling this).
func (s *System) Evaluate(in map[string]float64) (float64, error) {
	if len(s.rules) == 0 {
		return 0, errors.New("fuzzy: system has no rules")
	}
	grades := make(map[string]map[string]float64, len(s.inputs))
	for name, v := range s.inputs {
		x, ok := in[name]
		if !ok {
			return 0, fmt.Errorf("fuzzy: missing input %q", name)
		}
		grades[name] = v.Fuzzify(x)
	}
	var fired aggregate
	for _, r := range s.rules {
		w := r.Antecedent.strength(grades, s.opts.Norms) * r.Weight
		if w <= 0 {
			continue
		}
		base, err := s.output.Term(r.OutputTerm)
		if err != nil {
			return 0, err
		}
		fired = append(fired, clipped{base: base, cap: w, prod: s.opts.ProductImplication})
	}
	if len(fired) == 0 {
		return 0, ErrNoRuleFired
	}
	return s.defuzzify(fired)
}

// EvaluateSugeno runs zero-order Sugeno inference: each output term must be
// a Singleton; the result is the firing-strength-weighted average of the
// singletons. It is cheaper than Mamdani and used as an engine ablation.
func (s *System) EvaluateSugeno(in map[string]float64) (float64, error) {
	if len(s.rules) == 0 {
		return 0, errors.New("fuzzy: system has no rules")
	}
	grades := make(map[string]map[string]float64, len(s.inputs))
	for name, v := range s.inputs {
		x, ok := in[name]
		if !ok {
			return 0, fmt.Errorf("fuzzy: missing input %q", name)
		}
		grades[name] = v.Fuzzify(x)
	}
	var num, den float64
	for _, r := range s.rules {
		w := r.Antecedent.strength(grades, s.opts.Norms) * r.Weight
		if w <= 0 {
			continue
		}
		f, err := s.output.Term(r.OutputTerm)
		if err != nil {
			return 0, err
		}
		sing, ok := f.(Singleton)
		if !ok {
			return 0, fmt.Errorf("fuzzy: Sugeno output term %q is not a singleton", r.OutputTerm)
		}
		num += w * sing.X
		den += w
	}
	if den == 0 {
		return 0, ErrNoRuleFired
	}
	return num / den, nil
}

func (s *System) defuzzify(surface MembershipFunc) (float64, error) {
	n := s.opts.Resolution
	lo, hi := s.output.Lo, s.output.Hi
	dx := (hi - lo) / float64(n-1)
	xs := make([]float64, n)
	ys := make([]float64, n)
	var maxY float64
	var area float64
	for i := 0; i < n; i++ {
		x := lo + float64(i)*dx
		y := surface.Grade(x)
		xs[i], ys[i] = x, y
		if y > maxY {
			maxY = y
		}
		area += y
	}
	if maxY == 0 || area == 0 {
		return 0, ErrNoRuleFired
	}
	switch s.opts.Defuzz {
	case Centroid:
		var num float64
		for i := range xs {
			num += xs[i] * ys[i]
		}
		return num / area, nil
	case Bisector:
		half := area / 2
		var acc float64
		for i := range xs {
			acc += ys[i]
			if acc >= half {
				return xs[i], nil
			}
		}
		return xs[n-1], nil
	case MeanOfMaxima, SmallestOfMaxima, LargestOfMaxima:
		const tol = 1e-9
		var sum float64
		var count int
		smallest, largest := math.Inf(1), math.Inf(-1)
		for i := range xs {
			if ys[i] >= maxY-tol {
				sum += xs[i]
				count++
				if xs[i] < smallest {
					smallest = xs[i]
				}
				if xs[i] > largest {
					largest = xs[i]
				}
			}
		}
		switch s.opts.Defuzz {
		case SmallestOfMaxima:
			return smallest, nil
		case LargestOfMaxima:
			return largest, nil
		default:
			return sum / float64(count), nil
		}
	default:
		return 0, fmt.Errorf("fuzzy: unknown defuzzifier %v", s.opts.Defuzz)
	}
}
