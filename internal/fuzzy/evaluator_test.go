package fuzzy

import (
	"errors"
	"math"
	"testing"
)

// buildTestSystem assembles a 2-input Mamdani system with the generated
// Ruspini partitions the fusion layer uses.
func buildTestSystem(t *testing.T, opts Options, rules []string) *System {
	t.Helper()
	out, err := NewVariable("out", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.ThreeTerms("low", "med", "high"); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(out, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		v, err := NewVariable(name, 0, 10)
		if err != nil {
			t.Fatal(err)
		}
		if err := v.ThreeTerms("low", "med", "high"); err != nil {
			t.Fatal(err)
		}
		if err := sys.AddInput(v); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range rules {
		if err := sys.AddRuleText(r); err != nil {
			t.Fatalf("rule %q: %v", r, err)
		}
	}
	return sys
}

// TestEvaluatorMatchesSystem: the reusable evaluator must reproduce
// System.Evaluate bit for bit across defuzzifiers, implications, simple and
// compound rule bases, and the no-rule-fired path.
func TestEvaluatorMatchesSystem(t *testing.T) {
	ruleSets := map[string][]string{
		"simple": {
			"IF a IS low THEN out IS low",
			"IF a IS med THEN out IS med",
			"IF a IS high THEN out IS high",
			"IF b IS low THEN out IS low",
			"IF b IS high THEN out IS high",
		},
		"compound": {
			"IF a IS low AND b IS low THEN out IS low",
			"IF a IS high OR b IS high THEN out IS high",
			"IF NOT (a IS low) AND b IS med THEN out IS med",
		},
		"sparse": {
			// Fires nowhere when a is high and b is low.
			"IF a IS low AND b IS high THEN out IS med",
		},
	}
	for name, rules := range ruleSets {
		for _, opts := range []Options{
			{},
			{ProductImplication: true},
			{Defuzz: Bisector},
			{Defuzz: MeanOfMaxima},
			{Norms: Norms{ProductAND: true}, Resolution: 101},
		} {
			sys := buildTestSystem(t, opts, rules)
			ev, err := NewEvaluator(sys)
			if err != nil {
				t.Fatalf("%s: NewEvaluator: %v", name, err)
			}
			for ai := 0.0; ai <= 10; ai += 0.7 {
				for bi := 0.0; bi <= 10; bi += 1.3 {
					in := map[string]float64{"a": ai, "b": bi}
					want, errWant := sys.Evaluate(in)
					got, errGot := ev.Evaluate(in)
					if (errWant == nil) != (errGot == nil) {
						t.Fatalf("%s %+v a=%g b=%g: errors diverge: %v vs %v", name, opts, ai, bi, errWant, errGot)
					}
					if errWant != nil {
						if !errors.Is(errGot, ErrNoRuleFired) || !errors.Is(errWant, ErrNoRuleFired) {
							t.Fatalf("%s a=%g b=%g: unexpected error %v / %v", name, ai, bi, errWant, errGot)
						}
						continue
					}
					if math.Float64bits(want) != math.Float64bits(got) {
						t.Fatalf("%s %+v a=%g b=%g: %v != %v (bitwise)", name, opts, ai, bi, want, got)
					}
				}
			}
		}
	}
}

// TestEvaluatorMissingInput preserves the missing-input error contract.
func TestEvaluatorMissingInput(t *testing.T) {
	sys := buildTestSystem(t, Options{}, []string{"IF a IS low THEN out IS low"})
	ev, err := NewEvaluator(sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Evaluate(map[string]float64{"a": 1}); err == nil {
		t.Error("missing input accepted")
	}
}
