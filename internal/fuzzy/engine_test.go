package fuzzy

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// incomeSystem builds a small version of the paper's Figure 2: valuation and
// property inputs, income output with Low/Med/High over [40000, 160000].
func incomeSystem(t *testing.T, opts Options) *System {
	t.Helper()
	income, err := NewVariable("income", 40000, 160000)
	if err != nil {
		t.Fatal(err)
	}
	if err := income.ThreeTerms("low", "med", "high"); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(income, opts)
	if err != nil {
		t.Fatal(err)
	}
	valuation, err := NewVariable("valuation", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := valuation.ThreeTerms("low", "med", "high"); err != nil {
		t.Fatal(err)
	}
	property, err := NewVariable("property", 0, 6000)
	if err != nil {
		t.Fatal(err)
	}
	if err := property.ThreeTerms("low", "med", "high"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddInput(valuation); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddInput(property); err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{
		"IF valuation IS low THEN income IS low",
		"IF valuation IS med THEN income IS med",
		"IF valuation IS high THEN income IS high",
		"IF property IS low THEN income IS low",
		"IF property IS med THEN income IS med",
		"IF property IS high THEN income IS high",
	} {
		if err := sys.AddRuleText(r); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

func TestVariableBasics(t *testing.T) {
	v, err := NewVariable("x", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.ThreeTerms("low", "med", "high"); err != nil {
		t.Fatal(err)
	}
	if got := v.Terms(); len(got) != 3 || got[0] != "low" {
		t.Errorf("Terms = %v", got)
	}
	g := v.Fuzzify(0)
	if g["low"] != 1 || g["high"] != 0 {
		t.Errorf("Fuzzify(0) = %v", g)
	}
	name, grade := v.BestTerm(10)
	if name != "high" || grade != 1 {
		t.Errorf("BestTerm(10) = %q, %g", name, grade)
	}
	name, _ = v.BestTerm(5)
	if name != "med" {
		t.Errorf("BestTerm(5) = %q", name)
	}
	if _, err := v.Term("nope"); err == nil {
		t.Error("unknown term accepted")
	}
}

func TestVariableRuspiniPartition(t *testing.T) {
	// UniformTerms grades sum to 1 everywhere inside the domain.
	v, err := NewVariable("x", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.UniformTerms([]string{"a", "b", "c", "d"}); err != nil {
		t.Fatal(err)
	}
	for x := 0.0; x <= 100; x += 7.3 {
		var sum float64
		for _, g := range v.Fuzzify(x) {
			sum += g
		}
		if !almost(sum, 1, 1e-9) {
			t.Errorf("grades at %g sum to %g", x, sum)
		}
	}
}

func TestVariableValidation(t *testing.T) {
	if _, err := NewVariable("", 0, 1); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewVariable("x", 5, 5); err == nil {
		t.Error("empty domain accepted")
	}
	v, _ := NewVariable("x", 0, 1)
	if err := v.AddTerm("", Singleton{}); err == nil {
		t.Error("empty term name accepted")
	}
	if err := v.AddTerm("t", nil); err == nil {
		t.Error("nil function accepted")
	}
	if err := v.AddTerm("t", Singleton{}); err != nil {
		t.Fatal(err)
	}
	if err := v.AddTerm("t", Singleton{}); err == nil {
		t.Error("duplicate term accepted")
	}
	if err := v.UniformTerms([]string{"only"}); err == nil {
		t.Error("single term partition accepted")
	}
}

func TestEvaluateMonotoneScenario(t *testing.T) {
	sys := incomeSystem(t, Options{})
	low, err := sys.Evaluate(map[string]float64{"valuation": 1, "property": 500})
	if err != nil {
		t.Fatal(err)
	}
	mid, err := sys.Evaluate(map[string]float64{"valuation": 5, "property": 3000})
	if err != nil {
		t.Fatal(err)
	}
	high, err := sys.Evaluate(map[string]float64{"valuation": 9, "property": 5500})
	if err != nil {
		t.Fatal(err)
	}
	if !(low < mid && mid < high) {
		t.Errorf("not monotone: low=%g mid=%g high=%g", low, mid, high)
	}
	// All estimates stay inside the output domain.
	for _, v := range []float64{low, mid, high} {
		if v < 40000 || v > 160000 {
			t.Errorf("estimate %g escapes the output domain", v)
		}
	}
	// The extreme cases land in the right thirds of the domain.
	if low > 80000 {
		t.Errorf("low scenario estimated %g", low)
	}
	if high < 120000 {
		t.Errorf("high scenario estimated %g", high)
	}
}

func TestEvaluateConflictingInputs(t *testing.T) {
	// High valuation but low property: both rules fire, centroid lands
	// between the extremes.
	sys := incomeSystem(t, Options{})
	got, err := sys.Evaluate(map[string]float64{"valuation": 10, "property": 0})
	if err != nil {
		t.Fatal(err)
	}
	if got < 70000 || got > 130000 {
		t.Errorf("conflicting inputs → %g, want a central estimate", got)
	}
}

func TestDefuzzifierVariants(t *testing.T) {
	for _, d := range []Defuzzifier{Centroid, Bisector, MeanOfMaxima, SmallestOfMaxima, LargestOfMaxima} {
		sys := incomeSystem(t, Options{Defuzz: d})
		got, err := sys.Evaluate(map[string]float64{"valuation": 9, "property": 5500})
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if got < 40000 || got > 160000 {
			t.Errorf("%v → %g escapes domain", d, got)
		}
		// A clearly-high scenario defuzzifies into the upper half under
		// every strategy.
		if got < 100000 {
			t.Errorf("%v → %g, want upper half", d, got)
		}
	}
	// SOM ≤ MOM ≤ LOM by construction.
	mk := func(d Defuzzifier) float64 {
		sys := incomeSystem(t, Options{Defuzz: d})
		v, err := sys.Evaluate(map[string]float64{"valuation": 9, "property": 5500})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	som, mom, lom := mk(SmallestOfMaxima), mk(MeanOfMaxima), mk(LargestOfMaxima)
	if !(som <= mom && mom <= lom) {
		t.Errorf("SOM %g, MOM %g, LOM %g out of order", som, mom, lom)
	}
}

func TestEvaluateSugeno(t *testing.T) {
	out, err := NewVariable("income", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.AddTerm("low", Singleton{X: 20}); err != nil {
		t.Fatal(err)
	}
	if err := out.AddTerm("high", Singleton{X: 80}); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewVariable("x", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.ThreeTerms("low", "med", "high"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddInput(x); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddRuleText("IF x IS low THEN income IS low"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddRuleText("IF x IS high THEN income IS high"); err != nil {
		t.Fatal(err)
	}
	got, err := sys.EvaluateSugeno(map[string]float64{"x": 0})
	if err != nil || got != 20 {
		t.Errorf("Sugeno(0) = %g, %v", got, err)
	}
	got, err = sys.EvaluateSugeno(map[string]float64{"x": 10})
	if err != nil || got != 80 {
		t.Errorf("Sugeno(10) = %g, %v", got, err)
	}
	// Dead zone where no rule fires (x=5: low=0, high=0).
	if _, err := sys.EvaluateSugeno(map[string]float64{"x": 5}); !errors.Is(err, ErrNoRuleFired) {
		t.Errorf("dead zone error = %v", err)
	}
	// Mamdani on singleton terms also requires firing.
	if _, err := sys.Evaluate(map[string]float64{"x": 5}); !errors.Is(err, ErrNoRuleFired) {
		t.Errorf("Mamdani dead zone error = %v", err)
	}
	// Sugeno on non-singleton consequent errors.
	sys2 := incomeSystem(t, Options{})
	if _, err := sys2.EvaluateSugeno(map[string]float64{"valuation": 9, "property": 5500}); err == nil {
		t.Error("Sugeno over Mamdani terms accepted")
	}
}

func TestSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil, Options{}); err == nil {
		t.Error("nil output accepted")
	}
	bare, _ := NewVariable("out", 0, 1)
	if _, err := NewSystem(bare, Options{}); err == nil {
		t.Error("termless output accepted")
	}
	out, _ := NewVariable("out", 0, 1)
	if err := out.ThreeTerms("l", "m", "h"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem(out, Options{Resolution: 1}); err == nil {
		t.Error("resolution 1 accepted")
	}
	sys, err := NewSystem(out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddInput(nil); err == nil {
		t.Error("nil input accepted")
	}
	clash, _ := NewVariable("out", 0, 1)
	_ = clash.ThreeTerms("l", "m", "h")
	if err := sys.AddInput(clash); err == nil {
		t.Error("input/output name clash accepted")
	}
	in, _ := NewVariable("x", 0, 1)
	if err := sys.AddInput(in); err == nil {
		t.Error("termless input accepted")
	}
	_ = in.ThreeTerms("l", "m", "h")
	if err := sys.AddInput(in); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddInput(in); err == nil {
		t.Error("duplicate input accepted")
	}
	// Rule validation.
	if err := sys.AddRuleText("IF nope IS l THEN out IS l"); err == nil {
		t.Error("unknown input variable accepted")
	}
	if err := sys.AddRuleText("IF x IS nope THEN out IS l"); err == nil {
		t.Error("unknown input term accepted")
	}
	if err := sys.AddRuleText("IF x IS l THEN out IS nope"); err == nil {
		t.Error("unknown output term accepted")
	}
	if err := sys.AddRuleText("IF x IS l THEN wrongvar IS l"); err == nil {
		t.Error("wrong output variable accepted")
	}
	if err := sys.AddRule(Rule{}); err == nil {
		t.Error("empty rule accepted")
	}
	// Evaluate before rules exist.
	if _, err := sys.Evaluate(map[string]float64{"x": 0.5}); err == nil {
		t.Error("ruleless evaluation accepted")
	}
	if _, err := sys.EvaluateSugeno(map[string]float64{"x": 0.5}); err == nil {
		t.Error("ruleless Sugeno accepted")
	}
	if err := sys.AddRuleText("IF x IS l THEN out IS l"); err != nil {
		t.Fatal(err)
	}
	// Missing input at evaluation time.
	if _, err := sys.Evaluate(map[string]float64{}); err == nil {
		t.Error("missing input accepted")
	}
	if _, err := sys.EvaluateSugeno(map[string]float64{}); err == nil {
		t.Error("missing Sugeno input accepted")
	}
	if got := len(sys.Rules()); got != 1 {
		t.Errorf("Rules() = %d", got)
	}
	if got := len(sys.Inputs()); got != 1 {
		t.Errorf("Inputs() = %d", got)
	}
	if sys.Output().Name != "out" {
		t.Error("Output() wrong")
	}
}

func TestProductImplication(t *testing.T) {
	minSys := incomeSystem(t, Options{})
	prodSys := incomeSystem(t, Options{ProductImplication: true})
	in := map[string]float64{"valuation": 7, "property": 4000}
	a, err := minSys.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := prodSys.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	// Both land in-domain; the two implications differ in general.
	for _, v := range []float64{a, b} {
		if v < 40000 || v > 160000 {
			t.Errorf("estimate %g escapes domain", v)
		}
	}
}

func TestDefuzzifierString(t *testing.T) {
	names := map[Defuzzifier]string{
		Centroid: "centroid", Bisector: "bisector", MeanOfMaxima: "mom",
		SmallestOfMaxima: "som", LargestOfMaxima: "lom",
	}
	for d, want := range names {
		if got := d.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(d), got, want)
		}
	}
}

// Property: the centroid estimate always stays inside the output domain and
// is monotone in a single monotone input system.
func TestCentroidDomainProperty(t *testing.T) {
	out, err := NewVariable("y", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.ThreeTerms("l", "m", "h"); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewVariable("x", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.ThreeTerms("l", "m", "h"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddInput(in); err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{
		"IF x IS l THEN y IS l", "IF x IS m THEN y IS m", "IF x IS h THEN y IS h",
	} {
		if err := sys.AddRuleText(r); err != nil {
			t.Fatal(err)
		}
	}
	f := func(raw uint16) bool {
		x := float64(raw) / math.MaxUint16
		y, err := sys.Evaluate(map[string]float64{"x": x})
		if err != nil {
			return false
		}
		return y >= 0 && y <= 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
