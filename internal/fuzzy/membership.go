// Package fuzzy is a from-scratch fuzzy inference engine — the machinery the
// paper's adversary uses to fuse the anonymized release with web data
// (Section 3.A, Figure 2). It provides membership functions, linguistic
// variables, a textual rule language, Mamdani and zero-order Sugeno
// inference, and five defuzzifiers.
//
// The engine replaces the Matlab Fuzzy Logic Toolbox the authors used; see
// DESIGN.md §4.
package fuzzy

import (
	"errors"
	"fmt"
	"math"
)

// MembershipFunc maps a crisp value to a membership grade in [0, 1].
type MembershipFunc interface {
	// Grade returns the membership of x. Implementations must stay within
	// [0, 1] for all finite x.
	Grade(x float64) float64
}

// ErrShape is returned by membership constructors with out-of-order
// breakpoints.
var ErrShape = errors.New("fuzzy: membership breakpoints out of order")

// Triangular is the classic triangle with feet at A and C and peak at B.
type Triangular struct{ A, B, C float64 }

// NewTriangular validates A ≤ B ≤ C with A < C.
func NewTriangular(a, b, c float64) (Triangular, error) {
	if !(a <= b && b <= c) || a == c {
		return Triangular{}, fmt.Errorf("%w: triangular(%g, %g, %g)", ErrShape, a, b, c)
	}
	return Triangular{a, b, c}, nil
}

// Grade implements MembershipFunc.
func (t Triangular) Grade(x float64) float64 {
	switch {
	case x <= t.A || x >= t.C:
		// The peak may sit on a foot (right triangle); grade 1 there.
		if x == t.B {
			return 1
		}
		return 0
	case x == t.B:
		return 1
	case x < t.B:
		return (x - t.A) / (t.B - t.A)
	default:
		return (t.C - x) / (t.C - t.B)
	}
}

// Trapezoid has feet at A and D and a plateau from B to C. Infinite A or D
// produce open shoulders (see LeftShoulder and RightShoulder).
type Trapezoid struct{ A, B, C, D float64 }

// NewTrapezoid validates A ≤ B ≤ C ≤ D with A < D.
func NewTrapezoid(a, b, c, d float64) (Trapezoid, error) {
	if !(a <= b && b <= c && c <= d) || a == d {
		return Trapezoid{}, fmt.Errorf("%w: trapezoid(%g, %g, %g, %g)", ErrShape, a, b, c, d)
	}
	return Trapezoid{a, b, c, d}, nil
}

// LeftShoulder is fully on below b, ramping off to zero at c — the "Low"
// shape of Figure 2.
func LeftShoulder(b, c float64) (Trapezoid, error) {
	if b > c || b == c {
		return Trapezoid{}, fmt.Errorf("%w: left shoulder(%g, %g)", ErrShape, b, c)
	}
	return Trapezoid{math.Inf(-1), math.Inf(-1), b, c}, nil
}

// RightShoulder is zero below a, ramping to fully on at b and beyond — the
// "High" shape of Figure 2.
func RightShoulder(a, b float64) (Trapezoid, error) {
	if a > b || a == b {
		return Trapezoid{}, fmt.Errorf("%w: right shoulder(%g, %g)", ErrShape, a, b)
	}
	return Trapezoid{a, b, math.Inf(1), math.Inf(1)}, nil
}

// Grade implements MembershipFunc.
func (t Trapezoid) Grade(x float64) float64 {
	switch {
	case x < t.A || x > t.D:
		return 0
	case x >= t.B && x <= t.C:
		return 1
	case x < t.B:
		return (x - t.A) / (t.B - t.A)
	default:
		return (t.D - x) / (t.D - t.C)
	}
}

// Gaussian is exp(−(x−Mean)²/(2·Sigma²)).
type Gaussian struct{ Mean, Sigma float64 }

// NewGaussian validates Sigma > 0.
func NewGaussian(mean, sigma float64) (Gaussian, error) {
	if sigma <= 0 {
		return Gaussian{}, fmt.Errorf("fuzzy: gaussian sigma %g must be positive", sigma)
	}
	return Gaussian{mean, sigma}, nil
}

// Grade implements MembershipFunc.
func (g Gaussian) Grade(x float64) float64 {
	d := (x - g.Mean) / g.Sigma
	return math.Exp(-d * d / 2)
}

// Sigmoid is 1/(1+exp(−Slope·(x−Center))): an open ramp. Positive slopes
// open to the right ("high"-style), negative to the left.
type Sigmoid struct{ Center, Slope float64 }

// NewSigmoid validates Slope ≠ 0.
func NewSigmoid(center, slope float64) (Sigmoid, error) {
	if slope == 0 {
		return Sigmoid{}, errors.New("fuzzy: sigmoid slope must be non-zero")
	}
	return Sigmoid{center, slope}, nil
}

// Grade implements MembershipFunc.
func (s Sigmoid) Grade(x float64) float64 {
	return 1 / (1 + math.Exp(-s.Slope*(x-s.Center)))
}

// Bell is the generalized bell 1/(1+|((x−Center)/Width)|^(2·Slope)) — a
// smooth plateau shape between Gaussian and trapezoid.
type Bell struct{ Width, Slope, Center float64 }

// NewBell validates Width > 0 and Slope > 0.
func NewBell(width, slope, center float64) (Bell, error) {
	if width <= 0 {
		return Bell{}, fmt.Errorf("fuzzy: bell width %g must be positive", width)
	}
	if slope <= 0 {
		return Bell{}, fmt.Errorf("fuzzy: bell slope %g must be positive", slope)
	}
	return Bell{width, slope, center}, nil
}

// Grade implements MembershipFunc.
func (b Bell) Grade(x float64) float64 {
	return 1 / (1 + math.Pow(math.Abs((x-b.Center)/b.Width), 2*b.Slope))
}

// Singleton is 1 exactly at X and 0 elsewhere — used for crisp facts and
// Sugeno-style consequents.
type Singleton struct{ X float64 }

// Grade implements MembershipFunc.
func (s Singleton) Grade(x float64) float64 {
	if x == s.X {
		return 1
	}
	return 0
}

// Clipped scales/clips a base function — the result of Mamdani implication.
type clipped struct {
	base MembershipFunc
	cap  float64
	prod bool // product implication instead of min
}

// Grade implements MembershipFunc.
func (c clipped) Grade(x float64) float64 {
	g := c.base.Grade(x)
	if c.prod {
		return g * c.cap
	}
	return math.Min(g, c.cap)
}

// aggregate is the pointwise maximum of several membership functions — the
// aggregated Mamdani output surface.
type aggregate []MembershipFunc

// Grade implements MembershipFunc.
func (a aggregate) Grade(x float64) float64 {
	var best float64
	for _, f := range a {
		if g := f.Grade(x); g > best {
			best = g
		}
	}
	return best
}
