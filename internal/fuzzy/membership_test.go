package fuzzy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTriangular(t *testing.T) {
	tri, err := NewTriangular(0, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {2.5, 0.5}, {5, 1}, {7.5, 0.5}, {10, 0}, {11, 0},
	}
	for _, tc := range tests {
		if got := tri.Grade(tc.x); !almost(got, tc.want, 1e-12) {
			t.Errorf("Grade(%g) = %g, want %g", tc.x, got, tc.want)
		}
	}
}

func TestTriangularRightAngle(t *testing.T) {
	// Peak on the left foot: step down shape.
	tri, err := NewTriangular(0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := tri.Grade(0); got != 1 {
		t.Errorf("Grade(0) = %g, want 1", got)
	}
	if got := tri.Grade(5); !almost(got, 0.5, 1e-12) {
		t.Errorf("Grade(5) = %g", got)
	}
}

func TestTriangularValidation(t *testing.T) {
	for _, tc := range [][3]float64{{5, 0, 10}, {0, 11, 10}, {3, 3, 3}} {
		if _, err := NewTriangular(tc[0], tc[1], tc[2]); err == nil {
			t.Errorf("NewTriangular(%v) accepted", tc)
		}
	}
}

func TestTrapezoid(t *testing.T) {
	tr, err := NewTrapezoid(0, 2, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {1, 0.5}, {2, 1}, {5, 1}, {8, 1}, {9, 0.5}, {10, 0}, {11, 0},
	}
	for _, tc := range tests {
		if got := tr.Grade(tc.x); !almost(got, tc.want, 1e-12) {
			t.Errorf("Grade(%g) = %g, want %g", tc.x, got, tc.want)
		}
	}
	if _, err := NewTrapezoid(0, 9, 8, 10); err == nil {
		t.Error("out-of-order trapezoid accepted")
	}
	if _, err := NewTrapezoid(4, 4, 4, 4); err == nil {
		t.Error("degenerate trapezoid accepted")
	}
}

func TestShoulders(t *testing.T) {
	low, err := LeftShoulder(30, 60)
	if err != nil {
		t.Fatal(err)
	}
	if low.Grade(0) != 1 || low.Grade(30) != 1 {
		t.Error("left shoulder should be 1 below its plateau end")
	}
	if !almost(low.Grade(45), 0.5, 1e-12) || low.Grade(60) != 0 || low.Grade(100) != 0 {
		t.Error("left shoulder ramp wrong")
	}
	high, err := RightShoulder(70, 100)
	if err != nil {
		t.Fatal(err)
	}
	if high.Grade(100) != 1 || high.Grade(1e9) != 1 || high.Grade(70) != 0 {
		t.Error("right shoulder wrong")
	}
	if !almost(high.Grade(85), 0.5, 1e-12) {
		t.Error("right shoulder ramp wrong")
	}
	if _, err := LeftShoulder(5, 5); err == nil {
		t.Error("flat left shoulder accepted")
	}
	if _, err := RightShoulder(9, 2); err == nil {
		t.Error("inverted right shoulder accepted")
	}
}

func TestGaussian(t *testing.T) {
	g, err := NewGaussian(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Grade(10) != 1 {
		t.Error("peak grade should be 1")
	}
	if got := g.Grade(12); !almost(got, math.Exp(-0.5), 1e-12) {
		t.Errorf("Grade(mean+sigma) = %g", got)
	}
	if !almost(g.Grade(8), g.Grade(12), 1e-12) {
		t.Error("gaussian should be symmetric")
	}
	if _, err := NewGaussian(0, 0); err == nil {
		t.Error("zero sigma accepted")
	}
}

func TestSingleton(t *testing.T) {
	s := Singleton{X: 5}
	if s.Grade(5) != 1 || s.Grade(5.0001) != 0 {
		t.Error("singleton wrong")
	}
}

func TestClippedAndAggregate(t *testing.T) {
	tri, _ := NewTriangular(0, 5, 10)
	clip := clipped{base: tri, cap: 0.4}
	if got := clip.Grade(5); got != 0.4 {
		t.Errorf("clipped peak = %g, want 0.4", got)
	}
	if got := clip.Grade(1); !almost(got, 0.2, 1e-12) {
		t.Errorf("clipped slope = %g, want 0.2", got)
	}
	scaled := clipped{base: tri, cap: 0.4, prod: true}
	if got := scaled.Grade(2.5); !almost(got, 0.2, 1e-12) {
		t.Errorf("scaled = %g, want 0.2", got)
	}
	agg := aggregate{clip, Singleton{X: 9}}
	if got := agg.Grade(9); got != 1 {
		t.Errorf("aggregate max = %g, want 1", got)
	}
	if got := agg.Grade(5); got != 0.4 {
		t.Errorf("aggregate = %g, want 0.4", got)
	}
}

func TestSigmoid(t *testing.T) {
	s, err := NewSigmoid(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Grade(5); !almost(got, 0.5, 1e-12) {
		t.Errorf("Grade(center) = %g", got)
	}
	if s.Grade(100) < 0.999 || s.Grade(-100) > 0.001 {
		t.Error("sigmoid tails wrong")
	}
	// Negative slope opens left.
	neg, err := NewSigmoid(5, -2)
	if err != nil {
		t.Fatal(err)
	}
	if neg.Grade(-100) < 0.999 || neg.Grade(100) > 0.001 {
		t.Error("negative-slope tails wrong")
	}
	if _, err := NewSigmoid(0, 0); err == nil {
		t.Error("zero slope accepted")
	}
}

func TestBell(t *testing.T) {
	b, err := NewBell(2, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Grade(6); got != 1 {
		t.Errorf("Grade(center) = %g", got)
	}
	// At center ± width the grade is exactly 0.5.
	if got := b.Grade(8); !almost(got, 0.5, 1e-12) {
		t.Errorf("Grade(center+width) = %g", got)
	}
	if !almost(b.Grade(4), b.Grade(8), 1e-12) {
		t.Error("bell should be symmetric")
	}
	if b.Grade(100) > 0.001 {
		t.Error("bell tail wrong")
	}
	if _, err := NewBell(0, 1, 0); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewBell(1, 0, 0); err == nil {
		t.Error("zero slope accepted")
	}
}

func TestFISSigmoidBellRoundTrip(t *testing.T) {
	out, err := NewVariable("y", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := NewSigmoid(5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := NewBell(2, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.AddTerm("s", sg); err != nil {
		t.Fatal(err)
	}
	if err := out.AddTerm("b", bl); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := DumpFIS(&buf, sys); err != nil {
		t.Fatal(err)
	}
	back, err := ParseFIS(strings.NewReader(buf.String()), Options{})
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	for x := 0.0; x <= 10; x += 1.1 {
		for _, term := range []string{"s", "b"} {
			f1, _ := sys.Output().Term(term)
			f2, _ := back.Output().Term(term)
			if f1.Grade(x) != f2.Grade(x) {
				t.Fatalf("term %s differs at %g", term, x)
			}
		}
	}
}

// Property: every membership function stays within [0, 1] over a wide range.
func TestMembershipRangeProperty(t *testing.T) {
	tri, _ := NewTriangular(-5, 0, 5)
	trap, _ := NewTrapezoid(-10, -2, 2, 10)
	g, _ := NewGaussian(0, 3)
	low, _ := LeftShoulder(0, 1)
	high, _ := RightShoulder(0, 1)
	sg, _ := NewSigmoid(0, 2)
	bl, _ := NewBell(3, 2, 0)
	funcs := []MembershipFunc{tri, trap, g, low, high, Singleton{X: 0}, sg, bl}
	f := func(raw int16) bool {
		x := float64(raw) / 100
		for _, fn := range funcs {
			y := fn.Grade(x)
			if y < 0 || y > 1 || math.IsNaN(y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
