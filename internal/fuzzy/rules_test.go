package fuzzy

import (
	"strings"
	"testing"
)

func TestParseSimpleRule(t *testing.T) {
	r, err := ParseRule("IF valuation IS high THEN income IS high")
	if err != nil {
		t.Fatal(err)
	}
	if r.OutputTerm != "high" || r.OutputVar() != "income" || r.Weight != 1 {
		t.Errorf("rule = %+v", r)
	}
	c, ok := r.Antecedent.(cond)
	if !ok || c.variable != "valuation" || c.term != "high" {
		t.Errorf("antecedent = %#v", r.Antecedent)
	}
}

func TestParseRuleWithWeight(t *testing.T) {
	r, err := ParseRule("IF a IS x THEN out IS y WEIGHT 0.25")
	if err != nil {
		t.Fatal(err)
	}
	if r.Weight != 0.25 {
		t.Errorf("weight = %g", r.Weight)
	}
	if _, err := ParseRule("IF a IS x THEN out IS y WEIGHT 1.5"); err == nil {
		t.Error("weight > 1 accepted")
	}
	if _, err := ParseRule("IF a IS x THEN out IS y WEIGHT banana"); err == nil {
		t.Error("non-numeric weight accepted")
	}
}

func TestParseConnectivesAndPrecedence(t *testing.T) {
	// AND binds tighter than OR: a OR (b AND c).
	r, err := ParseRule("IF a IS x OR b IS y AND c IS z THEN out IS t")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := r.Antecedent.(orExpr)
	if !ok || len(or.kids) != 2 {
		t.Fatalf("antecedent = %#v", r.Antecedent)
	}
	if _, ok := or.kids[0].(cond); !ok {
		t.Errorf("left kid = %#v", or.kids[0])
	}
	if _, ok := or.kids[1].(andExpr); !ok {
		t.Errorf("right kid = %#v", or.kids[1])
	}
	// Parentheses override.
	r, err = ParseRule("IF (a IS x OR b IS y) AND c IS z THEN out IS t")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Antecedent.(andExpr); !ok {
		t.Errorf("parenthesized antecedent = %#v", r.Antecedent)
	}
}

func TestParseNot(t *testing.T) {
	r, err := ParseRule("IF NOT a IS x THEN out IS y")
	if err != nil {
		t.Fatal(err)
	}
	n, ok := r.Antecedent.(notExpr)
	if !ok {
		t.Fatalf("antecedent = %#v", r.Antecedent)
	}
	if _, ok := n.inner.(cond); !ok {
		t.Errorf("inner = %#v", n.inner)
	}
	// Double negation parses.
	if _, err := ParseRule("IF NOT NOT a IS x THEN out IS y"); err != nil {
		t.Errorf("double NOT rejected: %v", err)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	r, err := ParseRule("if Employment is High and Property-Holdings is High then Income is High")
	if err != nil {
		t.Fatal(err)
	}
	and, ok := r.Antecedent.(andExpr)
	if !ok || len(and.kids) != 2 {
		t.Fatalf("antecedent = %#v", r.Antecedent)
	}
	if c := and.kids[1].(cond); c.variable != "Property-Holdings" {
		t.Errorf("variable = %q", c.variable)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"valuation IS high THEN income IS high", // missing IF
		"IF valuation high THEN income IS high", // missing IS
		"IF valuation IS high income IS high",   // missing THEN
		"IF valuation IS high THEN income high", // missing output IS
		"IF valuation IS high THEN income IS",   // missing term
		"IF (a IS x THEN out IS y",              // unclosed paren
		"IF a IS x THEN out IS y trailing junk", // trailing tokens
		"IF IS IS x THEN out IS y",              // reserved word as ident
		"IF a IS x THEN THEN IS y",              // reserved word as output var
		"IF a IS x AND THEN out IS y",           // dangling AND
		"IF a IS x THEN out IS y WEIGHT",        // missing weight value
		"IF a & b THEN out IS y",                // stray symbol
	}
	for _, src := range bad {
		if _, err := ParseRule(src); err == nil {
			t.Errorf("ParseRule(%q) accepted", src)
		}
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules(`
# The paper's simplistic knowledge rules, uniform weights.
IF valuation IS high THEN income IS high

IF valuation IS low  THEN income IS low
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rules = %d", len(rules))
	}
	if _, err := ParseRules("IF broken THEN"); err == nil {
		t.Error("bad batch accepted")
	}
	if !strings.Contains(errString(err), "") { // err is nil here; just exercise helper
		_ = err
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func TestExprStringRoundTrip(t *testing.T) {
	// String renderings re-parse to an equivalent structure.
	srcs := []string{
		"IF a IS x THEN out IS y",
		"IF a IS x AND b IS y THEN out IS z",
		"IF NOT (a IS x OR b IS y) THEN out IS z",
	}
	for _, src := range srcs {
		r, err := ParseRule(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		re := "IF " + r.Antecedent.String() + " THEN out IS " + r.OutputTerm
		if _, err := ParseRule(re); err != nil {
			t.Errorf("rendering %q of %q does not re-parse: %v", re, src, err)
		}
	}
}

func TestStrengthEvaluation(t *testing.T) {
	grades := map[string]map[string]float64{
		"a": {"x": 0.3},
		"b": {"y": 0.8},
	}
	tests := []struct {
		src  string
		min  float64 // expected with min-AND
		prod float64 // expected with product-AND
	}{
		{"IF a IS x THEN o IS t", 0.3, 0.3},
		{"IF a IS x AND b IS y THEN o IS t", 0.3, 0.24},
		{"IF a IS x OR b IS y THEN o IS t", 0.8, 0.8},
		{"IF NOT a IS x THEN o IS t", 0.7, 0.7},
		{"IF NOT (a IS x AND b IS y) THEN o IS t", 0.7, 0.76},
	}
	for _, tc := range tests {
		r, err := ParseRule(tc.src)
		if err != nil {
			t.Fatalf("%q: %v", tc.src, err)
		}
		if got := r.Antecedent.strength(grades, Norms{}); !almost(got, tc.min, 1e-12) {
			t.Errorf("%q min strength = %g, want %g", tc.src, got, tc.min)
		}
		if got := r.Antecedent.strength(grades, Norms{ProductAND: true}); !almost(got, tc.prod, 1e-12) {
			t.Errorf("%q product strength = %g, want %g", tc.src, got, tc.prod)
		}
	}
}

func TestMustParseRulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseRule did not panic")
		}
	}()
	MustParseRule("garbage")
}
