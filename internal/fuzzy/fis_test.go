package fuzzy

import (
	"bytes"
	"strings"
	"testing"
)

const sampleFIS = `
# Figure 2 style system.
OUTPUT income 40000 160000
TERM income low  trap -inf -inf 70000 100000
TERM income med  tri 70000 100000 130000
TERM income high trap 100000 130000 inf inf
INPUT valuation 0 10
TERM valuation low  trap -inf -inf 3 5
TERM valuation med  tri 3 5 7
TERM valuation high trap 5 7 inf inf
RULE IF valuation IS low THEN income IS low
RULE IF valuation IS med THEN income IS med
RULE IF valuation IS high THEN income IS high WEIGHT 0.9
`

func TestParseFIS(t *testing.T) {
	sys, err := ParseFIS(strings.NewReader(sampleFIS), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Output().Name != "income" {
		t.Errorf("output = %q", sys.Output().Name)
	}
	if got := sys.Inputs(); len(got) != 1 || got[0] != "valuation" {
		t.Errorf("inputs = %v", got)
	}
	if got := len(sys.Rules()); got != 3 {
		t.Errorf("rules = %d", got)
	}
	if w := sys.Rules()[2].Weight; w != 0.9 {
		t.Errorf("rule 3 weight = %g", w)
	}
	// The parsed system evaluates sensibly.
	lo, err := sys.Evaluate(map[string]float64{"valuation": 1})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := sys.Evaluate(map[string]float64{"valuation": 9})
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < hi) {
		t.Errorf("lo %g, hi %g", lo, hi)
	}
}

func TestDumpParseRoundTrip(t *testing.T) {
	orig, err := ParseFIS(strings.NewReader(sampleFIS), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := DumpFIS(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseFIS(bytes.NewReader(buf.Bytes()), Options{})
	if err != nil {
		t.Fatalf("re-parse of dump failed: %v\n%s", err, buf.String())
	}
	// Same evaluations across the domain.
	for x := 0.0; x <= 10; x += 0.7 {
		in := map[string]float64{"valuation": x}
		a, errA := orig.Evaluate(in)
		b, errB := back.Evaluate(in)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("x=%g: error mismatch %v vs %v", x, errA, errB)
		}
		if errA == nil && a != b {
			t.Errorf("x=%g: %g vs %g", x, a, b)
		}
	}
}

func TestDumpGaussAndSingleton(t *testing.T) {
	out, err := NewVariable("y", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGaussian(0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.AddTerm("mid", g); err != nil {
		t.Fatal(err)
	}
	if err := out.AddTerm("spike", Singleton{X: 0.9}); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := DumpFIS(&buf, sys); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "gauss 0.5 0.1") || !strings.Contains(s, "singleton 0.9") {
		t.Errorf("dump missing shapes:\n%s", s)
	}
	if _, err := ParseFIS(strings.NewReader(s), Options{}); err != nil {
		t.Errorf("dump does not re-parse: %v", err)
	}
}

func TestParseFISErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no output", "INPUT x 0 1\nTERM x a tri 0 0.5 1\n"},
		{"input before output", "INPUT x 0 1\nOUTPUT y 0 1\n"},
		{"double output", "OUTPUT y 0 1\nTERM y a tri 0 0.5 1\nOUTPUT z 0 1\n"},
		{"bad bounds", "OUTPUT y zero one\n"},
		{"short output", "OUTPUT y 0\n"},
		{"term unknown var", "OUTPUT y 0 1\nTERM z a tri 0 0.5 1\n"},
		{"bad shape", "OUTPUT y 0 1\nTERM y a blob 1 2 3\n"},
		{"tri arity", "OUTPUT y 0 1\nTERM y a tri 1 2\n"},
		{"trap arity", "OUTPUT y 0 1\nTERM y a trap 1 2 3\n"},
		{"gauss arity", "OUTPUT y 0 1\nTERM y a gauss 1\n"},
		{"singleton arity", "OUTPUT y 0 1\nTERM y a singleton\n"},
		{"bad number", "OUTPUT y 0 1\nTERM y a tri 0 x 1\n"},
		{"unknown keyword", "OUTPUT y 0 1\nTERM y a tri 0 0.5 1\nBOGUS\n"},
		{"duplicate var", "OUTPUT y 0 1\nTERM y a tri 0 0.5 1\nINPUT y 0 1\n"},
		{"termless output", "OUTPUT y 0 1\n"},
		{"bad rule", "OUTPUT y 0 1\nTERM y a tri 0 0.5 1\nRULE IF broken\n"},
		{"rule unknown input", "OUTPUT y 0 1\nTERM y a tri 0 0.5 1\nRULE IF x IS a THEN y IS a\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseFIS(strings.NewReader(tc.src), Options{}); err == nil {
				t.Errorf("accepted:\n%s", tc.src)
			}
		})
	}
}

func TestDumpNilSystem(t *testing.T) {
	if err := DumpFIS(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil system accepted")
	}
}

func TestSampleSurface(t *testing.T) {
	v, err := NewVariable("x", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.ThreeTerms("low", "med", "high"); err != nil {
		t.Fatal(err)
	}
	xs, grades, err := SampleSurface(v, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 11 || xs[0] != 0 || xs[10] != 10 {
		t.Errorf("xs = %v", xs)
	}
	if len(grades) != 3 {
		t.Errorf("terms sampled = %d", len(grades))
	}
	if grades["low"][0] != 1 || grades["high"][10] != 1 {
		t.Error("shoulder grades wrong")
	}
	for _, g := range grades {
		for i, y := range g {
			if y < 0 || y > 1 {
				t.Fatalf("grade[%d] = %g", i, y)
			}
		}
	}
	if _, _, err := SampleSurface(nil, 5); err == nil {
		t.Error("nil variable accepted")
	}
	if _, _, err := SampleSurface(v, 1); err == nil {
		t.Error("n=1 accepted")
	}
}
