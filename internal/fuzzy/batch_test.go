package fuzzy

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
)

// batchGrid produces the flat row-major (a, b) feature matrix the batch
// entry points consume, mirroring the grid TestEvaluatorMatchesSystem walks.
func batchGrid() ([]float64, int) {
	var flat []float64
	for ai := 0.0; ai <= 10; ai += 0.7 {
		for bi := 0.0; bi <= 10; bi += 1.3 {
			flat = append(flat, ai, bi)
		}
	}
	return flat, 2
}

// TestEvaluateBatchMatchesEvaluate: batch results must carry the exact bits
// of the per-row Evaluate path across rule shapes, implications and
// defuzzifiers, with NaN standing in for ErrNoRuleFired.
func TestEvaluateBatchMatchesEvaluate(t *testing.T) {
	ruleSets := map[string][]string{
		"simple": {
			"IF a IS low THEN out IS low",
			"IF a IS med THEN out IS med",
			"IF a IS high THEN out IS high",
			"IF b IS low THEN out IS low",
			"IF b IS high THEN out IS high",
		},
		"compound": {
			"IF a IS low AND b IS low THEN out IS low",
			"IF a IS high OR b IS high THEN out IS high",
			"IF NOT (a IS low) AND b IS med THEN out IS med",
		},
		"sparse": {
			"IF a IS low AND b IS high THEN out IS med",
		},
	}
	for name, rules := range ruleSets {
		for _, opts := range []Options{
			{},
			{ProductImplication: true},
			{Defuzz: Bisector},
			{Defuzz: MeanOfMaxima},
			{Norms: Norms{ProductAND: true}, Resolution: 101},
		} {
			sys := buildTestSystem(t, opts, rules)
			ref, err := NewEvaluator(sys)
			if err != nil {
				t.Fatalf("%s: NewEvaluator: %v", name, err)
			}
			batch, err := NewEvaluator(sys)
			if err != nil {
				t.Fatal(err)
			}
			flat, stride := batchGrid()
			n := len(flat) / stride
			out := make([]float64, n)
			if err := batch.EvaluateBatch(flat, stride, out); err != nil {
				t.Fatalf("%s: EvaluateBatch: %v", name, err)
			}
			in := map[string]float64{}
			for r := 0; r < n; r++ {
				in["a"], in["b"] = flat[r*stride], flat[r*stride+1]
				want, err := ref.Evaluate(in)
				if errors.Is(err, ErrNoRuleFired) {
					if !math.IsNaN(out[r]) {
						t.Fatalf("%s row %d: no rule fired but batch returned %v", name, r, out[r])
					}
					continue
				}
				if err != nil {
					t.Fatalf("%s row %d: Evaluate: %v", name, r, err)
				}
				if math.Float64bits(out[r]) != math.Float64bits(want) {
					t.Fatalf("%s row %d (%v): batch %v != evaluate %v", name, r, in, out[r], want)
				}
			}
		}
	}
}

// TestEvaluateBatchBoundInputs: a matrix with permuted and surplus columns
// must evaluate identically once the variables are bound by name.
func TestEvaluateBatchBoundInputs(t *testing.T) {
	rules := []string{
		"IF a IS low THEN out IS low",
		"IF b IS high THEN out IS high",
		"IF a IS med AND b IS med THEN out IS med",
	}
	sys := buildTestSystem(t, Options{}, rules)
	ev, err := NewEvaluator(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.BindInputs([]string{"junk", "b", "a"}); err == nil {
		// "a" and "b" are both present, so this binding is legal.
	} else {
		t.Fatalf("BindInputs: %v", err)
	}
	flat := []float64{ // columns: junk, b, a
		99, 1, 2,
		-7, 8.5, 4,
		0, 3.25, 9,
	}
	out := make([]float64, 3)
	if err := ev.EvaluateBatch(flat, 3, out); err != nil {
		t.Fatal(err)
	}
	ref, err := NewEvaluator(sys)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		want, err := ref.Evaluate(map[string]float64{"a": flat[r*3+2], "b": flat[r*3+1]})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(out[r]) != math.Float64bits(want) {
			t.Fatalf("row %d: bound batch %v != evaluate %v", r, out[r], want)
		}
	}
	if err := ev.BindInputs([]string{"a", "nope"}); err == nil {
		t.Fatal("BindInputs should fail when a variable's feature is missing")
	}
	if err := ev.BindInputs([]string{"junk", "b", "a"}); err != nil {
		t.Fatal(err)
	}
	if err := ev.EvaluateBatch(flat, 2, out); err == nil {
		t.Fatal("EvaluateBatch should reject a stride that cuts off a bound column")
	}
}

// TestEvaluateBatchSugenoMatchesSystem pins the batch Sugeno path to
// System.EvaluateSugeno bit for bit, including the no-rule NaN and the
// lazy non-singleton error.
func TestEvaluateBatchSugenoMatchesSystem(t *testing.T) {
	out, err := NewVariable("out", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []struct {
		name string
		x    float64
	}{{"low", 10}, {"med", 50}, {"high", 90}} {
		if err := out.AddTerm(s.name, Singleton{X: s.x}); err != nil {
			t.Fatal(err)
		}
	}
	sys, err := NewSystem(out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		v, err := NewVariable(name, 0, 10)
		if err != nil {
			t.Fatal(err)
		}
		if err := v.ThreeTerms("low", "med", "high"); err != nil {
			t.Fatal(err)
		}
		if err := sys.AddInput(v); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []string{
		"IF a IS low THEN out IS low",
		"IF a IS high OR b IS high THEN out IS high",
		"IF a IS med AND b IS med THEN out IS med",
	} {
		if err := sys.AddRuleText(r); err != nil {
			t.Fatal(err)
		}
	}
	ev, err := NewEvaluator(sys)
	if err != nil {
		t.Fatal(err)
	}
	flat, stride := batchGrid()
	n := len(flat) / stride
	got := make([]float64, n)
	if err := ev.EvaluateBatchSugeno(flat, stride, got); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		want, err := sys.EvaluateSugeno(map[string]float64{"a": flat[r*stride], "b": flat[r*stride+1]})
		if errors.Is(err, ErrNoRuleFired) {
			if !math.IsNaN(got[r]) {
				t.Fatalf("row %d: no rule fired but batch returned %v", r, got[r])
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got[r]) != math.Float64bits(want) {
			t.Fatalf("row %d: batch sugeno %v != system %v", r, got[r], want)
		}
	}

	// A non-singleton output term is only an error once a rule firing on it
	// fires, matching the per-row path's lazy check.
	mixed := buildTestSystem(t, Options{}, []string{"IF a IS low THEN out IS low"})
	mev, err := NewEvaluator(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if err := mev.EvaluateBatchSugeno([]float64{0, 0}, 2, make([]float64, 1)); err == nil ||
		!strings.Contains(err.Error(), "not a singleton") {
		t.Fatalf("want non-singleton error, got %v", err)
	}
	if err := mev.EvaluateBatchSugeno([]float64{10, 10}, 2, make([]float64, 1)); err != nil {
		t.Fatalf("unfired non-singleton term must not error, got %v", err)
	}
}

// TestEvaluatorClone: clones share compiled state but never buffers, so
// concurrent batch evaluation is race-free and bit-identical (run under
// -race in CI).
func TestEvaluatorClone(t *testing.T) {
	rules := []string{
		"IF a IS low AND b IS low THEN out IS low",
		"IF a IS high OR b IS high THEN out IS high",
		"IF a IS med THEN out IS med",
	}
	sys := buildTestSystem(t, Options{ProductImplication: true}, rules)
	ev, err := NewEvaluator(sys)
	if err != nil {
		t.Fatal(err)
	}
	flat, stride := batchGrid()
	n := len(flat) / stride
	want := make([]float64, n)
	if err := ev.EvaluateBatch(flat, stride, want); err != nil {
		t.Fatal(err)
	}
	const workers = 4
	outs := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		outs[w] = make([]float64, n)
		wg.Add(1)
		go func(c *Evaluator, out []float64) {
			defer wg.Done()
			if err := c.EvaluateBatch(flat, stride, out); err != nil {
				t.Error(err)
			}
		}(ev.Clone(), outs[w])
	}
	wg.Wait()
	for w := range outs {
		for r := range outs[w] {
			if math.Float64bits(outs[w][r]) != math.Float64bits(want[r]) {
				t.Fatalf("clone %d row %d: %v != %v", w, r, outs[w][r], want[r])
			}
		}
	}
}

// TestEvaluateBatchNoAllocs: the centroid batch path must allocate nothing
// once warm.
func TestEvaluateBatchNoAllocs(t *testing.T) {
	rules := []string{
		"IF a IS low THEN out IS low",
		"IF a IS high THEN out IS high",
		"IF b IS med THEN out IS med",
	}
	sys := buildTestSystem(t, Options{}, rules)
	ev, err := NewEvaluator(sys)
	if err != nil {
		t.Fatal(err)
	}
	flat, stride := batchGrid()
	out := make([]float64, len(flat)/stride)
	if err := ev.EvaluateBatch(flat, stride, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := ev.EvaluateBatch(flat, stride, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("warm EvaluateBatch allocates %g times per run, want 0", allocs)
	}
}

// BenchmarkEvaluateBatch is the attack-plane CI smoke benchmark for the
// fuzzy kernel: batch Mamdani inference over a 3-input system.
func BenchmarkEvaluateBatch(b *testing.B) {
	out, err := NewVariable("out", 0, 100)
	if err != nil {
		b.Fatal(err)
	}
	if err := out.ThreeTerms("low", "med", "high"); err != nil {
		b.Fatal(err)
	}
	sys, err := NewSystem(out, Options{})
	if err != nil {
		b.Fatal(err)
	}
	names := []string{"x0", "x1", "x2"}
	for _, name := range names {
		v, err := NewVariable(name, 0, 10)
		if err != nil {
			b.Fatal(err)
		}
		if err := v.ThreeTerms("low", "med", "high"); err != nil {
			b.Fatal(err)
		}
		if err := sys.AddInput(v); err != nil {
			b.Fatal(err)
		}
		for _, term := range []string{"low", "med", "high"} {
			if err := sys.AddRuleText("IF " + name + " IS " + term + " THEN out IS " + term); err != nil {
				b.Fatal(err)
			}
		}
	}
	ev, err := NewEvaluator(sys)
	if err != nil {
		b.Fatal(err)
	}
	const rows = 1024
	flat := make([]float64, rows*len(names))
	for i := range flat {
		flat[i] = float64(i%97) / 9.7
	}
	res := make([]float64, rows)
	if err := ev.EvaluateBatch(flat, len(names), res); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ev.EvaluateBatch(flat, len(names), res); err != nil {
			b.Fatal(err)
		}
	}
}
