package fuzzy

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements a plain-text serialization of a complete fuzzy
// inference system — the equivalent of the Matlab Fuzzy Logic Toolbox's
// .fis files the paper's authors would have used. The format is line
// oriented:
//
//	# comment
//	OUTPUT income 40000 160000
//	TERM income low  trap -inf -inf 30 60
//	TERM income med  tri 30 60 90
//	TERM income high gauss 100 15
//	INPUT valuation 0 10
//	TERM valuation low ...
//	RULE IF valuation IS low THEN income IS low WEIGHT 0.5
//
// Shapes: tri a b c | trap a b c d | gauss mean sigma | singleton x.
// "-inf"/"inf" are legal trapezoid feet (open shoulders).

// DumpFIS writes the system in the text format. Terms serialize in their
// insertion order; rules in addition order.
func DumpFIS(w io.Writer, s *System) error {
	if s == nil {
		return fmt.Errorf("fuzzy: dump of nil system")
	}
	write := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	dumpVar := func(kw string, v *Variable) error {
		if err := write("%s %s %s %s\n", kw, v.Name, num(v.Lo), num(v.Hi)); err != nil {
			return err
		}
		for _, t := range v.Terms() {
			f, err := v.Term(t)
			if err != nil {
				return err
			}
			shape, err := shapeOf(f)
			if err != nil {
				return fmt.Errorf("fuzzy: variable %q term %q: %w", v.Name, t, err)
			}
			if err := write("TERM %s %s %s\n", v.Name, t, shape); err != nil {
				return err
			}
		}
		return nil
	}
	if err := dumpVar("OUTPUT", s.output); err != nil {
		return err
	}
	names := s.Inputs()
	sort.Strings(names)
	for _, n := range names {
		if err := dumpVar("INPUT", s.inputs[n]); err != nil {
			return err
		}
	}
	for _, r := range s.rules {
		line := fmt.Sprintf("RULE IF %s THEN %s IS %s", r.Antecedent.String(), s.output.Name, r.OutputTerm)
		if r.Weight != 1 {
			line += " WEIGHT " + num(r.Weight)
		}
		if err := write("%s\n", line); err != nil {
			return err
		}
	}
	return nil
}

func num(x float64) string {
	if math.IsInf(x, -1) {
		return "-inf"
	}
	if math.IsInf(x, 1) {
		return "inf"
	}
	return strconv.FormatFloat(x, 'g', -1, 64)
}

func shapeOf(f MembershipFunc) (string, error) {
	switch m := f.(type) {
	case Triangular:
		return fmt.Sprintf("tri %s %s %s", num(m.A), num(m.B), num(m.C)), nil
	case Trapezoid:
		return fmt.Sprintf("trap %s %s %s %s", num(m.A), num(m.B), num(m.C), num(m.D)), nil
	case Gaussian:
		return fmt.Sprintf("gauss %s %s", num(m.Mean), num(m.Sigma)), nil
	case Singleton:
		return fmt.Sprintf("singleton %s", num(m.X)), nil
	case Sigmoid:
		return fmt.Sprintf("sigmoid %s %s", num(m.Center), num(m.Slope)), nil
	case Bell:
		return fmt.Sprintf("bell %s %s %s", num(m.Width), num(m.Slope), num(m.Center)), nil
	default:
		return "", fmt.Errorf("unserializable membership function %T", f)
	}
}

// ParseFIS reads a system in the text format. The engine options are the
// caller's (they are runtime configuration, not part of the model).
func ParseFIS(r io.Reader, opts Options) (*System, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("fuzzy: read fis: %w", err)
	}
	var sys *System
	vars := make(map[string]*Variable)
	var inputOrder []string
	var pendingRules []string

	for lineNo, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		kw := strings.ToUpper(fields[0])
		fail := func(format string, args ...any) error {
			return fmt.Errorf("fuzzy: fis line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch kw {
		case "OUTPUT", "INPUT":
			if len(fields) != 4 {
				return nil, fail("%s needs name lo hi", kw)
			}
			lo, err1 := parseNum(fields[2])
			hi, err2 := parseNum(fields[3])
			if err1 != nil || err2 != nil {
				return nil, fail("bad bounds %q %q", fields[2], fields[3])
			}
			v, err := NewVariable(fields[1], lo, hi)
			if err != nil {
				return nil, fail("%v", err)
			}
			if _, dup := vars[v.Name]; dup {
				return nil, fail("duplicate variable %q", v.Name)
			}
			vars[v.Name] = v
			if kw == "OUTPUT" {
				if sys != nil {
					return nil, fail("second OUTPUT")
				}
				// System is created after its terms arrive; remember it via
				// a sentinel below.
				sys = &System{inputs: make(map[string]*Variable), output: v, opts: opts}
				if sys.opts.Resolution == 0 {
					sys.opts.Resolution = 201
				}
			} else {
				if sys == nil {
					return nil, fail("INPUT before OUTPUT")
				}
				// Terms arrive on later lines; attach to the system once
				// the whole file is read.
				inputOrder = append(inputOrder, v.Name)
			}
		case "TERM":
			if len(fields) < 4 {
				return nil, fail("TERM needs variable name shape …")
			}
			v, ok := vars[fields[1]]
			if !ok {
				return nil, fail("TERM for unknown variable %q", fields[1])
			}
			f, err := parseShape(fields[3], fields[4:])
			if err != nil {
				return nil, fail("%v", err)
			}
			if err := v.AddTerm(fields[2], f); err != nil {
				return nil, fail("%v", err)
			}
		case "RULE":
			// Defer rule parsing until all variables and terms exist.
			pendingRules = append(pendingRules, strings.TrimSpace(line[len("RULE"):]))
		default:
			return nil, fail("unknown keyword %q", fields[0])
		}
	}
	if sys == nil {
		return nil, fmt.Errorf("fuzzy: fis has no OUTPUT")
	}
	if len(sys.output.Terms()) == 0 {
		return nil, fmt.Errorf("fuzzy: fis output %q has no terms", sys.output.Name)
	}
	for _, name := range inputOrder {
		if err := sys.AddInput(vars[name]); err != nil {
			return nil, err
		}
	}
	for _, src := range pendingRules {
		if err := sys.AddRuleText(src); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

func parseNum(s string) (float64, error) {
	switch strings.ToLower(s) {
	case "-inf":
		return math.Inf(-1), nil
	case "inf", "+inf":
		return math.Inf(1), nil
	default:
		return strconv.ParseFloat(s, 64)
	}
}

func parseShape(kind string, args []string) (MembershipFunc, error) {
	nums := make([]float64, len(args))
	for i, a := range args {
		v, err := parseNum(a)
		if err != nil {
			return nil, fmt.Errorf("bad shape parameter %q", a)
		}
		nums[i] = v
	}
	switch strings.ToLower(kind) {
	case "tri":
		if len(nums) != 3 {
			return nil, fmt.Errorf("tri needs 3 parameters, got %d", len(nums))
		}
		f, err := NewTriangular(nums[0], nums[1], nums[2])
		return f, err
	case "trap":
		if len(nums) != 4 {
			return nil, fmt.Errorf("trap needs 4 parameters, got %d", len(nums))
		}
		f, err := NewTrapezoid(nums[0], nums[1], nums[2], nums[3])
		return f, err
	case "gauss":
		if len(nums) != 2 {
			return nil, fmt.Errorf("gauss needs 2 parameters, got %d", len(nums))
		}
		f, err := NewGaussian(nums[0], nums[1])
		return f, err
	case "singleton":
		if len(nums) != 1 {
			return nil, fmt.Errorf("singleton needs 1 parameter, got %d", len(nums))
		}
		return Singleton{X: nums[0]}, nil
	case "sigmoid":
		if len(nums) != 2 {
			return nil, fmt.Errorf("sigmoid needs 2 parameters, got %d", len(nums))
		}
		f, err := NewSigmoid(nums[0], nums[1])
		return f, err
	case "bell":
		if len(nums) != 3 {
			return nil, fmt.Errorf("bell needs 3 parameters, got %d", len(nums))
		}
		f, err := NewBell(nums[0], nums[1], nums[2])
		return f, err
	default:
		return nil, fmt.Errorf("unknown shape %q", kind)
	}
}

// SampleSurface evaluates the membership of every term of a variable at n
// evenly spaced points — the data behind membership-function plots like the
// paper's Figure 2 sketches.
func SampleSurface(v *Variable, n int) (xs []float64, grades map[string][]float64, err error) {
	if v == nil {
		return nil, nil, fmt.Errorf("fuzzy: nil variable")
	}
	if n < 2 {
		return nil, nil, fmt.Errorf("fuzzy: need ≥ 2 samples, got %d", n)
	}
	xs = make([]float64, n)
	grades = make(map[string][]float64, len(v.Terms()))
	for _, t := range v.Terms() {
		grades[t] = make([]float64, n)
	}
	dx := (v.Hi - v.Lo) / float64(n-1)
	for i := 0; i < n; i++ {
		x := v.Lo + float64(i)*dx
		xs[i] = x
		for _, t := range v.Terms() {
			f, err := v.Term(t)
			if err != nil {
				return nil, nil, err
			}
			grades[t][i] = f.Grade(x)
		}
	}
	return xs, grades, nil
}
