package fuzzy

import (
	"fmt"
	"math"
	"sort"
)

// Evaluator runs repeated inferences over one System without the per-call
// allocations of System.Evaluate: fuzzified grades, firing strengths and the
// defuzzifier accumulators live in reused buffers, rules are precompiled to
// term indices, and the common membership shapes are devirtualized. Rules
// firing on the same output term are aggregated by their maximum strength
// up front — max_j min(g, w_j) = min(g, max_j w_j), so the Mamdani surface
// is unchanged and every result is bit-identical to System.Evaluate.
//
// An Evaluator is not safe for concurrent use; create one per goroutine
// (construction is cheap next to a single row's defuzzification).
type Evaluator struct {
	sys    *System
	vars   []*Variable
	terms  [][]concreteMF // per input variable, in term order
	grades [][]float64    // reused: fuzzified grades, aligned with terms

	// gradesMap mirrors grades for rules with compound antecedents, which
	// evaluate through the generic Expr.strength path.
	gradesMap map[string]map[string]float64
	needMaps  bool

	rules    []compiledRule
	outTerms []concreteMF
	caps     []float64 // reused: max firing strength per output term

	// Batch-evaluation state (see batch.go): the flat-matrix column feeding
	// each input variable, and — for the centroid fast path — the output
	// domain sample points with every output term's grade precomputed there.
	varCol []int       // input variable index → feature column
	xs     []float64   // output-domain sample points
	otg    [][]float64 // per output term: grade at each sample point
	surf   []float64   // reused: aggregated surface for the current row
}

// compiledRule is one rule with its lookups resolved to indices.
type compiledRule struct {
	// simple antecedents ("x IS term") read their strength directly from the
	// grade buffers; compound ones fall back to Expr.strength.
	simple     bool
	varI, terI int
	expr       Expr
	weight     float64
	outI       int
}

// concreteMF is a devirtualized membership function: the common shapes are
// evaluated by a switch on kind with the exact arithmetic of their Grade
// methods; anything else falls back to the interface.
type concreteMF struct {
	kind       uint8
	a, b, c, d float64
	f          MembershipFunc
}

const (
	mfGeneric uint8 = iota
	mfTriangular
	mfTrapezoid
	mfGaussian
	mfSingleton
)

func makeConcrete(f MembershipFunc) concreteMF {
	switch m := f.(type) {
	case Triangular:
		return concreteMF{kind: mfTriangular, a: m.A, b: m.B, c: m.C}
	case Trapezoid:
		return concreteMF{kind: mfTrapezoid, a: m.A, b: m.B, c: m.C, d: m.D}
	case Gaussian:
		return concreteMF{kind: mfGaussian, a: m.Mean, b: m.Sigma}
	case Singleton:
		return concreteMF{kind: mfSingleton, a: m.X}
	default:
		return concreteMF{kind: mfGeneric, f: f}
	}
}

// grade mirrors the Grade methods of the concrete shapes bit for bit.
func (m *concreteMF) grade(x float64) float64 {
	switch m.kind {
	case mfTriangular:
		switch {
		case x <= m.a || x >= m.c:
			if x == m.b {
				return 1
			}
			return 0
		case x == m.b:
			return 1
		case x < m.b:
			return (x - m.a) / (m.b - m.a)
		default:
			return (m.c - x) / (m.c - m.b)
		}
	case mfTrapezoid:
		switch {
		case x < m.a || x > m.d:
			return 0
		case x >= m.b && x <= m.c:
			return 1
		case x < m.b:
			return (x - m.a) / (m.b - m.a)
		default:
			return (m.d - x) / (m.d - m.c)
		}
	case mfGaussian:
		d := (x - m.a) / m.b
		return math.Exp(-d * d / 2)
	case mfSingleton:
		if x == m.a {
			return 1
		}
		return 0
	default:
		return m.f.Grade(x)
	}
}

// NewEvaluator compiles the system's current rule base. Rules added to the
// system afterwards are not seen by the evaluator.
func NewEvaluator(s *System) (*Evaluator, error) {
	e := &Evaluator{sys: s}
	names := make([]string, 0, len(s.inputs))
	for n := range s.inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	varIdx := make(map[string]int, len(names))
	termIdx := make([]map[string]int, len(names))
	for i, n := range names {
		v := s.inputs[n]
		varIdx[n] = i
		e.vars = append(e.vars, v)
		mfs := make([]concreteMF, len(v.order))
		ti := make(map[string]int, len(v.order))
		for j, term := range v.order {
			mfs[j] = makeConcrete(v.terms[term])
			ti[term] = j
		}
		termIdx[i] = ti
		e.terms = append(e.terms, mfs)
		e.grades = append(e.grades, make([]float64, len(mfs)))
	}
	outIdx := make(map[string]int, len(s.output.order))
	for j, term := range s.output.order {
		outIdx[term] = j
		e.outTerms = append(e.outTerms, makeConcrete(s.output.terms[term]))
	}
	e.caps = make([]float64, len(e.outTerms))
	for i := range s.rules {
		r := &s.rules[i]
		oi, ok := outIdx[r.OutputTerm]
		if !ok {
			return nil, fmt.Errorf("fuzzy: rule %q: output variable %q has no term %q", r.Text, s.output.Name, r.OutputTerm)
		}
		cr := compiledRule{expr: r.Antecedent, weight: r.Weight, outI: oi}
		if c, isCond := r.Antecedent.(cond); isCond {
			vi, okV := varIdx[c.variable]
			if !okV {
				return nil, fmt.Errorf("fuzzy: rule %q references unknown input %q", r.Text, c.variable)
			}
			ti, okT := termIdx[vi][c.term]
			if !okT {
				return nil, fmt.Errorf("fuzzy: rule %q: variable %q has no term %q", r.Text, c.variable, c.term)
			}
			cr.simple, cr.varI, cr.terI = true, vi, ti
		} else {
			e.needMaps = true
		}
		e.rules = append(e.rules, cr)
	}
	if e.needMaps {
		e.gradesMap = make(map[string]map[string]float64, len(e.vars))
		for i, v := range e.vars {
			e.gradesMap[v.Name] = make(map[string]float64, len(e.terms[i]))
		}
	}
	return e, nil
}

// Evaluate runs Mamdani inference for one crisp input vector, exactly as
// System.Evaluate does.
func (e *Evaluator) Evaluate(in map[string]float64) (float64, error) {
	s := e.sys
	if len(e.rules) == 0 {
		return 0, fmt.Errorf("fuzzy: system has no rules")
	}
	for vi, v := range e.vars {
		x, ok := in[v.Name]
		if !ok {
			return 0, fmt.Errorf("fuzzy: missing input %q", v.Name)
		}
		buf := e.grades[vi]
		for ti := range e.terms[vi] {
			buf[ti] = e.terms[vi][ti].grade(x)
		}
		if e.needMaps {
			m := e.gradesMap[v.Name]
			for ti, term := range v.order {
				m[term] = buf[ti]
			}
		}
	}
	for i := range e.caps {
		e.caps[i] = 0
	}
	fired := false
	for i := range e.rules {
		cr := &e.rules[i]
		var w float64
		if cr.simple {
			w = e.grades[cr.varI][cr.terI]
		} else {
			w = cr.expr.strength(e.gradesMap, s.opts.Norms)
		}
		w *= cr.weight
		if w <= 0 {
			continue
		}
		fired = true
		if w > e.caps[cr.outI] {
			e.caps[cr.outI] = w
		}
	}
	if !fired {
		return 0, ErrNoRuleFired
	}
	return e.defuzzify()
}

// surfaceGrade is the aggregated Mamdani output surface at x: the maximum
// over fired output terms of their clipped (or scaled) membership.
func (e *Evaluator) surfaceGrade(x float64, prod bool) float64 {
	var best float64
	for oi := range e.caps {
		c := e.caps[oi]
		if c == 0 {
			continue
		}
		g := e.outTerms[oi].grade(x)
		if prod {
			g *= c
		} else if g > c {
			g = c
		}
		if g > best {
			best = g
		}
	}
	return best
}

func (e *Evaluator) defuzzify() (float64, error) {
	s := e.sys
	prod := s.opts.ProductImplication
	if s.opts.Defuzz == Centroid {
		// Single pass: the three accumulators advance in the same sample
		// order as System.defuzzify's two loops, so the sums carry the same
		// rounding and the result is bit-identical.
		n := s.opts.Resolution
		lo, hi := s.output.Lo, s.output.Hi
		dx := (hi - lo) / float64(n-1)
		var maxY, area, num float64
		for i := 0; i < n; i++ {
			x := lo + float64(i)*dx
			y := e.surfaceGrade(x, prod)
			if y > maxY {
				maxY = y
			}
			area += y
			num += x * y
		}
		if maxY == 0 || area == 0 {
			return 0, ErrNoRuleFired
		}
		return num / area, nil
	}
	// The other defuzzifiers need the sampled surface in array form; build
	// the aggregate and reuse the generic path.
	var surface aggregate
	for oi := range e.caps {
		if e.caps[oi] == 0 {
			continue
		}
		base, err := s.output.Term(s.output.order[oi])
		if err != nil {
			return 0, err
		}
		surface = append(surface, clipped{base: base, cap: e.caps[oi], prod: prod})
	}
	return s.defuzzify(surface)
}
