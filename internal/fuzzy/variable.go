package fuzzy

import (
	"fmt"
	"sort"
)

// Variable is a linguistic variable: a named crisp domain [Lo, Hi] carved
// into named fuzzy terms ("Low", "Med", "High" in Figure 2).
type Variable struct {
	Name   string
	Lo, Hi float64
	terms  map[string]MembershipFunc
	order  []string
}

// NewVariable creates a variable over [lo, hi].
func NewVariable(name string, lo, hi float64) (*Variable, error) {
	if name == "" {
		return nil, fmt.Errorf("fuzzy: variable needs a name")
	}
	if hi <= lo {
		return nil, fmt.Errorf("fuzzy: variable %q has empty domain [%g, %g]", name, lo, hi)
	}
	return &Variable{Name: name, Lo: lo, Hi: hi, terms: make(map[string]MembershipFunc)}, nil
}

// AddTerm attaches a named membership function. Term names are unique per
// variable.
func (v *Variable) AddTerm(name string, f MembershipFunc) error {
	if name == "" {
		return fmt.Errorf("fuzzy: variable %q: empty term name", v.Name)
	}
	if f == nil {
		return fmt.Errorf("fuzzy: variable %q term %q: nil membership function", v.Name, name)
	}
	if _, dup := v.terms[name]; dup {
		return fmt.Errorf("fuzzy: variable %q already has term %q", v.Name, name)
	}
	v.terms[name] = f
	v.order = append(v.order, name)
	return nil
}

// Term returns the membership function for a term name.
func (v *Variable) Term(name string) (MembershipFunc, error) {
	f, ok := v.terms[name]
	if !ok {
		return nil, fmt.Errorf("fuzzy: variable %q has no term %q", v.Name, name)
	}
	return f, nil
}

// Terms returns the term names in insertion order.
func (v *Variable) Terms() []string {
	out := make([]string, len(v.order))
	copy(out, v.order)
	return out
}

// Fuzzify returns the membership grade of x in every term.
func (v *Variable) Fuzzify(x float64) map[string]float64 {
	out := make(map[string]float64, len(v.terms))
	for name, f := range v.terms {
		out[name] = f.Grade(x)
	}
	return out
}

// BestTerm returns the term with the highest grade at x, breaking ties by
// term name for determinism.
func (v *Variable) BestTerm(x float64) (string, float64) {
	names := make([]string, 0, len(v.terms))
	for n := range v.terms {
		names = append(names, n)
	}
	sort.Strings(names)
	var bestName string
	best := -1.0
	for _, n := range names {
		if g := v.terms[n].Grade(x); g > best {
			best, bestName = g, n
		}
	}
	return bestName, best
}

// ThreeTerms partitions the variable into the Low/Med/High shape of
// Figure 2: a left shoulder, a centered triangle and a right shoulder, with
// the crossovers at 1/3 and 2/3 of the domain.
func (v *Variable) ThreeTerms(low, med, high string) error {
	return v.UniformTerms([]string{low, med, high})
}

// UniformTerms partitions the domain into len(names) uniformly spaced terms:
// shoulders at the ends, triangles between, each peaking where its
// neighbours vanish (a standard Ruspini partition: grades sum to 1 inside
// the domain).
func (v *Variable) UniformTerms(names []string) error {
	n := len(names)
	if n < 2 {
		return fmt.Errorf("fuzzy: variable %q: need at least 2 terms, got %d", v.Name, n)
	}
	step := (v.Hi - v.Lo) / float64(n-1)
	for i, name := range names {
		peak := v.Lo + float64(i)*step
		var f MembershipFunc
		var err error
		switch i {
		case 0:
			f, err = LeftShoulder(peak, peak+step)
		case n - 1:
			f, err = RightShoulder(peak-step, peak)
		default:
			f, err = NewTriangular(peak-step, peak, peak+step)
		}
		if err != nil {
			return fmt.Errorf("fuzzy: variable %q term %q: %w", v.Name, name, err)
		}
		if err := v.AddTerm(name, f); err != nil {
			return err
		}
	}
	return nil
}
