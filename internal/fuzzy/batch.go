package fuzzy

import (
	"errors"
	"fmt"
	"math"
)

// This file is the batch face of the Evaluator: whole-matrix inference over a
// flat row-major feature matrix, with no per-row map construction and no
// per-row allocations once warm. Every crisp result is bit-identical to the
// per-row Evaluate / EvaluateSugeno paths; rows where no rule fires (or the
// aggregated surface is empty) report NaN instead of ErrNoRuleFired, so one
// bad row does not abort the batch.

// Clone returns an evaluator sharing e's compiled, immutable state (system,
// variables, membership functions, rules, sample grades) with fresh mutable
// buffers, so each worker goroutine of a chunk-parallel batch can evaluate
// race-free. Cloning is much cheaper than NewEvaluator: no rule compilation,
// no output-term sampling.
func (e *Evaluator) Clone() *Evaluator {
	c := &Evaluator{
		sys:      e.sys,
		vars:     e.vars,
		terms:    e.terms,
		needMaps: e.needMaps,
		rules:    e.rules,
		outTerms: e.outTerms,
		varCol:   e.varCol,
		xs:       e.xs,
		otg:      e.otg,
	}
	c.grades = make([][]float64, len(e.grades))
	for i := range e.grades {
		c.grades[i] = make([]float64, len(e.grades[i]))
	}
	c.caps = make([]float64, len(e.caps))
	if e.otg != nil {
		c.surf = make([]float64, len(e.xs))
	}
	if e.needMaps {
		c.gradesMap = make(map[string]map[string]float64, len(c.vars))
		for i, v := range c.vars {
			c.gradesMap[v.Name] = make(map[string]float64, len(c.terms[i]))
		}
	}
	return c
}

// BindInputs maps each input variable to its column in the flat feature
// matrix by feature name, for matrices whose column order differs from the
// evaluator's sorted-by-name variable order. Unbound evaluators use the
// identity mapping: column i feeds the i-th input variable.
func (e *Evaluator) BindInputs(names []string) error {
	cols := make([]int, len(e.vars))
	for vi, v := range e.vars {
		found := -1
		for j, n := range names {
			if n == v.Name {
				found = j
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("fuzzy: no feature column named %q for input variable", v.Name)
		}
		cols[vi] = found
	}
	e.varCol = cols
	return nil
}

// batchCols resolves (and caches) the column binding and validates it against
// the matrix stride.
func (e *Evaluator) batchCols(stride int) ([]int, error) {
	cols := e.varCol
	if cols == nil {
		cols = make([]int, len(e.vars))
		for i := range cols {
			cols[i] = i
		}
		e.varCol = cols
	}
	for vi, c := range cols {
		if c < 0 || c >= stride {
			return nil, fmt.Errorf("fuzzy: input %q bound to column %d, outside stride %d", e.vars[vi].Name, c, stride)
		}
	}
	return cols, nil
}

// fuzzifyRow fills the grade buffers (and, for compound rule bases, the grade
// maps) from one matrix row, exactly as Evaluate does from its input map.
func (e *Evaluator) fuzzifyRow(row []float64, cols []int) {
	for vi := range e.vars {
		x := row[cols[vi]]
		buf := e.grades[vi]
		terms := e.terms[vi]
		for ti := range terms {
			buf[ti] = terms[ti].grade(x)
		}
		if e.needMaps {
			m := e.gradesMap[e.vars[vi].Name]
			for ti, term := range e.vars[vi].order {
				m[term] = buf[ti]
			}
		}
	}
}

// fireRow fuzzifies one row and aggregates rule firing strengths into the
// caps buffer. It mirrors the middle of Evaluate bit for bit and reports
// whether any rule fired.
func (e *Evaluator) fireRow(row []float64, cols []int) bool {
	e.fuzzifyRow(row, cols)
	for i := range e.caps {
		e.caps[i] = 0
	}
	fired := false
	for i := range e.rules {
		cr := &e.rules[i]
		var w float64
		if cr.simple {
			w = e.grades[cr.varI][cr.terI]
		} else {
			w = cr.expr.strength(e.gradesMap, e.sys.opts.Norms)
		}
		w *= cr.weight
		if w <= 0 {
			continue
		}
		fired = true
		if w > e.caps[cr.outI] {
			e.caps[cr.outI] = w
		}
	}
	return fired
}

// ensureSamples precomputes, once per evaluator, the output-domain sample
// points and every output term's grade at each of them. The samples are the
// exact x = lo + i·dx values of the per-row centroid loop, and grade() is the
// same function, so reading otg[oi][i] is bit-identical to evaluating the
// term at sample i.
func (e *Evaluator) ensureSamples() {
	if e.otg != nil {
		return
	}
	n := e.sys.opts.Resolution
	lo, hi := e.sys.output.Lo, e.sys.output.Hi
	dx := (hi - lo) / float64(n-1)
	e.xs = make([]float64, n)
	for i := range e.xs {
		e.xs[i] = lo + float64(i)*dx
	}
	e.otg = make([][]float64, len(e.outTerms))
	for oi := range e.outTerms {
		g := make([]float64, n)
		for i, x := range e.xs {
			g[i] = e.outTerms[oi].grade(x)
		}
		e.otg[oi] = g
	}
	e.surf = make([]float64, n)
}

// centroidBatch defuzzifies the current caps through the precomputed sample
// grades. The per-sample surface value is the max over fired terms of their
// clipped (or scaled) grade — the same non-negative candidates surfaceGrade
// maximizes, just visited terms-outer instead of terms-inner, and max is
// exact and order-independent, so surf[i] carries surfaceGrade(xs[i])'s bits.
// The closing maxY/area/num pass then accumulates in the identical sample
// order as the per-row centroid loop. Returns NaN when the surface is empty.
func (e *Evaluator) centroidBatch() float64 {
	surf := e.surf
	for i := range surf {
		surf[i] = 0
	}
	prod := e.sys.opts.ProductImplication
	for oi := range e.caps {
		c := e.caps[oi]
		if c == 0 {
			continue
		}
		g := e.otg[oi]
		if prod {
			for i, gv := range g {
				if v := gv * c; v > surf[i] {
					surf[i] = v
				}
			}
		} else {
			for i, gv := range g {
				if gv > c {
					gv = c
				}
				if gv > surf[i] {
					surf[i] = gv
				}
			}
		}
	}
	var maxY, area, num float64
	xs := e.xs
	for i, y := range surf {
		if y > maxY {
			maxY = y
		}
		area += y
		num += xs[i] * y
	}
	if maxY == 0 || area == 0 {
		return math.NaN()
	}
	return num / area
}

// checkBatch validates the flat matrix shape shared by the batch entry
// points.
func checkBatch(flat []float64, stride, n int) error {
	if stride < 1 {
		return fmt.Errorf("fuzzy: batch stride must be ≥ 1, got %d", stride)
	}
	if len(flat) < n*stride {
		return fmt.Errorf("fuzzy: flat matrix has %d values, need %d rows × stride %d", len(flat), n, stride)
	}
	return nil
}

// EvaluateBatch runs Mamdani inference over len(out) rows of a flat
// row-major feature matrix: row r occupies flat[r*stride : r*stride+stride],
// and each input variable reads the column it was bound to (BindInputs), or
// its own index when unbound. out[r] receives exactly the bits Evaluate
// would produce for that row, with NaN marking rows where no rule fired.
//
// With the centroid defuzzifier (the default) the whole batch runs against
// precomputed output-term sample grades and allocates nothing once warm;
// other defuzzifiers fall back to the per-row surface construction.
func (e *Evaluator) EvaluateBatch(flat []float64, stride int, out []float64) error {
	if len(e.rules) == 0 {
		return errors.New("fuzzy: system has no rules")
	}
	n := len(out)
	if n == 0 {
		return nil
	}
	if err := checkBatch(flat, stride, n); err != nil {
		return err
	}
	cols, err := e.batchCols(stride)
	if err != nil {
		return err
	}
	centroid := e.sys.opts.Defuzz == Centroid
	if centroid {
		e.ensureSamples()
	}
	for r := 0; r < n; r++ {
		row := flat[r*stride : r*stride+stride]
		if !e.fireRow(row, cols) {
			out[r] = math.NaN()
			continue
		}
		if centroid {
			out[r] = e.centroidBatch()
			continue
		}
		y, err := e.defuzzify()
		if err != nil {
			if errors.Is(err, ErrNoRuleFired) {
				out[r] = math.NaN()
				continue
			}
			return err
		}
		out[r] = y
	}
	return nil
}

// EvaluateBatchSugeno is the batch form of System.EvaluateSugeno over the
// same flat matrix layout as EvaluateBatch: the firing-strength-weighted
// average of the output singletons, accumulated in rule order, bit-identical
// per row. Rows firing no rule get NaN. Like the per-row path, output terms
// are only checked to be singletons when a rule firing on them actually
// fires.
func (e *Evaluator) EvaluateBatchSugeno(flat []float64, stride int, out []float64) error {
	if len(e.rules) == 0 {
		return errors.New("fuzzy: system has no rules")
	}
	n := len(out)
	if n == 0 {
		return nil
	}
	if err := checkBatch(flat, stride, n); err != nil {
		return err
	}
	cols, err := e.batchCols(stride)
	if err != nil {
		return err
	}
	for r := 0; r < n; r++ {
		e.fuzzifyRow(flat[r*stride:r*stride+stride], cols)
		var num, den float64
		for i := range e.rules {
			cr := &e.rules[i]
			var w float64
			if cr.simple {
				w = e.grades[cr.varI][cr.terI]
			} else {
				w = cr.expr.strength(e.gradesMap, e.sys.opts.Norms)
			}
			w *= cr.weight
			if w <= 0 {
				continue
			}
			ot := &e.outTerms[cr.outI]
			if ot.kind != mfSingleton {
				return fmt.Errorf("fuzzy: Sugeno output term %q is not a singleton", e.sys.output.order[cr.outI])
			}
			num += w * ot.a
			den += w
		}
		if den == 0 {
			out[r] = math.NaN()
		} else {
			out[r] = num / den
		}
	}
	return nil
}
