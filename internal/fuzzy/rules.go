package fuzzy

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Rule is a parsed fuzzy if-then rule: an antecedent expression over input
// terms, an output term, and a weight (the paper assigns uniform weights).
type Rule struct {
	Antecedent Expr
	OutputTerm string
	Weight     float64
	// Text preserves the source for diagnostics.
	Text string

	outputVar string
}

// Expr is a fuzzy antecedent expression evaluated against fuzzified inputs.
type Expr interface {
	// strength returns the firing strength given per-variable term grades.
	strength(grades map[string]map[string]float64, n Norms) float64
	// vars appends the variable names referenced by the expression.
	vars(into map[string]bool)
	// String renders the expression in the rule language.
	String() string
}

// Norms configures the fuzzy connectives.
type Norms struct {
	// ProductAND uses the product t-norm for AND instead of min.
	ProductAND bool
}

// cond is "variable IS term".
type cond struct{ variable, term string }

func (c cond) strength(g map[string]map[string]float64, _ Norms) float64 {
	return g[c.variable][c.term]
}
func (c cond) vars(into map[string]bool) { into[c.variable] = true }
func (c cond) String() string            { return c.variable + " IS " + c.term }

// notExpr is fuzzy complement 1−x.
type notExpr struct{ inner Expr }

func (n notExpr) strength(g map[string]map[string]float64, nm Norms) float64 {
	return 1 - n.inner.strength(g, nm)
}
func (n notExpr) vars(into map[string]bool) { n.inner.vars(into) }
func (n notExpr) String() string            { return "NOT (" + n.inner.String() + ")" }

// andExpr is the t-norm over its operands.
type andExpr struct{ kids []Expr }

func (a andExpr) strength(g map[string]map[string]float64, n Norms) float64 {
	s := 1.0
	for i, k := range a.kids {
		v := k.strength(g, n)
		if n.ProductAND {
			s *= v
		} else if i == 0 || v < s {
			s = v
		}
	}
	return s
}
func (a andExpr) vars(into map[string]bool) {
	for _, k := range a.kids {
		k.vars(into)
	}
}
func (a andExpr) String() string { return joinExprs(a.kids, " AND ") }

// orExpr is the max s-norm over its operands.
type orExpr struct{ kids []Expr }

func (o orExpr) strength(g map[string]map[string]float64, n Norms) float64 {
	var s float64
	for _, k := range o.kids {
		if v := k.strength(g, n); v > s {
			s = v
		}
	}
	return s
}
func (o orExpr) vars(into map[string]bool) {
	for _, k := range o.kids {
		k.vars(into)
	}
}
func (o orExpr) String() string { return joinExprs(o.kids, " OR ") }

func joinExprs(kids []Expr, sep string) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = "(" + k.String() + ")"
	}
	return strings.Join(parts, sep)
}

// ---------------------------------------------------------------------------
// Rule language parser
//
//	rule    := IF expr THEN ident IS ident [WEIGHT number]
//	expr    := and { OR and }
//	and     := unary { AND unary }
//	unary   := NOT unary | "(" expr ")" | ident IS ident
//
// Keywords are case-insensitive; identifiers are letters, digits, '_' and
// '-' (so "Property_Holdings" and "invst-vol" both work).

// ParseRule parses one rule in the language above.
func ParseRule(text string) (Rule, error) {
	p := &parser{src: text}
	p.next()
	if err := p.expectKeyword("IF"); err != nil {
		return Rule{}, err
	}
	expr, err := p.parseExpr()
	if err != nil {
		return Rule{}, err
	}
	if err := p.expectKeyword("THEN"); err != nil {
		return Rule{}, err
	}
	outVar, err := p.expectIdent()
	if err != nil {
		return Rule{}, err
	}
	if err := p.expectKeyword("IS"); err != nil {
		return Rule{}, err
	}
	outTerm, err := p.expectIdent()
	if err != nil {
		return Rule{}, err
	}
	weight := 1.0
	if p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, "WEIGHT") {
		p.next()
		if p.tok.kind != tokNumber {
			return Rule{}, p.errorf("expected a number after WEIGHT")
		}
		w, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil || w < 0 || w > 1 {
			return Rule{}, p.errorf("rule weight %q must be in [0, 1]", p.tok.text)
		}
		weight = w
		p.next()
	}
	if p.tok.kind != tokEOF {
		return Rule{}, p.errorf("unexpected trailing input %q", p.tok.text)
	}
	// The consequent's variable is implicit in System (single output); keep
	// the parsed variable name in Text and validate in System.AddRule.
	return Rule{
		Antecedent: expr,
		OutputTerm: outTerm,
		Weight:     weight,
		Text:       text,
		outputVar:  outVar,
	}, nil
}

// outputVar records the THEN-side variable for validation against the
// system's output variable.
func (r Rule) OutputVar() string { return r.outputVar }

// MustParseRule is ParseRule that panics on error, for statically known
// rule sets.
func MustParseRule(text string) Rule {
	r, err := ParseRule(text)
	if err != nil {
		panic(err)
	}
	return r
}

// ParseRules parses one rule per non-empty, non-comment ('#') line.
func ParseRules(text string) ([]Rule, error) {
	var out []Rule
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := ParseRule(line)
		if err != nil {
			return nil, fmt.Errorf("fuzzy: line %d: %w", i+1, err)
		}
		out = append(out, r)
	}
	return out, nil
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokLParen
	tokRParen
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type parser struct {
	src string
	pos int
	tok token
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("fuzzy: parse %q at offset %d: %s", p.src, p.tok.pos, fmt.Sprintf(format, args...))
}

func (p *parser) next() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.src) {
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	c := p.src[p.pos]
	switch {
	case c == '(':
		p.pos++
		p.tok = token{tokLParen, "(", start}
	case c == ')':
		p.pos++
		p.tok = token{tokRParen, ")", start}
	case c >= '0' && c <= '9' || c == '.':
		for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.') {
			p.pos++
		}
		p.tok = token{tokNumber, p.src[start:p.pos], start}
	case isIdentRune(rune(c)):
		for p.pos < len(p.src) && isIdentRune(rune(p.src[p.pos])) {
			p.pos++
		}
		p.tok = token{tokIdent, p.src[start:p.pos], start}
	default:
		// Lex the offending byte as a lone identifier; the grammar will
		// reject it with a positioned error.
		p.pos++
		p.tok = token{tokIdent, string(c), start}
	}
}

func isIdentRune(r rune) bool {
	// '.' admits qualified feature names like "aux.Seniority". Numbers are
	// lexed before identifiers, so ".5" still parses as a number.
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.'
}

func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tokIdent || !strings.EqualFold(p.tok.text, kw) {
		return p.errorf("expected %s, found %q", kw, p.tok.text)
	}
	p.next()
	return nil
}

func (p *parser) keyword(kw string) bool {
	if p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, kw) {
		p.next()
		return true
	}
	return false
}

// reserved words may not be used as identifiers.
var reserved = map[string]bool{
	"IF": true, "THEN": true, "IS": true, "AND": true, "OR": true,
	"NOT": true, "WEIGHT": true,
}

func (p *parser) expectIdent() (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.errorf("expected an identifier, found %q", p.tok.text)
	}
	if reserved[strings.ToUpper(p.tok.text)] {
		return "", p.errorf("%q is a reserved word", p.tok.text)
	}
	s := p.tok.text
	p.next()
	return s, nil
}

func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []Expr{left}
	for p.keyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return orExpr{kids}, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	kids := []Expr{left}
	for p.keyword("AND") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return andExpr{kids}, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.keyword("NOT") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notExpr{inner}, nil
	}
	if p.tok.kind == tokLParen {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errorf("expected ')', found %q", p.tok.text)
		}
		p.next()
		return e, nil
	}
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("IS"); err != nil {
		return nil, err
	}
	t, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return cond{v, t}, nil
}
