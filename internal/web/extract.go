package web

import (
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/linkage"
)

// Entity is the structured record an adversary extracts from one page — a
// row of the paper's Table IV.
type Entity struct {
	Name        string
	Employment  string // raw "Title, Employer" text
	Title       string
	Seniority   float64 // 1..10, 0 when unknown
	Property    float64
	HasTitle    bool
	HasProperty bool
}

// ExtractAll parses every entity mentioned on a page: one for a profile
// page, several for a staff-directory page, none for a distractor.
func ExtractAll(p Page, ladder Ladder) []Entity {
	if e, ok := Extract(p, ladder); ok {
		return []Entity{e}
	}
	var out []Entity
	const listing = "Listing: "
	for _, line := range strings.Split(p.Body, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, listing) {
			continue
		}
		body := strings.TrimSuffix(strings.TrimPrefix(line, listing), ".")
		parts := strings.SplitN(body, " — ", 2)
		if len(parts) != 2 {
			continue
		}
		e := Entity{Name: strings.TrimSpace(parts[0]), Employment: strings.TrimSpace(parts[1]), Title: strings.TrimSpace(parts[1])}
		if s, found := ladder.Score(e.Title); found {
			e.Seniority = s
			e.HasTitle = true
		}
		out = append(out, e)
	}
	return out
}

// Extract parses a profile page back into an Entity. ok is false for pages
// without a recognizable subject (distractors and directory pages — use
// ExtractAll for those).
func Extract(p Page, ladder Ladder) (e Entity, ok bool) {
	const homepageOf = "Homepage of "
	for _, line := range strings.Split(p.Body, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, homepageOf):
			e.Name = strings.TrimSuffix(strings.TrimPrefix(line, homepageOf), ".")
			ok = true
		case strings.HasPrefix(line, "Employment: "):
			e.Employment = strings.TrimSuffix(strings.TrimPrefix(line, "Employment: "), ".")
			if comma := strings.Index(e.Employment, ","); comma >= 0 {
				e.Title = strings.TrimSpace(e.Employment[:comma])
			} else {
				e.Title = e.Employment
			}
			if s, found := ladder.Score(e.Title); found {
				e.Seniority = s
				e.HasTitle = true
			}
		case strings.HasPrefix(line, "Property holdings: "):
			v := strings.TrimSuffix(strings.TrimPrefix(line, "Property holdings: "), ".")
			if f, err := strconv.ParseFloat(v, 64); err == nil {
				e.Property = f
				e.HasProperty = true
			}
		}
	}
	return e, ok
}

// mergeEntities combines two extractions of the same person, keeping every
// attribute either page provided.
func mergeEntities(a, b Entity) Entity {
	if !a.HasTitle && b.HasTitle {
		a.Title, a.Seniority, a.HasTitle = b.Title, b.Seniority, true
	}
	if a.Employment == "" {
		a.Employment = b.Employment
	}
	if !a.HasProperty && b.HasProperty {
		a.Property, a.HasProperty = b.Property, true
	}
	return a
}

// QSchema is the schema of gathered auxiliary tables: the identifier plus
// the two web attributes of Table IV, with seniority as the numeric reading
// of Employment.
func QSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Column{Name: "Name", Class: dataset.Identifier, Kind: dataset.Text},
		dataset.Column{Name: "Employment", Class: dataset.QuasiIdentifier, Kind: dataset.Text},
		dataset.Column{Name: "Seniority", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
		dataset.Column{Name: "PropertyHoldings", Class: dataset.QuasiIdentifier, Kind: dataset.Number},
	)
}

// Gather runs the attack's collection step: for every identifier in names it
// searches the corpus, extracts the best-matching entity, and links it back
// to the roster with the matcher. The result is the paper's Q table, one row
// per name, aligned with the input order; unfound attributes are suppressed
// cells.
func Gather(c *Corpus, names []string, ladder Ladder, m *linkage.Matcher) (*dataset.Table, error) {
	if m == nil {
		m = linkage.DefaultMatcher()
	}
	q := dataset.New(QSchema())
	// Collect the best candidate entity per roster name via search, then
	// resolve conflicts globally with the linker.
	var entities []Entity
	var entityNames []string
	seen := make(map[string]int) // extracted name → index into entities
	for _, name := range names {
		for _, r := range c.Search(name, 3) {
			for _, e := range ExtractAll(r.Page, ladder) {
				if i, dup := seen[e.Name]; dup {
					// The same person appears on several pages (homepage +
					// directory listing): merge attributes, preferring
					// whichever page had each one.
					entities[i] = mergeEntities(entities[i], e)
					continue
				}
				seen[e.Name] = len(entities)
				entities = append(entities, e)
				entityNames = append(entityNames, e.Name)
			}
		}
	}
	links, err := m.Link(entityNames, names)
	if err != nil {
		return nil, err
	}
	best := make(map[int]Entity, len(names)) // roster index → entity
	for qi, ti := range links {
		if _, dup := best[ti]; !dup {
			best[ti] = entities[qi]
		}
	}
	for i, name := range names {
		row := []dataset.Value{dataset.Str(name), dataset.NullValue(), dataset.NullValue(), dataset.NullValue()}
		if e, ok := best[i]; ok {
			if e.Employment != "" {
				row[1] = dataset.Str(e.Employment)
			}
			if e.HasTitle {
				row[2] = dataset.Num(e.Seniority)
			}
			if e.HasProperty {
				row[3] = dataset.Num(e.Property)
			}
		}
		if err := q.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return q, nil
}
