package web

import (
	"strings"
	"testing"

	"repro/internal/dataset"
)

func fourProfiles() []Profile {
	// The paper's Table IV: Alice (CEO, 3560), Bob (Manager, 1200),
	// Christine (Assistant, 720), Robert (CEO, 5430).
	return []Profile{
		{Name: "Alice Johnson", Seniority: 10, Property: 3560, Employer: "Deutsche Bank"},
		{Name: "Bob Smith", Seniority: 4, Property: 1200, Employer: "Verizon"},
		{Name: "Christine Lee", Seniority: 1, Property: 720, Employer: "NYU"},
		{Name: "Robert Brown", Seniority: 10, Property: 5430, Employer: "Microsoft"},
	}
}

func TestLadderScore(t *testing.T) {
	s, ok := CorporateLadder.Score("CEO")
	if !ok || s != 10 {
		t.Errorf("CEO = %g, %v", s, ok)
	}
	s, ok = CorporateLadder.Score("assistant")
	if !ok || s != 1 {
		t.Errorf("assistant = %g, %v", s, ok)
	}
	if _, ok := CorporateLadder.Score("Janitor"); ok {
		t.Error("unknown title scored")
	}
	// Score and TitleFor round-trip.
	for _, title := range CorporateLadder {
		s, ok := CorporateLadder.Score(title)
		if !ok {
			t.Fatalf("ladder title %q unscored", title)
		}
		if got := CorporateLadder.TitleFor(s); got != title {
			t.Errorf("TitleFor(Score(%q)) = %q", title, got)
		}
	}
	for _, title := range AcademicLadder {
		if _, ok := AcademicLadder.Score(title); !ok {
			t.Errorf("academic title %q unscored", title)
		}
	}
	if got := (Ladder{}).TitleFor(5); got != "" {
		t.Errorf("empty ladder TitleFor = %q", got)
	}
	if got := (Ladder{"Only"}).TitleFor(3); got != "Only" {
		t.Errorf("singleton ladder = %q", got)
	}
}

func TestBuildCorpusDeterministic(t *testing.T) {
	opts := GenOptions{Seed: 5, Distractors: 10, PropertyNoise: 0.1, NameTypoProb: 0.3}
	c1, err := BuildCorpus(fourProfiles(), opts)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := BuildCorpus(fourProfiles(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Len() != c2.Len() || c1.Len() != 14 {
		t.Fatalf("lens = %d, %d", c1.Len(), c2.Len())
	}
	for i := 0; i < c1.Len(); i++ {
		if c1.Page(i) != c2.Page(i) {
			t.Fatalf("page %d differs between same-seed corpora", i)
		}
	}
}

func TestBuildCorpusValidation(t *testing.T) {
	if _, err := BuildCorpus([]Profile{{}}, GenOptions{}); err == nil {
		t.Error("nameless profile accepted")
	}
	if _, err := BuildCorpus(nil, GenOptions{MissingProperty: 1.5}); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := BuildCorpus(nil, GenOptions{PropertyNoise: -1}); err == nil {
		t.Error("negative noise accepted")
	}
	if _, err := BuildCorpus(nil, GenOptions{Distractors: -2}); err == nil {
		t.Error("negative distractors accepted")
	}
}

func TestSearchFindsSubject(t *testing.T) {
	c, err := BuildCorpus(fourProfiles(), GenOptions{Seed: 1, Distractors: 50})
	if err != nil {
		t.Fatal(err)
	}
	hits := c.Search("Christine Lee", 3)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if !strings.Contains(hits[0].Page.Title, "Christine") {
		t.Errorf("top hit = %q", hits[0].Page.Title)
	}
	if c.Search("", 3) != nil {
		t.Error("empty query returned hits")
	}
	if c.Search("christine", 0) != nil {
		t.Error("limit 0 returned hits")
	}
	if got := c.Search("zzzznotindexed", 5); got != nil {
		t.Errorf("miss returned %v", got)
	}
}

func TestSearchRanksRareTokensHigher(t *testing.T) {
	c, err := BuildCorpus(fourProfiles(), GenOptions{Seed: 2, Distractors: 30})
	if err != nil {
		t.Fatal(err)
	}
	// "Homepage" appears on every profile; "Robert" on one. A query with
	// both must rank Robert's page first.
	hits := c.Search("Robert homepage", 5)
	if len(hits) == 0 || !strings.Contains(hits[0].Page.Title, "Robert") {
		t.Errorf("hits[0] = %+v", hits)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! x2 (test)")
	want := []string{"hello", "world", "x2", "test"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if len(Tokenize("")) != 0 {
		t.Error("empty input tokenized")
	}
}

func TestExtractRoundTrip(t *testing.T) {
	c, err := BuildCorpus(fourProfiles(), GenOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := Extract(c.Page(0), CorporateLadder)
	if !ok {
		t.Fatal("profile page not recognized")
	}
	if e.Name != "Alice Johnson" || !e.HasTitle || e.Seniority != 10 || !e.HasProperty || e.Property != 3560 {
		t.Errorf("entity = %+v", e)
	}
	if e.Title != "CEO" || !strings.Contains(e.Employment, "Deutsche Bank") {
		t.Errorf("employment = %q / %q", e.Title, e.Employment)
	}
	// Distractor pages do not extract.
	c2, err := BuildCorpus(nil, GenOptions{Seed: 3, Distractors: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Extract(c2.Page(0), CorporateLadder); ok {
		t.Error("distractor extracted as entity")
	}
}

func TestExtractMissingAttributes(t *testing.T) {
	c, err := BuildCorpus(fourProfiles(), GenOptions{Seed: 4, MissingEmployment: 1, MissingProperty: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := Extract(c.Page(1), CorporateLadder)
	if !ok {
		t.Fatal("page not recognized")
	}
	if e.HasTitle || e.HasProperty {
		t.Errorf("attributes extracted from bare page: %+v", e)
	}
}

func TestGatherBuildsTableIV(t *testing.T) {
	c, err := BuildCorpus(fourProfiles(), GenOptions{Seed: 6, Distractors: 20})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"Alice Johnson", "Bob Smith", "Christine Lee", "Robert Brown"}
	q, err := Gather(c, names, CorporateLadder, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumRows() != 4 {
		t.Fatalf("rows = %d", q.NumRows())
	}
	// Row order matches the roster.
	for i, n := range names {
		if got, _ := q.Cell(i, 0).Text(); got != n {
			t.Errorf("row %d name = %q, want %q", i, got, n)
		}
	}
	// Clean corpus: every attribute present with exact values.
	wantSeniority := []float64{10, 4, 1, 10}
	wantProperty := []float64{3560, 1200, 720, 5430}
	sCol := q.Schema().MustLookup("Seniority")
	pCol := q.Schema().MustLookup("PropertyHoldings")
	for i := range names {
		if got := q.Cell(i, sCol).MustFloat(); got != wantSeniority[i] {
			t.Errorf("row %d seniority = %g, want %g", i, got, wantSeniority[i])
		}
		if got := q.Cell(i, pCol).MustFloat(); got != wantProperty[i] {
			t.Errorf("row %d property = %g, want %g", i, got, wantProperty[i])
		}
	}
}

func TestGatherWithTyposStillLinks(t *testing.T) {
	c, err := BuildCorpus(fourProfiles(), GenOptions{Seed: 7, NameTypoProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"Alice Johnson", "Bob Smith", "Christine Lee", "Robert Brown"}
	q, err := Gather(c, names, CorporateLadder, nil)
	if err != nil {
		t.Fatal(err)
	}
	sCol := q.Schema().MustLookup("Seniority")
	var linked int
	for i := range names {
		if !q.Cell(i, sCol).IsNull() {
			linked++
		}
	}
	// Single-typo names should still mostly link through Jaro-Winkler.
	if linked < 3 {
		t.Errorf("only %d of 4 typo'd profiles linked", linked)
	}
}

func TestGatherUnknownPersonYieldsNulls(t *testing.T) {
	c, err := BuildCorpus(fourProfiles(), GenOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	q, err := Gather(c, []string{"Zebulon Pike"}, CorporateLadder, nil)
	if err != nil {
		t.Fatal(err)
	}
	for col := 1; col < q.NumCols(); col++ {
		if !q.Cell(0, col).IsNull() {
			t.Errorf("column %d not null for unknown person", col)
		}
	}
}

func TestDirectoryPages(t *testing.T) {
	c, err := BuildCorpus(fourProfiles(), GenOptions{Seed: 9, DirectoryPages: true, DirectoryPageSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 4 profiles + 2 directory pages (3 + 1).
	if c.Len() != 6 {
		t.Fatalf("corpus = %d pages", c.Len())
	}
	dir := c.Page(4)
	if !strings.Contains(dir.Title, "Staff Directory") {
		t.Fatalf("page 4 = %q", dir.Title)
	}
	ents := ExtractAll(dir, CorporateLadder)
	if len(ents) != 3 {
		t.Fatalf("directory extracted %d entities", len(ents))
	}
	if ents[0].Name != "Alice Johnson" || !ents[0].HasTitle || ents[0].Seniority != 10 {
		t.Errorf("entity 0 = %+v", ents[0])
	}
	if ents[0].HasProperty {
		t.Error("directory lines must not carry property holdings")
	}
	// A profile page still extracts exactly one entity through ExtractAll.
	if got := ExtractAll(c.Page(0), CorporateLadder); len(got) != 1 {
		t.Errorf("profile ExtractAll = %d entities", len(got))
	}
}

func TestGatherMergesDirectoryAndHomepage(t *testing.T) {
	// Employment lives only in the directory (missing from homepages);
	// property lives only on homepages. Gather must merge both sources.
	c, err := BuildCorpus(fourProfiles(), GenOptions{
		Seed: 10, MissingEmployment: 1, DirectoryPages: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"Alice Johnson", "Bob Smith", "Christine Lee", "Robert Brown"}
	q, err := Gather(c, names, CorporateLadder, nil)
	if err != nil {
		t.Fatal(err)
	}
	sCol := q.Schema().MustLookup("Seniority")
	pCol := q.Schema().MustLookup("PropertyHoldings")
	for i := range names {
		if q.Cell(i, sCol).IsNull() {
			t.Errorf("row %d: seniority missing despite directory page", i)
		}
		if q.Cell(i, pCol).IsNull() {
			t.Errorf("row %d: property missing despite homepage", i)
		}
	}
}

func TestQSchemaClasses(t *testing.T) {
	s := QSchema()
	if s.Column(0).Class != dataset.Identifier {
		t.Error("Name should be an identifier")
	}
	if len(s.IndicesOf(dataset.QuasiIdentifier)) != 3 {
		t.Error("want 3 QI columns")
	}
}
