package web

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Profile is the ground truth about one individual from which profile pages
// are generated. Seniority is a 1..10 score; Property is a holdings index
// (the paper's Table IV shows values like 3560, 1200, 720, 5430).
type Profile struct {
	Name      string
	Seniority float64
	Property  float64
	// Ladder selects the title vocabulary (academic vs corporate). Nil
	// defaults to CorporateLadder.
	Ladder Ladder
	// Employer is optional flavour; one is chosen deterministically when
	// empty.
	Employer string
}

// Page is one synthetic web document.
type Page struct {
	URL   string
	Title string
	Body  string
}

// GenOptions controls corpus generation noise — the knobs the paper leaves
// implicit in "data collected from employee web pages and external links".
type GenOptions struct {
	// DirectoryPages adds staff-directory pages, each listing a run of
	// DirectoryPageSize individuals ("external links" in the paper's
	// wording: the same facts reachable through a second page format).
	// Directory lines carry employment but never property holdings.
	DirectoryPages bool
	// DirectoryPageSize is the number of individuals per directory page
	// (default 8).
	DirectoryPageSize int

	// Seed drives all randomness; corpora are deterministic per seed.
	Seed int64
	// MissingEmployment is the probability a page omits the employment line.
	MissingEmployment float64
	// MissingProperty is the probability a page omits the property line.
	MissingProperty float64
	// NameTypoProb is the probability the page spells the subject's name
	// with a single typo (exercises approximate linkage).
	NameTypoProb float64
	// PropertyNoise is the relative noise amplitude on published property
	// values: the page shows value·(1 + u), u uniform in ±PropertyNoise.
	PropertyNoise float64
	// Distractors is the number of unrelated pages mixed into the corpus.
	Distractors int
}

// Corpus is a searchable collection of pages.
type Corpus struct {
	pages []Page
	index map[string][]int // token → page ids (sorted, unique)
}

// BuildCorpus generates one profile page per individual plus distractors,
// and indexes everything.
func BuildCorpus(profiles []Profile, opts GenOptions) (*Corpus, error) {
	if opts.MissingEmployment < 0 || opts.MissingEmployment > 1 ||
		opts.MissingProperty < 0 || opts.MissingProperty > 1 ||
		opts.NameTypoProb < 0 || opts.NameTypoProb > 1 {
		return nil, fmt.Errorf("web: probabilities must be in [0, 1]")
	}
	if opts.PropertyNoise < 0 || opts.Distractors < 0 {
		return nil, fmt.Errorf("web: negative noise or distractor count")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	c := &Corpus{index: make(map[string][]int)}
	for i, p := range profiles {
		if p.Name == "" {
			return nil, fmt.Errorf("web: profile %d has no name", i)
		}
		ladder := p.Ladder
		if ladder == nil {
			ladder = CorporateLadder
		}
		employer := p.Employer
		if employer == "" {
			employer = Employers[rng.Intn(len(Employers))]
		}
		displayName := p.Name
		if rng.Float64() < opts.NameTypoProb {
			displayName = typo(rng, displayName)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "Homepage of %s.\n", displayName)
		if rng.Float64() >= opts.MissingEmployment {
			fmt.Fprintf(&b, "Employment: %s, %s.\n", ladder.TitleFor(p.Seniority), employer)
		}
		if rng.Float64() >= opts.MissingProperty {
			noisy := p.Property
			if opts.PropertyNoise > 0 {
				noisy *= 1 + (rng.Float64()*2-1)*opts.PropertyNoise
			}
			fmt.Fprintf(&b, "Property holdings: %.0f.\n", noisy)
		}
		fmt.Fprintf(&b, "Contact and recent activity are listed below.\n")
		c.add(Page{
			URL:   fmt.Sprintf("http://people.example.org/%03d", i),
			Title: displayName + " - Personal Homepage",
			Body:  b.String(),
		})
	}
	if opts.DirectoryPages {
		size := opts.DirectoryPageSize
		if size <= 0 {
			size = 8
		}
		for start := 0; start < len(profiles); start += size {
			end := start + size
			if end > len(profiles) {
				end = len(profiles)
			}
			var b strings.Builder
			fmt.Fprintf(&b, "Staff directory, page %d.\n", start/size+1)
			for _, p := range profiles[start:end] {
				ladder := p.Ladder
				if ladder == nil {
					ladder = CorporateLadder
				}
				fmt.Fprintf(&b, "Listing: %s — %s.\n", p.Name, ladder.TitleFor(p.Seniority))
			}
			c.add(Page{
				URL:   fmt.Sprintf("http://directory.example.org/page/%03d", start/size),
				Title: fmt.Sprintf("Staff Directory %d", start/size+1),
				Body:  b.String(),
			})
		}
	}
	for d := 0; d < opts.Distractors; d++ {
		c.add(Page{
			URL:   fmt.Sprintf("http://blog.example.org/post/%04d", d),
			Title: fmt.Sprintf("Notes on topic %d", rng.Intn(1000)),
			Body: fmt.Sprintf("A discussion of subject %d with no personal data. Weather was %d degrees.\n",
				rng.Intn(500), 50+rng.Intn(40)),
		})
	}
	return c, nil
}

func (c *Corpus) add(p Page) {
	id := len(c.pages)
	c.pages = append(c.pages, p)
	seen := make(map[string]bool)
	for _, tok := range Tokenize(p.Title + " " + p.Body) {
		if !seen[tok] {
			seen[tok] = true
			c.index[tok] = append(c.index[tok], id)
		}
	}
}

// Len returns the number of pages.
func (c *Corpus) Len() int { return len(c.pages) }

// Page returns the i'th page.
func (c *Corpus) Page(i int) Page { return c.pages[i] }

// Tokenize lower-cases and splits on non-alphanumerics.
func Tokenize(s string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range strings.ToLower(s) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// Result is a scored search hit.
type Result struct {
	Page  Page
	Score float64
}

// Search returns up to limit pages ranked by query-token hit count weighted
// by inverse document frequency, ties broken by page id. An empty query or
// no hits yields nil.
func (c *Corpus) Search(query string, limit int) []Result {
	tokens := Tokenize(query)
	if len(tokens) == 0 || limit <= 0 {
		return nil
	}
	scores := make(map[int]float64)
	n := float64(len(c.pages))
	for _, tok := range tokens {
		ids := c.index[tok]
		if len(ids) == 0 {
			continue
		}
		idf := 1.0
		if n > 0 {
			idf = 1 + (n-float64(len(ids)))/n // rare tokens weigh ~2, ubiquitous ~1
		}
		for _, id := range ids {
			scores[id] += idf
		}
	}
	ids := make([]int, 0, len(scores))
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if scores[ids[i]] != scores[ids[j]] {
			return scores[ids[i]] > scores[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if len(ids) == 0 {
		return nil
	}
	if len(ids) > limit {
		ids = ids[:limit]
	}
	out := make([]Result, len(ids))
	for i, id := range ids {
		out[i] = Result{Page: c.pages[id], Score: scores[id]}
	}
	return out
}

// typo applies one random edit: swap two adjacent letters or drop one.
func typo(rng *rand.Rand, s string) string {
	runes := []rune(s)
	if len(runes) < 3 {
		return s
	}
	i := 1 + rng.Intn(len(runes)-2)
	if rng.Intn(2) == 0 {
		runes[i], runes[i+1] = runes[i+1], runes[i]
		return string(runes)
	}
	return string(runes[:i]) + string(runes[i+1:])
}
