// Package web simulates the 2008 web the paper's adversary crawls: profile
// pages generated from ground-truth facts about individuals, a small
// inverted-index search engine queried by name, and an extractor that pulls
// employment and property-holdings attributes back out (with configurable
// noise and missing data).
//
// This is the substitution for real homepages/blogs documented in
// DESIGN.md §4: the adversary pipeline — identifier → search → extract →
// link → fuse — exercises the same code path the paper describes.
package web

import "strings"

// Ladder is a seniority-ordered list of job titles; the index+1 maps
// linearly onto a 1..10 seniority score that the fusion system consumes as
// the numeric "Employment" input of Figure 2.
type Ladder []string

// CorporateLadder is the employment ladder of the paper's financial example
// (Table IV: "Assistant, NYU", "Manager, Verizon", "CEO, Microsoft"…).
var CorporateLadder = Ladder{
	"Assistant", "Associate", "Analyst", "Manager", "Senior Manager",
	"Director", "Senior Director", "Vice President", "Senior Vice President", "CEO",
}

// AcademicLadder is the ladder of the paper's university experiment
// (faculty salary data, homepages of employees).
var AcademicLadder = Ladder{
	"Teaching Assistant", "Instructor", "Lecturer", "Senior Lecturer",
	"Assistant Professor", "Associate Professor", "Professor",
	"Distinguished Professor", "Department Head", "Dean",
}

// Score returns the 1..10 seniority score of a title, matching
// case-insensitively, and whether the title is on the ladder.
func (l Ladder) Score(title string) (float64, bool) {
	t := strings.ToLower(strings.TrimSpace(title))
	for i, s := range l {
		if strings.ToLower(s) == t {
			return scaleToTen(i, len(l)), true
		}
	}
	return 0, false
}

// TitleFor returns the ladder title whose score is closest to want
// (clamped to [1, 10]).
func (l Ladder) TitleFor(want float64) string {
	if len(l) == 0 {
		return ""
	}
	best, bestD := 0, -1.0
	for i := range l {
		d := abs(scaleToTen(i, len(l)) - want)
		if bestD < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return l[best]
}

func scaleToTen(i, n int) float64 {
	if n == 1 {
		return 10
	}
	return 1 + 9*float64(i)/float64(n-1)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Employers provides flavour text for generated pages.
var Employers = []string{
	"Deutsche Bank", "Verizon", "NYU", "Microsoft", "Penn State University",
	"Goldman Sachs", "IBM", "Cornell University", "General Electric", "Pfizer",
}
