package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// snapshotFixture builds a table exercising every storage feature the codec
// serializes: plain numbers, intervals (hi buffer + span bitmap), suppressed
// cells (null bitmap), dictionary text with repeats, and a fully suppressed
// bufferless column (the zero-copy SuppressColumn representation).
func snapshotFixture(t *testing.T) *Table {
	t.Helper()
	s := MustSchema(
		Column{Name: "Name", Class: Identifier, Kind: Text},
		Column{Name: "Dept", Class: QuasiIdentifier, Kind: Text},
		Column{Name: "Age", Class: QuasiIdentifier, Kind: Number},
		Column{Name: "Income", Class: Sensitive, Kind: Number},
	)
	tb := New(s)
	tb.MustAppendRow(Str("Alice"), Str("CS"), Num(28), Num(91250))
	tb.MustAppendRow(Str("Bob"), Str("EE"), Span(25, 30), Num(60125.5))
	tb.MustAppendRow(Str("Carol"), Str("CS"), NullValue(), Num(123456.75))
	tb.MustAppendRow(Str("Dave"), NullValue(), Span(40, 45), Num(71000))
	return tb.WithSuppressed(3)
}

func fingerprintOf(t *testing.T, tab *Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tab.WriteFingerprint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotRoundTripFingerprint: the snapshot round-trip preserves the
// canonical fingerprint bit for bit — the property the disk store's
// content-addressed files rely on.
func TestSnapshotRoundTripFingerprint(t *testing.T) {
	orig := snapshotFixture(t)
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(got) {
		t.Fatal("snapshot round-trip changed the table")
	}
	want := fingerprintOf(t, orig)
	have := fingerprintOf(t, got)
	if !bytes.Equal(want, have) {
		t.Fatalf("fingerprint changed across the round-trip (%d vs %d bytes)", len(want), len(have))
	}
	// The reconstructed table must stay fully usable: mutate a copy without
	// disturbing the original (COW ownership survives deserialization).
	clone := got.Clone()
	if err := clone.SetCell(0, 2, Num(99)); err != nil {
		t.Fatal(err)
	}
	if got.Cell(0, 2).String() == clone.Cell(0, 2).String() {
		t.Fatal("mutating a clone of the deserialized table leaked into the original")
	}
}

// TestSnapshotRoundTripEmptyBuffers: a table of only suppressed cells (nil
// value buffers) and an empty table both round-trip.
func TestSnapshotRoundTripEmptyBuffers(t *testing.T) {
	s := MustSchema(
		Column{Name: "A", Class: QuasiIdentifier, Kind: Number},
		Column{Name: "B", Class: Identifier, Kind: Text},
	)
	empty := New(s)
	sup := New(s)
	sup.MustAppendRow(Num(1), Str("x"))
	sup.MustAppendRow(Num(2), Str("y"))
	sup = sup.WithSuppressed(0, 1)
	for name, tab := range map[string]*Table{"empty": empty, "all-suppressed": sup} {
		var buf bytes.Buffer
		if err := tab.WriteSnapshot(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !tab.Equal(got) {
			t.Fatalf("%s: round-trip changed the table", name)
		}
		if !bytes.Equal(fingerprintOf(t, tab), fingerprintOf(t, got)) {
			t.Fatalf("%s: fingerprint changed", name)
		}
	}
}

// TestSnapshotDetectsCorruption: a flipped payload byte, a truncated stream
// and a wrong magic all fail loudly instead of yielding a table.
func TestSnapshotDetectsCorruption(t *testing.T) {
	orig := snapshotFixture(t)
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip one byte in the middle of the payload: checksum must catch it
	// (unless the decoder already rejects the malformed structure).
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := ReadSnapshot(bytes.NewReader(flipped)); err == nil {
		t.Error("corrupted payload accepted")
	}

	// Truncation anywhere — including inside the trailer — is an error.
	for _, cut := range []int{len(raw) - 1, len(raw) - 4, len(raw) / 2, 8} {
		if _, err := ReadSnapshot(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncated snapshot (%d of %d bytes) accepted", cut, len(raw))
		}
	}

	// A stream that is not a snapshot at all.
	if _, err := ReadSnapshot(strings.NewReader("Name,Age\nid:text,qi:number\n")); err == nil {
		t.Error("non-snapshot stream accepted")
	}
}

// BenchmarkSnapshotRoundTrip measures the codec on a mixed table — the CI
// smoke keeps it compiling and within one iteration of sanity.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	s := MustSchema(
		Column{Name: "Name", Class: Identifier, Kind: Text},
		Column{Name: "Age", Class: QuasiIdentifier, Kind: Number},
		Column{Name: "Zip", Class: QuasiIdentifier, Kind: Number},
		Column{Name: "Income", Class: Sensitive, Kind: Number},
	)
	tb := New(s)
	for i := 0; i < 4096; i++ {
		tb.MustAppendRow(Str("user"+string(rune('a'+i%26))), Span(float64(i), float64(i+5)), Num(float64(i%97)), Num(float64(i)*1.5))
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := tb.WriteSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}
